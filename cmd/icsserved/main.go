// Command icsserved is the wire-to-verdict serving daemon: it accepts live
// Modbus/TCP device connections and recorded-trace replay streams over TCP,
// classifies every package through the multi-level detection engine, and fans
// verdicts out to subscribers — the paper's detection framework run as a
// long-lived network service instead of a one-shot tool.
//
// Usage:
//
//	icsserved -model gaspipeline=model.bin [-model watertank=wt.bin]
//	          [-ingest :1502] [-verdicts :1503] [-http :1504]
//	          [-stack bloom,lstm] [-fusion first-hit] [-precision f64]
//	          [-shards N] [-maxbatch 64] [-queue 256] [-burst 256]
//	          [-drain 5s] [-idle 0] [-subbuffer 1024] [-subwrite 0]
//	          [-statsevery 0]
//
// Each -model names a served model (name=path); the first is the default for
// connections that name none. A model named after a registered scenario
// (gaspipeline, watertank) serves live Modbus connections with that testbed's
// register layout; replay connections carry their layout in the trace header.
//
// Listeners:
//
//   - -ingest accepts device connections: a short handshake selects replay
//     mode (an ICSTRACE byte stream, blocking admission) or live mode (raw
//     MBAP-framed Modbus/TCP, shedding admission).
//   - -verdicts streams classified verdicts to any number of subscribers.
//   - -http is the ops endpoint: GET /healthz, GET /stats (lifetime plus
//     interval-delta engine counters), POST /swap?model=NAME&path=FILE
//     (hot-swap a retrained icstrain -checkpoint snapshot behind an engine
//     barrier, without restarting or disturbing live streams).
//
// -statsevery additionally logs interval package rates to stderr. SIGTERM or
// SIGINT drains gracefully: stop accepting, finish live connections (bounded
// by -drain), classify every admitted package, flush subscribers, exit.
//
// -selftest ignores the listener flags and runs the committed-corpus smoke
// drill against a daemon booted on ephemeral ports: replay both scenario
// corpora concurrently over real TCP, hot-swap the default model mid-replay
// through the HTTP endpoint, SIGTERM the daemon, and verify the subscriber's
// verdict streams against the golden files byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
	"icsdetect/internal/scenario"
	"icsdetect/internal/serve"
	"icsdetect/internal/tap"

	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/recon"
	_ "icsdetect/internal/watertank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsserved:", err)
		os.Exit(1)
	}
}

// modelList collects repeated -model name=path flags in order.
type modelList []struct{ name, path string }

func (m *modelList) String() string {
	var parts []string
	for _, e := range *m {
		parts = append(parts, e.name+"="+e.path)
	}
	return strings.Join(parts, ",")
}

func (m *modelList) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func run() error {
	var models modelList
	flag.Var(&models, "model", "served model as name=path; repeatable, first is the default (required)")
	var (
		ingest     = flag.String("ingest", ":1502", "ingest listener address (device connections)")
		verdicts   = flag.String("verdicts", ":1503", "verdict subscription listener address (empty disables)")
		httpAddr   = flag.String("http", ":1504", "ops HTTP listener address (empty disables)")
		stack      = flag.String("stack", "", "detection stack, e.g. bloom,lstm or bloom,pca,lstm (default: the paper's bloom,lstm)")
		fusion     = flag.String("fusion", "", "verdict fusion policy for -stack")
		precision  = flag.String("precision", "", "default numeric tier: f64 (default) or f32")
		shards     = flag.Int("shards", 0, "engine worker shards (default GOMAXPROCS)")
		maxBatch   = flag.Int("maxbatch", 0, "micro-batch width cap (default 64)")
		queue      = flag.Int("queue", 0, "per-shard queue depth (default 4*maxbatch)")
		burst      = flag.Int("burst", 0, "ingest burst width: packages admitted per engine submit (default 256; 1 selects the per-package path)")
		drain      = flag.Duration("drain", 5*time.Second, "shutdown grace for live connections")
		idle       = flag.Duration("idle", 0, "ingest idle read deadline; a silent peer is dropped and its stream released (0 disables)")
		subBuffer  = flag.Int("subbuffer", 0, "per-subscriber frame buffer (default 1024)")
		subWrite   = flag.Duration("subwrite", 0, "subscriber write deadline; a wedged subscriber is dropped and its queue counted as drops (0 disables)")
		statsEvery = flag.Duration("statsevery", 0, "log interval package rates this often (0 disables)")
		selftest   = flag.Bool("selftest", false, "run the committed-corpus smoke drill and exit")
		testdata   = flag.String("testdata", "testdata/traces", "golden corpus root for -selftest")
	)
	flag.Parse()

	cfg := serve.Config{
		Engine: engine.Config{
			Shards:     *shards,
			MaxBatch:   *maxBatch,
			QueueDepth: *queue,
		},
		DrainGrace:             *drain,
		IdleTimeout:            *idle,
		IngestBurst:            *burst,
		SubscriberBuffer:       *subBuffer,
		SubscriberWriteTimeout: *subWrite,
	}
	if *stack != "" || *fusion != "" || *precision != "" {
		spec, err := core.ParseStackSpec(*stack, *fusion)
		if err != nil {
			return err
		}
		if *precision != "" {
			p, err := core.ParsePrecision(*precision)
			if err != nil {
				return err
			}
			spec.Precision = p
		}
		cfg.Engine.Stack = spec
	}

	if *selftest {
		return runSelftest(cfg, *testdata)
	}
	if len(models) == 0 {
		return fmt.Errorf("at least one -model name=path is required")
	}
	for _, m := range models {
		fw, err := loadFramework(m.path)
		if err != nil {
			return fmt.Errorf("model %s: %w", m.name, err)
		}
		cfg.Models = append(cfg.Models, serve.Model{
			Name:      m.name,
			Framework: fw,
			Registers: registersFor(m.name),
		})
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	addr, err := srv.ListenIngest(*ingest)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icsserved: ingest on %s\n", addr)
	if *verdicts != "" {
		if addr, err = srv.ListenVerdicts(*verdicts); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "icsserved: verdicts on %s\n", addr)
	}
	if *httpAddr != "" {
		if addr, err = srv.ListenHTTP(*httpAddr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "icsserved: http on %s\n", addr)
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go logStats(srv, *statsEvery, stop)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "icsserved: %s, draining\n", s)
	close(stop)
	if err := srv.Shutdown(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "icsserved: drained (replayed %d, live %d, shed %d)\n",
		st.Replayed, st.Live, st.Shed)
	return nil
}

// loadFramework reads one saved model file.
func loadFramework(path string) (*core.Framework, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

// registersFor resolves a model name against the scenario registry so live
// Modbus connections decode with the testbed's register layout. Models not
// named after a scenario serve replay connections only (those carry their
// layout in the trace header).
func registersFor(name string) tap.RegisterMap {
	if sc, err := scenario.Get(name); err == nil {
		return sc.Registers()
	}
	return tap.RegisterMap{}
}

// logStats periodically prints interval-delta classification rates — the
// Stats.Since counters the /stats endpoint serves, for operators watching
// stderr instead.
func logStats(srv *serve.Server, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	prev := srv.Engine().Stats()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		cur := srv.Engine().Stats()
		delta := cur.Since(prev)
		prev = cur
		sst := srv.Stats()
		fmt.Fprintf(os.Stderr,
			"icsserved: %.0f pkg/s (interval %d pkgs, mean batch %.1f), %d conns, %d streams, queue %d, shed %d\n",
			delta.PerSecond(), delta.Packages, delta.MeanBatch(),
			sst.ActiveConns, cur.ActiveStreams(), cur.QueueDepth, sst.Shed)
	}
}
