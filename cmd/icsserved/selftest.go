package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/serve"
	"icsdetect/internal/trace"
)

// selftestEpisodes are the committed episodes of each golden corpus.
var selftestEpisodes = []string{"normal", "nmri", "cmri", "msci", "mpci", "mfci", "dos", "recon"}

// selftestCorpus is one scenario's committed model and traces.
type selftestCorpus struct {
	name      string
	modelPath string
	fw        *core.Framework
	traces    map[string][]byte // episode -> raw trace bytes
	headers   map[string]trace.Header
	records   map[string]int
	goldens   map[string][]byte
}

func loadSelftestCorpus(name, dir string) (*selftestCorpus, error) {
	c := &selftestCorpus{
		name:      name,
		modelPath: filepath.Join(dir, "model.fw"),
		traces:    make(map[string][]byte),
		headers:   make(map[string]trace.Header),
		records:   make(map[string]int),
		goldens:   make(map[string][]byte),
	}
	fw, err := loadFramework(c.modelPath)
	if err != nil {
		return nil, err
	}
	c.fw = fw
	for _, ep := range selftestEpisodes {
		raw, err := os.ReadFile(filepath.Join(dir, ep+".trace"))
		if err != nil {
			return nil, err
		}
		hdr, recs, err := trace.ReadAll(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, ep, err)
		}
		golden, err := os.ReadFile(filepath.Join(dir, ep+".verdicts"))
		if err != nil {
			return nil, err
		}
		c.traces[ep], c.headers[ep], c.records[ep], c.goldens[ep] = raw, hdr, len(recs), golden
	}
	return c, nil
}

// runSelftest is the end-to-end smoke drill behind -selftest: boot the
// daemon on ephemeral ports, replay both committed corpora concurrently
// over real TCP, hot-swap the default model mid-replay via the HTTP ops
// endpoint, SIGTERM ourselves, and verify every stream's verdicts against
// the goldens byte for byte.
func runSelftest(cfg serve.Config, root string) error {
	gas, err := loadSelftestCorpus("gaspipeline", root)
	if err != nil {
		return fmt.Errorf("selftest corpus: %w", err)
	}
	wt, err := loadSelftestCorpus("watertank", filepath.Join(root, "watertank"))
	if err != nil {
		return fmt.Errorf("selftest corpus: %w", err)
	}
	corpora := []*selftestCorpus{gas, wt}

	cfg.Models = nil
	for _, c := range corpora {
		cfg.Models = append(cfg.Models, serve.Model{
			Name: c.name, Framework: c.fw, Registers: registersFor(c.name),
		})
	}
	if cfg.DrainGrace < 30*time.Second {
		cfg.DrainGrace = 30 * time.Second
	}
	if cfg.SubscriberBuffer == 0 {
		cfg.SubscriberBuffer = 1 << 15
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ingest, err := srv.ListenIngest("127.0.0.1:0")
	if err != nil {
		return err
	}
	verdicts, err := srv.ListenVerdicts("127.0.0.1:0")
	if err != nil {
		return err
	}
	ops, err := srv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icsserved: selftest daemon up (ingest %s, verdicts %s, http %s)\n",
		ingest, verdicts, ops)

	// Subscriber: collect per-stream verdicts until the drain EOF.
	sub, err := serve.Subscribe(verdicts)
	if err != nil {
		return err
	}
	received := make(map[string][]core.Verdict)
	subDone := make(chan error, 1)
	go func() {
		for {
			ev, err := sub.Next()
			if err == io.EOF {
				subDone <- nil
				return
			}
			if err != nil {
				subDone <- err
				return
			}
			received[ev.Stream] = append(received[ev.Stream], ev.Verdict)
		}
	}()

	// Replay every episode of both corpora concurrently. The first
	// gaspipeline connection triggers the HTTP hot-swap halfway through.
	swapAt := make(chan struct{})
	var swapOnce sync.Once
	var wg sync.WaitGroup
	errCh := make(chan error, len(corpora)*len(selftestEpisodes))
	for _, c := range corpora {
		for _, ep := range selftestEpisodes {
			wg.Add(1)
			go func(c *selftestCorpus, ep string) {
				defer wg.Done()
				stream := c.name + "-" + ep
				opts := serve.ReplayOptions{Stream: stream, Model: c.name}
				if c == gas && ep == "normal" {
					half := c.records[ep] / 2
					opts.OnRecord = func(i int) {
						if i == half {
							swapOnce.Do(func() { close(swapAt) })
						}
					}
				}
				n, err := serve.Replay(ingest, c.traces[ep], opts)
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", stream, err)
					return
				}
				if n != uint64(c.records[ep]) {
					errCh <- fmt.Errorf("%s: accepted %d of %d packages", stream, n, c.records[ep])
				}
			}(c, ep)
		}
	}

	// Mid-replay hot-swap through the ops endpoint: reload the default
	// model from its own snapshot (same weights — the goldens stay valid).
	<-swapAt
	resp, err := http.Post(
		fmt.Sprintf("http://%s/swap?model=gaspipeline&path=%s", ops, gas.modelPath),
		"application/octet-stream", nil)
	if err != nil {
		return fmt.Errorf("selftest hot-swap: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest hot-swap: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	fmt.Fprintf(os.Stderr, "icsserved: selftest mid-replay %s", body)

	wg.Wait()
	close(errCh)
	for err := range errCh {
		return fmt.Errorf("selftest replay: %w", err)
	}

	// Drain through the real signal path, as CI's kill would.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return err
	}
	<-sig
	if err := srv.Shutdown(); err != nil {
		return fmt.Errorf("selftest drain: %w", err)
	}
	if err := <-subDone; err != nil {
		return fmt.Errorf("selftest subscriber: %w", err)
	}
	sub.Close()

	// Byte-for-byte conformance of every stream against the goldens.
	streams := 0
	for _, c := range corpora {
		for _, ep := range selftestEpisodes {
			stream := c.name + "-" + ep
			vs, ok := received[stream]
			if !ok {
				return fmt.Errorf("selftest: no verdicts for stream %s", stream)
			}
			hdr := c.headers[ep]
			doc := trace.FormatVerdicts(hdr.Scenario, hdr.Fingerprint, vs)
			if line := trace.DiffVerdicts(c.goldens[ep], doc); line != 0 {
				return fmt.Errorf("selftest: stream %s differs from goldens at line %d", stream, line)
			}
			streams++
		}
	}

	est := srv.Engine().Stats()
	sst := srv.Stats()
	if est.HandlerPanics != 0 {
		return fmt.Errorf("selftest: %d handler panics", est.HandlerPanics)
	}
	if sst.Shed != 0 || sst.SubscriberDrops != 0 {
		return fmt.Errorf("selftest: dropped work (shed %d, subscriber drops %d)", sst.Shed, sst.SubscriberDrops)
	}
	if sst.ModelSwaps != 1 {
		return fmt.Errorf("selftest: %d model swaps, want 1", sst.ModelSwaps)
	}
	fmt.Fprintf(os.Stderr,
		"icsserved: selftest ok (%d streams, %d packages, 1 hot-swap, goldens byte-identical)\n",
		streams, est.Packages)
	return nil
}
