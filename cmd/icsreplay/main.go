// Command icsreplay records and replays deterministic traffic traces
// against the anomaly detection framework.
//
// Replay a recorded trace through a trained model, as fast as possible
// (throughput mode) or on the trace's own timeline (latency mode):
//
//	icsreplay -trace testdata/traces/dos.trace -model testdata/traces/model.fw
//	icsreplay -trace dos.trace -model model.fw -timed -speed 10
//	icsreplay -trace dos.trace -model model.fw -engine -shards 4
//	icsreplay -trace dos.trace -model model.fw -levels bloom,pca,lstm -fusion majority
//
// Verify a replay against a committed golden verdict file, or write a new
// one:
//
//	icsreplay -trace dos.trace -model model.fw -verify dos.verdicts
//	icsreplay -trace dos.trace -model model.fw -verdicts /tmp/dos.verdicts
//
// Rebuild a golden conformance corpus (model, traces, verdict files, fuzz
// seed frames) for a testbed scenario:
//
//	icsreplay -record testdata/traces -fuzzseeds internal/modbus/testdata/frames
//	icsreplay -record testdata/traces/watertank -scenario watertank \
//	          -fuzzseeds internal/modbus/testdata/frames
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/scenario"
	"icsdetect/internal/trace"

	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/recon"
	_ "icsdetect/internal/watertank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		recordDir = flag.String("record", "", "build the golden corpus into this directory")
		scName    = flag.String("scenario", scenario.Default, "with -record: testbed scenario to build the corpus for ("+strings.Join(scenario.Names(), ", ")+")")
		fuzzSeeds = flag.String("fuzzseeds", "", "with -record: also write fuzz seed frames here")
		trainN    = flag.Int("train", 16000, "with -record: training capture size in packages")
		seed      = flag.Uint64("seed", 1, "with -record: corpus seed")

		tracePath = flag.String("trace", "", "trace file to replay")
		modelPath = flag.String("model", "", "trained model to replay against")
		useEngine = flag.Bool("engine", false, "replay through the batched multi-stream engine")
		shards    = flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
		timed     = flag.Bool("timed", false, "latency mode: replay on the trace's own timeline")
		speed     = flag.Float64("speed", 1, "timeline scale for -timed (2 = twice as fast)")
		modeName  = flag.String("mode", "combined", "detector mode: combined, package or series")
		levels    = flag.String("levels", "", "detection stack, e.g. bloom,pca,lstm (overrides -mode; registered: "+strings.Join(core.StageKinds(), ", ")+")")
		fusion    = flag.String("fusion", "", "verdict fusion policy for -levels: first-hit, majority or weighted")
		precision = flag.String("precision", "", "numeric tier: f64 (default) or f32 (float32 SIMD inference)")
		verify    = flag.String("verify", "", "golden verdict file to compare against (exit 1 on drift)")
		verdicts  = flag.String("verdicts", "", "write the replay's verdicts to this golden file")
	)
	flag.Parse()

	if *recordDir != "" {
		sc, err := scenario.Get(*scName)
		if err != nil {
			return err
		}
		return record(sc, *recordDir, *fuzzSeeds, *trainN, *seed)
	}
	if *tracePath == "" || *modelPath == "" {
		return fmt.Errorf("either -record DIR, or -trace FILE with -model FILE, is required")
	}

	spec, err := core.ResolveStackFlags(*levels, *fusion, *modeName)
	if err != nil {
		return err
	}
	if spec, err = spec.WithPrecision(*precision); err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	fw, err := core.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	if missing := fw.MissingStages(spec); len(missing) > 0 {
		return fmt.Errorf("model has no trained stage models for %s (retrain with icstrain -levels %s)",
			strings.Join(missing, ", "), *levels)
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	header, recs, err := trace.ReadAll(tf)
	tf.Close()
	if err != nil {
		return err
	}
	if header.Fingerprint != "" && header.Fingerprint != fw.Fingerprint() {
		fmt.Printf("warning: trace was recorded for model %s, replaying against %s\n",
			header.Fingerprint, fw.Fingerprint())
	}

	cfg := trace.ReplayConfig{Stack: spec, Timed: *timed, Speed: *speed}
	if *useEngine {
		cfg.Engine = &engine.Config{Shards: *shards}
	}
	res, err := trace.Replay(fw, header, recs, cfg)
	if err != nil {
		return err
	}
	report(res, header)

	if *verdicts != "" {
		out := trace.FormatVerdicts(header.Scenario, header.Fingerprint, res.Verdicts)
		if err := os.WriteFile(*verdicts, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *verdicts)
	}
	if *verify != "" {
		golden, err := os.ReadFile(*verify)
		if err != nil {
			return err
		}
		got := trace.FormatVerdicts(header.Scenario, header.Fingerprint, res.Verdicts)
		if line := trace.DiffVerdicts(golden, got); line != 0 {
			return fmt.Errorf("verdicts drifted from %s at line %d", *verify, line)
		}
		fmt.Printf("verdicts identical to %s\n", *verify)
	}
	return nil
}

func report(res *trace.Result, h trace.Header) {
	fmt.Printf("scenario %s (%s, %d packages, %.1fs of recorded traffic)\n",
		res.Scenario, h.Format, len(res.Verdicts), res.TraceSeconds)
	fmt.Printf("replayed in %v (%.0f pkg/s)\n", res.Wall.Round(time.Microsecond), res.PerSecond())
	fmt.Printf("verdicts: %v\n", res.Summary)
	var parts []string
	detected := 0
	for l := core.Level(1); l < core.NumLevels; l++ {
		if n := res.ByLevel[l]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", l, n))
			detected += n
		}
	}
	parts = append(parts, fmt.Sprintf("clean=%d", len(res.Verdicts)-detected))
	fmt.Printf("levels: %s\n", strings.Join(parts, " "))

	types := make([]dataset.AttackType, 0, len(res.Latency.Episodes))
	for at := range res.Latency.Episodes {
		types = append(types, at)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, at := range types {
		fmt.Printf("%-6v ratio=%.2f episodes=%d/%d detection latency mean=%.3fs max=%.3fs\n",
			at, res.PerAttack.Ratio(at),
			res.Latency.Detected[at], res.Latency.Episodes[at],
			res.Latency.MeanLatency(at), res.Latency.MaxSeconds[at])
	}
}

func record(sc scenario.Scenario, dir, fuzzDir string, trainN int, seed uint64) error {
	start := time.Now()
	fmt.Printf("building %s golden corpus in %s (training on %d packages)...\n", sc.Name(), dir, trainN)
	// The gas pipeline keeps the historical "corpus" fuzz seed prefix;
	// other testbeds use their name so corpora can't clobber each other's
	// seeds.
	prefix := "corpus"
	if sc.Name() != scenario.Default {
		prefix = sc.Name()
	}
	rep, err := trace.BuildCorpus(trace.CorpusConfig{
		Scenario: sc, Dir: dir, FrameSeedDir: fuzzDir, SeedPrefix: prefix,
		TrainPackages: trainN, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model fingerprint %s\n", rep.Fingerprint)
	for _, res := range rep.Results {
		fmt.Printf("  %-7s %4d packages  %v\n", res.Scenario, len(res.Verdicts), res.Summary)
	}
	if rep.FrameSeeds > 0 {
		fmt.Printf("wrote %d fuzz seed frames to %s\n", rep.FrameSeeds, fuzzDir)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
