// Command icsmonitor is an in-path Modbus/TCP anomaly monitor: it proxies
// traffic between masters and a slave device, decodes every frame into the
// detector's package schema, and classifies it with a trained model,
// logging alerts as they happen.
//
// Usage:
//
//	icsmonitor -listen :15020 -upstream 10.0.0.7:502 -model model.bin
//	icsmonitor -scenario watertank -upstream 10.0.0.9:502 -model tank.bin
//	icsmonitor -upstream 10.0.0.7:502 -model model.bin -levels bloom,pca,lstm -fusion majority
//
// Bootstrap mode trains a model from an initial attack-free observation
// window instead of loading one:
//
//	icsmonitor -listen :15020 -upstream 10.0.0.7:502 -bootstrap 8000 -save model.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/scenario"
	"icsdetect/internal/tap"

	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/recon"
	_ "icsdetect/internal/watertank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsmonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:15020", "address masters connect to")
		scName    = flag.String("scenario", scenario.Default, "testbed scenario of the monitored device: "+strings.Join(scenario.Names(), ", "))
		upstream  = flag.String("upstream", "", "slave device address (required)")
		modelPath = flag.String("model", "", "trained model to load")
		bootstrap = flag.Int("bootstrap", 0, "observe N clean packages, then train in place")
		save      = flag.String("save", "", "save the bootstrapped model here")
		epochs    = flag.Int("epochs", 10, "bootstrap training epochs")
		quietSecs = flag.Int("stats-interval", 30, "seconds between summary lines")
		shards    = flag.Int("shards", 0, "detection engine shards (0 = GOMAXPROCS)")
		levels    = flag.String("levels", "", "detection stack, e.g. bloom,pca,lstm (registered: "+strings.Join(core.StageKinds(), ", ")+")")
		fusion    = flag.String("fusion", "", "verdict fusion policy for -levels: first-hit, majority or weighted")
		precision = flag.String("precision", "", "numeric tier: f64 (default) or f32 (float32 SIMD inference)")
	)
	flag.Parse()
	if *upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	if *modelPath == "" && *bootstrap == 0 {
		return fmt.Errorf("either -model or -bootstrap is required")
	}
	sc, err := scenario.Get(*scName)
	if err != nil {
		return err
	}
	spec, err := core.ResolveStackFlags(*levels, *fusion, "")
	if err != nil {
		return err
	}
	if spec, err = spec.WithPrecision(*precision); err != nil {
		return err
	}

	// The scenario's register map tells the tap how to decode this
	// device's controller block out of the relayed frames.
	proxy := tap.New(*upstream, sc.Registers())
	addr, err := proxy.Listen(*listen)
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Fprintf(os.Stderr, "tap listening on %s, forwarding to %s\n", addr, *upstream)

	var fw *core.Framework
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		fw, err = core.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		fw, err = bootstrapModel(proxy, sc, spec, *bootstrap, *epochs)
		if err != nil {
			return err
		}
		if *save != "" {
			out, err := os.Create(*save)
			if err != nil {
				return err
			}
			err = fw.Save(out)
			out.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "model saved to %s\n", *save)
		}
	}

	// Streaming classification through the sharded detection engine: one
	// stream per slave unit, decoded packages submitted from the relay
	// goroutines, alerts logged from the engine's shard workers. Bounded
	// shard queues push back on the relay path if classification ever
	// falls behind.
	if missing := fw.MissingStages(spec); len(missing) > 0 {
		return fmt.Errorf("model has no trained stage models for %s (retrain with icstrain -levels %s)",
			strings.Join(missing, ", "), *levels)
	}
	eng, err := engine.New(fw, engine.Config{Shards: *shards, Stack: spec}, func(r engine.Result) {
		if r.Verdict.Anomaly {
			p := r.Package
			fmt.Printf("%s ALERT stream=%s level=%s fn=%.0f addr=%.0f signature=%s\n",
				time.Now().Format(time.RFC3339), r.Stream, r.Verdict.Level,
				p.Function, p.Address, r.Verdict.Signature)
		}
	})
	if err != nil {
		return err
	}
	// The tap invokes the sink from its relay goroutines — one per
	// direction per connection — so two goroutines can carry packages of
	// the same unit. Engine.Submit requires per-stream submissions from
	// one goroutine at a time; a mutex pins the stream order to the
	// arrival order the sink observes. Stream keys are precomputed per
	// Modbus unit ID (a byte) to keep the submit path allocation-free.
	var unitStream [256]string
	for i := range unitStream {
		unitStream[i] = fmt.Sprintf("unit-%d", i)
	}
	var submitMu sync.Mutex
	proxy.SetSink(func(p *dataset.Package) {
		submitMu.Lock()
		defer submitMu.Unlock()
		_ = eng.Submit(unitStream[int(p.Address)&0xff], p)
	})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(time.Duration(*quietSecs) * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "stats: %d packages on %d streams, %d alerts, %.0f pkg/s, queue %d\n",
				st.Packages, st.Streams, st.Anomalies(), st.PerSecond(), st.QueueDepth)
		case <-stop:
			proxy.Close()
			eng.Stop()
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "shutting down: %d packages on %d streams, %d alerts\n",
				st.Packages, st.Streams, st.Anomalies())
			return nil
		}
	}
}

// bootstrapModel waits for n observed packages and trains the framework on
// them (the paper's "air-gapped" observation phase, §IV), with the
// discretization the scenario prescribes for a capture of that size. Stage
// models of every promoted level in spec train from the same observation
// window.
func bootstrapModel(proxy *tap.Proxy, sc scenario.Scenario, spec core.StackSpec, n, epochs int) (*core.Framework, error) {
	fmt.Fprintf(os.Stderr, "bootstrap: waiting for %d clean packages …\n", n)
	var clean []*dataset.Package
	for len(clean) < n {
		time.Sleep(500 * time.Millisecond)
		clean = append(clean, proxy.Drain()...)
	}
	fmt.Fprintf(os.Stderr, "bootstrap: training on %d packages …\n", len(clean))

	split, err := dataset.MakeSplit(&dataset.Dataset{Packages: clean},
		dataset.SplitConfig{TrainFrac: 0.75, ValidationFrac: 0.24})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Granularity = sc.Granularity(len(clean))
	cfg.Hidden = []int{32, 32}
	cfg.Fit.Epochs = epochs
	cfg.Fit.BatchSize = 4
	fw, report, err := core.Train(split, cfg)
	if err != nil {
		return nil, err
	}
	if err := fw.TrainStages(spec, split, cfg.Seed); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "bootstrap: ready (|S|=%d k=%d errv=%.4f)\n",
		report.Signatures, report.ChosenK, report.PackageErrv)
	return fw, nil
}
