package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
	"icsdetect/internal/scenario"
	"icsdetect/internal/serve"
	"icsdetect/internal/trace"
)

// This file is `icsbench -servebench`: the wire-to-verdict serving
// benchmark. It boots a real serve.Server on loopback TCP, replays one
// recorded trace over N concurrent ingest connections with per-record send
// timestamps, fans every verdict out to -subs subscribers (one measuring
// latency and verdict hashes, the rest draining — the multi-consumer
// deployment shape), and reports end-to-end throughput (pkg/s) and verdict
// latency (p50/p99) — once over the per-package legacy admission path
// (IngestBurst: 1, one engine submit and one published hub frame per
// package) and once over the burst path (batched SubmitBatchFor admission,
// per-tick coalesced verdict frames). The two runs must produce identical
// per-stream verdict sequences (FNV-1a cross-check); the ratio of their
// throughputs is the amortization win. `make bench-serve` runs it; `-json`
// emits the record committed as BENCH_SERVE.json.

// serveModeResult is one admission mode's measurement as emitted by -json.
type serveModeResult struct {
	Mode             string  `json:"mode"` // "per-package" or "burst"
	IngestBurst      int     `json:"ingest_burst"`
	Packages         uint64  `json:"packages"`
	WallSeconds      float64 `json:"wall_seconds"`
	PkgsPerSec       float64 `json:"pkgs_per_sec"`
	P50LatencyMs     float64 `json:"p50_latency_ms"`
	P99LatencyMs     float64 `json:"p99_latency_ms"`
	MeanIngestBurst  float64 `json:"mean_ingest_burst"`
	MeanPublishBatch float64 `json:"mean_publish_batch"`
}

// serveBenchResult is the -servebench JSON document body.
type serveBenchResult struct {
	Stack          string            `json:"stack"`
	Connections    int               `json:"connections"`
	RecordsPerConn int               `json:"records_per_conn"`
	Subscribers    int               `json:"subscribers"`
	Modes          []serveModeResult `json:"modes"`
	// Speedup is burst pkg/s over per-package pkg/s, both measured in this
	// run.
	Speedup float64 `json:"speedup"`
	// VerdictsMatch records the cross-mode conformance check: every
	// stream's verdict sequence hashed identically under both paths.
	VerdictsMatch bool `json:"verdicts_match"`
}

// serveBenchModel loads the committed corpus model when the testdata dir
// holds one (cheap, the common case from the repo root) and otherwise
// trains a fresh corpus-recipe model.
func serveBenchModel(tb scenario.Scenario, testdata string, progress io.Writer) (*core.Framework, error) {
	path := filepath.Join(testdata, "model.fw")
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		fw, err := core.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		fmt.Fprintf(progress, "servebench: model %s (%s)\n", path, fw.Fingerprint())
		return fw, nil
	}
	fmt.Fprintf(progress, "servebench: no committed model at %s, training one\n", path)
	start := time.Now()
	fw, err := trace.TrainCorpusModel(tb, 8000, 1)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(progress, "servebench: model trained in %v\n", time.Since(start).Round(time.Millisecond))
	return fw, nil
}

// recordServeTrace records ~records of fresh normal-operation wire traffic
// pinned to the benchmark model's fingerprint: the byte stream every
// connection replays.
func recordServeTrace(tb scenario.Scenario, fingerprint string, records int) ([]byte, int, error) {
	sim, err := tb.NewSim(0xB0B)
	if err != nil {
		return nil, 0, err
	}
	// Unrecorded warm-up so the control loop and CRC window settle.
	for i := 0; i < 60; i++ {
		sim.RunNormalCycle(0)
	}
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, trace.SimHeader("servebench", fingerprint, tb.Registers()))
	if err != nil {
		return nil, 0, err
	}
	sim.SetFrameSink(rec.RecordSim)
	for rec.Count() < records {
		sim.RunNormalCycle(0)
	}
	sim.SetFrameSink(nil)
	if err := rec.Flush(); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), rec.Count(), nil
}

// hashVerdict folds one subscription event into a stream's running FNV-1a
// verdict hash — the cross-mode conformance fingerprint. It encodes into
// the caller's scratch buffer and returns it (possibly regrown): the
// subscriber sits on the measured core, so the encoding must not allocate
// or go through fmt.
func hashVerdict(h hash.Hash64, scratch []byte, ev serve.Event) []byte {
	b := scratch[:0]
	b = binary.AppendUvarint(b, ev.Seq)
	v := ev.Verdict
	flags := byte(0)
	if v.Anomaly {
		flags = 1
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, int64(v.Level))
	b = binary.AppendVarint(b, int64(v.Rank))
	b = binary.AppendUvarint(b, uint64(len(v.Signature)))
	b = append(b, v.Signature...)
	b = binary.AppendUvarint(b, uint64(len(v.Evidence)))
	for _, e := range v.Evidence {
		b = binary.AppendUvarint(b, uint64(len(e.Stage)))
		b = append(b, e.Stage...)
		b = binary.AppendVarint(b, int64(e.Level))
		fl := byte(0)
		if e.Scored {
			fl |= 1
		}
		if e.Flagged {
			fl |= 2
		}
		b = append(b, fl)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(e.Score))
		b = binary.AppendVarint(b, int64(e.Rank))
	}
	h.Write(b)
	return b
}

// drainSubscriber attaches a raw verdict subscription (the documented
// "ICSSUBSC" handshake) and discards the stream: the extra fan-out targets
// of a multi-subscriber deployment, costing the benchmark core almost
// nothing beyond the hub's own per-subscriber work. Returns the connection
// for the caller to close.
func drainSubscriber(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	hb := binary.BigEndian.AppendUint16([]byte("ICSSUBSC"), serve.ProtocolVersion)
	if _, err := conn.Write(hb); err != nil {
		conn.Close()
		return nil, err
	}
	// Status: code byte + uvarint-length message, then the event stream.
	var code [2]byte
	if _, err := io.ReadFull(conn, code[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if code[0] != 0 || code[1] != 0 {
		conn.Close()
		return nil, fmt.Errorf("drain subscriber rejected (code %d)", code[0])
	}
	go io.Copy(io.Discard, conn)
	return conn, nil
}

// runServeMode boots one server with the given ingest burst setting,
// replays the trace over conns concurrent connections, and measures
// wire-to-verdict throughput and latency off the subscription socket. It
// returns the measurement plus each stream's verdict-sequence hash.
func runServeMode(fw *core.Framework, spec core.StackSpec, raw []byte,
	records, conns, subs, ingestBurst int) (serveModeResult, map[string]uint64, error) {

	mode := serveModeResult{Mode: "burst", IngestBurst: ingestBurst}
	if ingestBurst == 1 {
		mode.Mode = "per-package"
	}
	srv, err := serve.New(serve.Config{
		Engine:           engine.Config{MaxBatch: 64, QueueDepth: 256, Stack: spec},
		Models:           []serve.Model{{Name: "servebench", Framework: fw}},
		SubscriberBuffer: 1 << 17,
		IngestBurst:      ingestBurst,
		DrainGrace:       time.Minute,
	})
	if err != nil {
		return mode, nil, err
	}
	defer srv.Shutdown()
	ingest, err := srv.ListenIngest("127.0.0.1:0")
	if err != nil {
		return mode, nil, err
	}
	verdicts, err := srv.ListenVerdicts("127.0.0.1:0")
	if err != nil {
		return mode, nil, err
	}
	sub, err := serve.Subscribe(verdicts)
	if err != nil {
		return mode, nil, err
	}
	defer sub.Close()
	// The remaining subscribers only drain: they exist so the hub fans
	// every verdict out subs ways, the multi-consumer deployment shape the
	// coalesced publish path amortizes.
	for i := 1; i < subs; i++ {
		dc, err := drainSubscriber(verdicts)
		if err != nil {
			return mode, nil, err
		}
		defer dc.Close()
	}

	// Per-(connection, record) send timestamps, stamped by the replay
	// goroutines and read by the subscriber: atomics, since the only
	// ordering between the two is the wire itself.
	streams := make(map[string]int, conns)
	send := make([][]int64, conns)
	for c := range send {
		send[c] = make([]int64, records)
		streams[fmt.Sprintf("c-%03d", c)] = c
	}

	total := conns * records
	latencies := make([]int64, 0, total)
	hashes := make(map[string]uint64, conns)
	subDone := make(chan error, 1)
	go func() {
		perStream := make(map[string]hash.Hash64, conns)
		seen := make(map[string]uint64, conns)
		scratch := make([]byte, 0, 256)
		for got := 0; got < total; got++ {
			ev, err := sub.Next()
			if err != nil {
				subDone <- fmt.Errorf("subscriber after %d of %d events: %w", got, total, err)
				return
			}
			now := time.Now().UnixNano()
			c, ok := streams[ev.Stream]
			if !ok {
				subDone <- fmt.Errorf("event for unknown stream %q", ev.Stream)
				return
			}
			if ev.Seq != seen[ev.Stream] {
				subDone <- fmt.Errorf("stream %s: event seq %d, want %d", ev.Stream, ev.Seq, seen[ev.Stream])
				return
			}
			seen[ev.Stream]++
			latencies = append(latencies, now-atomic.LoadInt64(&send[c][ev.Seq]))
			h := perStream[ev.Stream]
			if h == nil {
				h = fnv.New64a()
				perStream[ev.Stream] = h
			}
			scratch = hashVerdict(h, scratch, ev)
		}
		for s, h := range perStream {
			hashes[s] = h.Sum64()
		}
		subDone <- nil
	}()

	start := time.Now()
	errs := make(chan error, conns)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stamps := send[c]
			n, err := serve.Replay(ingest, raw, serve.ReplayOptions{
				Stream: fmt.Sprintf("c-%03d", c),
				OnRecord: func(i int) {
					atomic.StoreInt64(&stamps[i], time.Now().UnixNano())
				},
				FlushEvery: 64,
			})
			if err != nil {
				errs <- fmt.Errorf("c-%03d: %v", c, err)
				return
			}
			if n != uint64(records) {
				errs <- fmt.Errorf("c-%03d: server accepted %d of %d", c, n, records)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return mode, nil, err
	}
	if err := <-subDone; err != nil {
		return mode, nil, err
	}
	wall := time.Since(start)

	st := srv.Stats()
	if err := srv.Shutdown(); err != nil {
		return mode, nil, err
	}
	if st.Shed != 0 || st.SubscriberDrops != 0 {
		return mode, nil, fmt.Errorf("lossy run: shed=%d subscriberDrops=%d", st.Shed, st.SubscriberDrops)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := len(latencies) * p / 100
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	mode.Packages = uint64(total)
	mode.WallSeconds = wall.Seconds()
	mode.PkgsPerSec = float64(total) / wall.Seconds()
	mode.P50LatencyMs = pct(50)
	mode.P99LatencyMs = pct(99)
	mode.MeanIngestBurst = st.MeanIngestBurst()
	mode.MeanPublishBatch = st.MeanPublishBatch()
	return mode, hashes, nil
}

// runServeBench is the -servebench entry point: record the workload, run
// both admission modes against real loopback TCP, cross-check verdicts and
// report the amortization win.
func runServeBench(testdata string, conns, records, subs int, customLevels, customFusion string, jsonOut bool) error {
	progress := io.Writer(os.Stdout)
	if jsonOut {
		progress = os.Stderr
	}
	if conns <= 0 {
		conns = 64
	}
	if records <= 0 {
		records = 2000
	}
	if subs <= 0 {
		subs = 1
	}
	// Default to the signature-level stack: its per-package compute is
	// cheap enough that the serving plane's own per-package costs (engine
	// admission, hub fan-out, wire framing) dominate the measurement —
	// which is exactly what the burst path amortizes. -levels swaps in any
	// other stack.
	levels, fusion := customLevels, customFusion
	if levels == "" {
		levels = "bloom"
		if fusion == "" {
			fusion = "first-hit"
		}
	}
	spec, err := core.ParseStackSpec(levels, fusion)
	if err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	tb, err := scenario.Get("gaspipeline")
	if err != nil {
		return err
	}
	fw, err := serveBenchModel(tb, testdata, progress)
	if err != nil {
		return err
	}
	raw, got, err := recordServeTrace(tb, fw.Fingerprint(), records)
	if err != nil {
		return err
	}
	records = got
	fmt.Fprintf(progress, "servebench: stack %s, %d connections × %d records, %d subscribers (%d packages/mode, trace %d KB)\n",
		spec, conns, records, subs, conns*records, len(raw)/1024)

	res := serveBenchResult{Stack: spec.String(), Connections: conns, RecordsPerConn: records, Subscribers: subs}
	var perPkgHashes, burstHashes map[string]uint64
	for _, m := range []struct {
		burst  int
		hashes *map[string]uint64
	}{
		{1, &perPkgHashes}, // legacy baseline: one submit, one frame per package
		{0, &burstHashes},  // default burst width (256)
	} {
		mode, hashes, err := runServeMode(fw, spec, raw, records, conns, subs, m.burst)
		if err != nil {
			return fmt.Errorf("servebench %d-burst run: %w", m.burst, err)
		}
		*m.hashes = hashes
		res.Modes = append(res.Modes, mode)
		fmt.Fprintf(progress,
			"%-12s %9.0f pkg/s  (wall %6.2fs, p50 %7.2fms, p99 %7.2fms, ingest-burst %6.1f, publish-batch %5.1f)\n",
			mode.Mode, mode.PkgsPerSec, mode.WallSeconds, mode.P50LatencyMs, mode.P99LatencyMs,
			mode.MeanIngestBurst, mode.MeanPublishBatch)
	}

	// Cross-mode conformance: the burst path must be verdict-invariant,
	// stream for stream.
	res.VerdictsMatch = len(perPkgHashes) == len(burstHashes)
	for s, h := range perPkgHashes {
		if burstHashes[s] != h {
			res.VerdictsMatch = false
			break
		}
	}
	if !res.VerdictsMatch {
		return fmt.Errorf("verdict streams differ between per-package and burst modes")
	}
	res.Speedup = res.Modes[1].PkgsPerSec / res.Modes[0].PkgsPerSec
	fmt.Fprintf(progress, "burst speedup: %.2fx (verdicts identical across modes)\n", res.Speedup)

	if jsonOut {
		return writeJSON(benchDoc{Benchmark: "servebench", Serve: &res})
	}
	return nil
}
