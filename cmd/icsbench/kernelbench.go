package main

import (
	"fmt"
	"time"

	"icsdetect/internal/mathx"
	"icsdetect/internal/nn"
)

// runKernelBench microbenchmarks the inference kernels at the paper's model
// shape (one-hot width 138 → 32 → 32 → 49 classes): the dense and one-hot
// step paths, sequential and batched, plus the fused activation kernels —
// at both numeric tiers (f64 reference and the float32 inference snapshot)
// under every kernel tier override (scalar reference, AVX2, AVX-512).
// On machines without a tier the override is a no-op and that column
// repeats the tier below, so columns are comparable only where the
// hardware differs. With jsonOut the same matrix is emitted as one JSON
// document (kernel × precision × tier → ns/op) instead of the table.
func runKernelBench(jsonOut bool) error {
	const (
		inputDim = 138
		classes  = 49
		batch    = 8
	)
	c, err := nn.NewClassifier(inputDim, []int{32, 32}, classes, 7)
	if err != nil {
		return err
	}
	m32 := c.Infer32()

	// One fixed stream of one-hot index sets shaped like the detector's
	// encoder output: one active bucket per feature, ~14 actives per
	// package over the one-hot width.
	rng := mathx.NewRNG(11)
	idxs := make([][]int, 256)
	xs := make([][]float64, len(idxs))
	xs32 := make([][]float32, len(idxs))
	for i := range idxs {
		var idx []int
		for j := 0; j < inputDim; j++ {
			if rng.Bernoulli(0.1) {
				idx = append(idx, j)
			}
		}
		if len(idx) == 0 {
			idx = append(idx, rng.Intn(inputDim))
		}
		idxs[i] = idx
		x := make([]float64, inputDim)
		x32 := make([]float32, inputDim)
		for _, j := range idx {
			x[j] = 1
			x32[j] = 1
		}
		xs[i] = x
		xs32[i] = x32
	}

	state := c.NewState()
	states := make([]*nn.State, batch)
	for i := range states {
		states[i] = c.NewState()
	}
	buf := c.NewBatchBuffer(batch)
	scores := make([]float64, classes)
	batchScores := make([][]float64, batch)
	batchIdxs := make([][]int, batch)
	batchXs := make([][]float64, batch)
	for i := 0; i < batch; i++ {
		batchScores[i] = make([]float64, classes)
	}
	act := make([]float64, 96)
	for i := range act {
		act[i] = rng.Norm()
	}
	actDst := make([]float64, len(act))

	state32 := m32.NewState()
	states32 := make([]*nn.State32, batch)
	for i := range states32 {
		states32[i] = m32.NewState()
	}
	buf32 := m32.NewBatchBuffer(batch)
	scores32 := make([]float32, classes)
	batchScores32 := make([][]float32, batch)
	batchXs32 := make([][]float32, batch)
	for i := 0; i < batch; i++ {
		batchScores32[i] = make([]float32, classes)
	}
	act32 := make([]float32, len(act))
	for i := range act32 {
		act32[i] = float32(act[i])
	}
	actDst32 := make([]float32, len(act32))

	// Each row is one kernel at one precision; the reported figure is ns
	// per package (the batch rows divide by the batch width) except the
	// act/* rows, which are ns per kernel call on a 96-wide gate block.
	rows := []struct {
		name string
		prec string
		per  int // packages (or calls) per op
		op   func(i int)
	}{
		{"step/dense", "f64", 1, func(i int) {
			c.StepLogits(state, xs[i%len(xs)], scores)
		}},
		{"step/onehot", "f64", 1, func(i int) {
			c.StepLogitsOneHot(state, idxs[i%len(idxs)], scores)
		}},
		{fmt.Sprintf("batch%d/dense", batch), "f64", batch, func(i int) {
			for s := 0; s < batch; s++ {
				batchXs[s] = xs[(i*batch+s)%len(xs)]
			}
			c.StepBatchLogits(buf, states, batchXs, batchScores)
		}},
		{fmt.Sprintf("batch%d/onehot", batch), "f64", batch, func(i int) {
			for s := 0; s < batch; s++ {
				batchIdxs[s] = idxs[(i*batch+s)%len(idxs)]
			}
			c.StepBatchLogitsOneHot(buf, states, batchIdxs, batchScores)
		}},
		{"act/vsigmoid-96", "f64", 1, func(i int) { mathx.VSigmoid(actDst, act) }},
		{"act/vtanh-96", "f64", 1, func(i int) { mathx.VTanh(actDst, act) }},
		{"act/vexp-96", "f64", 1, func(i int) { mathx.VExp(actDst, act) }},
		{"step/dense", "f32", 1, func(i int) {
			m32.StepLogits(state32, xs32[i%len(xs32)], scores32)
		}},
		{"step/onehot", "f32", 1, func(i int) {
			m32.StepLogitsOneHot(state32, idxs[i%len(idxs)], scores32)
		}},
		{fmt.Sprintf("batch%d/dense", batch), "f32", batch, func(i int) {
			for s := 0; s < batch; s++ {
				batchXs32[s] = xs32[(i*batch+s)%len(xs32)]
			}
			m32.StepBatchLogits(buf32, states32, batchXs32, batchScores32)
		}},
		{fmt.Sprintf("batch%d/onehot", batch), "f32", batch, func(i int) {
			for s := 0; s < batch; s++ {
				batchIdxs[s] = idxs[(i*batch+s)%len(idxs)]
			}
			m32.StepBatchLogitsOneHot(buf32, states32, batchIdxs, batchScores32)
		}},
		{"act/vsigmoid-96", "f32", 1, func(i int) { mathx.VSigmoid32(actDst32, act32) }},
		{"act/vtanh-96", "f32", 1, func(i int) { mathx.VTanh32(actDst32, act32) }},
		{"act/vexp-96", "f32", 1, func(i int) { mathx.VExp32(actDst32, act32) }},
	}
	tiers := []struct {
		name         string
		simd, avx512 bool
	}{
		{"scalar", false, false},
		{"avx2", true, false},
		{"avx512", true, true},
	}

	var results []kernelResult
	if !jsonOut {
		fmt.Printf("%-4s %-16s", "prec", "kernel")
		for _, tier := range tiers {
			fmt.Printf(" %12s", tier.name)
		}
		fmt.Println("   (ns/package; act rows ns/call)")
	}
	for _, row := range rows {
		if !jsonOut {
			fmt.Printf("%-4s %-16s", row.prec, row.name)
		}
		for _, tier := range tiers {
			prevSIMD := mathx.SetSIMDEnabled(tier.simd)
			prevAVX512 := mathx.SetAVX512Enabled(tier.avx512)
			ns := timeOp(row.op) / float64(row.per)
			mathx.SetAVX512Enabled(prevAVX512)
			mathx.SetSIMDEnabled(prevSIMD)
			if jsonOut {
				results = append(results, kernelResult{
					Kernel: row.name, Precision: row.prec, Tier: tier.name, NsPerOp: ns,
				})
			} else {
				fmt.Printf(" %12.0f", ns)
			}
		}
		if !jsonOut {
			fmt.Println()
		}
	}
	if jsonOut {
		return writeJSON(benchDoc{Benchmark: "kernelbench", Kernels: results})
	}
	return nil
}

// timeOp times op, growing the iteration count until one measurement
// window is long enough to trust, then returns ns per op for the BEST of
// three windows — the minimum is the standard noise filter on a shared
// machine, where scheduler preemption only ever inflates a window.
func timeOp(op func(i int)) float64 {
	for i := 0; i < 200; i++ {
		op(i)
	}
	n := 500
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			op(i)
		}
		elapsed := time.Since(start)
		if elapsed < 20*time.Millisecond {
			n *= 4
			continue
		}
		best := elapsed
		for w := 0; w < 2; w++ {
			start = time.Now()
			for i := 0; i < n; i++ {
				op(i)
			}
			if e := time.Since(start); e < best {
				best = e
			}
		}
		return float64(best.Nanoseconds()) / float64(n)
	}
}
