package main

import (
	"fmt"
	"time"

	"icsdetect/internal/mathx"
	"icsdetect/internal/nn"
)

// runKernelBench microbenchmarks the inference kernels at the paper's model
// shape (one-hot width 138 → 32 → 32 → 49 classes): the dense and one-hot
// step paths, sequential and batched, plus the fused activation kernels —
// each under every kernel tier override (scalar reference, AVX2, AVX-512).
// On machines without a tier the override is a no-op and that column
// repeats the tier below, so columns are comparable only where the
// hardware differs.
func runKernelBench() error {
	const (
		inputDim = 138
		classes  = 49
		batch    = 8
	)
	c, err := nn.NewClassifier(inputDim, []int{32, 32}, classes, 7)
	if err != nil {
		return err
	}

	// One fixed stream of one-hot index sets shaped like the detector's
	// encoder output: one active bucket per feature, ~14 actives per
	// package over the one-hot width.
	rng := mathx.NewRNG(11)
	idxs := make([][]int, 256)
	xs := make([][]float64, len(idxs))
	for i := range idxs {
		var idx []int
		for j := 0; j < inputDim; j++ {
			if rng.Bernoulli(0.1) {
				idx = append(idx, j)
			}
		}
		if len(idx) == 0 {
			idx = append(idx, rng.Intn(inputDim))
		}
		idxs[i] = idx
		x := make([]float64, inputDim)
		for _, j := range idx {
			x[j] = 1
		}
		xs[i] = x
	}

	state := c.NewState()
	states := make([]*nn.State, batch)
	for i := range states {
		states[i] = c.NewState()
	}
	buf := c.NewBatchBuffer(batch)
	scores := make([]float64, classes)
	batchScores := make([][]float64, batch)
	batchIdxs := make([][]int, batch)
	batchXs := make([][]float64, batch)
	for i := 0; i < batch; i++ {
		batchScores[i] = make([]float64, classes)
	}
	act := make([]float64, 96)
	for i := range act {
		act[i] = rng.Norm()
	}
	actDst := make([]float64, len(act))

	// Each row is one kernel; the reported figure is ns per package (the
	// batch rows divide by the batch width) except the act/* rows, which
	// are ns per kernel call on a 96-wide gate block.
	rows := []struct {
		name string
		per  int // packages (or calls) per op
		op   func(i int)
	}{
		{"step/dense", 1, func(i int) {
			c.StepLogits(state, xs[i%len(xs)], scores)
		}},
		{"step/onehot", 1, func(i int) {
			c.StepLogitsOneHot(state, idxs[i%len(idxs)], scores)
		}},
		{fmt.Sprintf("batch%d/dense", batch), batch, func(i int) {
			for s := 0; s < batch; s++ {
				batchXs[s] = xs[(i*batch+s)%len(xs)]
			}
			c.StepBatchLogits(buf, states, batchXs, batchScores)
		}},
		{fmt.Sprintf("batch%d/onehot", batch), batch, func(i int) {
			for s := 0; s < batch; s++ {
				batchIdxs[s] = idxs[(i*batch+s)%len(idxs)]
			}
			c.StepBatchLogitsOneHot(buf, states, batchIdxs, batchScores)
		}},
		{"act/vsigmoid-96", 1, func(i int) { mathx.VSigmoid(actDst, act) }},
		{"act/vtanh-96", 1, func(i int) { mathx.VTanh(actDst, act) }},
		{"act/vexp-96", 1, func(i int) { mathx.VExp(actDst, act) }},
	}
	tiers := []struct {
		name         string
		simd, avx512 bool
	}{
		{"scalar", false, false},
		{"avx2", true, false},
		{"avx512", true, true},
	}

	fmt.Printf("%-16s", "kernel")
	for _, tier := range tiers {
		fmt.Printf(" %12s", tier.name)
	}
	fmt.Println("   (ns/package; act rows ns/call)")
	for _, row := range rows {
		fmt.Printf("%-16s", row.name)
		for _, tier := range tiers {
			prevSIMD := mathx.SetSIMDEnabled(tier.simd)
			prevAVX512 := mathx.SetAVX512Enabled(tier.avx512)
			ns := timeOp(row.op) / float64(row.per)
			mathx.SetAVX512Enabled(prevAVX512)
			mathx.SetSIMDEnabled(prevSIMD)
			fmt.Printf(" %12.0f", ns)
		}
		fmt.Println()
	}
	return nil
}

// timeOp times op, growing the iteration count until the measured run is
// long enough to trust, and returns ns per op.
func timeOp(op func(i int)) float64 {
	for i := 0; i < 200; i++ {
		op(i)
	}
	n := 500
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			op(i)
		}
		elapsed := time.Since(start)
		if elapsed >= 60*time.Millisecond {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		n *= 4
	}
}
