// Command icsbench reproduces the paper's evaluation: it generates the
// simulated gas pipeline dataset, trains the two-level framework (with and
// without probabilistic noise) plus the six baselines, and prints every
// table and figure of §VIII.
//
// Usage:
//
//	icsbench [-packages N] [-seed S] [-full] [-quiet]
//
// -full runs at the original dataset's scale with the paper's 2×256 LSTM
// (slow); the default runs a scaled configuration that preserves every
// qualitative result.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icsdetect/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		packages = flag.Int("packages", 0, "dataset size in packages (0 = configuration default)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = configuration default)")
		full     = flag.Bool("full", false, "run at the paper's full scale (slow)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		epochs   = flag.Int("epochs", 0, "override LSTM training epochs")
		markdown = flag.Bool("markdown", false, "emit a markdown report instead of plain tables")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.PaperScaleConfig()
	}
	if *packages > 0 {
		cfg.Packages = *packages
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *epochs > 0 {
		cfg.Core.Fit.Epochs = *epochs
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg)
		}
	}

	start := time.Now()
	env, err := experiments.BuildEnv(cfg, progress)
	if err != nil {
		return err
	}
	progress(fmt.Sprintf("environment ready in %v", time.Since(start).Round(time.Millisecond)))

	if *markdown {
		return experiments.WriteMarkdown(os.Stdout, env)
	}

	fmt.Println(experiments.RunFigure4(env).String())

	fig5, err := experiments.RunFigure5(env)
	if err != nil {
		return err
	}
	fmt.Println(fig5.String())

	fmt.Println(experiments.RunTableIII(env).String())
	fmt.Println(experiments.RunFigure6(env).String())

	fig7, err := experiments.RunFigure7(env, 10)
	if err != nil {
		return err
	}
	fmt.Println(fig7.String())

	t4, err := experiments.RunTableIV(env)
	if err != nil {
		return err
	}
	fmt.Println(t4.String())
	fmt.Println(experiments.RunTableV(t4).String())

	fmt.Printf("model memory: %d KB; total wall clock: %v\n",
		env.Framework.MemoryBytes()/1024, time.Since(start).Round(time.Millisecond))
	return nil
}
