// Command icsbench reproduces the paper's evaluation: it generates the
// simulated gas pipeline dataset, trains the two-level framework (with and
// without probabilistic noise) plus the six baselines, and prints every
// table and figure of §VIII.
//
// Usage:
//
//	icsbench [-packages N] [-seed S] [-full] [-quiet]
//	icsbench -trainbench
//
// -full runs at the original dataset's scale with the paper's 2×256 LSTM
// (slow); the default runs a scaled configuration that preserves every
// qualitative result. -trainbench skips the evaluation and instead
// measures the batched training engine against the per-window reference at
// the paper's 2×256 model scale, reporting windows/sec and the speedup.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/experiments"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		packages = flag.Int("packages", 0, "dataset size in packages (0 = configuration default)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = configuration default)")
		full     = flag.Bool("full", false, "run at the paper's full scale (slow)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		epochs   = flag.Int("epochs", 0, "override LSTM training epochs")
		markdown = flag.Bool("markdown", false, "emit a markdown report instead of plain tables")
		trainB   = flag.Bool("trainbench", false, "benchmark batched vs reference training at paper scale and exit")
	)
	flag.Parse()

	if *trainB {
		return runTrainBench(*packages, *seed)
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.PaperScaleConfig()
	}
	if *packages > 0 {
		cfg.Packages = *packages
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *epochs > 0 {
		cfg.Core.Fit.Epochs = *epochs
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg)
		}
	}

	start := time.Now()
	env, err := experiments.BuildEnv(cfg, progress)
	if err != nil {
		return err
	}
	progress(fmt.Sprintf("environment ready in %v", time.Since(start).Round(time.Millisecond)))

	if *markdown {
		return experiments.WriteMarkdown(os.Stdout, env)
	}

	fmt.Println(experiments.RunFigure4(env).String())

	fig5, err := experiments.RunFigure5(env)
	if err != nil {
		return err
	}
	fmt.Println(fig5.String())

	fmt.Println(experiments.RunTableIII(env).String())
	fmt.Println(experiments.RunFigure6(env).String())

	fig7, err := experiments.RunFigure7(env, 10)
	if err != nil {
		return err
	}
	fmt.Println(fig7.String())

	t4, err := experiments.RunTableIV(env)
	if err != nil {
		return err
	}
	fmt.Println(t4.String())
	fmt.Println(experiments.RunTableV(t4).String())

	fmt.Printf("model memory: %d KB; total wall clock: %v\n",
		env.Framework.MemoryBytes()/1024, time.Since(start).Round(time.Millisecond))
	return nil
}

// runTrainBench measures one training epoch of the paper-scale (2×256)
// LSTM under both gradient engines on the same simulated corpus and prints
// the throughput ratio. Both engines produce bitwise-identical models (the
// equivalence is proven by the test suite and BenchmarkTrainThroughput);
// this runner exists to measure the win at larger corpus sizes.
func runTrainBench(packages int, seed uint64) error {
	if packages <= 0 {
		packages = 8000
	}
	if seed == 0 {
		seed = 1
	}
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(packages, seed))
	if err != nil {
		return err
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		return err
	}
	gran := signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 6, SetpointBins: 3, PIDClusters: 2,
	}
	enc, err := signature.FitEncoder(split.Train, gran, seed)
	if err != nil {
		return err
	}
	db := signature.BuildDB(enc, split.Train)
	ienc := core.NewInputEncoder(enc)
	seqs := core.BuildSequences(enc, ienc, db, split.Train, nil)
	nWindows := len(nn.MakeWindows(seqs, 32))
	fmt.Printf("training corpus: %d windows of 32, input dim %d, |S|=%d, model 2x256\n",
		nWindows, ienc.Dim, db.Size())

	rate := func(tr nn.TrainerKind) (float64, error) {
		model, err := nn.NewClassifier(ienc.Dim, []int{256, 256}, db.Size(), seed)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := nn.Train(model, seqs, nn.TrainConfig{
			Epochs: 1, Window: 32, BatchSize: 16, LR: 2e-3, ClipNorm: 5,
			Seed: seed, Workers: 1, Trainer: tr,
		}); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		r := float64(nWindows) / elapsed.Seconds()
		fmt.Printf("%-10s %8.1f windows/s  (%v/epoch)\n", tr, r, elapsed.Round(time.Millisecond))
		return r, nil
	}
	ref, err := rate(nn.TrainerReference)
	if err != nil {
		return err
	}
	bat, err := rate(nn.TrainerBatched)
	if err != nil {
		return err
	}
	fmt.Printf("speedup: %.2fx\n", bat/ref)
	return nil
}
