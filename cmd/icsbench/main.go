// Command icsbench reproduces the paper's evaluation: it generates the
// simulated gas pipeline dataset, trains the two-level framework (with and
// without probabilistic noise) plus the six baselines, and prints every
// table and figure of §VIII.
//
// Usage:
//
//	icsbench [-packages N] [-seed S] [-full] [-quiet]
//	icsbench -trainbench
//	icsbench -stackbench [-packages N] [-levels pca,lstm -fusion weighted]
//	icsbench -stackbench -precision f32 [-json]
//	icsbench -kernelbench [-json]
//	icsbench -servebench [-conns 64] [-records 2000] [-subs 8] [-json]
//
// -full runs at the original dataset's scale with the paper's 2×256 LSTM
// (slow); the default runs a scaled configuration that preserves every
// qualitative result. -trainbench skips the evaluation and instead
// measures the batched training engine against the per-window reference at
// the paper's 2×256 model scale, reporting windows/sec and the speedup.
// -stackbench measures the composable detection stacks: sequential
// throughput with per-level time share, and engine throughput with the
// per-stage micro-batch widths, across bloom / bloom,lstm /
// bloom,pca,lstm / all-levels / bloom,lstm,ae (plus an optional -levels
// custom stack);
// -precision f32 benches the stacks on the float32 inference tier,
// skipping stacks with levels that have no f32 path. Results are recorded
// in BENCH.md. -kernelbench microbenchmarks the inference kernels
// themselves — dense vs one-hot step, sequential vs batched, and the
// vectorized activations, at both f64 and f32 — under each kernel tier
// (scalar, AVX2, AVX-512). -servebench measures the wire-to-verdict
// serving path end to end: a real serve.Server on loopback TCP, -conns
// concurrent replay connections of -records each fanning out to -subs
// verdict subscribers, first over the per-package admission path and then
// over the burst path, reporting pkg/s, verdict latency percentiles, and
// the burst speedup (verdicts are cross-checked byte for byte between the
// modes). -json emits the
// -stackbench/-kernelbench/-servebench results as a machine-readable JSON
// document on stdout (progress moves to stderr); `make bench-json`
// records them as BENCH_STACK.json, BENCH_KERNELS.json and
// BENCH_SERVE.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/experiments"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/metrics"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"

	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/recon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		packages = flag.Int("packages", 0, "dataset size in packages (0 = configuration default)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = configuration default)")
		full     = flag.Bool("full", false, "run at the paper's full scale (slow)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		epochs   = flag.Int("epochs", 0, "override LSTM training epochs")
		markdown = flag.Bool("markdown", false, "emit a markdown report instead of plain tables")
		trainB   = flag.Bool("trainbench", false, "benchmark batched vs reference training at paper scale and exit")
		stackB   = flag.Bool("stackbench", false, "benchmark detection stacks (per-level time share + throughput) and exit")
		kernelB  = flag.Bool("kernelbench", false, "microbenchmark the inference kernels (dense vs one-hot × precisions × kernel tiers) and exit")
		serveB   = flag.Bool("servebench", false, "benchmark the wire-to-verdict serving path (per-package vs burst admission over loopback TCP) and exit")
		conns    = flag.Int("conns", 64, "with -servebench: concurrent replay connections")
		records  = flag.Int("records", 2000, "with -servebench: records replayed per connection")
		subs     = flag.Int("subs", 8, "with -servebench: verdict subscribers the hub fans out to")
		testdata = flag.String("testdata", "testdata/traces", "with -servebench: committed corpus dir holding model.fw (trains a model when absent)")
		levels   = flag.String("levels", "", "with -stackbench/-servebench: bench this custom stack")
		fusion   = flag.String("fusion", "", "with -stackbench/-servebench: fusion policy of the -levels custom stack")
		prec     = flag.String("precision", "", "with -stackbench: numeric tier to bench, f64 (default) or f32")
		jsonOut  = flag.Bool("json", false, "with -stackbench/-kernelbench/-servebench: emit results as JSON on stdout")
	)
	flag.Parse()

	if *trainB {
		return runTrainBench(*packages, *seed)
	}
	if *stackB {
		return runStackBench(*packages, *seed, *levels, *fusion, *prec, *jsonOut)
	}
	if *kernelB {
		return runKernelBench(*jsonOut)
	}
	if *serveB {
		return runServeBench(*testdata, *conns, *records, *subs, *levels, *fusion, *jsonOut)
	}
	if *jsonOut {
		return fmt.Errorf("-json applies to -stackbench, -kernelbench and -servebench")
	}
	if *prec != "" {
		return fmt.Errorf("-precision applies to -stackbench")
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.PaperScaleConfig()
	}
	if *packages > 0 {
		cfg.Packages = *packages
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *epochs > 0 {
		cfg.Core.Fit.Epochs = *epochs
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg)
		}
	}

	start := time.Now()
	env, err := experiments.BuildEnv(cfg, progress)
	if err != nil {
		return err
	}
	progress(fmt.Sprintf("environment ready in %v", time.Since(start).Round(time.Millisecond)))

	if *markdown {
		return experiments.WriteMarkdown(os.Stdout, env)
	}

	fmt.Println(experiments.RunFigure4(env).String())

	fig5, err := experiments.RunFigure5(env)
	if err != nil {
		return err
	}
	fmt.Println(fig5.String())

	fmt.Println(experiments.RunTableIII(env).String())
	fmt.Println(experiments.RunFigure6(env).String())

	fig7, err := experiments.RunFigure7(env, 10)
	if err != nil {
		return err
	}
	fmt.Println(fig7.String())

	t4, err := experiments.RunTableIV(env)
	if err != nil {
		return err
	}
	fmt.Println(t4.String())
	fmt.Println(experiments.RunTableV(t4).String())

	fmt.Printf("model memory: %d KB; total wall clock: %v\n",
		env.Framework.MemoryBytes()/1024, time.Since(start).Round(time.Millisecond))
	return nil
}

// runTrainBench measures one training epoch of the paper-scale (2×256)
// LSTM under both gradient engines on the same simulated corpus and prints
// the throughput ratio. Both engines produce bitwise-identical models (the
// equivalence is proven by the test suite and BenchmarkTrainThroughput);
// this runner exists to measure the win at larger corpus sizes.
func runTrainBench(packages int, seed uint64) error {
	if packages <= 0 {
		packages = 8000
	}
	if seed == 0 {
		seed = 1
	}
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(packages, seed))
	if err != nil {
		return err
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		return err
	}
	gran := signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 6, SetpointBins: 3, PIDClusters: 2,
	}
	enc, err := signature.FitEncoder(split.Train, gran, seed)
	if err != nil {
		return err
	}
	db := signature.BuildDB(enc, split.Train)
	ienc := core.NewInputEncoder(enc)
	seqs := core.BuildSequences(enc, ienc, db, split.Train, nil)
	nWindows := len(nn.MakeWindows(seqs, 32))
	fmt.Printf("training corpus: %d windows of 32, input dim %d, |S|=%d, model 2x256\n",
		nWindows, ienc.Dim, db.Size())

	rate := func(tr nn.TrainerKind) (float64, error) {
		model, err := nn.NewClassifier(ienc.Dim, []int{256, 256}, db.Size(), seed)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := nn.Train(model, seqs, nn.TrainConfig{
			Epochs: 1, Window: 32, BatchSize: 16, LR: 2e-3, ClipNorm: 5,
			Seed: seed, Workers: 1, Trainer: tr,
		}); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		r := float64(nWindows) / elapsed.Seconds()
		fmt.Printf("%-10s %8.1f windows/s  (%v/epoch)\n", tr, r, elapsed.Round(time.Millisecond))
		return r, nil
	}
	ref, err := rate(nn.TrainerReference)
	if err != nil {
		return err
	}
	bat, err := rate(nn.TrainerBatched)
	if err != nil {
		return err
	}
	fmt.Printf("speedup: %.2fx\n", bat/ref)
	return nil
}

// timedStage wraps a StageDetector and accumulates wall time per phase,
// the instrument behind the per-level time-share column of -stackbench.
// Sequential sessions drive Check/Advance directly, so the promoted batch
// methods of the inner stage are never consulted here.
type timedStage struct {
	core.StageDetector
	check, advance *time.Duration
}

func (t timedStage) Check(st core.StageState, pc *core.PackageContext, r *core.StageResult) {
	start := time.Now()
	t.StageDetector.Check(st, pc, r)
	*t.check += time.Since(start)
}

func (t timedStage) Advance(st core.StageState, pc *core.PackageContext, v *core.Verdict) {
	start := time.Now()
	t.StageDetector.Advance(st, pc, v)
	*t.advance += time.Since(start)
}

// stackBenchAll is the widest signature stack -stackbench measures: every
// promoted level plus the built-in two.
const stackBenchAll = "bloom,bf4,pca,gmm,iforest,bayesnet,svdd,lstm"

// stackBenchRecon is the reconstruction-stage row: the paper stack plus
// the LSTM autoencoder over the continuous register windows. It is f64
// only — the reconstruction family has no f32 path, so at -precision f32
// the row is skipped like any other f32-incapable built-in.
const stackBenchRecon = "bloom,lstm,ae"

// stackResult is one -stackbench row as emitted by -json.
type stackResult struct {
	Stack            string             `json:"stack"`
	Precision        string             `json:"precision"`
	SeqPkgsPerSec    float64            `json:"seq_pkgs_per_sec"`
	EnginePkgsPerSec float64            `json:"engine_pkgs_per_sec"`
	AdvanceBatch     float64            `json:"advance_batch"`
	CheckBatch       float64            `json:"check_batch"`
	LevelTimeShare   map[string]float64 `json:"level_time_share"`
}

// kernelResult is one -kernelbench cell as emitted by -json: one kernel at
// one precision on one kernel tier.
type kernelResult struct {
	Kernel    string  `json:"kernel"`
	Precision string  `json:"precision"`
	Tier      string  `json:"tier"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// benchDoc is the -json document: exactly one of Stacks/Kernels/Serve is
// set, named by Benchmark.
type benchDoc struct {
	Benchmark string            `json:"benchmark"`
	Packages  int               `json:"packages,omitempty"`
	Stacks    []stackResult     `json:"stacks,omitempty"`
	Kernels   []kernelResult    `json:"kernels,omitempty"`
	Serve     *serveBenchResult `json:"serve,omitempty"`
}

func writeJSON(doc benchDoc) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runStackBench trains one framework plus every promoted level's stage
// model, then measures each stack: sequential throughput with per-level
// time share (instrumented stages), and engine throughput with the mean
// micro-batch widths of the batched Advance and Check passes. precName
// selects the numeric tier; at f32, built-in stacks containing a level
// without an f32 path are skipped (noted on stderr), while an f32-incapable
// -levels custom stack is an error.
func runStackBench(packages int, seed uint64, customLevels, customFusion, precName string, jsonOut bool) error {
	prec, err := core.ParsePrecision(precName)
	if err != nil {
		return err
	}
	progress := os.Stdout
	if jsonOut {
		progress = os.Stderr
	}
	if packages <= 0 {
		packages = 10000
	}
	if seed == 0 {
		seed = 1
	}
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(packages, seed))
	if err != nil {
		return err
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Granularity = signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 6, SetpointBins: 3, PIDClusters: 2,
	}
	cfg.Hidden = []int{32, 32}
	cfg.Fit.Epochs = 6
	cfg.Seed = seed
	start := time.Now()
	fw, report, err := core.Train(split, cfg)
	if err != nil {
		return err
	}
	allSpec, err := core.ParseStackSpec(stackBenchAll+",ae", "majority")
	if err != nil {
		return err
	}
	if err := fw.TrainStages(allSpec, split, seed); err != nil {
		return err
	}
	fmt.Fprintf(progress, "framework + %d stage models trained in %v (|S|=%d k=%d, test %d packages)\n",
		len(fw.Extra), time.Since(start).Round(time.Millisecond), report.Signatures,
		report.ChosenK, len(split.Test))

	stacks := []struct {
		levels, fusion string
		custom         bool
	}{
		{"bloom", "first-hit", false},
		{"bloom,lstm", "first-hit", false},
		{"bloom,pca,lstm", "first-hit", false},
		{stackBenchAll, "majority", false},
		{stackBenchRecon, "first-hit", false},
	}
	if customLevels != "" {
		stacks = append(stacks, struct {
			levels, fusion string
			custom         bool
		}{customLevels, customFusion, true})
	}
	var results []stackResult
	for _, sb := range stacks {
		spec, err := core.ParseStackSpec(sb.levels, sb.fusion)
		if err != nil {
			return err
		}
		spec.Precision = prec
		if err := spec.Validate(); err != nil {
			if sb.custom {
				return err
			}
			// Built-in list entries with no path at this tier are noted, not
			// fatal: `-precision f32` benches whatever the tier can run.
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", sb.levels, err)
			continue
		}
		res, err := benchStack(fw, spec, split.Test, jsonOut)
		if err != nil {
			return fmt.Errorf("stack %s: %w", spec, err)
		}
		results = append(results, res)
	}
	if jsonOut {
		return writeJSON(benchDoc{Benchmark: "stackbench", Packages: packages, Stacks: results})
	}
	return nil
}

// benchStack measures one stack sequentially (instrumented) and through
// the engine (16 streams on 2 shards).
func benchStack(fw *core.Framework, spec core.StackSpec, test []*dataset.Package, jsonOut bool) (stackResult, error) {
	// Repeat the test stream until the run is long enough to time.
	const targetPkgs = 60000
	reps := targetPkgs/len(test) + 1

	// Sequential, instrumented per level.
	stack, err := fw.NewStack(spec)
	if err != nil {
		return stackResult{}, err
	}
	inner := stack.Stages()
	timers := make([][2]time.Duration, len(inner))
	wrapped := make([]core.StageDetector, len(inner))
	for i, st := range inner {
		wrapped[i] = timedStage{StageDetector: st, check: &timers[i][0], advance: &timers[i][1]}
	}
	tstack, err := core.NewStackFromStages(fw, spec, wrapped)
	if err != nil {
		return stackResult{}, err
	}
	sess := tstack.NewSession()
	seqStart := time.Now()
	n := 0
	for r := 0; r < reps; r++ {
		for _, p := range test {
			sess.Classify(p)
			n++
		}
		sess.Reset()
	}
	seqWall := time.Since(seqStart)
	share := metrics.NewBreakdown()
	for i, st := range inner {
		share.Add(st.Name(), float64(timers[i][0]+timers[i][1]))
	}

	// Engine: the same packages interleaved over 16 streams on 2 shards.
	const streams = 16
	eng, err := engine.New(fw, engine.Config{Shards: 2, MaxBatch: 32, Stack: spec}, nil)
	if err != nil {
		return stackResult{}, err
	}
	keys := make([]string, streams)
	for s := range keys {
		keys[s] = fmt.Sprintf("dev-%02d", s)
	}
	engStart := time.Now()
	en := 0
	for r := 0; r < reps; r++ {
		for i, p := range test {
			if err := eng.Submit(keys[i%streams], p); err != nil {
				return stackResult{}, err
			}
			en++
		}
	}
	if err := eng.Barrier(); err != nil {
		return stackResult{}, err
	}
	engWall := time.Since(engStart)
	stats := eng.Stats()
	eng.Stop()

	meanCheck := 0.0
	if stats.CheckBatches > 0 {
		meanCheck = float64(stats.CheckBatched) / float64(stats.CheckBatches)
	}
	res := stackResult{
		Stack:            spec.String(),
		Precision:        spec.Precision.String(),
		SeqPkgsPerSec:    float64(n) / seqWall.Seconds(),
		EnginePkgsPerSec: float64(en) / engWall.Seconds(),
		AdvanceBatch:     stats.MeanBatch(),
		CheckBatch:       meanCheck,
		LevelTimeShare:   make(map[string]float64, len(inner)),
	}
	for _, st := range inner {
		res.LevelTimeShare[st.Name()] = share.Share(st.Name())
	}
	if !jsonOut {
		fmt.Printf("%-52s seq %7.0f pkg/s  engine %7.0f pkg/s  advance-batch %.1f  check-batch %.1f\n",
			res.Stack, res.SeqPkgsPerSec, res.EnginePkgsPerSec, res.AdvanceBatch, res.CheckBatch)
		fmt.Printf("    level time share: %s\n", share)
	}
	return res, nil
}
