// Command icsdetect classifies an ARFF capture with a trained model and
// reports detection metrics.
//
// Usage:
//
//	icsdetect -model model.bin -in capture.arff [-mode combined] [-k 4]
//	          [-alerts alerts.txt]
//	icsdetect -model model.bin -in capture.arff -levels bloom,pca,lstm \
//	          -fusion majority
//
// -levels composes an arbitrary detection stack from the registered level
// kinds (see -levels list); levels beyond the built-in two need their
// stage models in the loaded framework (train them with icstrain -levels).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"

	// Register the promoted baseline detection levels.
	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/recon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsdetect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath = flag.String("model", "model.bin", "trained model path")
		in        = flag.String("in", "", "input ARFF capture (required)")
		mode      = flag.String("mode", "combined", "detector mode: combined, package, series")
		levels    = flag.String("levels", "", "detection stack, e.g. bloom,pca,lstm (overrides -mode; registered: "+strings.Join(core.StageKinds(), ", ")+"); \"list\" prints the kinds")
		fusion    = flag.String("fusion", "", "verdict fusion policy for -levels: first-hit, majority or weighted")
		precision = flag.String("precision", "", "numeric tier: f64 (default) or f32 (float32 SIMD inference)")
		k         = flag.Int("k", 0, "override top-k threshold (0 keeps the trained k)")
		alerts    = flag.String("alerts", "", "write one line per detected anomaly to this file")
	)
	flag.Parse()
	if *levels == "list" {
		fmt.Println(strings.Join(core.StageKinds(), "\n"))
		return nil
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	spec, err := core.ResolveStackFlags(*levels, *fusion, *mode)
	if err != nil {
		return err
	}
	if spec, err = spec.WithPrecision(*precision); err != nil {
		return err
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	fw, err := core.Load(mf)
	mf.Close()
	if err != nil {
		return err
	}
	if *k > 0 {
		if err := fw.SetK(*k); err != nil {
			return err
		}
	}
	if missing := fw.MissingStages(spec); len(missing) > 0 {
		return fmt.Errorf("model has no trained stage models for %s (retrain with icstrain -levels %s)",
			strings.Join(missing, ", "), *levels)
	}

	df, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadARFF(df)
	df.Close()
	if err != nil {
		return err
	}

	var alertW *bufio.Writer
	if *alerts != "" {
		af, err := os.Create(*alerts)
		if err != nil {
			return err
		}
		defer af.Close()
		alertW = bufio.NewWriter(af)
		defer alertW.Flush()
	}

	sess, err := fw.NewStackSession(spec)
	if err != nil {
		return err
	}
	var conf metrics.Confusion
	per := metrics.NewPerAttack()
	byLevel := make(map[core.Level]int)
	for i, p := range ds.Packages {
		v := sess.Classify(p)
		conf.Add(v.Anomaly, p.IsAttack())
		per.Add(p.Label, v.Anomaly)
		if v.Anomaly {
			byLevel[v.Level]++
		}
		if v.Anomaly && alertW != nil {
			fmt.Fprintf(alertW, "package %d t=%.3f level=%s signature=%s label=%s\n",
				i, p.Time, v.Level, v.Signature, p.Label)
		}
	}

	sum := metrics.Summarize(&conf)
	fmt.Printf("stack: %s\n", spec)
	fmt.Printf("packages: %d\n", conf.Total())
	fmt.Printf("precision=%.4f recall=%.4f accuracy=%.4f f1=%.4f\n",
		sum.Precision, sum.Recall, sum.Accuracy, sum.F1)
	fmt.Printf("TP=%d FP=%d TN=%d FN=%d\n", conf.TP, conf.FP, conf.TN, conf.FN)
	for l := core.Level(0); l < core.NumLevels; l++ {
		if n := byLevel[l]; n > 0 {
			fmt.Printf("level %-12s %6d detections\n", l, n)
		}
	}
	for _, at := range dataset.AttackTypes {
		if per.Total[at] > 0 {
			fmt.Printf("%-6s detected %4d/%4d (%.2f)\n",
				at, per.Detected[at], per.Total[at], per.Ratio(at))
		}
	}
	return nil
}
