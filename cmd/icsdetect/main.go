// Command icsdetect classifies an ARFF capture with a trained model and
// reports detection metrics.
//
// Usage:
//
//	icsdetect -model model.bin -in capture.arff [-mode combined] [-k 4]
//	          [-alerts alerts.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsdetect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath = flag.String("model", "model.bin", "trained model path")
		in        = flag.String("in", "", "input ARFF capture (required)")
		mode      = flag.String("mode", "combined", "detector mode: combined, package, series")
		k         = flag.Int("k", 0, "override top-k threshold (0 keeps the trained k)")
		alerts    = flag.String("alerts", "", "write one line per detected anomaly to this file")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	fw, err := core.Load(mf)
	mf.Close()
	if err != nil {
		return err
	}
	if *k > 0 {
		if err := fw.SetK(*k); err != nil {
			return err
		}
	}

	df, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadARFF(df)
	df.Close()
	if err != nil {
		return err
	}

	var detMode core.Mode
	switch *mode {
	case "combined":
		detMode = core.ModeCombined
	case "package":
		detMode = core.ModePackageOnly
	case "series":
		detMode = core.ModeSeriesOnly
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	var alertW *bufio.Writer
	if *alerts != "" {
		af, err := os.Create(*alerts)
		if err != nil {
			return err
		}
		defer af.Close()
		alertW = bufio.NewWriter(af)
		defer alertW.Flush()
	}

	sess := fw.NewSessionMode(detMode)
	var conf metrics.Confusion
	per := metrics.NewPerAttack()
	for i, p := range ds.Packages {
		v := sess.Classify(p)
		conf.Add(v.Anomaly, p.IsAttack())
		per.Add(p.Label, v.Anomaly)
		if v.Anomaly && alertW != nil {
			fmt.Fprintf(alertW, "package %d t=%.3f level=%s signature=%s label=%s\n",
				i, p.Time, v.Level, v.Signature, p.Label)
		}
	}

	sum := metrics.Summarize(&conf)
	fmt.Printf("packages: %d\n", conf.Total())
	fmt.Printf("precision=%.4f recall=%.4f accuracy=%.4f f1=%.4f\n",
		sum.Precision, sum.Recall, sum.Accuracy, sum.F1)
	fmt.Printf("TP=%d FP=%d TN=%d FN=%d\n", conf.TP, conf.FP, conf.TN, conf.FN)
	for _, at := range dataset.AttackTypes {
		if per.Total[at] > 0 {
			fmt.Printf("%-6s detected %4d/%4d (%.2f)\n",
				at, per.Detected[at], per.Total[at], per.Ratio(at))
		}
	}
	return nil
}
