// Command icstrain trains the multi-level anomaly detection framework on
// an ARFF capture and saves the model.
//
// Usage:
//
//	icstrain -in capture.arff -model model.bin [-hidden 64,64] [-epochs 12]
//	         [-scenario watertank] [-search] [-no-noise]
//	         [-trainer batched|reference] [-checkpoint prefix]
//	         [-levels bloom,pca,lstm]
//
// -levels additionally trains the stage models of the named promoted
// detection levels (pca, gmm, iforest, bayesnet, svdd, bf4) from the same
// split and persists them inside the model, so icsdetect/icsreplay/
// icsmonitor can compose them into stacks.
//
// By default the Table III-style fixed granularity is tuned to the capture
// size through the scenario's scale heuristic (-scenario names the testbed
// the capture came from); -search runs the paper's §IV-B granularity search
// instead. Training uses the batched gradient engine; -trainer=reference
// selects the per-window engine (both produce bitwise-identical models for
// the same seed). Each epoch reports loss, wall time and windows/sec, and
// -checkpoint writes a loadable model snapshot after every epoch.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/nn"
	"icsdetect/internal/scenario"

	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/recon"
	_ "icsdetect/internal/watertank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icstrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input ARFF capture (required)")
		scName    = flag.String("scenario", scenario.Default, "testbed scenario the capture came from: "+strings.Join(scenario.Names(), ", "))
		model     = flag.String("model", "model.bin", "output model path")
		hidden    = flag.String("hidden", "64,64", "LSTM hidden sizes, comma separated")
		epochs    = flag.Int("epochs", 12, "training epochs")
		noNoise   = flag.Bool("no-noise", false, "disable probabilistic-noise training")
		search    = flag.Bool("search", false, "run the granularity search instead of the scale heuristic")
		lambda    = flag.Float64("lambda", 10, "noise frequency parameter λ")
		seed      = flag.Uint64("seed", 1, "random seed")
		trainer   = flag.String("trainer", "batched", "gradient engine: batched or reference")
		ckpt      = flag.String("checkpoint", "", "when set, write <prefix>-epochNNN.bin after every epoch")
		levels    = flag.String("levels", "", "also train these promoted detection levels into the model, e.g. bloom,pca,lstm (registered: "+strings.Join(core.StageKinds(), ", ")+")")
		fusion    = flag.String("fusion", "", "fusion policy used only to validate -levels")
		precision = flag.String("precision", "", "numeric tier the trained stack will deploy at, validated fail-fast: f64 (default) or f32")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	sc, err := scenario.Get(*scName)
	if err != nil {
		return err
	}
	engine, err := nn.ParseTrainer(*trainer)
	if err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadARFF(f)
	f.Close()
	if err != nil {
		return err
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.UseNoise = !*noNoise
	cfg.Lambda = *lambda
	cfg.Fit.Epochs = *epochs
	cfg.Hidden, err = parseHidden(*hidden)
	if err != nil {
		return err
	}
	if !*search {
		cfg.Granularity = sc.Granularity(ds.Len())
	}
	cfg.Fit.Trainer = engine
	cfg.Fit.EpochEnd = func(st nn.EpochStats) {
		fmt.Fprintf(os.Stderr, "epoch %d/%d: loss %.4f  %.2fs  %.0f windows/s\n",
			st.Epoch, st.Epochs, st.MeanLoss, st.Duration.Seconds(), st.WindowsPerSec())
	}
	if *ckpt != "" {
		cfg.Checkpoint = func(epoch int, fw *core.Framework) {
			path := fmt.Sprintf("%s-epoch%03d.bin", *ckpt, epoch)
			if err := saveFramework(fw, path); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint %s failed: %v\n", path, err)
				return
			}
			fmt.Fprintf(os.Stderr, "checkpoint written to %s\n", path)
		}
	}

	var spec core.StackSpec
	if *levels != "" {
		if spec, err = core.ParseStackSpec(*levels, *fusion); err != nil {
			return err
		}
		// A deployment tier the stack cannot run is a pipeline typo; catch
		// it before the (long) training step, like the stack spec itself.
		if _, err := spec.WithPrecision(*precision); err != nil {
			return err
		}
	} else if _, err := core.ParsePrecision(*precision); err != nil {
		return err
	}

	start := time.Now()
	fw, report, err := core.Train(split, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained in %v: |S|=%d errv=%.4f k=%d\n",
		time.Since(start).Round(time.Millisecond),
		report.Signatures, report.PackageErrv, report.ChosenK)

	if *levels != "" {
		stageStart := time.Now()
		if err := fw.TrainStages(spec, split, *seed); err != nil {
			return err
		}
		trained := make([]string, 0, len(fw.Extra))
		for kind := range fw.Extra {
			trained = append(trained, kind)
		}
		sort.Strings(trained)
		fmt.Fprintf(os.Stderr, "stage models trained in %v: %s\n",
			time.Since(stageStart).Round(time.Millisecond), strings.Join(trained, ", "))
	}

	if err := saveFramework(fw, *model); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s (%d KB in memory)\n",
		*model, fw.MemoryBytes()/1024)
	return nil
}

// saveFramework writes fw to path, replacing any previous file.
func saveFramework(fw *core.Framework, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fw.Save(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func parseHidden(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad hidden size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
