// Command icstrain trains the two-level anomaly detection framework on an
// ARFF capture and saves the model.
//
// Usage:
//
//	icstrain -in capture.arff -model model.bin [-hidden 64,64] [-epochs 12]
//	         [-search] [-no-noise]
//
// By default the Table III-style fixed granularity is tuned to the capture
// size heuristically; -search runs the paper's §IV-B granularity search
// instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/signature"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icstrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "input ARFF capture (required)")
		model   = flag.String("model", "model.bin", "output model path")
		hidden  = flag.String("hidden", "64,64", "LSTM hidden sizes, comma separated")
		epochs  = flag.Int("epochs", 12, "training epochs")
		noNoise = flag.Bool("no-noise", false, "disable probabilistic-noise training")
		search  = flag.Bool("search", false, "run the granularity search instead of the scale heuristic")
		lambda  = flag.Float64("lambda", 10, "noise frequency parameter λ")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadARFF(f)
	f.Close()
	if err != nil {
		return err
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.UseNoise = !*noNoise
	cfg.Lambda = *lambda
	cfg.Fit.Epochs = *epochs
	cfg.Hidden, err = parseHidden(*hidden)
	if err != nil {
		return err
	}
	if !*search {
		cfg.Granularity = heuristicGranularity(ds.Len())
	}
	cfg.Fit.Progress = func(epoch int, loss float64) {
		fmt.Fprintf(os.Stderr, "epoch %d: loss %.4f\n", epoch, loss)
	}

	start := time.Now()
	fw, report, err := core.Train(split, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained in %v: |S|=%d errv=%.4f k=%d\n",
		time.Since(start).Round(time.Millisecond),
		report.Signatures, report.PackageErrv, report.ChosenK)

	out, err := os.Create(*model)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := fw.Save(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s (%d KB in memory)\n",
		*model, fw.MemoryBytes()/1024)
	return nil
}

func parseHidden(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad hidden size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// heuristicGranularity scales the discretization with the capture size, the
// practical counterpart of the paper's search when retraining frequently.
func heuristicGranularity(n int) signature.Granularity {
	switch {
	case n >= 150000:
		return signature.PaperGranularity()
	case n >= 50000:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 8, SetpointBins: 5, PIDClusters: 4}
	default:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 5, SetpointBins: 3, PIDClusters: 2}
	}
}
