// Command icsgen generates a simulated SCADA capture for a registered
// testbed scenario with the schema and attack taxonomy of the Morris
// datasets (paper §VII) and writes it as ARFF.
//
// Usage:
//
//	icsgen -packages 60000 -seed 1 -out capture.arff
//	icsgen -scenario watertank -packages 60000 -out tank.arff
//	icsgen -normal -packages 20000 -out clean.arff   # attack-free
//
// -levels/-fusion validate a detection-stack spec against the registered
// level kinds before the capture is generated, so a gen→train→replay
// pipeline fails on a stack typo immediately instead of after the (long)
// generation step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/scenario"

	_ "icsdetect/internal/baselines"
	_ "icsdetect/internal/gaspipeline"
	_ "icsdetect/internal/recon"
	_ "icsdetect/internal/watertank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "icsgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name      = flag.String("scenario", scenario.Default, "testbed scenario: "+strings.Join(scenario.Names(), ", "))
		packages  = flag.Int("packages", 60000, "approximate capture size in packages")
		seed      = flag.Uint64("seed", 1, "random seed")
		ratio     = flag.Float64("attack-ratio", 0.219, "target fraction of attack packages")
		normal    = flag.Bool("normal", false, "generate attack-free traffic")
		out       = flag.String("out", "-", "output path (- for stdout)")
		levels    = flag.String("levels", "", "validate this detection stack spec before generating (fail-fast for pipelines; registered: "+strings.Join(core.StageKinds(), ", ")+")")
		fusion    = flag.String("fusion", "", "fusion policy for the -levels validation")
		precision = flag.String("precision", "", "numeric tier for the -levels validation: f64 (default) or f32")
	)
	flag.Parse()

	if *levels != "" {
		spec, err := core.ParseStackSpec(*levels, *fusion)
		if err != nil {
			return err
		}
		if _, err := spec.WithPrecision(*precision); err != nil {
			return err
		}
	} else if _, err := core.ParsePrecision(*precision); err != nil {
		return err
	}
	sc, err := scenario.Get(*name)
	if err != nil {
		return err
	}
	cfg := scenario.GenConfig{
		TotalPackages: *packages,
		AttackRatio:   *ratio,
		Seed:          *seed,
	}
	if *normal {
		cfg.AttackRatio = 0
	}
	ds, err := sc.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteARFFNamed(w, ds, sc.Name()); err != nil {
		return err
	}
	counts := ds.CountAttacks()
	fmt.Fprintf(os.Stderr, "wrote %d %s packages (%d normal, %d attack)\n",
		ds.Len(), sc.Name(), counts[dataset.Normal], ds.Len()-counts[dataset.Normal])
	for _, at := range dataset.AttackTypes {
		if counts[at] > 0 {
			fmt.Fprintf(os.Stderr, "  %-6s %6d\n", at, counts[at])
		}
	}
	return nil
}
