// Kernel-tier matrix shared by the conformance gates: every verdict-level
// equivalence in this package runs under each kernel tier override —
// AVX-512, AVX2 and pure-scalar — so a tier-specific kernel bug cannot hide
// behind the tier the CI machine happens to run. On hardware without a
// tier the override is a no-op and that sub-test exercises the next tier
// down, which keeps the matrix valid (if redundant) everywhere.
package icsdetect_test

import (
	"testing"

	"icsdetect/internal/mathx"
)

// kernelTiers is the tier axis, widest first.
var kernelTiers = []struct {
	name         string
	simd, avx512 bool
}{
	{"avx512", true, true},
	{"avx2", true, false},
	{"scalar", false, false},
}

// forEachKernelTier runs f once per kernel tier, restoring the machine
// default afterwards.
func forEachKernelTier(t *testing.T, f func(t *testing.T)) {
	for _, tier := range kernelTiers {
		t.Run(tier.name, func(t *testing.T) {
			prevSIMD := mathx.SetSIMDEnabled(tier.simd)
			prevAVX512 := mathx.SetAVX512Enabled(tier.avx512)
			defer func() {
				mathx.SetAVX512Enabled(prevAVX512)
				mathx.SetSIMDEnabled(prevSIMD)
			}()
			f(t)
		})
	}
}
