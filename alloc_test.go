// Hot-path allocation regression gates: steady-state classification must
// stay allocation-free on the sequential ClassifyOnly/Advance path for the
// default stack, and allocation-lean through the engine and for
// evidence-recording stacks (those allocate the per-verdict evidence slice
// the caller keeps). The bounds are measured ceilings plus one of slack.
package icsdetect_test

import (
	"testing"

	"icsdetect"
)

// classifyAllocs measures the mean allocations per package of a warmed
// sequential session over spec. reuse opts the session into the pooled
// per-verdict evidence buffer.
func classifyAllocs(t *testing.T, spec icsdetect.StackSpec, reuse bool) float64 {
	t.Helper()
	fx := loadStackFixture(t)
	sess, err := fx.det.NewStackSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	sess.ReuseEvidence(reuse)
	pkgs := fx.split.Test
	if len(pkgs) > 1400 {
		pkgs = pkgs[:1400]
	}
	warm := pkgs[:400]
	steady := pkgs[400:]
	for _, p := range warm {
		sess.Classify(p)
	}
	i := 0
	per := testing.AllocsPerRun(len(steady), func() {
		v, pc := sess.ClassifyOnly(steady[i])
		sess.Advance(pc, v)
		i++
		if i == len(steady) {
			i = 0
			sess.Reset()
		}
	})
	return per
}

// engineAllocs measures the mean allocations per package of a warmed
// engine over spec (whole submit→classify→handle path, all shards).
func engineAllocs(t *testing.T, spec icsdetect.StackSpec) float64 {
	t.Helper()
	fx := loadStackFixture(t)
	pkgs := fx.split.Test
	if len(pkgs) > 1400 {
		pkgs = pkgs[:1400]
	}
	eng, err := icsdetect.NewEngine(fx.det, icsdetect.EngineConfig{
		Shards: 2, MaxBatch: 8, QueueDepth: 32, Stack: spec,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	feed := func(n int) {
		for r := 0; r < n; r++ {
			for _, p := range pkgs {
				if err := eng.Submit("dev", p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	feed(1) // warm: stream state, batches, tick buffers
	const rounds = 3
	per := testing.AllocsPerRun(1, func() { feed(rounds) })
	return per / float64(rounds*len(pkgs))
}

// TestHotPathAllocations gates the per-package allocation counts. If a
// refactor trips a gate, either the hot path regressed (fix it) or the
// cost is deliberate (justify it and raise the bound in the same change).
func TestHotPathAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gates use the trained stack fixture")
	}
	defaultSpec := icsdetect.DefaultStack()
	fourSpec, err := icsdetect.ParseStack("bloom,pca,gmm,lstm", "majority")
	if err != nil {
		t.Fatal(err)
	}
	f32Spec := defaultSpec
	f32Spec.Precision = icsdetect.PrecisionF32
	cases := []struct {
		name    string
		engine  bool
		reuse   bool
		spec    icsdetect.StackSpec
		ceiling float64
	}{
		// Sequential default stack is allocation-free in steady state: the
		// session reuses its encoding buffers, known signatures intern to
		// the database's canonical strings, bloom hashes inline, and the
		// structs handed to the stage interfaces live on the session
		// (measured 0.0).
		{"sequential/default", false, false, defaultSpec, 0.5},
		// The f32 tier shares the zero-alloc hot path (measured 0.0).
		{"sequential/f32", false, false, f32Spec, 0.5},
		// The 4-level stack allocates the per-verdict evidence slice by
		// default — the caller retains it (measured 1.0)…
		{"sequential/4level", false, false, fourSpec, 1.5},
		// …and is allocation-free once the caller opts into the pooled
		// evidence buffer (measured 0.0).
		{"sequential/4level/reuse", false, true, fourSpec, 0.5},
		// Engine paths add a fraction of amortized submit/batch machinery
		// (measured 0.2 and 1.2).
		{"engine/default", true, false, defaultSpec, 1},
		{"engine/f32", true, false, f32Spec, 1},
		{"engine/4level", true, false, fourSpec, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var per float64
			if c.engine {
				per = engineAllocs(t, c.spec)
			} else {
				per = classifyAllocs(t, c.spec, c.reuse)
			}
			t.Logf("%s: %.2f allocs/package (gate %.0f)", c.name, per, c.ceiling)
			if per > c.ceiling {
				t.Errorf("%s allocates %.2f/package, gate is %.0f", c.name, per, c.ceiling)
			}
		})
	}
}
