// Hot-path allocation regression gates: steady-state classification must
// stay allocation-lean, on the sequential ClassifyOnly/Advance path and
// through the engine, for the default two-level stack and a composed
// 4-level stack. The bounds are regression gates (measured ceiling plus
// slack), not zero: the package encoder allocates the discretized vector
// and signature string per package, and evidence-recording stacks allocate
// the per-verdict evidence slice.
package icsdetect_test

import (
	"testing"

	"icsdetect"
)

// classifyAllocs measures the mean allocations per package of a warmed
// sequential session over spec.
func classifyAllocs(t *testing.T, spec icsdetect.StackSpec) float64 {
	t.Helper()
	fx := loadStackFixture(t)
	sess, err := fx.det.NewStackSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := fx.split.Test
	if len(pkgs) > 1400 {
		pkgs = pkgs[:1400]
	}
	warm := pkgs[:400]
	steady := pkgs[400:]
	for _, p := range warm {
		sess.Classify(p)
	}
	i := 0
	per := testing.AllocsPerRun(len(steady), func() {
		v, pc := sess.ClassifyOnly(steady[i])
		sess.Advance(pc, v)
		i++
		if i == len(steady) {
			i = 0
			sess.Reset()
		}
	})
	return per
}

// engineAllocs measures the mean allocations per package of a warmed
// engine over spec (whole submit→classify→handle path, all shards).
func engineAllocs(t *testing.T, spec icsdetect.StackSpec) float64 {
	t.Helper()
	fx := loadStackFixture(t)
	pkgs := fx.split.Test
	if len(pkgs) > 1400 {
		pkgs = pkgs[:1400]
	}
	eng, err := icsdetect.NewEngine(fx.det, icsdetect.EngineConfig{
		Shards: 2, MaxBatch: 8, QueueDepth: 32, Stack: spec,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	feed := func(n int) {
		for r := 0; r < n; r++ {
			for _, p := range pkgs {
				if err := eng.Submit("dev", p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Barrier(); err != nil {
			t.Fatal(err)
		}
	}
	feed(1) // warm: stream state, batches, tick buffers
	const rounds = 3
	per := testing.AllocsPerRun(1, func() { feed(rounds) })
	return per / float64(rounds*len(pkgs))
}

// TestHotPathAllocations gates the per-package allocation counts. If a
// refactor trips a gate, either the hot path regressed (fix it) or the
// cost is deliberate (justify it and raise the bound in the same change).
func TestHotPathAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gates use the trained stack fixture")
	}
	defaultSpec := icsdetect.DefaultStack()
	fourSpec, err := icsdetect.ParseStack("bloom,pca,gmm,lstm", "majority")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		engine  bool
		spec    icsdetect.StackSpec
		ceiling float64
	}{
		// Sequential default stack: encoder vector + signature string
		// (measured 7.0 after the extractInto/stepInfer work).
		{"sequential/default", false, defaultSpec, 8},
		// The 4-level stack adds the evidence slice; window scoring runs
		// on preallocated state scratch (measured 11.0).
		{"sequential/4level", false, fourSpec, 12},
		// Engine paths add the submit/handle machinery per package
		// (measured 8.8 and 12.0).
		{"engine/default", true, defaultSpec, 10},
		{"engine/4level", true, fourSpec, 14},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var per float64
			if c.engine {
				per = engineAllocs(t, c.spec)
			} else {
				per = classifyAllocs(t, c.spec)
			}
			t.Logf("%s: %.2f allocs/package (gate %.0f)", c.name, per, c.ceiling)
			if per > c.ceiling {
				t.Errorf("%s allocates %.2f/package, gate is %.0f", c.name, per, c.ceiling)
			}
		})
	}
}
