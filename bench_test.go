// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VIII) plus the cost-profile measurements (§VIII-A-2) and the
// ablation benches listed in DESIGN.md §5.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks share one lazily built environment (dataset +
// two trained frameworks) so that `-bench=.` finishes in minutes; the shape
// results they report come from the same runners cmd/icsbench uses at
// larger scale. Reported custom metrics (f1, precision, …) carry each
// experiment's headline numbers.
package icsdetect_test

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"icsdetect/internal/bloom"
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/experiments"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/nn"
	"icsdetect/internal/signature"
	"icsdetect/internal/trace"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// metricName makes a model name usable as a benchmark metric unit (no
// whitespace allowed).
func metricName(s string) string {
	return strings.ReplaceAll(s, " ", "_")
}

// benchEnvironment lazily builds the shared experiment environment at a
// bench-friendly scale.
func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Packages = 16000
		cfg.Granularity = signature.Granularity{
			IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 6, SetpointBins: 3, PIDClusters: 2,
		}
		cfg.Core.Granularity = cfg.Granularity
		cfg.Core.Hidden = []int{32, 32}
		cfg.Core.Fit.Epochs = 8
		cfg.Core.Fit.BatchSize = 8
		benchEnv, benchErr = experiments.BuildEnv(cfg, nil)
	})
	if benchErr != nil {
		b.Fatalf("build bench environment: %v", benchErr)
	}
	return benchEnv
}

// ---- Table/figure reproduction benches -------------------------------------

func BenchmarkFigure4Histograms(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := experiments.RunFigure4(env)
		if fig.Pressure.N == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFigure5GranularitySweep(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure5(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			feasible := 0
			for _, p := range fig.Points {
				if p.Feasible {
					feasible++
				}
			}
			b.ReportMetric(float64(len(fig.Points)), "gridpoints")
			b.ReportMetric(float64(feasible), "feasible")
		}
	}
}

func BenchmarkFigure6TopKError(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranks := env.Framework.Series.TopKRanks(
			env.Framework.Encoder, env.Framework.Input, env.Framework.DB,
			env.Split.Validation)
		if len(ranks) == 0 {
			b.Fatal("no ranks")
		}
	}
	fig := experiments.RunFigure6(env)
	b.ReportMetric(fig.NoiseValidation.Err[0], "err@1")
	b.ReportMetric(fig.NoiseValidation.Err[len(fig.NoiseValidation.Err)-1], "err@max")
	b.ReportMetric(float64(fig.ChosenK), "chosenK")
}

func BenchmarkFigure7MetricsVsK(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var fig *experiments.Figure7
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.RunFigure7(env, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Noise[0].F1, "f1@k1")
	b.ReportMetric(fig.Noise[len(fig.Noise)-1].F1, "f1@k6")
}

func BenchmarkTableIVComparison(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var t4 *experiments.TableIV
	var err error
	for i := 0; i < b.N; i++ {
		t4, err = experiments.RunTableIV(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range t4.Rows {
		b.ReportMetric(row.Summary.F1, "f1/"+metricName(row.Name))
	}
}

func BenchmarkTableVPerAttack(b *testing.B) {
	env := benchEnvironment(b)
	t4, err := experiments.RunTableIV(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5 := experiments.RunTableV(t4)
		if len(t5.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
	ours := t4.Rows[0].PerAttack
	for _, at := range dataset.AttackTypes {
		b.ReportMetric(ours.Ratio(at), "recall/"+at.String())
	}
}

// ---- Cost profile (§VIII-A-2) ----------------------------------------------

// BenchmarkClassifyCombined measures the per-package classification latency
// of the combined framework (paper: ~0.03 ms).
func BenchmarkClassifyCombined(b *testing.B) {
	env := benchEnvironment(b)
	sess := env.Framework.NewSession()
	test := env.Split.Test
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Classify(test[i%len(test)])
	}
}

// BenchmarkTrainLSTM measures end-to-end time-series model training
// throughput on a small corpus (paper: 35 min for 50 epochs at full scale).
func BenchmarkTrainLSTM(b *testing.B) {
	env := benchEnvironment(b)
	fw := env.Framework
	seqs := core.BuildSequences(fw.Encoder, fw.Input, fw.DB, env.Split.Train, nil)
	var steps int
	for _, s := range seqs {
		steps += len(s.Inputs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := nn.NewClassifier(fw.Input.Dim, []int{32, 32}, fw.DB.Size(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nn.Train(model, seqs, nn.TrainConfig{
			Epochs: 1, Window: 32, BatchSize: 8, LR: 2e-3, ClipNorm: 5, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(steps), "steps/epoch")
}

// BenchmarkTrainThroughput measures the batched training engine against
// the per-window reference engine at the paper's full model scale (2x256),
// in truncated-BPTT windows per second. Before timing, it re-proves bitwise
// parameter equivalence between the two engines on a small model — the
// invariant that makes the trainers interchangeable. The corpus is trimmed
// so one epoch stays benchmark-friendly; the per-window compute profile is
// the full-scale one.
func BenchmarkTrainThroughput(b *testing.B) {
	env := benchEnvironment(b)
	fw := env.Framework
	seqs := core.BuildSequences(fw.Encoder, fw.Input, fw.DB, env.Split.Train, nil)

	// Untimed: both engines must produce bitwise-identical parameters.
	trainSmall := func(tr nn.TrainerKind) *nn.Classifier {
		model, err := nn.NewClassifier(fw.Input.Dim, []int{24, 24}, fw.DB.Size(), 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nn.Train(model, seqs[:min(len(seqs), 4)], nn.TrainConfig{
			Epochs: 2, Window: 32, BatchSize: 4, LR: 2e-3, ClipNorm: 5,
			Seed: 3, Workers: 1, Trainer: tr,
		}); err != nil {
			b.Fatal(err)
		}
		return model
	}
	refParams := trainSmall(nn.TrainerReference).Params()
	batParams := trainSmall(nn.TrainerBatched).Params()
	for i := range refParams {
		for j := range refParams[i].Data {
			if refParams[i].Data[j] != batParams[i].Data[j] {
				b.Fatalf("trainer divergence at %s[%d]: reference %v, batched %v",
					refParams[i].Name, j, refParams[i].Data[j], batParams[i].Data[j])
			}
		}
	}

	// Trim the corpus to roughly 48 full windows for the timed runs.
	const benchWindow, targetWindows = 32, 48
	var trimmed []nn.Sequence
	var steps int
	for _, s := range seqs {
		if steps >= targetWindows*benchWindow {
			break
		}
		trimmed = append(trimmed, s)
		steps += len(s.Inputs)
	}
	nWindows := len(nn.MakeWindows(trimmed, benchWindow))

	for _, tr := range []nn.TrainerKind{nn.TrainerReference, nn.TrainerBatched} {
		tr := tr
		b.Run(string(tr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model, err := nn.NewClassifier(fw.Input.Dim, []int{256, 256}, fw.DB.Size(), 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nn.Train(model, trimmed, nn.TrainConfig{
					Epochs: 1, Window: benchWindow, BatchSize: 16, LR: 2e-3,
					ClipNorm: 5, Seed: 1, Workers: 1, Trainer: tr,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nWindows)*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}

// BenchmarkModelMemory reports the storage cost of the two detection models
// (paper: 684 KB).
func BenchmarkModelMemory(b *testing.B) {
	env := benchEnvironment(b)
	var total int
	for i := 0; i < b.N; i++ {
		total = env.Framework.MemoryBytes()
	}
	b.ReportMetric(float64(total)/1024, "KB")
}

// ---- Concurrent engine (multi-stream serving path) ---------------------------

var (
	engineFwOnce sync.Once
	engineFw     *core.Framework
)

// engineBenchFramework wraps the bench environment's trained signature
// substrate around a production-scale (paper: 2×256) LSTM. Verdict quality
// is irrelevant for throughput, so the big model is random-initialized
// rather than trained; the compute and memory profile per package is the
// full-scale one.
func engineBenchFramework(b *testing.B) *core.Framework {
	b.Helper()
	env := benchEnvironment(b)
	engineFwOnce.Do(func() {
		base := env.Framework
		model, err := nn.NewClassifier(base.Input.Dim, []int{256, 256}, base.DB.Size(), 99)
		if err != nil {
			benchErr = err
			return
		}
		engineFw = &core.Framework{
			Encoder: base.Encoder,
			DB:      base.DB,
			Package: base.Package,
			Series:  &core.TimeSeriesDetector{Model: model, K: base.Series.K},
			Input:   base.Input,
		}
	})
	if benchErr != nil {
		b.Fatalf("build engine bench framework: %v", benchErr)
	}
	return engineFw
}

// BenchmarkEngineThroughput measures the sharded multi-stream engine
// against N sequential Sessions over the same round-robin traffic, at the
// paper's full model scale. Before timing, it re-proves single-stream
// verdict equivalence between the engine and the sequential session on
// this framework. The pkg/s metric is the end-to-end classification rate.
func BenchmarkEngineThroughput(b *testing.B) {
	fw := engineBenchFramework(b)
	env := benchEnvironment(b)
	test := env.Split.Test

	// Untimed: engine verdicts must equal sequential session verdicts.
	verify := test
	if len(verify) > 300 {
		verify = verify[:300]
	}
	sess := fw.NewSession()
	want := make([]core.Verdict, len(verify))
	for i, p := range verify {
		want[i] = sess.Classify(p)
	}
	idx := 0
	var mismatch error
	eq, err := engine.New(fw, engine.Config{Shards: 2}, func(r engine.Result) {
		if mismatch == nil && !r.Verdict.Equal(want[idx]) {
			mismatch = fmt.Errorf("package %d: engine %+v, sequential %+v", idx, r.Verdict, want[idx])
		}
		idx++
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range verify {
		if err := eq.Submit("equivalence", p); err != nil {
			b.Fatal(err)
		}
	}
	eq.Stop()
	if mismatch != nil {
		b.Fatalf("engine/session divergence: %v", mismatch)
	}

	for _, streams := range []int{1, 32, 256} {
		streams := streams
		b.Run(fmt.Sprintf("sequential/streams=%d", streams), func(b *testing.B) {
			sessions := make([]*core.Session, streams)
			for i := range sessions {
				sessions[i] = fw.NewSession()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sessions[i%streams].Classify(test[i%len(test)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkg/s")
		})
		for _, shards := range []int{1, 4, 8} {
			shards := shards
			name := fmt.Sprintf("engine/shards=%d/streams=%d", shards, streams)
			b.Run(name, func(b *testing.B) {
				keys := make([]string, streams)
				for i := range keys {
					keys[i] = fmt.Sprintf("plc-%03d", i)
				}
				e, err := engine.New(fw, engine.Config{Shards: shards}, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.Submit(keys[i%streams], test[i%len(test)]); err != nil {
						b.Fatal(err)
					}
				}
				e.Stop() // timed: drains every queued package
				b.StopTimer()
				st := e.Stats()
				if st.Packages != uint64(b.N) {
					b.Fatalf("engine classified %d of %d packages", st.Packages, b.N)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkg/s")
				b.ReportMetric(st.MeanBatch(), "pkg/batch")
			})
		}
	}
}

// ---- Substrate micro-benches -------------------------------------------------

func BenchmarkBloomInsert(b *testing.B) {
	f, err := bloom.NewWithEstimates(uint64(b.N)+1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddString(fmt.Sprintf("sig:%d", i))
	}
}

func BenchmarkBloomLookup(b *testing.B) {
	f, err := bloom.NewWithEstimates(10000, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("sig:%d", i)
		f.AddString(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ContainsString(keys[i%len(keys)])
	}
}

func BenchmarkSignatureEncode(b *testing.B) {
	env := benchEnvironment(b)
	enc := env.Framework.Encoder
	pkgs := env.Split.Test
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := pkgs[i%(len(pkgs)-1)]
		cur := pkgs[i%(len(pkgs)-1)+1]
		c := enc.Encode(prev, cur)
		_ = signature.Signature(c)
	}
}

func BenchmarkLSTMStepForward(b *testing.B) {
	env := benchEnvironment(b)
	model := env.Framework.Series.Model
	state := model.NewState()
	probs := make([]float64, model.Classes())
	x := make([]float64, model.InputSize())
	x[0], x[5] = 1, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(state, x, probs)
	}
}

func BenchmarkGeneratorThroughput(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(4000, uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if ds.Len() < 4000 {
			b.Fatal("short dataset")
		}
	}
}

// ---- Ablation benches (DESIGN.md §5) ----------------------------------------

// BenchmarkAblationNoise compares test F1 with and without probabilistic
// noise training (paper Figs. 6-7).
func BenchmarkAblationNoise(b *testing.B) {
	env := benchEnvironment(b)
	var with, without *core.Evaluation
	for i := 0; i < b.N; i++ {
		with = env.Framework.Evaluate(env.Split.Test, core.ModeCombined)
		without = env.Plain.Evaluate(env.Split.Test, core.ModeCombined)
	}
	b.ReportMetric(with.Summary.F1, "f1/noise")
	b.ReportMetric(without.Summary.F1, "f1/plain")
}

// BenchmarkAblationLevels compares the combined framework against each
// level alone (the justification for combining them, §VI).
func BenchmarkAblationLevels(b *testing.B) {
	env := benchEnvironment(b)
	var comb, pkg, ser *core.Evaluation
	for i := 0; i < b.N; i++ {
		comb = env.Framework.Evaluate(env.Split.Test, core.ModeCombined)
		pkg = env.Framework.Evaluate(env.Split.Test, core.ModePackageOnly)
		ser = env.Framework.Evaluate(env.Split.Test, core.ModeSeriesOnly)
	}
	b.ReportMetric(comb.Summary.F1, "f1/combined")
	b.ReportMetric(pkg.Summary.F1, "f1/package")
	b.ReportMetric(ser.Summary.F1, "f1/series")
}

// BenchmarkAblationBloomVsMap compares the Bloom filter signature store
// against an exact hash set: lookup latency and memory (the trade §IV-C
// motivates).
func BenchmarkAblationBloomVsMap(b *testing.B) {
	env := benchEnvironment(b)
	db := env.Framework.DB
	exact := make(map[string]struct{}, db.Size())
	for _, s := range db.List {
		exact[s] = struct{}{}
	}
	filter := env.Framework.Package.Filter

	b.Run("bloom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			filter.ContainsString(db.List[i%len(db.List)])
		}
		b.ReportMetric(float64(filter.SizeBytes()), "bytes")
	})
	b.Run("map", func(b *testing.B) {
		var mapBytes int
		for _, s := range db.List {
			mapBytes += len(s) + 16
		}
		for i := 0; i < b.N; i++ {
			_, ok := exact[db.List[i%len(db.List)]]
			if !ok {
				b.Fatal("missing")
			}
		}
		b.ReportMetric(float64(mapBytes), "bytes")
	})
}

// BenchmarkAblationDepth compares stacked depths 1 and 2 at equal budget
// (why the paper stacks two LSTM layers).
func BenchmarkAblationDepth(b *testing.B) {
	env := benchEnvironment(b)
	fw := env.Framework
	seqs := core.BuildSequences(fw.Encoder, fw.Input, fw.DB, env.Split.Train, nil)
	train := func(hidden []int) float64 {
		model, err := nn.NewClassifier(fw.Input.Dim, hidden, fw.DB.Size(), 1)
		if err != nil {
			b.Fatal(err)
		}
		loss, err := nn.Train(model, seqs, nn.TrainConfig{
			Epochs: 3, Window: 32, BatchSize: 8, LR: 2e-3, ClipNorm: 5, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		det := &core.TimeSeriesDetector{Model: model, K: 4}
		ranks := det.TopKRanks(fw.Encoder, fw.Input, fw.DB, env.Split.Validation)
		miss := 0
		for _, r := range ranks {
			if r >= 4 {
				miss++
			}
		}
		_ = loss
		return float64(miss) / float64(len(ranks))
	}
	var e1, e2 float64
	for i := 0; i < b.N; i++ {
		e1 = train([]int{45}) // ≈ parameter count of 2×32
		e2 = train([]int{32, 32})
	}
	b.ReportMetric(e1, "err4/depth1")
	b.ReportMetric(e2, "err4/depth2")
}

// BenchmarkAblationDynamicK compares the fixed trained k against the
// adaptive-k controller (the paper's §IX future-work extension).
func BenchmarkAblationDynamicK(b *testing.B) {
	env := benchEnvironment(b)
	var fixedF1, dynF1 float64
	for i := 0; i < b.N; i++ {
		fixed := env.Framework.Evaluate(env.Split.Test, core.ModeCombined)
		fixedF1 = fixed.Summary.F1

		sess, err := env.Framework.NewDynamicSession(
			core.DefaultDynamicKConfig(env.Framework.Series.K))
		if err != nil {
			b.Fatal(err)
		}
		var conf struct{ tp, fp, tn, fn int }
		for _, p := range env.Split.Test {
			v := sess.Classify(p)
			switch {
			case v.Anomaly && p.IsAttack():
				conf.tp++
			case v.Anomaly:
				conf.fp++
			case p.IsAttack():
				conf.fn++
			default:
				conf.tn++
			}
		}
		prec := float64(conf.tp) / float64(conf.tp+conf.fp+1)
		rec := float64(conf.tp) / float64(conf.tp+conf.fn+1)
		if prec+rec > 0 {
			dynF1 = 2 * prec * rec / (prec + rec)
		}
	}
	b.ReportMetric(fixedF1, "f1/fixedK")
	b.ReportMetric(dynF1, "f1/dynamicK")
}

// ---- Trace replay throughput -----------------------------------------------

// replayBenchEnv builds the replay benchmark fixture once: the committed
// corpus model plus an in-memory recorded trace of benchReplayCycles poll
// cycles (mixed normal + attack traffic).
var (
	replayOnce   sync.Once
	replayFW     *core.Framework
	replayHeader trace.Header
	replayRecs   []*trace.Record
	replayErr    error
)

const benchReplayCycles = 1000

// benchReplayScript drives the scenario both the recorded-trace and the
// live-simulation variants of the benchmark replay: routine polling with
// periodic attack episodes.
func benchReplayScript(sim *gaspipeline.Simulator) {
	for c := 0; c < benchReplayCycles/10; c++ {
		for i := 0; i < 8; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
		switch c % 4 {
		case 0:
			sim.RunNMRIEpisode(1)
		case 1:
			sim.RunMPCIEpisode(1)
		case 2:
			sim.RunDoSEpisode(1)
		case 3:
			sim.RunReconEpisode(3)
		}
	}
}

func replayBenchEnv(b *testing.B) (*core.Framework, trace.Header, []*trace.Record) {
	b.Helper()
	replayOnce.Do(func() {
		f, err := os.Open("testdata/traces/model.fw")
		if err != nil {
			replayErr = err
			return
		}
		defer f.Close()
		if replayFW, replayErr = core.Load(f); replayErr != nil {
			return
		}
		cfg := gaspipeline.DefaultSimConfig()
		cfg.Seed = 77
		sim, err := gaspipeline.NewSimulator(cfg)
		if err != nil {
			replayErr = err
			return
		}
		var buf bytes.Buffer
		rec, err := trace.NewRecorder(&buf, trace.SimHeader("bench", "", gaspipeline.Registers()))
		if err != nil {
			replayErr = err
			return
		}
		sim.SetFrameSink(rec.RecordSim)
		benchReplayScript(sim)
		if replayErr = rec.Flush(); replayErr != nil {
			return
		}
		replayHeader, replayRecs, replayErr = trace.ReadAll(bytes.NewReader(buf.Bytes()))
	})
	if replayErr != nil {
		b.Fatalf("build replay bench fixture: %v", replayErr)
	}
	return replayFW, replayHeader, replayRecs
}

// BenchmarkReplayThroughput compares the recorded-trace workload against
// the live-simulation path on identical traffic: "replay" decodes wire
// frames from an in-memory trace and classifies them (sequential session or
// batched engine), "live" runs the gas-pipeline simulator and classifies
// its packages as they are produced. The trace acceptance bar is replay ≥
// live: a recorded corpus must never be slower to evaluate than
// re-simulating the scenario.
func BenchmarkReplayThroughput(b *testing.B) {
	fw, header, recs := replayBenchEnv(b)

	b.Run("replay/session", func(b *testing.B) {
		var pkgs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := trace.Replay(fw, header, recs, trace.ReplayConfig{})
			if err != nil {
				b.Fatal(err)
			}
			pkgs = len(res.Verdicts)
		}
		b.ReportMetric(float64(pkgs)*float64(b.N)/b.Elapsed().Seconds(), "pkg/s")
	})

	b.Run("replay/engine", func(b *testing.B) {
		var pkgs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := trace.Replay(fw, header, recs, trace.ReplayConfig{
				Engine: &engine.Config{Shards: 1, MaxBatch: 64},
			})
			if err != nil {
				b.Fatal(err)
			}
			pkgs = len(res.Verdicts)
		}
		b.ReportMetric(float64(pkgs)*float64(b.N)/b.Elapsed().Seconds(), "pkg/s")
	})

	b.Run("live/session", func(b *testing.B) {
		var pkgs int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := gaspipeline.DefaultSimConfig()
			cfg.Seed = 77
			sim, err := gaspipeline.NewSimulator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			sess := fw.NewSession()
			n := 0
			sim.SetFrameSink(func(gaspipeline.Frame) { n++ })
			benchReplayScript(sim)
			for _, p := range sim.Packages() {
				_ = sess.Classify(p)
			}
			pkgs = n
		}
		b.ReportMetric(float64(pkgs)*float64(b.N)/b.Elapsed().Seconds(), "pkg/s")
	})
}
