package icsdetect_test

import (
	"bytes"
	"sync"
	"testing"

	"icsdetect"
)

func TestFacadeQuickPath(t *testing.T) {
	if testing.Short() {
		t.Skip("facade integration skipped in -short mode")
	}
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{Packages: 5000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 5000 {
		t.Fatalf("generated %d packages", ds.Len())
	}

	// ARFF round trip through the facade.
	var buf bytes.Buffer
	if err := icsdetect.WriteDatasetARFF(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := icsdetect.ReadDatasetARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("ARFF round trip: %d vs %d", back.Len(), ds.Len())
	}

	split, err := icsdetect.Split(ds)
	if err != nil {
		t.Fatal(err)
	}
	opts := icsdetect.DefaultTrainOptions()
	opts.Granularity = icsdetect.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
	opts.Hidden = []int{16, 16}
	opts.Fit.Epochs = 4
	opts.Fit.BatchSize = 4
	det, report, err := icsdetect.Train(split, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Signatures == 0 {
		t.Fatal("empty signature database")
	}

	sess := det.NewSession()
	alerts := 0
	for _, p := range split.Test {
		if sess.Classify(p).Anomaly {
			alerts++
		}
	}
	if alerts == 0 {
		t.Error("no alerts on a test set full of attacks")
	}

	// The concurrent engine through the facade: same stream, same verdicts.
	var engineAlerts int
	var mu sync.Mutex
	eng, err := icsdetect.NewEngine(det, icsdetect.EngineConfig{Shards: 2},
		func(r icsdetect.EngineResult) {
			if r.Verdict.Anomaly {
				mu.Lock()
				engineAlerts++
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range split.Test {
		if err := eng.Submit("link", p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Stop()
	st := eng.Stats()
	if st.Packages != uint64(len(split.Test)) {
		t.Errorf("engine classified %d of %d packages", st.Packages, len(split.Test))
	}
	if engineAlerts != alerts {
		t.Errorf("engine raised %d alerts, sequential session %d", engineAlerts, alerts)
	}

	var model bytes.Buffer
	if err := det.Save(&model); err != nil {
		t.Fatal(err)
	}
	if _, err := icsdetect.Load(&model); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateNormalOption(t *testing.T) {
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{
		Packages: 1000, Seed: 3, AttackRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packages {
		if p.IsAttack() {
			t.Fatal("attack in normal-only capture")
		}
	}
}
