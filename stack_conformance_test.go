// Stack conformance beyond the committed goldens: the golden corpora pin
// the default two-level stack, so this suite locks the sequential≡engine
// bitwise invariant for composed stacks — freshly trained promoted levels
// (PCA, GMM) under non-first-hit fusion, on every kernel tier (AVX-512,
// AVX2, scalar). CI runs it as part of `make conformance`.
package icsdetect_test

import (
	"fmt"
	"sync"
	"testing"

	"icsdetect"
)

// stackFixture is the shared trained framework of the stack conformance
// and allocation-gate tests: a small gas-pipeline model plus the stage
// models of the promoted levels used in the composed stacks.
type stackFixture struct {
	det   *icsdetect.Detector
	split *icsdetect.DataSplit
	err   error
}

var (
	stackFixtureOnce sync.Once
	sharedStack      stackFixture
)

func loadStackFixture(t testing.TB) *stackFixture {
	t.Helper()
	stackFixtureOnce.Do(func() {
		sharedStack.err = func() error {
			ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{Packages: 6000, Seed: 33})
			if err != nil {
				return err
			}
			split, err := icsdetect.Split(ds)
			if err != nil {
				return err
			}
			opts := icsdetect.DefaultTrainOptions()
			opts.Granularity = icsdetect.Granularity{
				IntervalClusters: 2, CRCClusters: 2,
				PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
			}
			opts.Hidden = []int{16, 16}
			opts.Fit.Epochs = 4
			opts.Fit.BatchSize = 4
			det, _, err := icsdetect.Train(split, opts)
			if err != nil {
				return err
			}
			// Stage models for every level the composed stacks below use,
			// trained from the same dataset path as the framework itself —
			// including the reconstruction-error family (ae, seq2seq, cnn).
			spec, err := icsdetect.ParseStack("bloom,pca,gmm,lstm,ae,seq2seq,cnn", "majority")
			if err != nil {
				return err
			}
			if err := det.TrainStages(spec, split, 33); err != nil {
				return err
			}
			sharedStack.det, sharedStack.split = det, split
			return nil
		}()
	})
	if sharedStack.err != nil {
		t.Fatalf("stack fixture: %v", sharedStack.err)
	}
	return &sharedStack
}

// sequentialStackVerdicts classifies the stream through a sequential
// session over spec.
func sequentialStackVerdicts(t testing.TB, fx *stackFixture, spec icsdetect.StackSpec,
	pkgs []*icsdetect.Package) []icsdetect.Verdict {
	t.Helper()
	sess, err := fx.det.NewStackSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]icsdetect.Verdict, len(pkgs))
	for i, p := range pkgs {
		out[i] = sess.Classify(p)
	}
	return out
}

// TestStackConformance: a freshly trained bloom,pca,lstm stack under
// majority-vote fusion must produce bitwise-identical verdicts (evidence
// included) through the sequential session and the batched engine, on
// every kernel tier (AVX-512, AVX2, scalar) — many interleaved streams
// sharing shards, so the window levels' batched Check precompute genuinely
// runs.
func TestStackConformance(t *testing.T) {
	fx := loadStackFixture(t)
	spec, err := icsdetect.ParseStack("bloom,pca,lstm", "majority")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := fx.split.Test
	if len(pkgs) > 900 {
		pkgs = pkgs[:900]
	}

	forEachKernelTier(t, func(t *testing.T) {
		want := sequentialStackVerdicts(t, fx, spec, pkgs)

		// Six identical streams interleaved on three shards: shards
		// constantly hold multiple streams mid-window, so Check
		// precompute batches width > 1 and Advance passes batch the
		// LSTM steps of distinct streams.
		const streams = 6
		var mu sync.Mutex
		got := make(map[string][]icsdetect.Verdict, streams)
		eng, err := icsdetect.NewEngine(fx.det, icsdetect.EngineConfig{
			Shards: 3, MaxBatch: 8, QueueDepth: 32, Stack: spec,
		}, func(r icsdetect.EngineResult) {
			mu.Lock()
			got[r.Stream] = append(got[r.Stream], r.Verdict)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkgs {
			for s := 0; s < streams; s++ {
				if err := eng.Submit(fmt.Sprintf("dev-%d", s), p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Barrier(); err != nil {
			t.Fatal(err)
		}
		stats := eng.Stats()
		eng.Stop()

		for s := 0; s < streams; s++ {
			stream := fmt.Sprintf("dev-%d", s)
			gv := got[stream]
			if len(gv) != len(want) {
				t.Fatalf("%s: %d verdicts for %d packages", stream, len(gv), len(want))
			}
			for i := range want {
				if !gv[i].Equal(want[i]) {
					t.Fatalf("%s package %d: engine %+v, sequential %+v", stream, i, gv[i], want[i])
				}
			}
		}
		if stats.Batches == 0 {
			t.Error("engine never ran a batched Advance pass")
		}
		if stats.CheckBatches == 0 {
			t.Error("engine never ran a batched Check precompute pass")
		}
		if stats.ByLevel[icsdetect.LevelPCA] == 0 {
			t.Log("note: PCA level never decided a verdict on this stream")
		}
	})
}

// TestStackConformanceRecon: a stack carrying all three reconstruction
// stages (LSTM autoencoder, seq2seq predictor, 1D-CNN) under majority
// fusion must produce bitwise-identical verdicts through the sequential
// session and the batched engine on every kernel tier — interleaved
// streams force the recon stages' batched window scoring (Conv1D /
// LSTM-step GEMM kernels) to actually run at width > 1.
func TestStackConformanceRecon(t *testing.T) {
	fx := loadStackFixture(t)
	spec, err := icsdetect.ParseStack("bloom,lstm,ae,seq2seq,cnn", "majority")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := fx.split.Test
	if len(pkgs) > 600 {
		pkgs = pkgs[:600]
	}

	forEachKernelTier(t, func(t *testing.T) {
		want := sequentialStackVerdicts(t, fx, spec, pkgs)

		const streams = 6
		var mu sync.Mutex
		got := make(map[string][]icsdetect.Verdict, streams)
		eng, err := icsdetect.NewEngine(fx.det, icsdetect.EngineConfig{
			Shards: 3, MaxBatch: 8, QueueDepth: 32, Stack: spec,
		}, func(r icsdetect.EngineResult) {
			mu.Lock()
			got[r.Stream] = append(got[r.Stream], r.Verdict)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkgs {
			for s := 0; s < streams; s++ {
				if err := eng.Submit(fmt.Sprintf("dev-%d", s), p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Barrier(); err != nil {
			t.Fatal(err)
		}
		stats := eng.Stats()
		eng.Stop()

		for s := 0; s < streams; s++ {
			stream := fmt.Sprintf("dev-%d", s)
			gv := got[stream]
			if len(gv) != len(want) {
				t.Fatalf("%s: %d verdicts for %d packages", stream, len(gv), len(want))
			}
			for i := range want {
				if !gv[i].Equal(want[i]) {
					t.Fatalf("%s package %d: engine %+v, sequential %+v", stream, i, gv[i], want[i])
				}
			}
		}
		if stats.CheckBatches == 0 {
			t.Error("recon stack never ran a batched Check precompute pass")
		}
		// Every verdict under majority fusion consults all five levels:
		// the evidence must include scored entries for each recon stage on
		// window-closing packages.
		var reconScored int
		for _, v := range want {
			for _, e := range v.Evidence {
				switch e.Level {
				case icsdetect.LevelAE, icsdetect.LevelSeq2Seq, icsdetect.LevelCNN:
					if e.Scored {
						reconScored++
					}
				}
			}
		}
		if reconScored == 0 {
			t.Error("no reconstruction stage ever scored a window")
		}
	})
}

// TestStackConformanceDynamicK: the adaptive-k controller folded onto the
// stage stack (kind "lstm-dynamic") must work identically under the
// batched engine and a sequential session — per-stream k adaptation
// included — and must keep matching the legacy DynamicSession shim.
func TestStackConformanceDynamicK(t *testing.T) {
	fx := loadStackFixture(t)
	spec, err := icsdetect.ParseStack("bloom,lstm-dynamic", "first-hit")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := fx.split.Test

	want := sequentialStackVerdicts(t, fx, spec, pkgs)

	var mu sync.Mutex
	var got []icsdetect.Verdict
	eng, err := icsdetect.NewEngine(fx.det, icsdetect.EngineConfig{
		Shards: 2, MaxBatch: 8, Stack: spec,
	}, func(r icsdetect.EngineResult) {
		mu.Lock()
		got = append(got, r.Verdict)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if err := eng.Submit("plc", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Barrier(); err != nil {
		t.Fatal(err)
	}
	stats := eng.Stats()
	eng.Stop()
	if len(got) != len(want) {
		t.Fatalf("%d verdicts for %d packages", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("package %d: engine %+v, sequential %+v", i, got[i], want[i])
		}
	}
	if stats.Batches == 0 {
		t.Error("dynamic-k stream never joined a batched LSTM pass")
	}

	// The legacy shim (same default controller config) agrees with the
	// stack verdicts package for package.
	shim, err := fx.det.NewDynamicSession(icsdetect.DefaultDynamicKConfig(fx.det.Series.K))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pkgs {
		v := shim.Classify(p)
		// The shim records evidence too (its stack contains a promoted
		// kind), so full verdict equality is the right comparison.
		if !v.Equal(want[i]) {
			t.Fatalf("package %d: shim %+v, stack session %+v", i, v, want[i])
		}
	}
	if k := shim.K(); k < 1 {
		t.Fatalf("shim adaptive k = %d", k)
	}
}

// TestStackConformanceFusionPolicies: the three fusion policies over the
// same 4-level stack must agree between sequential and engine execution,
// and first-hit must remain a superset-of-none relationship with the
// voting policies' evidence (every verdict carries one evidence entry per
// consulted level).
func TestStackConformanceFusionPolicies(t *testing.T) {
	fx := loadStackFixture(t)
	pkgs := fx.split.Test
	if len(pkgs) > 600 {
		pkgs = pkgs[:600]
	}
	for _, fusion := range []string{"first-hit", "majority", "weighted"} {
		t.Run(fusion, func(t *testing.T) {
			spec, err := icsdetect.ParseStack("bloom,pca:2,gmm,lstm:3", fusion)
			if err != nil {
				t.Fatal(err)
			}
			want := sequentialStackVerdicts(t, fx, spec, pkgs)

			var mu sync.Mutex
			var got []icsdetect.Verdict
			eng, err := icsdetect.NewEngine(fx.det, icsdetect.EngineConfig{
				Shards: 2, MaxBatch: 4, Stack: spec,
			}, func(r icsdetect.EngineResult) {
				mu.Lock()
				got = append(got, r.Verdict)
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkgs {
				if err := eng.Submit("dev", p); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Barrier(); err != nil {
				t.Fatal(err)
			}
			eng.Stop()

			if len(got) != len(want) {
				t.Fatalf("%d verdicts for %d packages", len(got), len(want))
			}
			anomalies := 0
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("package %d: engine %+v, sequential %+v", i, got[i], want[i])
				}
				if want[i].Anomaly {
					anomalies++
				}
				if fusion != "first-hit" && len(want[i].Evidence) != 4 {
					t.Fatalf("package %d: %d evidence entries under %s fusion, want 4",
						i, len(want[i].Evidence), fusion)
				}
			}
			if anomalies == 0 {
				t.Errorf("%s fusion flagged nothing on attack-laden traffic", fusion)
			}
		})
	}
}

// TestStackConformanceWatertankRecon is the detection-parity check for a
// stack carrying a reconstruction stage on the second testbed: a freshly
// trained water-tank model classifies its attack-laden test stream under
// the paper stack (bloom,lstm) and under the same stack with the LSTM
// autoencoder appended. The recon stack's MPCI/MFCI detected ratios are
// reported and must not fall below the signature-only stack's — under
// first-hit fusion an extra level can only add detections — nor regress
// the corpus parity suite's floor (MPCI 0.65, MFCI 1.00).
func TestStackConformanceWatertankRecon(t *testing.T) {
	if testing.Short() {
		t.Skip("watertank recon parity trains a fixture")
	}
	ds, err := icsdetect.GenerateDataset(icsdetect.DatasetOptions{
		Scenario: "watertank", Packages: 6000, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := icsdetect.Split(ds)
	if err != nil {
		t.Fatal(err)
	}
	opts := icsdetect.DefaultTrainOptions()
	opts.Granularity = icsdetect.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 4,
	}
	opts.Hidden = []int{16, 16}
	opts.Fit.Epochs = 4
	opts.Fit.BatchSize = 4
	det, _, err := icsdetect.Train(split, opts)
	if err != nil {
		t.Fatal(err)
	}
	reconSpec, err := icsdetect.ParseStack("bloom,lstm,ae", "first-hit")
	if err != nil {
		t.Fatal(err)
	}
	if err := det.TrainStages(reconSpec, split, 41); err != nil {
		t.Fatal(err)
	}
	baseSpec, err := icsdetect.ParseStack("bloom,lstm", "first-hit")
	if err != nil {
		t.Fatal(err)
	}

	ratios := func(spec icsdetect.StackSpec) map[icsdetect.AttackType]float64 {
		sess, err := det.NewStackSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		detected := make(map[icsdetect.AttackType]int)
		total := make(map[icsdetect.AttackType]int)
		for _, p := range split.Test {
			v := sess.Classify(p)
			total[p.Label]++
			if v.Anomaly {
				detected[p.Label]++
			}
		}
		out := make(map[icsdetect.AttackType]float64)
		for at, n := range total {
			out[at] = float64(detected[at]) / float64(n)
		}
		return out
	}
	base, recon := ratios(baseSpec), ratios(reconSpec)

	floors := map[icsdetect.AttackType]float64{icsdetect.MPCI: 0.65, icsdetect.MFCI: 1.00}
	for _, at := range []icsdetect.AttackType{icsdetect.MPCI, icsdetect.MFCI} {
		b, ok := base[at]
		if !ok {
			t.Fatalf("test stream has no %v packages", at)
		}
		r := recon[at]
		t.Logf("%v: bloom,lstm %.2f, bloom,lstm,ae %.2f", at, b, r)
		if r < b {
			t.Errorf("%v: recon stack detected %.2f < signature-only %.2f (first-hit can only add)", at, r, b)
		}
		if r < floors[at] {
			t.Errorf("%v: recon stack detected %.2f, below the corpus parity floor %.2f", at, r, floors[at])
		}
	}
}
