// Golden-verdict conformance over the committed trace corpus
// (testdata/traces): every recorded scenario must replay to verdicts
// bitwise-identical to its golden file — through the sequential Session and
// the batched engine, on the SIMD and the scalar kernel paths. This extends
// the repo's equivalence bar from "batched vs sequential in one process" to
// "any build, any kernel path, against recorded artifacts": a regression in
// frame decoding, feature reconstruction, the detector pipeline or the
// numeric kernels shows up as a concrete first-differing verdict line.
//
// The test trains nothing (the corpus pins a model snapshot), so it runs in
// -short mode and under -race. Regenerate the corpus deliberately with
// `go run ./cmd/icsreplay -record testdata/traces -fuzzseeds
// internal/modbus/testdata/frames` after intentional format/model changes.
package icsdetect_test

import (
	"os"
	"path/filepath"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
	"icsdetect/internal/mathx"
	"icsdetect/internal/trace"
)

// corpusScenarios lists the committed traces; keeping the list explicit
// means a half-written corpus (missing trace or golden) fails loudly
// instead of silently shrinking coverage.
var corpusScenarios = []string{
	"normal", "nmri", "cmri", "msci", "mpci", "mfci", "dos", "recon",
}

const corpusDir = "testdata/traces"

type corpusTrace struct {
	name    string
	header  trace.Header
	records []*trace.Record
	golden  []byte
}

func loadCorpus(t *testing.T) (*core.Framework, []corpusTrace) {
	t.Helper()
	f, err := os.Open(filepath.Join(corpusDir, "model.fw"))
	if err != nil {
		t.Fatalf("open corpus model (regenerate with icsreplay -record): %v", err)
	}
	defer f.Close()
	fw, err := core.Load(f)
	if err != nil {
		t.Fatalf("load corpus model: %v", err)
	}

	fingerprint := fw.Fingerprint()
	traces := make([]corpusTrace, 0, len(corpusScenarios))
	for _, name := range corpusScenarios {
		tf, err := os.Open(filepath.Join(corpusDir, name+".trace"))
		if err != nil {
			t.Fatalf("open trace %s: %v", name, err)
		}
		header, records, err := trace.ReadAll(tf)
		tf.Close()
		if err != nil {
			t.Fatalf("read trace %s: %v", name, err)
		}
		if header.Scenario != name {
			t.Fatalf("trace %s names scenario %q", name, header.Scenario)
		}
		if header.Fingerprint != fingerprint {
			t.Fatalf("trace %s was recorded for model %s, corpus model is %s",
				name, header.Fingerprint, fingerprint)
		}
		golden, err := os.ReadFile(filepath.Join(corpusDir, name+".verdicts"))
		if err != nil {
			t.Fatalf("read goldens for %s: %v", name, err)
		}
		traces = append(traces, corpusTrace{name: name, header: header, records: records, golden: golden})
	}
	return fw, traces
}

// TestTraceConformance is the corpus gate: sequential and engine replays of
// every committed trace, on both kernel paths, against the golden bytes.
func TestTraceConformance(t *testing.T) {
	fw, traces := loadCorpus(t)

	for _, kernel := range []struct {
		name string
		simd bool
	}{{"simd", true}, {"scalar", false}} {
		t.Run(kernel.name, func(t *testing.T) {
			prev := mathx.SetSIMDEnabled(kernel.simd)
			defer mathx.SetSIMDEnabled(prev)
			for _, tc := range traces {
				t.Run(tc.name, func(t *testing.T) {
					seq, err := trace.Replay(fw, tc.header, tc.records, trace.ReplayConfig{})
					if err != nil {
						t.Fatal(err)
					}
					got := trace.FormatVerdicts(tc.name, tc.header.Fingerprint, seq.Verdicts)
					if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
						t.Fatalf("sequential replay drifted from goldens at line %d", line)
					}

					eng, err := trace.Replay(fw, tc.header, tc.records, trace.ReplayConfig{
						Engine: &engine.Config{Shards: 3, MaxBatch: 16, QueueDepth: 32},
					})
					if err != nil {
						t.Fatal(err)
					}
					got = trace.FormatVerdicts(tc.name, tc.header.Fingerprint, eng.Verdicts)
					if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
						t.Fatalf("engine replay drifted from goldens at line %d", line)
					}
				})
			}
		})
	}
}

// TestTraceConformanceLatencyAccounting: replaying an attack trace must
// attribute episodes and detection latency to the trace's attack category —
// the latency-mode measurements icsreplay reports are grounded here.
func TestTraceConformanceLatencyAccounting(t *testing.T) {
	fw, traces := loadCorpus(t)
	attacks := map[string]string{
		"nmri": "NMRI", "cmri": "CMRI", "msci": "MSCI", "mpci": "MPCI",
		"mfci": "MFCI", "dos": "DoS", "recon": "Recon",
	}
	for _, tc := range traces {
		res, err := trace.Replay(fw, tc.header, tc.records, trace.ReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if tc.name == "normal" {
			if len(res.Latency.Episodes) != 0 {
				t.Errorf("normal trace produced attack episodes: %+v", res.Latency.Episodes)
			}
			continue
		}
		found := false
		for at, n := range res.Latency.Episodes {
			if at.String() == attacks[tc.name] {
				found = true
				if n < 2 {
					t.Errorf("%s: %d episodes, corpus scripts record 2", tc.name, n)
				}
				if res.Latency.Detected[at] == 0 {
					t.Errorf("%s: no episode detected; golden corpus should never pin a blind model", tc.name)
				}
				if res.Latency.Detected[at] > 0 && res.Latency.MeanLatency(at) < 0 {
					t.Errorf("%s: negative mean latency", tc.name)
				}
			}
		}
		if !found {
			t.Errorf("%s: no %s episodes in latency accounting: %+v", tc.name, attacks[tc.name], res.Latency.Episodes)
		}
	}
}

// TestTraceConformanceTimedMode: the timed (latency-mode) replay path must
// produce the same verdicts as throughput mode — pacing must never leak
// into classification.
func TestTraceConformanceTimedMode(t *testing.T) {
	fw, traces := loadCorpus(t)
	tc := traces[0]
	res, err := trace.Replay(fw, tc.header, tc.records, trace.ReplayConfig{Timed: true, Speed: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	got := trace.FormatVerdicts(tc.name, tc.header.Fingerprint, res.Verdicts)
	if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
		t.Fatalf("timed replay drifted from goldens at line %d", line)
	}
}
