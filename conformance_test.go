// Golden-verdict conformance over the committed trace corpora
// (testdata/traces for the gas pipeline, testdata/traces/watertank for the
// water storage tank): every recorded scenario of every testbed must replay
// to verdicts bitwise-identical to its golden file — through the sequential
// Session and the batched engine, on every kernel tier (AVX-512, AVX2,
// scalar). This extends the repo's equivalence bar from "batched vs
// sequential in one process" to "any build, any kernel tier, any testbed,
// against
// recorded artifacts": a regression in frame decoding, feature
// reconstruction, the detector pipeline or the numeric kernels shows up as
// a concrete first-differing verdict line.
//
// The tests train nothing (each corpus pins a model snapshot), so they run
// in -short mode and under -race. Regenerate deliberately with
// `go run ./cmd/icsreplay -record testdata/traces -fuzzseeds
// internal/modbus/testdata/frames` and `go run ./cmd/icsreplay -record
// testdata/traces/watertank -scenario watertank -fuzzseeds
// internal/modbus/testdata/frames` after intentional format/model changes.
package icsdetect_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/trace"
)

// corpusEpisodes lists the committed traces of every corpus; keeping the
// list explicit means a half-written corpus (missing trace or golden) fails
// loudly instead of silently shrinking coverage.
var corpusEpisodes = []string{
	"normal", "nmri", "cmri", "msci", "mpci", "mfci", "dos", "recon",
}

// corpusDirs is the scenario axis of the conformance matrix: one committed
// golden corpus per registered testbed.
var corpusDirs = []struct {
	scenario string
	dir      string
}{
	{"gaspipeline", "testdata/traces"},
	{"watertank", filepath.Join("testdata", "traces", "watertank")},
}

type corpusTrace struct {
	name    string
	header  trace.Header
	records []*trace.Record
	golden  []byte
}

type corpus struct {
	scenario string
	fw       *core.Framework
	traces   []corpusTrace
}

func loadCorpusDir(t *testing.T, scenarioName, dir string) *corpus {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "model.fw"))
	if err != nil {
		t.Fatalf("open %s corpus model (regenerate with icsreplay -record): %v", scenarioName, err)
	}
	defer f.Close()
	fw, err := core.Load(f)
	if err != nil {
		t.Fatalf("load %s corpus model: %v", scenarioName, err)
	}

	fingerprint := fw.Fingerprint()
	c := &corpus{scenario: scenarioName, fw: fw}
	for _, name := range corpusEpisodes {
		tf, err := os.Open(filepath.Join(dir, name+".trace"))
		if err != nil {
			t.Fatalf("open %s trace %s: %v", scenarioName, name, err)
		}
		header, records, err := trace.ReadAll(tf)
		tf.Close()
		if err != nil {
			t.Fatalf("read %s trace %s: %v", scenarioName, name, err)
		}
		if header.Scenario != name {
			t.Fatalf("%s trace %s names scenario %q", scenarioName, name, header.Scenario)
		}
		if header.Fingerprint != fingerprint {
			t.Fatalf("%s trace %s was recorded for model %s, corpus model is %s",
				scenarioName, name, header.Fingerprint, fingerprint)
		}
		golden, err := os.ReadFile(filepath.Join(dir, name+".verdicts"))
		if err != nil {
			t.Fatalf("read %s goldens for %s: %v", scenarioName, name, err)
		}
		c.traces = append(c.traces, corpusTrace{name: name, header: header, records: records, golden: golden})
	}
	return c
}

func loadCorpora(t *testing.T) []*corpus {
	t.Helper()
	out := make([]*corpus, 0, len(corpusDirs))
	for _, cd := range corpusDirs {
		out = append(out, loadCorpusDir(t, cd.scenario, cd.dir))
	}
	return out
}

// TestTraceConformance is the corpus gate, a full scenario matrix: both
// testbeds × {sequential session, batched engine} × {AVX-512, AVX2,
// scalar} kernel tiers, every committed trace against its golden bytes.
func TestTraceConformance(t *testing.T) {
	corpora := loadCorpora(t)

	forEachKernelTier(t, func(t *testing.T) {
		for _, c := range corpora {
			t.Run(c.scenario, func(t *testing.T) {
				for _, tc := range c.traces {
					t.Run(tc.name, func(t *testing.T) {
						seq, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{})
						if err != nil {
							t.Fatal(err)
						}
						got := trace.FormatVerdicts(tc.name, tc.header.Fingerprint, seq.Verdicts)
						if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
							t.Fatalf("sequential replay drifted from goldens at line %d", line)
						}

						eng, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{
							Engine: &engine.Config{Shards: 3, MaxBatch: 16, QueueDepth: 32},
						})
						if err != nil {
							t.Fatal(err)
						}
						got = trace.FormatVerdicts(tc.name, tc.header.Fingerprint, eng.Verdicts)
						if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
							t.Fatalf("engine replay drifted from goldens at line %d", line)
						}

						// Burst admission (SubmitBatch) must be verdict-invariant
						// too; the odd width keeps bursts straddling micro-batch
						// boundaries.
						burst, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{
							Engine: &engine.Config{Shards: 3, MaxBatch: 16, QueueDepth: 32},
							Burst:  7,
						})
						if err != nil {
							t.Fatal(err)
						}
						got = trace.FormatVerdicts(tc.name, tc.header.Fingerprint, burst.Verdicts)
						if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
							t.Fatalf("burst engine replay drifted from goldens at line %d", line)
						}
					})
				}
			})
		}
	})
}

// TestTraceConformanceF32 is the mixed-precision verdict-parity gate: the
// f32 inference tier must replay every committed trace of both corpora to
// verdicts bytewise-identical to the f64 goldens — sequential session and
// batched engine, on every kernel tier (AVX-512, AVX2, scalar). The
// goldens are recorded at f64, so this is the cross-precision contract of
// the f32 tier: faster kernels, same verdict sequence. A float32 rounding
// regression that flips any anomaly bit, level, rank or signature shows up
// as a concrete first-differing verdict line.
func TestTraceConformanceF32(t *testing.T) {
	corpora := loadCorpora(t)
	f32Spec := core.DefaultStackSpec()
	f32Spec.Precision = core.PrecisionF32

	forEachKernelTier(t, func(t *testing.T) {
		for _, c := range corpora {
			t.Run(c.scenario, func(t *testing.T) {
				for _, tc := range c.traces {
					t.Run(tc.name, func(t *testing.T) {
						seq, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{Stack: f32Spec})
						if err != nil {
							t.Fatal(err)
						}
						got := trace.FormatVerdicts(tc.name, tc.header.Fingerprint, seq.Verdicts)
						if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
							t.Fatalf("f32 sequential replay drifted from f64 goldens at line %d", line)
						}

						eng, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{
							Stack:  f32Spec,
							Engine: &engine.Config{Shards: 3, MaxBatch: 16, QueueDepth: 32},
						})
						if err != nil {
							t.Fatal(err)
						}
						got = trace.FormatVerdicts(tc.name, tc.header.Fingerprint, eng.Verdicts)
						if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
							t.Fatalf("f32 engine replay drifted from f64 goldens at line %d", line)
						}
					})
				}
			})
		}
	})
}

// TestTraceConformanceF32MixedPrecision: one engine serving an f64 and an
// f32 stream of the same trace on shared shards — the f32 stream bound via
// BindPrecision — must produce, per stream, verdicts bytewise-identical to
// the goldens. Per-precision micro-batches must never bleed kernels
// between co-scheduled streams.
func TestTraceConformanceF32MixedPrecision(t *testing.T) {
	for _, c := range loadCorpora(t) {
		t.Run(c.scenario, func(t *testing.T) {
			tc := c.traces[0]
			pkgs, err := trace.Packages(tc.header, tc.records)
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			verdicts := make(map[string][]core.Verdict)
			eng, err := engine.New(c.fw,
				engine.Config{Shards: 2, MaxBatch: 16, QueueDepth: 64},
				func(r engine.Result) {
					mu.Lock()
					verdicts[r.Stream] = append(verdicts[r.Stream], r.Verdict)
					mu.Unlock()
				})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.BindPrecision("plc-f32", core.PrecisionF32); err != nil {
				t.Fatal(err)
			}
			for _, p := range pkgs {
				if err := eng.Submit("plc-f64", p); err != nil {
					t.Fatal(err)
				}
				if err := eng.Submit("plc-f32", p); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Barrier(); err != nil {
				t.Fatal(err)
			}
			eng.Stop()
			for _, stream := range []string{"plc-f64", "plc-f32"} {
				got := verdicts[stream]
				if len(got) != len(pkgs) {
					t.Fatalf("%s: %d verdicts for %d packages", stream, len(got), len(pkgs))
				}
				doc := trace.FormatVerdicts(tc.name, tc.header.Fingerprint, got)
				if line := trace.DiffVerdicts(tc.golden, doc); line != 0 {
					t.Errorf("%s: mixed-precision engine drifted from goldens at line %d", stream, line)
				}
			}
		})
	}
}

// TestTraceConformanceMixedScenarios: one engine serving gas-pipeline and
// water-tank streams concurrently on shared shards — each stream bound to
// its scenario's model via SubmitFor, submissions interleaved round-robin
// across all 16 streams — must produce, per stream, verdicts
// bytewise-identical to the committed goldens (which are sequential
// single-scenario replays). Cross-scenario batching must never bleed state
// or weights between streams.
func TestTraceConformanceMixedScenarios(t *testing.T) {
	corpora := loadCorpora(t)

	type streamSrc struct {
		key    string
		fw     *core.Framework
		tc     corpusTrace
		pkgs   []*dataset.Package
		golden []byte
	}
	var streams []*streamSrc
	for _, c := range corpora {
		for _, tc := range c.traces {
			pkgs, err := trace.Packages(tc.header, tc.records)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.scenario, tc.name, err)
			}
			streams = append(streams, &streamSrc{
				key:    c.scenario + "/" + tc.name,
				fw:     c.fw,
				tc:     tc,
				pkgs:   pkgs,
				golden: tc.golden,
			})
		}
	}

	// The default framework is the gas model; water-tank streams override
	// it per submission. 3 shards << 16 streams forces shard sharing
	// between scenarios.
	var mu sync.Mutex
	verdicts := make(map[string][]core.Verdict)
	eng, err := engine.New(corpora[0].fw,
		engine.Config{Shards: 3, MaxBatch: 16, QueueDepth: 64},
		func(r engine.Result) {
			mu.Lock()
			verdicts[r.Stream] = append(verdicts[r.Stream], r.Verdict)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin interleave: one package of each live stream per round,
	// so shards constantly alternate between scenarios mid-batch.
	for i := 0; ; i++ {
		live := false
		for _, s := range streams {
			if i >= len(s.pkgs) {
				continue
			}
			live = true
			var fw *core.Framework
			if s.fw != corpora[0].fw {
				fw = s.fw
			}
			if err := eng.SubmitFor(fw, s.key, s.pkgs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !live {
			break
		}
	}
	if err := eng.Barrier(); err != nil {
		t.Fatal(err)
	}
	eng.Stop()

	for _, s := range streams {
		got := verdicts[s.key]
		if len(got) != len(s.pkgs) {
			t.Fatalf("%s: %d verdicts for %d packages", s.key, len(got), len(s.pkgs))
		}
		doc := trace.FormatVerdicts(s.tc.name, s.tc.header.Fingerprint, got)
		if line := trace.DiffVerdicts(s.golden, doc); line != 0 {
			t.Errorf("%s: mixed-scenario engine drifted from goldens at line %d", s.key, line)
		}
	}
}

// TestTraceConformanceDetectionParity: the framework is process-agnostic,
// so moving it to the second testbed must not collapse detection quality.
// The PR acceptance bar: the water tank's detected ratios for DoS, MFCI and
// MPCI stay within 0.1 of the gas pipeline's.
func TestTraceConformanceDetectionParity(t *testing.T) {
	corpora := loadCorpora(t)
	if len(corpora) < 2 {
		t.Fatal("need both corpora")
	}
	ratios := func(c *corpus) map[dataset.AttackType]float64 {
		out := make(map[dataset.AttackType]float64)
		for _, tc := range c.traces {
			res, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.scenario, tc.name, err)
			}
			for _, at := range dataset.AttackTypes {
				if res.PerAttack.Total[at] > 0 {
					out[at] = res.PerAttack.Ratio(at)
				}
			}
		}
		return out
	}
	gas, tank := ratios(corpora[0]), ratios(corpora[1])
	for _, at := range []dataset.AttackType{dataset.DOS, dataset.MFCI, dataset.MPCI} {
		g, ok := gas[at]
		if !ok {
			t.Fatalf("gas corpus has no %v packages", at)
		}
		w, ok := tank[at]
		if !ok {
			t.Fatalf("watertank corpus has no %v packages", at)
		}
		if w < g-0.1 {
			t.Errorf("%v: watertank detected ratio %.2f below gas %.2f - 0.1", at, w, g)
		}
		t.Logf("%v: gas %.2f, watertank %.2f", at, g, w)
	}
}

// TestTraceConformanceLatencyAccounting: replaying an attack trace must
// attribute episodes and detection latency to the trace's attack category —
// the latency-mode measurements icsreplay reports are grounded here. Runs
// over both corpora.
func TestTraceConformanceLatencyAccounting(t *testing.T) {
	corpora := loadCorpora(t)
	attacks := map[string]string{
		"nmri": "NMRI", "cmri": "CMRI", "msci": "MSCI", "mpci": "MPCI",
		"mfci": "MFCI", "dos": "DoS", "recon": "Recon",
	}
	for _, c := range corpora {
		for _, tc := range c.traces {
			res, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{})
			if err != nil {
				t.Fatal(err)
			}
			id := fmt.Sprintf("%s/%s", c.scenario, tc.name)
			if tc.name == "normal" {
				if len(res.Latency.Episodes) != 0 {
					t.Errorf("%s: normal trace produced attack episodes: %+v", id, res.Latency.Episodes)
				}
				continue
			}
			found := false
			for at, n := range res.Latency.Episodes {
				if at.String() == attacks[tc.name] {
					found = true
					if n < 2 {
						t.Errorf("%s: %d episodes, corpus scripts record 2", id, n)
					}
					if res.Latency.Detected[at] == 0 {
						t.Errorf("%s: no episode detected; golden corpus should never pin a blind model", id)
					}
					if res.Latency.Detected[at] > 0 && res.Latency.MeanLatency(at) < 0 {
						t.Errorf("%s: negative mean latency", id)
					}
				}
			}
			if !found {
				t.Errorf("%s: no %s episodes in latency accounting: %+v", id, attacks[tc.name], res.Latency.Episodes)
			}
		}
	}
}

// TestTraceConformanceTimedMode: the timed (latency-mode) replay path must
// produce the same verdicts as throughput mode — pacing must never leak
// into classification.
func TestTraceConformanceTimedMode(t *testing.T) {
	for _, c := range loadCorpora(t) {
		tc := c.traces[0]
		res, err := trace.Replay(c.fw, tc.header, tc.records, trace.ReplayConfig{Timed: true, Speed: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		got := trace.FormatVerdicts(tc.name, tc.header.Fingerprint, res.Verdicts)
		if line := trace.DiffVerdicts(tc.golden, got); line != 0 {
			t.Fatalf("%s: timed replay drifted from goldens at line %d", c.scenario, line)
		}
	}
}
