package bloom

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNewWithEstimatesGeometry(t *testing.T) {
	f, err := NewWithEstimates(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if f.M() == 0 || f.M()%64 != 0 {
		t.Errorf("M = %d, want positive multiple of 64", f.M())
	}
	// Optimal sizing for p=0.01 is ~9.6 bits/element and ~7 hashes.
	if bits := float64(f.M()) / 1000; bits < 9 || bits > 11 {
		t.Errorf("bits per element = %.1f, want ~9.6", bits)
	}
	if f.K() < 5 || f.K() > 9 {
		t.Errorf("K = %d, want ~7", f.K())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("k=0 accepted")
	}
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewWithEstimates(10, p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
}

// TestNoFalseNegatives is the Bloom filter's defining guarantee and the
// reason the package-level detector can never mask a known-normal package
// (paper §IV-C: "False positive lookup results are possible but false
// negatives are not").
func TestNoFalseNegatives(t *testing.T) {
	f, err := NewWithEstimates(5000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	check := func(s string) bool {
		f.AddString(s)
		return f.ContainsString(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 10000
	target := 0.01
	f, err := NewWithEstimates(n, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.AddString("member-" + strconv.Itoa(i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.ContainsString("absent-" + strconv.Itoa(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 3*target {
		t.Errorf("observed FP rate %.4f exceeds 3x target %.3f", rate, target)
	}
	if est := f.EstimatedFPRate(); est > 2*target {
		t.Errorf("analytic estimate %.4f far above target %.3f", est, target)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f, err := New(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if f.ContainsString(strconv.Itoa(i)) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
	if f.EstimatedFPRate() != 0 {
		t.Error("empty filter should estimate 0 FP rate")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f, err := NewWithEstimates(500, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		f.AddString(fmt.Sprintf("sig:%d:%d", i, i*7))
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var g Filter
	if _, err := g.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if g.M() != f.M() || g.K() != f.K() || g.N() != f.N() {
		t.Fatalf("geometry mismatch after round trip")
	}
	for i := 0; i < 500; i++ {
		if !g.ContainsString(fmt.Sprintf("sig:%d:%d", i, i*7)) {
			t.Fatalf("member %d lost in serialization", i)
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var g Filter
	if _, err := g.ReadFrom(bytes.NewReader([]byte("not a filter at all......"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated stream.
	f, _ := NewWithEstimates(100, 0.01)
	var buf bytes.Buffer
	f.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := g.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestUnion(t *testing.T) {
	a, _ := New(2048, 5)
	b, _ := New(2048, 5)
	a.AddString("alpha")
	b.AddString("beta")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.ContainsString("alpha") || !a.ContainsString("beta") {
		t.Error("union lost members")
	}
	c, _ := New(1024, 5)
	if err := a.Union(c); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestFillRatioGrows(t *testing.T) {
	f, _ := New(4096, 3)
	if f.FillRatio() != 0 {
		t.Error("fresh filter not empty")
	}
	prev := 0.0
	for i := 0; i < 200; i++ {
		f.AddString(strconv.Itoa(i))
	}
	if r := f.FillRatio(); r <= prev || r > 1 {
		t.Errorf("fill ratio %v after 200 inserts", r)
	}
}

func TestSizeBytes(t *testing.T) {
	f, _ := New(64*100, 3)
	if got := f.SizeBytes(); got != 800 {
		t.Errorf("SizeBytes = %d, want 800", got)
	}
}

// TestBaseHashesMatchStdlibFNV pins the inline hash implementations to
// hash/fnv: the filter's bit positions — and therefore every verdict and
// every serialized filter — must not move when the hashing is inlined.
func TestBaseHashesMatchStdlibFNV(t *testing.T) {
	ref := func(data []byte) (uint64, uint64) {
		a := fnv.New64a()
		a.Write(data) //nolint:errcheck
		b := fnv.New64()
		b.Write(data) //nolint:errcheck
		return a.Sum64(), b.Sum64() | 1
	}
	check := func(data []byte) {
		want1, want2 := ref(data)
		got1, got2 := baseHashes(data)
		if got1 != want1 || got2 != want2 {
			t.Fatalf("baseHashes(%q) = (%#x, %#x), want (%#x, %#x)",
				data, got1, got2, want1, want2)
		}
		s1, s2 := baseHashesString(string(data))
		if s1 != want1 || s2 != want2 {
			t.Fatalf("baseHashesString(%q) = (%#x, %#x), want (%#x, %#x)",
				data, s1, s2, want1, want2)
		}
	}
	check(nil)
	check([]byte{0})
	check([]byte("3:1:2:0:0:1:0:0:1:1:4:12:7"))
	rng := uint64(0x9E3779B97F4A7C15)
	for trial := 0; trial < 200; trial++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		data := make([]byte, rng%64)
		for i := range data {
			rng = rng*6364136223846793005 + 1442695040888963407
			data[i] = byte(rng >> 56)
		}
		check(data)
	}
}

// TestContainsStringAllocFree pins the hot-path lookup at zero allocations.
func TestContainsStringAllocFree(t *testing.T) {
	f, err := NewWithEstimates(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.AddString("sig-" + strconv.Itoa(i))
	}
	keys := []string{"sig-17", "sig-999", "absent"}
	allocs := testing.AllocsPerRun(200, func() {
		for _, k := range keys {
			f.ContainsString(k)
		}
	})
	if allocs != 0 {
		t.Fatalf("ContainsString allocates %.1f times per run, want 0", allocs)
	}
}
