// Package bloom implements the Bloom filter used as the package-content
// level anomaly detector's signature store (paper §IV-C): an m-bit vector
// with k hash functions, constant-time insert/lookup, no false negatives,
// and a tunable false-positive rate.
//
// The k hash positions are derived from two independent 64-bit FNV-1a hashes
// via Kirsch–Mitzenmacher double hashing, h_i(x) = h1(x) + i*h2(x) mod m,
// which preserves the asymptotic false-positive rate of k independent hash
// functions.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Filter is a classic Bloom filter. The zero value is unusable; construct
// with New or NewWithEstimates.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint64 // number of hash functions
	n    uint64 // number of inserted elements
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64.
func New(m, k uint64) (*Filter, error) {
	if m == 0 || k == 0 {
		return nil, fmt.Errorf("bloom: m and k must be positive (m=%d k=%d)", m, k)
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}, nil
}

// NewWithEstimates creates a filter sized for n expected elements and target
// false-positive probability p, using the standard optimal sizing
// m = -n·ln p / (ln 2)² and k = (m/n)·ln 2.
func NewWithEstimates(n uint64, p float64) (*Filter, error) {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: p must be in (0,1), got %g", p)
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint64(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// M returns the number of bits in the filter.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint64 { return f.k }

// N returns the number of Add calls made (duplicates counted).
func (f *Filter) N() uint64 { return f.n }

// SizeBytes returns the memory footprint of the bit vector.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// FNV-64 parameters (the same constants hash/fnv uses).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// baseHashes computes the two independent 64-bit hashes (FNV-1a and FNV-1)
// of data inline rather than through hash/fnv's digest objects, which would
// cost two heap allocations per lookup on the per-package hot path. The
// bits are identical to fnv.New64a / fnv.New64 (verified by test), so
// filters built or queried through either spelling agree exactly.
func baseHashes(data []byte) (h1, h2 uint64) {
	h1, h2 = fnvOffset, fnvOffset
	for _, c := range data {
		h1 = (h1 ^ uint64(c)) * fnvPrime // FNV-1a: xor, then multiply
		h2 = h2*fnvPrime ^ uint64(c)     // FNV-1: multiply, then xor
	}
	return h1, h2 | 1 // force odd so the stride visits all positions
}

// baseHashesString is baseHashes over a string key without the []byte
// conversion (and its allocation).
func baseHashesString(s string) (h1, h2 uint64) {
	h1, h2 = fnvOffset, fnvOffset
	for i := 0; i < len(s); i++ {
		c := uint64(s[i])
		h1 = (h1 ^ c) * fnvPrime
		h2 = h2*fnvPrime ^ c
	}
	return h1, h2 | 1
}

// add sets the k double-hashed positions for (h1, h2).
func (f *Filter) add(h1, h2 uint64) {
	for i := uint64(0); i < f.k; i++ {
		pos := (h1 + i*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// contains tests the k double-hashed positions for (h1, h2).
func (f *Filter) contains(h1, h2 uint64) bool {
	for i := uint64(0); i < f.k; i++ {
		pos := (h1 + i*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	h1, h2 := baseHashes(data)
	f.add(h1, h2)
}

// AddString inserts a string key.
func (f *Filter) AddString(s string) {
	h1, h2 := baseHashesString(s)
	f.add(h1, h2)
}

// Contains reports whether data is possibly in the set. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(data []byte) bool {
	h1, h2 := baseHashes(data)
	return f.contains(h1, h2)
}

// ContainsString reports whether the string key is possibly in the set.
// It allocates nothing: the detection stack's package level answers every
// per-package membership query through this path.
func (f *Filter) ContainsString(s string) bool {
	h1, h2 := baseHashesString(s)
	return f.contains(h1, h2)
}

// EstimatedFPRate returns the analytic false-positive probability
// (1 - e^{-kn/m})^k given the observed insert count.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k*f.n)/float64(f.m)), float64(f.k))
}

// FillRatio returns the fraction of set bits, a diagnostic for saturation.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

func popcount(x uint64) int {
	// Hacker's Delight bit-parallel popcount; avoids math/bits only for no
	// reason other than keeping this file self-explanatory — math/bits is
	// stdlib and fine, but OnesCount64 compiles to the same POPCNT anyway.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Union merges other into f in place. Filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: union geometry mismatch (m=%d/%d k=%d/%d)",
			f.m, other.m, f.k, other.k)
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
	return nil
}

// magic identifies the serialized filter format.
var magic = [4]byte{'B', 'L', 'M', '1'}

// WriteTo serializes the filter: magic, m, k, n, then the bit words, all
// little-endian.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var total int64
	hdr := make([]byte, 4+8*3)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint64(hdr[4:], f.m)
	binary.LittleEndian.PutUint64(hdr[12:], f.k)
	binary.LittleEndian.PutUint64(hdr[20:], f.n)
	n, err := w.Write(hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8)
	for _, word := range f.bits {
		binary.LittleEndian.PutUint64(buf, word)
		n, err = w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFrom deserializes a filter previously written with WriteTo, replacing
// the receiver's contents.
func (f *Filter) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	hdr := make([]byte, 4+8*3)
	n, err := io.ReadFull(r, hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] || hdr[3] != magic[3] {
		return total, errors.New("bloom: bad magic in serialized filter")
	}
	m := binary.LittleEndian.Uint64(hdr[4:])
	k := binary.LittleEndian.Uint64(hdr[12:])
	cnt := binary.LittleEndian.Uint64(hdr[20:])
	if m == 0 || m%64 != 0 || k == 0 {
		return total, fmt.Errorf("bloom: invalid geometry in serialized filter (m=%d k=%d)", m, k)
	}
	bits := make([]uint64, m/64)
	buf := make([]byte, 8)
	for i := range bits {
		n, err = io.ReadFull(r, buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
		bits[i] = binary.LittleEndian.Uint64(buf)
	}
	f.bits, f.m, f.k, f.n = bits, m, k, cnt
	return total, nil
}
