// Package gaspipeline simulates the laboratory gas pipeline testbed behind
// the Morris SCADA dataset (paper §VII): a small airtight pipeline fed by a
// compressor, instrumented with a pressure meter and vented by a
// solenoid-controlled relief valve, regulated by a PID loop, and polled over
// Modbus by a SCADA master. An AutoIt-style attack injector reproduces the
// seven attack types of Table II, and a generator emits labeled datasets
// with the exact Table I feature schema.
//
// This package is the documented substitution for the original dataset,
// which is not obtainable in an offline environment; see DESIGN.md §2.
package gaspipeline

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// PlantConfig holds the physical constants of the pipeline.
type PlantConfig struct {
	// MaxPressure is the physical ceiling in PSI; the relief valve fully
	// open cannot push pressure below zero.
	MaxPressure float64
	// CompressorRate is the pressure rise per second at full compressor
	// duty with an empty pipeline (PSI/s).
	CompressorRate float64
	// ValveRate is the pressure drop per second with the relief valve fully
	// open at MaxPressure (PSI/s); outflow scales with pressure.
	ValveRate float64
	// LeakRate is the passive decay constant (fraction of pressure lost per
	// second) modelling imperfect seals.
	LeakRate float64
	// ProcessNoise is the standard deviation of random pressure
	// perturbations per sqrt-second (the "naturally noisy behaviour" of
	// paper §VIII-D).
	ProcessNoise float64
	// SensorNoise is the standard deviation of measurement error in PSI.
	SensorNoise float64
	// InitialPressure is the pressure at simulation start.
	InitialPressure float64
}

// DefaultPlantConfig returns constants tuned so the PID loop holds a
// setpoint near 10 PSI with visible but bounded process noise, mirroring
// the testbed's observed pressure traces.
func DefaultPlantConfig() PlantConfig {
	return PlantConfig{
		MaxPressure:     20,
		CompressorRate:  4.0,
		ValveRate:       5.0,
		LeakRate:        0.03,
		ProcessNoise:    0.05,
		SensorNoise:     0.03,
		InitialPressure: 5,
	}
}

// Plant integrates the pipeline pressure dynamics. Not safe for concurrent
// use; the simulator owns it.
type Plant struct {
	cfg      PlantConfig
	pressure float64
	// CompressorDuty in [0,1] and ValveOpen drive the dynamics; the
	// controller sets them each cycle.
	CompressorDuty float64
	ValveOpen      bool
	rng            *mathx.RNG
}

// NewPlant constructs a plant with the given constants and noise stream.
func NewPlant(cfg PlantConfig, rng *mathx.RNG) (*Plant, error) {
	if cfg.MaxPressure <= 0 {
		return nil, fmt.Errorf("gaspipeline: MaxPressure must be positive, got %g", cfg.MaxPressure)
	}
	if cfg.CompressorRate <= 0 || cfg.ValveRate <= 0 {
		return nil, fmt.Errorf("gaspipeline: compressor/valve rates must be positive (%g, %g)",
			cfg.CompressorRate, cfg.ValveRate)
	}
	return &Plant{cfg: cfg, pressure: cfg.InitialPressure, rng: rng}, nil
}

// Pressure returns the true (noise-free sensor aside) pipeline pressure.
func (p *Plant) Pressure() float64 { return p.pressure }

// Measure returns a noisy sensor reading of the current pressure.
func (p *Plant) Measure() float64 {
	m := p.pressure + p.rng.NormScaled(0, p.cfg.SensorNoise)
	return mathx.Clamp(m, 0, p.cfg.MaxPressure)
}

// Step advances the dynamics by dt seconds using forward Euler with the
// current actuator settings. Sub-stepping keeps the integration stable for
// the long inter-cycle gaps.
func (p *Plant) Step(dt float64) {
	const maxSub = 0.05
	for dt > 0 {
		h := math.Min(dt, maxSub)
		dt -= h
		inflow := p.cfg.CompressorRate * p.CompressorDuty * (1 - p.pressure/p.cfg.MaxPressure)
		outflow := 0.0
		if p.ValveOpen {
			outflow = p.cfg.ValveRate * (p.pressure / p.cfg.MaxPressure)
		}
		leak := p.cfg.LeakRate * p.pressure
		noise := p.rng.NormScaled(0, p.cfg.ProcessNoise*math.Sqrt(h))
		p.pressure += h*(inflow-outflow-leak) + noise
		p.pressure = mathx.Clamp(p.pressure, 0, p.cfg.MaxPressure)
	}
}
