package gaspipeline

import (
	"bytes"
	"math"
	"testing"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
)

func TestPlantPressureBounded(t *testing.T) {
	cfg := DefaultPlantConfig()
	plant, err := NewPlant(cfg, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	plant.CompressorDuty = 1
	for i := 0; i < 10000; i++ {
		plant.Step(0.25)
		if p := plant.Pressure(); p < 0 || p > cfg.MaxPressure {
			t.Fatalf("pressure %v out of [0, %v]", p, cfg.MaxPressure)
		}
	}
	// Full duty forever: pressure should be high.
	if plant.Pressure() < cfg.MaxPressure/2 {
		t.Errorf("pressure %v after sustained compression", plant.Pressure())
	}
	// Valve open, compressor off: pressure must fall substantially.
	plant.CompressorDuty = 0
	plant.ValveOpen = true
	for i := 0; i < 1000; i++ {
		plant.Step(0.25)
	}
	if plant.Pressure() > 2 {
		t.Errorf("pressure %v after sustained venting", plant.Pressure())
	}
}

func TestPlantConfigValidation(t *testing.T) {
	bad := DefaultPlantConfig()
	bad.MaxPressure = 0
	if _, err := NewPlant(bad, mathx.NewRNG(1)); err == nil {
		t.Error("MaxPressure=0 accepted")
	}
	bad = DefaultPlantConfig()
	bad.CompressorRate = -1
	if _, err := NewPlant(bad, mathx.NewRNG(1)); err == nil {
		t.Error("negative compressor rate accepted")
	}
}

func TestControllerAutoHoldsSetpoint(t *testing.T) {
	cfg := DefaultPlantConfig()
	cfg.ProcessNoise = 0
	cfg.SensorNoise = 0
	plant, err := NewPlant(cfg, mathx.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	st := ControllerState{
		Setpoint: 8, Gain: 0.45, ResetRate: 0.15, Deadband: 0.05,
		CycleTime: 0.25, Rate: 0.02, Mode: ModeAuto, Scheme: SchemePump,
	}
	ctrl, err := NewController(st, cfg.MaxPressure)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		ctrl.Actuate(plant, plant.Measure())
		plant.Step(0.25)
	}
	if d := math.Abs(plant.Pressure() - 8); d > 0.8 {
		t.Errorf("auto mode settled %.2f away from setpoint", d)
	}
}

func TestControllerModes(t *testing.T) {
	cfg := DefaultPlantConfig()
	plant, _ := NewPlant(cfg, mathx.NewRNG(3))
	st := ControllerState{
		Setpoint: 8, Gain: 0.45, ResetRate: 0.15, CycleTime: 0.25,
		Mode: ModeManual, Pump: 1, Solenoid: 0,
	}
	ctrl, err := NewController(st, cfg.MaxPressure)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Actuate(plant, 5)
	if plant.CompressorDuty != 1 {
		t.Error("manual pump command not applied")
	}
	pump, sol := ctrl.ActuatorView(plant)
	if pump != 1 || sol != 0 {
		t.Errorf("actuator view = (%d, %d)", pump, sol)
	}

	st.Mode = ModeOff
	ctrl.ApplyUnchecked(st)
	ctrl.Actuate(plant, 5)
	if plant.CompressorDuty != 0 {
		t.Error("off mode leaves compressor running")
	}
	if pump, sol = ctrl.ActuatorView(plant); pump != 0 || sol != 0 {
		t.Errorf("off-mode actuator view = (%d, %d), want zeros (Table I)", pump, sol)
	}
}

func TestControllerSafetyValve(t *testing.T) {
	cfg := DefaultPlantConfig()
	plant, _ := NewPlant(cfg, mathx.NewRNG(4))
	st := ControllerState{
		Setpoint: 8, Gain: 0.45, ResetRate: 0.15, CycleTime: 0.25,
		Mode: ModeOff,
	}
	ctrl, err := NewController(st, cfg.MaxPressure)
	if err != nil {
		t.Fatal(err)
	}
	// Near the physical ceiling the failsafe must open the valve even in
	// off mode.
	ctrl.Actuate(plant, cfg.MaxPressure*0.95)
	if !plant.ValveOpen {
		t.Error("safety valve closed at 95% of max pressure")
	}
	// Hysteresis: stays open slightly below the trigger.
	ctrl.Actuate(plant, cfg.MaxPressure*0.9)
	if !plant.ValveOpen {
		t.Error("safety valve closed inside the hysteresis band")
	}
	ctrl.Actuate(plant, cfg.MaxPressure*0.5)
	if plant.ValveOpen {
		t.Error("safety valve stuck open")
	}
}

func TestControllerStateValidation(t *testing.T) {
	bad := ControllerState{Mode: 7, CycleTime: 0.25}
	if err := bad.Validate(); err == nil {
		t.Error("invalid mode accepted")
	}
	bad = ControllerState{Mode: ModeAuto, Scheme: 9, CycleTime: 0.25}
	if err := bad.Validate(); err == nil {
		t.Error("invalid scheme accepted")
	}
	bad = ControllerState{Mode: ModeAuto, Setpoint: -1, CycleTime: 0.25}
	if err := bad.Validate(); err == nil {
		t.Error("negative setpoint accepted")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	gen := func() []*dataset.Package {
		sim, err := NewSimulator(DefaultSimConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
		return sim.Packages()
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("package %d differs between identical seeds", i)
		}
	}
}

func TestNormalCycleStructure(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunNormalCycle(dataset.Normal)
	pkgs := sim.Packages()
	if len(pkgs) != 4 {
		t.Fatalf("cycle emitted %d packages, want 4", len(pkgs))
	}
	// write cmd, ack, read cmd, read resp
	wantCmd := []float64{1, 0, 1, 0}
	for i, p := range pkgs {
		if p.CmdResponse != wantCmd[i] {
			t.Errorf("package %d cmd/resp = %v", i, p.CmdResponse)
		}
		if p.Address != 4 {
			t.Errorf("package %d address = %v", i, p.Address)
		}
		if p.Label != dataset.Normal {
			t.Errorf("package %d labeled %v", i, p.Label)
		}
	}
	if pkgs[0].Function != 0x10 || pkgs[3].Function != 0x41 {
		t.Errorf("functions = %v, %v", pkgs[0].Function, pkgs[3].Function)
	}
	if pkgs[3].Pressure <= 0 {
		t.Error("read response carries no pressure")
	}
	// Timestamps strictly increase.
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i].Time <= pkgs[i-1].Time {
			t.Error("timestamps not increasing")
		}
	}
}

func TestAttackEpisodeLabels(t *testing.T) {
	cases := []struct {
		name string
		run  func(*Simulator)
		want dataset.AttackType
	}{
		{"NMRI", func(s *Simulator) { s.RunNMRIEpisode(2) }, dataset.NMRI},
		{"CMRI", func(s *Simulator) { s.RunCMRIEpisode(3) }, dataset.CMRI},
		{"MSCI", func(s *Simulator) { s.RunMSCIEpisode(2) }, dataset.MSCI},
		{"MPCI", func(s *Simulator) { s.RunMPCIEpisode(2) }, dataset.MPCI},
		{"MFCI", func(s *Simulator) { s.RunMFCIEpisode(2) }, dataset.MFCI},
		{"DoS", func(s *Simulator) { s.RunDoSEpisode(2) }, dataset.DOS},
		{"Recon", func(s *Simulator) { s.RunReconEpisode(5) }, dataset.Recon},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := NewSimulator(DefaultSimConfig())
			if err != nil {
				t.Fatal(err)
			}
			tc.run(sim)
			found := 0
			for _, p := range sim.Packages() {
				if p.Label == tc.want {
					found++
				} else if p.Label != dataset.Normal {
					t.Errorf("unexpected label %v in %s episode", p.Label, tc.name)
				}
			}
			if found == 0 {
				t.Errorf("%s episode produced no labeled packages", tc.name)
			}
		})
	}
}

func TestReconUsesForeignAddresses(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunReconEpisode(20)
	for _, p := range sim.Packages() {
		if p.Label == dataset.Recon && p.Address == float64(sim.cfg.SlaveAddress) {
			t.Error("recon probe aimed at the legitimate station address")
		}
	}
}

func TestDoSIntervalsAreLong(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunDoSEpisode(4)
	pkgs := sim.Packages()
	long := 0
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i].Label == dataset.DOS && pkgs[i].Time-pkgs[i-1].Time > 1.0 {
			long++
		}
	}
	if long < 3 {
		t.Errorf("DoS produced only %d long gaps", long)
	}
}

func TestGenerateProportions(t *testing.T) {
	ds, err := Generate(DefaultGenConfig(8000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 8000 {
		t.Fatalf("generated %d packages", ds.Len())
	}
	counts := ds.CountAttacks()
	attackFrac := 1 - float64(counts[dataset.Normal])/float64(ds.Len())
	if attackFrac < 0.12 || attackFrac > 0.32 {
		t.Errorf("attack fraction %.3f far from target 0.219", attackFrac)
	}
	// Every attack type represented.
	for _, at := range dataset.AttackTypes {
		if counts[at] == 0 {
			t.Errorf("attack type %v absent from generated dataset", at)
		}
	}
}

func TestGenerateNormalIsClean(t *testing.T) {
	ds, err := GenerateNormal(3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Packages {
		if p.IsAttack() {
			t.Fatalf("attack package in normal-only capture: %v", p.Label)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultGenConfig(100, 1)
	cfg.AttackRatio = 1.5
	if _, err := Generate(cfg); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestGeneratedARFFRoundTrip(t *testing.T) {
	ds, err := Generate(DefaultGenConfig(2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteARFF(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost packages: %d vs %d", back.Len(), ds.Len())
	}
	for i := range ds.Packages {
		if *back.Packages[i] != *ds.Packages[i] {
			t.Fatalf("package %d changed in ARFF round trip", i)
		}
	}
}

func TestCRCRateDecays(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunDoSEpisode(4)
	peak := 0.0
	for _, p := range sim.Packages() {
		if p.CRCRate > peak {
			peak = p.CRCRate
		}
	}
	if peak < 0.1 {
		t.Errorf("DoS flood raised CRC rate only to %v", peak)
	}
	// After enough clean cycles the rate returns to zero.
	for i := 0; i < 20; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	pkgs := sim.Packages()
	if last := pkgs[len(pkgs)-1].CRCRate; last != 0 {
		t.Errorf("CRC rate %v did not decay to zero", last)
	}
}
