package gaspipeline

import (
	"fmt"

	"icsdetect/internal/pid"
)

// System modes as encoded in the dataset's system_mode column.
const (
	ModeOff    = 0
	ModeManual = 1
	ModeAuto   = 2
)

// Control schemes as encoded in the control_scheme column.
const (
	SchemePump     = 0
	SchemeSolenoid = 1
)

// ControllerState is the full SCADA-visible controller block: everything a
// write command carries and a state read returns (the parameter columns of
// Table I).
type ControllerState struct {
	Setpoint  float64
	Gain      float64
	ResetRate float64
	Deadband  float64
	CycleTime float64
	Rate      float64
	Mode      int // ModeOff/ModeManual/ModeAuto
	Scheme    int // SchemePump/SchemeSolenoid
	Pump      int // manual-mode pump command (1 on / 0 off)
	Solenoid  int // manual-mode valve command (1 open / 0 closed)
}

// Validate reports obviously corrupt states; the attack injector is allowed
// to bypass this, the legitimate operator is not.
func (s *ControllerState) Validate() error {
	if s.Mode < ModeOff || s.Mode > ModeAuto {
		return fmt.Errorf("gaspipeline: invalid mode %d", s.Mode)
	}
	if s.Scheme != SchemePump && s.Scheme != SchemeSolenoid {
		return fmt.Errorf("gaspipeline: invalid scheme %d", s.Scheme)
	}
	if s.Setpoint < 0 {
		return fmt.Errorf("gaspipeline: negative setpoint %g", s.Setpoint)
	}
	return nil
}

// PIDConfig converts the state's PID columns to a pid.Config.
func (s *ControllerState) PIDConfig() pid.Config {
	return pid.Config{
		Gain:      s.Gain,
		ResetRate: s.ResetRate,
		Rate:      s.Rate,
		Deadband:  s.Deadband,
		CycleTime: s.CycleTime,
		OutMin:    0,
		OutMax:    1,
	}
}

// Controller runs the field device's control law: in automatic mode the PID
// loop drives either the compressor (pump scheme) or the relief valve
// (solenoid scheme); in manual mode the operator's pump/solenoid commands
// pass through; in off mode both actuators are idle.
type Controller struct {
	state ControllerState
	loop  *pid.Controller
	// safetyValve latches the relief valve open above the hard limit and
	// releases it with hysteresis, independent of mode (physical failsafe).
	safetyOpen bool
	safetyHi   float64
	safetyLo   float64
}

// NewController builds a controller with the given initial state.
func NewController(initial ControllerState, maxPressure float64) (*Controller, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	loop, err := pid.New(initial.PIDConfig())
	if err != nil {
		return nil, err
	}
	return &Controller{
		state:    initial,
		loop:     loop,
		safetyHi: 0.93 * maxPressure,
		safetyLo: 0.85 * maxPressure,
	}, nil
}

// State returns a copy of the controller block.
func (c *Controller) State() ControllerState { return c.state }

// Apply installs a new controller block (a Modbus write command). Invalid
// PID parameters are rejected with an error, matching the device's
// illegal-value exception; the attack injector uses ApplyUnchecked.
func (c *Controller) Apply(s ControllerState) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return c.applyPID(s)
}

// ApplyUnchecked installs a controller block without operator-level
// validation (malicious writes land here: the device firmware only bounds
// what the PID library itself cannot represent).
func (c *Controller) ApplyUnchecked(s ControllerState) {
	if err := c.applyPID(s); err != nil {
		// The PID library rejected the parameters (e.g. negative cycle
		// time); the device keeps its previous loop but the state block
		// still reflects the written values, as the real firmware does.
		c.state = s
	}
}

func (c *Controller) applyPID(s ControllerState) error {
	cfg := s.PIDConfig()
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("gaspipeline: apply controller state: %w", err)
	}
	if err := c.loop.SetConfig(cfg); err != nil {
		return err
	}
	c.state = s
	return nil
}

// Actuate computes actuator commands for the current measured pressure and
// applies them to the plant.
func (c *Controller) Actuate(plant *Plant, measured float64) {
	// Hard over-pressure failsafe with hysteresis.
	if measured >= c.safetyHi {
		c.safetyOpen = true
	} else if measured <= c.safetyLo {
		c.safetyOpen = false
	}

	switch c.state.Mode {
	case ModeAuto:
		u := c.loop.Step(c.state.Setpoint, measured)
		if c.state.Scheme == SchemePump {
			// Split-range control: PID drives compressor duty; with the
			// compressor idle and significant over-pressure the relief
			// valve opens, so the loop can correct in both directions.
			plant.CompressorDuty = u
			plant.ValveOpen = c.safetyOpen || (u <= 0.02 && measured > c.state.Setpoint+1)
		} else {
			// Compressor at fixed duty; PID drives the relief valve: a
			// large positive error (under-pressure) closes it, negative
			// error opens it. The valve is binary, so threshold the
			// *inverted* control signal.
			plant.CompressorDuty = 0.7
			plant.ValveOpen = u < 0.25 || c.safetyOpen
		}
	case ModeManual:
		plant.CompressorDuty = float64(c.state.Pump)
		plant.ValveOpen = c.state.Solenoid == 1 || c.safetyOpen
	default: // ModeOff
		plant.CompressorDuty = 0
		plant.ValveOpen = c.safetyOpen
	}
}

// ActuatorView returns the pump/solenoid columns a state read reports. Per
// Table I these columns are meaningful "only for manual mode"; in automatic
// and off modes the device reports zeros.
func (c *Controller) ActuatorView(plant *Plant) (pump, solenoid int) {
	_ = plant
	if c.state.Mode == ModeManual {
		return c.state.Pump, c.state.Solenoid
	}
	return 0, 0
}
