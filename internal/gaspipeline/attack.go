package gaspipeline

import (
	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/modbus"
	"icsdetect/internal/scenario"
)

// This file implements the AutoIt-style attack injector (paper §VII,
// Table II). Each Run*Episode method plays one attack episode against the
// live simulation. Ground-truth labels mark exactly the packages the
// attacker caused — injected commands and their direct acknowledgements,
// falsified responses, flood traffic — matching the original dataset's
// per-packet labeling; routine master polling that continues during an
// episode stays labeled Normal.

// RunAttackEpisode dispatches one episode of the given Table II category to
// its Run*Episode injector, implementing the scenario.Sim contract. n is the
// episode length in the category's natural unit (cycles, or probes for
// Recon).
func (s *Simulator) RunAttackEpisode(at dataset.AttackType, n int) error {
	return scenario.DispatchEpisode(s, at, n)
}

// RunNMRIEpisode injects naive malicious response packets: after each normal
// poll cycle the attacker forges 1-3 extra state-read responses carrying
// random pressure readings.
func (s *Simulator) RunNMRIEpisode(cycles int) {
	for c := 0; c < cycles; c++ {
		s.RunNormalCycle(dataset.Normal)
		forged := 1 + s.rng.Intn(3)
		st := s.ctrl.State()
		for i := 0; i < forged; i++ {
			s.advance(s.intraDelay())
			// Half the forged readings are blatant (uniform over the full
			// physical range), half are mimicry near the live value; the
			// paper's detected ratios show NMRI is mostly but not fully
			// detectable (0.88 for the framework, Table V).
			fakePressure := s.rng.Range(0, s.cfg.Plant.MaxPressure)
			if s.rng.Bernoulli(0.5) {
				fakePressure = mathx.Clamp(
					s.plant.Pressure()+s.rng.Range(-2, 2), 0, s.cfg.Plant.MaxPressure)
			}
			pdu := modbus.ReadRegistersResponse(modbus.FuncReadState,
				stateRegisters(st, 0, 0, fakePressure, true))
			s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
				st, 0, 0, fakePressure, false, dataset.NMRI)
		}
	}
}

// RunCMRIEpisode hides the real state of the process: every state-read
// response during the episode reports a frozen, attacker-chosen pressure
// while the true plant keeps evolving. Only the falsified responses carry
// the attack label. This is the paper's hardest attack (mimicry; §VIII-D).
func (s *Simulator) RunCMRIEpisode(cycles int) {
	// The attacker freezes the reading at a constant inside the plant's
	// global operating range. Values near the live setpoint are pure
	// mimicry; values consistent with *some* operating regime but not the
	// current one leave a content-level trace, which is why the paper's
	// package level still catches a share of CMRI (Table V).
	frozen := mathx.Clamp(s.rng.Range(1, 15), 0.5, s.cfg.Plant.MaxPressure-0.5)
	for c := 0; c < cycles; c++ {
		s.operatorStep()
		st := s.desired
		start := s.now

		cmdPDU := modbus.WriteMultipleRequest(0, stateRegisters(st, st.Pump, st.Solenoid, 0, false))
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: cmdPDU},
			st, st.Pump, st.Solenoid, 0, true, dataset.Normal)
		if err := s.ctrl.Apply(st); err != nil {
			_ = err // invalid operator block rejected; device keeps previous
		}

		s.advance(s.intraDelay())
		cur := s.ctrl.State()
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: modbus.WriteMultipleResponse(0, 10)},
			cur, 0, 0, 0, false, dataset.Normal)

		s.advance(s.intraDelay())
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: modbus.ReadRequest(modbus.FuncReadState, 0, 11)},
			ControllerState{CycleTime: cur.CycleTime}, 0, 0, 0, true, dataset.Normal)

		s.advance(s.intraDelay())
		// The device actuates on the REAL measurement; only the reported
		// value is falsified in transit.
		measured := s.plant.Measure()
		s.ctrl.Actuate(s.plant, measured)
		pump, sol := s.ctrl.ActuatorView(s.plant)
		jittered := mathx.Clamp(frozen+s.rng.NormScaled(0, 0.02), 0, s.cfg.Plant.MaxPressure)
		pdu := modbus.ReadRegistersResponse(modbus.FuncReadState,
			stateRegisters(cur, pump, sol, jittered, true))
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
			cur, pump, sol, jittered, false, dataset.CMRI)

		period := s.cfg.CycleTime * (1 + s.cfg.CycleJitter*(2*s.rng.Float64()-1))
		if rest := period - (s.now - start); rest > 0 {
			s.advance(rest)
		}
	}
}

// RunMSCIEpisode injects malicious state commands: the attacker switches the
// device to manual mode with adversarial actuator settings (or switches it
// off). The injected command, its acknowledgement and the state reads that
// expose the tampered state carry the label; the master's routine read
// commands do not.
func (s *Simulator) RunMSCIEpisode(cycles int) {
	mal := s.desired
	switch s.rng.Intn(5) {
	case 0, 1: // force compressor on: over-pressurize
		mal.Mode, mal.Pump, mal.Solenoid = ModeManual, 1, 0
	case 2, 3: // vent the line
		mal.Mode, mal.Pump, mal.Solenoid = ModeManual, 0, 1
	default: // kill control entirely
		mal.Mode, mal.Pump, mal.Solenoid = ModeOff, 0, 0
	}
	labels := cycleLabels{
		Cmd: dataset.MSCI, Ack: dataset.MSCI,
		Read: dataset.Normal, Resp: dataset.MSCI,
	}
	for c := 0; c < cycles; c++ {
		s.runCycleWithState(mal, labels)
	}
	// Operator notices and restores the legitimate block. The restore
	// traffic is legitimate, but the first post-restore state read still
	// reports the attacker-caused process state.
	s.runCycleWithState(s.desired, cycleLabels{Resp: dataset.MSCI})
}

// RunMPCIEpisode injects malicious parameter commands: a write carrying
// randomized setpoint or PID parameters (paper Table II row 4). Labels
// follow the MSCI convention.
func (s *Simulator) RunMPCIEpisode(cycles int) {
	mal := s.desired
	// Parameters are drawn from ranges that straddle the legitimate
	// envelope: some injections are blatant, many are mimicry (the paper
	// observes MPCI mixes both, §VIII-D).
	n := 1 + s.rng.Intn(2)
	for i := 0; i < n; i++ {
		switch s.rng.Intn(4) {
		case 0:
			mal.Setpoint = s.rng.Range(4, 13)
		case 1:
			mal.Gain = s.rng.Range(0.1, 1.5)
		case 2:
			mal.ResetRate = s.rng.Range(0, 0.5)
		default:
			mal.Rate = s.rng.Range(0, 0.3)
		}
	}
	labels := cycleLabels{
		Cmd: dataset.MPCI, Ack: dataset.MPCI,
		Read: dataset.Normal, Resp: dataset.MPCI,
	}
	for c := 0; c < cycles; c++ {
		s.runCycleWithState(mal, labels)
	}
	s.runCycleWithState(s.desired, cycleLabels{Resp: dataset.MPCI})
}

// RunMFCIEpisode injects malicious function code commands: diagnostics
// force-listen-only / restart sub-functions the master never uses. The
// device answers with the diagnostics echo, so both directions are exposed.
func (s *Simulator) RunMFCIEpisode(count int) {
	st := s.ctrl.State()
	for i := 0; i < count; i++ {
		// Sub-function 4 = force listen only; 1 = restart communications.
		sub := uint16(4)
		if s.rng.Bernoulli(0.5) {
			sub = 1
		}
		pdu := modbus.WriteSingleRequest(modbus.FuncDiagnostics, sub, 0)
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
			st, 0, 0, 0, true, dataset.MFCI)
		s.advance(s.intraDelay())
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
			st, 0, 0, 0, false, dataset.MFCI)
		s.advance(s.cfg.CycleTime * s.rng.Range(0.5, 1.5))
	}
}

// RunDoSEpisode denies service on the communication link: reads go
// unanswered, the master retries after long timeouts, and the flood
// corrupts frames, driving the CRC failure rate up. The decay tail — cycles
// whose CRC rate is still contaminated — belongs to the attack period.
func (s *Simulator) RunDoSEpisode(cycles int) {
	st := s.ctrl.State()
	for c := 0; c < cycles; c++ {
		// Master read attempt; response never arrives.
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: modbus.ReadRequest(modbus.FuncReadState, 0, 11)},
			ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, dataset.DOS)
		// Timeout plus backoff: an interval far outside both normal
		// clusters.
		s.advance(s.rng.Range(1.5, 4.0))
		// Flood garbage: corrupted frames observed on the wire.
		if s.rng.Bernoulli(0.8) {
			junk := modbus.ReadRequest(modbus.FuncReadState, 0, 11)
			s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: junk, CorruptCRC: true},
				ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, dataset.DOS)
			s.advance(s.rng.Range(0.2, 0.8))
		}
	}
	// Service resumes but the monitor's CRC failure rate is still decaying;
	// those cycles belong to the attack period.
	for c := 0; c < crcWindow/4; c++ {
		s.RunNormalCycle(dataset.DOS)
	}
}

// RunReconEpisode scans for devices: rapid state-read probes at station
// addresses the master never talks to. The real device stays silent, so
// only command packages appear.
func (s *Simulator) RunReconEpisode(probes int) {
	st := s.ctrl.State()
	for i := 0; i < probes; i++ {
		addr := uint8(1 + s.rng.Intn(10))
		if addr == s.cfg.SlaveAddress {
			addr = s.cfg.SlaveAddress + 1
		}
		fn := modbus.FuncReadHoldingRegisters
		if s.rng.Bernoulli(0.3) {
			fn = modbus.FuncReadCoils
		}
		pdu := modbus.ReadRequest(fn, 0, uint16(1+s.rng.Intn(8)))
		s.emit(&modbus.RTUFrame{Address: addr, PDU: pdu},
			ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, dataset.Recon)
		s.advance(s.rng.Range(0.02, 0.06))
	}
	// Let the line settle to the next cycle boundary.
	s.advance(s.cfg.CycleTime)
}
