package gaspipeline

import (
	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/scenario"
)

// GenConfig controls dataset generation.
type GenConfig struct {
	Sim SimConfig
	// TotalPackages is the approximate dataset size (generation stops at
	// the first cycle boundary past this count).
	TotalPackages int
	// AttackRatio is the target fraction of attack-labeled packages. The
	// original dataset has 60,048 / 274,628 ≈ 0.219.
	AttackRatio float64
	// AttackTypes restricts which attacks are injected (default: all 7).
	AttackTypes []dataset.AttackType
	// WarmupCycles runs the plant before recording so the PID loop has
	// settled when the capture starts.
	WarmupCycles int
}

// DefaultGenConfig returns a generation config mirroring the original
// dataset's proportions at the given size.
func DefaultGenConfig(totalPackages int, seed uint64) GenConfig {
	sim := DefaultSimConfig()
	sim.Seed = seed
	return GenConfig{
		Sim:           sim,
		TotalPackages: totalPackages,
		AttackRatio:   0.219,
		AttackTypes:   defaultAttackSchedule(),
		WarmupCycles:  200,
	}
}

// Generate runs the simulation through the shared generation loop
// (scenario.RunGeneration) and returns the labeled dataset: attack episodes
// interleaved with normal operation throughout the capture, episode types
// drawn round-robin from the schedule so every attack class is represented
// at every scale.
func Generate(cfg GenConfig) (*dataset.Dataset, error) {
	sim, err := NewSimulator(cfg.Sim)
	if err != nil {
		return nil, err
	}
	sched := mathx.NewRNG(cfg.Sim.Seed ^ 0xA77AC4)
	schedule := cfg.AttackTypes
	if len(schedule) == 0 {
		schedule = defaultAttackSchedule()
	}
	return scenario.RunGeneration(sim, sched, scenario.GenConfig{
		TotalPackages: cfg.TotalPackages,
		AttackRatio:   cfg.AttackRatio,
		Seed:          cfg.Sim.Seed,
	}, cfg.WarmupCycles, schedule, scenario.DefaultEpisodeLengths())
}

// defaultAttackSchedule interleaves episode types so the resulting
// per-package attack mix matches the original dataset's emphasis: response
// injections (NMRI/CMRI) dominate, command injections and reconnaissance
// follow, MFCI and DoS are comparatively rare (paper §VII, [23]). Episode
// counts are weighted by the inverse of each type's labeled-package yield
// (a DoS episode labels ~3x more packages than an NMRI episode).
func defaultAttackSchedule() []dataset.AttackType {
	return scenario.WeightedSchedule([]scenario.ScheduleWeight{
		{Attack: dataset.CMRI, Weight: 11},
		{Attack: dataset.NMRI, Weight: 8},
		{Attack: dataset.Recon, Weight: 6},
		{Attack: dataset.MPCI, Weight: 5},
		{Attack: dataset.MSCI, Weight: 3},
		{Attack: dataset.MFCI, Weight: 2},
		{Attack: dataset.DOS, Weight: 1},
	})
}

// GenerateNormal produces an attack-free capture (the paper's "air-gapped"
// observation mode used to build the signature database).
func GenerateNormal(totalPackages int, seed uint64) (*dataset.Dataset, error) {
	cfg := DefaultGenConfig(totalPackages, seed)
	cfg.AttackRatio = 0
	return Generate(cfg)
}
