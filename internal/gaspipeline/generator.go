package gaspipeline

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
)

// GenConfig controls dataset generation.
type GenConfig struct {
	Sim SimConfig
	// TotalPackages is the approximate dataset size (generation stops at
	// the first cycle boundary past this count).
	TotalPackages int
	// AttackRatio is the target fraction of attack-labeled packages. The
	// original dataset has 60,048 / 274,628 ≈ 0.219.
	AttackRatio float64
	// AttackTypes restricts which attacks are injected (default: all 7).
	AttackTypes []dataset.AttackType
	// WarmupCycles runs the plant before recording so the PID loop has
	// settled when the capture starts.
	WarmupCycles int
}

// DefaultGenConfig returns a generation config mirroring the original
// dataset's proportions at the given size.
func DefaultGenConfig(totalPackages int, seed uint64) GenConfig {
	sim := DefaultSimConfig()
	sim.Seed = seed
	return GenConfig{
		Sim:           sim,
		TotalPackages: totalPackages,
		AttackRatio:   0.219,
		AttackTypes:   defaultAttackSchedule(),
		WarmupCycles:  200,
	}
}

// Generate runs the simulation and returns the labeled dataset. Attack
// episodes are interleaved with normal operation throughout the capture
// (the AutoIt script "randomly chooses to send legal commands or launch
// cyber attacks", §VII), with episode types drawn round-robin so every
// attack class is represented at every scale.
func Generate(cfg GenConfig) (*dataset.Dataset, error) {
	if cfg.TotalPackages <= 0 {
		return nil, fmt.Errorf("gaspipeline: TotalPackages must be positive, got %d", cfg.TotalPackages)
	}
	if cfg.AttackRatio < 0 || cfg.AttackRatio >= 1 {
		return nil, fmt.Errorf("gaspipeline: AttackRatio must be in [0,1), got %g", cfg.AttackRatio)
	}
	if len(cfg.AttackTypes) == 0 {
		cfg.AttackTypes = defaultAttackSchedule()
	}
	sim, err := NewSimulator(cfg.Sim)
	if err != nil {
		return nil, err
	}
	sched := mathx.NewRNG(cfg.Sim.Seed ^ 0xA77AC4)

	// Warm up without recording.
	for i := 0; i < cfg.WarmupCycles; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	sim.packages = sim.packages[:0]

	attackIdx := 0
	attackCount := 0
	for len(sim.packages) < cfg.TotalPackages {
		total := len(sim.packages)
		wantAttack := cfg.AttackRatio > 0 &&
			float64(attackCount) < cfg.AttackRatio*float64(total+40) &&
			sched.Bernoulli(0.8)
		if !wantAttack {
			n := 3 + sched.Intn(8)
			for i := 0; i < n; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
			continue
		}
		before := len(sim.packages)
		at := cfg.AttackTypes[attackIdx%len(cfg.AttackTypes)]
		attackIdx++
		switch at {
		case dataset.NMRI:
			sim.RunNMRIEpisode(2 + sched.Intn(5))
		case dataset.CMRI:
			sim.RunCMRIEpisode(3 + sched.Intn(8))
		case dataset.MSCI:
			sim.RunMSCIEpisode(2 + sched.Intn(3))
		case dataset.MPCI:
			sim.RunMPCIEpisode(2 + sched.Intn(4))
		case dataset.MFCI:
			sim.RunMFCIEpisode(2 + sched.Intn(4))
		case dataset.DOS:
			sim.RunDoSEpisode(3 + sched.Intn(6))
		case dataset.Recon:
			sim.RunReconEpisode(6 + sched.Intn(12))
		default:
			return nil, fmt.Errorf("gaspipeline: unsupported attack type %v", at)
		}
		for _, p := range sim.packages[before:] {
			if p.IsAttack() {
				attackCount++
			}
		}
		// Normal cool-down between episodes.
		n := 1 + sched.Intn(4)
		for i := 0; i < n; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
	}
	return &dataset.Dataset{Packages: sim.packages}, nil
}

// defaultAttackSchedule interleaves episode types so the resulting
// per-package attack mix matches the original dataset's emphasis: response
// injections (NMRI/CMRI) dominate, command injections and reconnaissance
// follow, MFCI and DoS are comparatively rare (paper §VII, [23]). Episode
// counts are weighted by the inverse of each type's labeled-package yield
// (a DoS episode labels ~3x more packages than an NMRI episode).
func defaultAttackSchedule() []dataset.AttackType {
	weights := []struct {
		at dataset.AttackType
		n  int
	}{
		{dataset.CMRI, 11},
		{dataset.NMRI, 8},
		{dataset.Recon, 6},
		{dataset.MPCI, 5},
		{dataset.MSCI, 3},
		{dataset.MFCI, 2},
		{dataset.DOS, 1},
	}
	total := 0
	for _, w := range weights {
		total += w.n
	}
	// Largest-remainder interleaving keeps the types spread through the
	// schedule instead of clumped.
	out := make([]dataset.AttackType, 0, total)
	acc := make([]int, len(weights))
	for len(out) < total {
		best := -1
		for i, w := range weights {
			acc[i] += w.n
			if best < 0 || acc[i] > acc[best] {
				best = i
			}
		}
		acc[best] -= total
		out = append(out, weights[best].at)
	}
	return out
}

// GenerateNormal produces an attack-free capture (the paper's "air-gapped"
// observation mode used to build the signature database).
func GenerateNormal(totalPackages int, seed uint64) (*dataset.Dataset, error) {
	cfg := DefaultGenConfig(totalPackages, seed)
	cfg.AttackRatio = 0
	return Generate(cfg)
}
