package gaspipeline

import (
	"fmt"
	"math"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/modbus"
	"icsdetect/internal/scenario"
)

// SimConfig controls the SCADA traffic simulation.
type SimConfig struct {
	Plant PlantConfig
	// SlaveAddress is the Modbus station address of the field device.
	SlaveAddress uint8
	// CycleTime is the master's base poll period in seconds.
	CycleTime float64
	// CycleJitter is the fractional jitter on the poll period.
	CycleJitter float64
	// IntraDelayMin/Max bound the gap between packages inside one poll
	// cycle (request-to-response turnaround), in seconds.
	IntraDelayMin, IntraDelayMax float64
	// CRCGlitchProb is the per-frame probability of benign link corruption.
	CRCGlitchProb float64
	// Operator configures the legitimate operator behaviour.
	Operator OperatorConfig
	// Seed drives all randomness.
	Seed uint64
}

// OperatorConfig models the legitimate operator: which setpoints and PID
// presets are legal and how often modes change. The spread of these values
// defines the "normal profile" the signature database learns.
type OperatorConfig struct {
	// Setpoints is the set of legal pressure setpoints (PSI).
	Setpoints []float64
	// SetpointChangeProb is the per-cycle probability of moving to another
	// legal setpoint.
	SetpointChangeProb float64
	// PIDPresets are the legal PID tunings.
	PIDPresets []PIDPreset
	// PIDTrimProb is the per-cycle probability of a small (±TrimFrac)
	// adjustment around the active preset, producing the natural clusters
	// the paper's K-means discretization exploits.
	PIDTrimProb float64
	// PIDTrimFrac is the relative trim magnitude.
	PIDTrimFrac float64
	// ManualEpisodeProb is the per-cycle probability of a manual-mode
	// operating episode; ManualLen bounds its length in cycles.
	ManualEpisodeProb float64
	ManualLen         [2]int
	// OffEpisodeProb and OffLen control maintenance (mode off) episodes.
	OffEpisodeProb float64
	OffLen         [2]int
	// SolenoidEpisodeProb and SolenoidLen control solenoid-scheme episodes.
	SolenoidEpisodeProb float64
	SolenoidLen         [2]int
}

// PIDPreset is one legal PID tuning.
type PIDPreset struct {
	Gain, ResetRate, Deadband, CycleTime, Rate float64
}

// DefaultSimConfig returns the configuration used by the experiments: a
// single slave at station 4 polled roughly four times a second.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Plant:         DefaultPlantConfig(),
		SlaveAddress:  4,
		CycleTime:     0.25,
		CycleJitter:   0.12,
		IntraDelayMin: 0.004,
		IntraDelayMax: 0.018,
		CRCGlitchProb: 0.002,
		Operator: OperatorConfig{
			Setpoints:           []float64{6, 7, 8, 9, 10},
			SetpointChangeProb:  0.025,
			PIDPresets:          defaultPIDPresets(),
			PIDTrimProb:         0.04,
			PIDTrimFrac:         0.05,
			ManualEpisodeProb:   0.006,
			ManualLen:           [2]int{6, 18},
			OffEpisodeProb:      0.002,
			OffLen:              [2]int{3, 8},
			SolenoidEpisodeProb: 0.004,
			SolenoidLen:         [2]int{15, 40},
		},
		Seed: 1,
	}
}

func defaultPIDPresets() []PIDPreset {
	return []PIDPreset{
		{Gain: 0.30, ResetRate: 0.10, Deadband: 0.10, CycleTime: 0.25, Rate: 0.00},
		{Gain: 0.45, ResetRate: 0.15, Deadband: 0.05, CycleTime: 0.25, Rate: 0.02},
		{Gain: 0.60, ResetRate: 0.08, Deadband: 0.10, CycleTime: 0.25, Rate: 0.05},
	}
}

// Simulator produces the package time series. It owns the plant, the field
// device controller, and the master/operator state machines.
type Simulator struct {
	cfg   SimConfig
	plant *Plant
	ctrl  *Controller
	rng   *mathx.RNG

	now float64 // simulation clock, seconds
	// CRC failure tracking: the monitor reports the failure rate over a
	// rolling window of recent frames, the way the testbed's crc_rate
	// column behaves (mostly zero, sticky bursts after corruption). The
	// same monitor type runs inside the trace replayer, so recorded traces
	// reproduce these rates exactly.
	crcMon modbus.CRCRateMonitor

	// frameSink, when set, observes every emitted wire frame (see
	// SetFrameSink).
	frameSink func(Frame)

	// desired is the operator's intended controller block; it is re-sent
	// every cycle and restored after attacks.
	desired      ControllerState
	activePreset int
	manualLeft   int
	offLeft      int
	solenoidLeft int

	packages []*dataset.Package
}

// NewSimulator constructs a simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	if cfg.CycleTime <= 0 {
		return nil, fmt.Errorf("gaspipeline: cycle time must be positive, got %g", cfg.CycleTime)
	}
	if len(cfg.Operator.Setpoints) == 0 {
		return nil, fmt.Errorf("gaspipeline: operator needs at least one legal setpoint")
	}
	if len(cfg.Operator.PIDPresets) == 0 {
		return nil, fmt.Errorf("gaspipeline: operator needs at least one PID preset")
	}
	rng := mathx.NewRNG(cfg.Seed)
	plant, err := NewPlant(cfg.Plant, rng.Split())
	if err != nil {
		return nil, err
	}
	preset := cfg.Operator.PIDPresets[0]
	initial := ControllerState{
		Setpoint:  cfg.Operator.Setpoints[0],
		Gain:      preset.Gain,
		ResetRate: preset.ResetRate,
		Deadband:  preset.Deadband,
		CycleTime: preset.CycleTime,
		Rate:      preset.Rate,
		Mode:      ModeAuto,
		Scheme:    SchemePump,
	}
	ctrl, err := NewController(initial, cfg.Plant.MaxPressure)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:     cfg,
		plant:   plant,
		ctrl:    ctrl,
		rng:     rng,
		desired: initial,
	}, nil
}

// Packages returns the packages emitted so far (not a copy; the generator
// owns the simulator).
func (s *Simulator) Packages() []*dataset.Package { return s.packages }

// Now returns the simulation clock.
func (s *Simulator) Now() float64 { return s.now }

// advance moves the clock and integrates the plant.
func (s *Simulator) advance(dt float64) {
	if dt <= 0 {
		return
	}
	s.plant.Step(dt)
	s.now += dt
}

func (s *Simulator) intraDelay() float64 {
	return s.rng.Range(s.cfg.IntraDelayMin, s.cfg.IntraDelayMax)
}

// crcWindow is the rolling frame window of the shared CRC failure monitor;
// the DoS decay tail is sized off it.
const crcWindow = modbus.CRCRateWindow

// Frame is one observed wire frame; see scenario.Frame for the field
// contract.
type Frame = scenario.Frame

// SetFrameSink installs fn to observe every emitted wire frame, in emission
// order, alongside the package record. Pass nil to detach. The sink is
// called synchronously from the simulation loop; the Raw slice must not be
// retained or mutated across calls.
//
// Attaching a sink resets the CRC failure window: a recording observes the
// link from its own start, so the rates the simulator logs from here on are
// exactly the rates a trace decoder recomputes from the recorded bytes —
// a warm pre-recording window would otherwise leak into the first 16
// logged rates but be invisible in the capture.
func (s *Simulator) SetFrameSink(fn func(Frame)) {
	if fn != nil {
		s.crcMon.Reset()
	}
	s.frameSink = fn
}

// emit appends a package built from an actual Modbus RTU frame so that the
// length and CRC features are authentic.
func (s *Simulator) emit(frame *modbus.RTUFrame, st ControllerState,
	pump, solenoid int, pressure float64, isCmd bool, label dataset.AttackType) {
	raw, err := modbus.EncodeRTU(frame)
	if err != nil {
		// Frames are built internally and never exceed limits; an error here
		// is a programming bug worth failing loudly on during development.
		panic(fmt.Sprintf("gaspipeline: encode frame: %v", err))
	}
	corrupt := frame.CorruptCRC || s.rng.Bernoulli(s.cfg.CRCGlitchProb)
	rate := s.crcMon.Observe(corrupt)
	if s.frameSink != nil {
		s.frameSink(Frame{
			Raw: raw, IsCmd: isCmd, Corrupt: corrupt, Label: label, Time: s.now,
		})
	}
	cmd := 0.0
	if isCmd {
		cmd = 1
	}
	s.packages = append(s.packages, &dataset.Package{
		Address:       float64(frame.Address),
		CRCRate:       rate,
		Function:      float64(frame.PDU.Function),
		Length:        float64(len(raw)),
		Setpoint:      st.Setpoint,
		Gain:          st.Gain,
		ResetRate:     st.ResetRate,
		Deadband:      st.Deadband,
		CycleTime:     st.CycleTime,
		Rate:          st.Rate,
		SystemMode:    float64(st.Mode),
		ControlScheme: float64(st.Scheme),
		Pump:          float64(pump),
		Solenoid:      float64(solenoid),
		Pressure:      math.Round(pressure*100) / 100,
		CmdResponse:   cmd,
		Time:          s.now,
		Label:         label,
	})
}

// stateRegisters encodes a controller block (plus optional pressure) as
// Modbus register values, the payload layout the testbed uses.
func stateRegisters(st ControllerState, pump, solenoid int, pressure float64, withPressure bool) []uint16 {
	regs := []uint16{
		uint16(mathx.Clamp(st.Setpoint*100, 0, 65535)),
		uint16(mathx.Clamp(st.Gain*100, 0, 65535)),
		uint16(mathx.Clamp(st.ResetRate*100, 0, 65535)),
		uint16(mathx.Clamp(st.Deadband*100, 0, 65535)),
		uint16(mathx.Clamp(st.CycleTime*1000, 0, 65535)),
		uint16(mathx.Clamp(st.Rate*100, 0, 65535)),
		uint16(st.Mode),
		uint16(st.Scheme),
		uint16(pump),
		uint16(solenoid),
	}
	if withPressure {
		regs = append(regs, uint16(mathx.Clamp(pressure*100, 0, 65535)))
	}
	return regs
}

// cycleLabels assigns a ground-truth label to each package of a poll cycle,
// so attacks can mark exactly the packages the attacker caused (the original
// dataset labels injected/falsified packets, not whole periods).
type cycleLabels struct {
	Cmd, Ack, Read, Resp dataset.AttackType
}

// uniformLabels labels every package of a cycle identically.
func uniformLabels(at dataset.AttackType) cycleLabels {
	return cycleLabels{Cmd: at, Ack: at, Read: at, Resp: at}
}

// RunNormalCycle performs one legitimate poll cycle: operator update, write
// command + ack, state read + response, then the inter-cycle gap. The label
// is Normal for legitimate traffic; the DoS decay tail reuses this with an
// attack label.
func (s *Simulator) RunNormalCycle(label dataset.AttackType) {
	s.operatorStep()
	s.runCycleWithState(s.desired, uniformLabels(label))
}

// runCycleWithState performs a poll cycle writing the given controller
// block.
func (s *Simulator) runCycleWithState(write ControllerState, label cycleLabels) {
	start := s.now

	// 1. Write command carrying the desired controller block.
	cmdPDU := modbus.WriteMultipleRequest(0, stateRegisters(write, write.Pump, write.Solenoid, 0, false))
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: cmdPDU},
		write, write.Pump, write.Solenoid, 0, true, label.Cmd)
	if err := s.ctrl.Apply(write); err != nil {
		// Invalid operator blocks are rejected by the device; keep previous.
		_ = err
	}

	// 2. Write acknowledgement.
	s.advance(s.intraDelay())
	ackPDU := modbus.WriteMultipleResponse(0, 10)
	st := s.ctrl.State()
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: ackPDU},
		st, 0, 0, 0, false, label.Ack)

	// 3. State read command.
	s.advance(s.intraDelay())
	readPDU := modbus.ReadRequest(modbus.FuncReadState, 0, 11)
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: readPDU},
		ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, label.Read)

	// 4. Control action + state read response with the pressure measurement.
	s.advance(s.intraDelay())
	measured := s.plant.Measure()
	s.ctrl.Actuate(s.plant, measured)
	pump, sol := s.ctrl.ActuatorView(s.plant)
	respPDU := modbus.ReadRegistersResponse(modbus.FuncReadState,
		stateRegisters(st, pump, sol, measured, true))
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: respPDU},
		st, pump, sol, measured, false, label.Resp)

	// Inter-cycle gap.
	period := s.cfg.CycleTime * (1 + s.cfg.CycleJitter*(2*s.rng.Float64()-1))
	if rest := period - (s.now - start); rest > 0 {
		s.advance(rest)
	}
}

// operatorStep evolves the legitimate operator state machine by one cycle.
func (s *Simulator) operatorStep() {
	op := &s.cfg.Operator

	// Finish or continue episodes first.
	switch {
	case s.offLeft > 0:
		s.offLeft--
		if s.offLeft == 0 {
			s.desired.Mode = ModeAuto
		}
		return
	case s.manualLeft > 0:
		s.manualLeft--
		// Thermostat-style manual operation around the setpoint.
		p := s.plant.Pressure()
		if p < s.desired.Setpoint-0.8 {
			s.desired.Pump, s.desired.Solenoid = 1, 0
		} else if p > s.desired.Setpoint+0.8 {
			s.desired.Pump, s.desired.Solenoid = 0, 1
		} else {
			s.desired.Pump, s.desired.Solenoid = 0, 0
		}
		if s.manualLeft == 0 {
			s.desired.Mode = ModeAuto
			s.desired.Pump, s.desired.Solenoid = 0, 0
		}
		return
	}
	if s.solenoidLeft > 0 {
		s.solenoidLeft--
		if s.solenoidLeft == 0 {
			s.desired.Scheme = SchemePump
		}
	}

	// Episode starts.
	switch {
	case s.rng.Bernoulli(op.OffEpisodeProb):
		s.offLeft = s.randLen(op.OffLen)
		s.desired.Mode = ModeOff
		return
	case s.rng.Bernoulli(op.ManualEpisodeProb):
		s.manualLeft = s.randLen(op.ManualLen)
		s.desired.Mode = ModeManual
		return
	case s.solenoidLeft == 0 && s.rng.Bernoulli(op.SolenoidEpisodeProb):
		s.solenoidLeft = s.randLen(op.SolenoidLen)
		s.desired.Scheme = SchemeSolenoid
	}

	// Routine parameter adjustments.
	if s.rng.Bernoulli(op.SetpointChangeProb) {
		s.desired.Setpoint = op.Setpoints[s.rng.Intn(len(op.Setpoints))]
	}
	if s.rng.Bernoulli(op.PIDTrimProb) {
		s.activePreset = s.rng.Intn(len(op.PIDPresets))
		preset := op.PIDPresets[s.activePreset]
		// Operators tune in discrete steps on the HMI, so the legal PID
		// vectors form a finite set of natural clusters (the property the
		// paper's K-means discretization exploits, Table III).
		steps := []float64{1 - op.PIDTrimFrac, 1, 1 + op.PIDTrimFrac}
		factor := steps[s.rng.Intn(len(steps))]
		s.desired.Gain = preset.Gain * factor
		s.desired.ResetRate = preset.ResetRate
		s.desired.Deadband = preset.Deadband
		s.desired.CycleTime = preset.CycleTime
		s.desired.Rate = preset.Rate
	}
}

func (s *Simulator) randLen(bounds [2]int) int {
	if bounds[1] <= bounds[0] {
		return bounds[0]
	}
	return bounds[0] + s.rng.Intn(bounds[1]-bounds[0]+1)
}
