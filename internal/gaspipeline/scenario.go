package gaspipeline

import (
	"icsdetect/internal/dataset"
	"icsdetect/internal/scenario"
	"icsdetect/internal/signature"
	"icsdetect/internal/tap"
)

// Registers returns the gas pipeline field device's register layout: the
// full controller block in registers 0-9 with the pressure measurement at
// 10, the layout the simulator's write commands and state-read responses
// carry (see stateRegisters).
func Registers() tap.RegisterMap {
	return tap.RegisterMap{
		Setpoint: 0, Gain: 1, ResetRate: 2, Deadband: 3, CycleTime: 4,
		Rate: 5, Mode: 6, Scheme: 7, Pump: 8, Solenoid: 9, Pressure: 10,
		MinRegisters: 10,
	}
}

// testbed implements scenario.Scenario for the gas pipeline.
type testbed struct{}

// Scenario returns the gas pipeline testbed, the paper's primary scenario.
func Scenario() scenario.Scenario { return testbed{} }

func init() { scenario.Register(Scenario()) }

func (testbed) Name() string               { return "gaspipeline" }
func (testbed) Registers() tap.RegisterMap { return Registers() }

func (testbed) NewSim(seed uint64) (scenario.Sim, error) {
	cfg := DefaultSimConfig()
	cfg.Seed = seed
	return NewSimulator(cfg)
}

func (testbed) Generate(cfg scenario.GenConfig) (*dataset.Dataset, error) {
	g := DefaultGenConfig(cfg.TotalPackages, cfg.Seed)
	g.AttackRatio = cfg.AttackRatio
	if len(cfg.AttackTypes) > 0 {
		g.AttackTypes = cfg.AttackTypes
	}
	return Generate(g)
}

// Granularity scales the discretization with the capture size, the
// practical counterpart of the paper's §IV-B search when retraining
// frequently: the full Table III strategy needs the original dataset's
// volume to populate its bins, smaller captures get coarser grids.
func (testbed) Granularity(n int) signature.Granularity {
	switch {
	case n >= 150000:
		return signature.PaperGranularity()
	case n >= 50000:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 8, SetpointBins: 5, PIDClusters: 4}
	default:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 5, SetpointBins: 3, PIDClusters: 2}
	}
}
