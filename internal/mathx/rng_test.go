package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(2)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Errorf("bucket %d count %d deviates more than 10%% from uniform", i, c)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(4)
	const n = 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(std-1) > 0.02 {
		t.Errorf("normal std = %v, want ~1", std)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if ratio := float64(hits) / n; math.Abs(ratio-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) hit rate %v", ratio)
	}
}

func TestRNGExp(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(8)
	child := r.Split()
	// The child stream must not replicate the parent's subsequent output.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collided %d times with parent", same)
	}
}
