// f32 kernels for the batched GEMM (Matrix32.MulRowsT) and the packed
// single-vector GEMV (PackedGEMV32.Apply), at full native f32 lane width:
// eight streams/rows per ymm on AVX2, sixteen per zmm on AVX-512. Each
// lane reproduces exactly the scalar Dot32 association — groups of four
// summed left-to-right into the accumulator, then a sequential tail — so
// the vectorized result is bitwise identical to the scalar f32 path.
// VMULPS/VADDPS are elementwise IEEE single multiply/add: no FMA
// contraction, no cross-lane reduction.
//
// The GEMM kernels move lanes between vector registers and the strided
// dst layout (dst[lane*dstStride + j]) through a small stack staging
// buffer: a vector store plus a scalar dword loop. That costs a handful
// of scalar moves per output row but keeps the kernels to plain AVX1
// float ops.

#include "textflag.h"

// func gemm8f32avx(w *float32, stride, rows int, xt *float32, kn int, dst *float32, dstStride int, cont bool)
//
// For each of rows weight rows: acc(8 lanes) = dst lanes if cont else 0;
// then for kn packed columns of xt (layout xt[8*k+lane]) accumulate
// acc += w[k]*xt[k] in Dot32's group-of-four association; store acc back
// to the eight lanes dst[lane*dstStride + j].
TEXT ·gemm8f32avx(SB), NOSPLIT, $32-57
	MOVQ    w+0(FP), SI        // w row pointer (advances per row)
	MOVQ    stride+8(FP), AX
	SHLQ    $2, AX             // w row stride in bytes
	MOVQ    rows+16(FP), R8
	MOVQ    xt+24(FP), DX
	MOVQ    kn+32(FP), R9
	MOVQ    dst+40(FP), DI
	MOVQ    dstStride+48(FP), R10
	SHLQ    $2, R10            // lane stride in bytes
	MOVBLZX cont+56(FP), R11
	XORQ    R13, R13           // j: row index

rowloop8f:
	CMPQ R13, R8
	JGE  done8f
	LEAQ (DI)(R13*4), R15      // &dst[j], lane 0

	TESTQ R11, R11
	JZ    zeroacc8f
	// Gather the eight strided lanes through the staging buffer.
	MOVQ R15, BX
	LEAQ buf-32(SP), CX
	MOVQ $8, R12
ld8f:
	MOVL (BX), R14
	MOVL R14, (CX)
	ADDQ R10, BX
	ADDQ $4, CX
	DECQ R12
	JNZ  ld8f
	VMOVUPS buf-32(SP), Y0
	JMP  accready8f
zeroacc8f:
	VXORPS Y0, Y0, Y0
accready8f:

	MOVQ SI, BX                // w walker
	MOVQ DX, CX                // xt walker
	MOVQ R9, R12               // remaining columns

groups8f:
	CMPQ R12, $4
	JLT  tail8f
	// t = ((w0*x0 + w1*x1) + w2*x2) + w3*x3, one lane per stream.
	VBROADCASTSS (BX), Y1
	VMULPS       (CX), Y1, Y2
	VBROADCASTSS 4(BX), Y1
	VMULPS       32(CX), Y1, Y3
	VADDPS       Y3, Y2, Y2
	VBROADCASTSS 8(BX), Y1
	VMULPS       64(CX), Y1, Y3
	VADDPS       Y3, Y2, Y2
	VBROADCASTSS 12(BX), Y1
	VMULPS       96(CX), Y1, Y3
	VADDPS       Y3, Y2, Y2
	// acc += t
	VADDPS Y2, Y0, Y0
	ADDQ   $16, BX
	ADDQ   $128, CX
	SUBQ   $4, R12
	JMP    groups8f

tail8f:
	TESTQ R12, R12
	JZ    store8f
	VBROADCASTSS (BX), Y1
	VMULPS       (CX), Y1, Y2
	VADDPS       Y2, Y0, Y0
	ADDQ  $4, BX
	ADDQ  $32, CX
	DECQ  R12
	JMP   tail8f

store8f:
	// Scatter the eight lanes back through the staging buffer.
	VMOVUPS Y0, buf-32(SP)
	MOVQ R15, BX
	LEAQ buf-32(SP), CX
	MOVQ $8, R12
st8f:
	MOVL (CX), R14
	MOVL R14, (BX)
	ADDQ R10, BX
	ADDQ $4, CX
	DECQ R12
	JNZ  st8f

	ADDQ AX, SI
	INCQ R13
	JMP  rowloop8f

done8f:
	VZEROUPPER
	RET

// func gemm16f32avx512(w *float32, stride, rows int, xt *float32, kn int, dst *float32, dstStride int, cont bool)
//
// The 512-bit twin of gemm8f32avx: sixteen streams per zmm lane, packed
// layout xt[16*k+lane], same association and staging-buffer lane I/O.
TEXT ·gemm16f32avx512(SB), NOSPLIT, $64-57
	MOVQ    w+0(FP), SI        // w row pointer (advances per row)
	MOVQ    stride+8(FP), AX
	SHLQ    $2, AX             // w row stride in bytes
	MOVQ    rows+16(FP), R8
	MOVQ    xt+24(FP), DX
	MOVQ    kn+32(FP), R9
	MOVQ    dst+40(FP), DI
	MOVQ    dstStride+48(FP), R10
	SHLQ    $2, R10            // lane stride in bytes
	MOVBLZX cont+56(FP), R11
	XORQ    R13, R13           // j: row index

rowloop16f:
	CMPQ R13, R8
	JGE  done16f
	LEAQ (DI)(R13*4), R15      // &dst[j], lane 0

	TESTQ R11, R11
	JZ    zeroacc16f
	// Gather the sixteen strided lanes through the staging buffer.
	MOVQ R15, BX
	LEAQ buf-64(SP), CX
	MOVQ $16, R12
ld16f:
	MOVL (BX), R14
	MOVL R14, (CX)
	ADDQ R10, BX
	ADDQ $4, CX
	DECQ R12
	JNZ  ld16f
	VMOVUPS buf-64(SP), Z0
	JMP  accready16f
zeroacc16f:
	VPXORQ Z0, Z0, Z0
accready16f:

	MOVQ SI, BX                // w walker
	MOVQ DX, CX                // xt walker
	MOVQ R9, R12               // remaining columns

groups16f:
	CMPQ R12, $4
	JLT  tail16f
	// t = ((w0*x0 + w1*x1) + w2*x2) + w3*x3, one lane per stream.
	VBROADCASTSS (BX), Z1
	VMULPS       (CX), Z1, Z2
	VBROADCASTSS 4(BX), Z1
	VMULPS       64(CX), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VBROADCASTSS 8(BX), Z1
	VMULPS       128(CX), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VBROADCASTSS 12(BX), Z1
	VMULPS       192(CX), Z1, Z3
	VADDPS       Z3, Z2, Z2
	// acc += t
	VADDPS Z2, Z0, Z0
	ADDQ   $16, BX
	ADDQ   $256, CX
	SUBQ   $4, R12
	JMP    groups16f

tail16f:
	TESTQ R12, R12
	JZ    store16f
	VBROADCASTSS (BX), Z1
	VMULPS       (CX), Z1, Z2
	VADDPS       Z2, Z0, Z0
	ADDQ  $4, BX
	ADDQ  $64, CX
	DECQ  R12
	JMP   tail16f

store16f:
	// Scatter the sixteen lanes back through the staging buffer.
	VMOVUPS Z0, buf-64(SP)
	MOVQ R15, BX
	LEAQ buf-64(SP), CX
	MOVQ $16, R12
st16f:
	MOVL (CX), R14
	MOVL R14, (BX)
	ADDQ R10, BX
	ADDQ $4, CX
	DECQ R12
	JNZ  st16f

	ADDQ AX, SI
	INCQ R13
	JMP  rowloop16f

done16f:
	VZEROUPPER
	RET

// func gemm8x2f32avx512(wp *float32, stride, pairs int, xt *float32, kn int, dst *float32, dstStride int, cont bool)
//
// Row-pair AVX-512 kernel for eight streams: wp is the PackGEMM32 layout
// (adjacent weight-row pairs interleaved per column), xt holds each stream
// value duplicated into a lane pair (xt[16k+2s] = xt[16k+2s+1] = xs[s][k]),
// and one zmm accumulates two output rows for all eight streams — lane 2s
// is (stream s, row j), lane 2s+1 is (stream s, row j+1). VBROADCASTSD
// replicates the 64-bit weight pair across the eight lane-pairs; it moves
// bits only, so the arithmetic per lane is still VMULPS/VADDPS in Dot32's
// group-of-four association. dst rows j and j+1 are adjacent per stream,
// so lane I/O stages 64-bit pairs instead of the other kernels' 32-bit
// lanes. stride is the pair-row stride in floats (2·cols of the unchunked
// matrix); cont carries the accumulator through dst across column chunks.
TEXT ·gemm8x2f32avx512(SB), NOSPLIT, $64-57
	MOVQ    wp+0(FP), SI       // pair-row pointer (advances per pair)
	MOVQ    stride+8(FP), AX
	SHLQ    $2, AX             // pair-row stride in bytes
	MOVQ    pairs+16(FP), R8
	MOVQ    xt+24(FP), DX
	MOVQ    kn+32(FP), R9
	MOVQ    dst+40(FP), DI     // &dst[j], advances 8 bytes per pair
	MOVQ    dstStride+48(FP), R10
	SHLQ    $2, R10            // stream stride in bytes
	MOVBLZX cont+56(FP), R11

rowloop8x2f:
	TESTQ R8, R8
	JZ    done8x2f

	TESTQ R11, R11
	JZ    zeroacc8x2f
	// Gather the eight strided 64-bit row pairs through the staging buffer.
	MOVQ DI, BX
	LEAQ buf-64(SP), CX
	MOVQ $8, R12
ld8x2f:
	MOVQ (BX), R14
	MOVQ R14, (CX)
	ADDQ R10, BX
	ADDQ $8, CX
	DECQ R12
	JNZ  ld8x2f
	VMOVUPS buf-64(SP), Z0
	JMP  accready8x2f
zeroacc8x2f:
	VPXORQ Z0, Z0, Z0
accready8x2f:

	MOVQ SI, BX                // weight-pair walker
	MOVQ DX, CX                // xt walker
	MOVQ R9, R12               // remaining columns

groups8x2f:
	CMPQ R12, $4
	JLT  tail8x2f
	// t = ((w0*x0 + w1*x1) + w2*x2) + w3*x3 per lane, two rows at once.
	VBROADCASTSD (BX), Z1
	VMULPS       (CX), Z1, Z2
	VBROADCASTSD 8(BX), Z1
	VMULPS       64(CX), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VBROADCASTSD 16(BX), Z1
	VMULPS       128(CX), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VBROADCASTSD 24(BX), Z1
	VMULPS       192(CX), Z1, Z3
	VADDPS       Z3, Z2, Z2
	// acc += t
	VADDPS Z2, Z0, Z0
	ADDQ   $32, BX
	ADDQ   $256, CX
	SUBQ   $4, R12
	JMP    groups8x2f

tail8x2f:
	TESTQ R12, R12
	JZ    store8x2f
	VBROADCASTSD (BX), Z1
	VMULPS       (CX), Z1, Z2
	VADDPS       Z2, Z0, Z0
	ADDQ  $8, BX
	ADDQ  $64, CX
	DECQ  R12
	JMP   tail8x2f

store8x2f:
	// Scatter the eight row pairs back through the staging buffer.
	VMOVUPS Z0, buf-64(SP)
	MOVQ DI, BX
	LEAQ buf-64(SP), CX
	MOVQ $8, R12
st8x2f:
	MOVQ (CX), R14
	MOVQ R14, (BX)
	ADDQ R10, BX
	ADDQ $8, CX
	DECQ R12
	JNZ  st8x2f

	ADDQ AX, SI
	ADDQ $8, DI                // next pair of output rows
	DECQ R8
	JMP  rowloop8x2f

done8x2f:
	VZEROUPPER
	RET

// func vcombine8f32(dst, u, b *float32, n int) int
//
// Fused elementwise combine dst = (dst + u) + b over the 8-divisible
// prefix; returns the count handled. Pure AVX1 float adds in the scalar
// loop's exact per-element order.
TEXT ·vcombine8f32(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ u+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	ANDQ $-8, CX
	MOVQ CX, ret+32(FP)

comb8f:
	TESTQ CX, CX
	JZ    done8fc
	VMOVUPS (DI), Y0
	VADDPS  (SI), Y0, Y0
	VADDPS  (DX), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	SUBQ $8, CX
	JMP  comb8f

done8fc:
	VZEROUPPER
	RET

// func vgroupadd8f32(dst, r0, r1, r2, r3 *float32, rows, n int, assign bool) int
//
// One-hot gather group combine over the 8-divisible prefix: the subtotal
// of the first rows row-vectors chained left-to-right per lane, assigned
// to dst or added to it. One loop body per row count so the hot path has
// a single predictable branch per step. Returns the count handled.
TEXT ·vgroupadd8f32(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), R8
	MOVQ r2+24(FP), R9
	MOVQ r3+32(FP), R10
	MOVQ rows+40(FP), AX
	MOVQ n+48(FP), CX
	ANDQ    $-8, CX
	MOVQ    CX, ret+64(FP)
	MOVBLZX assign+56(FP), BX
	CMPQ AX, $1
	JEQ  loop1g
	CMPQ AX, $2
	JEQ  loop2g
	CMPQ AX, $3
	JEQ  loop3g

loop4g:
	TESTQ CX, CX
	JZ    doneg
	VMOVUPS (SI), Y0
	VADDPS  (R8), Y0, Y0
	VADDPS  (R9), Y0, Y0
	VADDPS  (R10), Y0, Y0
	TESTQ BX, BX
	JNZ   store4g
	VADDPS (DI), Y0, Y0
store4g:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	SUBQ $8, CX
	JMP  loop4g

loop3g:
	TESTQ CX, CX
	JZ    doneg
	VMOVUPS (SI), Y0
	VADDPS  (R8), Y0, Y0
	VADDPS  (R9), Y0, Y0
	TESTQ BX, BX
	JNZ   store3g
	VADDPS (DI), Y0, Y0
store3g:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $8, CX
	JMP  loop3g

loop2g:
	TESTQ CX, CX
	JZ    doneg
	VMOVUPS (SI), Y0
	VADDPS  (R8), Y0, Y0
	TESTQ BX, BX
	JNZ   store2g
	VADDPS (DI), Y0, Y0
store2g:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	SUBQ $8, CX
	JMP  loop2g

loop1g:
	TESTQ CX, CX
	JZ    doneg
	VMOVUPS (SI), Y0
	TESTQ BX, BX
	JNZ   store1g
	VADDPS (DI), Y0, Y0
store1g:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  loop1g

doneg:
	VZEROUPPER
	RET

// func gemv8f32avx(p *float32, tiles, cols int, x *float32, dst *float32, bias *float32, mode int)
//
// Packed f32 single-vector product: p holds tiles of eight consecutive
// output rows, column-major within the tile (see mathx.PackGEMV32), so
// each ymm lane is one output row and the stores are contiguous. Per
// tile: acc = 0; for the vector's columns in Dot32's group-of-four
// association accumulate acc += x[k]*p[k]; then the mode epilogue
// (0: dst=acc, 1: dst=dst+acc, 2: dst=(dst+acc)+bias, 3: dst=acc+bias —
// additions in exactly that operand order) and a contiguous store. p
// advances continuously across tiles; x rewinds per tile.
TEXT ·gemv8f32avx(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), SI           // packed walker (continuous)
	MOVQ tiles+8(FP), R8
	MOVQ cols+16(FP), R9
	MOVQ x+24(FP), DX
	MOVQ dst+32(FP), DI        // advances one tile per iteration
	MOVQ bias+40(FP), R14
	MOVQ mode+48(FP), R11

tileloop8fv:
	TESTQ R8, R8
	JZ    done8fv
	VXORPS Y0, Y0, Y0
	MOVQ   DX, CX              // x walker
	MOVQ   R9, R12             // remaining columns

groups8fv:
	CMPQ R12, $4
	JLT  tail8fv
	// t = ((x0*p0 + x1*p1) + x2*p2) + x3*p3 per lane (output row).
	VBROADCASTSS (CX), Y1
	VMULPS       (SI), Y1, Y2
	VBROADCASTSS 4(CX), Y1
	VMULPS       32(SI), Y1, Y3
	VADDPS       Y3, Y2, Y2
	VBROADCASTSS 8(CX), Y1
	VMULPS       64(SI), Y1, Y3
	VADDPS       Y3, Y2, Y2
	VBROADCASTSS 12(CX), Y1
	VMULPS       96(SI), Y1, Y3
	VADDPS       Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	ADDQ   $128, SI
	ADDQ   $16, CX
	SUBQ   $4, R12
	JMP    groups8fv

tail8fv:
	TESTQ R12, R12
	JZ    epi8fv
	VBROADCASTSS (CX), Y1
	VMULPS       (SI), Y1, Y2
	VADDPS       Y2, Y0, Y0
	ADDQ  $32, SI
	ADDQ  $4, CX
	DECQ  R12
	JMP   tail8fv

epi8fv:
	CMPQ R11, $0
	JE   store8fv
	CMPQ R11, $3
	JE   bias8fv
	// modes 1,2: acc = dst + acc (dst is the first operand).
	VMOVUPS (DI), Y1
	VADDPS  Y0, Y1, Y0
	CMPQ R11, $1
	JE   store8fv
bias8fv:
	// modes 2,3: acc = acc + bias (acc is the first operand).
	VMOVUPS (R14), Y1
	VADDPS  Y1, Y0, Y0
store8fv:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, R14
	DECQ R8
	JMP  tileloop8fv

done8fv:
	VZEROUPPER
	RET

// func gemv16f32avx512(p *float32, tiles, cols int, x *float32, dst *float32, bias *float32, mode int)
//
// The 512-bit twin of gemv8f32avx: tiles of sixteen output rows per zmm,
// same association and epilogue contract.
TEXT ·gemv16f32avx512(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), SI
	MOVQ tiles+8(FP), R8
	MOVQ cols+16(FP), R9
	MOVQ x+24(FP), DX
	MOVQ dst+32(FP), DI
	MOVQ bias+40(FP), R14
	MOVQ mode+48(FP), R11

tileloop16fv:
	TESTQ R8, R8
	JZ    done16fv
	VPXORQ Z0, Z0, Z0
	MOVQ   DX, CX
	MOVQ   R9, R12

groups16fv:
	CMPQ R12, $4
	JLT  tail16fv
	VBROADCASTSS (CX), Z1
	VMULPS       (SI), Z1, Z2
	VBROADCASTSS 4(CX), Z1
	VMULPS       64(SI), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VBROADCASTSS 8(CX), Z1
	VMULPS       128(SI), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VBROADCASTSS 12(CX), Z1
	VMULPS       192(SI), Z1, Z3
	VADDPS       Z3, Z2, Z2
	VADDPS Z2, Z0, Z0
	ADDQ   $256, SI
	ADDQ   $16, CX
	SUBQ   $4, R12
	JMP    groups16fv

tail16fv:
	TESTQ R12, R12
	JZ    epi16fv
	VBROADCASTSS (CX), Z1
	VMULPS       (SI), Z1, Z2
	VADDPS       Z2, Z0, Z0
	ADDQ  $64, SI
	ADDQ  $4, CX
	DECQ  R12
	JMP   tail16fv

epi16fv:
	CMPQ R11, $0
	JE   store16fv
	CMPQ R11, $3
	JE   bias16fv
	VMOVUPS (DI), Z1
	VADDPS  Z0, Z1, Z0
	CMPQ R11, $1
	JE   store16fv
bias16fv:
	VMOVUPS (R14), Z1
	VADDPS  Z1, Z0, Z0
store16fv:
	VMOVUPS Z0, (DI)
	ADDQ $64, DI
	ADDQ $64, R14
	DECQ R8
	JMP  tileloop16fv

done16fv:
	VZEROUPPER
	RET
