package mathx

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values. The zero value is an
// empty matrix; use NewMatrix to allocate one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by a in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddInPlace accumulates other into m. It panics on shape mismatch since that
// is always a programming error inside this module.
func (m *Matrix) AddInPlace(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mathx: add shape mismatch (%dx%d vs %dx%d)",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// MulVec computes dst = m * x (GEMV). dst must have length m.Rows and x
// length m.Cols. The inner loop is written to be auto-vectorization friendly.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: gemv shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst[i] = Dot(row, x)
	}
}

// MulVecAdd computes dst += m * x without zeroing dst first.
func (m *Matrix) MulVecAdd(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: gemv shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst[i] += Dot(row, x)
	}
}

// MulVecT computes dst = mᵀ * x, i.e. dst[j] = Σ_i m[i,j]*x[i]. dst must have
// length m.Cols and x length m.Rows. Used for gradient backpropagation.
//
// Every output element is a plain sequential chain — dst[j] starts at zero
// and one rounded term x[i]*m[i,j] is added per row, i ascending, with no
// data-dependent skips. MulRows reproduces exactly this association for a
// batch of x vectors, which is what makes the batched trainer bitwise
// identical to the per-window reference.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mathx: gemv-T shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		Axpy(dst, x[i], row)
	}
}

// MulRowsT computes the matrix-matrix product dst = X·mᵀ where the rows of
// X are the slices xs: dst[i*m.Rows+j] = Σ_k m[j,k]·xs[i][k]. dst is
// row-major with stride m.Rows and must have length len(xs)*m.Rows; every
// row of xs must have length m.Cols.
//
// Every output element is accumulated in exactly Dot's association (groups
// of four summed left-to-right, then a sequential tail), so the result is
// bitwise identical to calling MulVec once per row of X — the batched
// inference path depends on this for exact verdict equivalence. What makes
// it a genuine GEMM rather than repeated GEMV is the register tiling: four
// input rows advance together per weight row, so each weight element is
// loaded once per four dot products and the four accumulator chains hide
// floating-point add latency. That is the kernel-level source of the
// batched engine's speedup; a GEMV retires roughly one multiply-add per
// two loads, while the tiled kernel retires four per five.
// Only the overwriting form exists: an accumulate-into-dst variant would
// need a different summation association (dst + full dot) that the chunked
// SIMD kernel cannot reproduce bitwise, so batched callers that need a sum
// of products (like the LSTM's Wx + Uh) compute separate products and
// combine them elementwise instead (see nn.StepBatchLogits).
func (m *Matrix) MulRowsT(dst []float64, xs [][]float64) {
	R, C := m.Rows, m.Cols
	if len(dst) != len(xs)*R {
		panic(fmt.Sprintf("mathx: gemm shape mismatch (%d rows of %d into %d)",
			len(xs), R, len(dst)))
	}
	n := C &^ 3
	i := 0
	// AVX-512 first: eight streams per zmm lane. The kernel's per-lane
	// association is Dot's, so peeling 8-wide blocks before the 4-wide
	// path below changes nothing but speed.
	for ; i+8 <= len(xs); i += 8 {
		if !mulRows8SIMD(m, dst[i*R:(i+8)*R], xs[i:i+8]) {
			break
		}
	}
	for ; i+4 <= len(xs); i += 4 {
		// Reslice to exactly C elements so the bounds-check eliminator can
		// prove every k+3 access below in bounds.
		x0, x1, x2, x3 := xs[i][:C], xs[i+1][:C], xs[i+2][:C], xs[i+3][:C]
		if mulRows4SIMD(m, dst[i*R:(i+4)*R], x0, x1, x2, x3) {
			continue
		}
		d0 := dst[i*R : (i+1)*R]
		d1 := dst[(i+1)*R : (i+2)*R]
		d2 := dst[(i+2)*R : (i+3)*R]
		d3 := dst[(i+3)*R : (i+4)*R]
		for j := 0; j < R; j++ {
			row := m.Data[j*C : (j+1)*C : (j+1)*C][:C]
			var s0, s1, s2, s3 float64
			for k := 0; k+3 < C; k += 4 {
				w0, w1, w2, w3 := row[k], row[k+1], row[k+2], row[k+3]
				s0 += w0*x0[k] + w1*x0[k+1] + w2*x0[k+2] + w3*x0[k+3]
				s1 += w0*x1[k] + w1*x1[k+1] + w2*x1[k+2] + w3*x1[k+3]
				s2 += w0*x2[k] + w1*x2[k+1] + w2*x2[k+2] + w3*x2[k+3]
				s3 += w0*x3[k] + w1*x3[k+1] + w2*x3[k+2] + w3*x3[k+3]
			}
			for k := n; k < C; k++ {
				w := row[k]
				s0 += w * x0[k]
				s1 += w * x1[k]
				s2 += w * x2[k]
				s3 += w * x3[k]
			}
			d0[j] = s0
			d1[j] = s1
			d2[j] = s2
			d3[j] = s3
		}
	}
	for ; i < len(xs); i++ {
		x := xs[i]
		d := dst[i*R : (i+1)*R]
		for j := 0; j < R; j++ {
			d[j] = Dot(m.Data[j*C:(j+1)*C], x)
		}
	}
}

// AddOuter accumulates the outer product a*u*vᵀ into m:
// m[i,j] += a*u[i]*v[j]. Used for weight-gradient accumulation.
//
// Like MulVecT this is a pure sequential per-element chain (one rounded
// fl(a*u[i]) * v[j] added per call, no data-dependent skips), so a sequence
// of AddOuter calls has a well-defined association that AddOuterSeq can
// reproduce bitwise.
func (m *Matrix) AddOuter(a float64, u, v []float64) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: outer shape mismatch (%dx%d vs %dx%d)",
			m.Rows, m.Cols, len(u), len(v)))
	}
	for i, ui := range u {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		Axpy(row, a*ui, v)
	}
}

// Dot returns the inner product of a and b. Lengths must match.
func Dot(a, b []float64) float64 {
	var s float64
	// 4-way unroll: measurably faster for the LSTM hot loops.
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += a*x elementwise.
func Axpy(dst []float64, a float64, x []float64) {
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += a * x[i]
		dst[i+1] += a * x[i+1]
		dst[i+2] += a * x[i+2]
		dst[i+3] += a * x[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += a * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Fill assigns v to every element of dst.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// ArgMax returns the index of the maximum element, or -1 for empty input.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// MinMax returns the minimum and maximum of v. It returns (0, 0) for empty
// input.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
