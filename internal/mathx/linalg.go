package mathx

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values. The zero value is an
// empty matrix; use NewMatrix to allocate one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by a in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddInPlace accumulates other into m. It panics on shape mismatch since that
// is always a programming error inside this module.
func (m *Matrix) AddInPlace(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mathx: add shape mismatch (%dx%d vs %dx%d)",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// MulVec computes dst = m * x (GEMV). dst must have length m.Rows and x
// length m.Cols. The inner loop is written to be auto-vectorization friendly.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: gemv shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst[i] = Dot(row, x)
	}
}

// MulVecAdd computes dst += m * x without zeroing dst first.
func (m *Matrix) MulVecAdd(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: gemv shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst[i] += Dot(row, x)
	}
}

// MulVecT computes dst = mᵀ * x, i.e. dst[j] = Σ_i m[i,j]*x[i]. dst must have
// length m.Cols and x length m.Rows. Used for gradient backpropagation.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mathx: gemv-T shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		Axpy(dst, xi, row)
	}
}

// AddOuter accumulates the outer product a*u*vᵀ into m:
// m[i,j] += a*u[i]*v[j]. Used for weight-gradient accumulation.
func (m *Matrix) AddOuter(a float64, u, v []float64) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: outer shape mismatch (%dx%d vs %dx%d)",
			m.Rows, m.Cols, len(u), len(v)))
	}
	for i, ui := range u {
		s := a * ui
		if s == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		Axpy(row, s, v)
	}
}

// Dot returns the inner product of a and b. Lengths must match.
func Dot(a, b []float64) float64 {
	var s float64
	// 4-way unroll: measurably faster for the LSTM hot loops.
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += a*x elementwise.
func Axpy(dst []float64, a float64, x []float64) {
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += a * x[i]
		dst[i+1] += a * x[i+1]
		dst[i+2] += a * x[i+2]
		dst[i+3] += a * x[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += a * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Fill assigns v to every element of dst.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// ArgMax returns the index of the maximum element, or -1 for empty input.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// MinMax returns the minimum and maximum of v. It returns (0, 0) for empty
// input.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
