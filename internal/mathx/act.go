package mathx

import "math"

// VExp writes math.Exp(src[i]) into dst[i] for every element, bitwise
// identical to calling math.Exp in a loop. On capable CPUs the bulk of the
// slice runs through a packed mirror of the stdlib's FMA exp kernel
// (act_amd64.s); elements the kernel declines — vector tails and lanes
// archExp would route through its special paths — are computed by
// math.Exp itself, so the contract holds for every input on every kernel
// tier. dst and src may be the same slice.
func VExp(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: VExp length mismatch")
	}
	i := vexpSIMD(dst, src)
	for ; i < len(src); i++ {
		dst[i] = math.Exp(src[i])
	}
}

// VSigmoid is the slice form of Sigmoid with the same bitwise contract as
// VExp: every element equals Sigmoid(src[i]) exactly. dst and src may
// alias.
func VSigmoid(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: VSigmoid length mismatch")
	}
	i := vsigSIMD(dst, src)
	for ; i < len(src); i++ {
		dst[i] = Sigmoid(src[i])
	}
}

// VTanh is the slice form of math.Tanh with the same bitwise contract as
// VExp: every element equals math.Tanh(src[i]) exactly. dst and src may
// alias.
func VTanh(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: VTanh length mismatch")
	}
	i := vtanhSIMD(dst, src)
	for ; i < len(src); i++ {
		dst[i] = math.Tanh(src[i])
	}
}
