package mathx

// Conv1D computes a valid 1-D cross-correlation over a channels-last
// sequence: for each output position p and filter f,
//
//	dst[p*F+f] = Dot(w.Row(f), x[p*chans : p*chans+w.Cols]) + bias[f]
//
// where F = w.Rows, w.Cols = kernelLen*chans, and the number of positions
// is len(dst)/F (the caller chooses how many of the valid positions to
// compute; a predictor typically stops kernelLen positions early so every
// window has a next-step target). bias may be nil.
//
// The sliding windows are borrowed views into x (im2row without the
// copy), so the whole conv is one MulRowsT call and inherits its
// scalar/AVX2/AVX-512 tiers and its bitwise contract: each output row is
// bit-identical to MulVec on that window, on every tier, for any number
// of positions.
func Conv1D(dst []float64, w *Matrix, bias, x []float64, chans int) {
	f := w.Rows
	positions := len(dst) / f
	if positions == 0 {
		return
	}
	if len(dst) != positions*f {
		panic("mathx: Conv1D dst length not a multiple of w.Rows")
	}
	if need := (positions-1)*chans + w.Cols; len(x) < need {
		panic("mathx: Conv1D input too short for requested positions")
	}
	var rbuf [16][]float64
	rows := rbuf[:0]
	if positions > len(rbuf) {
		rows = make([][]float64, 0, positions)
	}
	for p := 0; p < positions; p++ {
		rows = append(rows, x[p*chans:p*chans+w.Cols])
	}
	w.MulRowsT(dst, rows)
	addBiasRows(dst, bias, positions)
}

// Conv1DBatch runs Conv1D over a batch of equally-shaped sequences,
// stacking every position of every sequence into a single MulRowsT so the
// batched inference path amortizes the weight traversal. dst is
// sample-major then position-major: sample i, position p lands at
// dst[(i*positions+p)*F : ...+F]. rows is caller scratch with capacity for
// len(xs)*positions window views (grown if short). Per-row results are
// bitwise identical to the sequential Conv1D on each sample — MulRowsT's
// per-row contract is independent of how many rows share the call.
func Conv1DBatch(dst []float64, w *Matrix, bias []float64, xs [][]float64, chans, positions int, rows [][]float64) {
	f := w.Rows
	n := len(xs)
	if n == 0 || positions == 0 {
		return
	}
	if len(dst) != n*positions*f {
		panic("mathx: Conv1DBatch dst length mismatch")
	}
	need := (positions-1)*chans + w.Cols
	if cap(rows) < n*positions {
		rows = make([][]float64, 0, n*positions)
	}
	rows = rows[:0]
	for _, x := range xs {
		if len(x) < need {
			panic("mathx: Conv1DBatch input too short for requested positions")
		}
		for p := 0; p < positions; p++ {
			rows = append(rows, x[p*chans:p*chans+w.Cols])
		}
	}
	w.MulRowsT(dst, rows)
	addBiasRows(dst, bias, n*positions)
}

// addBiasRows adds bias to each length-len(bias) row of dst. The add is a
// single s+bias[f] per element, matching PackedGEMV's GemvSetBias
// association, so conv-then-bias stays bit-compatible with a fused
// dot+bias epilogue.
func addBiasRows(dst, bias []float64, rows int) {
	if bias == nil {
		return
	}
	f := len(bias)
	for p := 0; p < rows; p++ {
		row := dst[p*f : (p+1)*f]
		for j := range row {
			row[j] += bias[j]
		}
	}
}
