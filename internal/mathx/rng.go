// Package mathx provides the numerical substrate shared by the detector
// stack: dense vector/matrix kernels, numerically stable softmax and
// log-sum-exp, a deterministic random number generator, and lightweight
// descriptive statistics (histograms, mean/std).
//
// Everything in this package is dependency-free and deterministic given a
// seed, which the experiment harness relies on for reproducible tables.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xorshift128+ seeded through splitmix64. It is NOT safe for concurrent use;
// create one RNG per goroutine (see Split).
//
// A hand-rolled generator is used instead of math/rand so that generated
// datasets and model initializations are bit-stable across Go releases.
type RNG struct {
	s0, s1 uint64
	// spare holds a cached second Gaussian sample from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// NewRNG returns a generator seeded from seed via splitmix64 so that
// similar seeds still produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 0x9E3779B97F4A7C15
	}
	return r
}

// splitmix64 advances *x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Split derives an independent generator from r. The child stream is
// decorrelated from the parent by reseeding through splitmix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniform double.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0, mirroring
// math/rand; callers validate n at construction time.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform sample in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal sample using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// NormScaled returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) NormScaled(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponential sample with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1-u) / rate
}
