package mathx

import (
	"math"
	"testing"
)

// forEachTier runs f under each kernel tier override (on machines without
// the hardware the override is a no-op and the sub-tests all exercise the
// same lower tier — still a valid equivalence check).
func forEachTier(t *testing.T, f func(t *testing.T)) {
	for _, tier := range []struct {
		name         string
		simd, avx512 bool
	}{
		{"avx512", true, true},
		{"avx2", true, false},
		{"scalar", false, false},
	} {
		t.Run(tier.name, func(t *testing.T) {
			prevSIMD := SetSIMDEnabled(tier.simd)
			prevAVX512 := SetAVX512Enabled(tier.avx512)
			defer func() {
				SetAVX512Enabled(prevAVX512)
				SetSIMDEnabled(prevSIMD)
			}()
			f(t)
		})
	}
}

// bitsEqual is the strict equality the goldens rest on: identical bit
// patterns, ±0 distinguished.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// randomActives picks a random ascending index set over n columns, dense
// enough that aligned four-column groups frequently hold several actives —
// the case where a naive flat gather would diverge from Dot's association.
func randomActives(rng *RNG, n int) []int {
	var idx []int
	for j := 0; j < n; j++ {
		if rng.Float64() < 0.35 {
			idx = append(idx, j)
		}
	}
	return idx
}

func denseFromActives(n int, idx []int) []float64 {
	x := make([]float64, n)
	for _, j := range idx {
		x[j] = 1
	}
	return x
}

// TestOneHotDotMatchesDot: the sparse dot over an implicit one-hot vector
// must be bitwise-identical to the dense Dot, including when several active
// columns share an aligned four-column group and in the sequential tail.
func TestOneHotDotMatchesDot(t *testing.T) {
	rng := NewRNG(71)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(48)
		row := randomVec(rng, n)
		idx := randomActives(rng, n)
		x := denseFromActives(n, idx)
		want := Dot(row, x)
		got := OneHotDot(row, idx)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d (n=%d, actives=%v): OneHotDot %v, Dot %v", trial, n, idx, got, want)
		}
	}
}

// TestMulVecOneHotMatchesMulVec covers the row-major sparse GEMV reference.
func TestMulVecOneHotMatchesMulVec(t *testing.T) {
	rng := NewRNG(72)
	for trial := 0; trial < 60; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(48)
		m := randomMatrix(rng, rows, cols)
		idx := randomActives(rng, cols)
		x := denseFromActives(cols, idx)
		want := make([]float64, rows)
		m.MulVec(want, x)
		got := make([]float64, rows)
		m.MulVecOneHot(got, idx)
		for i := range want {
			if !bitsEqual(got[i], want[i]) {
				t.Fatalf("trial %d row %d: sparse %v, dense %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestOneHotGatherMatchesMulVec: the transposed-layout gather — the actual
// inference fast path — must match the dense product bitwise, empty index
// sets included.
func TestOneHotGatherMatchesMulVec(t *testing.T) {
	rng := NewRNG(73)
	for trial := 0; trial < 60; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(48)
		m := randomMatrix(rng, rows, cols)
		wt := m.Transpose()
		idx := randomActives(rng, cols)
		if trial%10 == 0 {
			idx = nil // empty set: gather must zero dst
		}
		x := denseFromActives(cols, idx)
		want := make([]float64, rows)
		m.MulVec(want, x)
		got := randomVec(rng, rows) // stale contents: gather must overwrite
		OneHotGather(got, wt, idx)
		for i := range want {
			if !bitsEqual(got[i], want[i]) {
				t.Fatalf("trial %d row %d (actives %v): gather %v, dense %v", trial, i, idx, got[i], want[i])
			}
		}
	}
}

// TestPackedGEMVMatchesMulVec: Apply must be bitwise-identical to the
// MulVec / MulVecAdd + bias-loop reference in all four epilogue modes, on
// every kernel tier, across shapes with row tails (rows % lanes) and odd
// column counts.
func TestPackedGEMVMatchesMulVec(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := NewRNG(74)
		for trial := 0; trial < 80; trial++ {
			rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
			m := randomMatrix(rng, rows, cols)
			p := PackGEMV(m)
			x := randomVec(rng, cols)
			bias := randomVec(rng, rows)
			base := randomVec(rng, rows)
			for mode := GemvSet; mode <= GemvSetBias; mode++ {
				want := make([]float64, rows)
				copy(want, base)
				switch mode {
				case GemvSet:
					m.MulVec(want, x)
				case GemvAdd:
					m.MulVecAdd(want, x)
				case GemvAddBias:
					m.MulVecAdd(want, x)
					for i := range want {
						want[i] += bias[i]
					}
				case GemvSetBias:
					m.MulVec(want, x)
					for i := range want {
						want[i] += bias[i]
					}
				}
				got := make([]float64, rows)
				copy(got, base)
				p.Apply(got, x, bias, mode)
				for i := range want {
					if !bitsEqual(got[i], want[i]) {
						t.Fatalf("trial %d mode %d row %d (%dx%d): packed %v, reference %v",
							trial, mode, i, rows, cols, got[i], want[i])
					}
				}
			}
		}
	})
}

// TestPackedGEMVStale: a tier override after packing must mark the pack
// stale so cached layouts rebuild for the new tier.
func TestPackedGEMVStale(t *testing.T) {
	rng := NewRNG(75)
	m := randomMatrix(rng, 8, 8)
	p := PackGEMV(m)
	if p.Stale() {
		t.Fatal("fresh pack reported stale")
	}
	prev := SetSIMDEnabled(false)
	defer SetSIMDEnabled(prev)
	if !p.Stale() {
		t.Fatal("pack not stale after kernel-tier override")
	}
	// A stale pack still computes identical bits (the association is
	// tier-independent); staleness only signals the wrong tier would run.
	x := randomVec(rng, 8)
	want := make([]float64, 8)
	m.MulVec(want, x)
	got := make([]float64, 8)
	p.Apply(got, x, nil, GemvSet)
	for i := range want {
		if !bitsEqual(got[i], want[i]) {
			t.Fatalf("stale pack row %d: %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMulRowsTWideBatches: batch widths that engage the eight-stream
// AVX-512 block (plus ragged tails through the four-stream and single-row
// paths) must stay bitwise-identical to one MulVec per stream on every
// tier.
func TestMulRowsTWideBatches(t *testing.T) {
	forEachTier(t, func(t *testing.T) {
		rng := NewRNG(76)
		for _, streams := range []int{8, 9, 11, 13, 16, 23} {
			rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
			m := randomMatrix(rng, rows, cols)
			xs := make([][]float64, streams)
			for i := range xs {
				xs[i] = randomVec(rng, cols)
			}
			got := make([]float64, streams*rows)
			m.MulRowsT(got, xs)
			for i := 0; i < streams; i++ {
				want := make([]float64, rows)
				m.MulVec(want, xs[i])
				for j := range want {
					if !bitsEqual(got[i*rows+j], want[j]) {
						t.Fatalf("streams=%d stream %d row %d (%dx%d): batched %v, MulVec %v",
							streams, i, j, rows, cols, got[i*rows+j], want[j])
					}
				}
			}
		}
	})
}
