package mathx

import "fmt"

// Float32 mirrors of the inference-side linear algebra. The f32 tier is a
// separate numeric contract from the f64 kernels: every f32 kernel — scalar
// Go, AVX2 and AVX-512 assembly alike — computes the SAME single-precision
// algorithm with the SAME summation association (Dot32's aligned groups of
// four summed left-to-right, then a sequential tail), so the three kernel
// tiers are bitwise-identical to each other in float32. Against the f64
// reference the results differ by rounding only; the detection stack gates
// that difference at the verdict level (see the f32 conformance suite).
//
// None of the f32 kernels use FMA: Go does not contract x*y+z on amd64, so
// the scalar mul-then-add chains match VMULPS/VADDPS exactly, and emulating
// an f32 FMA through float64 would double-round.

// Matrix32 is a dense row-major matrix of float32 values, the inference
// mirror of Matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix32 allocates a zeroed rows x cols matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ToMatrix32 converts m elementwise with one float64→float32 rounding per
// element — the deterministic weight conversion behind the f32 inference
// snapshot.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// At returns the element at (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes dst = m * x (GEMV), the f32 mirror of Matrix.MulVec.
func (m *Matrix32) MulVec(dst, x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: f32 gemv shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot32(m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
}

// MulVecAdd computes dst += m * x without zeroing dst first.
func (m *Matrix32) MulVecAdd(dst, x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: f32 gemv shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] += Dot32(m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
}

// MulVecT computes dst = mᵀ * x: dst[j] = Σ_i m[i,j]*x[i], accumulated as a
// plain sequential chain per output element exactly like Matrix.MulVecT.
func (m *Matrix32) MulVecT(dst, x []float32) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mathx: f32 gemv-T shape mismatch (%dx%d by %d into %d)",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		Axpy32(dst, x[i], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
}

// MulRowsT computes the batched product dst = X·mᵀ where the rows of X are
// the slices xs: dst[i*m.Rows+j] = Σ_k m[j,k]·xs[i][k], the f32 mirror of
// Matrix.MulRowsT. Every output element is accumulated in exactly Dot32's
// association, so the result is bitwise identical to MulVec per row on
// every kernel tier. Like the f64 kernel, only the overwriting form exists;
// batched callers combine separate products elementwise.
func (m *Matrix32) MulRowsT(dst []float32, xs [][]float32) {
	R, C := m.Rows, m.Cols
	if len(dst) != len(xs)*R {
		panic(fmt.Sprintf("mathx: f32 gemm shape mismatch (%d rows of %d into %d)",
			len(xs), R, len(dst)))
	}
	n := C &^ 3
	i := 0
	// AVX-512 first: sixteen streams per zmm. The kernel's per-lane
	// association is Dot32's, so peeling 16-wide blocks before the 8-wide
	// path changes nothing but speed.
	for ; i+16 <= len(xs); i += 16 {
		if !mulRows16f32SIMD(m, dst[i*R:(i+16)*R], xs[i:i+16]) {
			break
		}
	}
	for ; i+8 <= len(xs); i += 8 {
		if !mulRows8f32SIMD(m, dst[i*R:(i+8)*R], xs[i:i+8]) {
			break
		}
	}
	for ; i+4 <= len(xs); i += 4 {
		// Cache-tiled scalar path: four streams advance together per weight
		// row, four independent accumulator chains, each in Dot32's exact
		// association. Reslice to C so the bounds-check eliminator can prove
		// every k+3 access in bounds.
		x0, x1, x2, x3 := xs[i][:C], xs[i+1][:C], xs[i+2][:C], xs[i+3][:C]
		d0 := dst[i*R : (i+1)*R]
		d1 := dst[(i+1)*R : (i+2)*R]
		d2 := dst[(i+2)*R : (i+3)*R]
		d3 := dst[(i+3)*R : (i+4)*R]
		for j := 0; j < R; j++ {
			row := m.Data[j*C : (j+1)*C : (j+1)*C][:C]
			var s0, s1, s2, s3 float32
			for k := 0; k+3 < C; k += 4 {
				w0, w1, w2, w3 := row[k], row[k+1], row[k+2], row[k+3]
				s0 += w0*x0[k] + w1*x0[k+1] + w2*x0[k+2] + w3*x0[k+3]
				s1 += w0*x1[k] + w1*x1[k+1] + w2*x1[k+2] + w3*x1[k+3]
				s2 += w0*x2[k] + w1*x2[k+1] + w2*x2[k+2] + w3*x2[k+3]
				s3 += w0*x3[k] + w1*x3[k+1] + w2*x3[k+2] + w3*x3[k+3]
			}
			for k := n; k < C; k++ {
				w := row[k]
				s0 += w * x0[k]
				s1 += w * x1[k]
				s2 += w * x2[k]
				s3 += w * x3[k]
			}
			d0[j] = s0
			d1[j] = s1
			d2[j] = s2
			d3[j] = s3
		}
	}
	for ; i < len(xs); i++ {
		x := xs[i]
		d := dst[i*R : (i+1)*R]
		for j := 0; j < R; j++ {
			d[j] = Dot32(m.Data[j*C:(j+1)*C], x)
		}
	}
}

// PackedGEMM32 is a Matrix32 plus a row-pair interleaved copy of its data,
// the layout of the 8-stream AVX-512 GEMM kernel: pairs[p*2C+2k] = m[2p,k],
// pairs[p*2C+2k+1] = m[2p+1,k], so one 64-bit broadcast yields the weight
// pair for two adjacent output rows across all eight stream lane-pairs.
// The packing is tier-independent (kernels that cannot use it fall back to
// the matrix itself), and the matrix must not be mutated after packing —
// the inference snapshot that owns these weights never does.
type PackedGEMM32 struct {
	m     *Matrix32
	pairs []float32 // (Rows&^1)*Cols values; an odd final row stays unpaired
}

// PackGEMM32 builds the row-pair packing of m.
func PackGEMM32(m *Matrix32) *PackedGEMM32 {
	R, C := m.Rows, m.Cols
	p := &PackedGEMM32{m: m, pairs: make([]float32, (R&^1)*C)}
	for pr := 0; pr < R/2; pr++ {
		r0 := m.Data[(2*pr)*C : (2*pr+1)*C]
		r1 := m.Data[(2*pr+1)*C : (2*pr+2)*C]
		out := p.pairs[pr*2*C : (pr+1)*2*C]
		for k := 0; k < C; k++ {
			out[2*k] = r0[k]
			out[2*k+1] = r1[k]
		}
	}
	return p
}

// MulRowsT is Matrix32.MulRowsT with the same shape contract and the same
// per-element Dot32 association, but eight-stream blocks on the AVX-512
// tier run the row-pair kernel (two weight rows per zmm) instead of the
// 256-bit eight-lane kernel. Results are bitwise-identical to the matrix's
// own MulRowsT on every tier.
func (p *PackedGEMM32) MulRowsT(dst []float32, xs [][]float32) {
	R := p.m.Rows
	if len(dst) != len(xs)*R {
		panic(fmt.Sprintf("mathx: f32 gemm shape mismatch (%d rows of %d into %d)",
			len(xs), R, len(dst)))
	}
	i := 0
	// Keep the 16-stream peel: at full zmm occupancy the plain kernel
	// already amortizes its broadcasts over sixteen lanes.
	for ; i+16 <= len(xs); i += 16 {
		if !mulRows16f32SIMD(p.m, dst[i*R:(i+16)*R], xs[i:i+16]) {
			break
		}
	}
	for ; i+8 <= len(xs); i += 8 {
		if !mulRows8x2f32SIMD(p, dst[i*R:(i+8)*R], xs[i:i+8]) {
			break
		}
	}
	if i < len(xs) {
		p.m.MulRowsT(dst[i*R:], xs[i:])
	}
}

// Transpose returns mᵀ as a fresh matrix (the layout OneHotGather32 wants).
func (m *Matrix32) Transpose() *Matrix32 {
	out := NewMatrix32(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Dot32 returns the inner product of a and b in float32, with the same
// 4-way-unrolled association as the f64 Dot — the association every f32
// SIMD kernel replicates lane for lane.
func Dot32(a, b []float32) float32 {
	var s float32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy32 computes dst += a*x elementwise in float32.
func Axpy32(dst []float32, a float32, x []float32) {
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += a * x[i]
		dst[i+1] += a * x[i+1]
		dst[i+2] += a * x[i+2]
		dst[i+3] += a * x[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += a * x[i]
	}
}

// VCombine32 computes dst[i] = (dst[i] + u[i]) + b[i] in exactly that
// operand order — the batched LSTM combine epilogue (wx + uh) + b. The
// operation is purely elementwise, so the SIMD path is bitwise-identical
// to the scalar loop by construction; no association contract is needed.
func VCombine32(dst, u, b []float32) {
	if len(u) < len(dst) || len(b) < len(dst) {
		panic(fmt.Sprintf("mathx: f32 combine shape mismatch (%d with %d, %d)",
			len(dst), len(u), len(b)))
	}
	i := vcombine32SIMD(dst, u, b)
	for ; i < len(dst); i++ {
		dst[i] = (dst[i] + u[i]) + b[i]
	}
}

// Fill32 assigns v to every element of dst.
func Fill32(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

// ArgMax32 returns the index of the maximum element, or -1 for empty input.
func ArgMax32(v []float32) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
