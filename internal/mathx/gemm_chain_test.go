package mathx

import "testing"

// TestMulRowsMatchesMulVecT: the batched input-gradient GEMM must be
// bitwise identical to one MulVecT per stream — the association the batched
// trainer's bitwise-equivalence guarantee rests on.
func TestMulRowsMatchesMulVecT(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 40; trial++ {
		rows, cols := 1+rng.Intn(24), 1+rng.Intn(24)
		n := rng.Intn(10)
		m := randomMatrix(rng, rows, cols)
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = randomVec(rng, rows)
		}
		got := make([]float64, n*cols)
		m.MulRows(got, xs)
		for i := 0; i < n; i++ {
			want := make([]float64, cols)
			m.MulVecT(want, xs[i])
			for j := range want {
				if got[i*cols+j] != want[j] {
					t.Fatalf("MulRows stream %d element %d = %v, MulVecT gives %v (m %dx%d)",
						i, j, got[i*cols+j], want[j], rows, cols)
				}
			}
		}
	}
}

// TestMulRowsLargeRows exercises the chunking path (weight rows beyond one
// packed chunk) plus odd column tails, still requiring bitwise equality.
func TestMulRowsLargeRows(t *testing.T) {
	rng := NewRNG(12)
	m := randomMatrix(rng, 3*chainChunk+5, 37)
	xs := make([][]float64, 6)
	for i := range xs {
		xs[i] = randomVec(rng, m.Rows)
	}
	got := make([]float64, len(xs)*m.Cols)
	m.MulRows(got, xs)
	for i, x := range xs {
		want := make([]float64, m.Cols)
		m.MulVecT(want, x)
		for j := range want {
			if got[i*m.Cols+j] != want[j] {
				t.Fatalf("MulRows[%d][%d] = %v, MulVecT gives %v", i, j, got[i*m.Cols+j], want[j])
			}
		}
	}
}

// TestAddOuterSeqMatchesAddOuter: the weight-gradient accumulator must be
// bitwise identical to a sequence of rank-1 AddOuter updates in the same
// order, starting from an arbitrary (non-zero) matrix.
func TestAddOuterSeqMatchesAddOuter(t *testing.T) {
	rng := NewRNG(13)
	for trial := 0; trial < 40; trial++ {
		rows, cols := 1+rng.Intn(24), 1+rng.Intn(24)
		steps := rng.Intn(12)
		ref := randomMatrix(rng, rows, cols)
		got := ref.Clone()
		us := randomVec(rng, steps*rows)
		vs := randomVec(rng, steps*cols)
		for s := 0; s < steps; s++ {
			ref.AddOuter(1, us[s*rows:(s+1)*rows], vs[s*cols:(s+1)*cols])
		}
		got.AddOuterSeq(us, vs, steps)
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("AddOuterSeq element %d = %v, AddOuter sequence gives %v (m %dx%d steps %d)",
					i, got.Data[i], ref.Data[i], rows, cols, steps)
			}
		}
	}
}

// TestAddOuterSeqLongChain exercises the step-chunking path (steps beyond
// one packed chunk).
func TestAddOuterSeqLongChain(t *testing.T) {
	rng := NewRNG(14)
	rows, cols := 9, 21
	steps := chainChunk + 37
	ref := randomMatrix(rng, rows, cols)
	got := ref.Clone()
	us := randomVec(rng, steps*rows)
	vs := randomVec(rng, steps*cols)
	for s := 0; s < steps; s++ {
		ref.AddOuter(1, us[s*rows:(s+1)*rows], vs[s*cols:(s+1)*cols])
	}
	got.AddOuterSeq(us, vs, steps)
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("element %d diverged after %d chained steps", i, steps)
		}
	}
}

// TestChainKernelScalarVsSIMD pins the SIMD microkernel to the scalar tile
// bitwise, on machines where the SIMD path exists.
func TestChainKernelScalarVsSIMD(t *testing.T) {
	if !SetSIMDEnabled(true) {
		SetSIMDEnabled(false)
		t.Skip("no SIMD kernel on this platform")
	}
	defer SetSIMDEnabled(true)
	rng := NewRNG(15)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		n := 4 + rng.Intn(8)
		steps := 1 + rng.Intn(20)
		m := randomMatrix(rng, rows, cols)

		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = randomVec(rng, rows)
		}
		us := randomVec(rng, steps*rows)
		vs := randomVec(rng, steps*cols)

		SetSIMDEnabled(true)
		mulSIMD := make([]float64, n*cols)
		m.MulRows(mulSIMD, xs)
		accSIMD := m.Clone()
		accSIMD.AddOuterSeq(us, vs, steps)

		SetSIMDEnabled(false)
		mulScalar := make([]float64, n*cols)
		m.MulRows(mulScalar, xs)
		accScalar := m.Clone()
		accScalar.AddOuterSeq(us, vs, steps)

		for i := range mulSIMD {
			if mulSIMD[i] != mulScalar[i] {
				t.Fatalf("MulRows SIMD/scalar divergence at %d (m %dx%d n=%d)", i, rows, cols, n)
			}
		}
		for i := range accSIMD.Data {
			if accSIMD.Data[i] != accScalar.Data[i] {
				t.Fatalf("AddOuterSeq SIMD/scalar divergence at %d (m %dx%d steps=%d)", i, rows, cols, steps)
			}
		}
	}
}

func TestChainKernelEmptyInputs(t *testing.T) {
	m := NewMatrix(4, 3)
	m.MulRows(nil, nil)        // zero streams is a no-op
	m.AddOuterSeq(nil, nil, 0) // zero steps is a no-op
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("no-op mutated the matrix")
		}
	}
}

func TestChainKernelShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"MulRows":     func() { m.MulRows(make([]float64, 2), [][]float64{make([]float64, 2)}) },
		"AddOuterSeq": func() { m.AddOuterSeq(make([]float64, 1), make([]float64, 3), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad shape did not panic", name)
				}
			}()
			fn()
		}()
	}
}
