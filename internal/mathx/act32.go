package mathx

import "math"

// Float32 activation kernels. Unlike the f64 kernels — which reproduce
// math.Exp / math.Tanh bitwise — the f32 tier defines its own scalar
// reference (a Cephes-style single-precision expf/tanhf) and the vector
// kernels in act32_amd64.s reproduce THAT, lane for lane, with no FMA
// anywhere, so scalar, AVX2 and AVX-512 tiers are bitwise-identical in
// float32. Accuracy vs the f64 activations is a few f32 ulps, gated at the
// verdict level by the f32 conformance suite.
//
// The constants are spelled from exact bit patterns shared with
// act32_amd64.s.

var (
	exp32Log2e = math.Float32frombits(0x3FB8AA3B) // log2(e)
	exp32Ln2Hi = math.Float32frombits(0x3F318000) // 0.693359375
	exp32Ln2Lo = math.Float32frombits(0xB95E8083) // -2.12194440e-4
	exp32C0    = math.Float32frombits(0x39506967) // 1.9875691500e-4
	exp32C1    = math.Float32frombits(0x3AB743CE) // 1.3981999507e-3
	exp32C2    = math.Float32frombits(0x3C088908) // 8.3334519073e-3
	exp32C3    = math.Float32frombits(0x3D2AA9C1) // 4.1665795894e-2
	exp32C4    = math.Float32frombits(0x3E2AAAAA) // 1.6666665459e-1
	exp32C5    = math.Float32frombits(0x3F000000) // 0.5

	tanh32Mid = math.Float32frombits(0x3F200000) // 0.625
	tanh32Big = math.Float32frombits(0x42300F34) // 44.014845: tanh == ±1 in f32
	tanh32C0  = math.Float32frombits(0xBBBAF0EA) // -5.70498872745e-3
	tanh32C1  = math.Float32frombits(0x3CA9134E) // 2.06390887954e-2
	tanh32C2  = math.Float32frombits(0xBD5C1E2D) // -5.37397155531e-2
	tanh32C3  = math.Float32frombits(0x3E088393) // 1.33314422036e-1
	tanh32C4  = math.Float32frombits(0xBEAAAA99) // -3.33332819422e-1
)

// Exp32 is the scalar f32 exponential reference: k = rint(x·log2e), a
// two-constant ln2 reduction, a degree-5 Horner polynomial, and 2^k scaling
// through the exponent field — plain mul/add only, so the packed
// VMULPS/VADDPS kernel is bitwise-identical on its fast path. Inputs the
// fast path cannot represent (non-finite, |result| outside the normal
// range) fall back to the f64 exponential rounded once to f32; the vector
// kernels early-out on those lanes so the wrapper reaches this same
// branch.
func Exp32(x float32) float32 {
	t := x * exp32Log2e
	if !(t >= -150 && t <= 150) {
		// NaN or far outside the int32-safe range: the float→int conversion
		// below would be implementation-defined.
		return float32(math.Exp(float64(x)))
	}
	k := int32(math.RoundToEven(float64(t))) // VCVTPS2DQ rounds to nearest even
	e := k + 127
	if e <= 0 || e >= 255 {
		return float32(math.Exp(float64(x)))
	}
	kf := float32(k)
	r := x - kf*exp32Ln2Hi
	r -= kf * exp32Ln2Lo
	p := ((((exp32C0*r+exp32C1)*r+exp32C2)*r+exp32C3)*r+exp32C4)*r + exp32C5
	z := r * r
	pz := p * z
	y := pz + r
	y = y + 1
	return y * math.Float32frombits(uint32(e)<<23)
}

// Sigmoid32 is the scalar f32 logistic reference, the two-branch form of
// mathx.Sigmoid over Exp32: both branches evaluate exp(−|x|), so the packed
// kernel computes one exp core and blends the numerator.
func Sigmoid32(x float32) float32 {
	if x >= 0 {
		z := Exp32(-x)
		return 1 / (1 + z)
	}
	z := Exp32(x)
	return z / (1 + z)
}

// Tanh32 is the scalar f32 hyperbolic-tangent reference: ±0 passes
// through, |x| > 44.01 saturates to ±1, |x| ≥ 0.625 uses
// sign·(1 − 2/(exp(2|x|)+1)) — always on Exp32's fast path — and the rest
// takes the odd degree-11 polynomial. Sign handling is by bit arithmetic so
// the packed AND/OR/XOR lanes match exactly.
func Tanh32(x float32) float32 {
	if x == 0 {
		return x
	}
	bits := math.Float32bits(x)
	sgn := bits & (1 << 31)
	ax := math.Float32frombits(bits &^ (1 << 31))
	if ax > tanh32Big {
		return math.Float32frombits(0x3F800000 | sgn)
	}
	if ax >= tanh32Mid {
		e := Exp32(2 * ax)
		y := 1 - 2/(e+1)
		return math.Float32frombits(math.Float32bits(y) ^ sgn)
	}
	z := x * x
	p := ((((tanh32C0*z+tanh32C1)*z+tanh32C2)*z+tanh32C3)*z + tanh32C4)
	y := p * z
	y *= x
	return y + x
}

// VExp32 writes Exp32(src[i]) into dst[i] for every element, bitwise
// identical to the scalar loop on every kernel tier. dst and src may alias.
func VExp32(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mathx: VExp32 length mismatch")
	}
	i := vexp32SIMD(dst, src)
	for ; i < len(src); i++ {
		dst[i] = Exp32(src[i])
	}
}

// VSigmoid32 is the slice form of Sigmoid32 with the same bitwise contract
// as VExp32. dst and src may alias.
func VSigmoid32(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mathx: VSigmoid32 length mismatch")
	}
	i := vsig32SIMD(dst, src)
	for ; i < len(src); i++ {
		dst[i] = Sigmoid32(src[i])
	}
}

// VTanh32 is the slice form of Tanh32 with the same bitwise contract as
// VExp32. dst and src may alias.
func VTanh32(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mathx: VTanh32 length mismatch")
	}
	i := vtanh32SIMD(dst, src)
	for ; i < len(src); i++ {
		dst[i] = Tanh32(src[i])
	}
}
