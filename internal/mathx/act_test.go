package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// actInputs builds input sets that exercise every branch of the scalar
// references: the tanh polynomial/rational/saturated regions, the sigmoid
// sign split, exp's overflow/underflow/denormal edges, and non-finite
// values.
func actInputs(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, 0, n+32)
	special := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.624, 0.625, 0.626, -0.625,
		44.0, 44.014845965556524, 44.1, -44.1, 88.02, -88.03,
		700, -700, 708.3, -708.3, 709.7, 709.8, -745.2, -746,
		1000, -1000, math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64, 5e-324,
	}
	xs = append(xs, special...)
	for len(xs) < n+len(special) {
		switch rng.Intn(4) {
		case 0: // gate pre-activation regime
			xs = append(xs, rng.NormFloat64()*4)
		case 1: // tanh polynomial region
			xs = append(xs, (rng.Float64()*2-1)*0.625)
		case 2: // wide
			xs = append(xs, (rng.Float64()*2-1)*100)
		default: // extreme
			xs = append(xs, (rng.Float64()*2-1)*800)
		}
	}
	return xs
}

func testActKernel(t *testing.T, name string, vec func(dst, src []float64), ref func(float64) float64) {
	t.Helper()
	forEachTier(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(1234))
		for trial := 0; trial < 50; trial++ {
			xs := actInputs(rng, 1+rng.Intn(200))
			want := make([]float64, len(xs))
			for i, x := range xs {
				want[i] = ref(x)
			}
			got := make([]float64, len(xs))
			vec(got, xs)
			for i := range xs {
				if !bitsEqual(got[i], want[i]) {
					t.Fatalf("%s trial=%d: x=%g (bits %016x): got %g (%016x), want %g (%016x)",
						name, trial, xs[i], math.Float64bits(xs[i]),
						got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
				}
			}
			// In-place operation must produce the same bits.
			inplace := append([]float64(nil), xs...)
			vec(inplace, inplace)
			for i := range xs {
				if !bitsEqual(inplace[i], want[i]) {
					t.Fatalf("%s trial=%d in-place: x=%g: got %016x, want %016x",
						name, trial, xs[i], math.Float64bits(inplace[i]), math.Float64bits(want[i]))
				}
			}
		}
	})
}

func TestVExpMatchesMathExp(t *testing.T) {
	testActKernel(t, "VExp", VExp, math.Exp)
}

func TestVSigmoidMatchesSigmoid(t *testing.T) {
	testActKernel(t, "VSigmoid", VSigmoid, Sigmoid)
}

func TestVTanhMatchesMathTanh(t *testing.T) {
	testActKernel(t, "VTanh", VTanh, math.Tanh)
}
