package mathx

// PackedGEMV32 is the f32 mirror of PackedGEMV: a tile-packed read-only
// copy of a Matrix32 for the single-vector product m·x, tiles of `lanes`
// consecutive rows column-major within the tile
// (data[(t*cols+k)*lanes + l] = m[t*lanes+l, k]). The f32 tiles run at full
// native lane width — 16 rows per zmm on AVX-512, 8 per ymm on AVX2 —
// twice the f64 pack's, which is where the f32 tier's GEMV speedup comes
// from. The per-lane association is Dot32's on every tier, so Apply is
// bitwise-identical to Matrix32.MulVec everywhere, including the scalar
// fallback.
type PackedGEMV32 struct {
	lanes int // SIMD width at pack time: 16 (AVX-512), 8 (AVX2), 0 (scalar)
	rows  int
	cols  int
	data  []float32 // tiled rows; row tail (rows % lanes) reads src directly
	src   *Matrix32
	epoch uint64
}

// PackGEMV32 builds the packed f32 layout for the current kernel tier. The
// pack keeps a reference to m for the row tail and the scalar fallback; it
// is valid only while m's values are unchanged.
func PackGEMV32(m *Matrix32) *PackedGEMV32 {
	p := &PackedGEMV32{
		lanes: gemvLanes32(),
		rows:  m.Rows,
		cols:  m.Cols,
		src:   m,
		epoch: simdEpoch.Load(),
	}
	if p.lanes > 0 {
		tiles := p.rows / p.lanes
		p.data = make([]float32, tiles*p.cols*p.lanes)
		idx := 0
		for t := 0; t < tiles; t++ {
			base := t * p.lanes
			for k := 0; k < p.cols; k++ {
				for l := 0; l < p.lanes; l++ {
					p.data[idx] = m.Data[(base+l)*p.cols+k]
					idx++
				}
			}
		}
	}
	return p
}

// Stale reports whether the kernel tier changed since the pack was built.
func (p *PackedGEMV32) Stale() bool { return p.epoch != simdEpoch.Load() }

// Apply computes dst = m·x combined per the mode epilogue (the shared
// Gemv* constants from pack.go, with the same operand-order contract),
// bitwise-identical to the MulVec/MulVecAdd + bias-loop f32 reference.
// bias may be nil for GemvSet/GemvAdd.
func (p *PackedGEMV32) Apply(dst, x, bias []float32, mode int) {
	if len(dst) != p.rows || len(x) != p.cols {
		panic("mathx: f32 packed gemv shape mismatch")
	}
	done := 0
	if p.lanes > 0 {
		tiles := p.rows / p.lanes
		if tiles > 0 && gemv32SIMD(p, dst, x, bias, mode, tiles) {
			done = tiles * p.lanes
		}
	}
	for i := done; i < p.rows; i++ {
		s := Dot32(p.src.Row(i), x)
		switch mode {
		case GemvSet:
			dst[i] = s
		case GemvAdd:
			dst[i] = dst[i] + s
		case GemvAddBias:
			dst[i] = (dst[i] + s) + bias[i]
		default: // GemvSetBias
			dst[i] = s + bias[i]
		}
	}
}
