package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveMulVec(m *Matrix, x []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out[i] += m.At(i, j) * x[j]
		}
	}
	return out
}

func randomMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormScaled(0, 1)
	}
	return m
}

func randomVec(rng *RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormScaled(0, 1)
	}
	return v
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMulVecMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomMatrix(rng, rows, cols)
		x := randomVec(rng, cols)
		got := make([]float64, rows)
		m.MulVec(got, x)
		if want := naiveMulVec(m, x); !almostEqual(got, want, 1e-10) {
			t.Fatalf("MulVec mismatch at %dx%d", rows, cols)
		}
	}
}

func TestMulVecTIsTranspose(t *testing.T) {
	rng := NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomMatrix(rng, rows, cols)
		x := randomVec(rng, rows)
		got := make([]float64, cols)
		m.MulVecT(got, x)
		// Build the explicit transpose and compare.
		mt := NewMatrix(cols, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				mt.Set(j, i, m.At(i, j))
			}
		}
		if want := naiveMulVec(mt, x); !almostEqual(got, want, 1e-10) {
			t.Fatalf("MulVecT mismatch at %dx%d", rows, cols)
		}
	}
}

func TestMulRowsTMatchesMulVec(t *testing.T) {
	// The batched GEMM must be bitwise identical to one GEMV per input row —
	// the batched LSTM inference path relies on this for exact verdict
	// equivalence with the sequential session.
	rng := NewRNG(6)
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		n := 1 + rng.Intn(9)
		m := randomMatrix(rng, rows, cols)
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = randomVec(rng, cols)
		}
		got := make([]float64, n*rows)
		m.MulRowsT(got, xs)
		for i := 0; i < n; i++ {
			want := make([]float64, rows)
			m.MulVec(want, xs[i])
			for j := range want {
				if got[i*rows+j] != want[j] {
					t.Fatalf("MulRowsT row %d element %d = %v, MulVec gives %v",
						i, j, got[i*rows+j], want[j])
				}
			}
		}
	}
}

func TestMulRowsTLargeColumns(t *testing.T) {
	// Exercise the SIMD chunking path (columns beyond one packed chunk)
	// and an odd tail, still requiring bitwise GEMV equality.
	rng := NewRNG(7)
	m := randomMatrix(rng, 9, 531)
	xs := make([][]float64, 5)
	for i := range xs {
		xs[i] = randomVec(rng, 531)
	}
	got := make([]float64, len(xs)*9)
	m.MulRowsT(got, xs)
	for i, x := range xs {
		want := make([]float64, 9)
		m.MulVec(want, x)
		for j := range want {
			if got[i*9+j] != want[j] {
				t.Fatalf("MulRowsT[%d][%d] = %v, MulVec gives %v", i, j, got[i*9+j], want[j])
			}
		}
	}
}

func TestMulRowsTEmptyBatch(t *testing.T) {
	m := NewMatrix(3, 2)
	m.MulRowsT(nil, nil) // zero rows is a no-op, not a panic
}

func TestAddOuter(t *testing.T) {
	rng := NewRNG(3)
	m := NewMatrix(5, 7)
	u, v := randomVec(rng, 5), randomVec(rng, 7)
	m.AddOuter(2, u, v)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			want := 2 * u[i] * v[j]
			if math.Abs(m.At(i, j)-want) > 1e-12 {
				t.Fatalf("AddOuter[%d][%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDotUnrollCorrect(t *testing.T) {
	// Exercise every tail length of the 4-way unroll.
	rng := NewRNG(4)
	for n := 0; n < 17; n++ {
		a, b := randomVec(rng, n), randomVec(rng, n)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); math.Abs(got-want) > 1e-10 {
			t.Fatalf("Dot length %d: got %v want %v", n, got, want)
		}
	}
}

func TestAxpy(t *testing.T) {
	rng := NewRNG(5)
	for n := 0; n < 13; n++ {
		dst, x := randomVec(rng, n), randomVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = dst[i] + 3*x[i]
		}
		Axpy(dst, 3, x)
		if !almostEqual(dst, want, 1e-12) {
			t.Fatalf("Axpy length %d mismatch", n)
		}
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"MulVec":   func() { m.MulVec(make([]float64, 2), make([]float64, 2)) },
		"MulVecT":  func() { m.MulVecT(make([]float64, 2), make([]float64, 2)) },
		"AddOuter": func() { m.AddOuter(1, make([]float64, 3), make([]float64, 3)) },
		"Add":      func() { m.AddInPlace(NewMatrix(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad shape did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{3, 3, 3}, 0}, // first wins ties
		{[]float64{-5, -2, -9}, 1},
	}
	for _, c := range cases {
		if got := ArgMax(c.in); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMeanStdMinMax(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Std(v); math.Abs(s-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s)
	}
	lo, hi := MinMax(v)
	if lo != 2 || hi != 9 {
		t.Errorf("MinMax = (%v, %v)", lo, hi)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestNorm2Property(t *testing.T) {
	// Triangle inequality under concatenation scaling.
	f := func(a []float64, scale float64) bool {
		if len(a) == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		scale = math.Mod(scale, 100)
		scaled := make([]float64, len(a))
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 1000)
			scaled[i] = a[i] * scale
		}
		return math.Abs(Norm2(scaled)-math.Abs(scale)*Norm2(a)) < 1e-6*(1+Norm2(scaled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
