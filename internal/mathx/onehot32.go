package mathx

// Float32 one-hot kernels: the same aligned-group association contract as
// onehot.go, in the f32 tier. Dot32 (and the f32 GEMV/GEMM kernels, which
// replicate it per output element) sums columns in aligned groups of four;
// for a one-hot x the inactive terms drop out exactly, so the gather must
// sum actives left-to-right within each aligned group and add the group
// subtotals to the accumulator in ascending group order to stay
// bitwise-identical to the dense f32 product.

// OneHotDot32 returns Dot32(row, x) for the implicit one-hot vector x that
// is 1 at the columns idx and 0 elsewhere, bitwise-identical to the dense
// f32 product. idx must be strictly ascending and within [0, len(row)).
func OneHotDot32(row []float32, idx []int) float32 {
	n := len(row) &^ 3
	var s float32
	i := 0
	for i < len(idx) {
		j := idx[i]
		if j >= n {
			s += row[j]
			i++
			continue
		}
		g := j&^3 + 4
		t := row[j]
		i++
		for i < len(idx) && idx[i] < g {
			t += row[idx[i]]
			i++
		}
		s += t
	}
	return s
}

// MulVecOneHot computes dst = m·x for the one-hot x described by idx,
// bitwise-identical to m.MulVec against the dense f32 encoding. It is the
// row-major reference for OneHotGather32.
func (m *Matrix32) MulVecOneHot(dst []float32, idx []int) {
	for i := 0; i < m.Rows; i++ {
		dst[i] = OneHotDot32(m.Data[i*m.Cols:(i+1)*m.Cols], idx)
	}
}

// OneHotGather32 computes dst = W·x for the one-hot x described by idx,
// given wt = Wᵀ — the f32 mirror of OneHotGather with the identical
// grouping contract. idx must be strictly ascending and within
// [0, wt.Rows).
func OneHotGather32(dst []float32, wt *Matrix32, idx []int) {
	if len(dst) != wt.Cols {
		panic("mathx: f32 one-hot gather shape mismatch")
	}
	n := wt.Rows &^ 3
	first := true
	i := 0
	for i < len(idx) {
		j := idx[i]
		var cnt int
		if j >= n {
			cnt = 1 // tail actives join the accumulator one by one
		} else {
			g := j&^3 + 4
			cnt = 1
			for i+cnt < len(idx) && idx[i+cnt] < g {
				cnt++
			}
		}
		gatherGroup32(dst, wt, idx[i:i+cnt], first)
		first = false
		i += cnt
	}
	if first {
		Fill32(dst, 0)
	}
}

// gatherGroup32 adds one aligned group's subtotal — the active columns
// summed left-to-right — into dst (or assigns it, for the first group,
// matching the accumulator's zero start). The SIMD prefix computes the
// same per-element expression — subtotal chained left-to-right, then
// dst + subtotal — so it is bitwise-identical to the scalar tail by
// construction (elementwise, nothing reassociates).
func gatherGroup32(dst []float32, wt *Matrix32, idx []int, assign bool) {
	r0 := wt.Row(idx[0])
	r1, r2, r3 := r0, r0, r0
	if len(idx) > 1 {
		r1 = wt.Row(idx[1])
	}
	if len(idx) > 2 {
		r2 = wt.Row(idx[2])
	}
	if len(idx) > 3 {
		r3 = wt.Row(idx[3])
	}
	k := vgroupAdd32SIMD(dst, r0, r1, r2, r3, len(idx), assign)
	switch len(idx) {
	case 1:
		if assign {
			copy(dst[k:], r0[k:len(dst)])
		} else {
			for ; k < len(dst); k++ {
				dst[k] += r0[k]
			}
		}
	case 2:
		if assign {
			for ; k < len(dst); k++ {
				dst[k] = r0[k] + r1[k]
			}
		} else {
			for ; k < len(dst); k++ {
				dst[k] += r0[k] + r1[k]
			}
		}
	case 3:
		if assign {
			for ; k < len(dst); k++ {
				dst[k] = r0[k] + r1[k] + r2[k]
			}
		} else {
			for ; k < len(dst); k++ {
				dst[k] += r0[k] + r1[k] + r2[k]
			}
		}
	default:
		if assign {
			for ; k < len(dst); k++ {
				dst[k] = r0[k] + r1[k] + r2[k] + r3[k]
			}
		} else {
			for ; k < len(dst); k++ {
				dst[k] += r0[k] + r1[k] + r2[k] + r3[k]
			}
		}
	}
}
