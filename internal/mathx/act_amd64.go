//go:build amd64

package mathx

// cpuHasFMA reports CPUID FMA support (leaf 1, ECX bit 12). The vector
// activation kernels mirror archExp's FMA path, which the stdlib only
// takes on FMA hardware, so they engage only where the scalar reference
// itself uses FMA — on anything older both sides fall back to the same
// non-FMA scalar code and stay trivially identical.
func cpuHasFMA() bool

var cpuFMA = cpuHasFMA()

//go:noescape
func vexp4(dst, src *float64, n int) int

//go:noescape
func vsig4(dst, src *float64, n int) int

//go:noescape
func vtanh4(dst, src *float64, n int) int

// actLanes returns the vector width of the activation kernels under the
// current SIMD tier, or 0 when they are disabled (scalar tier, or
// hardware without AVX+FMA).
func actLanes() int {
	if !hasAVX || !cpuFMA {
		return 0
	}
	return 4
}

func vexpSIMD(dst, src []float64) int {
	if actLanes() == 0 || len(src) < 4 {
		return 0
	}
	return vexp4(&dst[0], &src[0], len(src))
}

func vsigSIMD(dst, src []float64) int {
	if actLanes() == 0 || len(src) < 4 {
		return 0
	}
	return vsig4(&dst[0], &src[0], len(src))
}

func vtanhSIMD(dst, src []float64) int {
	if actLanes() == 0 || len(src) < 4 {
		return 0
	}
	return vtanh4(&dst[0], &src[0], len(src))
}
