package mathx

import "fmt"

// This file holds the batched anomaly-score kernels behind the promoted
// window detection levels (PCA reconstruction error, GMM Mahalanobis
// terms). Like MulRowsT for the LSTM, each batched kernel carries a
// bitwise contract with its scalar sibling: every output element is
// accumulated in exactly the scalar kernel's association (the same
// rounded operations in the same order), so a batched engine pass scores
// a stream identically to a sequential session — only faster, because the
// model operands (means, variances, component rows) stream through the
// cache once per tile of four rows instead of once per row.

// ScaledSqDist returns Σ_d (x[d]−mu[d])²/va[d], accumulated sequentially
// over d: the squared Mahalanobis distance for a diagonal covariance.
func ScaledSqDist(x, mu, va []float64) float64 {
	var q float64
	for d := range x {
		diff := x[d] - mu[d]
		q += diff * diff / va[d]
	}
	return q
}

// ScaledSqDistBatch computes dst[i] = ScaledSqDist(xs[i], mu, va) for every
// row, bitwise-identically to the scalar call per row. Rows advance in
// tiles of four so mu and va are loaded once per four distance chains.
func ScaledSqDistBatch(dst []float64, xs [][]float64, mu, va []float64) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("mathx: scaled sqdist batch into %d results for %d rows", len(dst), len(xs)))
	}
	D := len(mu)
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x0, x1, x2, x3 := xs[i][:D], xs[i+1][:D], xs[i+2][:D], xs[i+3][:D]
		var q0, q1, q2, q3 float64
		for d := 0; d < D; d++ {
			m, v := mu[d], va[d]
			d0 := x0[d] - m
			d1 := x1[d] - m
			d2 := x2[d] - m
			d3 := x3[d] - m
			q0 += d0 * d0 / v
			q1 += d1 * d1 / v
			q2 += d2 * d2 / v
			q3 += d3 * d3 / v
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = q0, q1, q2, q3
	}
	for ; i < len(xs); i++ {
		dst[i] = ScaledSqDist(xs[i], mu, va)
	}
}

// ReconResidual returns the squared residual ‖x − PᵀPx‖² of projecting x
// onto the orthonormal rows of p: the PCA-SVD anomaly score of a centered
// sample. proj (len ≥ p.Rows) and recon (len ≥ p.Cols) are caller scratch.
// The association is fixed: one Dot per component row, reconstruction
// accumulated per component in row order via Axpy, then a sequential
// residual sum — ReconResidualBatch reproduces it exactly.
func (p *Matrix) ReconResidual(x, proj, recon []float64) float64 {
	if len(x) != p.Cols || len(proj) < p.Rows || len(recon) < p.Cols {
		panic(fmt.Sprintf("mathx: recon residual shape mismatch (%dx%d by %d, scratch %d/%d)",
			p.Rows, p.Cols, len(x), len(proj), len(recon)))
	}
	recon = recon[:p.Cols]
	for j := 0; j < p.Rows; j++ {
		proj[j] = Dot(p.Row(j), x)
	}
	for d := range recon {
		recon[d] = 0
	}
	for j := 0; j < p.Rows; j++ {
		Axpy(recon, proj[j], p.Row(j))
	}
	var err float64
	for d := range recon {
		diff := x[d] - recon[d]
		err += diff * diff
	}
	return err
}

// ReconResidualBatch computes dst[i] = ReconResidual(xs[i], …) for every
// centered row, bitwise-identically to the scalar call per row. Rows
// advance in tiles of four with the component loops component-major, so
// each component row streams through the cache once per four scores
// instead of once per score. proj needs 4*p.Rows scratch and recon
// 4*p.Cols.
func (p *Matrix) ReconResidualBatch(dst []float64, xs [][]float64, proj, recon []float64) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("mathx: recon residual batch into %d results for %d rows", len(dst), len(xs)))
	}
	if len(proj) < 4*p.Rows || len(recon) < 4*p.Cols {
		panic(fmt.Sprintf("mathx: recon residual batch scratch %d/%d, need %d/%d",
			len(proj), len(recon), 4*p.Rows, 4*p.Cols))
	}
	R, C := p.Rows, p.Cols
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x := [4][]float64{xs[i][:C], xs[i+1][:C], xs[i+2][:C], xs[i+3][:C]}
		pr := [4][]float64{proj[:R], proj[R : 2*R], proj[2*R : 3*R], proj[3*R : 4*R]}
		rc := [4][]float64{recon[:C], recon[C : 2*C], recon[2*C : 3*C], recon[3*C : 4*C]}
		for j := 0; j < R; j++ {
			row := p.Row(j)
			pr[0][j] = Dot(row, x[0])
			pr[1][j] = Dot(row, x[1])
			pr[2][j] = Dot(row, x[2])
			pr[3][j] = Dot(row, x[3])
		}
		for r := 0; r < 4; r++ {
			for d := range rc[r] {
				rc[r][d] = 0
			}
		}
		for j := 0; j < R; j++ {
			row := p.Row(j)
			Axpy(rc[0], pr[0][j], row)
			Axpy(rc[1], pr[1][j], row)
			Axpy(rc[2], pr[2][j], row)
			Axpy(rc[3], pr[3][j], row)
		}
		for r := 0; r < 4; r++ {
			var err float64
			xr, rr := x[r], rc[r]
			for d := 0; d < C; d++ {
				diff := xr[d] - rr[d]
				err += diff * diff
			}
			dst[i+r] = err
		}
	}
	for ; i < len(xs); i++ {
		dst[i] = p.ReconResidual(xs[i], proj[:R], recon[:C])
	}
}
