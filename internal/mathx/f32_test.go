package mathx

import (
	"math"
	"testing"
)

// The f32 tier's numeric contract: one f32 algorithm, implemented
// identically in scalar Go and in the AVX2/AVX-512 kernels, so the three
// kernel tiers are bitwise-identical to each other in float32 (accuracy vs
// f64 is gated separately, at the verdict level). These tests pin that
// contract: every kernel's output under avx512 and avx2 must match the
// scalar tier bit for bit.

func bits32Equal(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

func randVec32(rng *RNG, n int, scale float32) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.Norm()) * scale
	}
	return v
}

func randMatrix32(rng *RNG, r, c int) *Matrix32 {
	m := NewMatrix32(r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.Norm())
	}
	return m
}

// withScalarTier32 runs f under the scalar tier and restores the previous
// overrides.
func withScalarTier32(f func()) {
	prevSIMD := SetSIMDEnabled(false)
	prevAVX512 := SetAVX512Enabled(false)
	defer func() {
		SetAVX512Enabled(prevAVX512)
		SetSIMDEnabled(prevSIMD)
	}()
	f()
}

func TestDot32MatchesScalarChain(t *testing.T) {
	rng := NewRNG(7)
	for _, n := range []int{0, 1, 3, 4, 7, 8, 31, 96, 129} {
		a := randVec32(rng, n, 1)
		b := randVec32(rng, n, 1)
		var want float32
		m := n &^ 3
		for i := 0; i < m; i += 4 {
			want += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
		}
		for i := m; i < n; i++ {
			want += a[i] * b[i]
		}
		if got := Dot32(a, b); !bits32Equal(got, want) {
			t.Fatalf("n=%d: Dot32 = %x, want %x", n, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// TestMulRowsT32TiersBitwise: the batched f32 GEMM must equal the per-row
// scalar MulVec bitwise on every tier, for every batch width (SIMD peels at
// 16 and 8 plus the 4-stream scalar tile and singles).
func TestMulRowsT32TiersBitwise(t *testing.T) {
	rng := NewRNG(11)
	shapes := []struct{ r, c int }{{1, 1}, {3, 5}, {16, 16}, {33, 7}, {128, 138}, {96, 300}}
	widths := []int{1, 3, 4, 7, 8, 9, 15, 16, 17, 24, 33}
	for _, sh := range shapes {
		m := randMatrix32(rng, sh.r, sh.c)
		for _, w := range widths {
			xs := make([][]float32, w)
			for i := range xs {
				xs[i] = randVec32(rng, sh.c, 1)
			}
			want := make([]float32, w*sh.r)
			withScalarTier32(func() {
				for i, x := range xs {
					m.MulVec(want[i*sh.r:(i+1)*sh.r], x)
				}
			})
			forEachTier(t, func(t *testing.T) {
				got := make([]float32, w*sh.r)
				m.MulRowsT(got, xs)
				for i := range got {
					if !bits32Equal(got[i], want[i]) {
						t.Fatalf("%dx%d width %d: elem %d = %x, want %x (tier %s)",
							sh.r, sh.c, w, i, math.Float32bits(got[i]), math.Float32bits(want[i]), SIMDTier())
					}
				}
			})
		}
	}
}

// TestPackedGEMM32TiersBitwise: the row-pair packed GEMM must equal the
// per-row scalar MulVec bitwise on every tier — the AVX-512 pair kernel,
// the odd-final-row Dot32 tail, the >chunk column carry, and the delegated
// remainder paths all preserve the Dot32 association.
func TestPackedGEMM32TiersBitwise(t *testing.T) {
	rng := NewRNG(19)
	shapes := []struct{ r, c int }{{1, 5}, {2, 4}, {3, 5}, {33, 7}, {49, 32}, {128, 138}, {96, 300}}
	widths := []int{1, 7, 8, 9, 15, 16, 17, 24, 33}
	for _, sh := range shapes {
		m := randMatrix32(rng, sh.r, sh.c)
		p := PackGEMM32(m)
		for _, w := range widths {
			xs := make([][]float32, w)
			for i := range xs {
				xs[i] = randVec32(rng, sh.c, 1)
			}
			want := make([]float32, w*sh.r)
			withScalarTier32(func() {
				for i, x := range xs {
					m.MulVec(want[i*sh.r:(i+1)*sh.r], x)
				}
			})
			forEachTier(t, func(t *testing.T) {
				got := make([]float32, w*sh.r)
				p.MulRowsT(got, xs)
				for i := range got {
					if !bits32Equal(got[i], want[i]) {
						t.Fatalf("%dx%d width %d: elem %d = %x, want %x (tier %s)",
							sh.r, sh.c, w, i, math.Float32bits(got[i]), math.Float32bits(want[i]), SIMDTier())
					}
				}
			})
		}
	}
}

// TestVCombine32TiersBitwise: the fused combine must equal the scalar
// (dst+u)+b loop bitwise on every tier, for widths exercising the SIMD
// body and the scalar tail.
func TestVCombine32TiersBitwise(t *testing.T) {
	rng := NewRNG(23)
	for _, n := range []int{1, 7, 8, 9, 96, 128, 131} {
		dst0 := randVec32(rng, n, 1)
		u := randVec32(rng, n, 1)
		b := randVec32(rng, n, 1)
		want := make([]float32, n)
		for i := range want {
			want[i] = (dst0[i] + u[i]) + b[i]
		}
		forEachTier(t, func(t *testing.T) {
			dst := append([]float32(nil), dst0...)
			VCombine32(dst, u, b)
			for i := range dst {
				if !bits32Equal(dst[i], want[i]) {
					t.Fatalf("n=%d elem %d = %x, want %x (tier %s)",
						n, i, math.Float32bits(dst[i]), math.Float32bits(want[i]), SIMDTier())
				}
			}
		})
	}
}

// TestPackedGEMV32TiersBitwise: Apply must match the scalar MulVec plus the
// mode epilogue bitwise on every tier, including the row tail, for all four
// modes.
func TestPackedGEMV32TiersBitwise(t *testing.T) {
	rng := NewRNG(13)
	shapes := []struct{ r, c int }{{1, 4}, {8, 8}, {15, 7}, {16, 32}, {17, 32}, {31, 5}, {64, 138}, {130, 96}}
	for _, sh := range shapes {
		m := randMatrix32(rng, sh.r, sh.c)
		x := randVec32(rng, sh.c, 1)
		bias := randVec32(rng, sh.r, 1)
		prev := randVec32(rng, sh.r, 1)
		mv := make([]float32, sh.r)
		withScalarTier32(func() { m.MulVec(mv, x) })
		want := map[int][]float32{
			GemvSet:     make([]float32, sh.r),
			GemvAdd:     make([]float32, sh.r),
			GemvAddBias: make([]float32, sh.r),
			GemvSetBias: make([]float32, sh.r),
		}
		for i := 0; i < sh.r; i++ {
			want[GemvSet][i] = mv[i]
			want[GemvAdd][i] = prev[i] + mv[i]
			want[GemvAddBias][i] = (prev[i] + mv[i]) + bias[i]
			want[GemvSetBias][i] = mv[i] + bias[i]
		}
		forEachTier(t, func(t *testing.T) {
			p := PackGEMV32(m)
			for _, mode := range []int{GemvSet, GemvAdd, GemvAddBias, GemvSetBias} {
				dst := make([]float32, sh.r)
				copy(dst, prev)
				var b []float32
				if mode == GemvAddBias || mode == GemvSetBias {
					b = bias
				}
				p.Apply(dst, x, b, mode)
				for i := range dst {
					if !bits32Equal(dst[i], want[mode][i]) {
						t.Fatalf("%dx%d mode %d row %d: %x, want %x (tier %s)",
							sh.r, sh.c, mode, i, math.Float32bits(dst[i]), math.Float32bits(want[mode][i]), SIMDTier())
					}
				}
			}
		})
	}
}

// TestPackedGEMV32Stale: a pack built under one tier reports stale after a
// tier flip and still computes correctly through the scalar fallback.
func TestPackedGEMV32Stale(t *testing.T) {
	rng := NewRNG(17)
	m := randMatrix32(rng, 32, 16)
	x := randVec32(rng, 16, 1)
	want := make([]float32, 32)
	withScalarTier32(func() { m.MulVec(want, x) })

	p := PackGEMV32(m)
	prev := SetSIMDEnabled(false)
	defer SetSIMDEnabled(prev)
	if gemvLanes32() != 0 && !p.Stale() {
		t.Fatal("pack not stale after tier flip")
	}
	dst := make([]float32, 32)
	p.Apply(dst, x, nil, GemvSet)
	for i := range dst {
		if !bits32Equal(dst[i], want[i]) {
			t.Fatalf("stale apply row %d: %x, want %x", i, math.Float32bits(dst[i]), math.Float32bits(want[i]))
		}
	}
}

// TestOneHotGather32MatchesMulVec: the f32 gather must be bitwise-identical
// to the dense product against the one-hot encoding, on every tier (the
// gather itself is scalar, but the contract ties it to Dot32's grouping).
func TestOneHotGather32MatchesMulVec(t *testing.T) {
	rng := NewRNG(19)
	for _, sh := range []struct{ r, c int }{{9, 16}, {64, 96}, {138, 128}} {
		w := randMatrix32(rng, sh.c, sh.r) // W: out x in
		wt := w.Transpose()
		for trial := 0; trial < 20; trial++ {
			idx := randomActives(NewRNG(uint64(100*trial+1)), sh.r)
			dense := make([]float32, sh.r)
			for _, j := range idx {
				dense[j] = 1
			}
			want := make([]float32, sh.c)
			w.MulVec(want, dense)
			got := make([]float32, sh.c)
			OneHotGather32(got, wt, idx)
			for i := range got {
				if !bits32Equal(got[i], want[i]) {
					t.Fatalf("trial %d out %d: gather %x, dense %x", trial, i,
						math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
			if got2 := make([]float32, sh.c); true {
				w.MulVecOneHot(got2, idx)
				for i := range got2 {
					if !bits32Equal(got2[i], want[i]) {
						t.Fatalf("MulVecOneHot out %d: %x, want %x", i,
							math.Float32bits(got2[i]), math.Float32bits(want[i]))
					}
				}
			}
		}
	}
}

// TestVAct32TiersBitwise: the f32 activations must be bitwise-identical to
// their scalar references on every tier, including fallback lanes
// mid-slice and the branch boundaries.
func TestVAct32TiersBitwise(t *testing.T) {
	rng := NewRNG(23)
	src := randVec32(rng, 256, 4)
	// Branch boundaries and fallback-triggering values, scattered so some
	// land mid-block: the vector kernels must early-out and hand the rest to
	// the scalar loop.
	special := []float32{0, float32(math.Copysign(0, -1)), 0.625, -0.625, 1, -1,
		44.014845, -44.014845, 44.015, -44.015, 88, -88, 89, -89, 100, -100, 150,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		1e-30, -1e-30, 87.3, -87.3, 127.5, -126.5}
	for i, v := range special {
		src[(i*37)%len(src)] = v
	}
	cases := []struct {
		name   string
		vec    func(dst, src []float32)
		scalar func(float32) float32
	}{
		{"exp", VExp32, Exp32},
		{"sigmoid", VSigmoid32, Sigmoid32},
		{"tanh", VTanh32, Tanh32},
	}
	for _, tc := range cases {
		want := make([]float32, len(src))
		for i, v := range src {
			want[i] = tc.scalar(v)
		}
		forEachTier(t, func(t *testing.T) {
			got := make([]float32, len(src))
			tc.vec(got, src)
			for i := range got {
				if !bits32Equal(got[i], want[i]) {
					t.Fatalf("%s(%v) elem %d = %x, want %x (tier %s)", tc.name,
						src[i], i, math.Float32bits(got[i]), math.Float32bits(want[i]), SIMDTier())
				}
			}
		})
	}
}

// TestAct32Accuracy bounds the f32 activations against the f64 references:
// a few f32 ulps over the ranges the LSTM actually drives them through.
func TestAct32Accuracy(t *testing.T) {
	for x := float32(-20); x <= 20; x += 0.0137 {
		if e64 := math.Exp(float64(x)); e64 > 1e-30 {
			rel := math.Abs(float64(Exp32(x))-e64) / e64
			if rel > 4e-7 {
				t.Fatalf("Exp32(%v): rel err %.3g", x, rel)
			}
		}
		s64 := 1 / (1 + math.Exp(-float64(x)))
		if d := math.Abs(float64(Sigmoid32(x)) - s64); d > 4e-7 {
			t.Fatalf("Sigmoid32(%v): abs err %.3g", x, d)
		}
		t64 := math.Tanh(float64(x))
		if d := math.Abs(float64(Tanh32(x)) - t64); d > 6e-7 {
			t.Fatalf("Tanh32(%v): abs err %.3g", x, d)
		}
	}
	// Saturation and passthrough identities.
	if Tanh32(0) != 0 || math.Signbit(float64(Tanh32(float32(math.Copysign(0, -1))))) != true {
		t.Fatal("Tanh32 does not preserve signed zero")
	}
	if Tanh32(100) != 1 || Tanh32(-100) != -1 {
		t.Fatal("Tanh32 does not saturate to ±1")
	}
	if !math.IsNaN(float64(Tanh32(float32(math.NaN())))) {
		t.Fatal("Tanh32(NaN) != NaN")
	}
	if Sigmoid32(200) != 1 || Sigmoid32(-200) != 0 {
		t.Fatalf("Sigmoid32 tails: %v, %v", Sigmoid32(200), Sigmoid32(-200))
	}
	if Exp32(0) != 1 {
		t.Fatal("Exp32(0) != 1")
	}
	if !math.IsInf(float64(Exp32(1000)), 1) || Exp32(-1000) != 0 {
		t.Fatalf("Exp32 overflow/underflow: %v, %v", Exp32(1000), Exp32(-1000))
	}
}

// TestScoreBatch32MatchesScalar: the f32 batched score kernels must equal
// their scalar siblings bitwise for every batch width.
func TestScoreBatch32MatchesScalar(t *testing.T) {
	rng := NewRNG(29)
	D := 53
	mu := randVec32(rng, D, 1)
	va := make([]float32, D)
	for d := range va {
		va[d] = float32(rng.Float64()) + 0.5
	}
	p := randMatrix32(rng, 6, D)
	proj := make([]float32, 4*p.Rows)
	recon := make([]float32, 4*p.Cols)
	for _, n := range []int{0, 1, 3, 4, 5, 8, 11} {
		xs := make([][]float32, n)
		for i := range xs {
			xs[i] = randVec32(rng, D, 1)
		}
		wantSq := make([]float32, n)
		wantRe := make([]float32, n)
		for i, x := range xs {
			wantSq[i] = ScaledSqDist32(x, mu, va)
			wantRe[i] = p.ReconResidual(x, proj[:p.Rows], recon[:p.Cols])
		}
		gotSq := make([]float32, n)
		ScaledSqDistBatch32(gotSq, xs, mu, va)
		gotRe := make([]float32, n)
		p.ReconResidualBatch(gotRe, xs, proj, recon)
		for i := 0; i < n; i++ {
			if !bits32Equal(gotSq[i], wantSq[i]) {
				t.Fatalf("sqdist n=%d row %d: %x, want %x", n, i,
					math.Float32bits(gotSq[i]), math.Float32bits(wantSq[i]))
			}
			if !bits32Equal(gotRe[i], wantRe[i]) {
				t.Fatalf("recon n=%d row %d: %x, want %x", n, i,
					math.Float32bits(gotRe[i]), math.Float32bits(wantRe[i]))
			}
		}
	}
}

// TestToMatrix32Deterministic: the f64→f32 conversion is a pure elementwise
// rounding — converting twice gives identical bits.
func TestToMatrix32Deterministic(t *testing.T) {
	rng := NewRNG(31)
	m := NewMatrix(17, 23)
	for i := range m.Data {
		m.Data[i] = rng.Norm()
	}
	a, b := ToMatrix32(m), ToMatrix32(m)
	for i := range a.Data {
		if !bits32Equal(a.Data[i], b.Data[i]) {
			t.Fatalf("elem %d differs between conversions", i)
		}
		if want := float32(m.Data[i]); !bits32Equal(a.Data[i], want) {
			t.Fatalf("elem %d: %x, want single rounding %x", i,
				math.Float32bits(a.Data[i]), math.Float32bits(want))
		}
	}
}
