package mathx

import "fmt"

// Float32 mirrors of the batched anomaly-score kernels (scorebatch.go).
// Same contract as the rest of the f32 tier: every output element is
// accumulated in exactly the scalar f32 sibling's association, so batched
// and sequential f32 scoring are bitwise-identical.

// ScaledSqDist32 returns Σ_d (x[d]−mu[d])²/va[d], accumulated sequentially
// over d: the f32 squared Mahalanobis distance for a diagonal covariance.
func ScaledSqDist32(x, mu, va []float32) float32 {
	var q float32
	for d := range x {
		diff := x[d] - mu[d]
		q += diff * diff / va[d]
	}
	return q
}

// ScaledSqDistBatch32 computes dst[i] = ScaledSqDist32(xs[i], mu, va) for
// every row, bitwise-identically to the scalar call per row. Rows advance
// in tiles of four so mu and va are loaded once per four distance chains.
func ScaledSqDistBatch32(dst []float32, xs [][]float32, mu, va []float32) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("mathx: f32 scaled sqdist batch into %d results for %d rows", len(dst), len(xs)))
	}
	D := len(mu)
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x0, x1, x2, x3 := xs[i][:D], xs[i+1][:D], xs[i+2][:D], xs[i+3][:D]
		var q0, q1, q2, q3 float32
		for d := 0; d < D; d++ {
			m, v := mu[d], va[d]
			d0 := x0[d] - m
			d1 := x1[d] - m
			d2 := x2[d] - m
			d3 := x3[d] - m
			q0 += d0 * d0 / v
			q1 += d1 * d1 / v
			q2 += d2 * d2 / v
			q3 += d3 * d3 / v
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = q0, q1, q2, q3
	}
	for ; i < len(xs); i++ {
		dst[i] = ScaledSqDist32(xs[i], mu, va)
	}
}

// ReconResidual returns the f32 squared residual ‖x − PᵀPx‖² of projecting
// x onto the orthonormal rows of p. proj (len ≥ p.Rows) and recon
// (len ≥ p.Cols) are caller scratch. Association mirrors the f64 kernel:
// one Dot32 per component row, reconstruction accumulated per component in
// row order via Axpy32, then a sequential residual sum.
func (p *Matrix32) ReconResidual(x, proj, recon []float32) float32 {
	if len(x) != p.Cols || len(proj) < p.Rows || len(recon) < p.Cols {
		panic(fmt.Sprintf("mathx: f32 recon residual shape mismatch (%dx%d by %d, scratch %d/%d)",
			p.Rows, p.Cols, len(x), len(proj), len(recon)))
	}
	recon = recon[:p.Cols]
	for j := 0; j < p.Rows; j++ {
		proj[j] = Dot32(p.Row(j), x)
	}
	for d := range recon {
		recon[d] = 0
	}
	for j := 0; j < p.Rows; j++ {
		Axpy32(recon, proj[j], p.Row(j))
	}
	var err float32
	for d := range recon {
		diff := x[d] - recon[d]
		err += diff * diff
	}
	return err
}

// ReconResidualBatch computes dst[i] = ReconResidual(xs[i], …) for every
// centered row, bitwise-identically to the scalar call per row, with the
// component loops component-major like the f64 kernel. proj needs
// 4*p.Rows scratch and recon 4*p.Cols.
func (p *Matrix32) ReconResidualBatch(dst []float32, xs [][]float32, proj, recon []float32) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("mathx: f32 recon residual batch into %d results for %d rows", len(dst), len(xs)))
	}
	if len(proj) < 4*p.Rows || len(recon) < 4*p.Cols {
		panic(fmt.Sprintf("mathx: f32 recon residual batch scratch %d/%d, need %d/%d",
			len(proj), len(recon), 4*p.Rows, 4*p.Cols))
	}
	R, C := p.Rows, p.Cols
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x := [4][]float32{xs[i][:C], xs[i+1][:C], xs[i+2][:C], xs[i+3][:C]}
		pr := [4][]float32{proj[:R], proj[R : 2*R], proj[2*R : 3*R], proj[3*R : 4*R]}
		rc := [4][]float32{recon[:C], recon[C : 2*C], recon[2*C : 3*C], recon[3*C : 4*C]}
		for j := 0; j < R; j++ {
			row := p.Row(j)
			pr[0][j] = Dot32(row, x[0])
			pr[1][j] = Dot32(row, x[1])
			pr[2][j] = Dot32(row, x[2])
			pr[3][j] = Dot32(row, x[3])
		}
		for r := 0; r < 4; r++ {
			for d := range rc[r] {
				rc[r][d] = 0
			}
		}
		for j := 0; j < R; j++ {
			row := p.Row(j)
			Axpy32(rc[0], pr[0][j], row)
			Axpy32(rc[1], pr[1][j], row)
			Axpy32(rc[2], pr[2][j], row)
			Axpy32(rc[3], pr[3][j], row)
		}
		for r := 0; r < 4; r++ {
			var err float32
			xr, rr := x[r], rc[r]
			for d := 0; d < C; d++ {
				diff := xr[d] - rr[d]
				err += diff * diff
			}
			dst[i+r] = err
		}
	}
	for ; i < len(xs); i++ {
		dst[i] = p.ReconResidual(xs[i], proj[:R], recon[:C])
	}
}
