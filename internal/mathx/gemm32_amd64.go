//go:build amd64

package mathx

// gemm8f32avx is the AVX2 microkernel behind Matrix32.MulRowsT
// (gemm32_amd64.s): eight streams per ymm lane, Dot32-identical association
// per lane.
//
//go:noescape
func gemm8f32avx(w *float32, stride, rows int, xt *float32, kn int, dst *float32, dstStride int, cont bool)

// gemm16f32avx512 is the AVX-512 microkernel behind Matrix32.MulRowsT:
// sixteen streams per zmm lane, Dot32-identical association per lane.
//
//go:noescape
func gemm16f32avx512(w *float32, stride, rows int, xt *float32, kn int, dst *float32, dstStride int, cont bool)

// gemm8x2f32avx512 is the row-pair AVX-512 microkernel behind
// PackedGEMM32.MulRowsT: eight streams × two adjacent weight rows per zmm
// (lane 2s = stream s row j, lane 2s+1 = stream s row j+1), fed by
// VBROADCASTSD of the packed 64-bit weight pair. Each lane accumulates its
// (stream, row) product chain in Dot32's exact association — the pairing
// only doubles how much work one broadcast feeds, it never reorders a sum.
//
//go:noescape
func gemm8x2f32avx512(wp *float32, stride, pairs int, xt *float32, kn int, dst *float32, dstStride int, cont bool)

// gemv8f32avx runs the packed f32 single-vector product (gemm32_amd64.s):
// tiles of eight output rows per ymm, Dot32-identical association per lane,
// epilogue selected by mode (pack.go's Gemv* constants).
//
//go:noescape
func gemv8f32avx(p *float32, tiles, cols int, x *float32, dst *float32, bias *float32, mode int)

// gemv16f32avx512 is the 512-bit twin of gemv8f32avx: sixteen output rows
// per zmm.
//
//go:noescape
func gemv16f32avx512(p *float32, tiles, cols int, x *float32, dst *float32, bias *float32, mode int)

// vcombine8f32 is the fused elementwise combine kernel (gemm32_amd64.s):
// dst = (dst + u) + b, eight lanes per step, returning how many elements
// it handled (len&^7). Elementwise, so lane width never changes bits.
//
//go:noescape
func vcombine8f32(dst, u, b *float32, n int) int

// vcombine32SIMD runs the fused combine over the SIMD-divisible prefix and
// reports how much it covered; the caller finishes the tail.
func vcombine32SIMD(dst, u, b []float32) int {
	if !hasAVX || len(dst) < 8 {
		return 0
	}
	return vcombine8f32(&dst[0], &u[0], &b[0], len(dst))
}

// vgroupadd8f32 is the one-hot gather group kernel (gemm32_amd64.s):
// dst = [dst +] ((r0 + r1) + r2) + r3 truncated to rows addends, eight
// lanes per step over the 8-divisible prefix; returns the count handled.
//
//go:noescape
func vgroupadd8f32(dst, r0, r1, r2, r3 *float32, rows, n int, assign bool) int

// vgroupAdd32SIMD runs the gather-group combine over the SIMD-divisible
// prefix and reports how much it covered; the caller finishes the tail
// with the identical per-element expression.
func vgroupAdd32SIMD(dst, r0, r1, r2, r3 []float32, rows int, assign bool) int {
	if !hasAVX || len(dst) < 8 {
		return 0
	}
	return vgroupadd8f32(&dst[0], &r0[0], &r1[0], &r2[0], &r3[0], rows, len(dst), assign)
}

// gemvLanes32 returns the f32 packed-GEMV tile height for the effective
// tier — the full native f32 lane width, double gemvLanes's.
func gemvLanes32() int {
	switch {
	case hasAVX512:
		return 16
	case hasAVX:
		return 8
	default:
		return 0
	}
}

// gemv32SIMD dispatches the packed f32 single-vector product to the tier
// the pack was built for; it reports false (pack unusable, caller falls
// back to the scalar rows) when that tier is no longer enabled.
func gemv32SIMD(p *PackedGEMV32, dst, x, bias []float32, mode int, tiles int) bool {
	if p.cols == 0 {
		return false
	}
	bp := &dst[0] // unread by modes without a bias; keeps the asm branch-free
	if bias != nil {
		bp = &bias[0]
	}
	switch p.lanes {
	case 16:
		if !hasAVX512 {
			return false
		}
		gemv16f32avx512(&p.data[0], tiles, p.cols, &x[0], &dst[0], bp, mode)
	case 8:
		if !hasAVX {
			return false
		}
		gemv8f32avx(&p.data[0], tiles, p.cols, &x[0], &dst[0], bp, mode)
	default:
		return false
	}
	return true
}

// gemmChunkK32 is the packed-column chunk size for the f32 GEMM kernels:
// 8 lanes × 256 columns × 4 bytes = 8 KB of stack scratch per call (16 KB
// for the 16-lane kernel).
const gemmChunkK32 = 256

// mulRows8f32SIMD computes the eight-stream block dst(8×R, lane stride R) =
// [xs0;…;xs7]·mᵀ with the AVX2 kernel. Columns beyond gemmChunkK32 are
// processed in aligned chunks with the accumulator carried through dst, so
// the per-element association still matches Dot32 exactly.
func mulRows8f32SIMD(m *Matrix32, dst []float32, xs [][]float32) bool {
	if !hasAVX {
		return false
	}
	R, C := m.Rows, m.Cols
	x0, x1, x2, x3 := xs[0][:C], xs[1][:C], xs[2][:C], xs[3][:C]
	x4, x5, x6, x7 := xs[4][:C], xs[5][:C], xs[6][:C], xs[7][:C]
	var xt [8 * gemmChunkK32]float32
	for kc := 0; kc < C; kc += gemmChunkK32 {
		kn := C - kc
		if kn > gemmChunkK32 {
			kn = gemmChunkK32
		}
		for k := 0; k < kn; k++ {
			xt[8*k] = x0[kc+k]
			xt[8*k+1] = x1[kc+k]
			xt[8*k+2] = x2[kc+k]
			xt[8*k+3] = x3[kc+k]
			xt[8*k+4] = x4[kc+k]
			xt[8*k+5] = x5[kc+k]
			xt[8*k+6] = x6[kc+k]
			xt[8*k+7] = x7[kc+k]
		}
		gemm8f32avx(&m.Data[kc], C, R, &xt[0], kn, &dst[0], R, kc > 0)
	}
	return true
}

// mulRows8x2f32SIMD computes the eight-stream block with the row-pair
// AVX-512 kernel over p's interleaved weights — same chunking and
// association contract as mulRows8f32SIMD at double the rows per pass. An
// odd final weight row is computed in Go with Dot32 itself, which IS the
// contract association.
func mulRows8x2f32SIMD(p *PackedGEMM32, dst []float32, xs [][]float32) bool {
	if !hasAVX512 {
		return false
	}
	R, C := p.m.Rows, p.m.Cols
	var xt [16 * gemmChunkK32]float32
	for kc := 0; kc < C && R >= 2; kc += gemmChunkK32 {
		kn := C - kc
		if kn > gemmChunkK32 {
			kn = gemmChunkK32
		}
		for s := 0; s < 8; s++ {
			x := xs[s][:C]
			for k := 0; k < kn; k++ {
				xt[16*k+2*s] = x[kc+k]
				xt[16*k+2*s+1] = x[kc+k]
			}
		}
		gemm8x2f32avx512(&p.pairs[2*kc], 2*C, R/2, &xt[0], kn, &dst[0], R, kc > 0)
	}
	if R&1 == 1 {
		row := p.m.Data[(R-1)*C : R*C]
		for s := 0; s < 8; s++ {
			dst[s*R+R-1] = Dot32(row, xs[s][:C])
		}
	}
	return true
}

// mulRows16f32SIMD computes the sixteen-stream block dst(16×R, lane stride
// R) = [xs0;…;xs15]·mᵀ with the AVX-512 kernel — same chunking and
// association contract as mulRows8f32SIMD, sixteen accumulator chains per
// weight row.
func mulRows16f32SIMD(m *Matrix32, dst []float32, xs [][]float32) bool {
	if !hasAVX512 {
		return false
	}
	R, C := m.Rows, m.Cols
	var xt [16 * gemmChunkK32]float32
	for kc := 0; kc < C; kc += gemmChunkK32 {
		kn := C - kc
		if kn > gemmChunkK32 {
			kn = gemmChunkK32
		}
		for l := 0; l < 16; l++ {
			x := xs[l][:C]
			for k := 0; k < kn; k++ {
				xt[16*k+l] = x[kc+k]
			}
		}
		gemm16f32avx512(&m.Data[kc], C, R, &xt[0], kn, &dst[0], R, kc > 0)
	}
	return true
}
