//go:build !amd64

package mathx

// Non-amd64 stubs for the f32 SIMD layer: every dispatch reports "not
// handled" so the callers run their scalar paths, which are the f32
// numeric contract's reference implementation. The tier switches and
// epoch machinery live in gemm_noasm.go.

func gemvLanes32() int { return 0 }

func gemv32SIMD(p *PackedGEMV32, dst, x, bias []float32, mode int, tiles int) bool {
	return false
}

func mulRows8f32SIMD(m *Matrix32, dst []float32, xs [][]float32) bool { return false }

func mulRows8x2f32SIMD(p *PackedGEMM32, dst []float32, xs [][]float32) bool { return false }

func vcombine32SIMD(dst, u, b []float32) int { return 0 }

func vgroupAdd32SIMD(dst, r0, r1, r2, r3 []float32, rows int, assign bool) int { return 0 }

func mulRows16f32SIMD(m *Matrix32, dst []float32, xs [][]float32) bool { return false }
