package mathx

import "fmt"

// This file holds the two GEMM variants that back the batched training
// pipeline, siblings of the inference-side MulRowsT:
//
//   - MulRows is the batched input-gradient product dY·W: one MulVecT per
//     stream, restructured so four streams share every weight-row load.
//   - AddOuterSeq is the weight-gradient accumulator ΔW += Σₛ uₛ·vₛᵀ: a
//     sequence of rank-1 updates (Aᵀ·B-shaped when the uₛ/vₛ are stacked as
//     matrices), restructured so the gradient matrix is streamed once per
//     call instead of once per step.
//
// Both guarantee the same headline property as MulRowsT: every output
// element is accumulated in exactly the reference primitive's association —
// a strict sequential chain, one rounded multiply-add per step, no
// data-dependent control flow — so the batched trainer that is built on
// them produces bitwise-identical gradients (and therefore parameters) to
// the per-window reference trainer. The speedup comes purely from loop
// restructuring: a register tile of four independent chains advances
// together, so each streamed vector element is loaded once per four chains
// and the four accumulators hide floating-point add latency, while the
// per-element math is unchanged.
//
// Both share one inner kernel, chain4: four chains with a common streamed
// row sequence. On amd64 with AVX the kernel dispatches to chain4avx
// (gemm_amd64.s); everywhere else (and for ragged tails) the pure-Go tile
// below runs, with identical per-element arithmetic.

// chainChunk bounds the packed scalar buffer of the chain kernels: 4 chains
// x 256 steps = 8 KB of stack scratch per call, mirroring gemmChunkK.
const chainChunk = 256

// MulRows computes dst = X·m where the rows of X are the slices xs:
// dst[i*m.Cols+j] = Σ_k xs[i][k]·m[k,j]. dst is row-major with stride
// m.Cols and must have length len(xs)*m.Cols; every row of xs must have
// length m.Rows.
//
// It is the batched form of MulVecT — the input-gradient product dY·W of
// the backward pass, with the rows of X a batch of upstream gradients —
// and is bitwise identical to calling MulVecT once per row of X: each
// output element starts at zero and accumulates one rounded term per
// weight row, rows ascending. Four streams advance together per weight
// row, so each weight element is loaded once per four chains; that tiling
// (not the arithmetic) is the source of the speedup.
func (m *Matrix) MulRows(dst []float64, xs [][]float64) {
	R, C := m.Rows, m.Cols
	if len(dst) != len(xs)*C {
		panic(fmt.Sprintf("mathx: gemm-T shape mismatch (%d rows of %d into %d)",
			len(xs), C, len(dst)))
	}
	var scal [4 * chainChunk]float64
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x0, x1, x2, x3 := xs[i][:R], xs[i+1][:R], xs[i+2][:R], xs[i+3][:R]
		d := dst[i*C : (i+4)*C]
		Fill(d, 0)
		// Chunk over weight rows; the chain carries through dst between
		// chunks, so the per-element association is unchanged.
		for rc := 0; rc < R; rc += chainChunk {
			rn := R - rc
			if rn > chainChunk {
				rn = chainChunk
			}
			for r := 0; r < rn; r++ {
				scal[4*r] = x0[rc+r]
				scal[4*r+1] = x1[rc+r]
				scal[4*r+2] = x2[rc+r]
				scal[4*r+3] = x3[rc+r]
			}
			chain4(d, scal[:4*rn], m.Data[rc*C:], rn, C)
		}
	}
	for ; i < len(xs); i++ {
		m.MulVecT(dst[i*C:(i+1)*C], xs[i])
	}
}

// AddOuterSeq accumulates a sequence of outer products into m:
// m[i,j] += Σ_s us[s*m.Rows+i] · vs[s*m.Cols+j], terms added strictly in
// ascending s. us and vs are step-major flat buffers holding steps rows of
// length m.Rows and m.Cols respectively.
//
// This is the weight-gradient kernel of the batched trainer (Aᵀ·B-shaped:
// with U and V the stacked step matrices it computes m += Uᵀ·V), and it is
// bitwise identical to calling AddOuter(1, u_s, v_s) once per step in the
// same order: each element's terms are added one at a time onto the
// existing value, with one rounding per multiply and per add. The batched
// trainer feeds each window's timesteps in the reference order (t
// descending), so the accumulated gradient matches the per-window
// reference bitwise while streaming the gradient matrix once per window
// instead of once per timestep.
func (m *Matrix) AddOuterSeq(us, vs []float64, steps int) {
	R, C := m.Rows, m.Cols
	if len(us) < steps*R || len(vs) < steps*C {
		panic(fmt.Sprintf("mathx: outer-seq shape mismatch (%d steps of %dx%d, have %dx%d)",
			steps, R, C, len(us), len(vs)))
	}
	var scal [4 * chainChunk]float64
	i := 0
	for ; i+4 <= R; i += 4 {
		rows := m.Data[i*C : (i+4)*C]
		// Chunk over steps; the chain carries through m between chunks.
		for sc := 0; sc < steps; sc += chainChunk {
			sn := steps - sc
			if sn > chainChunk {
				sn = chainChunk
			}
			for s := 0; s < sn; s++ {
				base := (sc+s)*R + i
				scal[4*s] = us[base]
				scal[4*s+1] = us[base+1]
				scal[4*s+2] = us[base+2]
				scal[4*s+3] = us[base+3]
			}
			chain4(rows, scal[:4*sn], vs[sc*C:], sn, C)
		}
	}
	// Tail rows (R not a multiple of 4): one chain at a time, same
	// association.
	for ; i < R; i++ {
		row := m.Data[i*C : (i+1)*C]
		for s := 0; s < steps; s++ {
			a := us[s*R+i]
			v := vs[s*C : s*C+C]
			for j, x := range v {
				row[j] += a * x
			}
		}
	}
}

// chain4 advances four accumulator chains together: for r = 0..3 and
// j = 0..c-1, dst[r*c+j] += Σ_s scal[4*s+r]·vp[s*c+j], each element's terms
// added one at a time in ascending s. dst holds the four chains
// contiguously (stride c); vp holds the streamed rows contiguously
// (stride c).
func chain4(dst []float64, scal, vp []float64, steps, c int) {
	if chain4SIMD(dst, scal, vp, steps, c) {
		return
	}
	chain4cols(dst, scal, vp, steps, c, 0)
}

// chain4cols is the pure-Go chain tile, covering columns [j0, c). Each
// element update is a single mul-add expression — the same shape as Axpy's
// inner statement — so scalar and SIMD paths round identically.
func chain4cols(dst []float64, scal, vp []float64, steps, c, j0 int) {
	if c == 0 {
		return
	}
	d0 := dst[0:c]
	d1 := dst[c : 2*c]
	d2 := dst[2*c : 3*c]
	d3 := dst[3*c : 4*c]
	for s := 0; s < steps; s++ {
		a0, a1, a2, a3 := scal[4*s], scal[4*s+1], scal[4*s+2], scal[4*s+3]
		row := vp[s*c : s*c+c]
		for j := j0; j < c; j++ {
			x := row[j]
			d0[j] += a0 * x
			d1[j] += a1 * x
			d2[j] += a2 * x
			d3[j] += a3 * x
		}
	}
}
