package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSoftmaxIsDistribution verifies the paper's guarantee: outputs form a
// probability distribution with Σ Pr = 1 (§V-A-1), for arbitrary finite
// logits. Extremely spread logits may underflow individual entries to
// exactly 0 in float64, which the distribution property tolerates.
func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(z []float64) bool {
		if len(z) == 0 {
			return true
		}
		for i := range z {
			if math.IsNaN(z[i]) || math.IsInf(z[i], 0) {
				return true
			}
			z[i] = math.Mod(z[i], 500) // keep magnitudes representable
		}
		p := make([]float64, len(z))
		Softmax(p, z)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	z := []float64{1000, 1001, 999}
	p := make([]float64, 3)
	Softmax(p, z)
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", p)
		}
	}
	if ArgMax(p) != 1 {
		t.Errorf("argmax should be preserved: %v", p)
	}
}

func TestSoftmaxOrderPreserving(t *testing.T) {
	z := []float64{0.1, 2.5, -3, 2.4}
	p := make([]float64, len(z))
	Softmax(p, z)
	for i := range z {
		for j := range z {
			if z[i] < z[j] && p[i] >= p[j] {
				t.Fatalf("order not preserved: z=%v p=%v", z, p)
			}
		}
	}
}

func TestLogSumExp(t *testing.T) {
	z := []float64{1, 2, 3}
	want := math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3))
	if got := LogSumExp(z); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogSumExp = %v, want %v", got, want)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("empty LogSumExp should be -inf")
	}
	// Stability.
	if got := LogSumExp([]float64{1e4, 1e4}); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("LogSumExp overflow: %v", got)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(1000); s != 1 {
		t.Errorf("Sigmoid(1000) = %v", s)
	}
	if s := Sigmoid(-1000); s != 0 {
		t.Errorf("Sigmoid(-1000) = %v", s)
	}
	// Symmetry: σ(-x) = 1 - σ(x).
	for _, x := range []float64{0.1, 1, 3, 7} {
		if d := Sigmoid(-x) + Sigmoid(x) - 1; math.Abs(d) > 1e-12 {
			t.Errorf("sigmoid symmetry violated at %v: %v", x, d)
		}
	}
}

func TestTopK(t *testing.T) {
	p := []float64{0.1, 0.5, 0.05, 0.2, 0.15}
	if got := TopK(p, 3); got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("TopK = %v", got)
	}
	if got := TopK(p, 99); len(got) != len(p) {
		t.Errorf("TopK clamp failed: %v", got)
	}
	if got := TopK(p, 0); got != nil {
		t.Errorf("TopK(0) = %v", got)
	}
}

// TestTopKMonotone: S(k) ⊆ S(k+1), the property the detection function F_t
// relies on (larger k can only pass more packages).
func TestTopKMonotone(t *testing.T) {
	rng := NewRNG(9)
	for trial := 0; trial < 50; trial++ {
		p := make([]float64, 20)
		for i := range p {
			p[i] = rng.Float64()
		}
		prev := map[int]bool{}
		for k := 1; k <= len(p); k++ {
			cur := TopK(p, k)
			if len(cur) != k {
				t.Fatalf("TopK(%d) returned %d items", k, len(cur))
			}
			for i, idx := range cur {
				if i < k-1 && !prevContains(prev, idx) && k > 1 && i < k-1 {
					// all but the newly admitted element must be in S(k-1)
					t.Fatalf("S(%d) not superset of S(%d)", k, k-1)
				}
			}
			prev = map[int]bool{}
			for _, idx := range cur {
				prev[idx] = true
			}
		}
	}
}

func prevContains(m map[int]bool, i int) bool { return m[i] }

func TestTopKLargeK(t *testing.T) {
	// Exercise the sort path (k > 16).
	rng := NewRNG(10)
	p := make([]float64, 100)
	for i := range p {
		p[i] = rng.Float64()
	}
	got := TopK(p, 50)
	for i := 1; i < len(got); i++ {
		if p[got[i-1]] < p[got[i]] {
			t.Fatalf("TopK not sorted descending at %d", i)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.N != 10 {
		t.Fatalf("N = %d", h.N)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
	// Out-of-range values clamp into boundary bins.
	h.Add(-100)
	h.Add(+100)
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Errorf("boundary clamping failed: %v", h.Counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	if h.N != 3 {
		t.Fatalf("constant-value histogram dropped samples: %d", h.N)
	}
	if h.Mode() < h.Min || h.Mode() > h.Max {
		t.Errorf("mode %v outside range [%v,%v]", h.Mode(), h.Min, h.Max)
	}
}
