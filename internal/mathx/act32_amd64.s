// Vectorized f32 exp / sigmoid / tanh microkernels.
//
// Each kernel reproduces the scalar f32 reference in act32.go lane for
// lane: the same Cephes-style expf core (k = rint(x*log2e) via VCVTPS2DQ's
// round-to-nearest-even, two-constant ln2 reduction, degree-5 Horner
// polynomial, 2^k scaling through the exponent field) and the same branch
// arithmetic for sigmoid and tanh, evaluated per lane and blended by the
// scalar conditions. Every arithmetic instruction is a plain
// VMULPS/VADDPS/VSUBPS/VDIVPS — no FMA — so the lanes are bitwise-identical
// to the scalar mul/add chains.
//
// Lanes the scalar reference routes through its f64 fallback (non-finite
// inputs, biased result exponent outside (0, 255)) are detected through the
// exponent-range mask — VCVTPS2DQ's indefinite value 0x80000000 naturally
// fails it — and the exp/sigmoid kernels stop at the first block containing
// one, returning how many elements they completed so the Go wrapper
// finishes with the scalar reference. tanh needs no early-out: its exp
// argument 2|x| only leaves the fast path on lanes the saturation or
// passthrough blends overwrite anyway.
//
// All constants are the exact bit patterns of the act32.go values.

#include "textflag.h"

DATA f32LOG2E<>+0(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+4(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+8(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+12(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+16(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+20(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+24(SB)/4, $0x3FB8AA3B
DATA f32LOG2E<>+28(SB)/4, $0x3FB8AA3B
GLOBL f32LOG2E<>+0(SB), RODATA, $32

DATA f32LN2HI<>+0(SB)/4, $0x3F318000
DATA f32LN2HI<>+4(SB)/4, $0x3F318000
DATA f32LN2HI<>+8(SB)/4, $0x3F318000
DATA f32LN2HI<>+12(SB)/4, $0x3F318000
DATA f32LN2HI<>+16(SB)/4, $0x3F318000
DATA f32LN2HI<>+20(SB)/4, $0x3F318000
DATA f32LN2HI<>+24(SB)/4, $0x3F318000
DATA f32LN2HI<>+28(SB)/4, $0x3F318000
GLOBL f32LN2HI<>+0(SB), RODATA, $32

DATA f32LN2LO<>+0(SB)/4, $0xB95E8083
DATA f32LN2LO<>+4(SB)/4, $0xB95E8083
DATA f32LN2LO<>+8(SB)/4, $0xB95E8083
DATA f32LN2LO<>+12(SB)/4, $0xB95E8083
DATA f32LN2LO<>+16(SB)/4, $0xB95E8083
DATA f32LN2LO<>+20(SB)/4, $0xB95E8083
DATA f32LN2LO<>+24(SB)/4, $0xB95E8083
DATA f32LN2LO<>+28(SB)/4, $0xB95E8083
GLOBL f32LN2LO<>+0(SB), RODATA, $32

DATA f32EC0<>+0(SB)/4, $0x39506967
DATA f32EC0<>+4(SB)/4, $0x39506967
DATA f32EC0<>+8(SB)/4, $0x39506967
DATA f32EC0<>+12(SB)/4, $0x39506967
DATA f32EC0<>+16(SB)/4, $0x39506967
DATA f32EC0<>+20(SB)/4, $0x39506967
DATA f32EC0<>+24(SB)/4, $0x39506967
DATA f32EC0<>+28(SB)/4, $0x39506967
GLOBL f32EC0<>+0(SB), RODATA, $32

DATA f32EC1<>+0(SB)/4, $0x3AB743CE
DATA f32EC1<>+4(SB)/4, $0x3AB743CE
DATA f32EC1<>+8(SB)/4, $0x3AB743CE
DATA f32EC1<>+12(SB)/4, $0x3AB743CE
DATA f32EC1<>+16(SB)/4, $0x3AB743CE
DATA f32EC1<>+20(SB)/4, $0x3AB743CE
DATA f32EC1<>+24(SB)/4, $0x3AB743CE
DATA f32EC1<>+28(SB)/4, $0x3AB743CE
GLOBL f32EC1<>+0(SB), RODATA, $32

DATA f32EC2<>+0(SB)/4, $0x3C088908
DATA f32EC2<>+4(SB)/4, $0x3C088908
DATA f32EC2<>+8(SB)/4, $0x3C088908
DATA f32EC2<>+12(SB)/4, $0x3C088908
DATA f32EC2<>+16(SB)/4, $0x3C088908
DATA f32EC2<>+20(SB)/4, $0x3C088908
DATA f32EC2<>+24(SB)/4, $0x3C088908
DATA f32EC2<>+28(SB)/4, $0x3C088908
GLOBL f32EC2<>+0(SB), RODATA, $32

DATA f32EC3<>+0(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+4(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+8(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+12(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+16(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+20(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+24(SB)/4, $0x3D2AA9C1
DATA f32EC3<>+28(SB)/4, $0x3D2AA9C1
GLOBL f32EC3<>+0(SB), RODATA, $32

DATA f32EC4<>+0(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+4(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+8(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+12(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+16(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+20(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+24(SB)/4, $0x3E2AAAAA
DATA f32EC4<>+28(SB)/4, $0x3E2AAAAA
GLOBL f32EC4<>+0(SB), RODATA, $32

DATA f32EC5<>+0(SB)/4, $0x3F000000
DATA f32EC5<>+4(SB)/4, $0x3F000000
DATA f32EC5<>+8(SB)/4, $0x3F000000
DATA f32EC5<>+12(SB)/4, $0x3F000000
DATA f32EC5<>+16(SB)/4, $0x3F000000
DATA f32EC5<>+20(SB)/4, $0x3F000000
DATA f32EC5<>+24(SB)/4, $0x3F000000
DATA f32EC5<>+28(SB)/4, $0x3F000000
GLOBL f32EC5<>+0(SB), RODATA, $32

DATA f32ONE<>+0(SB)/4, $0x3F800000
DATA f32ONE<>+4(SB)/4, $0x3F800000
DATA f32ONE<>+8(SB)/4, $0x3F800000
DATA f32ONE<>+12(SB)/4, $0x3F800000
DATA f32ONE<>+16(SB)/4, $0x3F800000
DATA f32ONE<>+20(SB)/4, $0x3F800000
DATA f32ONE<>+24(SB)/4, $0x3F800000
DATA f32ONE<>+28(SB)/4, $0x3F800000
GLOBL f32ONE<>+0(SB), RODATA, $32

DATA f32TWO<>+0(SB)/4, $0x40000000
DATA f32TWO<>+4(SB)/4, $0x40000000
DATA f32TWO<>+8(SB)/4, $0x40000000
DATA f32TWO<>+12(SB)/4, $0x40000000
DATA f32TWO<>+16(SB)/4, $0x40000000
DATA f32TWO<>+20(SB)/4, $0x40000000
DATA f32TWO<>+24(SB)/4, $0x40000000
DATA f32TWO<>+28(SB)/4, $0x40000000
GLOBL f32TWO<>+0(SB), RODATA, $32

DATA f32MID<>+0(SB)/4, $0x3F200000
DATA f32MID<>+4(SB)/4, $0x3F200000
DATA f32MID<>+8(SB)/4, $0x3F200000
DATA f32MID<>+12(SB)/4, $0x3F200000
DATA f32MID<>+16(SB)/4, $0x3F200000
DATA f32MID<>+20(SB)/4, $0x3F200000
DATA f32MID<>+24(SB)/4, $0x3F200000
DATA f32MID<>+28(SB)/4, $0x3F200000
GLOBL f32MID<>+0(SB), RODATA, $32

DATA f32BIG<>+0(SB)/4, $0x42300F34
DATA f32BIG<>+4(SB)/4, $0x42300F34
DATA f32BIG<>+8(SB)/4, $0x42300F34
DATA f32BIG<>+12(SB)/4, $0x42300F34
DATA f32BIG<>+16(SB)/4, $0x42300F34
DATA f32BIG<>+20(SB)/4, $0x42300F34
DATA f32BIG<>+24(SB)/4, $0x42300F34
DATA f32BIG<>+28(SB)/4, $0x42300F34
GLOBL f32BIG<>+0(SB), RODATA, $32

DATA f32TC0<>+0(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+4(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+8(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+12(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+16(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+20(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+24(SB)/4, $0xBBBAF0EA
DATA f32TC0<>+28(SB)/4, $0xBBBAF0EA
GLOBL f32TC0<>+0(SB), RODATA, $32

DATA f32TC1<>+0(SB)/4, $0x3CA9134E
DATA f32TC1<>+4(SB)/4, $0x3CA9134E
DATA f32TC1<>+8(SB)/4, $0x3CA9134E
DATA f32TC1<>+12(SB)/4, $0x3CA9134E
DATA f32TC1<>+16(SB)/4, $0x3CA9134E
DATA f32TC1<>+20(SB)/4, $0x3CA9134E
DATA f32TC1<>+24(SB)/4, $0x3CA9134E
DATA f32TC1<>+28(SB)/4, $0x3CA9134E
GLOBL f32TC1<>+0(SB), RODATA, $32

DATA f32TC2<>+0(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+4(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+8(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+12(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+16(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+20(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+24(SB)/4, $0xBD5C1E2D
DATA f32TC2<>+28(SB)/4, $0xBD5C1E2D
GLOBL f32TC2<>+0(SB), RODATA, $32

DATA f32TC3<>+0(SB)/4, $0x3E088393
DATA f32TC3<>+4(SB)/4, $0x3E088393
DATA f32TC3<>+8(SB)/4, $0x3E088393
DATA f32TC3<>+12(SB)/4, $0x3E088393
DATA f32TC3<>+16(SB)/4, $0x3E088393
DATA f32TC3<>+20(SB)/4, $0x3E088393
DATA f32TC3<>+24(SB)/4, $0x3E088393
DATA f32TC3<>+28(SB)/4, $0x3E088393
GLOBL f32TC3<>+0(SB), RODATA, $32

DATA f32TC4<>+0(SB)/4, $0xBEAAAA99
DATA f32TC4<>+4(SB)/4, $0xBEAAAA99
DATA f32TC4<>+8(SB)/4, $0xBEAAAA99
DATA f32TC4<>+12(SB)/4, $0xBEAAAA99
DATA f32TC4<>+16(SB)/4, $0xBEAAAA99
DATA f32TC4<>+20(SB)/4, $0xBEAAAA99
DATA f32TC4<>+24(SB)/4, $0xBEAAAA99
DATA f32TC4<>+28(SB)/4, $0xBEAAAA99
GLOBL f32TC4<>+0(SB), RODATA, $32

DATA f32ABS<>+0(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+4(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+8(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+12(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+16(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+20(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+24(SB)/4, $0x7FFFFFFF
DATA f32ABS<>+28(SB)/4, $0x7FFFFFFF
GLOBL f32ABS<>+0(SB), RODATA, $32

DATA f32SGN<>+0(SB)/4, $0x80000000
DATA f32SGN<>+4(SB)/4, $0x80000000
DATA f32SGN<>+8(SB)/4, $0x80000000
DATA f32SGN<>+12(SB)/4, $0x80000000
DATA f32SGN<>+16(SB)/4, $0x80000000
DATA f32SGN<>+20(SB)/4, $0x80000000
DATA f32SGN<>+24(SB)/4, $0x80000000
DATA f32SGN<>+28(SB)/4, $0x80000000
GLOBL f32SGN<>+0(SB), RODATA, $32

DATA f32BIAS<>+0(SB)/4, $0x0000007F
DATA f32BIAS<>+4(SB)/4, $0x0000007F
DATA f32BIAS<>+8(SB)/4, $0x0000007F
DATA f32BIAS<>+12(SB)/4, $0x0000007F
DATA f32BIAS<>+16(SB)/4, $0x0000007F
DATA f32BIAS<>+20(SB)/4, $0x0000007F
DATA f32BIAS<>+24(SB)/4, $0x0000007F
DATA f32BIAS<>+28(SB)/4, $0x0000007F
GLOBL f32BIAS<>+0(SB), RODATA, $32

DATA f32EMAX<>+0(SB)/4, $0x000000FF
DATA f32EMAX<>+4(SB)/4, $0x000000FF
DATA f32EMAX<>+8(SB)/4, $0x000000FF
DATA f32EMAX<>+12(SB)/4, $0x000000FF
DATA f32EMAX<>+16(SB)/4, $0x000000FF
DATA f32EMAX<>+20(SB)/4, $0x000000FF
DATA f32EMAX<>+24(SB)/4, $0x000000FF
DATA f32EMAX<>+28(SB)/4, $0x000000FF
GLOBL f32EMAX<>+0(SB), RODATA, $32

// EXPCORE8F32 computes Y0 = Exp32(Y0) on eight lanes, mirroring the scalar
// fast path instruction for instruction (mul/add only). Clobbers Y1-Y3.
// MASK receives an 8-bit lane mask: bit i set iff lane i stayed on the
// fast path (biased result exponent strictly inside (0, 255); NaN and
// out-of-range inputs fall out through VCVTPS2DQ's indefinite value).
#define EXPCORE8F32(MASK) \
	VMULPS    f32LOG2E<>(SB), Y0, Y1 \
	VCVTPS2DQ Y1, Y1                 \
	VCVTDQ2PS Y1, Y2                 \
	VMULPS    f32LN2HI<>(SB), Y2, Y3 \
	VSUBPS    Y3, Y0, Y0             \
	VMULPS    f32LN2LO<>(SB), Y2, Y3 \
	VSUBPS    Y3, Y0, Y0             \
	VMOVUPS   f32EC0<>(SB), Y3       \
	VMULPS    Y0, Y3, Y3             \
	VADDPS    f32EC1<>(SB), Y3, Y3   \
	VMULPS    Y0, Y3, Y3             \
	VADDPS    f32EC2<>(SB), Y3, Y3   \
	VMULPS    Y0, Y3, Y3             \
	VADDPS    f32EC3<>(SB), Y3, Y3   \
	VMULPS    Y0, Y3, Y3             \
	VADDPS    f32EC4<>(SB), Y3, Y3   \
	VMULPS    Y0, Y3, Y3             \
	VADDPS    f32EC5<>(SB), Y3, Y3   \
	VMULPS    Y0, Y0, Y2             \
	VMULPS    Y2, Y3, Y3             \
	VADDPS    Y0, Y3, Y3             \
	VADDPS    f32ONE<>(SB), Y3, Y0   \
	VPADDD    f32BIAS<>(SB), Y1, Y1  \
	VPXOR     Y2, Y2, Y2             \
	VPCMPGTD  Y2, Y1, Y3             \
	VMOVDQU   f32EMAX<>(SB), Y2      \
	VPCMPGTD  Y1, Y2, Y2             \
	VPAND     Y2, Y3, Y2             \
	VMOVMSKPS Y2, MASK               \
	VPSLLD    $23, Y1, Y1            \
	VMULPS    Y1, Y0, Y0

// func vexp8f32(dst, src *float32, n int) int
// Exponentiates src[0:n] into dst eight lanes at a time; returns the
// number of leading elements completed (a multiple of 8). Stops early at
// the first block with a fallback lane, leaving src untouched from there
// so the caller can finish in place with Exp32.
TEXT ·vexp8f32(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	SUBQ $7, CX

vexp8loop:
	CMPQ AX, CX
	JGE  vexp8done
	VMOVUPS (SI)(AX*4), Y0
	EXPCORE8F32(DX)
	CMPL DX, $0xFF
	JNE  vexp8done
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  vexp8loop

vexp8done:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func vsig8f32(dst, src *float32, n int) int
// Logistic sigmoid via the shared exp core: e = Exp32(-|x|), then
// 1/(1+e) for x >= 0 and e/(1+e) otherwise — the exact two branches of
// Sigmoid32, selected by blend. Early-out contract matches vexp8f32.
TEXT ·vsig8f32(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	SUBQ $7, CX

vsig8loop:
	CMPQ AX, CX
	JGE  vsig8done
	VMOVUPS (SI)(AX*4), Y4
	VANDPS  f32ABS<>(SB), Y4, Y0
	VORPS   f32SGN<>(SB), Y0, Y0
	EXPCORE8F32(DX)
	CMPL DX, $0xFF
	JNE  vsig8done
	VADDPS  f32ONE<>(SB), Y0, Y1
	VXORPS  Y2, Y2, Y2
	VCMPPS  $0x0D, Y2, Y4, Y3
	VMOVUPS f32ONE<>(SB), Y2
	VBLENDVPS Y3, Y2, Y0, Y2
	VDIVPS  Y1, Y2, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  vsig8loop

vsig8done:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func vtanh8f32(dst, src *float32, n int) int
// Hyperbolic tangent, mirroring Tanh32's branches per lane: |x| > 44.01
// gives copysign(1, x); |x| >= 0.625 gives 1 - 2/(Exp32(2|x|)+1) with the
// sign reapplied; otherwise the odd polynomial, with x == 0 passed
// through. The exp core's fallback lanes all fall in the saturated branch
// (2|x| <= 88.03 on the middle branch can never overflow), so every block
// completes; the return value only reflects the vector tail.
TEXT ·vtanh8f32(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	SUBQ $7, CX

vtanh8loop:
	CMPQ AX, CX
	JGE  vtanh8done
	VMOVUPS (SI)(AX*4), Y4
	VANDPS  f32ABS<>(SB), Y4, Y5
	VMULPS  f32TWO<>(SB), Y5, Y0
	EXPCORE8F32(DX)
	VADDPS  f32ONE<>(SB), Y0, Y1
	VMOVUPS f32TWO<>(SB), Y2
	VDIVPS  Y1, Y2, Y2
	VMOVUPS f32ONE<>(SB), Y1
	VSUBPS  Y2, Y1, Y1
	VANDPS  f32SGN<>(SB), Y4, Y6
	VXORPS  Y6, Y1, Y1
	VMULPS  Y4, Y4, Y2
	VMOVUPS f32TC0<>(SB), Y3
	VMULPS  Y2, Y3, Y3
	VADDPS  f32TC1<>(SB), Y3, Y3
	VMULPS  Y2, Y3, Y3
	VADDPS  f32TC2<>(SB), Y3, Y3
	VMULPS  Y2, Y3, Y3
	VADDPS  f32TC3<>(SB), Y3, Y3
	VMULPS  Y2, Y3, Y3
	VADDPS  f32TC4<>(SB), Y3, Y3
	VMULPS  Y2, Y3, Y0
	VMULPS  Y4, Y0, Y0
	VADDPS  Y4, Y0, Y0
	VCMPPS  $0x0D, f32MID<>(SB), Y5, Y3
	VBLENDVPS Y3, Y1, Y0, Y0
	VCMPPS  $0x0E, f32BIG<>(SB), Y5, Y3
	VMOVUPS f32ONE<>(SB), Y1
	VORPS   Y6, Y1, Y1
	VBLENDVPS Y3, Y1, Y0, Y0
	VXORPS  Y1, Y1, Y1
	VCMPPS  $0x00, Y1, Y4, Y3
	VBLENDVPS Y3, Y4, Y0, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  vtanh8loop

vtanh8done:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  noavx2
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1 << 5), BX
	JZ   noavx2
	MOVB $1, ret+0(FP)
	RET
noavx2:
	MOVB $0, ret+0(FP)
	RET
