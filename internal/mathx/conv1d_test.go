package mathx

import (
	"fmt"
	"testing"
)

// naiveConv1D is the obvious reference: per position, per filter, the
// grouped Dot over the borrowed window plus bias — the exact association
// Conv1D promises.
func naiveConv1D(dst []float64, w *Matrix, bias, x []float64, chans int) {
	f := w.Rows
	positions := len(dst) / f
	for p := 0; p < positions; p++ {
		win := x[p*chans : p*chans+w.Cols]
		for i := 0; i < f; i++ {
			s := Dot(w.Row(i), win)
			if bias != nil {
				s += bias[i]
			}
			dst[p*f+i] = s
		}
	}
}

// TestConv1DMatchesNaive: Conv1D must be bitwise-identical to the per-row
// Dot reference on every kernel tier, across filter counts that exercise
// the 8-wide, 4-wide and scalar GEMM paths, with and without bias.
func TestConv1DMatchesNaive(t *testing.T) {
	rng := NewRNG(11)
	for _, tc := range []struct {
		chans, kernel, seq, filters int
	}{
		{17, 2, 4, 32},
		{17, 3, 4, 7},
		{5, 2, 9, 1},
		{3, 1, 16, 13},
	} {
		w := NewMatrix(tc.filters, tc.kernel*tc.chans)
		for i := range w.Data {
			w.Data[i] = rng.Range(-1, 1)
		}
		bias := make([]float64, tc.filters)
		for i := range bias {
			bias[i] = rng.Range(-1, 1)
		}
		x := make([]float64, tc.seq*tc.chans)
		for i := range x {
			x[i] = rng.Range(-2, 2)
		}
		positions := tc.seq - tc.kernel // predictor shape: stop early
		if positions <= 0 {
			positions = 1
		}
		name := fmt.Sprintf("f=%d_k=%d", tc.filters, tc.kernel)
		t.Run(name, func(t *testing.T) {
			want := make([]float64, positions*tc.filters)
			naiveConv1D(want, w, bias, x, tc.chans)
			wantNB := make([]float64, positions*tc.filters)
			naiveConv1D(wantNB, w, nil, x, tc.chans)
			forEachTier(t, func(t *testing.T) {
				got := make([]float64, positions*tc.filters)
				Conv1D(got, w, bias, x, tc.chans)
				for i := range got {
					if !bitsEqual(got[i], want[i]) {
						t.Fatalf("Conv1D[%d] = %v, want %v", i, got[i], want[i])
					}
				}
				Conv1D(got, w, nil, x, tc.chans)
				for i := range got {
					if !bitsEqual(got[i], wantNB[i]) {
						t.Fatalf("Conv1D no-bias [%d] = %v, want %v", i, got[i], wantNB[i])
					}
				}
			})
		})
	}
}

// TestConv1DBatchMatchesSequential: the stacked batch conv must reproduce
// the sequential Conv1D bit-for-bit per sample, on every tier, regardless
// of batch width — the property the engine's batched recon dispatch
// rests on.
func TestConv1DBatchMatchesSequential(t *testing.T) {
	rng := NewRNG(23)
	const chans, kernel, seq, filters = 17, 2, 4, 32
	positions := seq - kernel
	w := NewMatrix(filters, kernel*chans)
	for i := range w.Data {
		w.Data[i] = rng.Range(-1, 1)
	}
	bias := make([]float64, filters)
	for i := range bias {
		bias[i] = rng.Range(-1, 1)
	}
	for _, n := range []int{1, 2, 5, 17} {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = make([]float64, seq*chans)
			for j := range xs[i] {
				xs[i][j] = rng.Range(-2, 2)
			}
		}
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			forEachTier(t, func(t *testing.T) {
				got := make([]float64, n*positions*filters)
				Conv1DBatch(got, w, bias, xs, chans, positions, nil)
				want := make([]float64, positions*filters)
				for i := range xs {
					Conv1D(want, w, bias, xs[i], chans)
					for j := range want {
						if !bitsEqual(got[i*positions*filters+j], want[j]) {
							t.Fatalf("sample %d elem %d: batch %v, sequential %v",
								i, j, got[i*positions*filters+j], want[j])
						}
					}
				}
			})
		})
	}
}
