//go:build !amd64

package mathx

// mulRows4SIMD reports that no SIMD kernel is available on this
// architecture; mulRowsT falls back to the scalar register tile.
func mulRows4SIMD(m *Matrix, dst []float64, x0, x1, x2, x3 []float64) bool {
	return false
}
