//go:build !amd64

package mathx

// mulRows4SIMD reports that no SIMD kernel is available on this
// architecture; mulRowsT falls back to the scalar register tile.
func mulRows4SIMD(m *Matrix, dst []float64, x0, x1, x2, x3 []float64) bool {
	return false
}

// mulRows8SIMD reports that no SIMD kernel is available on this
// architecture; MulRowsT falls back to the four-stream scalar tile.
func mulRows8SIMD(m *Matrix, dst []float64, xs [][]float64) bool {
	return false
}

// chain4SIMD reports that no SIMD kernel is available on this architecture;
// chain4 falls back to the scalar tile.
func chain4SIMD(dst []float64, scal, vp []float64, steps, c int) bool {
	return false
}

// gemvLanes reports a zero tile height: PackGEMV keeps no packed data and
// Apply always runs the scalar per-row Dot path.
func gemvLanes() int { return 0 }

// gemvSIMD reports that no packed-GEMV kernel is available.
func gemvSIMD(p *PackedGEMV, dst, x, bias []float64, mode int, tiles int) bool {
	return false
}

// SetSIMDEnabled is a no-op without SIMD kernels; it reports false (the
// previous — and only — state).
func SetSIMDEnabled(on bool) bool {
	return false
}

// SetAVX512Enabled is a no-op without SIMD kernels; it reports false (the
// previous — and only — state).
func SetAVX512Enabled(on bool) bool {
	return false
}

// SIMDTier names the only kernel tier on this architecture.
func SIMDTier() string { return "scalar" }
