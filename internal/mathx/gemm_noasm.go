//go:build !amd64

package mathx

// mulRows4SIMD reports that no SIMD kernel is available on this
// architecture; mulRowsT falls back to the scalar register tile.
func mulRows4SIMD(m *Matrix, dst []float64, x0, x1, x2, x3 []float64) bool {
	return false
}

// chain4SIMD reports that no SIMD kernel is available on this architecture;
// chain4 falls back to the scalar tile.
func chain4SIMD(dst []float64, scal, vp []float64, steps, c int) bool {
	return false
}

// SetSIMDEnabled is a no-op without SIMD kernels; it reports false (the
// previous — and only — state).
func SetSIMDEnabled(on bool) bool {
	return false
}
