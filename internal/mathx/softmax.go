package mathx

import (
	"math"
	"sort"
)

// Softmax writes the softmax of z into dst (which may alias z). It is
// numerically stable: exponents are shifted by max(z) so overflow cannot
// occur. The result is a probability vector: every element lies in (0, 1)
// and the elements sum to 1 (paper §V-A-1).
func Softmax(dst, z []float64) {
	if len(dst) != len(z) {
		panic("mathx: softmax shape mismatch")
	}
	if len(z) == 0 {
		return
	}
	m := z[ArgMax(z)]
	var sum float64
	for i, v := range z {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(z_i)) computed stably.
func LogSumExp(z []float64) float64 {
	if len(z) == 0 {
		return math.Inf(-1)
	}
	m := z[ArgMax(z)]
	var sum float64
	for _, v := range z {
		sum += math.Exp(v - m)
	}
	return m + math.Log(sum)
}

// Sigmoid returns the logistic function 1/(1+e^-x), clamping the argument to
// avoid overflow in exp.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// TopK returns the indices of the k largest elements of p in descending
// order of value. Ties are broken by lower index for determinism. k is
// clamped to len(p).
func TopK(p []float64, k int) []int {
	if k > len(p) {
		k = len(p)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is O(n*k); for the small k (≤ 10) used by the
	// detector this beats a full sort of the 600-wide signature vocabulary.
	if k <= 16 {
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(idx); j++ {
				if p[idx[j]] > p[idx[best]] ||
					(p[idx[j]] == p[idx[best]] && idx[j] < idx[best]) {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
		}
		return idx[:k]
	}
	sort.Slice(idx, func(a, b int) bool {
		if p[idx[a]] != p[idx[b]] {
			return p[idx[a]] > p[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// Histogram is a fixed-width binned histogram over [Min, Max]. Values outside
// the range are clamped into the boundary bins, matching the paper's Fig. 4
// rendering of long-tailed features.
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram builds a histogram of values with the given number of bins.
// The range defaults to [min(values), max(values)].
func NewHistogram(values []float64, bins int) *Histogram {
	lo, hi := MinMax(values)
	if lo == hi {
		hi = lo + 1 // avoid zero-width range
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, bins)}
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// Add records a single observation.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	if bins == 0 {
		return
	}
	i := int(float64(bins) * (v - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.N++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}
