package mathx

import "sync/atomic"

// simdEpoch is bumped by every kernel-tier override (SetSIMDEnabled,
// SetAVX512Enabled) so lazily packed weight layouts built under one tier can
// detect that the tier changed and rebuild. Weight *mutation* is a separate
// concern: callers that mutate a packed matrix must drop their PackedGEMV
// and re-pack (see nn's invalidation hooks).
var simdEpoch atomic.Uint64

// SIMDEpoch returns the current kernel-tier epoch.
func SIMDEpoch() uint64 { return simdEpoch.Load() }

// PackedGEMV is a tile-packed read-only copy of a Matrix for the
// single-vector product m·x, laid out so SIMD kernels can vectorize across
// output rows: tiles of `lanes` consecutive rows, column-major within the
// tile (data[(t*cols+k)*lanes + l] = m[t*lanes+l, k]). One ymm/zmm lane per
// output row turns the GEMV into dense vertical multiply-adds with
// contiguous stores — the per-lane summation association is exactly Dot's
// (aligned groups of four columns summed left-to-right, sequential tail),
// so Apply is bitwise-identical to MulVec on every tier, including the
// scalar fallback (lanes == 0), which simply calls Dot per row.
type PackedGEMV struct {
	lanes int // SIMD width at pack time: 8 (AVX-512), 4 (AVX2), 0 (scalar)
	rows  int
	cols  int
	data  []float64 // tiled rows; row tail (rows % lanes) reads src directly
	src   *Matrix
	epoch uint64
}

// Apply epilogue modes. The associations match the dense reference paths:
// GemvAdd computes dst + dot (MulVecAdd), GemvAddBias (dst + dot) + bias
// (MulVecAdd followed by a bias loop), GemvSetBias dot + bias (MulVec
// followed by a bias loop).
const (
	GemvSet = iota
	GemvAdd
	GemvAddBias
	GemvSetBias
)

// PackGEMV builds the packed layout for the current kernel tier. The pack
// keeps a reference to m for the row tail and the scalar fallback; it is
// valid only while m's values are unchanged — mutate m and the pack must be
// dropped.
func PackGEMV(m *Matrix) *PackedGEMV {
	p := &PackedGEMV{
		lanes: gemvLanes(),
		rows:  m.Rows,
		cols:  m.Cols,
		src:   m,
		epoch: simdEpoch.Load(),
	}
	if p.lanes > 0 {
		tiles := p.rows / p.lanes
		p.data = make([]float64, tiles*p.cols*p.lanes)
		idx := 0
		for t := 0; t < tiles; t++ {
			base := t * p.lanes
			for k := 0; k < p.cols; k++ {
				for l := 0; l < p.lanes; l++ {
					p.data[idx] = m.Data[(base+l)*p.cols+k]
					idx++
				}
			}
		}
	}
	return p
}

// Stale reports whether the kernel tier changed since the pack was built
// (the pack still computes identical bits, but would run the wrong tier's
// kernel — rebuild to honor the override).
func (p *PackedGEMV) Stale() bool { return p.epoch != simdEpoch.Load() }

// Apply computes dst = m·x combined per the mode epilogue, bitwise-identical
// to the MulVec/MulVecAdd + bias-loop reference. bias may be nil for
// GemvSet/GemvAdd.
func (p *PackedGEMV) Apply(dst, x, bias []float64, mode int) {
	if len(dst) != p.rows || len(x) != p.cols {
		panic("mathx: packed gemv shape mismatch")
	}
	done := 0
	if p.lanes > 0 {
		tiles := p.rows / p.lanes
		if tiles > 0 && gemvSIMD(p, dst, x, bias, mode, tiles) {
			done = tiles * p.lanes
		}
	}
	for i := done; i < p.rows; i++ {
		s := Dot(p.src.Row(i), x)
		switch mode {
		case GemvSet:
			dst[i] = s
		case GemvAdd:
			dst[i] = dst[i] + s
		case GemvAddBias:
			dst[i] = (dst[i] + s) + bias[i]
		default: // GemvSetBias
			dst[i] = s + bias[i]
		}
	}
}
