// AVX kernel for the batched GEMM (MulRowsT): four input rows (streams)
// advance together, one ymm lane per stream. Each lane reproduces exactly
// the scalar Dot association — groups of four summed left-to-right into the
// accumulator, then a sequential tail — so the vectorized result is bitwise
// identical to MulVec per row. VMULPD/VADDPD are elementwise IEEE double
// multiply/add: no FMA contraction, no cross-lane reduction.

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  noavx
	// XCR0 bits 1 and 2: XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func gemm4avx(w *float64, stride, rows int, xt *float64, kn int, dst *float64, dstStride int, cont bool)
//
// For each of rows weight rows: acc(4 lanes) = dst lanes if cont else 0;
// then for kn packed columns of xt (layout xt[4*k+lane]) accumulate
// acc += w[k]*xt[k] in Dot's group-of-four association; store acc back to
// the four lanes dst[lane*dstStride + j].
TEXT ·gemm4avx(SB), NOSPLIT, $0-57
	MOVQ    w+0(FP), SI        // w row pointer (advances per row)
	MOVQ    stride+8(FP), AX
	SHLQ    $3, AX             // w row stride in bytes
	MOVQ    rows+16(FP), R8
	MOVQ    xt+24(FP), DX
	MOVQ    kn+32(FP), R9
	MOVQ    dst+40(FP), DI
	MOVQ    dstStride+48(FP), R10
	SHLQ    $3, R10            // lane stride in bytes
	MOVBLZX cont+56(FP), R11
	XORQ    R13, R13           // j: row index

rowloop:
	CMPQ R13, R8
	JGE  done
	LEAQ (DI)(R13*8), R15      // &dst[j], lane 0
	LEAQ (R15)(R10*1), R14     // lane 1; lanes 2,3 are (R15/R14)(R10*2)

	TESTQ R11, R11
	JZ    zeroacc
	VMOVSD  (R15), X0
	VMOVHPD (R14), X0, X0
	VMOVSD  (R15)(R10*2), X1
	VMOVHPD (R14)(R10*2), X1, X1
	VINSERTF128 $1, X1, Y0, Y0
	JMP  accready
zeroacc:
	VXORPD Y0, Y0, Y0
accready:

	MOVQ SI, BX                // w walker
	MOVQ DX, CX                // xt walker
	MOVQ R9, R12               // remaining columns

groups:
	CMPQ R12, $4
	JLT  tail
	// t = ((w0*x0 + w1*x1) + w2*x2) + w3*x3, one lane per stream.
	VBROADCASTSD (BX), Y1
	VMULPD       (CX), Y1, Y2
	VBROADCASTSD 8(BX), Y1
	VMULPD       32(CX), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VBROADCASTSD 16(BX), Y1
	VMULPD       64(CX), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VBROADCASTSD 24(BX), Y1
	VMULPD       96(CX), Y1, Y3
	VADDPD       Y3, Y2, Y2
	// acc += t
	VADDPD Y2, Y0, Y0
	ADDQ   $32, BX
	ADDQ   $128, CX
	SUBQ   $4, R12
	JMP    groups

tail:
	TESTQ R12, R12
	JZ    store
	VBROADCASTSD (BX), Y1
	VMULPD       (CX), Y1, Y2
	VADDPD       Y2, Y0, Y0
	ADDQ  $8, BX
	ADDQ  $32, CX
	DECQ  R12
	JMP   tail

store:
	VEXTRACTF128 $1, Y0, X1
	VMOVSD  X0, (R15)
	VMOVHPD X0, (R14)
	VMOVSD  X1, (R15)(R10*2)
	VMOVHPD X1, (R14)(R10*2)

	ADDQ AX, SI
	INCQ R13
	JMP  rowloop

done:
	VZEROUPPER
	RET

// func chain4avx(dst *float64, scal *float64, vp *float64, steps, n, c int)
//
// Four accumulator chains advance together over the vectorizable columns
// [0, n): for r = 0..3, j in a 4-wide ymm tile, acc(r,j) is loaded from
// dst[r*c+j], then for each of steps rows acc += scal[4*s+r]*vp[s*c+j]
// (VMULPD + VADDPD: one rounding per multiply and per add, no FMA, no
// cross-lane reduction — the exact association of the scalar tile), and the
// accumulators are stored back. n and c are in elements; n is a multiple of
// four and the caller handles the c % 4 column tail.
TEXT ·chain4avx(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ scal+8(FP), DX
	MOVQ vp+16(FP), SI
	MOVQ steps+24(FP), R8
	MOVQ n+32(FP), R9
	SHLQ $3, R9                // vector-column end in bytes
	MOVQ c+40(FP), R10
	SHLQ $3, R10               // row stride in bytes
	XORQ R13, R13              // j offset in bytes

jloop:
	CMPQ R13, R9
	JGE  done
	LEAQ (DI)(R13*1), AX       // row 0 tile
	LEAQ (AX)(R10*1), R14      // row 1 tile; rows 2,3 via (R10*2)
	VMOVUPD (AX), Y0
	VMOVUPD (R14), Y1
	VMOVUPD (AX)(R10*2), Y2
	VMOVUPD (R14)(R10*2), Y3

	MOVQ DX, BX                // scal walker
	LEAQ (SI)(R13*1), CX       // vp walker
	MOVQ R8, R12               // remaining steps

sloop:
	VMOVUPD      (CX), Y6
	VBROADCASTSD (BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y0, Y0
	VBROADCASTSD 8(BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y1, Y1
	VBROADCASTSD 16(BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y2, Y2
	VBROADCASTSD 24(BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y3, Y3
	ADDQ $32, BX
	ADDQ R10, CX
	DECQ R12
	JNZ  sloop

	VMOVUPD Y0, (AX)
	VMOVUPD Y1, (R14)
	VMOVUPD Y2, (AX)(R10*2)
	VMOVUPD Y3, (R14)(R10*2)
	ADDQ $32, R13
	JMP  jloop

done:
	VZEROUPPER
	RET
