// AVX kernel for the batched GEMM (MulRowsT): four input rows (streams)
// advance together, one ymm lane per stream. Each lane reproduces exactly
// the scalar Dot association — groups of four summed left-to-right into the
// accumulator, then a sequential tail — so the vectorized result is bitwise
// identical to MulVec per row. VMULPD/VADDPD are elementwise IEEE double
// multiply/add: no FMA contraction, no cross-lane reduction.

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  noavx
	// XCR0 bits 1 and 2: XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func cpuHasAVX512() bool
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	// Leaf 7 must exist.
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  noavx512
	MOVL $1, AX
	CPUID
	// Need OSXSAVE (ECX bit 27) before XGETBV is legal.
	ANDL $(1 << 27), CX
	JZ   noavx512
	// XCR0 bits 1,2 (XMM/YMM) and 5,6,7 (opmask, ZMM0-15 upper,
	// ZMM16-31): the full AVX-512 register state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  noavx512
	// CPUID.(EAX=7,ECX=0):EBX bit 16: AVX512F.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1 << 16), BX
	JZ   noavx512
	MOVB $1, ret+0(FP)
	RET
noavx512:
	MOVB $0, ret+0(FP)
	RET

// func gemm4avx(w *float64, stride, rows int, xt *float64, kn int, dst *float64, dstStride int, cont bool)
//
// For each of rows weight rows: acc(4 lanes) = dst lanes if cont else 0;
// then for kn packed columns of xt (layout xt[4*k+lane]) accumulate
// acc += w[k]*xt[k] in Dot's group-of-four association; store acc back to
// the four lanes dst[lane*dstStride + j].
TEXT ·gemm4avx(SB), NOSPLIT, $0-57
	MOVQ    w+0(FP), SI        // w row pointer (advances per row)
	MOVQ    stride+8(FP), AX
	SHLQ    $3, AX             // w row stride in bytes
	MOVQ    rows+16(FP), R8
	MOVQ    xt+24(FP), DX
	MOVQ    kn+32(FP), R9
	MOVQ    dst+40(FP), DI
	MOVQ    dstStride+48(FP), R10
	SHLQ    $3, R10            // lane stride in bytes
	MOVBLZX cont+56(FP), R11
	XORQ    R13, R13           // j: row index

rowloop:
	CMPQ R13, R8
	JGE  done
	LEAQ (DI)(R13*8), R15      // &dst[j], lane 0
	LEAQ (R15)(R10*1), R14     // lane 1; lanes 2,3 are (R15/R14)(R10*2)

	TESTQ R11, R11
	JZ    zeroacc
	VMOVSD  (R15), X0
	VMOVHPD (R14), X0, X0
	VMOVSD  (R15)(R10*2), X1
	VMOVHPD (R14)(R10*2), X1, X1
	VINSERTF128 $1, X1, Y0, Y0
	JMP  accready
zeroacc:
	VXORPD Y0, Y0, Y0
accready:

	MOVQ SI, BX                // w walker
	MOVQ DX, CX                // xt walker
	MOVQ R9, R12               // remaining columns

groups:
	CMPQ R12, $4
	JLT  tail
	// t = ((w0*x0 + w1*x1) + w2*x2) + w3*x3, one lane per stream.
	VBROADCASTSD (BX), Y1
	VMULPD       (CX), Y1, Y2
	VBROADCASTSD 8(BX), Y1
	VMULPD       32(CX), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VBROADCASTSD 16(BX), Y1
	VMULPD       64(CX), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VBROADCASTSD 24(BX), Y1
	VMULPD       96(CX), Y1, Y3
	VADDPD       Y3, Y2, Y2
	// acc += t
	VADDPD Y2, Y0, Y0
	ADDQ   $32, BX
	ADDQ   $128, CX
	SUBQ   $4, R12
	JMP    groups

tail:
	TESTQ R12, R12
	JZ    store
	VBROADCASTSD (BX), Y1
	VMULPD       (CX), Y1, Y2
	VADDPD       Y2, Y0, Y0
	ADDQ  $8, BX
	ADDQ  $32, CX
	DECQ  R12
	JMP   tail

store:
	VEXTRACTF128 $1, Y0, X1
	VMOVSD  X0, (R15)
	VMOVHPD X0, (R14)
	VMOVSD  X1, (R15)(R10*2)
	VMOVHPD X1, (R14)(R10*2)

	ADDQ AX, SI
	INCQ R13
	JMP  rowloop

done:
	VZEROUPPER
	RET

// func chain4avx(dst *float64, scal *float64, vp *float64, steps, n, c int)
//
// Four accumulator chains advance together over the vectorizable columns
// [0, n): for r = 0..3, j in a 4-wide ymm tile, acc(r,j) is loaded from
// dst[r*c+j], then for each of steps rows acc += scal[4*s+r]*vp[s*c+j]
// (VMULPD + VADDPD: one rounding per multiply and per add, no FMA, no
// cross-lane reduction — the exact association of the scalar tile), and the
// accumulators are stored back. n and c are in elements; n is a multiple of
// four and the caller handles the c % 4 column tail.
TEXT ·chain4avx(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ scal+8(FP), DX
	MOVQ vp+16(FP), SI
	MOVQ steps+24(FP), R8
	MOVQ n+32(FP), R9
	SHLQ $3, R9                // vector-column end in bytes
	MOVQ c+40(FP), R10
	SHLQ $3, R10               // row stride in bytes
	XORQ R13, R13              // j offset in bytes

jloop:
	CMPQ R13, R9
	JGE  done
	LEAQ (DI)(R13*1), AX       // row 0 tile
	LEAQ (AX)(R10*1), R14      // row 1 tile; rows 2,3 via (R10*2)
	VMOVUPD (AX), Y0
	VMOVUPD (R14), Y1
	VMOVUPD (AX)(R10*2), Y2
	VMOVUPD (R14)(R10*2), Y3

	MOVQ DX, BX                // scal walker
	LEAQ (SI)(R13*1), CX       // vp walker
	MOVQ R8, R12               // remaining steps

sloop:
	VMOVUPD      (CX), Y6
	VBROADCASTSD (BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y0, Y0
	VBROADCASTSD 8(BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y1, Y1
	VBROADCASTSD 16(BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y2, Y2
	VBROADCASTSD 24(BX), Y4
	VMULPD       Y6, Y4, Y5
	VADDPD       Y5, Y3, Y3
	ADDQ $32, BX
	ADDQ R10, CX
	DECQ R12
	JNZ  sloop

	VMOVUPD Y0, (AX)
	VMOVUPD Y1, (R14)
	VMOVUPD Y2, (AX)(R10*2)
	VMOVUPD Y3, (R14)(R10*2)
	ADDQ $32, R13
	JMP  jloop

done:
	VZEROUPPER
	RET

// func gemm8avx512(w *float64, stride, rows int, xt *float64, kn int, dst *float64, dstStride int, cont bool)
//
// The 512-bit twin of gemm4avx: eight streams per zmm lane, packed layout
// xt[8*k+lane]. Per weight row: acc(8 lanes) = dst lanes if cont else 0;
// for kn packed columns accumulate acc += w[k]*xt[k] in Dot's
// group-of-four association; store acc back to dst[lane*dstStride + j].
// VMULPD/VADDPD on zmm are still elementwise IEEE double ops — no FMA
// contraction, no cross-lane reduction — so each lane is bitwise-identical
// to the scalar Dot chain.
TEXT ·gemm8avx512(SB), NOSPLIT, $0-57
	MOVQ    w+0(FP), SI        // w row pointer (advances per row)
	MOVQ    stride+8(FP), AX
	SHLQ    $3, AX             // w row stride in bytes
	MOVQ    rows+16(FP), R8
	MOVQ    xt+24(FP), DX
	MOVQ    kn+32(FP), R9
	MOVQ    dst+40(FP), DI
	MOVQ    dstStride+48(FP), R10
	SHLQ    $3, R10            // lane stride in bytes
	MOVBLZX cont+56(FP), R11
	XORQ    R13, R13           // j: row index

rowloop8:
	CMPQ R13, R8
	JGE  done8
	LEAQ (DI)(R13*8), R15      // &dst[j], lane 0
	LEAQ (R15)(R10*1), R14     // lane 1; lanes 2,3 via (R10*2)

	TESTQ R11, R11
	JZ    zeroacc8
	// Gather the eight strided lanes: pairs into xmm, halves into ymm,
	// ymm halves into the zmm accumulator.
	VMOVSD  (R15), X0
	VMOVHPD (R14), X0, X0
	VMOVSD  (R15)(R10*2), X2
	VMOVHPD (R14)(R10*2), X2, X2
	VINSERTF128 $1, X2, Y0, Y0
	LEAQ (R15)(R10*4), BX      // lane 4 base
	LEAQ (R14)(R10*4), CX      // lane 5 base
	VMOVSD  (BX), X1
	VMOVHPD (CX), X1, X1
	VMOVSD  (BX)(R10*2), X2
	VMOVHPD (CX)(R10*2), X2, X2
	VINSERTF128 $1, X2, Y1, Y1
	VINSERTF64X4 $1, Y1, Z0, Z0
	JMP  accready8
zeroacc8:
	VPXORQ Z0, Z0, Z0
accready8:

	MOVQ SI, BX                // w walker
	MOVQ DX, CX                // xt walker
	MOVQ R9, R12               // remaining columns

groups8:
	CMPQ R12, $4
	JLT  tail8
	// t = ((w0*x0 + w1*x1) + w2*x2) + w3*x3, one lane per stream.
	VBROADCASTSD (BX), Z1
	VMULPD       (CX), Z1, Z2
	VBROADCASTSD 8(BX), Z1
	VMULPD       64(CX), Z1, Z3
	VADDPD       Z3, Z2, Z2
	VBROADCASTSD 16(BX), Z1
	VMULPD       128(CX), Z1, Z3
	VADDPD       Z3, Z2, Z2
	VBROADCASTSD 24(BX), Z1
	VMULPD       192(CX), Z1, Z3
	VADDPD       Z3, Z2, Z2
	// acc += t
	VADDPD Z2, Z0, Z0
	ADDQ   $32, BX
	ADDQ   $256, CX
	SUBQ   $4, R12
	JMP    groups8

tail8:
	TESTQ R12, R12
	JZ    store8
	VBROADCASTSD (BX), Z1
	VMULPD       (CX), Z1, Z2
	VADDPD       Z2, Z0, Z0
	ADDQ  $8, BX
	ADDQ  $64, CX
	DECQ  R12
	JMP   tail8

store8:
	// Scatter the eight lanes back through the same strided addresses.
	VEXTRACTF64X4 $1, Z0, Y1   // lanes 4-7
	VEXTRACTF128  $1, Y0, X2   // lanes 2,3
	VMOVSD  X0, (R15)
	VMOVHPD X0, (R14)
	VMOVSD  X2, (R15)(R10*2)
	VMOVHPD X2, (R14)(R10*2)
	LEAQ (R15)(R10*4), BX
	LEAQ (R14)(R10*4), CX
	VEXTRACTF128 $1, Y1, X2    // lanes 6,7
	VMOVSD  X1, (BX)
	VMOVHPD X1, (CX)
	VMOVSD  X2, (BX)(R10*2)
	VMOVHPD X2, (CX)(R10*2)

	ADDQ AX, SI
	INCQ R13
	JMP  rowloop8

done8:
	VZEROUPPER
	RET

// func gemv4avx(p *float64, tiles, cols int, x *float64, dst *float64, bias *float64, mode int)
//
// Packed single-vector product: p holds tiles of four consecutive output
// rows, column-major within the tile (see mathx.PackGEMV), so each ymm lane
// is one output row and the stores are contiguous. Per tile: acc = 0; for
// the vector's columns in Dot's group-of-four association accumulate
// acc += x[k]*p[k]; then the mode epilogue (0: dst=acc, 1: dst=dst+acc,
// 2: dst=(dst+acc)+bias, 3: dst=acc+bias — additions in exactly that
// operand order) and a contiguous store. p advances continuously across
// tiles; x rewinds per tile.
TEXT ·gemv4avx(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), SI           // packed walker (continuous)
	MOVQ tiles+8(FP), R8
	MOVQ cols+16(FP), R9
	MOVQ x+24(FP), DX
	MOVQ dst+32(FP), DI        // advances one tile per iteration
	MOVQ bias+40(FP), R14
	MOVQ mode+48(FP), R11

tileloop4:
	TESTQ R8, R8
	JZ    done4v
	VXORPD Y0, Y0, Y0
	MOVQ   DX, CX              // x walker
	MOVQ   R9, R12             // remaining columns

groups4v:
	CMPQ R12, $4
	JLT  tail4v
	// t = ((x0*p0 + x1*p1) + x2*p2) + x3*p3 per lane (output row).
	VBROADCASTSD (CX), Y1
	VMULPD       (SI), Y1, Y2
	VBROADCASTSD 8(CX), Y1
	VMULPD       32(SI), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VBROADCASTSD 16(CX), Y1
	VMULPD       64(SI), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VBROADCASTSD 24(CX), Y1
	VMULPD       96(SI), Y1, Y3
	VADDPD       Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	ADDQ   $128, SI
	ADDQ   $32, CX
	SUBQ   $4, R12
	JMP    groups4v

tail4v:
	TESTQ R12, R12
	JZ    epi4v
	VBROADCASTSD (CX), Y1
	VMULPD       (SI), Y1, Y2
	VADDPD       Y2, Y0, Y0
	ADDQ  $32, SI
	ADDQ  $8, CX
	DECQ  R12
	JMP   tail4v

epi4v:
	CMPQ R11, $0
	JE   store4v
	CMPQ R11, $3
	JE   bias4v
	// modes 1,2: acc = dst + acc (dst is the first operand).
	VMOVUPD (DI), Y1
	VADDPD  Y0, Y1, Y0
	CMPQ R11, $1
	JE   store4v
bias4v:
	// modes 2,3: acc = acc + bias (acc is the first operand).
	VMOVUPD (R14), Y1
	VADDPD  Y1, Y0, Y0
store4v:
	VMOVUPD Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, R14
	DECQ R8
	JMP  tileloop4

done4v:
	VZEROUPPER
	RET

// func gemv8avx512(p *float64, tiles, cols int, x *float64, dst *float64, bias *float64, mode int)
//
// The 512-bit twin of gemv4avx: tiles of eight output rows per zmm, same
// association and epilogue contract.
TEXT ·gemv8avx512(SB), NOSPLIT, $0-56
	MOVQ p+0(FP), SI
	MOVQ tiles+8(FP), R8
	MOVQ cols+16(FP), R9
	MOVQ x+24(FP), DX
	MOVQ dst+32(FP), DI
	MOVQ bias+40(FP), R14
	MOVQ mode+48(FP), R11

tileloop8v:
	TESTQ R8, R8
	JZ    done8v
	VPXORQ Z0, Z0, Z0
	MOVQ   DX, CX
	MOVQ   R9, R12

groups8v:
	CMPQ R12, $4
	JLT  tail8v
	VBROADCASTSD (CX), Z1
	VMULPD       (SI), Z1, Z2
	VBROADCASTSD 8(CX), Z1
	VMULPD       64(SI), Z1, Z3
	VADDPD       Z3, Z2, Z2
	VBROADCASTSD 16(CX), Z1
	VMULPD       128(SI), Z1, Z3
	VADDPD       Z3, Z2, Z2
	VBROADCASTSD 24(CX), Z1
	VMULPD       192(SI), Z1, Z3
	VADDPD       Z3, Z2, Z2
	VADDPD Z2, Z0, Z0
	ADDQ   $256, SI
	ADDQ   $32, CX
	SUBQ   $4, R12
	JMP    groups8v

tail8v:
	TESTQ R12, R12
	JZ    epi8v
	VBROADCASTSD (CX), Z1
	VMULPD       (SI), Z1, Z2
	VADDPD       Z2, Z0, Z0
	ADDQ  $64, SI
	ADDQ  $8, CX
	DECQ  R12
	JMP   tail8v

epi8v:
	CMPQ R11, $0
	JE   store8v
	CMPQ R11, $3
	JE   bias8v
	VMOVUPD (DI), Z1
	VADDPD  Z0, Z1, Z0
	CMPQ R11, $1
	JE   store8v
bias8v:
	VMOVUPD (R14), Z1
	VADDPD  Z1, Z0, Z0
store8v:
	VMOVUPD Z0, (DI)
	ADDQ $64, DI
	ADDQ $64, R14
	DECQ R8
	JMP  tileloop8v

done8v:
	VZEROUPPER
	RET
