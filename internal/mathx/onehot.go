package mathx

// One-hot kernels: the LSTM's level-1 inputs are concatenated one-hot
// blocks (one active column per discretized feature, plus an optional noise
// flag), so the input projection W·x is a column gather, not a matrix
// product. The kernels here compute that gather without materializing the
// dense vector, while reproducing the dense kernels' per-element summation
// association bit for bit.
//
// The association contract: Dot (and therefore MulVec, MulRowsT and the
// SIMD GEMM kernels, which all replicate Dot per output element) sums the
// columns in aligned groups of four — s += ((t0+t1)+t2)+t3 per group, then
// a sequential tail. For a one-hot x the inactive terms of a group are
// exact zeros that drop out of the partial sums, so the dense result equals
// the active weights summed left-to-right *within* each aligned four-column
// group, with the group subtotals added to the accumulator in ascending
// group order, then the tail actives added one by one. OneHotDot and
// OneHotGather reproduce exactly that order; collapsing the gather to one
// flat left-to-right sum would NOT be bitwise-identical whenever two active
// columns share a four-column group (the flat sum associates
// (s+t0)+t1 where the dense kernel computes s+(t0+t1)).

// OneHotDot returns Dot(row, x) for the implicit one-hot vector x that is
// 1 at the columns idx and 0 elsewhere, bitwise-identical to the dense
// product. idx must be strictly ascending and within [0, len(row)).
func OneHotDot(row []float64, idx []int) float64 {
	n := len(row) &^ 3
	var s float64
	i := 0
	for i < len(idx) {
		j := idx[i]
		if j >= n {
			// Sequential tail: one rounded add per active column.
			s += row[j]
			i++
			continue
		}
		// Aligned four-column group: actives sum left-to-right before
		// joining the accumulator, exactly like Dot's group subtotal.
		g := j&^3 + 4
		t := row[j]
		i++
		for i < len(idx) && idx[i] < g {
			t += row[idx[i]]
			i++
		}
		s += t
	}
	return s
}

// MulVecOneHot computes dst = m·x for the one-hot x described by idx,
// bitwise-identical to m.MulVec against the dense encoding. It is the
// row-major reference for OneHotGather (which walks a transposed layout and
// is what the inference hot path uses).
func (m *Matrix) MulVecOneHot(dst []float64, idx []int) {
	for i := 0; i < m.Rows; i++ {
		dst[i] = OneHotDot(m.Data[i*m.Cols:(i+1)*m.Cols], idx)
	}
}

// OneHotGather computes dst = W·x for the one-hot x described by idx, given
// wt = Wᵀ (wt.Row(j) is column j of W, so wt.Rows == W.Cols == the dense
// input dimension and wt.Cols == W.Rows == len(dst)). Each active column is
// one contiguous row of wt, so the gather is a handful of vector adds
// instead of a full GEMV; the grouping described above keeps the result
// bitwise-identical to the dense product. idx must be strictly ascending
// and within [0, wt.Rows).
func OneHotGather(dst []float64, wt *Matrix, idx []int) {
	if len(dst) != wt.Cols {
		panic("mathx: one-hot gather shape mismatch")
	}
	n := wt.Rows &^ 3
	first := true
	i := 0
	for i < len(idx) {
		j := idx[i]
		var cnt int
		if j >= n {
			cnt = 1 // tail actives join the accumulator one by one
		} else {
			g := j&^3 + 4
			cnt = 1
			for i+cnt < len(idx) && idx[i+cnt] < g {
				cnt++
			}
		}
		gatherGroup(dst, wt, idx[i:i+cnt], first)
		first = false
		i += cnt
	}
	if first {
		Fill(dst, 0)
	}
}

// gatherGroup adds one aligned group's subtotal — the active columns summed
// left-to-right — into dst (or assigns it, for the first group, matching
// the accumulator's zero start). A one-hot block group holds at most four
// actives.
func gatherGroup(dst []float64, wt *Matrix, idx []int, assign bool) {
	r0 := wt.Row(idx[0])
	switch len(idx) {
	case 1:
		if assign {
			copy(dst, r0)
		} else {
			for k := range dst {
				dst[k] += r0[k]
			}
		}
	case 2:
		r1 := wt.Row(idx[1])
		if assign {
			for k := range dst {
				dst[k] = r0[k] + r1[k]
			}
		} else {
			for k := range dst {
				dst[k] += r0[k] + r1[k]
			}
		}
	case 3:
		r1, r2 := wt.Row(idx[1]), wt.Row(idx[2])
		if assign {
			for k := range dst {
				dst[k] = r0[k] + r1[k] + r2[k]
			}
		} else {
			for k := range dst {
				dst[k] += r0[k] + r1[k] + r2[k]
			}
		}
	default:
		r1, r2, r3 := wt.Row(idx[1]), wt.Row(idx[2]), wt.Row(idx[3])
		if assign {
			for k := range dst {
				dst[k] = r0[k] + r1[k] + r2[k] + r3[k]
			}
		} else {
			for k := range dst {
				dst[k] += r0[k] + r1[k] + r2[k] + r3[k]
			}
		}
	}
}

// Transpose returns mᵀ as a fresh matrix (the layout OneHotGather wants).
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}
