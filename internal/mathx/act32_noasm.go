//go:build !amd64

package mathx

// Non-amd64 builds have no vector f32 activation kernels; the V*32
// wrappers run their scalar reference loops, which are the bitwise
// contract.

func actLanes32() int { return 0 }

func vexp32SIMD(dst, src []float32) int  { return 0 }
func vsig32SIMD(dst, src []float32) int  { return 0 }
func vtanh32SIMD(dst, src []float32) int { return 0 }
