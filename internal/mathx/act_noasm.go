//go:build !amd64

package mathx

// Non-amd64 builds have no vector activation kernels; the V* wrappers run
// their scalar reference loops, which are the bitwise contract.

func actLanes() int { return 0 }

func vexpSIMD(dst, src []float64) int  { return 0 }
func vsigSIMD(dst, src []float64) int  { return 0 }
func vtanhSIMD(dst, src []float64) int { return 0 }
