//go:build amd64

package mathx

// cpuHasAVX reports AVX support with OS-enabled YMM state (implemented in
// gemm_amd64.s).
func cpuHasAVX() bool

// gemm4avx is the AVX microkernel behind MulRowsT (gemm_amd64.s): four
// streams per ymm lane, Dot-identical association per lane.
//
//go:noescape
func gemm4avx(w *float64, stride, rows int, xt *float64, kn int, dst *float64, dstStride int, cont bool)

// chain4avx is the AVX microkernel behind chain4 (gemm_amd64.s): four
// accumulator chains (dst rows, stride c) advance over n vectorizable
// columns, one rounded multiply-add per step per element, steps ascending.
//
//go:noescape
func chain4avx(dst *float64, scal *float64, vp *float64, steps, n, c int)

var hasAVX = cpuHasAVX()

// SetSIMDEnabled force-disables (false) or re-enables (true, subject to CPU
// support) the SIMD kernels, returning the previous state. It exists so
// equivalence tests and benchmarks can cover both the assembly and the
// pure-Go paths on the same machine; it is not safe to call concurrently
// with kernel use.
func SetSIMDEnabled(on bool) bool {
	prev := hasAVX
	hasAVX = on && cpuHasAVX()
	return prev
}

// gemmChunkK is the packed-column chunk size: 4 lanes × 256 columns = 8 KB
// of stack scratch per call.
const gemmChunkK = 256

// mulRows4SIMD computes the four-stream block dst(4×R, lane stride R) =
// [x0;x1;x2;x3]·mᵀ with the AVX kernel. Columns beyond gemmChunkK are
// processed in aligned chunks with the accumulator carried through dst, so
// the per-element association still matches Dot exactly. Only the
// overwriting form is provided: accumulate-into-dst would need a different
// association (dst + full-dot), which the chunked kernel cannot reproduce —
// batched callers compute separate products and combine them elementwise
// instead.
func mulRows4SIMD(m *Matrix, dst []float64, x0, x1, x2, x3 []float64) bool {
	if !hasAVX {
		return false
	}
	R, C := m.Rows, m.Cols
	var xt [4 * gemmChunkK]float64
	for kc := 0; kc < C; kc += gemmChunkK {
		kn := C - kc
		if kn > gemmChunkK {
			kn = gemmChunkK
		}
		for k := 0; k < kn; k++ {
			xt[4*k] = x0[kc+k]
			xt[4*k+1] = x1[kc+k]
			xt[4*k+2] = x2[kc+k]
			xt[4*k+3] = x3[kc+k]
		}
		gemm4avx(&m.Data[kc], C, R, &xt[0], kn, &dst[0], R, kc > 0)
	}
	return true
}

// chain4SIMD runs the four-chain tile with the AVX microkernel, delegating
// the column tail (c % 4) to the scalar tile; it reports false when AVX is
// unavailable so chain4 falls back to pure Go.
func chain4SIMD(dst []float64, scal, vp []float64, steps, c int) bool {
	if !hasAVX || steps == 0 || c == 0 {
		return false
	}
	n := c &^ 3
	if n > 0 {
		chain4avx(&dst[0], &scal[0], &vp[0], steps, n, c)
	}
	if n < c {
		chain4cols(dst, scal, vp, steps, c, n)
	}
	return true
}
