//go:build amd64

package mathx

// cpuHasAVX reports AVX support with OS-enabled YMM state (implemented in
// gemm_amd64.s).
func cpuHasAVX() bool

// cpuHasAVX512 reports AVX-512F support with OS-enabled ZMM and opmask
// state (implemented in gemm_amd64.s).
func cpuHasAVX512() bool

// gemm4avx is the AVX microkernel behind MulRowsT (gemm_amd64.s): four
// streams per ymm lane, Dot-identical association per lane.
//
//go:noescape
func gemm4avx(w *float64, stride, rows int, xt *float64, kn int, dst *float64, dstStride int, cont bool)

// gemm8avx512 is the AVX-512 microkernel behind MulRowsT (gemm_amd64.s):
// eight streams per zmm lane, Dot-identical association per lane. It is the
// 512-bit twin of gemm4avx — same packed-column layout, twice the streams.
//
//go:noescape
func gemm8avx512(w *float64, stride, rows int, xt *float64, kn int, dst *float64, dstStride int, cont bool)

// chain4avx is the AVX microkernel behind chain4 (gemm_amd64.s): four
// accumulator chains (dst rows, stride c) advance over n vectorizable
// columns, one rounded multiply-add per step per element, steps ascending.
//
//go:noescape
func chain4avx(dst *float64, scal *float64, vp *float64, steps, n, c int)

// gemv4avx runs the packed single-vector product (gemm_amd64.s): tiles of
// four output rows per ymm, Dot-identical association per lane, epilogue
// selected by mode (see pack.go's Gemv* constants).
//
//go:noescape
func gemv4avx(p *float64, tiles, cols int, x *float64, dst *float64, bias *float64, mode int)

// gemv8avx512 is the 512-bit twin of gemv4avx: eight output rows per zmm.
//
//go:noescape
func gemv8avx512(p *float64, tiles, cols int, x *float64, dst *float64, bias *float64, mode int)

// Kernel-tier state: the cpu* flags are immutable hardware facts, the
// *Enabled flags are test/benchmark overrides, and hasAVX/hasAVX512 are the
// effective tier the kernels consult. Overrides are not safe to flip
// concurrently with kernel use (they exist so equivalence suites can pin a
// tier); every flip bumps simdEpoch so cached packed layouts rebuild.
var (
	cpuAVX    = cpuHasAVX()
	cpuAVX512 = cpuHasAVX512()

	simdEnabled   = true
	avx512Enabled = true

	hasAVX    = cpuAVX
	hasAVX512 = cpuAVX512
)

func recomputeTier() {
	hasAVX = simdEnabled && cpuAVX
	hasAVX512 = simdEnabled && avx512Enabled && cpuAVX512
	simdEpoch.Add(1)
}

// SetSIMDEnabled force-disables (false) or re-enables (true, subject to CPU
// support) every SIMD kernel — AVX-512 included — returning the previous
// state. It exists so equivalence tests and benchmarks can cover the
// assembly and pure-Go paths on the same machine; it is not safe to call
// concurrently with kernel use.
func SetSIMDEnabled(on bool) bool {
	prev := simdEnabled
	simdEnabled = on
	recomputeTier()
	return prev
}

// SetAVX512Enabled force-disables (false) or re-enables (true, subject to
// CPU support and the master SetSIMDEnabled switch) the AVX-512 kernels
// only, returning the previous state. With AVX-512 off the kernels drop to
// the AVX2 tier — the combination pins each of the three tiers:
// scalar (SetSIMDEnabled(false)), avx2 (SIMD on, AVX-512 off), avx512
// (both on). Same concurrency caveat as SetSIMDEnabled.
func SetAVX512Enabled(on bool) bool {
	prev := avx512Enabled
	avx512Enabled = on
	recomputeTier()
	return prev
}

// SIMDTier names the effective kernel tier: "avx512", "avx2" or "scalar".
func SIMDTier() string {
	switch {
	case hasAVX512:
		return "avx512"
	case hasAVX:
		return "avx2"
	default:
		return "scalar"
	}
}

// gemvLanes returns the packed-GEMV tile height for the effective tier.
func gemvLanes() int {
	switch {
	case hasAVX512:
		return 8
	case hasAVX:
		return 4
	default:
		return 0
	}
}

// gemvSIMD dispatches the packed single-vector product to the tier the pack
// was built for; it reports false (pack unusable, caller falls back to the
// scalar rows) when that tier is no longer enabled.
func gemvSIMD(p *PackedGEMV, dst, x, bias []float64, mode int, tiles int) bool {
	if p.cols == 0 {
		return false
	}
	bp := &dst[0] // unread by modes without a bias; keeps the asm branch-free
	if bias != nil {
		bp = &bias[0]
	}
	switch p.lanes {
	case 8:
		if !hasAVX512 {
			return false
		}
		gemv8avx512(&p.data[0], tiles, p.cols, &x[0], &dst[0], bp, mode)
	case 4:
		if !hasAVX {
			return false
		}
		gemv4avx(&p.data[0], tiles, p.cols, &x[0], &dst[0], bp, mode)
	default:
		return false
	}
	return true
}

// gemmChunkK is the packed-column chunk size: 4 lanes × 256 columns = 8 KB
// of stack scratch per call (16 KB for the 8-lane kernel).
const gemmChunkK = 256

// mulRows4SIMD computes the four-stream block dst(4×R, lane stride R) =
// [x0;x1;x2;x3]·mᵀ with the AVX kernel. Columns beyond gemmChunkK are
// processed in aligned chunks with the accumulator carried through dst, so
// the per-element association still matches Dot exactly. Only the
// overwriting form is provided: accumulate-into-dst would need a different
// association (dst + full-dot), which the chunked kernel cannot reproduce —
// batched callers compute separate products and combine them elementwise
// instead.
func mulRows4SIMD(m *Matrix, dst []float64, x0, x1, x2, x3 []float64) bool {
	if !hasAVX {
		return false
	}
	R, C := m.Rows, m.Cols
	var xt [4 * gemmChunkK]float64
	for kc := 0; kc < C; kc += gemmChunkK {
		kn := C - kc
		if kn > gemmChunkK {
			kn = gemmChunkK
		}
		for k := 0; k < kn; k++ {
			xt[4*k] = x0[kc+k]
			xt[4*k+1] = x1[kc+k]
			xt[4*k+2] = x2[kc+k]
			xt[4*k+3] = x3[kc+k]
		}
		gemm4avx(&m.Data[kc], C, R, &xt[0], kn, &dst[0], R, kc > 0)
	}
	return true
}

// mulRows8SIMD computes the eight-stream block dst(8×R, lane stride R) =
// [xs0;…;xs7]·mᵀ with the AVX-512 kernel — same chunking and association
// contract as mulRows4SIMD, eight accumulator chains per weight row.
func mulRows8SIMD(m *Matrix, dst []float64, xs [][]float64) bool {
	if !hasAVX512 {
		return false
	}
	R, C := m.Rows, m.Cols
	x0, x1, x2, x3 := xs[0][:C], xs[1][:C], xs[2][:C], xs[3][:C]
	x4, x5, x6, x7 := xs[4][:C], xs[5][:C], xs[6][:C], xs[7][:C]
	var xt [8 * gemmChunkK]float64
	for kc := 0; kc < C; kc += gemmChunkK {
		kn := C - kc
		if kn > gemmChunkK {
			kn = gemmChunkK
		}
		for k := 0; k < kn; k++ {
			xt[8*k] = x0[kc+k]
			xt[8*k+1] = x1[kc+k]
			xt[8*k+2] = x2[kc+k]
			xt[8*k+3] = x3[kc+k]
			xt[8*k+4] = x4[kc+k]
			xt[8*k+5] = x5[kc+k]
			xt[8*k+6] = x6[kc+k]
			xt[8*k+7] = x7[kc+k]
		}
		gemm8avx512(&m.Data[kc], C, R, &xt[0], kn, &dst[0], R, kc > 0)
	}
	return true
}

// chain4SIMD runs the four-chain tile with the AVX microkernel, delegating
// the column tail (c % 4) to the scalar tile; it reports false when AVX is
// unavailable so chain4 falls back to pure Go.
func chain4SIMD(dst []float64, scal, vp []float64, steps, c int) bool {
	if !hasAVX || steps == 0 || c == 0 {
		return false
	}
	n := c &^ 3
	if n > 0 {
		chain4avx(&dst[0], &scal[0], &vp[0], steps, n, c)
	}
	if n < c {
		chain4cols(dst, scal, vp, steps, c, n)
	}
	return true
}
