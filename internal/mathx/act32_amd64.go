//go:build amd64

package mathx

// cpuHasAVX2 reports CPUID AVX2 support (leaf 7, EBX bit 5). The f32
// activation kernels need the 256-bit integer ops (VPADDD/VPCMPGTD/VPSLLD)
// for the exponent-field arithmetic; the f32 GEMV/GEMM kernels are pure
// AVX1 float code and only gate on hasAVX.
func cpuHasAVX2() bool

var cpuAVX2 = cpuHasAVX2()

//go:noescape
func vexp8f32(dst, src *float32, n int) int

//go:noescape
func vsig8f32(dst, src *float32, n int) int

//go:noescape
func vtanh8f32(dst, src *float32, n int) int

// actLanes32 returns the vector width of the f32 activation kernels under
// the current SIMD tier, or 0 when they are disabled. No FMA requirement:
// the f32 algorithm is mul/add only by design.
func actLanes32() int {
	if !hasAVX || !cpuAVX2 {
		return 0
	}
	return 8
}

func vexp32SIMD(dst, src []float32) int {
	if actLanes32() == 0 || len(src) < 8 {
		return 0
	}
	return vexp8f32(&dst[0], &src[0], len(src))
}

func vsig32SIMD(dst, src []float32) int {
	if actLanes32() == 0 || len(src) < 8 {
		return 0
	}
	return vsig8f32(&dst[0], &src[0], len(src))
}

func vtanh32SIMD(dst, src []float32) int {
	if actLanes32() == 0 || len(src) < 8 {
		return 0
	}
	return vtanh8f32(&dst[0], &src[0], len(src))
}
