package mathx

import (
	"math"
	"testing"
)

// randRows builds n rows of dim pseudo-random values.
func randRows(rng *RNG, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for d := range rows[i] {
			rows[i][d] = rng.NormScaled(0, 3)
		}
	}
	return rows
}

// TestScaledSqDistBatchBitwise: the batched Mahalanobis kernel must equal
// the scalar kernel bit for bit on every row, for shapes around the tile
// width (tail rows included) and for odd dimensions.
func TestScaledSqDistBatchBitwise(t *testing.T) {
	rng := NewRNG(7)
	for _, n := range []int{0, 1, 3, 4, 5, 8, 17} {
		for _, dim := range []int{1, 2, 7, 16, 68} {
			xs := randRows(rng, n, dim)
			mu := randRows(rng, 1, dim)[0]
			va := make([]float64, dim)
			for d := range va {
				va[d] = 0.25 + rng.Float64()
			}
			got := make([]float64, n)
			ScaledSqDistBatch(got, xs, mu, va)
			for i := range xs {
				want := ScaledSqDist(xs[i], mu, va)
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("n=%d dim=%d row %d: batch %x scalar %x", n, dim, i,
						math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestReconResidualBatchBitwise: the batched PCA reconstruction-error
// kernel must equal the scalar kernel bit for bit on every row.
func TestReconResidualBatchBitwise(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range []int{0, 1, 3, 4, 6, 9} {
		for _, shape := range []struct{ q, dim int }{{1, 5}, {3, 17}, {8, 68}, {5, 4}} {
			p := NewMatrix(shape.q, shape.dim)
			for i := range p.Data {
				p.Data[i] = rng.NormScaled(0, 1)
			}
			xs := randRows(rng, n, shape.dim)
			got := make([]float64, n)
			proj := make([]float64, 4*shape.q)
			recon := make([]float64, 4*shape.dim)
			p.ReconResidualBatch(got, xs, proj, recon)
			sproj := make([]float64, shape.q)
			srecon := make([]float64, shape.dim)
			for i := range xs {
				want := p.ReconResidual(xs[i], sproj, srecon)
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("n=%d q=%d dim=%d row %d: batch %x scalar %x", n, shape.q, shape.dim, i,
						math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestReconResidualProperties: a sample inside the span of the components
// reconstructs with ~zero residual; orthogonal residue survives.
func TestReconResidualProperties(t *testing.T) {
	// Orthonormal axis-aligned components e0, e1 in R^4.
	p := NewMatrix(2, 4)
	p.Set(0, 0, 1)
	p.Set(1, 1, 1)
	proj := make([]float64, 2)
	recon := make([]float64, 4)
	if err := p.ReconResidual([]float64{3, -2, 0, 0}, proj, recon); err != 0 {
		t.Fatalf("in-span residual = %g, want 0", err)
	}
	if err := p.ReconResidual([]float64{0, 0, 2, 1}, proj, recon); math.Abs(err-5) > 1e-12 {
		t.Fatalf("out-of-span residual = %g, want 5", err)
	}
}

// BenchmarkScoreBatchKernels reports the batched kernels against per-row
// scalar calls at the window-level shape (dim 68).
func BenchmarkScoreBatchKernels(b *testing.B) {
	rng := NewRNG(3)
	const n, dim, q = 64, 68, 12
	xs := randRows(rng, n, dim)
	mu := randRows(rng, 1, dim)[0]
	va := make([]float64, dim)
	for d := range va {
		va[d] = 0.5 + rng.Float64()
	}
	p := NewMatrix(q, dim)
	for i := range p.Data {
		p.Data[i] = rng.NormScaled(0, 1)
	}
	dst := make([]float64, n)
	proj := make([]float64, 4*q)
	recon := make([]float64, 4*dim)

	b.Run("sqdist/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := range xs {
				dst[r] = ScaledSqDist(xs[r], mu, va)
			}
		}
	})
	b.Run("sqdist/batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScaledSqDistBatch(dst, xs, mu, va)
		}
	})
	b.Run("recon/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := range xs {
				dst[r] = p.ReconResidual(xs[r], proj[:q], recon[:dim])
			}
		}
	})
	b.Run("recon/batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.ReconResidualBatch(dst, xs, proj, recon)
		}
	})
}
