package mathx

import "testing"

// BenchmarkGEMVvsGEMM compares the per-element cost of 32 GEMVs against one
// 32-row GEMM at LSTM-layer shape (4H x H for H=256).
func BenchmarkGEMVvsGEMM(b *testing.B) {
	const rows, cols, batch = 1024, 256, 32
	rng := NewRNG(1)
	m := randomMatrix(rng, rows, cols)
	xs := make([][]float64, batch)
	for i := range xs {
		xs[i] = randomVec(rng, cols)
	}
	dst := make([]float64, batch*rows)
	b.Run("gemv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < batch; s++ {
				m.MulVec(dst[s*rows:(s+1)*rows], xs[s])
			}
		}
		b.ReportMetric(float64(b.N)*batch*rows*cols*2/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
	b.Run("gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulRowsT(dst, xs)
		}
		b.ReportMetric(float64(b.N)*batch*rows*cols*2/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
}
