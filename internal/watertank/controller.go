package watertank

import "fmt"

// System modes, encoded as in the dataset's system_mode column (shared with
// the gas pipeline so the feature keeps one meaning across scenarios).
const (
	ModeOff    = 0
	ModeManual = 1
	ModeAuto   = 2
)

// Control schemes as encoded in the control_scheme column: fill control
// cycles the pump between L and H with the dump valve shut; drain control
// runs the pump continuously and cycles the dump valve instead (used when
// the tank feeds a process that must never see the pump stop).
const (
	SchemePump  = 0
	SchemeValve = 1
)

// ControllerState is the full SCADA-visible controller block of the water
// tank: the four alarm setpoints, the poll cycle time, mode, scheme and the
// manual actuator commands — everything a write command carries and a state
// read returns.
type ControllerState struct {
	// H and L bound the automatic operating band; HH and LL are the
	// high-high / low-low alarm setpoints (safety limits). Legal blocks
	// keep LL < L < H < HH.
	H, HH, L, LL float64
	// CycleTime is the master's poll period in seconds, echoed in the
	// block like the gas pipeline's PID cycle time.
	CycleTime float64
	Mode      int // ModeOff/ModeManual/ModeAuto
	Scheme    int // SchemePump/SchemeValve
	Pump      int // manual-mode pump command (1 on / 0 off)
	Valve     int // manual-mode dump valve command (1 open / 0 closed)
}

// Validate reports obviously corrupt states; the attack injector is allowed
// to bypass this, the legitimate operator is not. The alarm ordering
// LL < L < H < HH is the water tank's core configuration invariant.
func (s *ControllerState) Validate() error {
	if s.Mode < ModeOff || s.Mode > ModeAuto {
		return fmt.Errorf("watertank: invalid mode %d", s.Mode)
	}
	if s.Scheme != SchemePump && s.Scheme != SchemeValve {
		return fmt.Errorf("watertank: invalid scheme %d", s.Scheme)
	}
	if s.LL < 0 {
		return fmt.Errorf("watertank: negative LL alarm %g", s.LL)
	}
	if !(s.LL < s.L && s.L < s.H && s.H < s.HH) {
		return fmt.Errorf("watertank: alarm ordering violated: LL=%g L=%g H=%g HH=%g",
			s.LL, s.L, s.H, s.HH)
	}
	if s.CycleTime <= 0 {
		return fmt.Errorf("watertank: non-positive cycle time %g", s.CycleTime)
	}
	return nil
}

// Controller runs the field device's control law: in automatic mode an
// on/off loop holds the level inside [L, H] (driving the pump or the dump
// valve depending on the scheme); in manual mode the operator's pump/valve
// commands pass through; in off mode the pump idles. Independently of mode,
// a hard high-level failsafe latches the dump valve open at HH and releases
// it with hysteresis once the level is back below H.
type Controller struct {
	state ControllerState
	// pumpOn / valveOpen retain the on/off loop's hysteresis state between
	// cycles.
	pumpOn    bool
	valveOpen bool
	// safetyOpen latches the HH overflow failsafe.
	safetyOpen bool
}

// NewController builds a controller with the given initial state.
func NewController(initial ControllerState) (*Controller, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	return &Controller{state: initial}, nil
}

// State returns a copy of the controller block.
func (c *Controller) State() ControllerState { return c.state }

// Apply installs a new controller block (a Modbus write command). Invalid
// blocks are rejected with an error, matching the device's illegal-value
// exception; the attack injector uses ApplyUnchecked.
func (c *Controller) Apply(s ControllerState) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.state = s
	return nil
}

// ApplyUnchecked installs a controller block without operator-level
// validation. Malicious writes land here: the real firmware stores whatever
// register values arrive, and the control law then acts on the corrupted
// block (an inverted alarm ordering makes the on/off loop chatter, exactly
// the process damage an MPCI attack is after).
func (c *Controller) ApplyUnchecked(s ControllerState) { c.state = s }

// Actuate computes actuator commands for the current measured level and
// applies them to the plant.
func (c *Controller) Actuate(plant *Plant, measured float64) {
	// Hard overflow failsafe with hysteresis, independent of mode.
	if measured >= c.state.HH {
		c.safetyOpen = true
	} else if measured <= c.state.H {
		c.safetyOpen = false
	}

	switch c.state.Mode {
	case ModeAuto:
		if c.state.Scheme == SchemePump {
			// Fill control: pump on below L, off above H; the dump valve
			// only opens on the failsafe.
			if measured <= c.state.L {
				c.pumpOn = true
			} else if measured >= c.state.H {
				c.pumpOn = false
			}
			c.valveOpen = false
		} else {
			// Drain control: pump runs continuously, the dump valve bleeds
			// the excess — open above H, shut below L.
			c.pumpOn = true
			if measured >= c.state.H {
				c.valveOpen = true
			} else if measured <= c.state.L {
				c.valveOpen = false
			}
		}
		plant.PumpOn = c.pumpOn
		plant.ValveOpen = c.valveOpen || c.safetyOpen
	case ModeManual:
		plant.PumpOn = c.state.Pump == 1
		plant.ValveOpen = c.state.Valve == 1 || c.safetyOpen
	default: // ModeOff
		plant.PumpOn = false
		plant.ValveOpen = c.safetyOpen
	}
}

// ActuatorView returns the pump/valve columns a state read reports. As in
// the gas pipeline's Table I, these columns are meaningful only for manual
// mode; in automatic and off modes the device reports zeros.
func (c *Controller) ActuatorView() (pump, valve int) {
	if c.state.Mode == ModeManual {
		return c.state.Pump, c.state.Valve
	}
	return 0, 0
}
