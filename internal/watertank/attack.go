package watertank

import (
	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/modbus"
	"icsdetect/internal/scenario"
)

// This file implements the water-tank variants of the seven attack
// categories of the paper's Table II. Each Run*Episode method plays one
// attack episode against the live simulation; ground-truth labels mark
// exactly the packages the attacker caused, matching the original dataset's
// per-packet labeling.

// RunAttackEpisode dispatches one episode of the given Table II category to
// its Run*Episode injector, implementing the scenario.Sim contract. n is
// the episode length in the category's natural unit (cycles, or probes for
// Recon).
func (s *Simulator) RunAttackEpisode(at dataset.AttackType, n int) error {
	return scenario.DispatchEpisode(s, at, n)
}

// RunNMRIEpisode injects naive malicious response packets: after each normal
// poll cycle the attacker forges 1-3 extra state-read responses carrying
// random level readings — half blatant (uniform over the whole tank), half
// mimicry near the live level.
func (s *Simulator) RunNMRIEpisode(cycles int) {
	for c := 0; c < cycles; c++ {
		s.RunNormalCycle(dataset.Normal)
		forged := 1 + s.rng.Intn(3)
		st := s.ctrl.State()
		for i := 0; i < forged; i++ {
			s.advance(s.intraDelay())
			fakeLevel := s.rng.Range(0, s.cfg.Plant.Capacity)
			if s.rng.Bernoulli(0.5) {
				fakeLevel = mathx.Clamp(
					s.plant.Level()+s.rng.Range(-5, 5), 0, s.cfg.Plant.Capacity)
			}
			pdu := modbus.ReadRegistersResponse(modbus.FuncReadState,
				stateRegisters(st, 0, 0, fakeLevel, true))
			s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
				st, 0, 0, fakeLevel, false, dataset.NMRI)
		}
	}
}

// RunCMRIEpisode hides the real state of the process: every state-read
// response during the episode reports a frozen, attacker-chosen level while
// the true tank keeps filling or draining. Only the falsified responses
// carry the attack label — the classic overflow attack on a tank: the
// operator sees a calm mid-band level while the pump runs the tank over the
// HH line.
func (s *Simulator) RunCMRIEpisode(cycles int) {
	// The frozen reading is drawn across the full span the plant can
	// plausibly occupy; values outside the active alarm band leave a
	// content-level trace, values inside it are pure mimicry.
	frozen := mathx.Clamp(s.rng.Range(5, 95), 0.5, s.cfg.Plant.Capacity-0.5)
	falsify := cycleOpts{reportLevel: func(float64) float64 {
		return mathx.Clamp(frozen+s.rng.NormScaled(0, 0.05), 0, s.cfg.Plant.Capacity)
	}}
	for c := 0; c < cycles; c++ {
		s.operatorStep()
		s.runCycle(s.desired, cycleLabels{Resp: dataset.CMRI}, falsify)
	}
}

// RunMSCIEpisode injects malicious state commands: the attacker switches the
// device to manual mode with adversarial actuator settings — pump forced on
// (overflow), dump valve forced open (empty the tank) — or switches it off.
// The injected command, its acknowledgement and the state reads that expose
// the tampered state carry the label.
func (s *Simulator) RunMSCIEpisode(cycles int) {
	mal := s.desired
	switch s.rng.Intn(5) {
	case 0, 1: // force the pump on: run the tank over HH
		mal.Mode, mal.Pump, mal.Valve = ModeManual, 1, 0
	case 2, 3: // dump the tank
		mal.Mode, mal.Pump, mal.Valve = ModeManual, 0, 1
	default: // kill control entirely
		mal.Mode, mal.Pump, mal.Valve = ModeOff, 0, 0
	}
	labels := cycleLabels{
		Cmd: dataset.MSCI, Ack: dataset.MSCI,
		Read: dataset.Normal, Resp: dataset.MSCI,
	}
	for c := 0; c < cycles; c++ {
		s.runCycle(mal, labels, cycleOpts{})
	}
	// Operator notices and restores the legitimate block; the first
	// post-restore state read still reports the attacker-caused state.
	s.runCycle(s.desired, cycleLabels{Resp: dataset.MSCI}, cycleOpts{})
}

// RunMPCIEpisode injects malicious parameter commands: a write carrying a
// tampered alarm-setpoint block. Some injections are blatant (inverted
// ordering, zeroed LL), many are mimicry just outside the legal presets —
// raising H toward HH quietly re-tunes the plant to run near overflow.
func (s *Simulator) RunMPCIEpisode(cycles int) {
	mal := s.desired
	n := 1 + s.rng.Intn(2)
	for i := 0; i < n; i++ {
		switch s.rng.Intn(4) {
		case 0:
			mal.H = s.rng.Range(20, 95)
		case 1:
			mal.L = s.rng.Range(5, 60)
		case 2:
			mal.HH = s.rng.Range(50, 100)
		default:
			mal.LL = s.rng.Range(0, 30)
		}
	}
	labels := cycleLabels{
		Cmd: dataset.MPCI, Ack: dataset.MPCI,
		Read: dataset.Normal, Resp: dataset.MPCI,
	}
	// The device firmware stores whatever registers arrive
	// (ApplyUnchecked), where the legitimate path would reject an invalid
	// alarm ordering.
	unchecked := cycleOpts{apply: s.ctrl.ApplyUnchecked}
	for c := 0; c < cycles; c++ {
		s.runCycle(mal, labels, unchecked)
	}
	s.runCycle(s.desired, cycleLabels{Resp: dataset.MPCI}, cycleOpts{})
}

// RunMFCIEpisode injects malicious function code commands: diagnostics
// force-listen-only / restart sub-functions the master never uses. The
// device answers with the diagnostics echo, so both directions are exposed.
func (s *Simulator) RunMFCIEpisode(count int) {
	st := s.ctrl.State()
	for i := 0; i < count; i++ {
		// Sub-function 4 = force listen only; 1 = restart communications.
		sub := uint16(4)
		if s.rng.Bernoulli(0.5) {
			sub = 1
		}
		pdu := modbus.WriteSingleRequest(modbus.FuncDiagnostics, sub, 0)
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
			st, 0, 0, 0, true, dataset.MFCI)
		s.advance(s.intraDelay())
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: pdu},
			st, 0, 0, 0, false, dataset.MFCI)
		s.advance(s.cfg.CycleTime * s.rng.Range(0.5, 1.5))
	}
}

// RunDoSEpisode denies service on the communication link: reads go
// unanswered, the master retries after long timeouts, and the flood
// corrupts frames, driving the CRC failure rate up. The decay tail — cycles
// whose CRC rate is still contaminated — belongs to the attack period.
func (s *Simulator) RunDoSEpisode(cycles int) {
	st := s.ctrl.State()
	for c := 0; c < cycles; c++ {
		// Master read attempt; response never arrives.
		s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: modbus.ReadRequest(modbus.FuncReadState, 0, 10)},
			ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, dataset.DOS)
		// Timeout plus backoff: an interval far outside both normal
		// clusters.
		s.advance(s.rng.Range(2.0, 5.0))
		// Flood garbage: corrupted frames observed on the wire.
		if s.rng.Bernoulli(0.8) {
			junk := modbus.ReadRequest(modbus.FuncReadState, 0, 10)
			s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: junk, CorruptCRC: true},
				ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, dataset.DOS)
			s.advance(s.rng.Range(0.3, 1.0))
		}
	}
	// Service resumes but the monitor's CRC failure rate is still decaying;
	// those cycles belong to the attack period.
	for c := 0; c < crcWindow/4; c++ {
		s.RunNormalCycle(dataset.DOS)
	}
}

// RunReconEpisode scans for devices: rapid state-read probes at station
// addresses the master never talks to. The real device stays silent, so
// only command packages appear.
func (s *Simulator) RunReconEpisode(probes int) {
	st := s.ctrl.State()
	for i := 0; i < probes; i++ {
		addr := uint8(1 + s.rng.Intn(10))
		if addr == s.cfg.SlaveAddress {
			addr = s.cfg.SlaveAddress + 1
		}
		fn := modbus.FuncReadHoldingRegisters
		if s.rng.Bernoulli(0.3) {
			fn = modbus.FuncReadCoils
		}
		pdu := modbus.ReadRequest(fn, 0, uint16(1+s.rng.Intn(8)))
		s.emit(&modbus.RTUFrame{Address: addr, PDU: pdu},
			ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, dataset.Recon)
		s.advance(s.rng.Range(0.02, 0.06))
	}
	// Let the line settle to the next cycle boundary.
	s.advance(s.cfg.CycleTime)
}
