package watertank

import (
	"testing"

	"icsdetect/internal/dataset"
	"icsdetect/internal/scenario"
)

// TestScenarioRegistered: the watertank registers itself in the scenario
// registry under its canonical name.
func TestScenarioRegistered(t *testing.T) {
	sc, err := scenario.Get("watertank")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "watertank" {
		t.Fatalf("registry returned scenario %q", sc.Name())
	}
	regs := sc.Registers()
	if regs.Rate != -1 {
		t.Errorf("water tank has no PID rate register, map says index %d", regs.Rate)
	}
	if regs.Pressure != 9 || regs.MinRegisters != 9 {
		t.Errorf("unexpected level register layout: %+v", regs)
	}
}

// TestGeneratedTimestampsMonotone: the capture is a time series; the
// interval feature and the split logic depend on non-decreasing timestamps.
func TestGeneratedTimestampsMonotone(t *testing.T) {
	ds, err := Generate(DefaultGenConfig(5000, 11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < ds.Len(); i++ {
		if ds.Packages[i].Time < ds.Packages[i-1].Time {
			t.Fatalf("timestamp decreased at %d: %v -> %v",
				i, ds.Packages[i-1].Time, ds.Packages[i].Time)
		}
	}
}

// TestGeneratedFeatureRanges: every feature stays in its physical domain.
func TestGeneratedFeatureRanges(t *testing.T) {
	cfg := DefaultGenConfig(5000, 12)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ds.Packages {
		if p.Pressure < 0 || p.Pressure > cfg.Sim.Plant.Capacity {
			t.Fatalf("package %d level %v", i, p.Pressure)
		}
		if p.CRCRate < 0 || p.CRCRate > 1 {
			t.Fatalf("package %d crc rate %v", i, p.CRCRate)
		}
		if p.CmdResponse != 0 && p.CmdResponse != 1 {
			t.Fatalf("package %d cmd/resp %v", i, p.CmdResponse)
		}
		if p.SystemMode < 0 || p.SystemMode > 2 {
			t.Fatalf("package %d mode %v", i, p.SystemMode)
		}
		if p.Address < 1 || p.Address > 247 {
			t.Fatalf("package %d station address %v", i, p.Address)
		}
		if p.Length < 4 || p.Length > 256 {
			t.Fatalf("package %d frame length %v", i, p.Length)
		}
		if p.Rate != 0 {
			t.Fatalf("package %d PID rate %v, tank has no rate register", i, p.Rate)
		}
	}
}

// TestGenerateSplitCompatibility: a generated capture must survive the
// paper's split with usable training material at every supported size.
func TestGenerateSplitCompatibility(t *testing.T) {
	for _, n := range []int{3000, 10000} {
		ds, err := Generate(DefaultGenConfig(n, 13))
		if err != nil {
			t.Fatal(err)
		}
		split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
		if err != nil {
			t.Fatal(err)
		}
		trainN := len(dataset.FragmentPackages(split.Train))
		if trainN < n/4 {
			t.Errorf("n=%d: only %d training packages survive cleaning", n, trainN)
		}
		attacks := 0
		for _, p := range split.Test {
			if p.IsAttack() {
				attacks++
			}
		}
		if attacks == 0 {
			t.Errorf("n=%d: test set has no attacks", n)
		}
	}
}

// TestInjectedAttacksHaveDistinctiveContent spot-checks that each attack
// leaves the trace the detectors rely on.
func TestInjectedAttacksHaveDistinctiveContent(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunMFCIEpisode(3)
	for _, p := range sim.Packages() {
		if p.Label == dataset.MFCI && p.Function != 8 {
			t.Errorf("MFCI package uses function %v, want diagnostics (8)", p.Function)
		}
	}

	sim2, _ := NewSimulator(DefaultSimConfig())
	sim2.RunNMRIEpisode(3)
	forged := 0
	for _, p := range sim2.Packages() {
		if p.Label == dataset.NMRI {
			forged++
			if p.CmdResponse != 0 {
				t.Error("forged NMRI package is not a response")
			}
		}
	}
	if forged == 0 {
		t.Fatal("NMRI episode forged nothing")
	}

	sim3, _ := NewSimulator(DefaultSimConfig())
	sim3.RunMSCIEpisode(3)
	tampered := false
	for _, p := range sim3.Packages() {
		if p.Label == dataset.MSCI && p.CmdResponse == 1 && p.SystemMode != float64(ModeAuto) {
			tampered = true
		}
	}
	if !tampered {
		t.Error("MSCI episode never injected a non-auto state command")
	}

	// MPCI writes land unchecked in the device, so a tampered alarm block
	// must surface in the parameter columns of subsequent state reads.
	sim4, _ := NewSimulator(DefaultSimConfig())
	base := sim4.ctrl.State()
	sim4.RunMPCIEpisode(3)
	moved := false
	for _, p := range sim4.Packages() {
		if p.Label == dataset.MPCI && p.CmdResponse == 0 && p.Function == float64(65) {
			if p.Setpoint != base.H || p.Gain != base.HH ||
				p.ResetRate != base.L || p.Deadband != base.LL {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("MPCI episode never surfaced a tampered alarm block in a state read")
	}
}

// TestAttackEpisodeDispatchRejectsUnknown: the scenario.Sim contract
// requires an error for unsupported categories.
func TestAttackEpisodeDispatchRejectsUnknown(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAttackEpisode(dataset.AttackType(42), 1); err == nil {
		t.Fatal("unknown attack type accepted")
	}
}
