package watertank

import (
	"fmt"
	"math"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/modbus"
	"icsdetect/internal/scenario"
)

// SimConfig controls the SCADA traffic simulation.
type SimConfig struct {
	Plant PlantConfig
	// SlaveAddress is the Modbus station address of the field device. The
	// lab runs the tank at a different station than the pipeline.
	SlaveAddress uint8
	// CycleTime is the master's base poll period in seconds.
	CycleTime float64
	// CycleJitter is the fractional jitter on the poll period.
	CycleJitter float64
	// IntraDelayMin/Max bound the gap between packages inside one poll
	// cycle (request-to-response turnaround), in seconds.
	IntraDelayMin, IntraDelayMax float64
	// CRCGlitchProb is the per-frame probability of benign link corruption.
	CRCGlitchProb float64
	// Operator configures the legitimate operator behaviour.
	Operator OperatorConfig
	// Seed drives all randomness.
	Seed uint64
}

// AlarmPreset is one legal alarm-setpoint block (LL < L < H < HH).
type AlarmPreset struct {
	LL, L, H, HH float64
}

// OperatorConfig models the legitimate operator: which alarm blocks are
// legal and how often modes change. The spread of these values defines the
// "normal profile" the signature database learns.
type OperatorConfig struct {
	// AlarmPresets are the legal alarm-setpoint blocks.
	AlarmPresets []AlarmPreset
	// PresetChangeProb is the per-cycle probability of moving to another
	// legal block. The presets form the natural clusters the signature
	// level's K-means discretization exploits.
	PresetChangeProb float64
	// ManualEpisodeProb is the per-cycle probability of a manual-mode
	// operating episode; ManualLen bounds its length in cycles.
	ManualEpisodeProb float64
	ManualLen         [2]int
	// OffEpisodeProb and OffLen control maintenance (mode off) episodes.
	OffEpisodeProb float64
	OffLen         [2]int
	// ValveSchemeProb and ValveSchemeLen control drain-control-scheme
	// episodes (pump continuous, dump valve cycling).
	ValveSchemeProb float64
	ValveSchemeLen  [2]int
}

// DefaultSimConfig returns the configuration used by the experiments: a
// single slave at station 7 polled twice a second.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Plant:         DefaultPlantConfig(),
		SlaveAddress:  7,
		CycleTime:     0.5,
		CycleJitter:   0.10,
		IntraDelayMin: 0.005,
		IntraDelayMax: 0.020,
		CRCGlitchProb: 0.002,
		Operator: OperatorConfig{
			AlarmPresets:      defaultAlarmPresets(),
			PresetChangeProb:  0.02,
			ManualEpisodeProb: 0.005,
			ManualLen:         [2]int{5, 14},
			OffEpisodeProb:    0.002,
			OffLen:            [2]int{3, 7},
			ValveSchemeProb:   0.004,
			ValveSchemeLen:    [2]int{12, 30},
		},
		Seed: 1,
	}
}

func defaultAlarmPresets() []AlarmPreset {
	return []AlarmPreset{
		{LL: 10, L: 40, H: 60, HH: 90},
		{LL: 10, L: 35, H: 55, HH: 85},
		{LL: 15, L: 45, H: 65, HH: 90},
		{LL: 5, L: 30, H: 50, HH: 80},
	}
}

// Frame is one observed wire frame; see scenario.Frame for the field
// contract.
type Frame = scenario.Frame

// Simulator produces the package time series. It owns the plant, the field
// device controller, and the master/operator state machines.
type Simulator struct {
	cfg   SimConfig
	plant *Plant
	ctrl  *Controller
	rng   *mathx.RNG

	now    float64 // simulation clock, seconds
	crcMon modbus.CRCRateMonitor

	frameSink func(Frame)

	// desired is the operator's intended controller block; it is re-sent
	// every cycle and restored after attacks.
	desired    ControllerState
	manualLeft int
	offLeft    int
	valveLeft  int

	packages []*dataset.Package
}

// NewSimulator constructs a simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	if cfg.CycleTime <= 0 {
		return nil, fmt.Errorf("watertank: cycle time must be positive, got %g", cfg.CycleTime)
	}
	if len(cfg.Operator.AlarmPresets) == 0 {
		return nil, fmt.Errorf("watertank: operator needs at least one alarm preset")
	}
	rng := mathx.NewRNG(cfg.Seed)
	plant, err := NewPlant(cfg.Plant, rng.Split())
	if err != nil {
		return nil, err
	}
	preset := cfg.Operator.AlarmPresets[0]
	initial := ControllerState{
		H: preset.H, HH: preset.HH, L: preset.L, LL: preset.LL,
		CycleTime: cfg.CycleTime,
		Mode:      ModeAuto,
		Scheme:    SchemePump,
	}
	ctrl, err := NewController(initial)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:     cfg,
		plant:   plant,
		ctrl:    ctrl,
		rng:     rng,
		desired: initial,
	}, nil
}

// Packages returns the packages emitted so far (not a copy; the generator
// owns the simulator).
func (s *Simulator) Packages() []*dataset.Package { return s.packages }

// Now returns the simulation clock.
func (s *Simulator) Now() float64 { return s.now }

// advance moves the clock and integrates the plant.
func (s *Simulator) advance(dt float64) {
	if dt <= 0 {
		return
	}
	s.plant.Step(dt)
	s.now += dt
}

func (s *Simulator) intraDelay() float64 {
	return s.rng.Range(s.cfg.IntraDelayMin, s.cfg.IntraDelayMax)
}

// crcWindow is the rolling frame window of the shared CRC failure monitor;
// the DoS decay tail is sized off it.
const crcWindow = modbus.CRCRateWindow

// SetFrameSink installs fn to observe every emitted wire frame, in emission
// order, alongside the package record. Pass nil to detach. The sink is
// called synchronously from the simulation loop; the Raw slice must not be
// retained or mutated across calls. Attaching a sink resets the CRC failure
// window so recorded traces reproduce the logged rates exactly (see the gas
// pipeline simulator for the rationale).
func (s *Simulator) SetFrameSink(fn func(Frame)) {
	if fn != nil {
		s.crcMon.Reset()
	}
	s.frameSink = fn
}

// emit appends a package built from an actual Modbus RTU frame so that the
// length and CRC features are authentic.
func (s *Simulator) emit(frame *modbus.RTUFrame, st ControllerState,
	pump, valve int, level float64, isCmd bool, label dataset.AttackType) {
	raw, err := modbus.EncodeRTU(frame)
	if err != nil {
		panic(fmt.Sprintf("watertank: encode frame: %v", err))
	}
	corrupt := frame.CorruptCRC || s.rng.Bernoulli(s.cfg.CRCGlitchProb)
	rate := s.crcMon.Observe(corrupt)
	if s.frameSink != nil {
		s.frameSink(Frame{
			Raw: raw, IsCmd: isCmd, Corrupt: corrupt, Label: label, Time: s.now,
		})
	}
	cmd := 0.0
	if isCmd {
		cmd = 1
	}
	// Column mapping (see Registers): the alarm block rides the
	// setpoint/PID parameter columns, the level rides the pressure column.
	s.packages = append(s.packages, &dataset.Package{
		Address:       float64(frame.Address),
		CRCRate:       rate,
		Function:      float64(frame.PDU.Function),
		Length:        float64(len(raw)),
		Setpoint:      st.H,
		Gain:          st.HH,
		ResetRate:     st.L,
		Deadband:      st.LL,
		CycleTime:     st.CycleTime,
		SystemMode:    float64(st.Mode),
		ControlScheme: float64(st.Scheme),
		Pump:          float64(pump),
		Solenoid:      float64(valve),
		Pressure:      math.Round(level*100) / 100,
		CmdResponse:   cmd,
		Time:          s.now,
		Label:         label,
	})
}

// stateRegisters encodes a controller block (plus optional level) as Modbus
// register values, the payload layout of the tank's field device.
func stateRegisters(st ControllerState, pump, valve int, level float64, withLevel bool) []uint16 {
	regs := []uint16{
		uint16(mathx.Clamp(st.H*100, 0, 65535)),
		uint16(mathx.Clamp(st.HH*100, 0, 65535)),
		uint16(mathx.Clamp(st.L*100, 0, 65535)),
		uint16(mathx.Clamp(st.LL*100, 0, 65535)),
		uint16(mathx.Clamp(st.CycleTime*1000, 0, 65535)),
		uint16(st.Mode),
		uint16(st.Scheme),
		uint16(pump),
		uint16(valve),
	}
	if withLevel {
		regs = append(regs, uint16(mathx.Clamp(level*100, 0, 65535)))
	}
	return regs
}

// cycleLabels assigns a ground-truth label to each package of a poll cycle.
type cycleLabels struct {
	Cmd, Ack, Read, Resp dataset.AttackType
}

// uniformLabels labels every package of a cycle identically.
func uniformLabels(at dataset.AttackType) cycleLabels {
	return cycleLabels{Cmd: at, Ack: at, Read: at, Resp: at}
}

// RunNormalCycle performs one legitimate poll cycle: operator update, write
// command + ack, state read + response, then the inter-cycle gap.
func (s *Simulator) RunNormalCycle(label dataset.AttackType) {
	s.operatorStep()
	s.runCycle(s.desired, uniformLabels(label), cycleOpts{})
}

// cycleOpts vary the poll-cycle body between the legitimate path and the
// attack injectors; the zero value is a fully legitimate cycle.
type cycleOpts struct {
	// apply installs the written block on the device. Default: the
	// validated operator write (invalid blocks are rejected and the device
	// keeps its previous block). MPCI substitutes ApplyUnchecked.
	apply func(ControllerState)
	// reportLevel maps the true measurement to the level the state-read
	// response reports. Default: the truth. CMRI substitutes the frozen
	// reading.
	reportLevel func(measured float64) float64
}

// runCycle performs one poll cycle writing the given controller block:
// write command + ack, state read + response, then the inter-cycle gap.
// All cycle-shaped traffic — normal, CMRI, MPCI — goes through this one
// body, so framing, labeling and timing can never drift apart between
// normal and attack cycles.
func (s *Simulator) runCycle(write ControllerState, label cycleLabels, opts cycleOpts) {
	start := s.now

	// 1. Write command carrying the desired controller block.
	cmdPDU := modbus.WriteMultipleRequest(0, stateRegisters(write, write.Pump, write.Valve, 0, false))
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: cmdPDU},
		write, write.Pump, write.Valve, 0, true, label.Cmd)
	if opts.apply != nil {
		opts.apply(write)
	} else if err := s.ctrl.Apply(write); err != nil {
		// Invalid operator blocks are rejected by the device; keep previous.
		_ = err
	}

	// 2. Write acknowledgement.
	s.advance(s.intraDelay())
	ackPDU := modbus.WriteMultipleResponse(0, 9)
	st := s.ctrl.State()
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: ackPDU},
		st, 0, 0, 0, false, label.Ack)

	// 3. State read command.
	s.advance(s.intraDelay())
	readPDU := modbus.ReadRequest(modbus.FuncReadState, 0, 10)
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: readPDU},
		ControllerState{CycleTime: st.CycleTime}, 0, 0, 0, true, label.Read)

	// 4. Control action + state read response with the level measurement.
	// The device always actuates on the REAL measurement; only the
	// reported value can be falsified in transit.
	s.advance(s.intraDelay())
	measured := s.plant.Measure()
	s.ctrl.Actuate(s.plant, measured)
	pump, valve := s.ctrl.ActuatorView()
	reported := measured
	if opts.reportLevel != nil {
		reported = opts.reportLevel(measured)
	}
	respPDU := modbus.ReadRegistersResponse(modbus.FuncReadState,
		stateRegisters(st, pump, valve, reported, true))
	s.emit(&modbus.RTUFrame{Address: s.cfg.SlaveAddress, PDU: respPDU},
		st, pump, valve, reported, false, label.Resp)

	// Inter-cycle gap.
	period := s.cfg.CycleTime * (1 + s.cfg.CycleJitter*(2*s.rng.Float64()-1))
	if rest := period - (s.now - start); rest > 0 {
		s.advance(rest)
	}
}

// operatorStep evolves the legitimate operator state machine by one cycle.
func (s *Simulator) operatorStep() {
	op := &s.cfg.Operator

	// Finish or continue episodes first.
	switch {
	case s.offLeft > 0:
		s.offLeft--
		if s.offLeft == 0 {
			s.desired.Mode = ModeAuto
		}
		return
	case s.manualLeft > 0:
		s.manualLeft--
		// Thermostat-style manual operation around the band.
		lv := s.plant.Level()
		if lv < s.desired.L+2 {
			s.desired.Pump, s.desired.Valve = 1, 0
		} else if lv > s.desired.H-2 {
			s.desired.Pump, s.desired.Valve = 0, 1
		} else {
			s.desired.Pump, s.desired.Valve = 0, 0
		}
		if s.manualLeft == 0 {
			s.desired.Mode = ModeAuto
			s.desired.Pump, s.desired.Valve = 0, 0
		}
		return
	}
	if s.valveLeft > 0 {
		s.valveLeft--
		if s.valveLeft == 0 {
			s.desired.Scheme = SchemePump
		}
	}

	// Episode starts.
	switch {
	case s.rng.Bernoulli(op.OffEpisodeProb):
		s.offLeft = s.randLen(op.OffLen)
		s.desired.Mode = ModeOff
		return
	case s.rng.Bernoulli(op.ManualEpisodeProb):
		s.manualLeft = s.randLen(op.ManualLen)
		s.desired.Mode = ModeManual
		return
	case s.valveLeft == 0 && s.rng.Bernoulli(op.ValveSchemeProb):
		s.valveLeft = s.randLen(op.ValveSchemeLen)
		s.desired.Scheme = SchemeValve
	}

	// Routine alarm-block changes between legal presets.
	if s.rng.Bernoulli(op.PresetChangeProb) {
		p := op.AlarmPresets[s.rng.Intn(len(op.AlarmPresets))]
		s.desired.LL, s.desired.L, s.desired.H, s.desired.HH = p.LL, p.L, p.H, p.HH
	}
}

func (s *Simulator) randLen(bounds [2]int) int {
	if bounds[1] <= bounds[0] {
		return bounds[0]
	}
	return bounds[0] + s.rng.Intn(bounds[1]-bounds[0]+1)
}
