package watertank

import (
	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/scenario"
)

// GenConfig controls dataset generation.
type GenConfig struct {
	Sim SimConfig
	// TotalPackages is the approximate dataset size (generation stops at
	// the first episode boundary past this count).
	TotalPackages int
	// AttackRatio is the target fraction of attack-labeled packages.
	AttackRatio float64
	// AttackTypes restricts which attacks are injected (default: all 7).
	AttackTypes []dataset.AttackType
	// WarmupCycles runs the plant before recording so the on/off loop has
	// settled into its band when the capture starts.
	WarmupCycles int
}

// DefaultGenConfig returns a generation config mirroring the gas-pipeline
// generator's proportions at the given size.
func DefaultGenConfig(totalPackages int, seed uint64) GenConfig {
	sim := DefaultSimConfig()
	sim.Seed = seed
	return GenConfig{
		Sim:           sim,
		TotalPackages: totalPackages,
		AttackRatio:   0.219,
		AttackTypes:   defaultAttackSchedule(),
		WarmupCycles:  200,
	}
}

// Generate runs the simulation through the shared generation loop
// (scenario.RunGeneration) and returns the labeled dataset.
func Generate(cfg GenConfig) (*dataset.Dataset, error) {
	sim, err := NewSimulator(cfg.Sim)
	if err != nil {
		return nil, err
	}
	sched := mathx.NewRNG(cfg.Sim.Seed ^ 0x7A11C4)
	schedule := cfg.AttackTypes
	if len(schedule) == 0 {
		schedule = defaultAttackSchedule()
	}
	return scenario.RunGeneration(sim, sched, scenario.GenConfig{
		TotalPackages: cfg.TotalPackages,
		AttackRatio:   cfg.AttackRatio,
		Seed:          cfg.Sim.Seed,
	}, cfg.WarmupCycles, schedule, scenario.DefaultEpisodeLengths())
}

// defaultAttackSchedule interleaves episode types with the same emphasis as
// the gas pipeline's schedule: response injections dominate, command
// injections and reconnaissance follow, MFCI and DoS are comparatively
// rare.
func defaultAttackSchedule() []dataset.AttackType {
	return scenario.WeightedSchedule([]scenario.ScheduleWeight{
		{Attack: dataset.CMRI, Weight: 11},
		{Attack: dataset.NMRI, Weight: 8},
		{Attack: dataset.Recon, Weight: 6},
		{Attack: dataset.MPCI, Weight: 5},
		{Attack: dataset.MSCI, Weight: 3},
		{Attack: dataset.MFCI, Weight: 2},
		{Attack: dataset.DOS, Weight: 1},
	})
}

// GenerateNormal produces an attack-free capture (the paper's "air-gapped"
// observation mode used to build the signature database).
func GenerateNormal(totalPackages int, seed uint64) (*dataset.Dataset, error) {
	cfg := DefaultGenConfig(totalPackages, seed)
	cfg.AttackRatio = 0
	return Generate(cfg)
}
