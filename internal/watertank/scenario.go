package watertank

import (
	"icsdetect/internal/dataset"
	"icsdetect/internal/scenario"
	"icsdetect/internal/signature"
	"icsdetect/internal/tap"
)

// Registers returns the water tank field device's register layout and its
// mapping onto the Table I package columns: the alarm block rides the
// setpoint/PID parameter columns (H → setpoint, HH → gain, L → reset_rate,
// LL → deadband), the poll cycle time keeps its column, the level
// measurement rides the pressure column, and the PID rate column is absent
// (-1) — the tank has no PID loop.
func Registers() tap.RegisterMap {
	return tap.RegisterMap{
		Setpoint: 0, Gain: 1, ResetRate: 2, Deadband: 3, CycleTime: 4,
		Rate: -1, Mode: 5, Scheme: 6, Pump: 7, Solenoid: 8, Pressure: 9,
		MinRegisters: 9,
	}
}

// testbed implements scenario.Scenario for the water storage tank.
type testbed struct{}

// Scenario returns the water storage tank testbed, the framework's
// canonical second process.
func Scenario() scenario.Scenario { return testbed{} }

func init() { scenario.Register(Scenario()) }

func (testbed) Name() string               { return "watertank" }
func (testbed) Registers() tap.RegisterMap { return Registers() }

func (testbed) NewSim(seed uint64) (scenario.Sim, error) {
	cfg := DefaultSimConfig()
	cfg.Seed = seed
	return NewSimulator(cfg)
}

func (testbed) Generate(cfg scenario.GenConfig) (*dataset.Dataset, error) {
	g := DefaultGenConfig(cfg.TotalPackages, cfg.Seed)
	g.AttackRatio = cfg.AttackRatio
	if len(cfg.AttackTypes) > 0 {
		g.AttackTypes = cfg.AttackTypes
	}
	return Generate(g)
}

// Granularity scales the discretization with the capture size. The tank's
// parameter space is smaller than the pipeline's (four alarm values drawn
// from a handful of presets, no PID trims), so the parameter-vector
// clusters never need the paper's 32 — but they must stay at least one per
// preset even on small captures: coarser clusters grow radii wide enough to
// absorb tampered alarm blocks, blinding the package level to MPCI.
func (testbed) Granularity(n int) signature.Granularity {
	switch {
	case n >= 150000:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 20, SetpointBins: 8, PIDClusters: 12}
	case n >= 50000:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 8, SetpointBins: 5, PIDClusters: 6}
	default:
		return signature.Granularity{IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 5, SetpointBins: 3, PIDClusters: 4}
	}
}
