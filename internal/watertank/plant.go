// Package watertank simulates the laboratory water storage tank testbed
// from the same Mississippi State SCADA laboratory as the gas pipeline
// (Morris et al.): a storage tank fed by a pump, drained by a continuous
// process demand line and an operator-controlled dump valve, instrumented
// with a level sensor, and regulated by an on/off controller around four
// alarm setpoints LL < L < H < HH. A SCADA master polls the field device
// over Modbus; an attack injector reproduces water-tank variants of the
// seven attack categories of the paper's Table II.
//
// The package implements the scenario contract of internal/scenario, making
// the water tank the framework's canonical second process: the detector
// itself sees only the Table I package schema, with the tank's level on the
// pressure_measurement column and its alarm block on the setpoint/PID
// parameter columns (see Registers for the exact mapping).
package watertank

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// PlantConfig holds the physical constants of the tank.
type PlantConfig struct {
	// Capacity is the full tank level in percent; the sensor reports level
	// in [0, Capacity].
	Capacity float64
	// PumpRate is the level rise per second with the pump running and no
	// outflow (%/s).
	PumpRate float64
	// DemandRate is the continuous process draw at full level (%/s);
	// outflow through the demand line scales with level but never stops
	// entirely while the tank holds water.
	DemandRate float64
	// ValveRate is the level drop per second through the fully open dump
	// valve at full level (%/s); like a real gravity drain it scales with
	// the square root of the head.
	ValveRate float64
	// ProcessNoise is the standard deviation of random level perturbations
	// per sqrt-second (sloshing, demand variation).
	ProcessNoise float64
	// SensorNoise is the standard deviation of measurement error in level
	// percent.
	SensorNoise float64
	// InitialLevel is the level at simulation start.
	InitialLevel float64
}

// DefaultPlantConfig returns constants tuned so the on/off control loop
// cycles the pump every few tens of seconds between the L and H setpoints,
// with visible but bounded process noise.
func DefaultPlantConfig() PlantConfig {
	return PlantConfig{
		Capacity:     100,
		PumpRate:     2.2,
		DemandRate:   1.1,
		ValveRate:    3.0,
		ProcessNoise: 0.08,
		SensorNoise:  0.05,
		InitialLevel: 50,
	}
}

// Plant integrates the tank level dynamics. Not safe for concurrent use;
// the simulator owns it.
type Plant struct {
	cfg   PlantConfig
	level float64
	// PumpOn and ValveOpen drive the dynamics; the controller sets them
	// each cycle.
	PumpOn    bool
	ValveOpen bool
	rng       *mathx.RNG
}

// NewPlant constructs a plant with the given constants and noise stream.
func NewPlant(cfg PlantConfig, rng *mathx.RNG) (*Plant, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("watertank: Capacity must be positive, got %g", cfg.Capacity)
	}
	if cfg.PumpRate <= 0 || cfg.DemandRate < 0 || cfg.ValveRate <= 0 {
		return nil, fmt.Errorf("watertank: pump/demand/valve rates invalid (%g, %g, %g)",
			cfg.PumpRate, cfg.DemandRate, cfg.ValveRate)
	}
	if cfg.PumpRate <= cfg.DemandRate {
		return nil, fmt.Errorf("watertank: pump rate %g cannot overcome demand %g",
			cfg.PumpRate, cfg.DemandRate)
	}
	return &Plant{cfg: cfg, level: mathx.Clamp(cfg.InitialLevel, 0, cfg.Capacity), rng: rng}, nil
}

// Level returns the true (noise-free sensor aside) tank level.
func (p *Plant) Level() float64 { return p.level }

// Measure returns a noisy sensor reading of the current level.
func (p *Plant) Measure() float64 {
	m := p.level + p.rng.NormScaled(0, p.cfg.SensorNoise)
	return mathx.Clamp(m, 0, p.cfg.Capacity)
}

// Step advances the dynamics by dt seconds using forward Euler with the
// current actuator settings. Sub-stepping keeps the integration stable for
// the long inter-cycle gaps.
func (p *Plant) Step(dt float64) {
	const maxSub = 0.05
	for dt > 0 {
		h := math.Min(dt, maxSub)
		dt -= h
		inflow := 0.0
		if p.PumpOn {
			// The pump fills at a constant rate; a float switch tapers it
			// off over the last 5% so it cannot push water over the brim.
			inflow = p.cfg.PumpRate * mathx.Clamp((p.cfg.Capacity-p.level)/(0.05*p.cfg.Capacity), 0, 1)
		}
		frac := p.level / p.cfg.Capacity
		// The demand line keeps drawing while the tank holds water; the
		// 0.25 floor models the pressurized distribution side.
		demand := p.cfg.DemandRate * (0.25 + 0.75*frac)
		if p.level <= 0 {
			demand = 0
		}
		outflow := demand
		if p.ValveOpen {
			outflow += p.cfg.ValveRate * math.Sqrt(math.Max(frac, 0))
		}
		noise := p.rng.NormScaled(0, p.cfg.ProcessNoise*math.Sqrt(h))
		p.level += h*(inflow-outflow) + noise
		p.level = mathx.Clamp(p.level, 0, p.cfg.Capacity)
	}
}
