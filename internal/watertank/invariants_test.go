package watertank

import (
	"testing"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
)

// TestLevelStaysInBounds: the tank level is physically confined to
// [0, Capacity] no matter what the controller — or an attacker driving the
// actuators — does.
func TestLevelStaysInBounds(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Seed = 21
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		if lv := sim.plant.Level(); lv < 0 || lv > cfg.Plant.Capacity {
			t.Fatalf("%s: level %v outside [0, %v]", stage, lv, cfg.Plant.Capacity)
		}
	}
	for i := 0; i < 200; i++ {
		sim.RunNormalCycle(dataset.Normal)
		check("normal")
	}
	// Adversarial actuator states push hardest against the bounds.
	sim.RunMSCIEpisode(40) // may pin the pump on or the valve open
	check("msci")
	sim.RunMPCIEpisode(40) // may corrupt the alarm ordering
	check("mpci")
	for i := 0; i < 100; i++ {
		sim.RunNormalCycle(dataset.Normal)
		check("recovery")
	}
	for _, p := range sim.Packages() {
		if p.Pressure < 0 || p.Pressure > cfg.Plant.Capacity {
			t.Fatalf("package level %v outside [0, %v]", p.Pressure, cfg.Plant.Capacity)
		}
	}
}

// TestAlarmOrderingInvariant: legal controller blocks keep LL < L < H < HH;
// Validate rejects every violation of the ordering, and all shipped presets
// satisfy it.
func TestAlarmOrderingInvariant(t *testing.T) {
	base := ControllerState{
		LL: 10, L: 40, H: 60, HH: 90, CycleTime: 0.5, Mode: ModeAuto, Scheme: SchemePump,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("legal block rejected: %v", err)
	}
	bad := []ControllerState{
		func(s ControllerState) ControllerState { s.LL, s.L = s.L, s.LL; return s }(base),
		func(s ControllerState) ControllerState { s.H, s.L = s.L, s.H; return s }(base),
		func(s ControllerState) ControllerState { s.HH = s.H; return s }(base),
		func(s ControllerState) ControllerState { s.L = s.H; return s }(base),
		func(s ControllerState) ControllerState { s.LL = -1; return s }(base),
		func(s ControllerState) ControllerState { s.CycleTime = 0; return s }(base),
		func(s ControllerState) ControllerState { s.Mode = 3; return s }(base),
		func(s ControllerState) ControllerState { s.Scheme = 2; return s }(base),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("corrupt block %d accepted: %+v", i, s)
		}
	}
	for i, p := range defaultAlarmPresets() {
		if !(p.LL < p.L && p.L < p.H && p.H < p.HH) {
			t.Errorf("preset %d violates LL<L<H<HH: %+v", i, p)
		}
	}
}

// TestControllerConvergence: from random initial levels, the automatic
// on/off loop must bring the tank into the [L, H] operating band and hold
// it there (with a noise margin), under both control schemes and a seeded
// rng.
func TestControllerConvergence(t *testing.T) {
	const (
		dt     = 0.5
		settle = 400 // cycles to converge (200 s)
		hold   = 200 // cycles the band must then hold
		margin = 5.0
	)
	preset := defaultAlarmPresets()[0]
	for _, scheme := range []int{SchemePump, SchemeValve} {
		rng := mathx.NewRNG(99)
		for trial := 0; trial < 6; trial++ {
			initial := rng.Range(0, 100)
			pcfg := DefaultPlantConfig()
			pcfg.InitialLevel = initial
			plant, err := NewPlant(pcfg, rng.Split())
			if err != nil {
				t.Fatal(err)
			}
			ctrl, err := NewController(ControllerState{
				LL: preset.LL, L: preset.L, H: preset.H, HH: preset.HH,
				CycleTime: dt, Mode: ModeAuto, Scheme: scheme,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < settle; i++ {
				ctrl.Actuate(plant, plant.Measure())
				plant.Step(dt)
			}
			for i := 0; i < hold; i++ {
				ctrl.Actuate(plant, plant.Measure())
				plant.Step(dt)
				if lv := plant.Level(); lv < preset.L-margin || lv > preset.H+margin {
					t.Fatalf("scheme %d from level %.1f: level %.2f left band [%g, %g] at hold cycle %d",
						scheme, initial, lv, preset.L-margin, preset.H+margin, i)
				}
			}
		}
	}
}

// TestOverflowFailsafe: with the pump forced on in manual mode, the HH
// failsafe valve must cap the level below the physical brim.
func TestOverflowFailsafe(t *testing.T) {
	rng := mathx.NewRNG(7)
	pcfg := DefaultPlantConfig()
	pcfg.InitialLevel = 70
	plant, err := NewPlant(pcfg, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ControllerState{
		LL: 10, L: 40, H: 60, HH: 90, CycleTime: 0.5,
		Mode: ModeManual, Pump: 1, Valve: 0, Scheme: SchemePump,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for i := 0; i < 800; i++ {
		ctrl.Actuate(plant, plant.Measure())
		plant.Step(0.5)
		peak = max(peak, plant.Level())
	}
	if peak >= 95 {
		t.Fatalf("failsafe never engaged: level peaked at %.2f", peak)
	}
	if peak < 89 {
		t.Fatalf("pump forced on never approached HH: peak %.2f", peak)
	}
}
