package nn

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// ReconTrainConfig controls TrainRecon. The zero value selects the
// defaults below.
type ReconTrainConfig struct {
	// Epochs is the number of passes over the sample set (default 20).
	Epochs int
	// BatchSize is the minibatch width (default 32).
	BatchSize int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// ClipNorm is the global gradient-norm clip (default 5; <0 disables).
	ClipNorm float64
	// Seed drives the shuffle order (deterministic training).
	Seed uint64
}

func (c *ReconTrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
}

// TrainRecon fits a reconstruction network to normal-traffic window
// samples by minibatch Adam on the mean-squared reconstruction error,
// mirroring the classifier trainer's discipline: deterministic shuffle
// from the seed, per-batch gradient averaging with a global-norm clip,
// and inference-cache invalidation after every optimizer step. It
// returns the final epoch's mean loss.
func TrainRecon(net ReconNet, samples [][]float64, cfg ReconTrainConfig) (float64, error) {
	cfg.defaults()
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no samples to train reconstruction network")
	}
	t, d := net.InputDims()
	for i, s := range samples {
		if len(s) != t*d {
			return 0, fmt.Errorf("nn: sample %d has %d values, want %d×%d", i, len(s), t, d)
		}
	}
	rng := mathx.NewRNG(cfg.Seed)
	opt := NewAdam(cfg.LR)
	params := net.params()
	g := net.newGrads()
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	var epochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g.zero()
			for _, k := range idx[start:end] {
				sum += net.forwardBackward(samples[k], g)
			}
			scaleAndClip(g.slices(), 1/float64(end-start), cfg.ClipNorm)
			if err := opt.Step(params, g.slices()); err != nil {
				return 0, err
			}
			net.invalidate()
		}
		epochLoss = sum / float64(len(idx))
	}
	return epochLoss, nil
}

// scaleAndClip averages the accumulated gradients by scale, then applies
// a global-norm clip — the same discipline as GradBuffer.ClipAndScale.
func scaleAndClip(grads [][]float64, scale, clipNorm float64) {
	var norm float64
	for _, s := range grads {
		for i := range s {
			s[i] *= scale
			norm += s[i] * s[i]
		}
	}
	norm = math.Sqrt(norm)
	if clipNorm > 0 && norm > clipNorm {
		k := clipNorm / norm
		for _, s := range grads {
			for i := range s {
				s[i] *= k
			}
		}
	}
}
