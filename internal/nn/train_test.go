package nn

import (
	"math"
	"testing"

	"icsdetect/internal/mathx"
)

// makeCyclicData builds several fragments of a noisy cyclic pattern.
func makeCyclicData(rng *mathx.RNG, classes, frags, length int) []Sequence {
	out := make([]Sequence, frags)
	for f := range out {
		seq := Sequence{}
		phase := rng.Intn(classes)
		for i := 0; i < length; i++ {
			x := make([]float64, classes)
			x[(phase+i)%classes] = 1
			seq.Inputs = append(seq.Inputs, x)
			seq.Targets = append(seq.Targets, (phase+i+1)%classes)
		}
		out[f] = seq
	}
	return out
}

// TestWorkerCountEquivalence: gradients are summed over the batch before
// the optimizer step, so the reference trainer must produce an equivalent
// model regardless of the worker count (bitwise equality is too strict with
// float reordering across workers; the loss must agree closely and
// predictions must match). The batched trainer has the stronger bitwise
// guarantee, covered in trainbatch_test.go.
func TestWorkerCountEquivalence(t *testing.T) {
	rng := mathx.NewRNG(13)
	data := makeCyclicData(rng, 5, 4, 60)

	train := func(workers int) (*Classifier, float64) {
		c, err := NewClassifier(5, []int{12}, 5, 99)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := Train(c, data, TrainConfig{
			Epochs: 5, Window: 20, BatchSize: 4, LR: 3e-3, ClipNorm: 5,
			Seed: 7, Workers: workers, Trainer: TrainerReference,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, loss
	}
	c1, l1 := train(1)
	c2, l2 := train(4)
	if math.Abs(l1-l2) > 0.05*(math.Abs(l1)+0.01) {
		t.Errorf("losses diverge across worker counts: %v vs %v", l1, l2)
	}
	// Predictions agree on argmax for a probe sequence.
	s1, s2 := c1.NewState(), c2.NewState()
	p1 := make([]float64, 5)
	p2 := make([]float64, 5)
	agree := 0
	for i := 0; i < 30; i++ {
		x := make([]float64, 5)
		x[i%5] = 1
		c1.Step(s1, x, p1)
		c2.Step(s2, x, p2)
		if mathx.ArgMax(p1) == mathx.ArgMax(p2) {
			agree++
		}
	}
	if agree < 27 {
		t.Errorf("only %d/30 argmax agreements across worker counts", agree)
	}
}

func TestLRDecaySchedule(t *testing.T) {
	rng := mathx.NewRNG(14)
	data := makeCyclicData(rng, 4, 2, 40)
	c, err := NewClassifier(4, []int{8}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, 0, 8)
	_, err = Train(c, data, TrainConfig{
		Epochs: 8, Window: 16, BatchSize: 2, LR: 5e-3, ClipNorm: 5, Seed: 1,
		LRDecayEpoch: 4, LRDecayFactor: 0.1,
		Progress: func(epoch int, loss float64) {
			losses = append(losses, loss)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 8 {
		t.Fatalf("progress called %d times", len(losses))
	}
	// Loss must improve from first to last epoch.
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not improve: %v", losses)
	}
}

// TestSkippedTargets: steps with negative targets contribute no loss and no
// gradient but still advance the recurrent state.
func TestSkippedTargets(t *testing.T) {
	c, err := NewClassifier(3, []int{6}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq := &Sequence{
		Inputs:  [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		Targets: []int{-1, 1, -1},
	}
	g := c.NewGradBuffer()
	loss, steps := c.lossForwardBackward(seq, g)
	if steps != 1 {
		t.Fatalf("scored %d steps, want 1", steps)
	}
	if loss <= 0 {
		t.Errorf("loss = %v", loss)
	}
	// A sequence with no valid targets yields zero gradient steps.
	g2 := c.NewGradBuffer()
	_, steps = c.lossForwardBackward(&Sequence{
		Inputs:  [][]float64{{1, 0, 0}},
		Targets: []int{-1},
	}, g2)
	if steps != 0 {
		t.Errorf("scored %d steps on targetless sequence", steps)
	}
}

// TestStepDeterministic: identical state + input give identical output.
func TestStepDeterministic(t *testing.T) {
	c, err := NewClassifier(4, []int{8, 8}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0, 1, 0, 0}
	p1 := make([]float64, 5)
	p2 := make([]float64, 5)
	s1, s2 := c.NewState(), c.NewState()
	for i := 0; i < 10; i++ {
		c.Step(s1, x, p1)
		c.Step(s2, x, p2)
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("step diverged at iteration %d", i)
			}
		}
	}
}
