package nn

import (
	"fmt"

	"icsdetect/internal/mathx"
)

// BatchBuffer is the reusable scratch memory for StepBatch: per-layer gate
// buffers and the batched logits, sized once for a maximum batch width.
// Owning one buffer per worker goroutine removes every per-step allocation
// from the batched inference path; a buffer must not be shared between
// concurrent StepBatch calls.
type BatchBuffer struct {
	maxBatch int
	// z[l] holds the concatenated 4H gate pre-activations of layer l for the
	// whole batch, row-major with stride 4H (one row per stream); zu[l] is
	// the recurrent U·h product, combined into z elementwise so both
	// products can use the overwriting GEMM kernel.
	z, zu [][]float64
	// logits holds the batched dense-head outputs, stride Classes().
	logits []float64
	// xs collects the per-stream input slices handed to the GEMM kernels.
	xs [][]float64
}

// NewBatchBuffer allocates scratch for batches of up to maxBatch streams.
func (c *Classifier) NewBatchBuffer(maxBatch int) *BatchBuffer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &BatchBuffer{
		maxBatch: maxBatch,
		z:        make([][]float64, len(c.Layers)),
		zu:       make([][]float64, len(c.Layers)),
		logits:   make([]float64, maxBatch*c.Out.OutputSize),
		xs:       make([][]float64, maxBatch),
	}
	for i, l := range c.Layers {
		b.z[i] = make([]float64, maxBatch*numGates*l.HiddenSize)
		b.zu[i] = make([]float64, maxBatch*numGates*l.HiddenSize)
	}
	return b
}

// MaxBatch returns the batch width the buffer was sized for.
func (b *BatchBuffer) MaxBatch() int { return b.maxBatch }

// StepBatch advances n = len(states) independent recurrent states through
// one batched forward pass and writes each stream's class probability
// vector into probs[i] (len = Classes()). inputs[i] is stream i's input
// vector; states are updated in place. It is the batched equivalent of
// calling Step once per stream, and by construction produces bitwise
// identical hidden states and probabilities: every output element is the
// same mathx.Dot in the same order, only the loop nesting changes so that
// each weight row is streamed from memory once per batch instead of once
// per stream (one matrix-matrix pass per layer instead of n matrix-vector
// passes).
//
// buf must come from NewBatchBuffer on this classifier with
// MaxBatch() >= n, and must not be used concurrently.
func (c *Classifier) StepBatch(buf *BatchBuffer, states []*State, inputs [][]float64, probs [][]float64) {
	c.StepBatchLogits(buf, states, inputs, probs)
	for i := range probs {
		mathx.Softmax(probs[i], probs[i])
	}
}

// StepBatchLogits is StepBatch without the final softmax: scores[i]
// receives stream i's raw logit vector. Softmax is strictly monotone and
// shared across one prediction, so top-k ranks computed over logits equal
// ranks over probabilities; hot inference paths that only need ranks use
// this variant to skip Classes() exponentials per stream per step.
func (c *Classifier) StepBatchLogits(buf *BatchBuffer, states []*State, inputs [][]float64, scores [][]float64) {
	n := len(states)
	if n == 0 {
		return
	}
	if len(inputs) != n || len(scores) != n {
		panic(fmt.Sprintf("nn: batch size mismatch (states=%d inputs=%d scores=%d)",
			n, len(inputs), len(scores)))
	}
	if n > buf.maxBatch {
		panic(fmt.Sprintf("nn: batch of %d exceeds buffer capacity %d", n, buf.maxBatch))
	}

	xs := buf.xs[:n]
	copy(xs, inputs)
	c.stepBatchLayers(buf, states, n, 0)
	c.stepBatchHead(buf, scores, n)
}

// StepBatchLogitsOneHot is StepBatchLogits with the first layer's inputs
// given as one-hot active-column index sets instead of dense vectors — the
// batched engine's per-package hot path. The W GEMM of layer 0 becomes one
// column gather per stream (a handful of contiguous vector adds each); the
// recurrent product, combine and gate epilogue are the shared batched code,
// so the verdicts stay bitwise-identical to the dense batched pass and to
// the sequential StepLogitsOneHot.
func (c *Classifier) StepBatchLogitsOneHot(buf *BatchBuffer, states []*State, idxs [][]int, scores [][]float64) {
	n := len(states)
	if n == 0 {
		return
	}
	if len(idxs) != n || len(scores) != n {
		panic(fmt.Sprintf("nn: batch size mismatch (states=%d inputs=%d scores=%d)",
			n, len(idxs), len(scores)))
	}
	if n > buf.maxBatch {
		panic(fmt.Sprintf("nn: batch of %d exceeds buffer capacity %d", n, buf.maxBatch))
	}

	l0 := c.Layers[0]
	H := l0.HiddenSize
	z := buf.z[0][:n*numGates*H]
	wt := l0.wtrans()
	for i := 0; i < n; i++ {
		mathx.OneHotGather(z[i*numGates*H:(i+1)*numGates*H], wt, idxs[i])
		buf.xs[i] = states[i].h[0]
	}
	zu := buf.zu[0][:n*numGates*H]
	l0.U.MulRowsT(zu, buf.xs[:n])
	for i := 0; i < n; i++ {
		row := z[i*numGates*H : (i+1)*numGates*H]
		urow := zu[i*numGates*H : (i+1)*numGates*H]
		l0.combineGatesCellUpdate(row, urow, states[i].h[0], states[i].c[0])
		buf.xs[i] = states[i].h[0]
	}
	c.stepBatchLayers(buf, states, n, 1)
	c.stepBatchHead(buf, scores, n)
}

// stepBatchLayers advances layers [from, len) for a batch of n streams.
// buf.xs must hold each stream's input to layer `from`; on return it holds
// the top layer's fresh hidden vectors.
func (c *Classifier) stepBatchLayers(buf *BatchBuffer, states []*State, n, from int) {
	for li := from; li < len(c.Layers); li++ {
		l := c.Layers[li]
		H := l.HiddenSize
		z := buf.z[li][:n*numGates*H]
		zu := buf.zu[li][:n*numGates*H]

		// Gate pre-activations for the whole batch: z = X·Wᵀ + H_prev·Uᵀ + B.
		// The two products run as separate overwriting GEMMs and combine
		// elementwise in Step's exact order (Wx, then +Uh, then +B), so the
		// SIMD kernel applies to both and the sums stay bitwise identical.
		l.W.MulRowsT(z, buf.xs[:n])
		for i := 0; i < n; i++ {
			buf.xs[i] = states[i].h[li]
		}
		l.U.MulRowsT(zu, buf.xs[:n])

		// Combine, activations and cell update, in place on each stream's
		// state. The pre-activations for the whole layer are complete, so
		// overwriting h/c here cannot feed back into this layer's gates.
		for i := 0; i < n; i++ {
			row := z[i*numGates*H : (i+1)*numGates*H]
			urow := zu[i*numGates*H : (i+1)*numGates*H]
			l.combineGatesCellUpdate(row, urow, states[i].h[li], states[i].c[li])
			// The next layer reads this layer's fresh hidden vector.
			buf.xs[i] = states[i].h[li]
		}
	}
}

// combineGatesCellUpdate fuses the batched epilogue into one pass per
// stream: combine the two GEMM products with the bias ((wx + uh) + b, the
// exact order of the unfused loops), activate the four gates and update
// c/h — without a second traversal of the 4H pre-activation rows and
// without writing activated gates back. Per element the operation chain is
// identical to the unfused form, so the fusion is bitwise-free.
func (l *LSTMLayer) combineGatesCellUpdate(row, urow, h, c []float64) {
	for j := range row {
		row[j] = (row[j] + urow[j]) + l.B[j]
	}
	l.gatesCellUpdate(row, h, c)
}

// stepBatchHead runs the batched dense head: logits = H_top·Wᵀ + B, reading
// the top hidden vectors from buf.xs.
func (c *Classifier) stepBatchHead(buf *BatchBuffer, scores [][]float64, n int) {
	K := c.Out.OutputSize
	logits := buf.logits[:n*K]
	c.Out.W.MulRowsT(logits, buf.xs[:n])
	for i := 0; i < n; i++ {
		row := logits[i*K : (i+1)*K]
		for j := range row {
			row[j] += c.Out.B[j]
		}
		copy(scores[i], row)
	}
}
