package nn

import (
	"fmt"
	"math"
)

// Optimizer applies a gradient step to model parameters. Gradients are
// provided as flat slices aligned with Classifier.Params.
type Optimizer interface {
	// Step updates params in place from grads (same order and shapes).
	Step(params []Param, grads [][]float64) error
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity [][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one SGD update.
func (o *SGD) Step(params []Param, grads [][]float64) error {
	if len(params) != len(grads) {
		return fmt.Errorf("nn: sgd: %d params vs %d grads", len(params), len(grads))
	}
	if o.velocity == nil {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, len(p.Data))
		}
	}
	for i, p := range params {
		g := grads[i]
		if len(g) != len(p.Data) {
			return fmt.Errorf("nn: sgd: param %q has %d values, grad has %d", p.Name, len(p.Data), len(g))
		}
		v := o.velocity[i]
		for j := range p.Data {
			v[j] = o.Momentum*v[j] - o.LR*g[j]
			p.Data[j] += v[j]
		}
	}
	return nil
}

// Adam implements the Adam optimizer (Kingma & Ba), the de-facto default
// for LSTM training.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m [][]float64
	v [][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam constructs Adam with standard hyper-parameters (β1=0.9, β2=0.999,
// ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update.
func (o *Adam) Step(params []Param, grads [][]float64) error {
	if len(params) != len(grads) {
		return fmt.Errorf("nn: adam: %d params vs %d grads", len(params), len(grads))
	}
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, len(p.Data))
			o.v[i] = make([]float64, len(p.Data))
		}
	}
	o.t++
	// Bias-corrected step size.
	lrT := o.LR * math.Sqrt(1-math.Pow(o.Beta2, float64(o.t))) / (1 - math.Pow(o.Beta1, float64(o.t)))
	for i, p := range params {
		g := grads[i]
		if len(g) != len(p.Data) {
			return fmt.Errorf("nn: adam: param %q has %d values, grad has %d", p.Name, len(p.Data), len(g))
		}
		m, v := o.m[i], o.v[i]
		for j := range p.Data {
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g[j]
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g[j]*g[j]
			p.Data[j] -= lrT * m[j] / (math.Sqrt(v[j]) + o.Epsilon)
		}
	}
	return nil
}
