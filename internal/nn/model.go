package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"icsdetect/internal/mathx"
)

// Param is one flat parameter tensor of the model. Data aliases model
// storage, so optimizer updates apply in place.
type Param struct {
	Name string
	Data []float64
}

// Classifier is the stacked LSTM softmax classifier of the paper (Fig. 2):
// one-hot encoded discretized packages pass through one or more LSTM layers;
// the last hidden vector maps through a dense layer to |S| logits and a
// softmax activation producing Pr(s_i | c(t-1), c(t-2), …).
type Classifier struct {
	Layers []*LSTMLayer
	Out    *Dense

	// m32 caches the frozen float32 inference snapshot (built lazily by
	// Infer32, dropped by InvalidateInference). Unexported, so gob skips it.
	m32 atomic.Pointer[InferModel32]
}

// NewClassifier builds a classifier with the given input dimensionality,
// hidden layer sizes (one per stacked LSTM layer) and number of signature
// classes.
func NewClassifier(inputSize int, hidden []int, classes int, seed uint64) (*Classifier, error) {
	if inputSize <= 0 || classes <= 0 {
		return nil, fmt.Errorf("nn: invalid classifier sizes (input=%d classes=%d)", inputSize, classes)
	}
	if len(hidden) == 0 {
		return nil, fmt.Errorf("nn: at least one LSTM layer is required")
	}
	rng := mathx.NewRNG(seed)
	c := &Classifier{}
	in := inputSize
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("nn: non-positive hidden size %d", h)
		}
		c.Layers = append(c.Layers, NewLSTMLayer(in, h, rng))
		in = h
	}
	c.Out = NewDense(in, classes, rng)
	return c, nil
}

// InputSize returns the expected input vector length.
func (c *Classifier) InputSize() int { return c.Layers[0].InputSize }

// Classes returns |S|, the softmax width.
func (c *Classifier) Classes() int { return c.Out.OutputSize }

// NumParams returns the total number of scalar parameters.
func (c *Classifier) NumParams() int {
	n := 0
	for _, p := range c.Params() {
		n += len(p.Data)
	}
	return n
}

// Params returns all parameter tensors in a stable order.
func (c *Classifier) Params() []Param {
	var out []Param
	for i, l := range c.Layers {
		for _, p := range l.params() {
			p.Name = fmt.Sprintf("lstm%d.%s", i, p.Name)
			out = append(out, p)
		}
	}
	for _, p := range c.Out.params() {
		p.Name = "out." + p.Name
		out = append(out, p)
	}
	return out
}

// State is the recurrent state (h_t, c_t per layer) of a streaming
// classification session. The combined detector keeps one State per
// monitored link.
type State struct {
	h, c [][]float64
	// z is per-layer gate pre-activation scratch for the allocation-free
	// sequential inference step (StepLogits).
	z [][]float64
}

// NewState returns a zero state for the classifier.
func (c *Classifier) NewState() *State {
	s := &State{
		h: make([][]float64, len(c.Layers)),
		c: make([][]float64, len(c.Layers)),
		z: make([][]float64, len(c.Layers)),
	}
	for i, l := range c.Layers {
		s.h[i] = make([]float64, l.HiddenSize)
		s.c[i] = make([]float64, l.HiddenSize)
		s.z[i] = make([]float64, numGates*l.HiddenSize)
	}
	return s
}

// Reset zeroes the state in place (fragment boundaries).
func (s *State) Reset() {
	for i := range s.h {
		mathx.Fill(s.h[i], 0)
		mathx.Fill(s.c[i], 0)
	}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{
		h: make([][]float64, len(s.h)),
		c: make([][]float64, len(s.c)),
		z: make([][]float64, len(s.z)),
	}
	for i := range s.h {
		out.h[i] = append([]float64(nil), s.h[i]...)
		out.c[i] = append([]float64(nil), s.c[i]...)
		out.z[i] = make([]float64, len(s.z[i]))
	}
	return out
}

// Step advances the recurrent state with input x and writes the class
// probability vector into probs (len = Classes()).
func (c *Classifier) Step(state *State, x, probs []float64) {
	c.StepLogits(state, x, probs)
	mathx.Softmax(probs, probs)
}

// StepLogits is Step without the final softmax: scores receives the raw
// logit vector. Softmax is monotone, so top-k ranking over logits agrees
// with ranking over probabilities up to float rounding — and unlike
// probabilities, distinct logits can never collapse into a tie, so
// inference paths that only need ranks use this variant (it also skips
// Classes() exponentials per step).
func (c *Classifier) StepLogits(state *State, x, scores []float64) {
	cur := x
	for i, l := range c.Layers {
		l.stepInfer(state.z[i], cur, state.h[i], state.c[i])
		cur = state.h[i]
	}
	c.Out.forwardInfer(scores, cur)
}

// GradBuffer accumulates gradients for every parameter of a classifier. One
// buffer per training worker; buffers merge before the optimizer step.
type GradBuffer struct {
	lstm  []*lstmGrads
	dense *denseGrads
	// Steps counts the timesteps accumulated, used to normalize.
	Steps int
}

// NewGradBuffer allocates a zeroed gradient buffer shaped like c.
func (c *Classifier) NewGradBuffer() *GradBuffer {
	g := &GradBuffer{dense: newDenseGrads(c.Out)}
	for _, l := range c.Layers {
		g.lstm = append(g.lstm, newLSTMGrads(l))
	}
	return g
}

// Slices returns the flat gradient tensors in the same order as
// Classifier.Params.
func (g *GradBuffer) Slices() [][]float64 {
	var out [][]float64
	for _, lg := range g.lstm {
		out = append(out, lg.slices()...)
	}
	out = append(out, g.dense.slices()...)
	return out
}

// Zero clears the buffer.
func (g *GradBuffer) Zero() {
	for _, s := range g.Slices() {
		mathx.Fill(s, 0)
	}
	g.Steps = 0
}

// Merge adds other into g.
func (g *GradBuffer) Merge(other *GradBuffer) {
	gs, os := g.Slices(), other.Slices()
	for i := range gs {
		mathx.Axpy(gs[i], 1, os[i])
	}
	g.Steps += other.Steps
}

// ClipAndScale normalizes by the accumulated step count and applies global
// gradient-norm clipping; it returns the pre-clip norm.
func (g *GradBuffer) ClipAndScale(clipNorm float64) float64 {
	if g.Steps > 0 {
		inv := 1 / float64(g.Steps)
		for _, s := range g.Slices() {
			for i := range s {
				s[i] *= inv
			}
		}
	}
	var norm float64
	for _, s := range g.Slices() {
		for _, v := range s {
			norm += v * v
		}
	}
	norm = math.Sqrt(norm)
	if clipNorm > 0 && norm > clipNorm {
		scale := clipNorm / norm
		for _, s := range g.Slices() {
			for i := range s {
				s[i] *= scale
			}
		}
	}
	return norm
}

// Sequence is one training window: Inputs[t] is the one-hot encoded
// discretized package c(t-1) (plus noise bit) and Targets[t] is the class
// index of the *next* package's signature. A negative target skips the loss
// at that step.
type Sequence struct {
	Inputs  [][]float64
	Targets []int
}

// lossForwardBackward runs truncated BPTT over one window starting from a
// zero state, accumulating gradients into g. It returns the summed
// cross-entropy loss and the number of scored steps.
func (c *Classifier) lossForwardBackward(seq *Sequence, g *GradBuffer) (loss float64, steps int) {
	T := len(seq.Inputs)
	if T == 0 {
		return 0, 0
	}
	L := len(c.Layers)
	caches := make([][]*lstmStepCache, L)
	for i := range caches {
		caches[i] = make([]*lstmStepCache, T)
	}
	hidden := make([][]float64, L)
	cell := make([][]float64, L)
	for i, l := range c.Layers {
		hidden[i] = make([]float64, l.HiddenSize)
		cell[i] = make([]float64, l.HiddenSize)
	}
	probs := make([][]float64, T)
	tops := make([][]float64, T) // last-layer h per step, for dense backward

	// Forward.
	logits := make([]float64, c.Out.OutputSize)
	for t := 0; t < T; t++ {
		cur := seq.Inputs[t]
		for i, l := range c.Layers {
			cache := l.stepForward(cur, hidden[i], cell[i])
			caches[i][t] = cache
			hidden[i] = cache.h
			cell[i] = cache.c
			cur = cache.h
		}
		tops[t] = cur
		if seq.Targets[t] >= 0 {
			c.Out.Forward(logits, cur)
			p := make([]float64, len(logits))
			mathx.Softmax(p, logits)
			probs[t] = p
			loss += -math.Log(math.Max(p[seq.Targets[t]], 1e-12))
			steps++
		}
	}

	// Backward through time.
	dh := make([][]float64, L)
	dc := make([][]float64, L)
	for i, l := range c.Layers {
		dh[i] = make([]float64, l.HiddenSize)
		dc[i] = make([]float64, l.HiddenSize)
	}
	for t := T - 1; t >= 0; t-- {
		if probs[t] != nil {
			dLogits := make([]float64, len(probs[t]))
			copy(dLogits, probs[t])
			dLogits[seq.Targets[t]] -= 1 // softmax cross-entropy gradient
			dhOut := c.Out.Backward(dLogits, tops[t], g.dense)
			mathx.Axpy(dh[L-1], 1, dhOut)
		}
		for i := L - 1; i >= 0; i-- {
			dx, dhPrev, dcPrev := c.Layers[i].stepBackward(caches[i][t], dh[i], dc[i], g.lstm[i])
			dh[i] = dhPrev
			dc[i] = dcPrev
			if i > 0 {
				mathx.Axpy(dh[i-1], 1, dx)
			}
		}
	}
	g.Steps += steps
	return loss, steps
}

// Save serializes the classifier with gob.
func (c *Classifier) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("nn: save classifier: %w", err)
	}
	return nil
}

// Load deserializes a classifier saved with Save and validates its shapes.
func Load(r io.Reader) (*Classifier, error) {
	var c Classifier
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("nn: load classifier: %w", err)
	}
	if len(c.Layers) == 0 || c.Out == nil {
		return nil, fmt.Errorf("nn: loaded classifier is empty")
	}
	for _, l := range c.Layers {
		if err := l.validate(); err != nil {
			return nil, err
		}
	}
	if err := c.Out.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
