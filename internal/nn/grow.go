package nn

import (
	"fmt"

	"icsdetect/internal/mathx"
)

// GrowClasses widens the softmax output layer to `classes` units in place,
// preserving the learned weights of existing classes and Xavier-initializing
// the new rows. The incremental-update path uses this when newly observed
// normal traffic introduces signatures the original class space lacked.
func (c *Classifier) GrowClasses(classes int, seed uint64) error {
	old := c.Out
	if classes < old.OutputSize {
		return fmt.Errorf("nn: cannot shrink output layer from %d to %d", old.OutputSize, classes)
	}
	if classes == old.OutputSize {
		return nil
	}
	rng := mathx.NewRNG(seed ^ 0xC1A55)
	grown := NewDense(old.InputSize, classes, rng)
	// Copy the learned rows; the fresh rows keep their Xavier init.
	copy(grown.W.Data[:old.OutputSize*old.InputSize], old.W.Data)
	copy(grown.B[:old.OutputSize], old.B)
	c.Out = grown
	return nil
}
