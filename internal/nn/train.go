package nn

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"icsdetect/internal/mathx"
)

// TrainerKind selects the gradient engine used by Train.
type TrainerKind string

const (
	// TrainerBatched is the default engine: a whole minibatch of
	// truncated-BPTT windows advances lock-step through one matrix-matrix
	// pass per layer per timestep (forward and backward), and weight
	// gradients accumulate through the chained GEMM kernels. It is fully
	// deterministic and produces bitwise-identical parameters to
	// TrainerReference with Workers=1 for the same seed and window order.
	TrainerBatched TrainerKind = "batched"
	// TrainerReference is the original engine: one GEMV-based
	// forward/backward pass per window, fanned out over a worker pool. It
	// is kept as the executable specification the batched engine is tested
	// against (with Workers=1 it is the bitwise reference).
	TrainerReference TrainerKind = "reference"
)

// ParseTrainer maps a command-line string to a TrainerKind. The empty
// string selects the default (batched) engine.
func ParseTrainer(s string) (TrainerKind, error) {
	switch TrainerKind(s) {
	case "", TrainerBatched:
		return TrainerBatched, nil
	case TrainerReference:
		return TrainerReference, nil
	default:
		return "", fmt.Errorf("nn: unknown trainer %q (want %q or %q)", s, TrainerBatched, TrainerReference)
	}
}

// EpochStats captures one epoch of training for progress reporting and
// checkpointing decisions.
type EpochStats struct {
	// Epoch is 1-based; Epochs is the configured total.
	Epoch, Epochs int
	// MeanLoss is the mean per-step softmax loss over the epoch.
	MeanLoss float64
	// Windows and Steps count the truncated-BPTT windows and scored
	// timesteps processed this epoch.
	Windows, Steps int
	// Duration is the epoch's wall time.
	Duration time.Duration
}

// WindowsPerSec is the epoch's training throughput.
func (s EpochStats) WindowsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Windows) / s.Duration.Seconds()
}

// TrainConfig controls minibatch training of a Classifier.
type TrainConfig struct {
	// Epochs is the number of passes over all windows (paper: 50).
	Epochs int
	// Window is the truncated-BPTT length each training window spans.
	Window int
	// BatchSize is the number of windows whose gradients are averaged per
	// optimizer step.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// ClipNorm is the global gradient norm cap (0 disables clipping).
	ClipNorm float64
	// LRDecayEpoch, when positive, multiplies the learning rate by
	// LRDecayFactor once that epoch is reached (simple step schedule).
	LRDecayEpoch  int
	LRDecayFactor float64
	// Trainer selects the gradient engine; empty means TrainerBatched.
	Trainer TrainerKind
	// Workers bounds data-parallel gradient computation for
	// TrainerReference; 0 means GOMAXPROCS. The batched engine ignores it
	// (its parallelism is inside the GEMM kernels).
	Workers int
	// Seed drives window shuffling.
	Seed uint64
	// Progress, when non-nil, receives the mean per-step loss after each
	// epoch.
	Progress func(epoch int, meanLoss float64)
	// EpochEnd, when non-nil, receives full per-epoch statistics (wall
	// time, throughput, loss) after each epoch — the richer sibling of
	// Progress, used for reporting and periodic checkpointing.
	EpochEnd func(EpochStats)
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.LR <= 0 {
		c.LR = 2e-3
	}
	if c.ClipNorm < 0 {
		c.ClipNorm = 0
	}
	if c.Trainer == "" {
		c.Trainer = TrainerBatched
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// MakeWindows chops full sequences into non-overlapping training windows of
// the given length. Remainder windows shorter than 2 steps are dropped.
func MakeWindows(seqs []Sequence, window int) []Sequence {
	var out []Sequence
	for _, s := range seqs {
		for start := 0; start < len(s.Inputs); start += window {
			end := start + window
			if end > len(s.Inputs) {
				end = len(s.Inputs)
			}
			if end-start < 2 {
				continue
			}
			out = append(out, Sequence{
				Inputs:  s.Inputs[start:end],
				Targets: s.Targets[start:end],
			})
		}
	}
	return out
}

// Train fits the classifier on the given full sequences with Adam over
// shuffled minibatches of truncated-BPTT windows. The gradient engine is
// selected by cfg.Trainer: the batched engine (default) runs the whole
// minibatch through matrix-matrix kernels, the reference engine runs one
// window at a time over a worker pool. Both produce bitwise-identical
// parameters for the same seed and window order (reference with
// Workers=1). It returns the mean per-step loss of the final epoch.
func Train(c *Classifier, seqs []Sequence, cfg TrainConfig) (float64, error) {
	cfg.defaults()
	for _, s := range seqs {
		if len(s.Inputs) != len(s.Targets) {
			return 0, fmt.Errorf("nn: sequence has %d inputs but %d targets", len(s.Inputs), len(s.Targets))
		}
		for _, x := range s.Inputs {
			if len(x) != c.InputSize() {
				return 0, fmt.Errorf("nn: input size %d, classifier expects %d", len(x), c.InputSize())
			}
		}
		for _, t := range s.Targets {
			if t >= c.Classes() {
				return 0, fmt.Errorf("nn: target %d out of range (classes=%d)", t, c.Classes())
			}
		}
	}
	windows := MakeWindows(seqs, cfg.Window)
	if len(windows) == 0 {
		return 0, fmt.Errorf("nn: no training windows (need sequences of length >= 2)")
	}

	rng := mathx.NewRNG(cfg.Seed)
	opt := NewAdam(cfg.LR)
	params := c.Params()

	var bt *batchTrainer
	var workerGrads []*GradBuffer
	var master *GradBuffer
	switch cfg.Trainer {
	case TrainerBatched:
		bt = newBatchTrainer(c, min(cfg.BatchSize, len(windows)), cfg.Window)
	case TrainerReference:
		workers := cfg.Workers
		if workers > cfg.BatchSize {
			workers = cfg.BatchSize
		}
		workerGrads = make([]*GradBuffer, workers)
		for i := range workerGrads {
			workerGrads[i] = c.NewGradBuffer()
		}
		master = c.NewGradBuffer()
	default:
		return 0, fmt.Errorf("nn: unknown trainer %q", cfg.Trainer)
	}

	var finalLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		if cfg.LRDecayEpoch > 0 && epoch == cfg.LRDecayEpoch && cfg.LRDecayFactor > 0 {
			opt.LR *= cfg.LRDecayFactor
		}
		rng.Shuffle(len(windows), func(i, j int) {
			windows[i], windows[j] = windows[j], windows[i]
		})
		var epochLoss float64
		var epochSteps int

		for start := 0; start < len(windows); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(windows) {
				end = len(windows)
			}
			batch := windows[start:end]

			var batchLoss float64
			var batchSteps int
			var grads *GradBuffer
			if bt != nil {
				// bt.run zeroes and fills its own buffer; its element
				// chains start at +0 so using it directly is bitwise
				// identical to the reference's zero-then-merge.
				batchLoss, batchSteps = bt.run(batch)
				grads = bt.grads
			} else {
				batchLoss, batchSteps = referenceBatch(c, batch, workerGrads)
				master.Zero()
				for _, g := range workerGrads {
					master.Merge(g)
				}
				grads = master
			}
			grads.ClipAndScale(cfg.ClipNorm)
			if err := opt.Step(params, grads.Slices()); err != nil {
				return 0, err
			}
			// The step mutated every weight tensor in place: drop the
			// cached inference layouts so they rebuild from fresh values.
			c.InvalidateInference()
			epochLoss += batchLoss
			epochSteps += batchSteps
		}

		if epochSteps > 0 {
			finalLoss = epochLoss / float64(epochSteps)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch+1, finalLoss)
		}
		if cfg.EpochEnd != nil {
			cfg.EpochEnd(EpochStats{
				Epoch:    epoch + 1,
				Epochs:   cfg.Epochs,
				MeanLoss: finalLoss,
				Windows:  len(windows),
				Steps:    epochSteps,
				Duration: time.Since(epochStart),
			})
		}
	}
	return finalLoss, nil
}

// referenceBatch computes one minibatch's gradients with the per-window
// reference engine: windows fan out over the worker pool, each worker
// accumulating into its own buffer (the caller merges them). With a single
// worker the accumulation order is exactly window order — the bitwise
// reference the batched engine is tested against.
func referenceBatch(c *Classifier, batch []Sequence, workerGrads []*GradBuffer) (float64, int) {
	var (
		mu         sync.Mutex
		batchLoss  float64
		batchSteps int
		wg         sync.WaitGroup
	)
	next := make(chan int)
	for w := 0; w < len(workerGrads); w++ {
		g := workerGrads[w]
		g.Zero()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localLoss float64
			var localSteps int
			for idx := range next {
				loss, steps := c.lossForwardBackward(&batch[idx], g)
				localLoss += loss
				localSteps += steps
			}
			mu.Lock()
			batchLoss += localLoss
			batchSteps += localSteps
			mu.Unlock()
		}()
	}
	for i := range batch {
		next <- i
	}
	close(next)
	wg.Wait()
	return batchLoss, batchSteps
}
