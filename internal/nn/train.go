package nn

import (
	"fmt"
	"runtime"
	"sync"

	"icsdetect/internal/mathx"
)

// TrainConfig controls minibatch training of a Classifier.
type TrainConfig struct {
	// Epochs is the number of passes over all windows (paper: 50).
	Epochs int
	// Window is the truncated-BPTT length each training window spans.
	Window int
	// BatchSize is the number of windows whose gradients are averaged per
	// optimizer step.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// ClipNorm is the global gradient norm cap (0 disables clipping).
	ClipNorm float64
	// LRDecayEpoch, when positive, multiplies the learning rate by
	// LRDecayFactor once that epoch is reached (simple step schedule).
	LRDecayEpoch  int
	LRDecayFactor float64
	// Workers bounds data-parallel gradient computation; 0 means
	// GOMAXPROCS.
	Workers int
	// Seed drives window shuffling.
	Seed uint64
	// Progress, when non-nil, receives the mean per-step loss after each
	// epoch.
	Progress func(epoch int, meanLoss float64)
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.LR <= 0 {
		c.LR = 2e-3
	}
	if c.ClipNorm < 0 {
		c.ClipNorm = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// MakeWindows chops full sequences into non-overlapping training windows of
// the given length. Remainder windows shorter than 2 steps are dropped.
func MakeWindows(seqs []Sequence, window int) []Sequence {
	var out []Sequence
	for _, s := range seqs {
		for start := 0; start < len(s.Inputs); start += window {
			end := start + window
			if end > len(s.Inputs) {
				end = len(s.Inputs)
			}
			if end-start < 2 {
				continue
			}
			out = append(out, Sequence{
				Inputs:  s.Inputs[start:end],
				Targets: s.Targets[start:end],
			})
		}
	}
	return out
}

// Train fits the classifier on the given full sequences with Adam,
// shuffled minibatches of truncated-BPTT windows, and data-parallel
// gradient computation. It returns the mean per-step loss of the final
// epoch.
func Train(c *Classifier, seqs []Sequence, cfg TrainConfig) (float64, error) {
	cfg.defaults()
	for _, s := range seqs {
		if len(s.Inputs) != len(s.Targets) {
			return 0, fmt.Errorf("nn: sequence has %d inputs but %d targets", len(s.Inputs), len(s.Targets))
		}
		for _, x := range s.Inputs {
			if len(x) != c.InputSize() {
				return 0, fmt.Errorf("nn: input size %d, classifier expects %d", len(x), c.InputSize())
			}
		}
		for _, t := range s.Targets {
			if t >= c.Classes() {
				return 0, fmt.Errorf("nn: target %d out of range (classes=%d)", t, c.Classes())
			}
		}
	}
	windows := MakeWindows(seqs, cfg.Window)
	if len(windows) == 0 {
		return 0, fmt.Errorf("nn: no training windows (need sequences of length >= 2)")
	}

	rng := mathx.NewRNG(cfg.Seed)
	opt := NewAdam(cfg.LR)
	params := c.Params()

	workers := cfg.Workers
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	workerGrads := make([]*GradBuffer, workers)
	for i := range workerGrads {
		workerGrads[i] = c.NewGradBuffer()
	}
	master := c.NewGradBuffer()

	var finalLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDecayEpoch > 0 && epoch == cfg.LRDecayEpoch && cfg.LRDecayFactor > 0 {
			opt.LR *= cfg.LRDecayFactor
		}
		rng.Shuffle(len(windows), func(i, j int) {
			windows[i], windows[j] = windows[j], windows[i]
		})
		var epochLoss float64
		var epochSteps int

		for start := 0; start < len(windows); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(windows) {
				end = len(windows)
			}
			batch := windows[start:end]

			var (
				mu         sync.Mutex
				batchLoss  float64
				batchSteps int
				wg         sync.WaitGroup
			)
			next := make(chan int)
			for w := 0; w < workers; w++ {
				g := workerGrads[w]
				g.Zero()
				wg.Add(1)
				go func() {
					defer wg.Done()
					var localLoss float64
					var localSteps int
					for idx := range next {
						loss, steps := c.lossForwardBackward(&batch[idx], g)
						localLoss += loss
						localSteps += steps
					}
					mu.Lock()
					batchLoss += localLoss
					batchSteps += localSteps
					mu.Unlock()
				}()
			}
			for i := range batch {
				next <- i
			}
			close(next)
			wg.Wait()

			master.Zero()
			for _, g := range workerGrads {
				master.Merge(g)
			}
			master.ClipAndScale(cfg.ClipNorm)
			if err := opt.Step(params, master.Slices()); err != nil {
				return 0, err
			}
			epochLoss += batchLoss
			epochSteps += batchSteps
		}

		if epochSteps > 0 {
			finalLoss = epochLoss / float64(epochSteps)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch+1, finalLoss)
		}
	}
	return finalLoss, nil
}
