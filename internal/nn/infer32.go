package nn

import (
	"fmt"
	"sync/atomic"

	"icsdetect/internal/mathx"
)

// InferModel32 is the frozen float32 inference snapshot of a Classifier:
// every weight converted f64→f32 once (a single elementwise rounding, the
// source model untouched), plus the f32 derived layouts the hot paths want
// — packed GEMV tiles at full f32 lane width and the transposed first-layer
// W the one-hot gather walks. The snapshot shares the f64 tier's structure
// step for step (fused bias epilogues, fused gate/cell update, batched
// GEMM with per-stream combine), so its f32 results are bitwise-identical
// across {scalar, avx2, avx512} and between the sequential and batched
// paths; only the rounding differs from the f64 reference, which the
// detection stack gates at the verdict level.
//
// Snapshots are cached on the Classifier behind an atomic pointer, built
// lazily by Infer32 and dropped by InvalidateInference alongside the f64
// inference caches.
type InferModel32 struct {
	layers []*inferLayer32
	out    *dense32
}

// lstmPacks32 is one layer's packed f32 inference weights.
type lstmPacks32 struct {
	w, u *mathx.PackedGEMV32
}

// inferLayer32 is the frozen f32 mirror of one LSTMLayer.
type inferLayer32 struct {
	inputSize  int
	hiddenSize int
	w, u       *mathx.Matrix32
	b          []float32
	wt         *mathx.Matrix32 // Wᵀ for the one-hot gather
	// wg/ug are the batched-path row-pair GEMM packings of w/u; unlike the
	// GEMV packs their layout is tier-independent, so they are built once at
	// snapshot time and never go stale.
	wg, ug *mathx.PackedGEMM32
	packs  atomic.Pointer[lstmPacks32]
}

// dense32 is the frozen f32 mirror of the Dense head.
type dense32 struct {
	inputSize  int
	outputSize int
	w          *mathx.Matrix32
	wg         *mathx.PackedGEMM32
	b          []float32
	pack       atomic.Pointer[mathx.PackedGEMV32]
}

func toF32(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// newInferModel32 converts the classifier's weights. Deterministic: every
// element is one float64→float32 rounding, so repeated conversions of the
// same model are bitwise-identical, and the f64 model (and its
// fingerprint) is never mutated.
func newInferModel32(c *Classifier) *InferModel32 {
	m := &InferModel32{}
	for _, l := range c.Layers {
		il := &inferLayer32{
			inputSize:  l.InputSize,
			hiddenSize: l.HiddenSize,
			w:          mathx.ToMatrix32(l.W),
			u:          mathx.ToMatrix32(l.U),
			b:          toF32(l.B),
		}
		il.wt = il.w.Transpose()
		il.wg = mathx.PackGEMM32(il.w)
		il.ug = mathx.PackGEMM32(il.u)
		m.layers = append(m.layers, il)
	}
	m.out = &dense32{
		inputSize:  c.Out.InputSize,
		outputSize: c.Out.OutputSize,
		w:          mathx.ToMatrix32(c.Out.W),
		b:          toF32(c.Out.B),
	}
	m.out.wg = mathx.PackGEMM32(m.out.w)
	return m
}

// Infer32 returns the classifier's f32 inference snapshot, converting on
// first use. The snapshot is valid until the next InvalidateInference.
func (c *Classifier) Infer32() *InferModel32 {
	m := c.m32.Load()
	if m == nil {
		m = newInferModel32(c)
		c.m32.Store(m)
	}
	return m
}

// InputSize returns the expected input vector length.
func (m *InferModel32) InputSize() int { return m.layers[0].inputSize }

// Classes returns |S|, the logit width.
func (m *InferModel32) Classes() int { return m.out.outputSize }

// inferPacks returns the layer's packed f32 weights, building them on
// first use or after a kernel-tier change.
func (l *inferLayer32) inferPacks() *lstmPacks32 {
	p := l.packs.Load()
	if p == nil || p.w.Stale() {
		p = &lstmPacks32{w: mathx.PackGEMV32(l.w), u: mathx.PackGEMV32(l.u)}
		l.packs.Store(p)
	}
	return p
}

// inferPack returns the head's packed f32 weights.
func (d *dense32) inferPack() *mathx.PackedGEMV32 {
	p := d.pack.Load()
	if p == nil || p.Stale() {
		p = mathx.PackGEMV32(d.w)
		d.pack.Store(p)
	}
	return p
}

// forwardInfer computes logits = W·h + b with the bias add fused into the
// GEMV epilogue.
func (d *dense32) forwardInfer(dst, h []float32) {
	d.inferPack().Apply(dst, h, d.b, mathx.GemvSetBias)
}

// State32 is the f32 recurrent state of a streaming session running on an
// InferModel32 — the mirror of State.
type State32 struct {
	h, c [][]float32
	z    [][]float32
}

// NewState returns a zero f32 state for the snapshot.
func (m *InferModel32) NewState() *State32 {
	s := &State32{
		h: make([][]float32, len(m.layers)),
		c: make([][]float32, len(m.layers)),
		z: make([][]float32, len(m.layers)),
	}
	for i, l := range m.layers {
		s.h[i] = make([]float32, l.hiddenSize)
		s.c[i] = make([]float32, l.hiddenSize)
		s.z[i] = make([]float32, numGates*l.hiddenSize)
	}
	return s
}

// Reset zeroes the state in place (fragment boundaries).
func (s *State32) Reset() {
	for i := range s.h {
		mathx.Fill32(s.h[i], 0)
		mathx.Fill32(s.c[i], 0)
	}
}

// Clone deep-copies the state.
func (s *State32) Clone() *State32 {
	out := &State32{
		h: make([][]float32, len(s.h)),
		c: make([][]float32, len(s.c)),
		z: make([][]float32, len(s.z)),
	}
	for i := range s.h {
		out.h[i] = append([]float32(nil), s.h[i]...)
		out.c[i] = append([]float32(nil), s.c[i]...)
		out.z[i] = make([]float32, len(s.z[i]))
	}
	return out
}

// gatesCellUpdate is the f32 fused gate epilogue: the exact structure of
// the f64 gatesCellUpdate over the f32 activation kernels.
func (l *inferLayer32) gatesCellUpdate(z, h, c []float32) {
	H := l.hiddenSize
	mathx.VSigmoid32(z[:3*H], z[:3*H])
	mathx.VTanh32(z[3*H:4*H], z[3*H:4*H])
	zi := z[gateI*H : gateI*H+H]
	zf := z[gateF*H : gateF*H+H]
	zo := z[gateO*H : gateO*H+H]
	zg := z[gateG*H : gateG*H+H]
	for j := 0; j < H; j++ {
		c[j] = zf[j]*c[j] + zi[j]*zg[j]
	}
	// The i-gate block is consumed, so it doubles as the tanh(c) scratch.
	mathx.VTanh32(zi, c[:H])
	for j := 0; j < H; j++ {
		h[j] = zo[j] * zi[j]
	}
}

// combineGatesCellUpdate fuses the batched epilogue: (wx + uh) + b in the
// f64 path's exact operand order (VCombine32 is elementwise, so its SIMD
// path preserves that order bitwise), then the gate/cell update.
func (l *inferLayer32) combineGatesCellUpdate(row, urow, h, c []float32) {
	mathx.VCombine32(row, urow, l.b)
	l.gatesCellUpdate(row, h, c)
}

// stepInfer advances one timestep on the packed f32 weights.
func (l *inferLayer32) stepInfer(z, x, h, c []float32) {
	p := l.inferPacks()
	p.w.Apply(z, x, nil, mathx.GemvSet)
	p.u.Apply(z, h, l.b, mathx.GemvAddBias)
	l.gatesCellUpdate(z, h, c)
}

// stepInferOneHot is stepInfer for a one-hot input given as its active
// column indices (strictly ascending).
func (l *inferLayer32) stepInferOneHot(z []float32, idx []int, h, c []float32) {
	mathx.OneHotGather32(z, l.wt, idx)
	l.inferPacks().u.Apply(z, h, l.b, mathx.GemvAddBias)
	l.gatesCellUpdate(z, h, c)
}

// StepLogits advances the recurrent state with dense input x and writes
// the raw f32 logit vector into scores — the f32 mirror of
// Classifier.StepLogits.
func (m *InferModel32) StepLogits(state *State32, x, scores []float32) {
	cur := x
	for i, l := range m.layers {
		l.stepInfer(state.z[i], cur, state.h[i], state.c[i])
		cur = state.h[i]
	}
	m.out.forwardInfer(scores, cur)
}

// StepLogitsOneHot is StepLogits with the first layer's input given as
// one-hot active-column indices — the f32 streaming hot path.
func (m *InferModel32) StepLogitsOneHot(state *State32, idx []int, scores []float32) {
	m.layers[0].stepInferOneHot(state.z[0], idx, state.h[0], state.c[0])
	cur := state.h[0]
	for i := 1; i < len(m.layers); i++ {
		l := m.layers[i]
		l.stepInfer(state.z[i], cur, state.h[i], state.c[i])
		cur = state.h[i]
	}
	m.out.forwardInfer(scores, cur)
}

// BatchBuffer32 is the reusable f32 scratch for the batched paths — the
// mirror of BatchBuffer, usable only with the snapshot that allocated it.
type BatchBuffer32 struct {
	maxBatch int
	z, zu    [][]float32
	logits   []float32
	xs       [][]float32
}

// NewBatchBuffer allocates f32 scratch for batches of up to maxBatch
// streams.
func (m *InferModel32) NewBatchBuffer(maxBatch int) *BatchBuffer32 {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &BatchBuffer32{
		maxBatch: maxBatch,
		z:        make([][]float32, len(m.layers)),
		zu:       make([][]float32, len(m.layers)),
		logits:   make([]float32, maxBatch*m.out.outputSize),
		xs:       make([][]float32, maxBatch),
	}
	for i, l := range m.layers {
		b.z[i] = make([]float32, maxBatch*numGates*l.hiddenSize)
		b.zu[i] = make([]float32, maxBatch*numGates*l.hiddenSize)
	}
	return b
}

// MaxBatch returns the batch width the buffer was sized for.
func (b *BatchBuffer32) MaxBatch() int { return b.maxBatch }

// StepBatchLogits advances n = len(states) independent f32 states through
// one batched forward pass, writing each stream's raw logit vector into
// scores[i]. Bitwise-identical to calling StepLogits once per stream, by
// the same association contract as the f64 batched path.
func (m *InferModel32) StepBatchLogits(buf *BatchBuffer32, states []*State32, inputs [][]float32, scores [][]float32) {
	n := len(states)
	if n == 0 {
		return
	}
	if len(inputs) != n || len(scores) != n {
		panic(fmt.Sprintf("nn: f32 batch size mismatch (states=%d inputs=%d scores=%d)",
			n, len(inputs), len(scores)))
	}
	if n > buf.maxBatch {
		panic(fmt.Sprintf("nn: f32 batch of %d exceeds buffer capacity %d", n, buf.maxBatch))
	}
	xs := buf.xs[:n]
	copy(xs, inputs)
	m.stepBatchLayers(buf, states, n, 0)
	m.stepBatchHead(buf, scores, n)
}

// StepBatchLogitsOneHot is StepBatchLogits with the first layer's inputs
// given as one-hot active-column index sets — the batched f32 engine hot
// path.
func (m *InferModel32) StepBatchLogitsOneHot(buf *BatchBuffer32, states []*State32, idxs [][]int, scores [][]float32) {
	n := len(states)
	if n == 0 {
		return
	}
	if len(idxs) != n || len(scores) != n {
		panic(fmt.Sprintf("nn: f32 batch size mismatch (states=%d inputs=%d scores=%d)",
			n, len(idxs), len(scores)))
	}
	if n > buf.maxBatch {
		panic(fmt.Sprintf("nn: f32 batch of %d exceeds buffer capacity %d", n, buf.maxBatch))
	}
	l0 := m.layers[0]
	H := l0.hiddenSize
	z := buf.z[0][:n*numGates*H]
	for i := 0; i < n; i++ {
		mathx.OneHotGather32(z[i*numGates*H:(i+1)*numGates*H], l0.wt, idxs[i])
		buf.xs[i] = states[i].h[0]
	}
	zu := buf.zu[0][:n*numGates*H]
	l0.ug.MulRowsT(zu, buf.xs[:n])
	for i := 0; i < n; i++ {
		row := z[i*numGates*H : (i+1)*numGates*H]
		urow := zu[i*numGates*H : (i+1)*numGates*H]
		l0.combineGatesCellUpdate(row, urow, states[i].h[0], states[i].c[0])
		buf.xs[i] = states[i].h[0]
	}
	m.stepBatchLayers(buf, states, n, 1)
	m.stepBatchHead(buf, scores, n)
}

// stepBatchLayers advances layers [from, len) for a batch of n streams.
func (m *InferModel32) stepBatchLayers(buf *BatchBuffer32, states []*State32, n, from int) {
	for li := from; li < len(m.layers); li++ {
		l := m.layers[li]
		H := l.hiddenSize
		z := buf.z[li][:n*numGates*H]
		zu := buf.zu[li][:n*numGates*H]
		l.wg.MulRowsT(z, buf.xs[:n])
		for i := 0; i < n; i++ {
			buf.xs[i] = states[i].h[li]
		}
		l.ug.MulRowsT(zu, buf.xs[:n])
		for i := 0; i < n; i++ {
			row := z[i*numGates*H : (i+1)*numGates*H]
			urow := zu[i*numGates*H : (i+1)*numGates*H]
			l.combineGatesCellUpdate(row, urow, states[i].h[li], states[i].c[li])
			buf.xs[i] = states[i].h[li]
		}
	}
}

// stepBatchHead runs the batched f32 dense head.
func (m *InferModel32) stepBatchHead(buf *BatchBuffer32, scores [][]float32, n int) {
	K := m.out.outputSize
	logits := buf.logits[:n*K]
	m.out.wg.MulRowsT(logits, buf.xs[:n])
	for i := 0; i < n; i++ {
		row := logits[i*K : (i+1)*K]
		for j := range row {
			row[j] += m.out.b[j]
		}
		copy(scores[i], row)
	}
}
