package nn

import (
	"testing"

	"icsdetect/internal/mathx"
)

// randomInputs builds T steps of n one-hot-ish input vectors.
func randomInputs(rng *mathx.RNG, t, n, dim int) [][][]float64 {
	out := make([][][]float64, t)
	for step := range out {
		out[step] = make([][]float64, n)
		for i := range out[step] {
			x := make([]float64, dim)
			x[rng.Intn(dim)] = 1
			if rng.Bernoulli(0.3) {
				x[rng.Intn(dim)] = 1
			}
			out[step][i] = x
		}
	}
	return out
}

// TestStepBatchMatchesStep drives n independent streams both through the
// sequential Step and through StepBatch and requires bitwise identical
// probabilities and hidden states at every timestep — the property the
// concurrent engine's verdict-equivalence guarantee rests on.
func TestStepBatchMatchesStep(t *testing.T) {
	const (
		dim     = 13
		classes = 9
		steps   = 25
	)
	for _, n := range []int{1, 2, 7, 32} {
		c, err := NewClassifier(dim, []int{11, 8}, classes, 42)
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(uint64(n) + 1)
		inputs := randomInputs(rng, steps, n, dim)

		seqStates := make([]*State, n)
		batStates := make([]*State, n)
		batProbs := make([][]float64, n)
		for i := 0; i < n; i++ {
			seqStates[i] = c.NewState()
			batStates[i] = c.NewState()
			batProbs[i] = make([]float64, classes)
		}
		buf := c.NewBatchBuffer(n)
		seqProbs := make([]float64, classes)

		for step := 0; step < steps; step++ {
			c.StepBatch(buf, batStates, inputs[step], batProbs)
			for i := 0; i < n; i++ {
				c.Step(seqStates[i], inputs[step][i], seqProbs)
				for j := range seqProbs {
					if seqProbs[j] != batProbs[i][j] {
						t.Fatalf("n=%d step=%d stream=%d class=%d: batch prob %v != sequential %v",
							n, step, i, j, batProbs[i][j], seqProbs[j])
					}
				}
				for l := range seqStates[i].h {
					for j := range seqStates[i].h[l] {
						if seqStates[i].h[l][j] != batStates[i].h[l][j] ||
							seqStates[i].c[l][j] != batStates[i].c[l][j] {
							t.Fatalf("n=%d step=%d stream=%d layer=%d: state diverged", n, step, i, l)
						}
					}
				}
			}
		}
	}
}

// TestStepBatchLogitsRanksMatchProbs verifies that ranking over raw logits
// is identical to ranking over softmax probabilities (softmax is strictly
// monotone), so the logits fast path cannot change top-k verdicts.
func TestStepBatchLogitsRanksMatchProbs(t *testing.T) {
	const (
		dim     = 10
		classes = 12
		steps   = 30
		n       = 5
	)
	c, err := NewClassifier(dim, []int{9}, classes, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(99)
	inputs := randomInputs(rng, steps, n, dim)

	probStates := make([]*State, n)
	logitStates := make([]*State, n)
	probs := make([][]float64, n)
	logits := make([][]float64, n)
	for i := 0; i < n; i++ {
		probStates[i] = c.NewState()
		logitStates[i] = c.NewState()
		probs[i] = make([]float64, classes)
		logits[i] = make([]float64, classes)
	}
	bufA := c.NewBatchBuffer(n)
	bufB := c.NewBatchBuffer(n)

	rank := func(scores []float64, class int) int {
		p := scores[class]
		r := 0
		for i, v := range scores {
			if v > p || (v == p && i < class) {
				r++
			}
		}
		return r
	}
	for step := 0; step < steps; step++ {
		c.StepBatch(bufA, probStates, inputs[step], probs)
		c.StepBatchLogits(bufB, logitStates, inputs[step], logits)
		for i := 0; i < n; i++ {
			for class := 0; class < classes; class++ {
				if rank(probs[i], class) != rank(logits[i], class) {
					t.Fatalf("step=%d stream=%d class=%d: logit rank %d != prob rank %d",
						step, i, class, rank(logits[i], class), rank(probs[i], class))
				}
			}
		}
	}
}

// TestStepBatchNoAllocations pins the zero-allocation property of the
// batched hot path.
func TestStepBatchNoAllocations(t *testing.T) {
	const n = 16
	c, err := NewClassifier(12, []int{16, 16}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*State, n)
	inputs := make([][]float64, n)
	probs := make([][]float64, n)
	for i := 0; i < n; i++ {
		states[i] = c.NewState()
		inputs[i] = make([]float64, 12)
		inputs[i][i%12] = 1
		probs[i] = make([]float64, 10)
	}
	buf := c.NewBatchBuffer(n)
	allocs := testing.AllocsPerRun(50, func() {
		c.StepBatchLogits(buf, states, inputs, probs)
	})
	if allocs != 0 {
		t.Errorf("StepBatchLogits allocates %v times per call, want 0", allocs)
	}
}

func TestStepBatchShapePanics(t *testing.T) {
	c, err := NewClassifier(5, []int{4}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := c.NewBatchBuffer(2)
	states := []*State{c.NewState(), c.NewState(), c.NewState()}
	inputs := [][]float64{make([]float64, 5), make([]float64, 5), make([]float64, 5)}
	probs := [][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)}

	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("oversized batch", func() { c.StepBatch(buf, states, inputs, probs) })
	assertPanics("input mismatch", func() { c.StepBatch(buf, states[:2], inputs[:1], probs[:2]) })

	// Empty batch is a no-op.
	c.StepBatch(buf, nil, nil, nil)
}
