package nn

import (
	"fmt"
	"sync/atomic"

	"icsdetect/internal/mathx"
)

// Dense is the fully connected output layer mapping the last LSTM layer's
// hidden vector to the |S|-dimensional logit vector z that feeds the softmax
// activation layer (paper Fig. 2).
type Dense struct {
	InputSize  int
	OutputSize int
	W          *mathx.Matrix // OutputSize × InputSize
	B          []float64

	// Cached packed-GEMV layout for inference (infer.go); unexported so
	// gob skips it, dropped on weight mutation.
	pack atomic.Pointer[mathx.PackedGEMV]
}

// NewDense allocates a Xavier-initialized dense layer.
func NewDense(inputSize, outputSize int, rng *mathx.RNG) *Dense {
	d := &Dense{
		InputSize:  inputSize,
		OutputSize: outputSize,
		W:          mathx.NewMatrix(outputSize, inputSize),
		B:          make([]float64, outputSize),
	}
	xavierInit(d.W, inputSize, outputSize, rng)
	return d
}

// Forward computes logits = W·h + b into dst.
func (d *Dense) Forward(dst, h []float64) {
	d.W.MulVec(dst, h)
	for i := range dst {
		dst[i] += d.B[i]
	}
}

type denseGrads struct {
	dW *mathx.Matrix
	dB []float64
}

func newDenseGrads(d *Dense) *denseGrads {
	return &denseGrads{dW: mathx.NewMatrix(d.W.Rows, d.W.Cols), dB: make([]float64, len(d.B))}
}

// Backward accumulates gradients for dLogits at input h and returns
// ∂L/∂h.
func (d *Dense) Backward(dLogits, h []float64, g *denseGrads) []float64 {
	g.dW.AddOuter(1, dLogits, h)
	for i, v := range dLogits {
		g.dB[i] += v
	}
	dh := make([]float64, d.InputSize)
	d.W.MulVecT(dh, dLogits)
	return dh
}

func (d *Dense) params() []Param {
	return []Param{
		{Name: "W", Data: d.W.Data},
		{Name: "B", Data: d.B},
	}
}

func (g *denseGrads) slices() [][]float64 {
	return [][]float64{g.dW.Data, g.dB}
}

func (d *Dense) validate() error {
	if d.InputSize <= 0 || d.OutputSize <= 0 {
		return fmt.Errorf("nn: dense layer with non-positive sizes (%d, %d)", d.InputSize, d.OutputSize)
	}
	if d.W == nil || d.W.Rows != d.OutputSize || d.W.Cols != d.InputSize || len(d.B) != d.OutputSize {
		return fmt.Errorf("nn: dense layer shape corruption")
	}
	return nil
}
