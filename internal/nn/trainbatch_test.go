package nn

import (
	"testing"

	"icsdetect/internal/mathx"
)

// trainTwin builds two identically initialized classifiers and trains one
// with the given trainer kind, returning the model and final loss.
func trainTwin(t *testing.T, data []Sequence, cfg TrainConfig, kind TrainerKind) (*Classifier, float64) {
	t.Helper()
	c, err := NewClassifier(7, []int{10, 8}, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trainer = kind
	loss, err := Train(c, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, loss
}

// ragged training data: mixed fragment lengths (remainder windows, one
// dropped length-1 remainder at window 9), sprinkled negative targets.
func raggedData(rng *mathx.RNG, inputs, classes int) []Sequence {
	var out []Sequence
	for _, length := range []int{23, 18, 4, 28, 11} {
		seq := Sequence{}
		for i := 0; i < length; i++ {
			x := make([]float64, inputs)
			x[rng.Intn(inputs)] = 1
			if rng.Bernoulli(0.3) {
				x[rng.Intn(inputs)] = 1
			}
			seq.Inputs = append(seq.Inputs, x)
			tgt := rng.Intn(classes)
			if rng.Bernoulli(0.15) {
				tgt = -1 // unscored step: no loss, state still advances
			}
			seq.Targets = append(seq.Targets, tgt)
		}
		out = append(out, seq)
	}
	return out
}

// TestBatchedTrainerBitwiseEqualsReference is the headline invariant of the
// batched training pipeline: for the same seed and window order, the
// batched trainer must produce bitwise-identical parameters (and losses) to
// the sequential reference trainer, across multiple epochs with gradient
// clipping, LR decay, ragged windows, and skipped targets — on both the
// SIMD and the pure-Go kernel paths.
func TestBatchedTrainerBitwiseEqualsReference(t *testing.T) {
	run := func(t *testing.T) {
		rng := mathx.NewRNG(21)
		data := raggedData(rng, 7, 6)
		cfg := TrainConfig{
			Epochs: 4, Window: 9, BatchSize: 3, LR: 3e-3, ClipNorm: 1.5,
			LRDecayEpoch: 2, LRDecayFactor: 0.5, Seed: 5, Workers: 1,
		}
		ref, refLoss := trainTwin(t, data, cfg, TrainerReference)
		bat, batLoss := trainTwin(t, data, cfg, TrainerBatched)

		if refLoss != batLoss {
			t.Errorf("final losses diverge: reference %v, batched %v", refLoss, batLoss)
		}
		rp, bp := ref.Params(), bat.Params()
		for i := range rp {
			for j := range rp[i].Data {
				if rp[i].Data[j] != bp[i].Data[j] {
					t.Fatalf("parameter %s[%d] diverged: reference %v, batched %v",
						rp[i].Name, j, rp[i].Data[j], bp[i].Data[j])
				}
			}
		}
	}
	t.Run("simd", run)
	t.Run("scalar", func(t *testing.T) {
		prev := mathx.SetSIMDEnabled(false)
		defer mathx.SetSIMDEnabled(prev)
		run(t)
	})
}

// TestBatchedTrainerGradientsMatchReference compares a single minibatch's
// raw gradient buffer (before any optimizer state is involved), including
// batch widths that exercise the 4-wide kernel tiles and their tails.
func TestBatchedTrainerGradientsMatchReference(t *testing.T) {
	rng := mathx.NewRNG(31)
	for _, nWin := range []int{1, 3, 4, 7} {
		c, err := NewClassifier(5, []int{9, 6}, 4, 13)
		if err != nil {
			t.Fatal(err)
		}
		var batch []Sequence
		for i := 0; i < nWin; i++ {
			seq := raggedData(rng, 5, 4)[0]
			batch = append(batch, Sequence{Inputs: seq.Inputs[:6+i], Targets: seq.Targets[:6+i]})
		}

		ref := c.NewGradBuffer()
		var refLoss float64
		var refSteps int
		for i := range batch {
			loss, steps := c.lossForwardBackward(&batch[i], ref)
			refLoss += loss
			refSteps += steps
		}

		bt := newBatchTrainer(c, len(batch), 16)
		batLoss, batSteps := bt.run(batch)

		if refLoss != batLoss || refSteps != batSteps {
			t.Errorf("nWin=%d: loss/steps diverge: reference (%v, %d), batched (%v, %d)",
				nWin, refLoss, refSteps, batLoss, batSteps)
		}
		if ref.Steps != bt.grads.Steps {
			t.Errorf("nWin=%d: GradBuffer.Steps %d vs %d", nWin, ref.Steps, bt.grads.Steps)
		}
		rs, bs := ref.Slices(), bt.grads.Slices()
		for i := range rs {
			for j := range rs[i] {
				if rs[i][j] != bs[i][j] {
					t.Fatalf("nWin=%d: gradient tensor %d element %d diverged: %v vs %v",
						nWin, i, j, rs[i][j], bs[i][j])
				}
			}
		}
	}
}

// TestBatchedTrainerDeterministic: two identical batched runs must agree
// bitwise (the property the reference trainer only has with Workers=1).
func TestBatchedTrainerDeterministic(t *testing.T) {
	rng := mathx.NewRNG(41)
	data := raggedData(rng, 7, 6)
	cfg := TrainConfig{Epochs: 3, Window: 8, BatchSize: 4, LR: 2e-3, ClipNorm: 5, Seed: 9}
	a, lossA := trainTwin(t, data, cfg, TrainerBatched)
	b, lossB := trainTwin(t, data, cfg, TrainerBatched)
	if lossA != lossB {
		t.Errorf("losses diverge across identical runs: %v vs %v", lossA, lossB)
	}
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data {
			if ap[i].Data[j] != bp[i].Data[j] {
				t.Fatalf("parameter %s[%d] diverged across identical runs", ap[i].Name, j)
			}
		}
	}
}

func TestTrainRejectsUnknownTrainer(t *testing.T) {
	c, _ := NewClassifier(3, []int{4}, 2, 1)
	_, err := Train(c, []Sequence{{
		Inputs:  [][]float64{{1, 0, 0}, {0, 1, 0}},
		Targets: []int{0, 1},
	}}, TrainConfig{Trainer: "turbo"})
	if err == nil {
		t.Error("unknown trainer accepted")
	}
}

func TestParseTrainer(t *testing.T) {
	for in, want := range map[string]TrainerKind{
		"":          TrainerBatched,
		"batched":   TrainerBatched,
		"reference": TrainerReference,
	} {
		got, err := ParseTrainer(in)
		if err != nil || got != want {
			t.Errorf("ParseTrainer(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseTrainer("warp"); err == nil {
		t.Error("ParseTrainer accepted garbage")
	}
}

// TestEpochEndStats: the per-epoch callback reports coherent counts and
// wall time alongside Progress.
func TestEpochEndStats(t *testing.T) {
	rng := mathx.NewRNG(51)
	data := raggedData(rng, 7, 6)
	var stats []EpochStats
	c, _ := NewClassifier(7, []int{6}, 6, 2)
	_, err := Train(c, data, TrainConfig{
		Epochs: 3, Window: 8, BatchSize: 4, Seed: 1,
		EpochEnd: func(s EpochStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("EpochEnd called %d times, want 3", len(stats))
	}
	wantWindows := len(MakeWindows(data, 8))
	for i, s := range stats {
		if s.Epoch != i+1 || s.Epochs != 3 {
			t.Errorf("epoch %d: numbering %d/%d", i, s.Epoch, s.Epochs)
		}
		if s.Windows != wantWindows {
			t.Errorf("epoch %d: %d windows, want %d", i, s.Windows, wantWindows)
		}
		if s.Steps <= 0 || s.Duration < 0 {
			t.Errorf("epoch %d: implausible stats %+v", i, s)
		}
	}
	if stats[0].WindowsPerSec() < 0 {
		t.Error("negative throughput")
	}
	if (EpochStats{Windows: 5}).WindowsPerSec() != 0 {
		t.Error("zero-duration throughput not guarded")
	}
}
