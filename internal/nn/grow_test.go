package nn

import "testing"

func TestGrowClassesPreservesOldLogits(t *testing.T) {
	c, err := NewClassifier(4, []int{6}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0, 0, 1}
	before := make([]float64, 3)
	s := c.NewState()
	c.Step(s, x, before)

	if err := c.GrowClasses(5, 9); err != nil {
		t.Fatal(err)
	}
	if c.Classes() != 5 {
		t.Fatalf("classes = %d", c.Classes())
	}
	after := make([]float64, 5)
	s2 := c.NewState()
	c.Step(s2, x, after)

	// Probabilities renormalize over 5 classes, but the relative order of
	// the original classes is preserved (their logits are untouched).
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if (before[i] < before[j]) != (after[i] < after[j]) && before[i] != before[j] {
				t.Fatalf("class ordering changed after growth: %v vs %v", before[:3], after[:3])
			}
		}
	}
}

func TestGrowClassesNoOpAndErrors(t *testing.T) {
	c, err := NewClassifier(4, []int{6}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	oldOut := c.Out
	if err := c.GrowClasses(3, 1); err != nil {
		t.Fatal(err)
	}
	if c.Out != oldOut {
		t.Error("no-op growth replaced the layer")
	}
	if err := c.GrowClasses(2, 1); err == nil {
		t.Error("shrinking accepted")
	}
}

func TestGrowClassesTrainable(t *testing.T) {
	// After growth the model must be able to learn targets in the new
	// classes.
	c, err := NewClassifier(4, []int{8}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.GrowClasses(4, 5); err != nil {
		t.Fatal(err)
	}
	seq := Sequence{}
	for i := 0; i < 120; i++ {
		x := make([]float64, 4)
		x[i%4] = 1
		seq.Inputs = append(seq.Inputs, x)
		seq.Targets = append(seq.Targets, (i+1)%4)
	}
	loss, err := Train(c, []Sequence{seq}, TrainConfig{
		Epochs: 80, Window: 12, BatchSize: 4, LR: 5e-3, ClipNorm: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.2 {
		t.Errorf("grown model failed to learn: loss %.4f", loss)
	}
}
