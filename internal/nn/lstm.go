// Package nn is the from-scratch neural substrate for the time-series level
// anomaly detector: LSTM layers implementing exactly the memory-cell
// equations of the paper (§V, Fig. 1), a dense softmax head (Fig. 2),
// cross-entropy loss, full backpropagation through time, Adam/SGD
// optimizers, and a data-parallel minibatch trainer. It has no dependencies
// beyond the repository's math kernels.
package nn

import (
	"fmt"
	"math"
	"sync/atomic"

	"icsdetect/internal/mathx"
)

// Gate block offsets inside the concatenated 4H gate vector. The order is
// (input, forget, output, cell-candidate), matching the paper's
// (i_t, f_t, o_t, g_t).
const (
	gateI = iota
	gateF
	gateO
	gateG
	numGates
)

// LSTMLayer is one layer of memory cells:
//
//	i_t = σ(W_i x_t + U_i h_{t-1} + b_i)
//	f_t = σ(W_f x_t + U_f h_{t-1} + b_f)
//	o_t = σ(W_o x_t + U_o h_{t-1} + b_o)
//	g_t = τ(W_g x_t + U_g h_{t-1} + b_g)
//	c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//	h_t = o_t ⊙ τ(c_t)
//
// with τ = tanh. The four per-gate weight matrices are stored stacked:
// W is (4H × I), U is (4H × H), B is 4H.
type LSTMLayer struct {
	InputSize  int
	HiddenSize int
	W          *mathx.Matrix
	U          *mathx.Matrix
	B          []float64

	// Cached inference layouts (infer.go): packed GEMV tiles of W/U and
	// the transposed W the one-hot gather walks. Unexported so gob skips
	// them; dropped by Classifier.InvalidateInference on weight mutation.
	packs atomic.Pointer[lstmPacks]
	wt    atomic.Pointer[mathx.Matrix]
}

// NewLSTMLayer allocates a layer with Xavier/Glorot-uniform weights and the
// customary forget-gate bias of 1 (keeps memory open early in training).
func NewLSTMLayer(inputSize, hiddenSize int, rng *mathx.RNG) *LSTMLayer {
	l := &LSTMLayer{
		InputSize:  inputSize,
		HiddenSize: hiddenSize,
		W:          mathx.NewMatrix(numGates*hiddenSize, inputSize),
		U:          mathx.NewMatrix(numGates*hiddenSize, hiddenSize),
		B:          make([]float64, numGates*hiddenSize),
	}
	xavierInit(l.W, inputSize, hiddenSize, rng)
	xavierInit(l.U, hiddenSize, hiddenSize, rng)
	for h := 0; h < hiddenSize; h++ {
		l.B[gateF*hiddenSize+h] = 1
	}
	return l
}

func xavierInit(m *mathx.Matrix, fanIn, fanOut int, rng *mathx.RNG) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = rng.Range(-bound, bound)
	}
}

// lstmGrads accumulates gradients for one layer.
type lstmGrads struct {
	dW *mathx.Matrix
	dU *mathx.Matrix
	dB []float64
}

func newLSTMGrads(l *LSTMLayer) *lstmGrads {
	return &lstmGrads{
		dW: mathx.NewMatrix(l.W.Rows, l.W.Cols),
		dU: mathx.NewMatrix(l.U.Rows, l.U.Cols),
		dB: make([]float64, len(l.B)),
	}
}

// lstmStepCache holds everything the backward pass needs for one timestep.
type lstmStepCache struct {
	x     []float64 // input at t
	hPrev []float64 // h_{t-1}
	cPrev []float64 // c_{t-1}
	gates []float64 // post-activation (i,f,o,g), length 4H
	c     []float64 // c_t
	tanhC []float64 // τ(c_t)
	h     []float64 // h_t
}

// stepForward advances one timestep. x, hPrev and cPrev are not retained by
// the layer; the returned cache aliases the slices it allocates.
// stepInfer is the allocation-free inference step: gate pre-activations
// go through the caller's z scratch and h/c update in place. It runs on
// the packed inference weights (infer.go) with the bias and gate epilogue
// fused, but per element it performs exactly stepForward's operations in
// the same order (gate pre-activation sums, activations, then the
// cell/hidden update), so the inference path stays bitwise-identical to
// the training-forward path and to the batched StepBatchLogits (which
// also updates h/c in place).
func (l *LSTMLayer) stepInfer(z, x, h, c []float64) {
	p := l.inferPacks()
	p.w.Apply(z, x, nil, mathx.GemvSet)
	p.u.Apply(z, h, l.B, mathx.GemvAddBias)
	l.gatesCellUpdate(z, h, c)
}

func (l *LSTMLayer) stepForward(x, hPrev, cPrev []float64) *lstmStepCache {
	H := l.HiddenSize
	z := make([]float64, numGates*H)
	l.W.MulVec(z, x)
	l.U.MulVecAdd(z, hPrev)
	for i := range z {
		z[i] += l.B[i]
	}
	gates := z // reuse storage: overwrite pre-activations with activations
	for h := 0; h < H; h++ {
		gates[gateI*H+h] = mathx.Sigmoid(z[gateI*H+h])
		gates[gateF*H+h] = mathx.Sigmoid(z[gateF*H+h])
		gates[gateO*H+h] = mathx.Sigmoid(z[gateO*H+h])
		gates[gateG*H+h] = math.Tanh(z[gateG*H+h])
	}
	c := make([]float64, H)
	tanhC := make([]float64, H)
	h := make([]float64, H)
	for j := 0; j < H; j++ {
		c[j] = gates[gateF*H+j]*cPrev[j] + gates[gateI*H+j]*gates[gateG*H+j]
		tanhC[j] = math.Tanh(c[j])
		h[j] = gates[gateO*H+j] * tanhC[j]
	}
	return &lstmStepCache{
		x: x, hPrev: hPrev, cPrev: cPrev,
		gates: gates, c: c, tanhC: tanhC, h: h,
	}
}

// stepBackward backpropagates one timestep. dh is ∂L/∂h_t (including the
// contribution flowing back from t+1), dc is ∂L/∂c_t carried from t+1.
// It accumulates parameter gradients into g and returns ∂L/∂x_t, ∂L/∂h_{t-1}
// and ∂L/∂c_{t-1}.
func (l *LSTMLayer) stepBackward(cache *lstmStepCache, dh, dc []float64, g *lstmGrads) (dx, dhPrev, dcPrev []float64) {
	H := l.HiddenSize
	dz := make([]float64, numGates*H)
	dcPrev = make([]float64, H)
	for j := 0; j < H; j++ {
		i := cache.gates[gateI*H+j]
		f := cache.gates[gateF*H+j]
		o := cache.gates[gateO*H+j]
		gg := cache.gates[gateG*H+j]
		tc := cache.tanhC[j]

		do := dh[j] * tc
		dcj := dc[j] + dh[j]*o*(1-tc*tc)

		di := dcj * gg
		df := dcj * cache.cPrev[j]
		dg := dcj * i
		dcPrev[j] = dcj * f

		dz[gateI*H+j] = di * i * (1 - i)
		dz[gateF*H+j] = df * f * (1 - f)
		dz[gateO*H+j] = do * o * (1 - o)
		dz[gateG*H+j] = dg * (1 - gg*gg)
	}

	g.dW.AddOuter(1, dz, cache.x)
	g.dU.AddOuter(1, dz, cache.hPrev)
	for i, v := range dz {
		g.dB[i] += v
	}

	dx = make([]float64, l.InputSize)
	l.W.MulVecT(dx, dz)
	dhPrev = make([]float64, H)
	l.U.MulVecT(dhPrev, dz)
	return dx, dhPrev, dcPrev
}

// params returns the layer's parameter tensors (aliases, not copies).
func (l *LSTMLayer) params() []Param {
	return []Param{
		{Name: "W", Data: l.W.Data},
		{Name: "U", Data: l.U.Data},
		{Name: "B", Data: l.B},
	}
}

func (g *lstmGrads) slices() [][]float64 {
	return [][]float64{g.dW.Data, g.dU.Data, g.dB}
}

// validate reports structural corruption after deserialization.
func (l *LSTMLayer) validate() error {
	if l.HiddenSize <= 0 || l.InputSize <= 0 {
		return fmt.Errorf("nn: LSTM layer with non-positive sizes (%d, %d)", l.InputSize, l.HiddenSize)
	}
	if l.W == nil || l.U == nil ||
		l.W.Rows != numGates*l.HiddenSize || l.W.Cols != l.InputSize ||
		l.U.Rows != numGates*l.HiddenSize || l.U.Cols != l.HiddenSize ||
		len(l.B) != numGates*l.HiddenSize {
		return fmt.Errorf("nn: LSTM layer shape corruption")
	}
	return nil
}
