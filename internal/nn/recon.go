package nn

import (
	"fmt"

	"icsdetect/internal/mathx"
)

// Reconstruction-error networks for the continuous-telemetry detection
// stages (internal/recon): an LSTM autoencoder, a seq2seq predictor
// (after Kim et al., arXiv:1911.04831) and a 1D-CNN predictor (after
// Kravchik & Shabtai, arXiv:1806.08110). Each consumes one standardized
// window sample — T timesteps × D features, channels-last, exactly the
// layout baselines.Windowizer produces — and scores it by mean squared
// reconstruction/prediction error.
//
// Every network has two inference paths with one bitwise contract:
// Score (the sequential per-window path, packed GEMV kernels) and
// NewBatch().Score (the engine's micro-batched path, MulRowsT GEMM) must
// produce identical bits for every window on every kernel tier. The
// contract is inherited from the LSTM step kernels (stepInfer vs
// combineGatesCellUpdate), the dense head (forwardInfer vs
// MulRowsT+bias, both dot+bias), and Conv1D/Conv1DBatch — and pinned by
// tests in recon_test.go. Error accumulation uses the same loop order on
// both paths (timesteps ascending, features ascending, one divide at the
// end).

// ReconBatch scores a batch of window samples. The signature matches
// baselines.ScoreBatch so a ReconNet slots straight into the batched
// WindowStage dispatch. Implementations are not safe for concurrent use;
// the engine allocates one per shard.
type ReconBatch interface {
	Score(dst []float64, xs [][]float64)
}

// ReconNet is a reconstruction-error network over fixed-shape window
// samples. The Score path is safe for concurrent use (scratch is
// caller-owned); training mutates the network and must not run
// concurrently with scoring.
type ReconNet interface {
	// InputDims returns the expected window shape (timesteps, features);
	// Score's x has length T*D, channels-last.
	InputDims() (t, d int)
	// ScratchLen is the length of the scratch Score needs.
	ScratchLen() int
	// Score returns the window's mean squared reconstruction error.
	Score(x, scratch []float64) float64
	// NewBatch allocates a batched scorer for up to maxBatch windows.
	NewBatch(maxBatch int) ReconBatch
	// Validate reports structural corruption after deserialization.
	Validate() error

	// Training internals (unexported: implementations live in this
	// package so they can reuse the LSTM step/backward kernels).
	params() []Param
	newGrads() reconGrads
	forwardBackward(x []float64, g reconGrads) float64
	invalidate()
}

// reconGrads is a gradient accumulator matching one ReconNet's params().
type reconGrads interface {
	zero()
	slices() [][]float64
}

// sqErr accumulates the squared error between a prediction and its
// target in ascending feature order — the shared association both
// inference paths use.
func sqErr(pred, tgt []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - tgt[i]
		s += d * d
	}
	return s
}

// ---------------------------------------------------------------------------
// LSTM autoencoder

// AutoEncoder compresses a window through an LSTM encoder into the final
// hidden state, then decodes it repeat-vector style: the decoder LSTM
// reads the code at every step and a shared dense head reconstructs each
// timestep. Score is the mean squared reconstruction error over the
// whole window.
type AutoEncoder struct {
	T, D int
	Enc  *LSTMLayer // D → H
	Dec  *LSTMLayer // H → H
	Out  *Dense     // H → D
}

// NewAutoEncoder allocates an autoencoder for T×D windows with hidden
// width hidden, deterministically initialized from seed.
func NewAutoEncoder(t, d, hidden int, seed uint64) *AutoEncoder {
	rng := mathx.NewRNG(seed)
	return &AutoEncoder{
		T:   t,
		D:   d,
		Enc: NewLSTMLayer(d, hidden, rng),
		Dec: NewLSTMLayer(hidden, hidden, rng),
		Out: NewDense(hidden, d, rng),
	}
}

// InputDims returns the window shape.
func (m *AutoEncoder) InputDims() (int, int) { return m.T, m.D }

// ScratchLen is the scratch Score needs: the shared 4H gate buffer, the
// four H-wide state vectors and the D-wide reconstruction.
func (m *AutoEncoder) ScratchLen() int { return (numGates+4)*m.Enc.HiddenSize + m.D }

// Score returns the window's mean squared reconstruction error.
func (m *AutoEncoder) Score(x, scratch []float64) float64 {
	H := m.Enc.HiddenSize
	z, rest := scratch[:numGates*H], scratch[numGates*H:]
	h, rest := rest[:H], rest[H:]
	c, rest := rest[:H], rest[H:]
	hd, rest := rest[:H], rest[H:]
	cd, rest := rest[:H], rest[H:]
	pred := rest[:m.D]
	mathx.Fill(h, 0)
	mathx.Fill(c, 0)
	mathx.Fill(hd, 0)
	mathx.Fill(cd, 0)
	for t := 0; t < m.T; t++ {
		m.Enc.stepInfer(z, x[t*m.D:(t+1)*m.D], h, c)
	}
	var sum float64
	for t := 0; t < m.T; t++ {
		m.Dec.stepInfer(z, h, hd, cd)
		m.Out.forwardInfer(pred, hd)
		sum += sqErr(pred, x[t*m.D:(t+1)*m.D])
	}
	return sum / float64(m.T*m.D)
}

// aeBatch is the engine-side batched autoencoder scorer.
type aeBatch struct {
	m                *AutoEncoder
	z, zu            []float64 // maxBatch×4H GEMM outputs
	hs, cs, hds, cds [][]float64
	preds            []float64 // maxBatch×D
	ins              [][]float64
	errs             []float64
}

// NewBatch allocates a batched scorer for up to maxBatch windows.
func (m *AutoEncoder) NewBatch(maxBatch int) ReconBatch {
	H := m.Enc.HiddenSize
	b := &aeBatch{
		m:     m,
		z:     make([]float64, maxBatch*numGates*H),
		zu:    make([]float64, maxBatch*numGates*H),
		preds: make([]float64, maxBatch*m.D),
		ins:   make([][]float64, maxBatch),
		errs:  make([]float64, maxBatch),
	}
	b.hs = stateRows(maxBatch, H)
	b.cs = stateRows(maxBatch, H)
	b.hds = stateRows(maxBatch, H)
	b.cds = stateRows(maxBatch, H)
	return b
}

// stateRows allocates n H-wide rows over one backing array.
func stateRows(n, h int) [][]float64 {
	backing := make([]float64, n*h)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*h : (i+1)*h]
	}
	return rows
}

// Score scores len(xs) windows into dst, bitwise-identical to the
// sequential Score per window.
func (b *aeBatch) Score(dst []float64, xs [][]float64) {
	m := b.m
	H := m.Enc.HiddenSize
	n := len(xs)
	z := b.z[:n*numGates*H]
	zu := b.zu[:n*numGates*H]
	for i := 0; i < n; i++ {
		mathx.Fill(b.hs[i], 0)
		mathx.Fill(b.cs[i], 0)
		mathx.Fill(b.hds[i], 0)
		mathx.Fill(b.cds[i], 0)
		b.errs[i] = 0
	}
	for t := 0; t < m.T; t++ {
		for i := 0; i < n; i++ {
			b.ins[i] = xs[i][t*m.D : (t+1)*m.D]
		}
		m.Enc.W.MulRowsT(z, b.ins[:n])
		for i := 0; i < n; i++ {
			b.ins[i] = b.hs[i]
		}
		m.Enc.U.MulRowsT(zu, b.ins[:n])
		for i := 0; i < n; i++ {
			row := z[i*numGates*H : (i+1)*numGates*H]
			urow := zu[i*numGates*H : (i+1)*numGates*H]
			m.Enc.combineGatesCellUpdate(row, urow, b.hs[i], b.cs[i])
		}
	}
	preds := b.preds[:n*m.D]
	for t := 0; t < m.T; t++ {
		for i := 0; i < n; i++ {
			b.ins[i] = b.hs[i]
		}
		m.Dec.W.MulRowsT(z, b.ins[:n])
		for i := 0; i < n; i++ {
			b.ins[i] = b.hds[i]
		}
		m.Dec.U.MulRowsT(zu, b.ins[:n])
		for i := 0; i < n; i++ {
			row := z[i*numGates*H : (i+1)*numGates*H]
			urow := zu[i*numGates*H : (i+1)*numGates*H]
			m.Dec.combineGatesCellUpdate(row, urow, b.hds[i], b.cds[i])
		}
		for i := 0; i < n; i++ {
			b.ins[i] = b.hds[i]
		}
		m.Out.W.MulRowsT(preds, b.ins[:n])
		for i := 0; i < n; i++ {
			row := preds[i*m.D : (i+1)*m.D]
			for j := range row {
				row[j] += m.Out.B[j]
			}
			b.errs[i] += sqErr(row, xs[i][t*m.D:(t+1)*m.D])
		}
	}
	for i := 0; i < n; i++ {
		dst[i] = b.errs[i] / float64(m.T*m.D)
	}
}

// Validate reports structural corruption after deserialization.
func (m *AutoEncoder) Validate() error {
	if m.T <= 0 || m.D <= 0 || m.Enc == nil || m.Dec == nil || m.Out == nil {
		return fmt.Errorf("nn: autoencoder missing components")
	}
	if err := m.Enc.validate(); err != nil {
		return err
	}
	if err := m.Dec.validate(); err != nil {
		return err
	}
	if err := m.Out.validate(); err != nil {
		return err
	}
	H := m.Enc.HiddenSize
	if m.Enc.InputSize != m.D || m.Dec.InputSize != H || m.Dec.HiddenSize != H ||
		m.Out.InputSize != H || m.Out.OutputSize != m.D {
		return fmt.Errorf("nn: autoencoder shape mismatch")
	}
	return nil
}

func (m *AutoEncoder) params() []Param {
	return append(append(m.Enc.params(), m.Dec.params()...), m.Out.params()...)
}

// encDecGrads accumulates gradients for an encoder-decoder network; the
// slice order matches the params() order of AutoEncoder and Seq2Seq.
type encDecGrads struct {
	enc, dec *lstmGrads
	out      *denseGrads
}

func (g *encDecGrads) slices() [][]float64 {
	return append(append(g.enc.slices(), g.dec.slices()...), g.out.slices()...)
}

func (g *encDecGrads) zero() {
	for _, s := range g.slices() {
		mathx.Fill(s, 0)
	}
}

func (m *AutoEncoder) newGrads() reconGrads {
	return &encDecGrads{enc: newLSTMGrads(m.Enc), dec: newLSTMGrads(m.Dec), out: newDenseGrads(m.Out)}
}

func (m *AutoEncoder) invalidate() {
	m.Enc.packs.Store(nil)
	m.Enc.wt.Store(nil)
	m.Dec.packs.Store(nil)
	m.Dec.wt.Store(nil)
	m.Out.pack.Store(nil)
}

// forwardBackward runs one window through the autoencoder, accumulates
// parameter gradients of the mean-squared-error loss into g, and returns
// the window's loss.
func (m *AutoEncoder) forwardBackward(x []float64, g reconGrads) float64 {
	ag := g.(*encDecGrads)
	H := m.Enc.HiddenSize
	T, D := m.T, m.D

	encCaches := make([]*lstmStepCache, T)
	h := make([]float64, H)
	c := make([]float64, H)
	for t := 0; t < T; t++ {
		cache := m.Enc.stepForward(x[t*D:(t+1)*D], h, c)
		encCaches[t] = cache
		h, c = cache.h, cache.c
	}
	code := h

	decCaches := make([]*lstmStepCache, T)
	preds := make([][]float64, T)
	hd := make([]float64, H)
	cd := make([]float64, H)
	var loss float64
	for t := 0; t < T; t++ {
		cache := m.Dec.stepForward(code, hd, cd)
		decCaches[t] = cache
		hd, cd = cache.h, cache.c
		pred := make([]float64, D)
		m.Out.Forward(pred, cache.h)
		preds[t] = pred
		loss += sqErr(pred, x[t*D:(t+1)*D])
	}
	inv := 1 / float64(T*D)

	dh := make([]float64, H)
	dc := make([]float64, H)
	dCode := make([]float64, H)
	dLogits := make([]float64, D)
	for t := T - 1; t >= 0; t-- {
		for j := 0; j < D; j++ {
			dLogits[j] = 2 * inv * (preds[t][j] - x[t*D+j])
		}
		dhOut := m.Out.Backward(dLogits, decCaches[t].h, ag.out)
		mathx.Axpy(dh, 1, dhOut)
		dx, dhPrev, dcPrev := m.Dec.stepBackward(decCaches[t], dh, dc, ag.dec)
		mathx.Axpy(dCode, 1, dx)
		dh, dc = dhPrev, dcPrev
	}

	dhE := dCode // every decoder step read the encoder's final hidden state
	dcE := make([]float64, H)
	for t := T - 1; t >= 0; t-- {
		_, dhPrev, dcPrev := m.Enc.stepBackward(encCaches[t], dhE, dcE, ag.enc)
		dhE, dcE = dhPrev, dcPrev
	}
	return loss * inv
}

// ---------------------------------------------------------------------------
// Seq2seq predictor

// Seq2Seq warms an encoder LSTM on the first Warm timesteps of a window,
// hands its (h, c) state to a decoder LSTM, and free-runs the decoder
// over the remaining steps: each decoder step reads the previous
// observed-or-predicted frame and a dense head predicts the next one.
// Training and inference both free-run (no teacher forcing), so the
// scored error matches the trained objective. Score is the mean squared
// prediction error over the T-Warm predicted steps.
type Seq2Seq struct {
	T, D, Warm int
	Enc        *LSTMLayer // D → H
	Dec        *LSTMLayer // D → H
	Out        *Dense     // H → D
}

// NewSeq2Seq allocates a seq2seq predictor for T×D windows warming on
// warm steps, deterministically initialized from seed.
func NewSeq2Seq(t, d, warm, hidden int, seed uint64) *Seq2Seq {
	rng := mathx.NewRNG(seed)
	return &Seq2Seq{
		T:    t,
		D:    d,
		Warm: warm,
		Enc:  NewLSTMLayer(d, hidden, rng),
		Dec:  NewLSTMLayer(d, hidden, rng),
		Out:  NewDense(hidden, d, rng),
	}
}

// InputDims returns the window shape.
func (m *Seq2Seq) InputDims() (int, int) { return m.T, m.D }

// ScratchLen is the scratch Score needs.
func (m *Seq2Seq) ScratchLen() int { return (numGates+4)*m.Enc.HiddenSize + m.D }

// Score returns the window's mean squared prediction error.
func (m *Seq2Seq) Score(x, scratch []float64) float64 {
	H := m.Enc.HiddenSize
	z, rest := scratch[:numGates*H], scratch[numGates*H:]
	h, rest := rest[:H], rest[H:]
	c, rest := rest[:H], rest[H:]
	hd, rest := rest[:H], rest[H:]
	cd, rest := rest[:H], rest[H:]
	pred := rest[:m.D]
	mathx.Fill(h, 0)
	mathx.Fill(c, 0)
	for t := 0; t < m.Warm; t++ {
		m.Enc.stepInfer(z, x[t*m.D:(t+1)*m.D], h, c)
	}
	copy(hd, h)
	copy(cd, c)
	u := x[(m.Warm-1)*m.D : m.Warm*m.D]
	var sum float64
	for t := m.Warm; t < m.T; t++ {
		m.Dec.stepInfer(z, u, hd, cd)
		m.Out.forwardInfer(pred, hd)
		sum += sqErr(pred, x[t*m.D:(t+1)*m.D])
		u = pred
	}
	return sum / float64((m.T-m.Warm)*m.D)
}

// s2sBatch is the engine-side batched seq2seq scorer.
type s2sBatch struct {
	m                *Seq2Seq
	z, zu            []float64
	hs, cs, hds, cds [][]float64
	preds            []float64
	ins              [][]float64
	errs             []float64
}

// NewBatch allocates a batched scorer for up to maxBatch windows.
func (m *Seq2Seq) NewBatch(maxBatch int) ReconBatch {
	H := m.Enc.HiddenSize
	b := &s2sBatch{
		m:     m,
		z:     make([]float64, maxBatch*numGates*H),
		zu:    make([]float64, maxBatch*numGates*H),
		preds: make([]float64, maxBatch*m.D),
		ins:   make([][]float64, maxBatch),
		errs:  make([]float64, maxBatch),
	}
	b.hs = stateRows(maxBatch, H)
	b.cs = stateRows(maxBatch, H)
	b.hds = stateRows(maxBatch, H)
	b.cds = stateRows(maxBatch, H)
	return b
}

// Score scores len(xs) windows into dst, bitwise-identical to the
// sequential Score per window.
func (b *s2sBatch) Score(dst []float64, xs [][]float64) {
	m := b.m
	H := m.Enc.HiddenSize
	n := len(xs)
	z := b.z[:n*numGates*H]
	zu := b.zu[:n*numGates*H]
	for i := 0; i < n; i++ {
		mathx.Fill(b.hs[i], 0)
		mathx.Fill(b.cs[i], 0)
		b.errs[i] = 0
	}
	for t := 0; t < m.Warm; t++ {
		for i := 0; i < n; i++ {
			b.ins[i] = xs[i][t*m.D : (t+1)*m.D]
		}
		m.Enc.W.MulRowsT(z, b.ins[:n])
		for i := 0; i < n; i++ {
			b.ins[i] = b.hs[i]
		}
		m.Enc.U.MulRowsT(zu, b.ins[:n])
		for i := 0; i < n; i++ {
			row := z[i*numGates*H : (i+1)*numGates*H]
			urow := zu[i*numGates*H : (i+1)*numGates*H]
			m.Enc.combineGatesCellUpdate(row, urow, b.hs[i], b.cs[i])
		}
	}
	preds := b.preds[:n*m.D]
	for i := 0; i < n; i++ {
		copy(b.hds[i], b.hs[i])
		copy(b.cds[i], b.cs[i])
	}
	for t := m.Warm; t < m.T; t++ {
		for i := 0; i < n; i++ {
			if t == m.Warm {
				b.ins[i] = xs[i][(m.Warm-1)*m.D : m.Warm*m.D]
			} else {
				b.ins[i] = preds[i*m.D : (i+1)*m.D]
			}
		}
		m.Dec.W.MulRowsT(z, b.ins[:n])
		for i := 0; i < n; i++ {
			b.ins[i] = b.hds[i]
		}
		m.Dec.U.MulRowsT(zu, b.ins[:n])
		for i := 0; i < n; i++ {
			row := z[i*numGates*H : (i+1)*numGates*H]
			urow := zu[i*numGates*H : (i+1)*numGates*H]
			m.Dec.combineGatesCellUpdate(row, urow, b.hds[i], b.cds[i])
		}
		for i := 0; i < n; i++ {
			b.ins[i] = b.hds[i]
		}
		m.Out.W.MulRowsT(preds, b.ins[:n])
		for i := 0; i < n; i++ {
			row := preds[i*m.D : (i+1)*m.D]
			for j := range row {
				row[j] += m.Out.B[j]
			}
			b.errs[i] += sqErr(row, xs[i][t*m.D:(t+1)*m.D])
		}
	}
	for i := 0; i < n; i++ {
		dst[i] = b.errs[i] / float64((m.T-m.Warm)*m.D)
	}
}

// Validate reports structural corruption after deserialization.
func (m *Seq2Seq) Validate() error {
	if m.T <= 0 || m.D <= 0 || m.Warm <= 0 || m.Warm >= m.T ||
		m.Enc == nil || m.Dec == nil || m.Out == nil {
		return fmt.Errorf("nn: seq2seq missing components or bad warmup")
	}
	if err := m.Enc.validate(); err != nil {
		return err
	}
	if err := m.Dec.validate(); err != nil {
		return err
	}
	if err := m.Out.validate(); err != nil {
		return err
	}
	H := m.Enc.HiddenSize
	if m.Enc.InputSize != m.D || m.Dec.InputSize != m.D || m.Dec.HiddenSize != H ||
		m.Out.InputSize != H || m.Out.OutputSize != m.D {
		return fmt.Errorf("nn: seq2seq shape mismatch")
	}
	return nil
}

func (m *Seq2Seq) params() []Param {
	return append(append(m.Enc.params(), m.Dec.params()...), m.Out.params()...)
}

func (m *Seq2Seq) newGrads() reconGrads {
	return &encDecGrads{enc: newLSTMGrads(m.Enc), dec: newLSTMGrads(m.Dec), out: newDenseGrads(m.Out)}
}

func (m *Seq2Seq) invalidate() {
	m.Enc.packs.Store(nil)
	m.Enc.wt.Store(nil)
	m.Dec.packs.Store(nil)
	m.Dec.wt.Store(nil)
	m.Out.pack.Store(nil)
}

// forwardBackward runs one window through the predictor, accumulates
// gradients of the mean-squared prediction error into g (backpropagating
// through the free-running feedback path), and returns the window's loss.
func (m *Seq2Seq) forwardBackward(x []float64, g reconGrads) float64 {
	sg := g.(*encDecGrads)
	H := m.Enc.HiddenSize
	T, D, W := m.T, m.D, m.Warm

	encCaches := make([]*lstmStepCache, W)
	h := make([]float64, H)
	c := make([]float64, H)
	for t := 0; t < W; t++ {
		cache := m.Enc.stepForward(x[t*D:(t+1)*D], h, c)
		encCaches[t] = cache
		h, c = cache.h, cache.c
	}

	decCaches := make([]*lstmStepCache, T)
	preds := make([][]float64, T)
	hd, cd := h, c
	u := x[(W-1)*D : W*D]
	var loss float64
	for t := W; t < T; t++ {
		cache := m.Dec.stepForward(u, hd, cd)
		decCaches[t] = cache
		hd, cd = cache.h, cache.c
		pred := make([]float64, D)
		m.Out.Forward(pred, cache.h)
		preds[t] = pred
		loss += sqErr(pred, x[t*D:(t+1)*D])
		u = pred
	}
	inv := 1 / float64((T-W)*D)

	dh := make([]float64, H)
	dc := make([]float64, H)
	dLogits := make([]float64, D)
	dPredNext := make([]float64, D) // ∂L/∂pred_t via the t+1 input path
	for t := T - 1; t >= W; t-- {
		for j := 0; j < D; j++ {
			dLogits[j] = 2*inv*(preds[t][j]-x[t*D+j]) + dPredNext[j]
		}
		dhOut := m.Out.Backward(dLogits, decCaches[t].h, sg.out)
		mathx.Axpy(dh, 1, dhOut)
		dx, dhPrev, dcPrev := m.Dec.stepBackward(decCaches[t], dh, dc, sg.dec)
		if t > W {
			copy(dPredNext, dx) // this step's input was pred_{t-1}
		}
		dh, dc = dhPrev, dcPrev
	}

	// dh/dc are now ∂L/∂(encoder final state), handed across the bridge.
	for t := W - 1; t >= 0; t-- {
		_, dhPrev, dcPrev := m.Enc.stepBackward(encCaches[t], dh, dc, sg.enc)
		dh, dc = dhPrev, dcPrev
	}
	return loss * inv
}

// ---------------------------------------------------------------------------
// 1D-CNN predictor

// ConvNet slides K-timestep convolution filters over the window
// (channels-last, via mathx.Conv1D), applies ReLU, and predicts the
// frame following each window position through a shared dense head.
// Score is the mean squared prediction error over the T-K predicted
// frames.
type ConvNet struct {
	T, D, K int
	Filters *mathx.Matrix // F × K*D
	Bias    []float64     // F
	Out     *Dense        // F → D
}

// NewConvNet allocates a 1D-CNN predictor with filters filters of length
// kernel timesteps for T×D windows, deterministically initialized from
// seed.
func NewConvNet(t, d, kernel, filters int, seed uint64) *ConvNet {
	rng := mathx.NewRNG(seed)
	m := &ConvNet{
		T:       t,
		D:       d,
		K:       kernel,
		Filters: mathx.NewMatrix(filters, kernel*d),
		Bias:    make([]float64, filters),
	}
	xavierInit(m.Filters, kernel*d, filters, rng)
	m.Out = NewDense(filters, d, rng)
	return m
}

// positions is the number of predicted frames per window.
func (m *ConvNet) positions() int { return m.T - m.K }

// InputDims returns the window shape.
func (m *ConvNet) InputDims() (int, int) { return m.T, m.D }

// ScratchLen is the scratch Score needs: the post-conv activation plane
// plus the predicted frames.
func (m *ConvNet) ScratchLen() int {
	p := m.positions()
	return p*m.Filters.Rows + p*m.D
}

// Score returns the window's mean squared prediction error.
func (m *ConvNet) Score(x, scratch []float64) float64 {
	P := m.positions()
	F := m.Filters.Rows
	conv := scratch[:P*F]
	preds := scratch[P*F : P*F+P*m.D]
	mathx.Conv1D(conv, m.Filters, m.Bias, x, m.D)
	relu(conv)
	var rbuf [8][]float64
	rows := rbuf[:0]
	if P > len(rbuf) {
		rows = make([][]float64, 0, P)
	}
	for p := 0; p < P; p++ {
		rows = append(rows, conv[p*F:(p+1)*F])
	}
	m.Out.W.MulRowsT(preds, rows)
	var sum float64
	for p := 0; p < P; p++ {
		row := preds[p*m.D : (p+1)*m.D]
		for j := range row {
			row[j] += m.Out.B[j]
		}
		sum += sqErr(row, x[(p+m.K)*m.D:(p+m.K+1)*m.D])
	}
	return sum / float64(P*m.D)
}

// relu clamps negatives to zero in place.
func relu(v []float64) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// cnnBatch is the engine-side batched CNN scorer: every position of every
// window stacks into one conv GEMM and one head GEMM.
type cnnBatch struct {
	m     *ConvNet
	conv  []float64 // maxBatch×P×F
	preds []float64 // maxBatch×P×D
	rows  [][]float64
}

// NewBatch allocates a batched scorer for up to maxBatch windows.
func (m *ConvNet) NewBatch(maxBatch int) ReconBatch {
	P := m.positions()
	return &cnnBatch{
		m:     m,
		conv:  make([]float64, maxBatch*P*m.Filters.Rows),
		preds: make([]float64, maxBatch*P*m.D),
		rows:  make([][]float64, 0, maxBatch*P),
	}
}

// Score scores len(xs) windows into dst, bitwise-identical to the
// sequential Score per window.
func (b *cnnBatch) Score(dst []float64, xs [][]float64) {
	m := b.m
	P := m.positions()
	F := m.Filters.Rows
	n := len(xs)
	conv := b.conv[:n*P*F]
	preds := b.preds[:n*P*m.D]
	mathx.Conv1DBatch(conv, m.Filters, m.Bias, xs, m.D, P, b.rows)
	relu(conv)
	rows := b.rows[:0]
	for r := 0; r < n*P; r++ {
		rows = append(rows, conv[r*F:(r+1)*F])
	}
	m.Out.W.MulRowsT(preds, rows)
	for i := 0; i < n; i++ {
		var sum float64
		for p := 0; p < P; p++ {
			row := preds[(i*P+p)*m.D : (i*P+p+1)*m.D]
			for j := range row {
				row[j] += m.Out.B[j]
			}
			sum += sqErr(row, xs[i][(p+m.K)*m.D:(p+m.K+1)*m.D])
		}
		dst[i] = sum / float64(P*m.D)
	}
}

// Validate reports structural corruption after deserialization.
func (m *ConvNet) Validate() error {
	if m.T <= 0 || m.D <= 0 || m.K <= 0 || m.K >= m.T || m.Filters == nil || m.Out == nil {
		return fmt.Errorf("nn: convnet missing components or bad kernel")
	}
	if m.Filters.Cols != m.K*m.D || m.Filters.Rows <= 0 || len(m.Bias) != m.Filters.Rows {
		return fmt.Errorf("nn: convnet filter shape mismatch")
	}
	if err := m.Out.validate(); err != nil {
		return err
	}
	if m.Out.InputSize != m.Filters.Rows || m.Out.OutputSize != m.D {
		return fmt.Errorf("nn: convnet head shape mismatch")
	}
	return nil
}

func (m *ConvNet) params() []Param {
	return append([]Param{
		{Name: "Filters", Data: m.Filters.Data},
		{Name: "Bias", Data: m.Bias},
	}, m.Out.params()...)
}

// convGrads accumulates gradients matching ConvNet.params() order.
type convGrads struct {
	dW  *mathx.Matrix
	dB  []float64
	out *denseGrads
}

func (g *convGrads) slices() [][]float64 {
	return append([][]float64{g.dW.Data, g.dB}, g.out.slices()...)
}

func (g *convGrads) zero() {
	for _, s := range g.slices() {
		mathx.Fill(s, 0)
	}
}

func (m *ConvNet) newGrads() reconGrads {
	return &convGrads{
		dW:  mathx.NewMatrix(m.Filters.Rows, m.Filters.Cols),
		dB:  make([]float64, len(m.Bias)),
		out: newDenseGrads(m.Out),
	}
}

func (m *ConvNet) invalidate() {
	m.Out.pack.Store(nil)
}

// forwardBackward runs one window through the CNN, accumulates gradients
// of the mean-squared prediction error into g, and returns the window's
// loss.
func (m *ConvNet) forwardBackward(x []float64, g reconGrads) float64 {
	cg := g.(*convGrads)
	P := m.positions()
	F := m.Filters.Rows
	D := m.D

	acts := make([][]float64, P)
	preds := make([][]float64, P)
	var loss float64
	for p := 0; p < P; p++ {
		win := x[p*D : p*D+m.K*D]
		a := make([]float64, F)
		m.Filters.MulVec(a, win)
		for f := 0; f < F; f++ {
			a[f] += m.Bias[f]
		}
		relu(a)
		acts[p] = a
		pred := make([]float64, D)
		m.Out.Forward(pred, a)
		preds[p] = pred
		loss += sqErr(pred, x[(p+m.K)*D:(p+m.K+1)*D])
	}
	inv := 1 / float64(P*D)

	dLogits := make([]float64, D)
	for p := 0; p < P; p++ {
		tgt := x[(p+m.K)*D : (p+m.K+1)*D]
		for j := 0; j < D; j++ {
			dLogits[j] = 2 * inv * (preds[p][j] - tgt[j])
		}
		dA := m.Out.Backward(dLogits, acts[p], cg.out)
		for f := 0; f < F; f++ {
			if acts[p][f] <= 0 { // ReLU inactive: no gradient
				dA[f] = 0
			}
		}
		cg.dW.AddOuter(1, dA, x[p*D:p*D+m.K*D])
		for f := 0; f < F; f++ {
			cg.dB[f] += dA[f]
		}
	}
	return loss * inv
}
