// Property tests for the one-hot inference fast path: random sparse
// encodings driven through StepLogitsOneHot / StepBatchLogitsOneHot must be
// bitwise-identical — logits, hidden states and cell states — to the dense
// StepLogits / StepBatchLogits on the equivalent one-hot vectors, for every
// layer shape the detection stacks use and on every kernel tier. The
// batched test drives ragged widths (a different subset of streams each
// step), the shape the engine produces when streams join and leave shards.
package nn

import (
	"math"
	"testing"

	"icsdetect/internal/mathx"
)

// forEachKernelTier runs f under each kernel tier override; on machines
// without the hardware the override is a no-op and the sub-test exercises
// the next tier down.
func forEachKernelTier(t *testing.T, f func(t *testing.T)) {
	for _, tier := range []struct {
		name         string
		simd, avx512 bool
	}{
		{"avx512", true, true},
		{"avx2", true, false},
		{"scalar", false, false},
	} {
		t.Run(tier.name, func(t *testing.T) {
			prevSIMD := mathx.SetSIMDEnabled(tier.simd)
			prevAVX512 := mathx.SetAVX512Enabled(tier.avx512)
			defer func() {
				mathx.SetAVX512Enabled(prevAVX512)
				mathx.SetSIMDEnabled(prevSIMD)
			}()
			f(t)
		})
	}
}

// onehotShapes covers the layer geometries the stacks instantiate: the
// paper's 2x32 model over the gas-pipeline one-hot width, a single narrow
// layer, a deep ragged pyramid, and hidden sizes that are not multiples of
// the 4/8-wide kernel blocks.
var onehotShapes = []struct {
	name    string
	in      int
	hidden  []int
	classes int
}{
	{"paper-2x32", 138, []int{32, 32}, 49},
	{"single-16", 57, []int{16}, 11},
	{"deep-24-16-8", 91, []int{24, 16, 8}, 23},
	{"odd-13-7", 45, []int{13, 7}, 9},
}

// randomOneHot draws a strictly ascending active-index set over dim
// columns, dense enough that aligned gather groups often hold several
// actives, never empty (the encoder always sets at least one bucket).
func randomOneHot(rng *mathx.RNG, dim int) []int {
	var idx []int
	for j := 0; j < dim; j++ {
		if rng.Bernoulli(0.12) {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		idx = append(idx, rng.Intn(dim))
	}
	return idx
}

func denseOneHot(dim int, idx []int) []float64 {
	x := make([]float64, dim)
	for _, j := range idx {
		x[j] = 1
	}
	return x
}

func requireBitsEqual(t *testing.T, what string, a, b []float64) {
	t.Helper()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: sparse %x dense %x", what, i, a[i], b[i])
		}
	}
}

func requireStatesEqual(t *testing.T, a, b *State) {
	t.Helper()
	for l := range a.h {
		requireBitsEqual(t, "h", a.h[l], b.h[l])
		requireBitsEqual(t, "c", a.c[l], b.c[l])
	}
}

// TestStepLogitsOneHotMatchesDense: the sequential sparse fast path against
// the dense StepLogits, stepped as one stream over many random packages.
func TestStepLogitsOneHotMatchesDense(t *testing.T) {
	const steps = 60
	for _, shape := range onehotShapes {
		t.Run(shape.name, func(t *testing.T) {
			forEachKernelTier(t, func(t *testing.T) {
				c, err := NewClassifier(shape.in, shape.hidden, shape.classes, 1234)
				if err != nil {
					t.Fatal(err)
				}
				rng := mathx.NewRNG(99)
				sparseState, denseState := c.NewState(), c.NewState()
				sparseScores := make([]float64, shape.classes)
				denseScores := make([]float64, shape.classes)
				for s := 0; s < steps; s++ {
					idx := randomOneHot(rng, shape.in)
					c.StepLogitsOneHot(sparseState, idx, sparseScores)
					c.StepLogits(denseState, denseOneHot(shape.in, idx), denseScores)
					requireBitsEqual(t, "logits", sparseScores, denseScores)
					requireStatesEqual(t, sparseState, denseState)
				}
			})
		})
	}
}

// TestStepBatchLogitsOneHotMatchesDense: the batched sparse path against
// both the batched dense path and the sequential sparse path, under ragged
// batch widths — each step advances a different prefix of the streams, so
// batch rows, GEMM tile edges and gather groups all shift between steps.
func TestStepBatchLogitsOneHotMatchesDense(t *testing.T) {
	const maxStreams = 9
	widths := []int{1, maxStreams, 4, 7, 2, 8, 3, maxStreams, 1, 5, 6, maxStreams}
	for _, shape := range onehotShapes {
		t.Run(shape.name, func(t *testing.T) {
			forEachKernelTier(t, func(t *testing.T) {
				c, err := NewClassifier(shape.in, shape.hidden, shape.classes, 4321)
				if err != nil {
					t.Fatal(err)
				}
				rng := mathx.NewRNG(7)
				buf := c.NewBatchBuffer(maxStreams)
				denseBuf := c.NewBatchBuffer(maxStreams)
				sparse := make([]*State, maxStreams)
				dense := make([]*State, maxStreams)
				seq := make([]*State, maxStreams)
				for i := range sparse {
					sparse[i], dense[i], seq[i] = c.NewState(), c.NewState(), c.NewState()
				}
				seqScores := make([]float64, shape.classes)
				for _, n := range widths {
					idxs := make([][]int, n)
					xs := make([][]float64, n)
					sparseScores := make([][]float64, n)
					denseScores := make([][]float64, n)
					for i := 0; i < n; i++ {
						idxs[i] = randomOneHot(rng, shape.in)
						xs[i] = denseOneHot(shape.in, idxs[i])
						sparseScores[i] = make([]float64, shape.classes)
						denseScores[i] = make([]float64, shape.classes)
					}
					c.StepBatchLogitsOneHot(buf, sparse[:n], idxs, sparseScores)
					c.StepBatchLogits(denseBuf, dense[:n], xs, denseScores)
					for i := 0; i < n; i++ {
						c.StepLogitsOneHot(seq[i], idxs[i], seqScores)
						requireBitsEqual(t, "batch-vs-dense logits", sparseScores[i], denseScores[i])
						requireBitsEqual(t, "batch-vs-seq logits", sparseScores[i], seqScores)
						requireStatesEqual(t, sparse[i], dense[i])
						requireStatesEqual(t, sparse[i], seq[i])
					}
				}
			})
		})
	}
}
