package nn

import (
	"math/rand"
	"testing"
)

func benchSetup(b *testing.B) (*Classifier, *BatchBuffer, []*State, [][]float64, [][]int, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	c, err := NewClassifier(138, []int{32, 32}, 49, 11)
	if err != nil {
		b.Fatal(err)
	}
	const n = 8
	buf := c.NewBatchBuffer(n)
	states := make([]*State, n)
	dense := make([][]float64, n)
	idxs := make([][]int, n)
	scores := make([][]float64, n)
	for i := range states {
		states[i] = c.NewState()
		dense[i] = make([]float64, 138)
		for f := 0; f < 13; f++ {
			col := f*10 + rng.Intn(10)
			dense[i][col] = 1
			idxs[i] = append(idxs[i], col)
		}
		scores[i] = make([]float64, 49)
	}
	return c, buf, states, dense, idxs, scores
}

func BenchmarkStepBatchDense(b *testing.B) {
	c, buf, states, dense, _, scores := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StepBatchLogits(buf, states, dense, scores)
	}
}

func BenchmarkStepBatchOneHot(b *testing.B) {
	c, buf, states, _, idxs, scores := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StepBatchLogitsOneHot(buf, states, idxs, scores)
	}
}

func BenchmarkStepSeqOneHot(b *testing.B) {
	c, _, states, _, idxs, scores := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StepLogitsOneHot(states[i%8], idxs[i%8], scores[i%8])
	}
}
