package nn

import (
	"icsdetect/internal/mathx"
)

// Inference weight caches. The sequential hot path spends nearly all of its
// time in single-vector products (W·x, U·h, the dense head), which the
// row-major matrices serve one Dot at a time; packing the weights into
// mathx.PackedGEMV tiles lets the SIMD kernels vectorize across output rows
// instead. The packs (and the transposed W the one-hot gather walks) are
// derived data: they are built lazily on first use, cached on the layer
// behind atomic pointers, dropped by InvalidateInference whenever the
// optimizer mutates the weights, and rebuilt when a kernel-tier override
// makes them stale. Concurrent builders may race benignly — every build
// produces identical bits, the last store wins.
//
// None of this changes any result: PackedGEMV.Apply and OneHotGather are
// bitwise-identical to the MulVec/MulVecAdd reference per element, and the
// fused gate epilogue below performs exactly the same per-element operation
// chain as the unfused activation + cell loops it replaces.

// lstmPacks is one layer's packed inference weights.
type lstmPacks struct {
	w, u *mathx.PackedGEMV
}

// inferPacks returns the layer's packed weights, building them on first use
// or after a kernel-tier change.
func (l *LSTMLayer) inferPacks() *lstmPacks {
	p := l.packs.Load()
	if p == nil || p.w.Stale() {
		p = &lstmPacks{w: mathx.PackGEMV(l.W), u: mathx.PackGEMV(l.U)}
		l.packs.Store(p)
	}
	return p
}

// wtrans returns Wᵀ for the one-hot gather, building it on first use.
func (l *LSTMLayer) wtrans() *mathx.Matrix {
	wt := l.wt.Load()
	if wt == nil {
		wt = l.W.Transpose()
		l.wt.Store(wt)
	}
	return wt
}

// inferPack returns the dense head's packed weights.
func (d *Dense) inferPack() *mathx.PackedGEMV {
	p := d.pack.Load()
	if p == nil || p.Stale() {
		p = mathx.PackGEMV(d.W)
		d.pack.Store(p)
	}
	return p
}

// forwardInfer is Forward through the packed weights: logits = W·h + b with
// the bias add fused into the GEMV epilogue, bitwise-identical to Forward.
func (d *Dense) forwardInfer(dst, h []float64) {
	d.inferPack().Apply(dst, h, d.B, mathx.GemvSetBias)
}

// InvalidateInference drops every cached inference layout (packed GEMV
// tiles, transposed input weights). The trainer calls it after each
// optimizer step; anything else that mutates weights in place must do the
// same. GrowClasses replaces the head wholesale, so its caches start empty.
func (c *Classifier) InvalidateInference() {
	for _, l := range c.Layers {
		l.packs.Store(nil)
		l.wt.Store(nil)
	}
	c.Out.pack.Store(nil)
	c.m32.Store(nil)
}

// gatesCellUpdate is the fused gate epilogue: activation and cell/hidden
// update in one pass over the hidden units, reading the combined
// pre-activations from z and never writing activated gates back to memory.
// Per element it performs exactly the operations of the classic two-loop
// form (σ/τ on the same pre-activation values, then f⊙c + i⊙g and o⊙τ(c))
// — there are no cross-element dependencies, so the fusion is bitwise-free.
func (l *LSTMLayer) gatesCellUpdate(z, h, c []float64) {
	H := l.HiddenSize
	// Gate blocks are laid out [i|f|o|g], so the three sigmoid gates are
	// one contiguous run and the candidate gate follows — each activates
	// in place through the vectorized kernels (bitwise identical to the
	// scalar Sigmoid/Tanh loops they replace).
	mathx.VSigmoid(z[:3*H], z[:3*H])
	mathx.VTanh(z[3*H:4*H], z[3*H:4*H])
	zi := z[gateI*H : gateI*H+H]
	zf := z[gateF*H : gateF*H+H]
	zo := z[gateO*H : gateO*H+H]
	zg := z[gateG*H : gateG*H+H]
	for j := 0; j < H; j++ {
		c[j] = zf[j]*c[j] + zi[j]*zg[j]
	}
	// The i-gate block is consumed, so it doubles as the tanh(c) scratch.
	mathx.VTanh(zi, c[:H])
	for j := 0; j < H; j++ {
		h[j] = zo[j] * zi[j]
	}
}

// stepInferOneHot is stepInfer for a one-hot input given as its active
// column indices (strictly ascending): the W·x product becomes a column
// gather over Wᵀ, the U·h product and bias fuse into one packed GEMV
// epilogue, and the gate epilogue is the fused single pass. Bitwise
// equal to stepInfer on the equivalent dense vector.
func (l *LSTMLayer) stepInferOneHot(z []float64, idx []int, h, c []float64) {
	mathx.OneHotGather(z, l.wtrans(), idx)
	l.inferPacks().u.Apply(z, h, l.B, mathx.GemvAddBias)
	l.gatesCellUpdate(z, h, c)
}

// StepLogitsOneHot is StepLogits with the first layer's input given as
// one-hot active-column indices instead of a dense vector — the streaming
// detector's per-package hot path. Later layers consume the dense hidden
// vectors as usual.
func (c *Classifier) StepLogitsOneHot(state *State, idx []int, scores []float64) {
	c.Layers[0].stepInferOneHot(state.z[0], idx, state.h[0], state.c[0])
	cur := state.h[0]
	for i := 1; i < len(c.Layers); i++ {
		l := c.Layers[i]
		l.stepInfer(state.z[i], cur, state.h[i], state.c[i])
		cur = state.h[i]
	}
	c.Out.forwardInfer(scores, cur)
}
