// Tests for the float32 inference snapshot: conversion must be
// deterministic and leave the f64 model untouched; within f32 the sparse,
// dense, sequential and batched paths must be bitwise-identical on every
// kernel tier (the same contract the f64 paths carry); and f32 logits may
// drift from the f64 reference only within a small bound — the property
// backing the verdict-parity gate in the conformance suite.
package nn

import (
	"math"
	"testing"

	"icsdetect/internal/mathx"
)

func denseOneHot32(dim int, idx []int) []float32 {
	x := make([]float32, dim)
	for _, j := range idx {
		x[j] = 1
	}
	return x
}

func requireBits32Equal(t *testing.T, what string, a, b []float32) {
	t.Helper()
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s[%d]: %x vs %x", what, i, a[i], b[i])
		}
	}
}

func requireStates32Equal(t *testing.T, a, b *State32) {
	t.Helper()
	for l := range a.h {
		requireBits32Equal(t, "h", a.h[l], b.h[l])
		requireBits32Equal(t, "c", a.c[l], b.c[l])
	}
}

// classifierBits flattens every parameter tensor's raw bits, for asserting
// the f64 model is untouched by conversion.
func classifierBits(c *Classifier) []uint64 {
	var bits []uint64
	for _, p := range c.Params() {
		for _, v := range p.Data {
			bits = append(bits, math.Float64bits(v))
		}
	}
	return bits
}

// TestInfer32ConversionDeterministic: converting the same model twice
// yields bitwise-identical f32 weights, and the f64 source is never
// mutated — so Framework fingerprints are unaffected by f32 inference.
func TestInfer32ConversionDeterministic(t *testing.T) {
	c, err := NewClassifier(91, []int{24, 16}, 23, 555)
	if err != nil {
		t.Fatal(err)
	}
	before := classifierBits(c)
	m1 := c.Infer32()
	if c.Infer32() != m1 {
		t.Fatal("Infer32 did not cache the snapshot")
	}
	c.InvalidateInference()
	m2 := c.Infer32()
	if m1 == m2 {
		t.Fatal("InvalidateInference did not drop the f32 snapshot")
	}
	for li := range m1.layers {
		a, b := m1.layers[li], m2.layers[li]
		requireBits32Equal(t, "W", a.w.Data, b.w.Data)
		requireBits32Equal(t, "U", a.u.Data, b.u.Data)
		requireBits32Equal(t, "B", a.b, b.b)
		requireBits32Equal(t, "Wt", a.wt.Data, b.wt.Data)
	}
	requireBits32Equal(t, "Out.W", m1.out.w.Data, m2.out.w.Data)
	requireBits32Equal(t, "Out.B", m1.out.b, m2.out.b)
	after := classifierBits(c)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("f64 parameter bits changed at flat index %d", i)
		}
	}
}

// TestInfer32OneHotMatchesDense: the f32 sparse fast path against the f32
// dense step, bitwise, per tier.
func TestInfer32OneHotMatchesDense(t *testing.T) {
	const steps = 60
	for _, shape := range onehotShapes {
		t.Run(shape.name, func(t *testing.T) {
			forEachKernelTier(t, func(t *testing.T) {
				c, err := NewClassifier(shape.in, shape.hidden, shape.classes, 1234)
				if err != nil {
					t.Fatal(err)
				}
				m := c.Infer32()
				rng := mathx.NewRNG(99)
				sparseState, denseState := m.NewState(), m.NewState()
				sparseScores := make([]float32, shape.classes)
				denseScores := make([]float32, shape.classes)
				for s := 0; s < steps; s++ {
					idx := randomOneHot(rng, shape.in)
					m.StepLogitsOneHot(sparseState, idx, sparseScores)
					m.StepLogits(denseState, denseOneHot32(shape.in, idx), denseScores)
					requireBits32Equal(t, "logits", sparseScores, denseScores)
					requireStates32Equal(t, sparseState, denseState)
				}
			})
		})
	}
}

// TestInfer32BatchMatchesSequential: the batched f32 paths against the
// sequential f32 step under ragged widths, bitwise, per tier.
func TestInfer32BatchMatchesSequential(t *testing.T) {
	const maxStreams = 9
	widths := []int{1, maxStreams, 4, 7, 2, 8, 3, maxStreams, 1, 5, 6, maxStreams}
	for _, shape := range onehotShapes {
		t.Run(shape.name, func(t *testing.T) {
			forEachKernelTier(t, func(t *testing.T) {
				c, err := NewClassifier(shape.in, shape.hidden, shape.classes, 4321)
				if err != nil {
					t.Fatal(err)
				}
				m := c.Infer32()
				rng := mathx.NewRNG(7)
				buf := m.NewBatchBuffer(maxStreams)
				denseBuf := m.NewBatchBuffer(maxStreams)
				sparse := make([]*State32, maxStreams)
				dense := make([]*State32, maxStreams)
				seq := make([]*State32, maxStreams)
				for i := range sparse {
					sparse[i], dense[i], seq[i] = m.NewState(), m.NewState(), m.NewState()
				}
				seqScores := make([]float32, shape.classes)
				for _, n := range widths {
					idxs := make([][]int, n)
					xs := make([][]float32, n)
					sparseScores := make([][]float32, n)
					denseScores := make([][]float32, n)
					for i := 0; i < n; i++ {
						idxs[i] = randomOneHot(rng, shape.in)
						xs[i] = denseOneHot32(shape.in, idxs[i])
						sparseScores[i] = make([]float32, shape.classes)
						denseScores[i] = make([]float32, shape.classes)
					}
					m.StepBatchLogitsOneHot(buf, sparse[:n], idxs, sparseScores)
					m.StepBatchLogits(denseBuf, dense[:n], xs, denseScores)
					for i := 0; i < n; i++ {
						m.StepLogitsOneHot(seq[i], idxs[i], seqScores)
						requireBits32Equal(t, "batch-vs-dense logits", sparseScores[i], denseScores[i])
						requireBits32Equal(t, "batch-vs-seq logits", sparseScores[i], seqScores)
						requireStates32Equal(t, sparse[i], dense[i])
						requireStates32Equal(t, sparse[i], seq[i])
					}
				}
			})
		})
	}
}

// TestInfer32DriftVsF64 bounds the f32-vs-f64 logit divergence over long
// recurrent runs: the property that makes verdict parity plausible rather
// than accidental. The bound is scale-relative (logits are O(1) here) and
// holds with an order of magnitude of headroom in practice.
func TestInfer32DriftVsF64(t *testing.T) {
	const steps = 120
	const tol = 1e-3
	for _, shape := range onehotShapes {
		t.Run(shape.name, func(t *testing.T) {
			c, err := NewClassifier(shape.in, shape.hidden, shape.classes, 2025)
			if err != nil {
				t.Fatal(err)
			}
			m := c.Infer32()
			rng := mathx.NewRNG(31)
			s64 := c.NewState()
			s32 := m.NewState()
			l64 := make([]float64, shape.classes)
			l32 := make([]float32, shape.classes)
			for s := 0; s < steps; s++ {
				idx := randomOneHot(rng, shape.in)
				c.StepLogitsOneHot(s64, idx, l64)
				m.StepLogitsOneHot(s32, idx, l32)
				scale := 1.0
				for _, v := range l64 {
					if a := math.Abs(v); a > scale {
						scale = a
					}
				}
				for j := range l64 {
					if d := math.Abs(float64(l32[j]) - l64[j]); d > tol*scale {
						t.Fatalf("step %d logit %d drift %g exceeds %g (f32=%g f64=%g)",
							s, j, d, tol*scale, l32[j], l64[j])
					}
				}
			}
		})
	}
}
