package nn

import (
	"math"
	"testing"

	"icsdetect/internal/mathx"
)

// reconNets builds one small instance of each reconstruction
// architecture over the stage family's window shape.
func reconNets(t, d int) map[string]ReconNet {
	return map[string]ReconNet{
		"ae":      NewAutoEncoder(t, d, 12, 3),
		"seq2seq": NewSeq2Seq(t, d, t/2, 12, 5),
		"cnn":     NewConvNet(t, d, 2, 10, 7),
	}
}

func randWindows(rng *mathx.RNG, n, t, d int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, t*d)
		for j := range xs[i] {
			xs[i][j] = rng.Range(-2, 2)
		}
	}
	return xs
}

// TestReconBatchMatchesSequential: the batched scorer must reproduce the
// sequential Score bit-for-bit per window, for every architecture, batch
// width and kernel tier — the property the engine's batched WindowStage
// dispatch rests on.
func TestReconBatchMatchesSequential(t *testing.T) {
	const T, D = 4, 17
	rng := mathx.NewRNG(99)
	for name, net := range reconNets(T, D) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{1, 2, 5, 16} {
				xs := randWindows(rng, n, T, D)
				forEachKernelTier(t, func(t *testing.T) {
					batch := net.NewBatch(n)
					got := make([]float64, n)
					batch.Score(got, xs)
					scratch := make([]float64, net.ScratchLen())
					for i := range xs {
						want := net.Score(xs[i], scratch)
						if math.Float64bits(got[i]) != math.Float64bits(want) {
							t.Fatalf("n=%d window %d: batch %v, sequential %v", n, i, got[i], want)
						}
					}
				})
			}
		})
	}
}

// TestReconBatchReuse: a batch scorer fed different windows across calls
// (including narrower late batches, the shard's ragged tail) must not
// leak state between calls.
func TestReconBatchReuse(t *testing.T) {
	const T, D = 4, 17
	rng := mathx.NewRNG(41)
	for name, net := range reconNets(T, D) {
		t.Run(name, func(t *testing.T) {
			batch := net.NewBatch(8)
			scratch := make([]float64, net.ScratchLen())
			for call := 0; call < 3; call++ {
				n := []int{8, 3, 5}[call]
				xs := randWindows(rng, n, T, D)
				got := make([]float64, n)
				batch.Score(got, xs)
				for i := range xs {
					want := net.Score(xs[i], scratch)
					if math.Float64bits(got[i]) != math.Float64bits(want) {
						t.Fatalf("call %d window %d: batch %v, sequential %v", call, i, got[i], want)
					}
				}
			}
		})
	}
}

// TestReconGradientsNumeric checks every architecture's analytic
// backward pass against central finite differences of the loss, on every
// parameter tensor. The loss surface is smooth except for the CNN's ReLU
// kink; the tolerance absorbs the usual finite-difference noise.
func TestReconGradientsNumeric(t *testing.T) {
	const T, D = 4, 5
	nets := map[string]ReconNet{
		"ae":      NewAutoEncoder(T, D, 6, 3),
		"seq2seq": NewSeq2Seq(T, D, 2, 6, 5),
		"cnn":     NewConvNet(T, D, 2, 6, 7),
	}
	rng := mathx.NewRNG(17)
	x := make([]float64, T*D)
	for i := range x {
		x[i] = rng.Range(-1, 1)
	}
	loss := func(net ReconNet, g reconGrads) float64 {
		g.zero()
		return net.forwardBackward(x, g)
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			g := net.newGrads()
			loss(net, g)
			analytic := g.slices()
			params := net.params()
			scratchG := net.newGrads()
			const eps = 1e-6
			for pi, p := range params {
				// Check a strided subset: full sweeps over every weight are
				// slow and add nothing once representatives pass.
				stride := len(p.Data)/7 + 1
				for j := 0; j < len(p.Data); j += stride {
					orig := p.Data[j]
					p.Data[j] = orig + eps
					lp := loss(net, scratchG)
					p.Data[j] = orig - eps
					lm := loss(net, scratchG)
					p.Data[j] = orig
					numeric := (lp - lm) / (2 * eps)
					got := analytic[pi][j]
					diff := math.Abs(got - numeric)
					scale := math.Max(1, math.Max(math.Abs(got), math.Abs(numeric)))
					if diff/scale > 1e-5 {
						t.Errorf("%s param %d[%d]: analytic %v, numeric %v", name, pi, j, got, numeric)
					}
				}
			}
		})
	}
}

// TestTrainReconLossDecreases: a few epochs of Adam on structured
// windows must cut the reconstruction loss well below its starting
// point, deterministically from the seed, for every architecture.
func TestTrainReconLossDecreases(t *testing.T) {
	const T, D = 4, 17
	rng := mathx.NewRNG(3)
	// Structured data: smooth per-feature ramps plus small noise, so
	// there is something to learn.
	samples := make([][]float64, 64)
	for i := range samples {
		s := make([]float64, T*D)
		phase := rng.Range(0, 1)
		for ts := 0; ts < T; ts++ {
			for f := 0; f < D; f++ {
				s[ts*D+f] = math.Sin(phase+float64(ts)*0.5+float64(f)*0.3) + rng.Range(-0.05, 0.05)
			}
		}
		samples[i] = s
	}
	for name, net := range reconNets(T, D) {
		t.Run(name, func(t *testing.T) {
			scratch := make([]float64, net.ScratchLen())
			var before float64
			for _, s := range samples {
				before += net.Score(s, scratch)
			}
			before /= float64(len(samples))
			final, err := TrainRecon(net, samples, ReconTrainConfig{Epochs: 40, BatchSize: 16, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			var after float64
			for _, s := range samples {
				after += net.Score(s, scratch)
			}
			after /= float64(len(samples))
			t.Logf("%s: mean score %.5f -> %.5f (train loss %.5f)", name, before, after, final)
			if !(after < before*0.5) {
				t.Errorf("%s: training did not reduce reconstruction error: %v -> %v", name, before, after)
			}
			if net.Validate() != nil {
				t.Errorf("%s: net invalid after training: %v", name, net.Validate())
			}
		})
	}
}

// TestTrainReconDeterministic: same seed, same data → bitwise-identical
// weights; the stage registry's fingerprinting depends on it.
func TestTrainReconDeterministic(t *testing.T) {
	const T, D = 4, 17
	rng := mathx.NewRNG(5)
	samples := randWindows(rng, 40, T, D)
	train := func() *AutoEncoder {
		net := NewAutoEncoder(T, D, 10, 11)
		if _, err := TrainRecon(net, samples, ReconTrainConfig{Epochs: 3, BatchSize: 8, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := train(), train()
	for i := range a.Enc.W.Data {
		if math.Float64bits(a.Enc.W.Data[i]) != math.Float64bits(b.Enc.W.Data[i]) {
			t.Fatalf("training not deterministic at Enc.W[%d]", i)
		}
	}
	for i := range a.Out.B {
		if math.Float64bits(a.Out.B[i]) != math.Float64bits(b.Out.B[i]) {
			t.Fatalf("training not deterministic at Out.B[%d]", i)
		}
	}
}
