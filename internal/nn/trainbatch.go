package nn

import (
	"math"

	"icsdetect/internal/mathx"
)

// batchTrainer is the scratch state of the batched gradient engine: a whole
// minibatch of truncated-BPTT windows advances lock-step, one matrix-matrix
// pass per layer per timestep, through both the forward and the backward
// sweep. All buffers are allocated once per Train call, so the steady-state
// training loop is allocation-free.
//
// The engine's contract is bitwise equivalence with the per-window
// reference (lossForwardBackward applied window by window): for the same
// windows in the same order it produces the identical GradBuffer and loss,
// bit for bit. Three structural decisions make that possible:
//
//   - Every matrix product runs through a kernel whose per-element
//     association equals the reference primitive's (MulRowsT ↔ MulVec for
//     the forward, MulRows ↔ MulVecT for the input gradients), and every
//     elementwise formula is written in exactly the reference expression
//     shape, so each scalar is the same sequence of rounded operations.
//
//   - Weight-gradient accumulation — the only place where batching would
//     naturally reorder a floating-point reduction across windows — is
//     deferred: the lock-step backward sweep only caches dz (and dLogits)
//     rows, and after the sweep AddOuterSeq replays each window's rank-1
//     updates in the reference order, window ascending, timestep
//     descending. Per-tensor chains are untouched; the GEMM still wins
//     because the gradient matrix streams once per window instead of once
//     per timestep.
//
//   - Per-window caches store time REVERSED: timestep t of a T-step window
//     lives at block k = T-1-t. The deferred accumulation therefore reads
//     every us/vs sequence as one contiguous ascending run — dz, inputs,
//     and (offset by one block) the h history that forms each layer's
//     recurrent inputs — with the extra block k = T holding the zero
//     initial state.
type batchTrainer struct {
	c     *Classifier
	grads *GradBuffer
	buf   *BatchBuffer // lock-step gate/logit scratch shared with inference

	maxB int

	gates [][][]float64 // [L][B] length T*4H, post-activation (i,f,o,g)
	cells [][][]float64 // [L][B] length (T+1)*H
	hs    [][][]float64 // [L][B] length (T+1)*H
	tanhC [][][]float64 // [L][B] length T*H
	dz    [][][]float64 // [L][B] length T*4H, backward gate gradients
	xbuf  [][]float64   // [B] length T*I, window inputs (reversed)
	probs [][]float64   // [B] length T*K, softmax rows at scored steps
	dlog  [][]float64   // [B] length T*K, dLogits rows in backward order
	htop  [][]float64   // [B] length T*Htop, matching top-layer h rows
	loss  []float64     // [B] per-window summed loss
	sc    []int         // [B] scored-step count, doubles as dlog cursor

	dh, dc [][][]float64 // [L][B] length H: BPTT carries
	hp     [][]float64   // second row-pointer list (buf.xs is the first)
	rows   [][]float64   // row-pointer list for the backward GEMMs
	dst    []float64     // contiguous GEMM output scratch, B*maxH
	act    []int         // active-window index scratch
	sact   []int         // scored-window index scratch
}

// newBatchTrainer sizes the engine for minibatches of up to maxB windows of
// up to maxT timesteps on classifier c.
func newBatchTrainer(c *Classifier, maxB, maxT int) *batchTrainer {
	if maxB < 1 {
		maxB = 1
	}
	L := len(c.Layers)
	I := c.InputSize()
	K := c.Out.OutputSize
	Htop := c.Layers[L-1].HiddenSize
	maxH := 0
	for _, l := range c.Layers {
		maxH = max(maxH, l.HiddenSize)
	}
	bt := &batchTrainer{
		c:     c,
		grads: c.NewGradBuffer(),
		buf:   c.NewBatchBuffer(maxB),
		maxB:  maxB,
		gates: make([][][]float64, L),
		cells: make([][][]float64, L),
		hs:    make([][][]float64, L),
		tanhC: make([][][]float64, L),
		dz:    make([][][]float64, L),
		dh:    make([][][]float64, L),
		dc:    make([][][]float64, L),
		xbuf:  make([][]float64, maxB),
		probs: make([][]float64, maxB),
		dlog:  make([][]float64, maxB),
		htop:  make([][]float64, maxB),
		loss:  make([]float64, maxB),
		sc:    make([]int, maxB),
		hp:    make([][]float64, maxB),
		rows:  make([][]float64, 0, maxB),
		dst:   make([]float64, maxB*maxH),
		act:   make([]int, 0, maxB),
		sact:  make([]int, 0, maxB),
	}
	for l, layer := range c.Layers {
		H := layer.HiddenSize
		G := numGates * H
		bt.gates[l] = make([][]float64, maxB)
		bt.cells[l] = make([][]float64, maxB)
		bt.hs[l] = make([][]float64, maxB)
		bt.tanhC[l] = make([][]float64, maxB)
		bt.dz[l] = make([][]float64, maxB)
		bt.dh[l] = make([][]float64, maxB)
		bt.dc[l] = make([][]float64, maxB)
		for w := 0; w < maxB; w++ {
			bt.gates[l][w] = make([]float64, maxT*G)
			bt.cells[l][w] = make([]float64, (maxT+1)*H)
			bt.hs[l][w] = make([]float64, (maxT+1)*H)
			bt.tanhC[l][w] = make([]float64, maxT*H)
			bt.dz[l][w] = make([]float64, maxT*G)
			bt.dh[l][w] = make([]float64, H)
			bt.dc[l][w] = make([]float64, H)
		}
	}
	for w := 0; w < maxB; w++ {
		bt.xbuf[w] = make([]float64, maxT*I)
		bt.probs[w] = make([]float64, maxT*K)
		bt.dlog[w] = make([]float64, maxT*K)
		bt.htop[w] = make([]float64, maxT*Htop)
	}
	return bt
}

// run computes one minibatch's gradients into bt.grads and returns the
// summed loss and scored-step count, bitwise identical to running
// lossForwardBackward over the windows in order into one buffer.
func (bt *batchTrainer) run(batch []Sequence) (float64, int) {
	c := bt.c
	I := c.InputSize()
	bt.grads.Zero()
	maxT := 0
	for w := range batch {
		T := len(batch[w].Inputs)
		maxT = max(maxT, T)
		xb := bt.xbuf[w]
		for t := 0; t < T; t++ {
			copy(xb[(T-1-t)*I:(T-t)*I], batch[w].Inputs[t])
		}
		bt.loss[w] = 0
		bt.sc[w] = 0
		for l, layer := range c.Layers {
			H := layer.HiddenSize
			mathx.Fill(bt.hs[l][w][T*H:(T+1)*H], 0)
			mathx.Fill(bt.cells[l][w][T*H:(T+1)*H], 0)
			mathx.Fill(bt.dh[l][w], 0)
			mathx.Fill(bt.dc[l][w], 0)
		}
	}
	bt.forward(batch, maxT)
	bt.backward(batch, maxT)
	bt.accumulate(batch)
	var loss float64
	var steps int
	for w := range batch {
		loss += bt.loss[w]
		steps += bt.sc[w]
	}
	return loss, steps
}

// forward runs the lock-step forward sweep, caching gates, cell states,
// tanh(c), hidden vectors, and the softmax rows of scored steps. Ragged
// batches are handled by shrinking the active set as shorter windows end.
func (bt *batchTrainer) forward(batch []Sequence, maxT int) {
	c := bt.c
	I := c.InputSize()
	K := c.Out.OutputSize
	for t := 0; t < maxT; t++ {
		act := bt.act[:0]
		for w := range batch {
			if len(batch[w].Inputs) > t {
				act = append(act, w)
			}
		}
		n := len(act)
		xs := bt.buf.xs[:n]
		for a, w := range act {
			T := len(batch[w].Inputs)
			xs[a] = bt.xbuf[w][(T-1-t)*I : (T-t)*I]
		}
		for l, layer := range c.Layers {
			H := layer.HiddenSize
			G := numGates * H
			z := bt.buf.z[l][:n*G]
			zu := bt.buf.zu[l][:n*G]
			// z = X·Wᵀ + H_prev·Uᵀ + B, combined in stepForward's exact
			// order (Wx, then +Uh, then +B) so the sums stay bitwise
			// identical to the per-window GEMV path.
			layer.W.MulRowsT(z, xs)
			hp := bt.hp[:n]
			for a, w := range act {
				T := len(batch[w].Inputs)
				hp[a] = bt.hs[l][w][(T-t)*H : (T-t+1)*H]
			}
			layer.U.MulRowsT(zu, hp)
			for a, w := range act {
				row := z[a*G : (a+1)*G]
				urow := zu[a*G : (a+1)*G]
				for j := range row {
					row[j] += urow[j]
					row[j] += layer.B[j]
				}
				T := len(batch[w].Inputs)
				k := T - 1 - t
				gr := bt.gates[l][w][k*G : (k+1)*G]
				for h := 0; h < H; h++ {
					gr[gateI*H+h] = mathx.Sigmoid(row[gateI*H+h])
					gr[gateF*H+h] = mathx.Sigmoid(row[gateF*H+h])
					gr[gateO*H+h] = mathx.Sigmoid(row[gateO*H+h])
					gr[gateG*H+h] = math.Tanh(row[gateG*H+h])
				}
				cPrev := bt.cells[l][w][(k+1)*H : (k+2)*H]
				cRow := bt.cells[l][w][k*H : (k+1)*H]
				tRow := bt.tanhC[l][w][k*H : (k+1)*H]
				hRow := bt.hs[l][w][k*H : (k+1)*H]
				for j := 0; j < H; j++ {
					cj := gr[gateF*H+j]*cPrev[j] + gr[gateI*H+j]*gr[gateG*H+j]
					cRow[j] = cj
					tRow[j] = math.Tanh(cj)
					hRow[j] = gr[gateO*H+j] * tRow[j]
				}
				xs[a] = hRow // the next layer reads this layer's fresh h
			}
		}
		// Batched dense head and loss on the scored subset.
		sact := bt.sact[:0]
		hps := bt.hp[:0]
		for a, w := range act {
			if batch[w].Targets[t] >= 0 {
				sact = append(sact, w)
				hps = append(hps, xs[a])
			}
		}
		if len(sact) == 0 {
			continue
		}
		logits := bt.buf.logits[:len(sact)*K]
		c.Out.W.MulRowsT(logits, hps)
		for a, w := range sact {
			row := logits[a*K : (a+1)*K]
			for j := range row {
				row[j] += c.Out.B[j]
			}
			T := len(batch[w].Inputs)
			k := T - 1 - t
			p := bt.probs[w][k*K : (k+1)*K]
			mathx.Softmax(p, row)
			bt.loss[w] += -math.Log(math.Max(p[batch[w].Targets[t]], 1e-12))
		}
	}
}

// backward runs the lock-step BPTT sweep. It computes and caches the dz and
// dLogits rows every weight gradient needs (accumulation itself is
// deferred to accumulate, which replays them in the reference order) and
// propagates the dh/dc carries with the batched input-gradient kernel.
func (bt *batchTrainer) backward(batch []Sequence, maxT int) {
	c := bt.c
	L := len(c.Layers)
	K := c.Out.OutputSize
	Htop := c.Layers[L-1].HiddenSize
	for t := maxT - 1; t >= 0; t-- {
		act := bt.act[:0]
		for w := range batch {
			if len(batch[w].Inputs) > t {
				act = append(act, w)
			}
		}
		// Dense backward on the scored subset: pack dLogits = p - onehot
		// and the matching top-layer h row, then dhOut = dLogits·W flows
		// into the top carry.
		sact := bt.sact[:0]
		dls := bt.rows[:0]
		for _, w := range act {
			tgt := batch[w].Targets[t]
			if tgt < 0 {
				continue
			}
			T := len(batch[w].Inputs)
			k := T - 1 - t
			cur := bt.sc[w]
			row := bt.dlog[w][cur*K : (cur+1)*K]
			copy(row, bt.probs[w][k*K:(k+1)*K])
			row[tgt] -= 1 // softmax cross-entropy gradient
			copy(bt.htop[w][cur*Htop:(cur+1)*Htop], bt.hs[L-1][w][k*Htop:(k+1)*Htop])
			bt.sc[w] = cur + 1
			sact = append(sact, w)
			dls = append(dls, row)
		}
		if len(sact) > 0 {
			dst := bt.dst[:len(sact)*Htop]
			c.Out.W.MulRows(dst, dls)
			for a, w := range sact {
				mathx.Axpy(bt.dh[L-1][w], 1, dst[a*Htop:(a+1)*Htop])
			}
		}
		for l := L - 1; l >= 0; l-- {
			layer := c.Layers[l]
			H := layer.HiddenSize
			G := numGates * H
			dzs := bt.rows[:0]
			for _, w := range act {
				T := len(batch[w].Inputs)
				k := T - 1 - t
				gr := bt.gates[l][w][k*G : (k+1)*G]
				tc := bt.tanhC[l][w][k*H : (k+1)*H]
				cPrev := bt.cells[l][w][(k+1)*H : (k+2)*H]
				dhw := bt.dh[l][w]
				dcw := bt.dc[l][w]
				dzr := bt.dz[l][w][k*G : (k+1)*G]
				// Elementwise gate gradients in stepBackward's exact
				// expression shapes; dcw is updated in place to the
				// carried ∂L/∂c_{t-1}.
				for j := 0; j < H; j++ {
					gi := gr[gateI*H+j]
					f := gr[gateF*H+j]
					o := gr[gateO*H+j]
					gg := gr[gateG*H+j]
					tcj := tc[j]

					do := dhw[j] * tcj
					dcj := dcw[j] + dhw[j]*o*(1-tcj*tcj)

					di := dcj * gg
					df := dcj * cPrev[j]
					dg := dcj * gi
					dcw[j] = dcj * f

					dzr[gateI*H+j] = di * gi * (1 - gi)
					dzr[gateF*H+j] = df * f * (1 - f)
					dzr[gateO*H+j] = do * o * (1 - o)
					dzr[gateG*H+j] = dg * (1 - gg*gg)
				}
				dzs = append(dzs, dzr)
			}
			// dh_{t-1} = dz·U overwrites the carry; dx = dz·W flows into
			// the layer below (the reference computes dx for layer 0 too
			// but discards it, so skipping it changes nothing).
			dst := bt.dst[:len(act)*H]
			layer.U.MulRows(dst, dzs)
			for a, w := range act {
				copy(bt.dh[l][w], dst[a*H:(a+1)*H])
			}
			if l > 0 {
				Hin := c.Layers[l-1].HiddenSize
				dst := bt.dst[:len(act)*Hin]
				layer.W.MulRows(dst, dzs)
				for a, w := range act {
					mathx.Axpy(bt.dh[l-1][w], 1, dst[a*Hin:(a+1)*Hin])
				}
			}
		}
	}
}

// accumulate replays every window's cached gradient rows into bt.grads with
// the chained outer-product kernel, window ascending and timestep
// descending — the reference accumulation order, so every per-element chain
// is bitwise identical to the sequential trainer's. Thanks to the reversed
// cache layout each us/vs pair is one contiguous run: dz rows pair with the
// reversed inputs (layer 0) or the previous layer's h history (deeper
// layers), and dU pairs dz with the same window's h history offset by one
// block, whose final block is the zero initial state.
func (bt *batchTrainer) accumulate(batch []Sequence) {
	c := bt.c
	L := len(c.Layers)
	I := c.InputSize()
	K := c.Out.OutputSize
	Htop := c.Layers[L-1].HiddenSize
	g := bt.grads
	for w := range batch {
		T := len(batch[w].Inputs)
		if ns := bt.sc[w]; ns > 0 {
			g.dense.dW.AddOuterSeq(bt.dlog[w][:ns*K], bt.htop[w][:ns*Htop], ns)
			for s := 0; s < ns; s++ {
				row := bt.dlog[w][s*K : (s+1)*K]
				for j, v := range row {
					g.dense.dB[j] += v
				}
			}
		}
		for l, layer := range c.Layers {
			H := layer.HiddenSize
			G := numGates * H
			lg := g.lstm[l]
			dz := bt.dz[l][w][:T*G]
			if l == 0 {
				lg.dW.AddOuterSeq(dz, bt.xbuf[w][:T*I], T)
			} else {
				Hin := c.Layers[l-1].HiddenSize
				lg.dW.AddOuterSeq(dz, bt.hs[l-1][w][:T*Hin], T)
			}
			lg.dU.AddOuterSeq(dz, bt.hs[l][w][H:(T+1)*H], T)
			for k := 0; k < T; k++ {
				row := dz[k*G : (k+1)*G]
				for j, v := range row {
					lg.dB[j] += v
				}
			}
		}
		g.Steps += bt.sc[w]
	}
}
