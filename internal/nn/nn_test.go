package nn

import (
	"bytes"
	"math"
	"testing"

	"icsdetect/internal/mathx"
)

// analyticLoss computes the summed cross-entropy loss of seq without
// touching gradients, used by the finite-difference check.
func analyticLoss(c *Classifier, seq *Sequence) float64 {
	// The gradient check perturbs weight tensors in place between calls,
	// so the cached inference layouts must be rebuilt from fresh values.
	c.InvalidateInference()
	state := c.NewState()
	probs := make([]float64, c.Classes())
	var loss float64
	for t := range seq.Inputs {
		c.Step(state, seq.Inputs[t], probs)
		if seq.Targets[t] >= 0 {
			loss += -math.Log(math.Max(probs[seq.Targets[t]], 1e-300))
		}
	}
	return loss
}

func randomSequence(rng *mathx.RNG, c *Classifier, T int) *Sequence {
	seq := &Sequence{Inputs: make([][]float64, T), Targets: make([]int, T)}
	for t := 0; t < T; t++ {
		x := make([]float64, c.InputSize())
		// One-hot-ish sparse inputs, like the detector's encoding.
		x[rng.Intn(len(x))] = 1
		if rng.Bernoulli(0.3) {
			x[rng.Intn(len(x))] = 1
		}
		seq.Inputs[t] = x
		seq.Targets[t] = rng.Intn(c.Classes())
	}
	return seq
}

// TestGradientCheck validates the full BPTT implementation (both LSTM
// layers, the dense head, and the softmax loss) against central finite
// differences on a small random network. This is the load-bearing
// correctness test for the entire neural substrate.
func TestGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(7)
	c, err := NewClassifier(6, []int{5, 4}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSequence(rng, c, 7)

	g := c.NewGradBuffer()
	if _, steps := c.lossForwardBackward(seq, g); steps != 7 {
		t.Fatalf("scored %d steps", steps)
	}

	params := c.Params()
	grads := g.Slices()
	const eps = 1e-5
	checked := 0
	for pi, p := range params {
		// Spot-check a handful of coordinates per tensor.
		stride := len(p.Data)/7 + 1
		for j := 0; j < len(p.Data); j += stride {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			up := analyticLoss(c, seq)
			p.Data[j] = orig - eps
			down := analyticLoss(c, seq)
			p.Data[j] = orig

			numeric := (up - down) / (2 * eps)
			analytic := grads[pi][j]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > 1e-5 {
				t.Errorf("%s[%d]: numeric %.8g vs analytic %.8g",
					p.Name, j, numeric, analytic)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

// TestTrainingLearnsDeterministicSequence: the classifier must drive the
// loss near zero on a perfectly predictable cyclic pattern, the degenerate
// version of the SCADA polling cycle.
func TestTrainingLearnsDeterministicSequence(t *testing.T) {
	const classes = 4
	c, err := NewClassifier(classes, []int{16}, classes, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0→1→2→3→0…: input one-hot of current, target = next.
	seq := Sequence{}
	for i := 0; i < 200; i++ {
		x := make([]float64, classes)
		x[i%classes] = 1
		seq.Inputs = append(seq.Inputs, x)
		seq.Targets = append(seq.Targets, (i+1)%classes)
	}
	loss, err := Train(c, []Sequence{seq}, TrainConfig{
		Epochs: 30, Window: 16, BatchSize: 4, LR: 5e-3, ClipNorm: 5, Seed: 1, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.05 {
		t.Errorf("final loss %.4f on deterministic sequence, want < 0.05", loss)
	}
	// Streaming prediction must now be right.
	state := c.NewState()
	probs := make([]float64, classes)
	correct := 0
	for i := 0; i < 40; i++ {
		x := make([]float64, classes)
		x[i%classes] = 1
		c.Step(state, x, probs)
		if mathx.ArgMax(probs) == (i+1)%classes {
			correct++
		}
	}
	if correct < 36 {
		t.Errorf("streaming accuracy %d/40 on learned cycle", correct)
	}
}

func TestTrainValidation(t *testing.T) {
	c, _ := NewClassifier(3, []int{4}, 2, 1)
	if _, err := Train(c, []Sequence{{
		Inputs:  [][]float64{{1, 0, 0}},
		Targets: []int{0, 1},
	}}, TrainConfig{}); err == nil {
		t.Error("mismatched inputs/targets accepted")
	}
	if _, err := Train(c, []Sequence{{
		Inputs:  [][]float64{{1, 0}},
		Targets: []int{0},
	}}, TrainConfig{}); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := Train(c, []Sequence{{
		Inputs:  [][]float64{{1, 0, 0}, {1, 0, 0}},
		Targets: []int{0, 5},
	}}, TrainConfig{}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := Train(c, nil, TrainConfig{}); err == nil {
		t.Error("no sequences accepted")
	}
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0, []int{4}, 2, 1); err == nil {
		t.Error("zero input size accepted")
	}
	if _, err := NewClassifier(3, nil, 2, 1); err == nil {
		t.Error("no layers accepted")
	}
	if _, err := NewClassifier(3, []int{0}, 2, 1); err == nil {
		t.Error("zero hidden accepted")
	}
	if _, err := NewClassifier(3, []int{4}, 0, 1); err == nil {
		t.Error("zero classes accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(5)
	c, err := NewClassifier(8, []int{6, 5}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical streaming behaviour.
	s1, s2 := c.NewState(), loaded.NewState()
	p1 := make([]float64, 4)
	p2 := make([]float64, 4)
	for i := 0; i < 20; i++ {
		x := make([]float64, 8)
		x[rng.Intn(8)] = 1
		c.Step(s1, x, p1)
		loaded.Step(s2, x, p2)
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("prediction diverged after load at step %d", i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestStateResetAndClone(t *testing.T) {
	c, _ := NewClassifier(3, []int{4}, 2, 1)
	s := c.NewState()
	probs := make([]float64, 2)
	x := []float64{1, 0, 0}
	c.Step(s, x, probs)
	first := append([]float64(nil), probs...)

	clone := s.Clone()
	c.Step(s, x, probs) // advance original; clone unaffected
	c.Step(clone, x, probs)
	second := append([]float64(nil), probs...)

	s.Reset()
	c.Step(s, x, probs)
	for i := range probs {
		if probs[i] != first[i] {
			t.Fatal("reset state does not reproduce first step")
		}
	}
	_ = second
}

func TestMakeWindows(t *testing.T) {
	seq := Sequence{
		Inputs:  make([][]float64, 70),
		Targets: make([]int, 70),
	}
	ws := MakeWindows([]Sequence{seq}, 32)
	// 70 = 32 + 32 + 6: three windows, none shorter than 2.
	if len(ws) != 3 {
		t.Fatalf("windows = %d", len(ws))
	}
	if len(ws[2].Inputs) != 6 {
		t.Errorf("remainder window length %d", len(ws[2].Inputs))
	}
	// A length-1 remainder is dropped.
	seq2 := Sequence{Inputs: make([][]float64, 33), Targets: make([]int, 33)}
	if ws := MakeWindows([]Sequence{seq2}, 32); len(ws) != 1 {
		t.Errorf("length-1 remainder not dropped: %d windows", len(ws))
	}
}

func TestMakeWindowsEdgeCases(t *testing.T) {
	mk := func(n int) Sequence {
		return Sequence{Inputs: make([][]float64, n), Targets: make([]int, n)}
	}
	// Exact multiples produce only full windows, no empty remainder.
	ws := MakeWindows([]Sequence{mk(64)}, 32)
	if len(ws) != 2 || len(ws[0].Inputs) != 32 || len(ws[1].Inputs) != 32 {
		t.Errorf("exact multiple: got %d windows", len(ws))
	}
	// Empty input and empty sequences yield no windows.
	if ws := MakeWindows(nil, 32); len(ws) != 0 {
		t.Errorf("nil sequences produced %d windows", len(ws))
	}
	if ws := MakeWindows([]Sequence{mk(0)}, 32); len(ws) != 0 {
		t.Errorf("empty sequence produced %d windows", len(ws))
	}
	// Sequences entirely shorter than 2 are dropped...
	if ws := MakeWindows([]Sequence{mk(1)}, 32); len(ws) != 0 {
		t.Errorf("length-1 sequence produced %d windows", len(ws))
	}
	// ...while a length-2 sequence is the smallest trainable window.
	if ws := MakeWindows([]Sequence{mk(2)}, 32); len(ws) != 1 || len(ws[0].Inputs) != 2 {
		t.Errorf("length-2 sequence: %d windows", len(ws))
	}
	// Window length 2 over an odd sequence: 5 = 2+2+1, last dropped.
	if ws := MakeWindows([]Sequence{mk(5)}, 2); len(ws) != 2 {
		t.Errorf("5 steps at window 2: %d windows, want 2", len(ws))
	}
	// Windows alias the parent sequence rather than copying it.
	parent := mk(4)
	for i := range parent.Inputs {
		parent.Inputs[i] = []float64{float64(i)}
	}
	ws = MakeWindows([]Sequence{parent}, 2)
	if &ws[1].Inputs[0][0] != &parent.Inputs[2][0] {
		t.Error("windows copied inputs instead of aliasing")
	}
}

// TestAdamStepDeterminism: identical parameter/gradient histories must
// produce bitwise-identical parameters — the optimizer-side half of the
// trainer equivalence invariant.
func TestAdamStepDeterminism(t *testing.T) {
	run := func() []float64 {
		opt := NewAdam(3e-3)
		params := []Param{{Name: "w", Data: make([]float64, 13)}}
		g := mathx.NewRNG(99)
		for iter := 0; iter < 50; iter++ {
			grad := make([]float64, 13)
			for i := range grad {
				grad[i] = g.NormScaled(0, 1)
			}
			if err := opt.Step(params, [][]float64{grad}); err != nil {
				t.Fatal(err)
			}
		}
		return params[0].Data
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Adam diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w_i - i)² with Adam.
	target := []float64{0, 1, 2, 3}
	params := []Param{{Name: "w", Data: make([]float64, 4)}}
	opt := NewAdam(0.1)
	for iter := 0; iter < 500; iter++ {
		grad := make([]float64, 4)
		for i := range grad {
			grad[i] = 2 * (params[0].Data[i] - target[i])
		}
		if err := opt.Step(params, [][]float64{grad}); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range params[0].Data {
		if math.Abs(w-target[i]) > 0.01 {
			t.Errorf("w[%d] = %v, want %v", i, w, target[i])
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	params := []Param{{Name: "w", Data: []float64{10}}}
	opt := NewSGD(0.05, 0.9)
	for iter := 0; iter < 300; iter++ {
		grad := []float64{2 * params[0].Data[0]}
		if err := opt.Step(params, [][]float64{grad}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(params[0].Data[0]) > 0.01 {
		t.Errorf("w = %v, want ~0", params[0].Data[0])
	}
}

func TestOptimizerShapeErrors(t *testing.T) {
	params := []Param{{Name: "w", Data: []float64{1, 2}}}
	if err := NewAdam(0.1).Step(params, [][]float64{{1}}); err == nil {
		t.Error("adam accepted mismatched grad shape")
	}
	if err := NewSGD(0.1, 0).Step(params, nil); err == nil {
		t.Error("sgd accepted missing grads")
	}
}

func TestGradBufferMergeAndClip(t *testing.T) {
	c, _ := NewClassifier(3, []int{4}, 2, 2)
	rng := mathx.NewRNG(3)
	seq := randomSequence(rng, c, 5)

	a := c.NewGradBuffer()
	b := c.NewGradBuffer()
	c.lossForwardBackward(seq, a)
	c.lossForwardBackward(seq, b)
	a.Merge(b)
	if a.Steps != 10 {
		t.Errorf("merged steps = %d", a.Steps)
	}
	norm := a.ClipAndScale(0.001)
	if norm <= 0 {
		t.Error("zero gradient norm on nonzero gradients")
	}
	var after float64
	for _, s := range a.Slices() {
		for _, v := range s {
			after += v * v
		}
	}
	if math.Sqrt(after) > 0.001*1.0001 {
		t.Errorf("clip failed: post-clip norm %v", math.Sqrt(after))
	}
}

func TestNumParams(t *testing.T) {
	c, _ := NewClassifier(10, []int{8}, 5, 1)
	// LSTM: 4*8*10 + 4*8*8 + 4*8 = 320+256+32 = 608; dense: 5*8+5 = 45.
	if got := c.NumParams(); got != 653 {
		t.Errorf("NumParams = %d, want 653", got)
	}
}
