package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"icsdetect/internal/dataset"
)

func TestConfusionMath(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 5 TN, 1 FN.
	for i := 0; i < 3; i++ {
		c.Add(true, true)
	}
	c.Add(true, false)
	for i := 0; i < 5; i++ {
		c.Add(false, false)
	}
	c.Add(false, true)

	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	if p := c.Precision(); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-0.75) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if a := c.Accuracy(); math.Abs(a-0.8) > 1e-12 {
		t.Errorf("accuracy = %v", a)
	}
	if f := c.F1(); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("f1 = %v", f)
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Error("empty confusion must yield zeros, not NaN")
	}
}

// TestConfusionEdgeCases: every zero-denominator corner of the four metrics
// must return a finite value (0), never NaN or Inf — replay summaries over
// single-class traces (all-normal or all-attack) hit all of them.
func TestConfusionEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name               string
		c                  Confusion
		prec, rec, acc, f1 float64
	}{
		{name: "empty"},
		{name: "all-TP", c: Confusion{TP: 7}, prec: 1, rec: 1, acc: 1, f1: 1},
		{name: "all-TN", c: Confusion{TN: 9}, acc: 1},
		{name: "all-FP", c: Confusion{FP: 4}},
		{name: "all-FN", c: Confusion{FN: 3}},
		{name: "no-predicted-positives", c: Confusion{TN: 5, FN: 2}, acc: 5.0 / 7},
		{name: "no-actual-positives", c: Confusion{TN: 5, FP: 2}, acc: 5.0 / 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(&tc.c)
			want := Summary{Precision: tc.prec, Recall: tc.rec, Accuracy: tc.acc, F1: tc.f1}
			if got != want {
				t.Errorf("summary = %+v, want %+v", got, want)
			}
			for name, v := range map[string]float64{
				"precision": got.Precision, "recall": got.Recall,
				"accuracy": got.Accuracy, "f1": got.F1,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
		})
	}
}

func TestPerAttackUnseenType(t *testing.T) {
	p := NewPerAttack()
	p.Add(dataset.Normal, true) // ignored
	if r := p.Ratio(dataset.DOS); r != 0 || math.IsNaN(r) {
		t.Errorf("ratio of unseen type = %v, want 0", r)
	}
	if len(p.Total) != 0 {
		t.Error("normal packages must not be counted")
	}
}

func TestTopKCurveEmptyRanks(t *testing.T) {
	curve := NewTopKCurve(nil, 5)
	if len(curve.Err) != 5 {
		t.Fatalf("curve length = %d", len(curve.Err))
	}
	for k, e := range curve.Err {
		if e != 0 || math.IsNaN(e) {
			t.Errorf("err[%d] = %v on empty ranks", k, e)
		}
	}
}

func TestDetectionLatency(t *testing.T) {
	l := NewDetectionLatency()
	// Unrecorded type: zero rate and latency, no NaN.
	if r := l.DetectionRate(dataset.NMRI); r != 0 || math.IsNaN(r) {
		t.Errorf("rate of unseen type = %v", r)
	}
	if m := l.MeanLatency(dataset.NMRI); m != 0 || math.IsNaN(m) {
		t.Errorf("latency of unseen type = %v", m)
	}

	l.AddEpisode(dataset.Normal, true, 1) // ignored
	l.AddEpisode(dataset.DOS, true, 2.0)
	l.AddEpisode(dataset.DOS, true, 4.0)
	l.AddEpisode(dataset.DOS, false, 99) // undetected: latency ignored
	l.AddEpisode(dataset.CMRI, true, -1) // clamped to 0

	if l.Episodes[dataset.DOS] != 3 || l.Detected[dataset.DOS] != 2 {
		t.Errorf("DoS episodes=%d detected=%d", l.Episodes[dataset.DOS], l.Detected[dataset.DOS])
	}
	if r := l.DetectionRate(dataset.DOS); math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("DoS rate = %v", r)
	}
	if m := l.MeanLatency(dataset.DOS); math.Abs(m-3.0) > 1e-12 {
		t.Errorf("DoS mean latency = %v, want 3", m)
	}
	if l.MaxSeconds[dataset.DOS] != 4.0 {
		t.Errorf("DoS max latency = %v, want 4", l.MaxSeconds[dataset.DOS])
	}
	if m := l.MeanLatency(dataset.CMRI); m != 0 {
		t.Errorf("clamped latency = %v, want 0", m)
	}
	if l.Episodes[dataset.Normal] != 0 {
		t.Error("normal episodes must be ignored")
	}
}

// TestF1IsHarmonicMean: F1 lies between min and max of P and R and equals
// them when they coincide.
func TestF1IsHarmonicMean(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		if p+r == 0 {
			return f1 == 0
		}
		want := 2 * p * r / (p + r)
		return math.Abs(f1-want) < 1e-12 && f1 <= math.Max(p, r)+1e-12 && f1 >= math.Min(p, r)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPerAttack(t *testing.T) {
	p := NewPerAttack()
	p.Add(dataset.DOS, true)
	p.Add(dataset.DOS, false)
	p.Add(dataset.Recon, true)
	p.Add(dataset.Normal, true) // ignored
	if r := p.Ratio(dataset.DOS); r != 0.5 {
		t.Errorf("DoS ratio = %v", r)
	}
	if r := p.Ratio(dataset.Recon); r != 1 {
		t.Errorf("Recon ratio = %v", r)
	}
	if r := p.Ratio(dataset.MFCI); r != 0 {
		t.Errorf("unseen attack ratio = %v", r)
	}
	if p.Total[dataset.Normal] != 0 {
		t.Error("normal packages counted")
	}
}

func TestTopKCurve(t *testing.T) {
	// ranks: 0,0,1,3,10 over maxK=4.
	curve := NewTopKCurve([]int{0, 0, 1, 3, 10}, 4)
	want := []float64{3.0 / 5, 2.0 / 5, 2.0 / 5, 1.0 / 5}
	for k := 1; k <= 4; k++ {
		if math.Abs(curve.Err[k-1]-want[k-1]) > 1e-12 {
			t.Errorf("err_%d = %v, want %v", k, curve.Err[k-1], want[k-1])
		}
	}
}

func TestTopKCurveMonotone(t *testing.T) {
	f := func(ranks []uint8) bool {
		ints := make([]int, len(ranks))
		for i, r := range ranks {
			ints[i] = int(r) % 20
		}
		curve := NewTopKCurve(ints, 10)
		for k := 1; k < len(curve.Err); k++ {
			if curve.Err[k] > curve.Err[k-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinKBelow(t *testing.T) {
	curve := &TopKCurve{Err: []float64{0.2, 0.1, 0.04, 0.01}}
	k, err := curve.MinKBelow(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("k = %d, want 3", k)
	}
	// No k qualifies.
	k, err = curve.MinKBelow(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if k != 5 {
		t.Errorf("k = %d, want len+1 = 5", k)
	}
	if _, err := curve.MinKBelow(0); err == nil {
		t.Error("theta = 0 accepted")
	}
}

func TestEmptyTopKCurve(t *testing.T) {
	curve := NewTopKCurve(nil, 5)
	for _, e := range curve.Err {
		if e != 0 {
			t.Error("empty ranks should give zero error")
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Precision: 0.94, Recall: 0.78, Accuracy: 0.92, F1: 0.85}
	if got := s.String(); got == "" {
		t.Error("empty summary string")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	if b.String() != "" || b.Share("x") != 0 {
		t.Fatalf("empty breakdown misbehaves: %q %v", b.String(), b.Share("x"))
	}
	b.Add("bloom", 1)
	b.Add("lstm", 3)
	b.Add("bloom", 1)
	if got := b.Labels(); len(got) != 2 || got[0] != "bloom" || got[1] != "lstm" {
		t.Fatalf("labels %v, want first-seen order [bloom lstm]", got)
	}
	if b.Total() != 5 || b.Value("bloom") != 2 {
		t.Fatalf("total %v value %v", b.Total(), b.Value("bloom"))
	}
	if b.Share("bloom") != 0.4 {
		t.Fatalf("share %v, want 0.4", b.Share("bloom"))
	}
	if got := b.String(); got != "bloom=40.0% lstm=60.0%" {
		t.Fatalf("String() = %q", got)
	}
}
