package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"icsdetect/internal/dataset"
)

func TestConfusionMath(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 5 TN, 1 FN.
	for i := 0; i < 3; i++ {
		c.Add(true, true)
	}
	c.Add(true, false)
	for i := 0; i < 5; i++ {
		c.Add(false, false)
	}
	c.Add(false, true)

	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	if p := c.Precision(); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-0.75) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if a := c.Accuracy(); math.Abs(a-0.8) > 1e-12 {
		t.Errorf("accuracy = %v", a)
	}
	if f := c.F1(); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("f1 = %v", f)
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Error("empty confusion must yield zeros, not NaN")
	}
}

// TestF1IsHarmonicMean: F1 lies between min and max of P and R and equals
// them when they coincide.
func TestF1IsHarmonicMean(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		if p+r == 0 {
			return f1 == 0
		}
		want := 2 * p * r / (p + r)
		return math.Abs(f1-want) < 1e-12 && f1 <= math.Max(p, r)+1e-12 && f1 >= math.Min(p, r)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPerAttack(t *testing.T) {
	p := NewPerAttack()
	p.Add(dataset.DOS, true)
	p.Add(dataset.DOS, false)
	p.Add(dataset.Recon, true)
	p.Add(dataset.Normal, true) // ignored
	if r := p.Ratio(dataset.DOS); r != 0.5 {
		t.Errorf("DoS ratio = %v", r)
	}
	if r := p.Ratio(dataset.Recon); r != 1 {
		t.Errorf("Recon ratio = %v", r)
	}
	if r := p.Ratio(dataset.MFCI); r != 0 {
		t.Errorf("unseen attack ratio = %v", r)
	}
	if p.Total[dataset.Normal] != 0 {
		t.Error("normal packages counted")
	}
}

func TestTopKCurve(t *testing.T) {
	// ranks: 0,0,1,3,10 over maxK=4.
	curve := NewTopKCurve([]int{0, 0, 1, 3, 10}, 4)
	want := []float64{3.0 / 5, 2.0 / 5, 2.0 / 5, 1.0 / 5}
	for k := 1; k <= 4; k++ {
		if math.Abs(curve.Err[k-1]-want[k-1]) > 1e-12 {
			t.Errorf("err_%d = %v, want %v", k, curve.Err[k-1], want[k-1])
		}
	}
}

func TestTopKCurveMonotone(t *testing.T) {
	f := func(ranks []uint8) bool {
		ints := make([]int, len(ranks))
		for i, r := range ranks {
			ints[i] = int(r) % 20
		}
		curve := NewTopKCurve(ints, 10)
		for k := 1; k < len(curve.Err); k++ {
			if curve.Err[k] > curve.Err[k-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinKBelow(t *testing.T) {
	curve := &TopKCurve{Err: []float64{0.2, 0.1, 0.04, 0.01}}
	k, err := curve.MinKBelow(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("k = %d, want 3", k)
	}
	// No k qualifies.
	k, err = curve.MinKBelow(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if k != 5 {
		t.Errorf("k = %d, want len+1 = 5", k)
	}
	if _, err := curve.MinKBelow(0); err == nil {
		t.Error("theta = 0 accepted")
	}
}

func TestEmptyTopKCurve(t *testing.T) {
	curve := NewTopKCurve(nil, 5)
	for _, e := range curve.Err {
		if e != 0 {
			t.Error("empty ranks should give zero error")
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Precision: 0.94, Recall: 0.78, Accuracy: 0.92, F1: 0.85}
	if got := s.String(); got == "" {
		t.Error("empty summary string")
	}
}
