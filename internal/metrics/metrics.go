// Package metrics implements the evaluation measures of the paper
// (§VIII-B): precision, recall, accuracy and F1 over a binary confusion
// matrix, per-attack-type detected ratios (Table V), and top-k error curves
// (Fig. 6).
package metrics

import (
	"fmt"
	"strings"

	"icsdetect/internal/dataset"
)

// Confusion is a binary anomaly-detection confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add records one classification: predicted anomaly vs actual anomaly.
func (c *Confusion) Add(predictedAnomaly, actualAnomaly bool) {
	switch {
	case predictedAnomaly && actualAnomaly:
		c.TP++
	case predictedAnomaly && !actualAnomaly:
		c.FP++
	case !predictedAnomaly && actualAnomaly:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded classifications.
func (c *Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Precision returns TP/(TP+FP), the probability a detected anomaly is real.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), the fraction of anomalies identified.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy returns (TP+TN)/total.
func (c *Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Summary bundles the four reported metrics.
type Summary struct {
	Precision, Recall, Accuracy, F1 float64
}

// Summarize extracts the four metrics from a confusion matrix.
func Summarize(c *Confusion) Summary {
	return Summary{
		Precision: c.Precision(),
		Recall:    c.Recall(),
		Accuracy:  c.Accuracy(),
		F1:        c.F1(),
	}
}

// String formats the summary like the paper's tables.
func (s Summary) String() string {
	return fmt.Sprintf("precision=%.2f recall=%.2f accuracy=%.2f f1=%.2f",
		s.Precision, s.Recall, s.Accuracy, s.F1)
}

// PerAttack accumulates the detected ratio (recall) per attack type
// (Table V).
type PerAttack struct {
	Detected map[dataset.AttackType]int
	Total    map[dataset.AttackType]int
}

// NewPerAttack allocates the accumulator.
func NewPerAttack() *PerAttack {
	return &PerAttack{
		Detected: make(map[dataset.AttackType]int),
		Total:    make(map[dataset.AttackType]int),
	}
}

// Add records one attack package and whether it was detected. Normal
// packages are ignored.
func (p *PerAttack) Add(label dataset.AttackType, detected bool) {
	if label == dataset.Normal {
		return
	}
	p.Total[label]++
	if detected {
		p.Detected[label]++
	}
}

// Ratio returns the detected ratio for one attack type (0 when unseen).
func (p *PerAttack) Ratio(label dataset.AttackType) float64 {
	if p.Total[label] == 0 {
		return 0
	}
	return float64(p.Detected[label]) / float64(p.Total[label])
}

// DetectionLatency accumulates per-attack-type detection latency over
// attack episodes: an episode is one contiguous run of packages carrying
// the same attack label, and its latency is the time from the episode's
// first package to the first package of the episode the detector flagged.
// Undetected episodes contribute to the episode count but not to the
// latency moments, so MeanLatency answers "when we catch this attack, how
// fast" and DetectionRate answers "how often do we catch it at all" — the
// replay harness reports both side by side.
type DetectionLatency struct {
	Episodes map[dataset.AttackType]int
	Detected map[dataset.AttackType]int
	// TotalSeconds and MaxSeconds aggregate the latency of detected
	// episodes only.
	TotalSeconds map[dataset.AttackType]float64
	MaxSeconds   map[dataset.AttackType]float64
}

// NewDetectionLatency allocates the accumulator.
func NewDetectionLatency() *DetectionLatency {
	return &DetectionLatency{
		Episodes:     make(map[dataset.AttackType]int),
		Detected:     make(map[dataset.AttackType]int),
		TotalSeconds: make(map[dataset.AttackType]float64),
		MaxSeconds:   make(map[dataset.AttackType]float64),
	}
}

// AddEpisode records one completed attack episode: whether it was detected
// and, if so, the detection latency in seconds (ignored otherwise; a
// negative latency is clamped to zero). Normal "episodes" are ignored.
func (l *DetectionLatency) AddEpisode(label dataset.AttackType, detected bool, latencySeconds float64) {
	if label == dataset.Normal {
		return
	}
	l.Episodes[label]++
	if !detected {
		return
	}
	l.Detected[label]++
	if latencySeconds < 0 {
		latencySeconds = 0
	}
	l.TotalSeconds[label] += latencySeconds
	if latencySeconds > l.MaxSeconds[label] {
		l.MaxSeconds[label] = latencySeconds
	}
}

// DetectionRate returns the fraction of episodes of the given type that
// were detected (0 when none were recorded).
func (l *DetectionLatency) DetectionRate(label dataset.AttackType) float64 {
	if l.Episodes[label] == 0 {
		return 0
	}
	return float64(l.Detected[label]) / float64(l.Episodes[label])
}

// MeanLatency returns the mean detection latency in seconds over the
// detected episodes of the given type (0 when none were detected).
func (l *DetectionLatency) MeanLatency(label dataset.AttackType) float64 {
	if l.Detected[label] == 0 {
		return 0
	}
	return l.TotalSeconds[label] / float64(l.Detected[label])
}

// TopKCurve is the top-k error as a function of k (Fig. 6): Err[k-1] is the
// fraction of predictions whose true class was outside the k most probable
// classes.
type TopKCurve struct {
	Err []float64
}

// NewTopKCurve builds a curve from per-prediction ranks: rank[i] is the
// 0-based position of the true class in the sorted prediction (or >= maxK
// if beyond). maxK bounds the curve length.
func NewTopKCurve(ranks []int, maxK int) *TopKCurve {
	curve := &TopKCurve{Err: make([]float64, maxK)}
	if len(ranks) == 0 {
		return curve
	}
	for k := 1; k <= maxK; k++ {
		misses := 0
		for _, r := range ranks {
			if r >= k {
				misses++
			}
		}
		curve.Err[k-1] = float64(misses) / float64(len(ranks))
	}
	return curve
}

// MinKBelow returns the smallest k with Err[k-1] < theta, implementing the
// paper's k-selection rule argmin_k errk < θ. It returns len(Err)+1 when no
// k qualifies, and an error for a non-positive theta.
func (c *TopKCurve) MinKBelow(theta float64) (int, error) {
	if theta <= 0 {
		return 0, fmt.Errorf("metrics: theta must be positive, got %g", theta)
	}
	for k := 1; k <= len(c.Err); k++ {
		if c.Err[k-1] < theta {
			return k, nil
		}
	}
	return len(c.Err) + 1, nil
}

// Breakdown accumulates labeled quantities in first-seen order and reports
// each label's share of the total — the shape of "per-level time share" and
// "detections per level" reports, where map iteration order would make the
// output non-deterministic.
type Breakdown struct {
	labels []string
	values map[string]float64
	total  float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{values: make(map[string]float64)}
}

// Add accumulates v under label.
func (b *Breakdown) Add(label string, v float64) {
	if _, seen := b.values[label]; !seen {
		b.labels = append(b.labels, label)
	}
	b.values[label] += v
	b.total += v
}

// Labels returns the labels in first-seen order.
func (b *Breakdown) Labels() []string { return b.labels }

// Value returns the accumulated quantity of label.
func (b *Breakdown) Value(label string) float64 { return b.values[label] }

// Total returns the sum over all labels.
func (b *Breakdown) Total() float64 { return b.total }

// Share returns label's fraction of the total (0 when the total is 0).
func (b *Breakdown) Share(label string) float64 {
	if b.total == 0 {
		return 0
	}
	return b.values[label] / b.total
}

// String renders "label=share%" pairs in first-seen order.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, l := range b.labels {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%.1f%%", l, 100*b.Share(l))
	}
	return sb.String()
}
