package arff

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"icsdetect/internal/mathx"
)

const sample = `% gas pipeline excerpt
@relation gas_pipeline

@attribute address numeric
@attribute 'control scheme' {pump,solenoid}
@attribute comment string

@data
4,pump,'hello world'
7,solenoid,plain
?,pump,?
`

func TestReadBasics(t *testing.T) {
	rel, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Name != "gas_pipeline" {
		t.Errorf("relation name = %q", rel.Name)
	}
	if len(rel.Attributes) != 3 {
		t.Fatalf("attributes = %d", len(rel.Attributes))
	}
	if rel.Attributes[1].Name != "control scheme" || rel.Attributes[1].Type != Nominal {
		t.Errorf("attribute 1 = %+v", rel.Attributes[1])
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	if v, ok := rel.Rows[0][0].(float64); !ok || v != 4 {
		t.Errorf("row 0 col 0 = %v", rel.Rows[0][0])
	}
	if rel.Rows[0][2] != "hello world" {
		t.Errorf("quoted string = %v", rel.Rows[0][2])
	}
	if rel.Rows[2][0] != nil || rel.Rows[2][2] != nil {
		t.Error("missing values not nil")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "@bogus x\n@data\n",
		"bad nominal":       "@relation r\n@attribute a {x,y}\n@data\nz\n",
		"bad numeric":       "@relation r\n@attribute a numeric\n@data\nnotanumber\n",
		"wrong columns":     "@relation r\n@attribute a numeric\n@data\n1,2\n",
		"no header":         "just text that is not arff",
		"bad type":          "@relation r\n@attribute a funky\n@data\n",
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestNumericColumn(t *testing.T) {
	rel, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	col, err := rel.NumericColumn("address")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 3 || col[0] != 4 || col[1] != 7 || col[2] != 0 {
		t.Errorf("column = %v", col)
	}
	if _, err := rel.NumericColumn("comment"); err == nil {
		t.Error("string column accepted as numeric")
	}
	if _, err := rel.NumericColumn("nope"); err == nil {
		t.Error("missing column accepted")
	}
}

// randomRelation builds an arbitrary valid relation for the round-trip
// property test.
func randomRelation(rng *mathx.RNG) *Relation {
	rel := &Relation{Name: "rel_" + string(rune('a'+rng.Intn(26)))}
	nAttr := 1 + rng.Intn(5)
	for i := 0; i < nAttr; i++ {
		switch rng.Intn(3) {
		case 0:
			rel.Attributes = append(rel.Attributes, Attribute{
				Name: attrName(rng, i), Type: Numeric})
		case 1:
			vals := []string{"alpha", "beta beta", "gamma,delta"}
			rel.Attributes = append(rel.Attributes, Attribute{
				Name: attrName(rng, i), Type: Nominal, Values: vals[:1+rng.Intn(3)]})
		default:
			rel.Attributes = append(rel.Attributes, Attribute{
				Name: attrName(rng, i), Type: String})
		}
	}
	nRows := rng.Intn(20)
	for r := 0; r < nRows; r++ {
		row := make([]any, nAttr)
		for i, a := range rel.Attributes {
			if rng.Bernoulli(0.1) {
				row[i] = nil
				continue
			}
			switch a.Type {
			case Numeric:
				row[i] = math.Round(rng.NormScaled(0, 100)*1000) / 1000
			case Nominal:
				row[i] = a.Values[rng.Intn(len(a.Values))]
			default:
				row[i] = "s" + string(rune('a'+rng.Intn(26)))
			}
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

func attrName(rng *mathx.RNG, i int) string {
	names := []string{"plain", "with space", "comma,name", "tick'name"}
	return names[rng.Intn(len(names))] + string(rune('0'+i))
}

// TestWriteReadRoundTrip: write ∘ read = id for arbitrary relations, the
// invariant the dataset layer depends on.
func TestWriteReadRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(11)
	f := func() bool {
		rel := randomRelation(rng)
		var buf bytes.Buffer
		if err := Write(&buf, rel); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			t.Logf("read back: %v\n%s", err, buf.String())
			return false
		}
		if back.Name != rel.Name || len(back.Attributes) != len(rel.Attributes) ||
			len(back.Rows) != len(rel.Rows) {
			return false
		}
		for i := range rel.Rows {
			for j := range rel.Rows[i] {
				a, b := rel.Rows[i][j], back.Rows[i][j]
				switch av := a.(type) {
				case nil:
					if b != nil {
						return false
					}
				case float64:
					bv, ok := b.(float64)
					if !ok || av != bv {
						return false
					}
				case string:
					if av != b {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLargeLineHandling(t *testing.T) {
	var b strings.Builder
	b.WriteString("@relation big\n@attribute s string\n@data\n")
	b.WriteString(strings.Repeat("x", 200000))
	b.WriteString("\n")
	rel, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 || len(rel.Rows[0][0].(string)) != 200000 {
		t.Error("long line mangled")
	}
}
