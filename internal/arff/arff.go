// Package arff reads and writes the Attribute-Relation File Format used by
// the Morris gas-pipeline dataset (paper §VII, Table I). It supports numeric
// and nominal attributes, quoted values, comments, and missing values ("?"),
// which covers everything the ICS datasets use.
package arff

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// AttrType enumerates the supported attribute kinds.
type AttrType int

// Supported attribute kinds.
const (
	Numeric AttrType = iota + 1
	Nominal
	String
)

// Attribute describes one column of a relation.
type Attribute struct {
	Name   string
	Type   AttrType
	Values []string // nominal domain, in declaration order
}

// Relation is a fully loaded ARFF relation: header plus data rows. Numeric
// cells are float64; nominal and string cells are string; missing cells are
// nil.
type Relation struct {
	Name       string
	Attributes []Attribute
	Rows       [][]any
}

// AttrIndex returns the index of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attributes {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// NumericColumn extracts the named numeric column; missing values become 0.
func (r *Relation) NumericColumn(name string) ([]float64, error) {
	idx := r.AttrIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("arff: no attribute %q", name)
	}
	if r.Attributes[idx].Type != Numeric {
		return nil, fmt.Errorf("arff: attribute %q is not numeric", name)
	}
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		if v, ok := row[idx].(float64); ok {
			out[i] = v
		}
	}
	return out, nil
}

// ParseError reports a malformed line with its 1-based line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("arff: line %d: %s", e.Line, e.Msg)
}

// Read parses an ARFF document.
func Read(r io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	rel := &Relation{}
	inData := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				rel.Name = unquote(strings.TrimSpace(line[len("@relation"):]))
			case strings.HasPrefix(lower, "@attribute"):
				attr, err := parseAttribute(line[len("@attribute"):])
				if err != nil {
					return nil, &ParseError{Line: lineNo, Msg: err.Error()}
				}
				rel.Attributes = append(rel.Attributes, attr)
			case strings.HasPrefix(lower, "@data"):
				inData = true
			default:
				return nil, &ParseError{Line: lineNo, Msg: "unknown directive: " + line}
			}
			continue
		}
		row, err := parseRow(line, rel.Attributes)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		rel.Rows = append(rel.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("arff: read: %w", err)
	}
	if rel.Name == "" && len(rel.Attributes) == 0 {
		return nil, &ParseError{Line: lineNo, Msg: "no @relation or @attribute found"}
	}
	return rel, nil
}

func parseAttribute(rest string) (Attribute, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return Attribute{}, fmt.Errorf("empty attribute declaration")
	}
	var name string
	if rest[0] == '\'' || rest[0] == '"' {
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return Attribute{}, fmt.Errorf("unterminated quoted attribute name")
		}
		name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[2+end:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return Attribute{}, fmt.Errorf("attribute %q has no type", rest)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	lower := strings.ToLower(rest)
	switch {
	case lower == "numeric" || lower == "real" || lower == "integer":
		return Attribute{Name: name, Type: Numeric}, nil
	case lower == "string":
		return Attribute{Name: name, Type: String}, nil
	case strings.HasPrefix(rest, "{") && strings.HasSuffix(rest, "}"):
		inner := rest[1 : len(rest)-1]
		parts := splitCSV(inner)
		vals := make([]string, 0, len(parts))
		for _, p := range parts {
			vals = append(vals, unquote(strings.TrimSpace(p)))
		}
		return Attribute{Name: name, Type: Nominal, Values: vals}, nil
	default:
		return Attribute{}, fmt.Errorf("attribute %q has unsupported type %q", name, rest)
	}
}

func parseRow(line string, attrs []Attribute) ([]any, error) {
	parts := splitCSV(line)
	if len(parts) != len(attrs) {
		return nil, fmt.Errorf("row has %d values, want %d", len(parts), len(attrs))
	}
	row := make([]any, len(parts))
	for i, raw := range parts {
		raw = unquote(strings.TrimSpace(raw))
		if raw == "?" {
			row[i] = nil
			continue
		}
		switch attrs[i].Type {
		case Numeric:
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: bad numeric %q", attrs[i].Name, raw)
			}
			row[i] = v
		case Nominal:
			if !contains(attrs[i].Values, raw) {
				return nil, fmt.Errorf("column %q: value %q not in nominal domain", attrs[i].Name, raw)
			}
			row[i] = raw
		case String:
			row[i] = raw
		default:
			return nil, fmt.Errorf("column %q: unknown attribute type", attrs[i].Name)
		}
	}
	return row, nil
}

// splitCSV splits on commas that are outside single/double quotes.
func splitCSV(s string) []string {
	var parts []string
	var b strings.Builder
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
			b.WriteByte(c)
		case c == '\'' || c == '"':
			quote = c
			b.WriteByte(c)
		case c == ',':
			parts = append(parts, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	parts = append(parts, b.String())
	return parts
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

func contains(vals []string, v string) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}

// Write serializes the relation in canonical ARFF form. Numeric values use
// the shortest round-trippable representation; nominal values are quoted only
// when they contain separators.
func Write(w io.Writer, rel *Relation) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "@relation %s\n\n", quoteIfNeeded(rel.Name)); err != nil {
		return fmt.Errorf("arff: write: %w", err)
	}
	for _, a := range rel.Attributes {
		switch a.Type {
		case Numeric:
			fmt.Fprintf(bw, "@attribute %s numeric\n", quoteIfNeeded(a.Name))
		case String:
			fmt.Fprintf(bw, "@attribute %s string\n", quoteIfNeeded(a.Name))
		case Nominal:
			vals := make([]string, len(a.Values))
			for i, v := range a.Values {
				vals[i] = quoteIfNeeded(v)
			}
			fmt.Fprintf(bw, "@attribute %s {%s}\n", quoteIfNeeded(a.Name), strings.Join(vals, ","))
		}
	}
	fmt.Fprintf(bw, "\n@data\n")
	for _, row := range rel.Rows {
		for i, cell := range row {
			if i > 0 {
				bw.WriteByte(',')
			}
			switch v := cell.(type) {
			case nil:
				bw.WriteByte('?')
			case float64:
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			case string:
				bw.WriteString(quoteIfNeeded(v))
			default:
				return fmt.Errorf("arff: unsupported cell type %T", cell)
			}
		}
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("arff: write: %w", err)
	}
	return nil
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return "''"
	}
	if !strings.ContainsAny(s, " ,{}'\"\t%") {
		return s
	}
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	if !strings.Contains(s, "\"") {
		return "\"" + s + "\""
	}
	// Contains both quote kinds; ARFF has no universally supported escape,
	// so sanitize the single quotes.
	return "'" + strings.ReplaceAll(s, "'", "_") + "'"
}
