// Package experiments reproduces every table and figure of the paper's
// evaluation (§VIII) on the simulated gas pipeline dataset: Fig. 4 (feature
// histograms), Fig. 5 (validation error vs discretization granularity),
// Table III (chosen discretization), Fig. 6 (top-k error curves), Fig. 7
// (combined-framework metrics vs k), Table IV (model comparison) and
// Table V (per-attack detected ratios).
//
// Every runner is deterministic given the Config seed. Absolute numbers
// differ from the paper (the substrate is a simulator, not the authors'
// testbed); the shapes — who wins, which attacks are hard, where the curves
// bend — are the reproduction target, and EXPERIMENTS.md records both sides.
package experiments

import (
	"fmt"

	"icsdetect/internal/baselines"
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

// Config scales the experiment suite. The zero value is unusable; use
// DefaultConfig (fast, qualitative) or PaperScaleConfig (full size).
type Config struct {
	// Packages is the generated dataset size. The original dataset has
	// 274,628 packages; DefaultConfig uses a smaller capture that trains in
	// about a minute.
	Packages int
	// Seed fixes all randomness.
	Seed uint64
	// Granularity is the discretization for the main framework and the
	// baselines. Chosen per scale; PaperScaleConfig uses Table III's.
	Granularity signature.Granularity
	// Core configures framework training (hidden sizes, epochs, λ, θ …).
	Core core.Config
	// MinAccuracy is the baseline threshold-tuning constraint (paper: 0.7).
	MinAccuracy float64
}

// DefaultConfig returns the fast experiment configuration.
func DefaultConfig() Config {
	coreCfg := core.DefaultConfig()
	coreCfg.Granularity = signature.Granularity{
		IntervalClusters: 2, CRCClusters: 2,
		PressureBins: 8, SetpointBins: 5, PIDClusters: 4,
	}
	coreCfg.Hidden = []int{96, 96}
	coreCfg.Fit.Epochs = 16
	coreCfg.Fit.LRDecayEpoch = 10
	coreCfg.Fit.LRDecayFactor = 0.5
	// Our validation top-k curves sit far lower than the paper's at equal k
	// (Fig. 6), so a tighter θ reproduces their operating point k≈4 — the
	// knee of the curve, just as in the paper. θ must stay above the
	// package-level errv floor (unseen validation signatures can never be
	// in the top-k set).
	coreCfg.ThetaSeries = 0.02
	return Config{
		Packages:    60000,
		Seed:        20170626, // DSN 2017 opening day
		Granularity: coreCfg.Granularity,
		Core:        coreCfg,
		MinAccuracy: 0.7,
	}
}

// PaperScaleConfig returns the full-size configuration: the original
// dataset's package count, Table III granularity, and the paper's 2×256
// LSTM trained for 50 epochs. Expect roughly an hour of training on a
// workstation.
func PaperScaleConfig() Config {
	cfg := DefaultConfig()
	cfg.Packages = 274628
	cfg.Granularity = signature.PaperGranularity()
	cfg.Core = core.PaperScale()
	cfg.Core.Granularity = cfg.Granularity
	return cfg
}

// Env is the shared experimental fixture: the generated dataset, its split,
// the two trained frameworks (with and without probabilistic noise) and the
// windowed views the baselines consume.
type Env struct {
	Config Config

	Dataset *dataset.Dataset
	Split   *dataset.Split

	// Framework is trained with probabilistic noise (the paper's main
	// configuration); Plain is the no-noise ablation of Figs. 6-7.
	Framework *core.Framework
	Plain     *core.Framework
	Report    *core.Report
	PlainRep  *core.Report

	Windowizer   *baselines.Windowizer
	TrainWindows []*baselines.Window
	TestWindows  []*baselines.Window
}

// BuildEnv generates the dataset, splits it, trains both frameworks and
// prepares baseline windows. progress, when non-nil, receives milestone
// messages.
func BuildEnv(cfg Config, progress func(string)) (*Env, error) {
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	if cfg.Packages <= 0 {
		return nil, fmt.Errorf("experiments: Packages must be positive, got %d", cfg.Packages)
	}

	say("generating %d packages (seed %d)", cfg.Packages, cfg.Seed)
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(cfg.Packages, cfg.Seed))
	if err != nil {
		return nil, err
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		return nil, err
	}
	counts := ds.CountAttacks()
	say("dataset: %d packages, %d normal, %d attack",
		ds.Len(), counts[dataset.Normal], ds.Len()-counts[dataset.Normal])

	coreCfg := cfg.Core
	coreCfg.Granularity = cfg.Granularity
	coreCfg.Seed = cfg.Seed
	coreCfg.UseNoise = true
	say("training framework with probabilistic noise (hidden=%v epochs=%d)",
		coreCfg.Hidden, coreCfg.Fit.Epochs)
	fw, report, err := core.Train(split, coreCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: train noisy framework: %w", err)
	}
	say("noisy framework: |S|=%d k=%d errv=%.4f loss=%.3f",
		report.Signatures, report.ChosenK, report.PackageErrv, report.FinalLoss)

	plainCfg := coreCfg
	plainCfg.UseNoise = false
	say("training framework without noise (ablation)")
	plain, plainRep, err := core.Train(split, plainCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: train plain framework: %w", err)
	}

	wz, err := baselines.NewWindowizer(fw.Encoder, split.Train)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Config:       cfg,
		Dataset:      ds,
		Split:        split,
		Framework:    fw,
		Plain:        plain,
		Report:       report,
		PlainRep:     plainRep,
		Windowizer:   wz,
		TrainWindows: wz.FromFragments(split.Train),
		TestWindows:  wz.FromStream(split.Test),
	}
	say("windows: %d train, %d test", len(env.TrainWindows), len(env.TestWindows))
	return env, nil
}
