package experiments

import (
	"strings"
	"sync"
	"testing"

	"icsdetect/internal/dataset"
	"icsdetect/internal/signature"
)

var (
	testEnvOnce sync.Once
	testEnv     *Env
	testEnvErr  error
)

// smallEnv builds one shared miniature environment for all experiment
// tests; BuildEnv is the expensive step (two LSTM trainings).
func smallEnv(t *testing.T) *Env {
	t.Helper()
	testEnvOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Packages = 8000
		cfg.Granularity = signature.Granularity{
			IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
		}
		cfg.Core.Granularity = cfg.Granularity
		cfg.Core.Hidden = []int{24, 24}
		cfg.Core.Fit.Epochs = 6
		cfg.Core.Fit.BatchSize = 4
		testEnv, testEnvErr = BuildEnv(cfg, nil)
	})
	if testEnvErr != nil {
		t.Fatalf("build env: %v", testEnvErr)
	}
	return testEnv
}

func TestBuildEnvInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment environment skipped in -short mode")
	}
	env := smallEnv(t)
	if env.Framework == nil || env.Plain == nil {
		t.Fatal("frameworks missing")
	}
	if env.Report.Signatures == 0 || env.Report.ChosenK < 1 {
		t.Fatalf("bad report: %+v", env.Report)
	}
	if len(env.TrainWindows) == 0 || len(env.TestWindows) == 0 {
		t.Fatal("windows missing")
	}
}

func TestRunFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	env := smallEnv(t)
	fig := RunFigure4(env)
	for name, h := range map[string]int{
		"interval": fig.Interval.N, "crc": fig.CRCRate.N,
		"setpoint": fig.Setpoint.N, "pressure": fig.Pressure.N,
	} {
		if h == 0 {
			t.Errorf("%s histogram empty", name)
		}
	}
	if s := fig.String(); !strings.Contains(s, "Figure 4") {
		t.Error("rendering missing title")
	}
	// The paper's observation: time interval has two natural clusters
	// (intra-cycle and inter-cycle); the histogram must be bimodal with a
	// large empty stretch between them.
	zeroRun, maxRun := 0, 0
	for _, c := range fig.Interval.Counts {
		if c == 0 {
			zeroRun++
			if zeroRun > maxRun {
				maxRun = zeroRun
			}
		} else {
			zeroRun = 0
		}
	}
	if maxRun < 20 {
		t.Errorf("interval histogram lacks a bimodal gap (max empty run %d bins)", maxRun)
	}
}

func TestRunFigure5AndTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	env := smallEnv(t)
	fig, err := RunFigure5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) == 0 {
		t.Fatal("no sweep points")
	}
	// errv must generally grow with granularity: compare the coarsest and
	// finest pressure settings at fixed setpoint/PID.
	var coarse, fine *signature.SearchPoint
	for i := range fig.Points {
		p := &fig.Points[i]
		if p.Granularity.SetpointBins == 3 && p.Granularity.PIDClusters == 4 {
			if p.Granularity.PressureBins == 4 {
				coarse = p
			}
			if p.Granularity.PressureBins == 20 {
				fine = p
			}
		}
	}
	if coarse != nil && fine != nil && fine.Errv < coarse.Errv {
		t.Errorf("finer granularity has lower errv (%.4f < %.4f)", fine.Errv, coarse.Errv)
	}

	t3 := RunTableIII(env)
	if !strings.Contains(t3.String(), "Kmeans clustering") {
		t.Error("Table III rendering incomplete")
	}
}

func TestRunFigure6And7(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	env := smallEnv(t)
	fig6 := RunFigure6(env)
	// Top-k error must be non-increasing in k for all four curves.
	for name, curve := range map[string][]float64{
		"noise-train": fig6.NoiseTrain.Err, "noise-val": fig6.NoiseValidation.Err,
		"plain-train": fig6.PlainTrain.Err, "plain-val": fig6.PlainValidation.Err,
	} {
		for k := 1; k < len(curve); k++ {
			if curve[k] > curve[k-1]+1e-12 {
				t.Errorf("%s curve increases at k=%d", name, k+1)
			}
		}
	}

	fig7, err := RunFigure7(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Ks) != 5 {
		t.Fatalf("swept %d ks", len(fig7.Ks))
	}
	// Precision generally rises with k, recall falls (paper Fig. 7).
	n := len(fig7.Noise)
	if fig7.Noise[n-1].Recall > fig7.Noise[0].Recall+1e-9 {
		t.Errorf("recall rose with k: %.3f -> %.3f",
			fig7.Noise[0].Recall, fig7.Noise[n-1].Recall)
	}
	// The framework's K must be restored after the sweep.
	if env.Framework.Series.K != env.Report.ChosenK {
		t.Errorf("sweep leaked k=%d", env.Framework.Series.K)
	}
}

func TestRunTableIVAndV(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	env := smallEnv(t)
	t4, err := RunTableIV(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 7 {
		t.Fatalf("Table IV rows = %d, want 7", len(t4.Rows))
	}
	if t4.Rows[0].Name != "Our framework" {
		t.Errorf("first row = %q", t4.Rows[0].Name)
	}
	for _, r := range t4.Rows {
		s := r.Summary
		for name, v := range map[string]float64{
			"precision": s.Precision, "recall": s.Recall,
			"accuracy": s.Accuracy, "f1": s.F1,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s %s = %v out of [0,1]", r.Name, name, v)
			}
		}
	}

	t5 := RunTableV(t4)
	rendered := t5.String()
	for _, at := range dataset.AttackTypes {
		if !strings.Contains(rendered, at.String()) {
			t.Errorf("Table V missing %v", at)
		}
	}

	// MFCI and Recon use out-of-database signatures: the framework must
	// detect essentially all of them (paper Table V: 1.00).
	ours := t4.Rows[0]
	for _, at := range []dataset.AttackType{dataset.MFCI, dataset.Recon} {
		if ours.PerAttack.Total[at] > 0 && ours.PerAttack.Ratio(at) < 0.9 {
			t.Errorf("our framework detected only %.2f of %v", ours.PerAttack.Ratio(at), at)
		}
	}
}
