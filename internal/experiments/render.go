package experiments

import (
	"fmt"
	"strings"
)

// table renders rows as an aligned monospace table with a header rule,
// matching the plain-text rendition of the paper's tables in
// EXPERIMENTS.md.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// sparkline renders a numeric series as a compact unicode plot, used for
// the figure-style outputs.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
