package experiments

import (
	"fmt"

	"icsdetect/internal/baselines"
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
)

// ModelResult is one row of Table IV plus the per-attack breakdown that
// feeds Table V.
type ModelResult struct {
	Name      string
	Summary   metrics.Summary
	PerAttack *metrics.PerAttack
}

// TableIV is the model comparison (paper Table IV).
type TableIV struct {
	Rows []ModelResult
}

// RunTableIV evaluates the combined framework and all six baselines on the
// test set. Per the paper: the framework is trained with probabilistic
// noise at its validation-chosen k; BF/BN/SVDD/IF train on attack-free
// windows; GMM and PCA-SVD are unsupervised (fitted on the unlabeled test
// traffic, as in [52]); baseline thresholds are tuned for best F1 with
// accuracy above MinAccuracy.
func RunTableIV(env *Env) (*TableIV, error) {
	out := &TableIV{}

	eval := env.Framework.Evaluate(env.Split.Test, core.ModeCombined)
	out.Rows = append(out.Rows, ModelResult{
		Name:      "Our framework",
		Summary:   eval.Summary,
		PerAttack: eval.PerAttack,
	})

	trainSamples := baselines.Samples(env.TrainWindows)
	testSamples := baselines.Samples(env.TestWindows)
	seed := env.Config.Seed

	scorers := make([]baselines.Scorer, 0, 6)
	bf, err := baselines.NewBF(env.TrainWindows, 0.005)
	if err != nil {
		return nil, fmt.Errorf("experiments: bf: %w", err)
	}
	scorers = append(scorers, bf)

	bn, err := baselines.NewBayesNet(env.TrainWindows)
	if err != nil {
		return nil, fmt.Errorf("experiments: bn: %w", err)
	}
	scorers = append(scorers, bn)

	svdd, err := baselines.NewSVDD(trainSamples, baselines.SVDDConfig{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: svdd: %w", err)
	}
	scorers = append(scorers, svdd)

	iforest, err := baselines.NewIsolationForest(trainSamples, baselines.IForestConfig{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: iforest: %w", err)
	}
	scorers = append(scorers, iforest)

	gmm, err := baselines.NewGMM(testSamples, baselines.GMMConfig{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: gmm: %w", err)
	}
	scorers = append(scorers, gmm)

	pca, err := baselines.NewPCASVD(testSamples, baselines.PCAConfig{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: pca: %w", err)
	}
	scorers = append(scorers, pca)

	for _, s := range scorers {
		res, err := baselines.Evaluate(s, env.TestWindows, env.Config.MinAccuracy)
		if err != nil {
			return nil, fmt.Errorf("experiments: evaluate %s: %w", s.Name(), err)
		}
		out.Rows = append(out.Rows, ModelResult{
			Name:      res.Name,
			Summary:   res.Summary,
			PerAttack: res.PerAttack,
		})
	}
	return out, nil
}

// String renders Table IV.
func (t4 *TableIV) String() string {
	t := newTable("Model", "Precision", "Recall", "Accuracy", "F1-score")
	for _, r := range t4.Rows {
		t.addf("%s\t%.2f\t%.2f\t%.2f\t%.2f",
			r.Name, r.Summary.Precision, r.Summary.Recall, r.Summary.Accuracy, r.Summary.F1)
	}
	return "Table IV: performance comparison with other anomaly detection models\n" + t.String()
}

// TableV is the per-attack detected ratio table (paper Table V), reusing
// the Table IV evaluations.
type TableV struct {
	Rows []ModelResult
}

// RunTableV derives Table V from a Table IV run.
func RunTableV(t4 *TableIV) *TableV {
	return &TableV{Rows: t4.Rows}
}

// String renders Table V in the paper's layout: attack type × model.
func (t5 *TableV) String() string {
	t := newTable("Attack Type", "Model", "Detected Ratio")
	for _, at := range dataset.AttackTypes {
		for _, r := range t5.Rows {
			t.addf("%s\t%s\t%.2f", at, r.Name, r.PerAttack.Ratio(at))
		}
	}
	return "Table V: detected ratio (recall) of anomalous packages per attack type\n" + t.String()
}
