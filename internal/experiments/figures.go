package experiments

import (
	"fmt"
	"strings"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
	"icsdetect/internal/metrics"
	"icsdetect/internal/signature"
)

// Figure4 holds the 200-bin histograms of the four scalar continuous
// features over attack-free traffic (paper Fig. 4).
type Figure4 struct {
	Interval *mathx.Histogram
	CRCRate  *mathx.Histogram
	Setpoint *mathx.Histogram
	Pressure *mathx.Histogram
}

// RunFigure4 computes the histograms from the training fragments.
func RunFigure4(env *Env) *Figure4 {
	const bins = 200
	var interval, crc, setpoint, pressure []float64
	for _, frag := range env.Split.Train {
		var prev *dataset.Package
		for _, p := range frag {
			interval = append(interval, dataset.Interval(prev, p))
			crc = append(crc, p.CRCRate)
			setpoint = append(setpoint, p.Setpoint)
			pressure = append(pressure, p.Pressure)
			prev = p
		}
	}
	return &Figure4{
		Interval: mathx.NewHistogram(interval, bins),
		CRCRate:  mathx.NewHistogram(crc, bins),
		Setpoint: mathx.NewHistogram(setpoint, bins),
		Pressure: mathx.NewHistogram(pressure, bins),
	}
}

// String renders the four histograms as sparklines with their ranges.
func (f *Figure4) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: histograms of continuous feature values (200 bins)\n")
	row := func(name string, h *mathx.Histogram) {
		vals := make([]float64, len(h.Counts))
		for i, c := range h.Counts {
			vals[i] = float64(c)
		}
		// Compress the 200 bins to 50 columns for terminal width.
		cols := make([]float64, 50)
		for i, v := range vals {
			cols[i*50/len(vals)] += v
		}
		fmt.Fprintf(&b, "%-22s [%.4g, %.4g]  %s\n", name, h.Min, h.Max, sparkline(cols))
	}
	row("time interval (s)", f.Interval)
	row("crc rate", f.CRCRate)
	row("setpoint (PSI)", f.Setpoint)
	row("pressure (PSI)", f.Pressure)
	return b.String()
}

// Figure5 is the granularity sweep: validation error as a function of the
// discretization granularity (paper Fig. 5), produced by the §IV-B search.
type Figure5 struct {
	Points []signature.SearchPoint
	Best   signature.Granularity
	Theta  float64
}

// RunFigure5 sweeps a granularity grid on the split and records errv.
func RunFigure5(env *Env) (*Figure5, error) {
	search := signature.DefaultSearchConfig()
	search.Seed = env.Config.Seed
	// Keep the sweep affordable: the figure's purpose is the shape of
	// errv(granularity), not an exhaustive grid.
	search.PressureGrid = []int{4, 6, 8, 10, 15, 20}
	search.SetpointGrid = []int{3, 5, 10}
	search.PIDGrid = []int{4, 8, 16, 32}
	res, err := signature.Search(env.Split.Train, env.Split.Validation, search)
	if err != nil {
		return nil, err
	}
	return &Figure5{Points: res.Points, Best: res.Best, Theta: search.Theta}, nil
}

// String renders the sweep as a table sorted by weighted score.
func (f *Figure5) String() string {
	t := newTable("pressure", "setpoint", "PID", "|S|", "errv", "feasible")
	for _, p := range f.Points {
		t.addf("%d\t%d\t%d\t%d\t%.4f\t%v",
			p.Granularity.PressureBins, p.Granularity.SetpointBins,
			p.Granularity.PIDClusters, p.Signatures, p.Errv, p.Feasible)
	}
	return fmt.Sprintf("Figure 5: validation error vs discretization granularity (θ=%.2f)\n%s\nchosen: %+v\n",
		f.Theta, t.String(), f.Best)
}

// TableIII reports the discretization strategy in use (paper Table III).
type TableIII struct {
	Granularity signature.Granularity
	Signatures  int
	Errv        float64
}

// RunTableIII reads the fitted encoder's strategy.
func RunTableIII(env *Env) *TableIII {
	return &TableIII{
		Granularity: env.Report.Granularity,
		Signatures:  env.Report.Signatures,
		Errv:        env.Report.PackageErrv,
	}
}

// String renders the strategy table.
func (t3 *TableIII) String() string {
	t := newTable("Feature", "Discretization method", "Value No.")
	g := t3.Granularity
	t.addf("time interval\tKmeans clustering\t%d+1", g.IntervalClusters)
	t.addf("crc rate\tKmeans clustering\t%d+1", g.CRCClusters)
	t.addf("pressure measurement\tEven interval partition\t%d+1", g.PressureBins)
	t.addf("setpoint\tEven interval partition\t%d+1", g.SetpointBins)
	t.addf("PID parameters\tKmeans clustering\t%d+1", g.PIDClusters)
	return fmt.Sprintf("Table III: feature discretization strategies (|S|=%d, errv=%.4f)\n%s",
		t3.Signatures, t3.Errv, t.String())
}

// Figure6 holds the top-k error curves of the stacked LSTM on training and
// validation data, with and without probabilistic noise (paper Fig. 6).
type Figure6 struct {
	NoiseTrain, NoiseValidation *metrics.TopKCurve
	PlainTrain, PlainValidation *metrics.TopKCurve
	ChosenK                     int
	Theta                       float64
}

// RunFigure6 reads the curves from the training reports.
func RunFigure6(env *Env) *Figure6 {
	return &Figure6{
		NoiseTrain:      env.Report.TrainCurve,
		NoiseValidation: env.Report.ValidationCurve,
		PlainTrain:      env.PlainRep.TrainCurve,
		PlainValidation: env.PlainRep.ValidationCurve,
		ChosenK:         env.Report.ChosenK,
		Theta:           env.Config.Core.ThetaSeries,
	}
}

// String renders the four curves.
func (f *Figure6) String() string {
	t := newTable("k", "train+noise", "val+noise", "train", "val")
	for k := 1; k <= len(f.NoiseTrain.Err); k++ {
		t.addf("%d\t%.4f\t%.4f\t%.4f\t%.4f",
			k, f.NoiseTrain.Err[k-1], f.NoiseValidation.Err[k-1],
			f.PlainTrain.Err[k-1], f.PlainValidation.Err[k-1])
	}
	return fmt.Sprintf("Figure 6: top-k error with and without probabilistic noise (θ=%.2f → k=%d)\n%s",
		f.Theta, f.ChosenK, t.String())
}

// Figure7 holds the combined-framework metrics as a function of k, with and
// without probabilistic noise (paper Fig. 7).
type Figure7 struct {
	Ks    []int
	Noise []metrics.Summary
	Plain []metrics.Summary
	// ChosenK is the validation-selected k; the paper highlights that it
	// also maximizes test F1.
	ChosenK int
}

// RunFigure7 sweeps k over the test set for both frameworks.
func RunFigure7(env *Env, maxK int) (*Figure7, error) {
	if maxK < 1 {
		maxK = 10
	}
	f := &Figure7{ChosenK: env.Report.ChosenK}
	savedNoise := env.Framework.Series.K
	savedPlain := env.Plain.Series.K
	defer func() {
		env.Framework.Series.K = savedNoise
		env.Plain.Series.K = savedPlain
	}()
	for k := 1; k <= maxK; k++ {
		if err := env.Framework.SetK(k); err != nil {
			return nil, err
		}
		if err := env.Plain.SetK(k); err != nil {
			return nil, err
		}
		f.Ks = append(f.Ks, k)
		f.Noise = append(f.Noise, env.Framework.Evaluate(env.Split.Test, core.ModeCombined).Summary)
		f.Plain = append(f.Plain, env.Plain.Evaluate(env.Split.Test, core.ModeCombined).Summary)
	}
	return f, nil
}

// String renders the sweep.
func (f *Figure7) String() string {
	t := newTable("k", "P+n", "R+n", "A+n", "F1+n", "P", "R", "A", "F1")
	for i, k := range f.Ks {
		n, p := f.Noise[i], f.Plain[i]
		t.addf("%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f",
			k, n.Precision, n.Recall, n.Accuracy, n.F1,
			p.Precision, p.Recall, p.Accuracy, p.F1)
	}
	return fmt.Sprintf("Figure 7: combined framework metrics vs k (+n = trained with noise; chosen k=%d)\n%s",
		f.ChosenK, t.String())
}
