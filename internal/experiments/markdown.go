package experiments

import (
	"fmt"
	"io"

	"icsdetect/internal/dataset"
)

// WriteMarkdown runs every experiment and renders the results as a markdown
// report (the measured side of EXPERIMENTS.md). The env must already be
// built; the function is deterministic given the env.
func WriteMarkdown(w io.Writer, env *Env) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	counts := env.Dataset.CountAttacks()
	p("## Measured results (packages=%d, seed=%d, hidden=%v, epochs=%d)\n\n",
		env.Config.Packages, env.Config.Seed,
		env.Config.Core.Hidden, env.Config.Core.Fit.Epochs)
	p("Dataset: %d packages, %d normal, %d attack. Signature database: %d signatures, errv=%.4f, selected k=%d.\n\n",
		env.Dataset.Len(), counts[dataset.Normal],
		env.Dataset.Len()-counts[dataset.Normal],
		env.Report.Signatures, env.Report.PackageErrv, env.Report.ChosenK)

	// Figure 4.
	fig4 := RunFigure4(env)
	p("### Figure 4 — feature histograms\n\n```\n%s```\n\n", fig4.String())

	// Figure 5.
	fig5, err := RunFigure5(env)
	if err != nil {
		return err
	}
	p("### Figure 5 — validation error vs granularity (θ=%.2f)\n\n", fig5.Theta)
	p("| pressure | setpoint | PID | \\|S\\| | errv | feasible |\n|---|---|---|---|---|---|\n")
	for _, pt := range fig5.Points {
		p("| %d | %d | %d | %d | %.4f | %v |\n",
			pt.Granularity.PressureBins, pt.Granularity.SetpointBins,
			pt.Granularity.PIDClusters, pt.Signatures, pt.Errv, pt.Feasible)
	}
	p("\nChosen: pressure=%d setpoint=%d PID=%d.\n\n",
		fig5.Best.PressureBins, fig5.Best.SetpointBins, fig5.Best.PIDClusters)

	// Table III.
	t3 := RunTableIII(env)
	g := t3.Granularity
	p("### Table III — discretization strategy in use\n\n")
	p("| Feature | Method | Value No. |\n|---|---|---|\n")
	p("| time interval | K-means | %d+1 |\n", g.IntervalClusters)
	p("| crc rate | K-means | %d+1 |\n", g.CRCClusters)
	p("| pressure measurement | even interval | %d+1 |\n", g.PressureBins)
	p("| setpoint | even interval | %d+1 |\n", g.SetpointBins)
	p("| PID parameters | K-means | %d+1 |\n\n", g.PIDClusters)

	// Figure 6.
	fig6 := RunFigure6(env)
	p("### Figure 6 — top-k error (θ=%.2f → k=%d)\n\n", fig6.Theta, fig6.ChosenK)
	p("| k | train+noise | val+noise | train | val |\n|---|---|---|---|---|\n")
	for k := 1; k <= len(fig6.NoiseTrain.Err); k++ {
		p("| %d | %.4f | %.4f | %.4f | %.4f |\n",
			k, fig6.NoiseTrain.Err[k-1], fig6.NoiseValidation.Err[k-1],
			fig6.PlainTrain.Err[k-1], fig6.PlainValidation.Err[k-1])
	}
	p("\n")

	// Figure 7.
	fig7, err := RunFigure7(env, 10)
	if err != nil {
		return err
	}
	p("### Figure 7 — combined framework metrics vs k (chosen k=%d)\n\n", fig7.ChosenK)
	p("| k | P+noise | R+noise | A+noise | F1+noise | P | R | A | F1 |\n|---|---|---|---|---|---|---|---|---|\n")
	for i, k := range fig7.Ks {
		n, pl := fig7.Noise[i], fig7.Plain[i]
		p("| %d | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
			k, n.Precision, n.Recall, n.Accuracy, n.F1,
			pl.Precision, pl.Recall, pl.Accuracy, pl.F1)
	}
	p("\n")

	// Tables IV and V.
	t4, err := RunTableIV(env)
	if err != nil {
		return err
	}
	p("### Table IV — model comparison\n\n")
	p("| Model | Precision | Recall | Accuracy | F1-score |\n|---|---|---|---|---|\n")
	for _, r := range t4.Rows {
		p("| %s | %.2f | %.2f | %.2f | %.2f |\n",
			r.Name, r.Summary.Precision, r.Summary.Recall,
			r.Summary.Accuracy, r.Summary.F1)
	}
	p("\n### Table V — detected ratio per attack type\n\n| Attack |")
	for _, r := range t4.Rows {
		p(" %s |", r.Name)
	}
	p("\n|---|")
	for range t4.Rows {
		p("---|")
	}
	p("\n")
	for _, at := range dataset.AttackTypes {
		p("| %s |", at)
		for _, r := range t4.Rows {
			p(" %.2f |", r.PerAttack.Ratio(at))
		}
		p("\n")
	}
	p("\nModel memory: %d KB.\n", env.Framework.MemoryBytes()/1024)
	return nil
}
