// Package tap implements a transparent Modbus/TCP network tap: a proxy that
// relays frames between masters and a slave while decoding every frame into
// the Table I package schema for the anomaly detector. This is the
// deployment shape the paper assumes — "anomaly detection systems for ICS
// are often deployed by monitoring the network traffic between field
// devices" (§III) — realized as an in-path software tap.
package tap

import (
	"fmt"
	"net"
	"sync"
	"time"

	"icsdetect/internal/dataset"
	"icsdetect/internal/modbus"
)

// RegisterMap describes how the monitored device lays out its controller
// state block in holding registers. Indices of -1 mark absent fields.
// Scaling follows the testbed conventions: pressures, gains and rates are
// stored ×100, cycle time ×1000.
type RegisterMap struct {
	Setpoint  int
	Gain      int
	ResetRate int
	Deadband  int
	CycleTime int
	Rate      int
	Mode      int
	Scheme    int
	Pump      int
	Solenoid  int
	Pressure  int
	// MinRegisters is the smallest payload (in registers) that carries the
	// parameter block; shorter reads/writes are treated as partial and
	// leave the parameter columns zero.
	MinRegisters int
}

// DefaultRegisterMap matches the gas pipeline simulator's layout.
func DefaultRegisterMap() RegisterMap {
	return RegisterMap{
		Setpoint: 0, Gain: 1, ResetRate: 2, Deadband: 3, CycleTime: 4,
		Rate: 5, Mode: 6, Scheme: 7, Pump: 8, Solenoid: 9, Pressure: 10,
		MinRegisters: 10,
	}
}

func (m *RegisterMap) field(regs []uint16, idx int, scale float64) float64 {
	if idx < 0 || idx >= len(regs) {
		return 0
	}
	return float64(regs[idx]) / scale
}

// decode populates the parameter columns of p from a register payload.
func (m *RegisterMap) decode(p *dataset.Package, regs []uint16) {
	if len(regs) < m.MinRegisters {
		return
	}
	p.Setpoint = m.field(regs, m.Setpoint, 100)
	p.Gain = m.field(regs, m.Gain, 100)
	p.ResetRate = m.field(regs, m.ResetRate, 100)
	p.Deadband = m.field(regs, m.Deadband, 100)
	p.CycleTime = m.field(regs, m.CycleTime, 1000)
	p.Rate = m.field(regs, m.Rate, 100)
	p.SystemMode = m.field(regs, m.Mode, 1)
	p.ControlScheme = m.field(regs, m.Scheme, 1)
	p.Pump = m.field(regs, m.Pump, 1)
	p.Solenoid = m.field(regs, m.Solenoid, 1)
	p.Pressure = m.field(regs, m.Pressure, 100)
}

// Proxy is the tap. Create with New, start with Listen, collect packages
// with Drain or stream them with SetSink.
type Proxy struct {
	upstream string
	regs     RegisterMap

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool

	pkgMu    sync.Mutex
	packages []*dataset.Package
	sink     func(*dataset.Package)
	started  time.Time
}

// New creates a tap that forwards to the slave at upstream.
func New(upstream string, regs RegisterMap) *Proxy {
	return &Proxy{
		upstream: upstream,
		regs:     regs,
		conns:    make(map[net.Conn]struct{}),
		started:  time.Now(),
	}
}

// Listen binds the tap and returns its address. Each accepted client gets
// its own upstream connection; both directions are decoded.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("tap: listen: %w", err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("tap: already closed")
	}
	p.listener = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// SetSink streams every decoded package to fn (called from relay
// goroutines; fn must be safe for concurrent use or the tap must serve one
// client). Any packages already buffered for Drain are first flushed to fn
// in arrival order, so switching from polling (Drain) to streaming loses
// nothing and never mixes the two delivery modes: packages recorded while
// the flush is in progress keep buffering and are drained before the sink
// is installed, so buffered packages are always delivered ahead of live
// ones. The flush calls fn outside the package lock — like live delivery —
// so a slow sink delays only delivery, never frame relaying. fn must not
// call SetSink. Passing nil reverts to buffering.
func (p *Proxy) SetSink(fn func(*dataset.Package)) {
	p.pkgMu.Lock()
	if fn == nil {
		p.sink = nil
		p.pkgMu.Unlock()
		return
	}
	for len(p.packages) > 0 {
		buffered := p.packages
		p.packages = nil
		p.pkgMu.Unlock()
		for _, pkg := range buffered {
			fn(pkg)
		}
		p.pkgMu.Lock()
	}
	p.sink = fn
	p.pkgMu.Unlock()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.upstream)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.conns[server] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.relay(client, server, true)  // master → slave: commands
		go p.relay(server, client, false) // slave → master: responses
	}
}

func (p *Proxy) relay(src, dst net.Conn, isCmd bool) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	for {
		frame, err := modbus.ReadTCPFrame(src)
		if err != nil {
			return
		}
		p.record(frame, isCmd)
		if err := modbus.WriteTCPFrame(dst, frame); err != nil {
			return
		}
	}
}

// record converts a frame to the Table I schema and delivers it.
func (p *Proxy) record(frame *modbus.TCPFrame, isCmd bool) {
	raw, err := modbus.EncodeTCP(frame)
	if err != nil {
		return
	}
	pkg := &dataset.Package{
		Address:  float64(frame.Header.UnitID),
		Function: float64(frame.PDU.Function),
		Length:   float64(len(raw)),
		Time:     time.Since(p.started).Seconds(),
	}
	if isCmd {
		pkg.CmdResponse = 1
	}

	switch frame.PDU.Function {
	case modbus.FuncWriteMultipleRegs:
		if isCmd {
			if _, values, err := modbus.ParseWriteMultipleRequest(frame.PDU); err == nil {
				p.regs.decode(pkg, values)
			}
		}
	case modbus.FuncReadHoldingRegisters, modbus.FuncReadInputRegisters, modbus.FuncReadState:
		if !isCmd && !frame.PDU.IsException() {
			if values, err := modbus.ParseReadRegistersResponse(frame.PDU); err == nil {
				p.regs.decode(pkg, values)
			}
		}
	}

	p.pkgMu.Lock()
	sink := p.sink
	if sink == nil {
		p.packages = append(p.packages, pkg)
	}
	p.pkgMu.Unlock()
	if sink != nil {
		sink(pkg)
	}
}

// Drain returns and clears the buffered packages.
func (p *Proxy) Drain() []*dataset.Package {
	p.pkgMu.Lock()
	defer p.pkgMu.Unlock()
	out := p.packages
	p.packages = nil
	return out
}

// Close stops the tap and waits for all relay goroutines.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	if p.listener != nil {
		p.listener.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
