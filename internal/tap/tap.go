// Package tap implements a transparent Modbus/TCP network tap: a proxy that
// relays frames between masters and a slave while decoding every frame into
// the Table I package schema for the anomaly detector. This is the
// deployment shape the paper assumes — "anomaly detection systems for ICS
// are often deployed by monitoring the network traffic between field
// devices" (§III) — realized as an in-path software tap.
package tap

import (
	"fmt"
	"net"
	"sync"
	"time"

	"icsdetect/internal/dataset"
	"icsdetect/internal/modbus"
)

// RegisterMap describes how the monitored device lays out its controller
// state block in holding registers. Indices of -1 mark absent fields (a
// testbed without that column leaves the feature zero). Scaling follows the
// testbed conventions: process values, gains and rates are stored ×100,
// cycle time ×1000. Each scenario supplies its own layout (for example
// gaspipeline.Registers and watertank.Registers); field names refer to the
// Table I package columns the registers decode into, not to what the
// registers mean in the physical process — the water tank maps its level
// measurement onto the Pressure column and its alarm setpoints onto the PID
// parameter columns.
type RegisterMap struct {
	Setpoint  int
	Gain      int
	ResetRate int
	Deadband  int
	CycleTime int
	Rate      int
	Mode      int
	Scheme    int
	Pump      int
	Solenoid  int
	Pressure  int
	// MinRegisters is the smallest payload (in registers) that carries the
	// parameter block; shorter reads/writes are treated as partial and
	// leave the parameter columns zero.
	MinRegisters int
}

func (m *RegisterMap) field(regs []uint16, idx int, scale float64) float64 {
	if idx < 0 || idx >= len(regs) {
		return 0
	}
	return float64(regs[idx]) / scale
}

// DecodePDU populates the parameter columns of p from the function-specific
// payload of one PDU, given its direction: write-multiple commands carry the
// controller block the master is sending, register-read responses carry the
// block the device reported (including the pressure measurement); every
// other function leaves the parameter columns zero. This is the single
// frame→schema decode rule shared by the live tap and the trace replayer,
// so a replayed capture reconstructs exactly the packages the tap would
// have produced.
func (m *RegisterMap) DecodePDU(p *dataset.Package, pdu *modbus.PDU, isCmd bool) {
	switch pdu.Function {
	case modbus.FuncWriteMultipleRegs:
		if isCmd {
			if _, values, err := modbus.ParseWriteMultipleRequest(pdu); err == nil {
				m.decode(p, values)
			}
		}
	case modbus.FuncReadHoldingRegisters, modbus.FuncReadInputRegisters, modbus.FuncReadState:
		if !isCmd && !pdu.IsException() {
			if values, err := modbus.ParseReadRegistersResponse(pdu); err == nil {
				m.decode(p, values)
			}
		}
	}
}

// decode populates the parameter columns of p from a register payload.
func (m *RegisterMap) decode(p *dataset.Package, regs []uint16) {
	if len(regs) < m.MinRegisters {
		return
	}
	p.Setpoint = m.field(regs, m.Setpoint, 100)
	p.Gain = m.field(regs, m.Gain, 100)
	p.ResetRate = m.field(regs, m.ResetRate, 100)
	p.Deadband = m.field(regs, m.Deadband, 100)
	p.CycleTime = m.field(regs, m.CycleTime, 1000)
	p.Rate = m.field(regs, m.Rate, 100)
	p.SystemMode = m.field(regs, m.Mode, 1)
	p.ControlScheme = m.field(regs, m.Scheme, 1)
	p.Pump = m.field(regs, m.Pump, 1)
	p.Solenoid = m.field(regs, m.Solenoid, 1)
	p.Pressure = m.field(regs, m.Pressure, 100)
}

// Proxy is the tap. Create with New, start with Listen, collect packages
// with Drain or stream them with SetSink.
type Proxy struct {
	upstream string
	regs     RegisterMap

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool

	pkgMu    sync.Mutex
	buffered []capture
	// recSent counts the leading buffered entries whose frames have already
	// been delivered to a recorder; buffered[recSent:] are pending for one.
	recSent  int
	sink     func(*dataset.Package)
	recorder FrameFunc
	started  time.Time
}

// capture is one observed frame with its decoded package, buffered until a
// sink (package view) and recorder (frame view) consume it.
type capture struct {
	pkg   *dataset.Package
	raw   []byte
	isCmd bool
}

// FrameFunc receives one raw relayed frame (see SetRecorder): the wire
// bytes, the direction, and the package the tap decoded from it (whose Time
// field timestamps the frame). raw must not be retained or mutated. Like a
// sink, it is called from relay goroutines and must be safe for concurrent
// use unless the tap serves a single client.
type FrameFunc func(raw []byte, isCmd bool, pkg *dataset.Package)

// New creates a tap that forwards to the slave at upstream.
func New(upstream string, regs RegisterMap) *Proxy {
	return &Proxy{
		upstream: upstream,
		regs:     regs,
		conns:    make(map[net.Conn]struct{}),
		started:  time.Now(),
	}
}

// Listen binds the tap and returns its address. Each accepted client gets
// its own upstream connection; both directions are decoded.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("tap: listen: %w", err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("tap: already closed")
	}
	p.listener = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// SetSink streams every decoded package to fn (called from relay
// goroutines; fn must be safe for concurrent use or the tap must serve one
// client). Any packages already buffered for Drain are first flushed to fn
// in arrival order, so switching from polling (Drain) to streaming loses
// nothing and never mixes the two delivery modes: packages recorded while
// the flush is in progress keep buffering and are drained before the sink
// is installed, so buffered packages are always delivered ahead of live
// ones. The flush calls fn outside the package lock — like live delivery —
// so a slow sink delays only delivery, never frame relaying. fn must not
// call SetSink. Passing nil reverts to buffering.
func (p *Proxy) SetSink(fn func(*dataset.Package)) {
	p.pkgMu.Lock()
	if fn == nil {
		p.sink = nil
		p.pkgMu.Unlock()
		return
	}
	for len(p.buffered) > 0 {
		// Entries whose frames a recorder has not consumed yet are released
		// too: the package view (sink/Drain) owns the buffer lifetime, and a
		// recorder only replays frames still buffered at attach time.
		buffered := p.buffered
		p.buffered = nil
		p.recSent = 0
		p.pkgMu.Unlock()
		for _, c := range buffered {
			fn(c.pkg)
		}
		p.pkgMu.Lock()
	}
	p.sink = fn
	p.pkgMu.Unlock()
}

// SetRecorder streams every relayed frame (raw bytes plus decoded package)
// to fn, independently of any package sink: a recorder and a sink can be
// attached in either order, simultaneously, without stealing each other's
// buffered packages. Frames still buffered for Drain/SetSink at attach time
// are first flushed to fn in arrival order — outside the package lock, with
// the same ordering discipline as SetSink, so frames relayed during the
// flush queue behind it rather than overtaking it. Buffer lifetime belongs
// to the package view: frames released by Drain or a SetSink flush before a
// recorder attaches are no longer replayable (the recorder then starts at
// the live stream). fn must not call SetRecorder; passing nil detaches.
func (p *Proxy) SetRecorder(fn FrameFunc) {
	p.pkgMu.Lock()
	if fn == nil {
		p.recorder = nil
		p.pkgMu.Unlock()
		return
	}
	for p.recSent < len(p.buffered) {
		pending := p.buffered[p.recSent:]
		p.recSent = len(p.buffered)
		p.pkgMu.Unlock()
		for _, c := range pending {
			fn(c.raw, c.isCmd, c.pkg)
		}
		p.pkgMu.Lock()
	}
	p.recorder = fn
	p.pkgMu.Unlock()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.upstream)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.conns[server] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.relay(client, server, true)  // master → slave: commands
		go p.relay(server, client, false) // slave → master: responses
	}
}

func (p *Proxy) relay(src, dst net.Conn, isCmd bool) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	for {
		frame, err := modbus.ReadTCPFrame(src)
		if err != nil {
			return
		}
		p.record(frame, isCmd)
		if err := modbus.WriteTCPFrame(dst, frame); err != nil {
			return
		}
	}
}

// record converts a frame to the Table I schema and delivers it.
func (p *Proxy) record(frame *modbus.TCPFrame, isCmd bool) {
	raw, err := modbus.EncodeTCP(frame)
	if err != nil {
		return
	}
	pkg := &dataset.Package{
		Address:  float64(frame.Header.UnitID),
		Function: float64(frame.PDU.Function),
		Length:   float64(len(raw)),
		Time:     time.Since(p.started).Seconds(),
	}
	if isCmd {
		pkg.CmdResponse = 1
	}
	p.regs.DecodePDU(pkg, frame.PDU, isCmd)

	p.pkgMu.Lock()
	sink, rec := p.sink, p.recorder
	if sink == nil {
		p.buffered = append(p.buffered, capture{pkg: pkg, raw: raw, isCmd: isCmd})
		if rec != nil {
			// The frame is delivered live below; only its package side stays
			// buffered.
			p.recSent = len(p.buffered)
		}
	}
	p.pkgMu.Unlock()
	if rec != nil {
		rec(raw, isCmd, pkg)
	}
	if sink != nil {
		sink(pkg)
	}
}

// Drain returns and clears the buffered packages. Frames not yet consumed
// by a recorder are released with them (polling mode trades frame replay
// for bounded memory).
func (p *Proxy) Drain() []*dataset.Package {
	p.pkgMu.Lock()
	defer p.pkgMu.Unlock()
	out := make([]*dataset.Package, len(p.buffered))
	for i, c := range p.buffered {
		out[i] = c.pkg
	}
	p.buffered = nil
	p.recSent = 0
	if len(out) == 0 {
		return nil
	}
	return out
}

// Close stops the tap and waits for all relay goroutines.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	if p.listener != nil {
		p.listener.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
