// Table-driven DecodePDU conformance over both scenario register maps: the
// frame→schema decode rule is the single point the live tap and the trace
// replayer share, so its behaviour per layout — including on malformed
// PDUs — is pinned here. This is an external test package because the
// scenario implementations import tap.
package tap_test

import (
	"encoding/binary"
	"testing"

	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/modbus"
	"icsdetect/internal/tap"
	"icsdetect/internal/watertank"
)

// gasRegs encodes a full gas-pipeline block: setpoint 8.00, gain 0.45,
// reset 0.15, deadband 0.05, cycle 0.25, rate 0.02, auto, pump scheme,
// pump/solenoid idle, pressure 7.93.
func gasRegs(withPressure bool) []uint16 {
	regs := []uint16{800, 45, 15, 5, 250, 2, 2, 0, 0, 0}
	if withPressure {
		regs = append(regs, 793)
	}
	return regs
}

// tankRegs encodes a full water-tank block: H 60.00, HH 90.00, L 40.00,
// LL 10.00, cycle 0.5, auto, pump scheme, pump/valve idle, level 55.25.
func tankRegs(withLevel bool) []uint16 {
	regs := []uint16{6000, 9000, 4000, 1000, 500, 2, 0, 0, 0}
	if withLevel {
		regs = append(regs, 5525)
	}
	return regs
}

func TestDecodePDUTable(t *testing.T) {
	gas := gaspipeline.Registers()
	tank := watertank.Registers()

	// truncate drops the trailing n bytes of a PDU's payload.
	truncate := func(p *modbus.PDU, n int) *modbus.PDU {
		return &modbus.PDU{Function: p.Function, Data: p.Data[:len(p.Data)-n]}
	}
	// misCount corrupts a write-multiple quantity field so it exceeds the
	// carried payload (out-of-range register count).
	misCount := func(p *modbus.PDU) *modbus.PDU {
		data := append([]byte(nil), p.Data...)
		binary.BigEndian.PutUint16(data[2:], 120)
		return &modbus.PDU{Function: p.Function, Data: data}
	}

	cases := []struct {
		name  string
		regs  tap.RegisterMap
		pdu   *modbus.PDU
		isCmd bool
		want  dataset.Package // parameter columns only
	}{
		{
			name: "gas write command decodes full block",
			regs: gas, isCmd: true,
			pdu: modbus.WriteMultipleRequest(0, gasRegs(false)),
			want: dataset.Package{Setpoint: 8, Gain: 0.45, ResetRate: 0.15,
				Deadband: 0.05, CycleTime: 0.25, Rate: 0.02, SystemMode: 2},
		},
		{
			name: "gas read response decodes block plus pressure",
			regs: gas, isCmd: false,
			pdu: modbus.ReadRegistersResponse(modbus.FuncReadState, gasRegs(true)),
			want: dataset.Package{Setpoint: 8, Gain: 0.45, ResetRate: 0.15,
				Deadband: 0.05, CycleTime: 0.25, Rate: 0.02, SystemMode: 2,
				Pressure: 7.93},
		},
		{
			name: "tank write command maps alarm block onto parameter columns",
			regs: tank, isCmd: true,
			pdu: modbus.WriteMultipleRequest(0, tankRegs(false)),
			want: dataset.Package{Setpoint: 60, Gain: 90, ResetRate: 40,
				Deadband: 10, CycleTime: 0.5, SystemMode: 2},
		},
		{
			name: "tank read response decodes block plus level",
			regs: tank, isCmd: false,
			pdu: modbus.ReadRegistersResponse(modbus.FuncReadState, tankRegs(true)),
			want: dataset.Package{Setpoint: 60, Gain: 90, ResetRate: 40,
				Deadband: 10, CycleTime: 0.5, SystemMode: 2, Pressure: 55.25},
		},
		{
			name: "tank absent rate register stays zero",
			regs: tank, isCmd: false,
			pdu: modbus.ReadRegistersResponse(modbus.FuncReadState,
				append(tankRegs(true), 999)), // extra register beyond the map
			want: dataset.Package{Setpoint: 60, Gain: 90, ResetRate: 40,
				Deadband: 10, CycleTime: 0.5, SystemMode: 2, Pressure: 55.25},
		},
		{
			name: "write command in response direction is ignored",
			regs: gas, isCmd: false,
			pdu: modbus.WriteMultipleRequest(0, gasRegs(false)),
		},
		{
			name: "read response in command direction is ignored",
			regs: tank, isCmd: true,
			pdu: modbus.ReadRegistersResponse(modbus.FuncReadState, tankRegs(true)),
		},
		{
			name: "exception response is ignored",
			regs: gas, isCmd: false,
			pdu: modbus.NewException(modbus.FuncReadState, modbus.ExcIllegalAddress),
		},
		{
			name: "wrong function code leaves columns zero",
			regs: gas, isCmd: true,
			pdu: modbus.WriteSingleRequest(modbus.FuncDiagnostics, 4, 0),
		},
		{
			name: "truncated write command leaves columns zero",
			regs: gas, isCmd: true,
			pdu: truncate(modbus.WriteMultipleRequest(0, gasRegs(false)), 3),
		},
		{
			name: "truncated read response leaves columns zero",
			regs: tank, isCmd: false,
			pdu: truncate(modbus.ReadRegistersResponse(modbus.FuncReadState, tankRegs(true)), 1),
		},
		{
			name: "out-of-range register count leaves columns zero",
			regs: tank, isCmd: true,
			pdu: misCount(modbus.WriteMultipleRequest(0, tankRegs(false))),
		},
		{
			name: "payload below MinRegisters leaves columns zero",
			regs: gas, isCmd: true,
			pdu: modbus.WriteMultipleRequest(0, []uint16{800, 45}),
		},
		{
			name: "empty write payload leaves columns zero",
			regs: tank, isCmd: true,
			pdu: &modbus.PDU{Function: modbus.FuncWriteMultipleRegs},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got dataset.Package
			tc.regs.DecodePDU(&got, tc.pdu, tc.isCmd)
			if got != tc.want {
				t.Errorf("decoded %+v\nwant    %+v", got, tc.want)
			}
		})
	}
}

// TestDecodePDUScenarioMapsDisjoint: the two layouts must disagree on the
// same payload — a watertank block decoded with the gas map (or vice versa)
// lands on different columns, which is why traces carry their register map
// in the header.
func TestDecodePDUScenarioMapsDisjoint(t *testing.T) {
	pdu := modbus.ReadRegistersResponse(modbus.FuncReadState, tankRegs(true))
	var asTank, asGas dataset.Package
	tankMap, gasMap := watertank.Registers(), gaspipeline.Registers()
	tankMap.DecodePDU(&asTank, pdu, false)
	gasMap.DecodePDU(&asGas, pdu, false)
	if asTank == asGas {
		t.Fatal("gas and watertank register maps decoded a tank block identically")
	}
	if asTank.Pressure != 55.25 {
		t.Errorf("tank map level = %v, want 55.25", asTank.Pressure)
	}
	if asGas.Pressure == 55.25 {
		t.Error("gas map read the tank's level register as pressure")
	}
}
