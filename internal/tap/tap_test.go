package tap

import (
	"testing"
	"time"

	"icsdetect/internal/dataset"
	"icsdetect/internal/modbus"
)

// testRegisterMap is the gas-pipeline register layout, replicated locally:
// the tap package has no scenario dependency (scenario implementations
// import tap), so its tests pin an explicit layout instead.
func testRegisterMap() RegisterMap {
	return RegisterMap{
		Setpoint: 0, Gain: 1, ResetRate: 2, Deadband: 3, CycleTime: 4,
		Rate: 5, Mode: 6, Scheme: 7, Pump: 8, Solenoid: 9, Pressure: 10,
		MinRegisters: 10,
	}
}

// startStack brings up slave ← tap ← client and returns the pieces.
func startStack(t *testing.T) (*modbus.RegisterBank, *Proxy, *modbus.Client) {
	t.Helper()
	bank := modbus.NewRegisterBank(16, 4)
	srv := modbus.NewServer(bank, 4)
	slaveAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	proxy := New(slaveAddr.String(), testRegisterMap())
	tapAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	client, err := modbus.Dial(tapAddr, 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return bank, proxy, client
}

func TestProxyRelaysAndRecords(t *testing.T) {
	bank, proxy, client := startStack(t)

	// Write the parameter block through the tap.
	regs := []uint16{800, 45, 15, 5, 250, 2, 2, 0, 0, 0}
	if err := client.WriteMultipleRegisters(0, regs); err != nil {
		t.Fatal(err)
	}
	// The write must have reached the slave.
	snap := bank.Snapshot()
	if snap[0] != 800 || snap[6] != 2 {
		t.Fatalf("write not relayed: %v", snap[:10])
	}
	// Publish a pressure and read the full block back.
	if err := bank.StoreMeasurement(10, 812); err != nil {
		t.Fatal(err)
	}
	values, err := client.ReadHoldingRegisters(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if values[10] != 812 {
		t.Fatalf("read not relayed: %v", values)
	}

	pkgs := proxy.Drain()
	// write cmd, write ack, read cmd, read resp.
	if len(pkgs) != 4 {
		t.Fatalf("recorded %d packages, want 4", len(pkgs))
	}
	cmd := pkgs[0]
	if cmd.CmdResponse != 1 || cmd.Function != float64(modbus.FuncWriteMultipleRegs) {
		t.Errorf("first package = %+v", cmd)
	}
	if cmd.Setpoint != 8 || cmd.SystemMode != 2 {
		t.Errorf("decoded command fields: setpoint=%v mode=%v", cmd.Setpoint, cmd.SystemMode)
	}
	resp := pkgs[3]
	if resp.CmdResponse != 0 {
		t.Errorf("read response marked as command")
	}
	if resp.Pressure != 8.12 {
		t.Errorf("decoded pressure = %v, want 8.12", resp.Pressure)
	}
	// Timestamps monotone.
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i].Time < pkgs[i-1].Time {
			t.Error("timestamps decrease")
		}
	}
}

func TestProxySink(t *testing.T) {
	_, proxy, client := startStack(t)
	got := make(chan *dataset.Package, 16)
	proxy.SetSink(func(p *dataset.Package) { got <- p })

	if err := client.WriteSingleRegister(0, 700); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // command + ack
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatal("sink did not receive packages")
		}
	}
	// With a sink installed, Drain stays empty.
	if pkgs := proxy.Drain(); len(pkgs) != 0 {
		t.Errorf("drain returned %d packages despite sink", len(pkgs))
	}
}

// TestSetSinkFlushesBuffered: packages recorded before a sink is installed
// must be delivered to it on installation, in arrival order, ahead of live
// traffic — not stranded in the Drain buffer.
func TestSetSinkFlushesBuffered(t *testing.T) {
	_, proxy, client := startStack(t)

	// Two packages (command + ack) buffered with no sink installed.
	if err := client.WriteSingleRegister(0, 700); err != nil {
		t.Fatal(err)
	}
	got := make(chan *dataset.Package, 16)
	proxy.SetSink(func(p *dataset.Package) {
		// The flush runs outside the package lock, so a sink touching the
		// proxy (or blocking briefly) cannot stall frame relaying.
		proxy.Drain()
		got <- p
	})

	// The buffered pair arrives immediately, command first.
	first := <-got
	if first.CmdResponse != 1 {
		t.Errorf("flushed packages out of order: first has CmdResponse=%v", first.CmdResponse)
	}
	<-got
	if pkgs := proxy.Drain(); len(pkgs) != 0 {
		t.Errorf("drain returned %d packages after flush", len(pkgs))
	}

	// Live traffic keeps streaming to the same sink.
	if err := client.WriteSingleRegister(1, 45); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatal("sink did not receive live packages after flush")
		}
	}

	// Reverting to nil buffers again; a later sink flushes that too.
	proxy.SetSink(nil)
	if err := client.WriteSingleRegister(2, 9); err != nil {
		t.Fatal(err)
	}
	proxy.SetSink(func(p *dataset.Package) { got <- p })
	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatal("re-installed sink did not flush buffered packages")
		}
	}
}

// TestRecorderAndSinkSimultaneous: a frame recorder and a package sink must
// be attachable around the same buffered startup traffic without stealing
// each other's copies — the recorder flush must not drain the package
// buffer (the regression), and live traffic must reach both in order.
func TestRecorderAndSinkSimultaneous(t *testing.T) {
	_, proxy, client := startStack(t)

	// Two packages (command + ack) buffered with nothing attached.
	if err := client.WriteSingleRegister(0, 700); err != nil {
		t.Fatal(err)
	}

	type rec struct {
		fn    float64
		isCmd bool
		time  float64
	}
	frames := make(chan rec, 16)
	proxy.SetRecorder(func(raw []byte, isCmd bool, pkg *dataset.Package) {
		frame, err := modbus.DecodeTCP(raw)
		if err != nil {
			t.Errorf("recorded frame does not decode: %v", err)
			return
		}
		if float64(frame.PDU.Function) != pkg.Function {
			t.Errorf("frame function %d != package function %v", frame.PDU.Function, pkg.Function)
		}
		frames <- rec{fn: pkg.Function, isCmd: isCmd, time: pkg.Time}
	})

	// The recorder flush delivers the buffered pair, command first.
	first := <-frames
	if !first.isCmd {
		t.Error("flushed frames out of order: first is not the command")
	}
	second := <-frames
	if second.isCmd {
		t.Error("flushed frames out of order: second is the command")
	}
	if second.time < first.time {
		t.Error("recorded frame timestamps decrease")
	}

	// The package buffer must still hold both packages for the sink: the
	// recorder flush consumed only the frame view.
	pkgs := make(chan *dataset.Package, 16)
	proxy.SetSink(func(p *dataset.Package) { pkgs <- p })
	if p := <-pkgs; p.CmdResponse != 1 {
		t.Error("sink flush lost or reordered the buffered command package")
	}
	<-pkgs

	// Live traffic reaches both consumers.
	if err := client.WriteSingleRegister(1, 45); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-frames:
		case <-time.After(2 * time.Second):
			t.Fatal("recorder did not receive live frames")
		}
		select {
		case <-pkgs:
		case <-time.After(2 * time.Second):
			t.Fatal("sink did not receive live packages")
		}
	}
	if got := proxy.Drain(); len(got) != 0 {
		t.Errorf("drain returned %d packages with sink+recorder live", len(got))
	}

	// Detaching the recorder stops frame delivery but not the sink.
	proxy.SetRecorder(nil)
	if err := client.WriteSingleRegister(2, 9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-pkgs:
		case <-time.After(2 * time.Second):
			t.Fatal("sink stalled after recorder detach")
		}
	}
	select {
	case <-frames:
		t.Error("detached recorder still received frames")
	default:
	}
}

func TestRegisterMapPartialPayload(t *testing.T) {
	m := testRegisterMap()
	p := &dataset.Package{}
	m.decode(p, []uint16{800, 45}) // below MinRegisters
	if p.Setpoint != 0 {
		t.Error("partial payload decoded parameter fields")
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	proxy := New("127.0.0.1:1", testRegisterMap())
	if _, err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	proxy.Close()
	proxy.Close()
	if _, err := proxy.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close accepted")
	}
}
