package signature

import (
	"sort"

	"icsdetect/internal/dataset"
)

// DB is the signature database of normal package behaviour: the set S of
// all signatures observed in attack-free training traffic with their
// occurrence counts #(s) (needed by the probabilistic-noise trainer, §V-A-3)
// and a stable index assignment used as the LSTM softmax class space.
type DB struct {
	// Counts maps each signature to its training occurrence count.
	Counts map[string]int
	// List holds signatures sorted by descending count then lexicographic,
	// fixing the class index order.
	List []string
	// Index is the inverse of List.
	Index map[string]int
	// Total is the number of packages indexed.
	Total int
}

// BuildDB encodes all training fragments and collects the signature
// database.
func BuildDB(enc *Encoder, frags []dataset.Fragment) *DB {
	counts := make(map[string]int)
	total := 0
	for _, frag := range frags {
		var prev *dataset.Package
		for _, p := range frag {
			sig := Signature(enc.Encode(prev, p))
			counts[sig]++
			total++
			prev = p
		}
	}
	return newDB(counts, total)
}

func newDB(counts map[string]int, total int) *DB {
	list := make([]string, 0, len(counts))
	for s := range counts {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool {
		if counts[list[i]] != counts[list[j]] {
			return counts[list[i]] > counts[list[j]]
		}
		return list[i] < list[j]
	})
	index := make(map[string]int, len(list))
	for i, s := range list {
		index[s] = i
	}
	return &DB{Counts: counts, List: list, Index: index, Total: total}
}

// Size returns |S|, the number of unique signatures.
func (db *DB) Size() int { return len(db.List) }

// Contains reports whether sig is in the database.
func (db *DB) Contains(sig string) bool {
	_, ok := db.Counts[sig]
	return ok
}

// Count returns #(s), the number of training occurrences of sig.
func (db *DB) Count(sig string) int { return db.Counts[sig] }

// Intern returns the canonical string for the signature spelled in buf:
// database signatures resolve to their List entry without allocating (a map
// lookup keyed by string(buf) does not materialize the string), so only
// signatures outside S — the anomalous ones — cost a fresh string.
func (db *DB) Intern(buf []byte) string {
	if i, ok := db.Index[string(buf)]; ok {
		return db.List[i]
	}
	return string(buf)
}

// ClassOf returns the class index of sig and whether it exists.
func (db *DB) ClassOf(sig string) (int, bool) {
	i, ok := db.Index[sig]
	return i, ok
}

// ValidationError returns the proportion of packages in the validation
// fragments whose signature is absent from the database — the errv of
// §IV-B, the estimator of the package-level false positive rate.
func (db *DB) ValidationError(enc *Encoder, frags []dataset.Fragment) float64 {
	total, misses := 0, 0
	for _, frag := range frags {
		var prev *dataset.Package
		for _, p := range frag {
			sig := Signature(enc.Encode(prev, p))
			if !db.Contains(sig) {
				misses++
			}
			total++
			prev = p
		}
	}
	if total == 0 {
		return 0
	}
	return float64(misses) / float64(total)
}
