package signature

// Nearest returns the database signature with the smallest Hamming distance
// to c (fewest differing features), along with that distance and the indices
// of the differing features. Ties break toward the more frequent signature,
// then lexicographic order, so the result is deterministic.
//
// The detector's Explain uses this to tell an operator *which* features made
// a package anomalous — e.g. "pressure bucket 19 where bucket 7 was
// expected" — turning a raw alarm into an actionable diagnosis.
func (db *DB) Nearest(c []int) (sig string, distance int, differing []int) {
	bestDist := -1
	var bestSig string
	var bestDiff []int
	for _, cand := range db.List {
		cv, err := ParseSignature(cand)
		if err != nil || len(cv) != len(c) {
			continue
		}
		dist := 0
		for i := range c {
			if cv[i] != c[i] {
				dist++
				if bestDist >= 0 && dist > bestDist {
					break
				}
			}
		}
		if bestDist < 0 || dist < bestDist {
			bestDist = dist
			bestSig = cand
			bestDiff = nil
			for i := range c {
				if cv[i] != c[i] {
					bestDiff = append(bestDiff, i)
				}
			}
		}
	}
	return bestSig, bestDist, bestDiff
}
