package signature

import (
	"fmt"
	"strconv"
	"strings"

	"icsdetect/internal/dataset"
)

// FeatureKind identifies which raw columns a feature reads.
type FeatureKind int

// The feature set of the gas pipeline dataset (Table I, §VIII-A-1): nine
// continuous features (time interval, crc rate, setpoint, pressure, and the
// five PID parameters treated jointly) plus the discrete protocol columns.
const (
	KindInterval FeatureKind = iota + 1 // derived from consecutive timestamps
	KindCRCRate
	KindPressure
	KindSetpoint
	KindPID // 5-dimensional joint feature
	KindAddress
	KindFunction
	KindLength
	KindSystemMode
	KindControlScheme
	KindPump
	KindSolenoid
	KindCmdResponse
)

// String returns the dataset column name for the feature kind.
func (k FeatureKind) String() string {
	switch k {
	case KindInterval:
		return "time_interval"
	case KindCRCRate:
		return "crc_rate"
	case KindPressure:
		return "pressure_measurement"
	case KindSetpoint:
		return "setpoint"
	case KindPID:
		return "pid_parameters"
	case KindAddress:
		return "address"
	case KindFunction:
		return "function"
	case KindLength:
		return "length"
	case KindSystemMode:
		return "system_mode"
	case KindControlScheme:
		return "control_scheme"
	case KindPump:
		return "pump"
	case KindSolenoid:
		return "solenoid"
	case KindCmdResponse:
		return "command_response"
	default:
		return fmt.Sprintf("FeatureKind(%d)", int(k))
	}
}

// extractDim is the widest raw feature vector (the 5-element PID block).
const extractDim = 5

// extractInto writes the raw feature vector for kind into buf (len ≥
// extractDim) and returns the filled prefix. prev may be nil at fragment
// starts. Taking a caller buffer keeps the per-package classification path
// free of one allocation per feature; the discretizers read the slice and
// never retain it.
func extractInto(buf []float64, kind FeatureKind, prev, cur *dataset.Package) []float64 {
	switch kind {
	case KindInterval:
		buf[0] = dataset.Interval(prev, cur)
	case KindCRCRate:
		buf[0] = cur.CRCRate
	case KindPressure:
		buf[0] = cur.Pressure
	case KindSetpoint:
		buf[0] = cur.Setpoint
	case KindPID:
		buf[0], buf[1], buf[2], buf[3], buf[4] = cur.Gain, cur.ResetRate, cur.Deadband, cur.CycleTime, cur.Rate
		return buf[:5]
	case KindAddress:
		buf[0] = cur.Address
	case KindFunction:
		buf[0] = cur.Function
	case KindLength:
		buf[0] = cur.Length
	case KindSystemMode:
		buf[0] = cur.SystemMode
	case KindControlScheme:
		buf[0] = cur.ControlScheme
	case KindPump:
		buf[0] = cur.Pump
	case KindSolenoid:
		buf[0] = cur.Solenoid
	case KindCmdResponse:
		buf[0] = cur.CmdResponse
	default:
		panic(fmt.Sprintf("signature: unknown feature kind %d", int(kind)))
	}
	return buf[:1]
}

// extract returns the raw feature vector for kind as a fresh slice (the
// fitting paths keep the extracted columns).
func extract(kind FeatureKind, prev, cur *dataset.Package) []float64 {
	buf := make([]float64, extractDim)
	return extractInto(buf, kind, prev, cur)
}

// Feature pairs a raw feature with its fitted discretizer.
type Feature struct {
	Kind FeatureKind
	Disc Discretizer
}

// Encoder turns packages into discretized vectors c(t) and signatures
// s(x(t)). The feature order is fixed at fit time, making g(·) injective on
// discretized vectors.
type Encoder struct {
	Features []Feature
}

// Granularity is the tunable part of the discretization (the {n_1 … n_l} of
// §IV-B plus the K-means cluster counts of Table III).
type Granularity struct {
	IntervalClusters int // time interval K-means clusters (paper: 2)
	CRCClusters      int // crc rate K-means clusters (paper: 2)
	PressureBins     int // pressure even-interval bins (paper: 20)
	SetpointBins     int // setpoint even-interval bins (paper: 10)
	PIDClusters      int // joint PID K-means clusters (paper: 32)
}

// PaperGranularity returns the Table III strategy.
func PaperGranularity() Granularity {
	return Granularity{
		IntervalClusters: 2,
		CRCClusters:      2,
		PressureBins:     20,
		SetpointBins:     10,
		PIDClusters:      32,
	}
}

// Validate reports invalid granularity settings.
func (g Granularity) Validate() error {
	if g.IntervalClusters < 1 || g.CRCClusters < 1 || g.PressureBins < 1 ||
		g.SetpointBins < 1 || g.PIDClusters < 1 {
		return fmt.Errorf("signature: granularity values must all be >= 1: %+v", g)
	}
	return nil
}

// orderedKinds is the canonical feature order of the signature.
var orderedKinds = []FeatureKind{
	KindAddress, KindFunction, KindLength, KindCmdResponse,
	KindSystemMode, KindControlScheme, KindPump, KindSolenoid,
	KindInterval, KindCRCRate, KindSetpoint, KindPressure, KindPID,
}

// FitEncoder fits all discretizers on attack-free training fragments with
// the given granularity.
func FitEncoder(frags []dataset.Fragment, g Granularity, seed uint64) (*Encoder, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(frags) == 0 {
		return nil, fmt.Errorf("signature: no training fragments")
	}

	// Collect raw feature columns, respecting fragment boundaries for the
	// interval feature.
	columns := make(map[FeatureKind][][]float64, len(orderedKinds))
	for _, frag := range frags {
		var prev *dataset.Package
		for _, p := range frag {
			for _, kind := range orderedKinds {
				columns[kind] = append(columns[kind], extract(kind, prev, p))
			}
			prev = p
		}
	}
	scalar := func(kind FeatureKind) []float64 {
		rows := columns[kind]
		out := make([]float64, len(rows))
		for i, r := range rows {
			out[i] = r[0]
		}
		return out
	}

	enc := &Encoder{Features: make([]Feature, 0, len(orderedKinds))}
	for i, kind := range orderedKinds {
		var (
			disc Discretizer
			err  error
		)
		seedK := seed + uint64(i)*0x9E37
		switch kind {
		case KindInterval:
			disc, err = FitKMeansDisc(columns[kind], g.IntervalClusters, seedK)
		case KindCRCRate:
			disc, err = FitKMeansDisc(columns[kind], g.CRCClusters, seedK)
		case KindPID:
			disc, err = FitKMeansDisc(columns[kind], g.PIDClusters, seedK)
		case KindPressure:
			disc, err = FitIntervalDisc(scalar(kind), g.PressureBins)
		case KindSetpoint:
			disc, err = FitIntervalDisc(scalar(kind), g.SetpointBins)
		default:
			disc, err = FitCategoricalDisc(scalar(kind))
		}
		if err != nil {
			return nil, fmt.Errorf("signature: fit %v: %w", kind, err)
		}
		enc.Features = append(enc.Features, Feature{Kind: kind, Disc: disc})
	}
	return enc, nil
}

// Dim returns the number of elements in the discretized vector c(t).
func (e *Encoder) Dim() int { return len(e.Features) }

// Buckets returns the per-feature bucket counts (each includes its
// out-of-range bucket), used to size the one-hot encoding.
func (e *Encoder) Buckets() []int {
	out := make([]int, len(e.Features))
	for i, f := range e.Features {
		out[i] = f.Disc.Buckets()
	}
	return out
}

// Encode produces the discretized vector c(t) for cur given the previous
// package in its fragment (nil at fragment start). The raw feature values
// pass through a stack buffer — the per-package hot path allocates only
// the returned vector.
func (e *Encoder) Encode(prev, cur *dataset.Package) []int {
	c := make([]int, len(e.Features))
	e.EncodeInto(c, prev, cur)
	return c
}

// EncodeInto writes the discretized vector c(t) into dst, whose length must
// be len(e.Features). It is Encode without the allocation: streaming
// sessions reuse one buffer per stream, keeping the per-package hot path
// allocation-free.
func (e *Encoder) EncodeInto(dst []int, prev, cur *dataset.Package) {
	if len(dst) != len(e.Features) {
		panic(fmt.Sprintf("signature: encode into vector of %d, want %d", len(dst), len(e.Features)))
	}
	var buf [extractDim]float64
	for i, f := range e.Features {
		dst[i] = discretize(f.Disc, extractInto(buf[:], f.Kind, prev, cur))
	}
}

// discretize dispatches to the built-in discretizers with concrete calls.
// None of them retain v, which escape analysis can only see past the
// interface when the call is devirtualized — the type switch is what keeps
// EncodeInto's scratch buffer on the stack. Unknown implementations get a
// defensive copy so v itself still never leaks.
func discretize(d Discretizer, v []float64) int {
	switch d := d.(type) {
	case *KMeansDisc:
		return d.Discretize(v)
	case *IntervalDisc:
		return d.Discretize(v)
	case *CategoricalDisc:
		return d.Discretize(v)
	default:
		cp := make([]float64, len(v))
		copy(cp, v)
		return d.Discretize(cp)
	}
}

// EncodeFragment encodes every package of a fragment.
func (e *Encoder) EncodeFragment(frag dataset.Fragment) [][]int {
	out := make([][]int, len(frag))
	var prev *dataset.Package
	for i, p := range frag {
		out[i] = e.Encode(prev, p)
		prev = p
	}
	return out
}

// Signature implements the generating function g(·): the discretized values
// joined with a separator, which assigns a unique string to each distinct
// combination (paper §IV-A).
func Signature(c []int) string {
	return string(AppendSignature(make([]byte, 0, len(c)*3), c))
}

// AppendSignature appends the signature spelling of c to dst and returns the
// extended buffer. Streaming sessions build signatures into a reusable
// buffer and intern known ones against the database (DB.Intern), so the
// per-package hot path allocates only for signatures outside S.
func AppendSignature(dst []byte, c []int) []byte {
	for i, v := range c {
		if i > 0 {
			dst = append(dst, ':')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return dst
}

// ParseSignature inverts Signature; used by tests to verify injectivity.
func ParseSignature(s string) ([]int, error) {
	parts := strings.Split(s, ":")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("signature: parse %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}
