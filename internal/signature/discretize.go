// Package signature implements the package-signature layer of the paper:
// feature discretization (§IV-A/B, Table III), the injective signature
// generating function g(·), the signature database with occurrence counts
// (needed by the probabilistic-noise trainer), and the granularity search
// that picks the most fine-grained discretization below an acceptable
// validation false-positive rate (Fig. 5).
package signature

import (
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"icsdetect/internal/cluster"
)

// Discretizer maps a (possibly multi-dimensional) continuous feature to a
// discrete bucket. Every discretizer reserves one extra bucket — index
// Buckets()-1 — for out-of-range values, per the paper: "we also assign an
// additional discrete value to each feature to represent those values that
// cannot be assigned to any of the clusters or intervals".
type Discretizer interface {
	// Buckets returns the number of discrete values including the
	// out-of-range bucket.
	Buckets() int
	// Discretize maps the raw feature vector to a bucket in [0, Buckets()).
	Discretize(v []float64) int
	// Dims returns the input dimensionality.
	Dims() int
}

// KMeansDisc discretizes by nearest centroid with a radius bound
// ("K-means clustering" rows of Table III).
type KMeansDisc struct {
	Model *cluster.KMeans
}

var _ Discretizer = (*KMeansDisc)(nil)

// FitKMeansDisc clusters the training values into k groups.
func FitKMeansDisc(points [][]float64, k int, seed uint64) (*KMeansDisc, error) {
	model, err := cluster.Fit(points, cluster.Config{K: k, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("signature: fit kmeans discretizer: %w", err)
	}
	return &KMeansDisc{Model: model}, nil
}

// Buckets returns K+1 (clusters plus the out-of-range bucket).
func (d *KMeansDisc) Buckets() int { return d.Model.K() + 1 }

// Dims returns the centroid dimensionality.
func (d *KMeansDisc) Dims() int {
	if d.Model.K() == 0 {
		return 0
	}
	return len(d.Model.Centroids[0])
}

// Discretize assigns v to its nearest centroid, or the out-of-range bucket
// when it is farther than the cluster radius from all centroids.
func (d *KMeansDisc) Discretize(v []float64) int {
	if j := d.Model.AssignBounded(v); j >= 0 {
		return j
	}
	return d.Model.K()
}

// IntervalDisc discretizes by even-interval partition of the observed
// training range ("Even interval partition" rows of Table III).
type IntervalDisc struct {
	Lo, Hi float64
	Bins   int
	// Slack widens the accepted range by Slack*(Hi-Lo) on each side before
	// a value is declared out of range, absorbing benign extrapolation.
	Slack float64
}

var _ Discretizer = (*IntervalDisc)(nil)

// FitIntervalDisc builds an even partition of [min, max] of values.
func FitIntervalDisc(values []float64, bins int) (*IntervalDisc, error) {
	if len(values) == 0 {
		return nil, cluster.ErrNoData
	}
	if bins < 1 {
		return nil, fmt.Errorf("signature: interval bins must be >= 1, got %d", bins)
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	return &IntervalDisc{Lo: lo, Hi: hi, Bins: bins, Slack: 0.05}, nil
}

// Buckets returns Bins+1.
func (d *IntervalDisc) Buckets() int { return d.Bins + 1 }

// Dims returns 1.
func (d *IntervalDisc) Dims() int { return 1 }

// Discretize maps v[0] into its interval, or the out-of-range bucket.
func (d *IntervalDisc) Discretize(v []float64) int {
	x := v[0]
	span := d.Hi - d.Lo
	if x < d.Lo-d.Slack*span || x > d.Hi+d.Slack*span {
		return d.Bins
	}
	i := int(float64(d.Bins) * (x - d.Lo) / span)
	if i < 0 {
		i = 0
	}
	if i >= d.Bins {
		i = d.Bins - 1
	}
	return i
}

// CategoricalDisc maps each distinct observed value to its own bucket;
// unseen values go to the out-of-range bucket. Used for the discrete Table I
// columns (address, function code, length, modes, coils).
type CategoricalDisc struct {
	// Values holds the observed domain, sorted ascending for determinism.
	Values []float64
}

var _ Discretizer = (*CategoricalDisc)(nil)

// FitCategoricalDisc collects the distinct values of the training data.
func FitCategoricalDisc(values []float64) (*CategoricalDisc, error) {
	if len(values) == 0 {
		return nil, cluster.ErrNoData
	}
	seen := make(map[float64]struct{})
	for _, v := range values {
		seen[v] = struct{}{}
	}
	domain := make([]float64, 0, len(seen))
	for v := range seen {
		domain = append(domain, v)
	}
	sort.Float64s(domain)
	return &CategoricalDisc{Values: domain}, nil
}

// Buckets returns |domain|+1.
func (d *CategoricalDisc) Buckets() int { return len(d.Values) + 1 }

// Dims returns 1.
func (d *CategoricalDisc) Dims() int { return 1 }

// Discretize finds v[0] in the domain (binary search with a tolerance for
// float jitter), or returns the out-of-range bucket.
func (d *CategoricalDisc) Discretize(v []float64) int {
	x := v[0]
	i := sort.SearchFloat64s(d.Values, x)
	const eps = 1e-9
	if i < len(d.Values) && math.Abs(d.Values[i]-x) <= eps {
		return i
	}
	if i > 0 && math.Abs(d.Values[i-1]-x) <= eps {
		return i - 1
	}
	return len(d.Values)
}

func init() {
	// Register concrete discretizers so Encoder round-trips through gob.
	gob.Register(&KMeansDisc{})
	gob.Register(&IntervalDisc{})
	gob.Register(&CategoricalDisc{})
}
