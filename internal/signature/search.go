package signature

import (
	"fmt"

	"icsdetect/internal/dataset"
)

// SearchConfig drives the granularity search of §IV-B: choose
//
//	argmax Σ w_i · n_i   subject to   errv = f(n_1 … n_l) < θ
//
// over a grid of candidate granularities for the features without natural
// clusters (pressure, setpoint, PID), holding the naturally clustered
// features (time interval, crc rate) at their K-means counts.
type SearchConfig struct {
	// Theta is the acceptable validation false-positive rate θ.
	Theta float64
	// PressureGrid, SetpointGrid and PIDGrid are the candidate bucket
	// counts. Defaults mirror the sweep behind the paper's Fig. 5.
	PressureGrid, SetpointGrid, PIDGrid []int
	// WPressure, WSetpoint, WPID are the weights w_i expressing relative
	// importance of each feature's granularity. The paper weights pressure
	// above setpoint ("we think the discretization granularity of pressure
	// measurement is more important than setpoint").
	WPressure, WSetpoint, WPID float64
	// IntervalClusters and CRCClusters fix the naturally clustered
	// features (paper: 2 and 2).
	IntervalClusters, CRCClusters int
	// Seed drives K-means initialization.
	Seed uint64
}

// DefaultSearchConfig mirrors the paper's setup: θ=0.03, pressure weighted
// twice setpoint, interval/crc fixed at 2 clusters.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		Theta:            0.03,
		PressureGrid:     []int{4, 8, 15, 20},
		SetpointGrid:     []int{3, 5, 10},
		PIDGrid:          []int{2, 8, 32},
		WPressure:        2,
		WSetpoint:        1,
		WPID:             0.5,
		IntervalClusters: 2,
		CRCClusters:      2,
	}
}

// SearchPoint records one evaluated granularity (a point on Fig. 5).
type SearchPoint struct {
	Granularity Granularity
	Score       float64 // Σ w_i n_i
	Errv        float64 // validation error
	Signatures  int     // |S| at this granularity
	Feasible    bool    // errv < θ
}

// SearchResult is the outcome of the granularity search.
type SearchResult struct {
	Best        Granularity
	BestDB      *DB
	BestEncoder *Encoder
	// Points holds every evaluated granularity for plotting Fig. 5.
	Points []SearchPoint
}

// Search evaluates the grid and returns the feasible granularity with the
// highest weighted score, together with the full evaluation trace.
func Search(train, validation []dataset.Fragment, cfg SearchConfig) (*SearchResult, error) {
	if cfg.Theta <= 0 {
		return nil, fmt.Errorf("signature: search theta must be positive, got %g", cfg.Theta)
	}
	if len(cfg.PressureGrid) == 0 || len(cfg.SetpointGrid) == 0 || len(cfg.PIDGrid) == 0 {
		return nil, fmt.Errorf("signature: empty search grid")
	}
	res := &SearchResult{}
	bestScore := -1.0
	for _, pb := range cfg.PressureGrid {
		for _, sb := range cfg.SetpointGrid {
			for _, pk := range cfg.PIDGrid {
				g := Granularity{
					IntervalClusters: cfg.IntervalClusters,
					CRCClusters:      cfg.CRCClusters,
					PressureBins:     pb,
					SetpointBins:     sb,
					PIDClusters:      pk,
				}
				enc, err := FitEncoder(train, g, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("signature: search at %+v: %w", g, err)
				}
				db := BuildDB(enc, train)
				errv := db.ValidationError(enc, validation)
				score := cfg.WPressure*float64(pb) + cfg.WSetpoint*float64(sb) + cfg.WPID*float64(pk)
				pt := SearchPoint{
					Granularity: g,
					Score:       score,
					Errv:        errv,
					Signatures:  db.Size(),
					Feasible:    errv < cfg.Theta,
				}
				res.Points = append(res.Points, pt)
				if pt.Feasible && score > bestScore {
					bestScore = score
					res.Best = g
					res.BestDB = db
					res.BestEncoder = enc
				}
			}
		}
	}
	if bestScore < 0 {
		// No feasible point: fall back to the coarsest granularity (lowest
		// errv wins ties), so callers always get a usable encoder.
		var fallback *SearchPoint
		for i := range res.Points {
			if fallback == nil || res.Points[i].Errv < fallback.Errv {
				fallback = &res.Points[i]
			}
		}
		enc, err := FitEncoder(train, fallback.Granularity, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Best = fallback.Granularity
		res.BestEncoder = enc
		res.BestDB = BuildDB(enc, train)
	}
	return res, nil
}
