package signature

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
)

// syntheticFragments builds plausible traffic for encoder tests.
func syntheticFragments(rng *mathx.RNG, n int) []dataset.Fragment {
	var frag dataset.Fragment
	setpoints := []float64{6, 8, 10}
	sp := setpoints[0]
	tm := 0.0
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.02) {
			sp = setpoints[rng.Intn(len(setpoints))]
		}
		isCmd := i%2 == 0
		fn, ln := 16.0, 29.0
		if !isCmd {
			fn, ln = 65, 27
		}
		tm += 0.01 + rng.Float64()*0.2
		frag = append(frag, &dataset.Package{
			Address: 4, Function: fn, Length: ln,
			CmdResponse: boolTo01(isCmd),
			Setpoint:    sp, Gain: 0.45, ResetRate: 0.15,
			Deadband: 0.05, CycleTime: 0.25, Rate: 0.02,
			SystemMode: 2, Pressure: sp + rng.NormScaled(0, 0.4),
			CRCRate: 0, Time: tm,
		})
	}
	return []dataset.Fragment{frag}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func testGranularity() Granularity {
	return Granularity{
		IntervalClusters: 2, CRCClusters: 1,
		PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
	}
}

func TestFitEncoderBasics(t *testing.T) {
	rng := mathx.NewRNG(1)
	frags := syntheticFragments(rng, 500)
	enc, err := FitEncoder(frags, testGranularity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Dim() != len(orderedKinds) {
		t.Errorf("Dim = %d, want %d", enc.Dim(), len(orderedKinds))
	}
	buckets := enc.Buckets()
	for i, b := range buckets {
		if b < 2 {
			t.Errorf("feature %v has %d buckets (need value + out-of-range)",
				enc.Features[i].Kind, b)
		}
	}
	// Every training package must discretize without landing entirely in
	// out-of-range buckets.
	var prev *dataset.Package
	for _, p := range frags[0] {
		c := enc.Encode(prev, p)
		for fi, v := range c {
			if v < 0 || v >= buckets[fi] {
				t.Fatalf("bucket out of range: feature %d value %d", fi, v)
			}
		}
		prev = p
	}
}

func TestFitEncoderErrors(t *testing.T) {
	if _, err := FitEncoder(nil, testGranularity(), 1); err == nil {
		t.Error("no fragments accepted")
	}
	rng := mathx.NewRNG(2)
	frags := syntheticFragments(rng, 50)
	bad := testGranularity()
	bad.PressureBins = 0
	if _, err := FitEncoder(frags, bad, 1); err == nil {
		t.Error("invalid granularity accepted")
	}
}

// TestSignatureInjective: g(c) = g(c') ⇔ c = c', the defining property of
// the signature generating function (paper §IV-A).
func TestSignatureInjective(t *testing.T) {
	f := func(a, b []int) bool {
		// Restrict to plausible bucket values.
		for i := range a {
			if a[i] < 0 {
				a[i] = -a[i]
			}
			a[i] %= 100
		}
		for i := range b {
			if b[i] < 0 {
				b[i] = -b[i]
			}
			b[i] %= 100
		}
		sa, sb := Signature(a), Signature(b)
		equal := len(a) == len(b)
		if equal {
			for i := range a {
				if a[i] != b[i] {
					equal = false
					break
				}
			}
		}
		return (sa == sb) == equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSignatureParseRoundTrip(t *testing.T) {
	c := []int{0, 5, 12, 3, 1}
	back, err := ParseSignature(Signature(c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if back[i] != c[i] {
			t.Fatalf("round trip mismatch: %v vs %v", back, c)
		}
	}
	if _, err := ParseSignature("1:x:3"); err == nil {
		t.Error("bad signature parsed")
	}
}

func TestDBCountsAndValidation(t *testing.T) {
	rng := mathx.NewRNG(3)
	frags := syntheticFragments(rng, 600)
	enc, err := FitEncoder(frags, testGranularity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	db := BuildDB(enc, frags)
	if db.Total != 600 {
		t.Errorf("Total = %d", db.Total)
	}
	var sum int
	for _, c := range db.Counts {
		sum += c
	}
	if sum != 600 {
		t.Errorf("counts sum to %d", sum)
	}
	// List is sorted by descending count.
	for i := 1; i < len(db.List); i++ {
		if db.Counts[db.List[i-1]] < db.Counts[db.List[i]] {
			t.Fatal("List not sorted by count")
		}
	}
	// Index inverts List.
	for i, s := range db.List {
		if idx, ok := db.ClassOf(s); !ok || idx != i {
			t.Fatalf("Index[%q] = %d, want %d", s, idx, i)
		}
	}
	// The training data validates against itself with zero error.
	if errv := db.ValidationError(enc, frags); errv != 0 {
		t.Errorf("self validation error = %v", errv)
	}
}

func TestValidationErrorDetectsNovelty(t *testing.T) {
	rng := mathx.NewRNG(4)
	train := syntheticFragments(rng, 400)
	enc, err := FitEncoder(train, testGranularity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	db := BuildDB(enc, train)

	// A validation fragment at absurd pressures must miss the database.
	weird := make(dataset.Fragment, 20)
	for i := range weird {
		p := *train[0][i]
		p.Pressure = 19.9 // far outside the synthetic operating band
		weird[i] = &p
	}
	if errv := db.ValidationError(enc, []dataset.Fragment{weird}); errv < 0.9 {
		t.Errorf("novel traffic validation error = %v, want ~1", errv)
	}
}

func TestDiscretizers(t *testing.T) {
	// Interval.
	id, err := FitIntervalDisc([]float64{0, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if id.Buckets() != 6 {
		t.Errorf("interval buckets = %d", id.Buckets())
	}
	if b := id.Discretize([]float64{0.5}); b != 0 {
		t.Errorf("low value bucket = %d", b)
	}
	if b := id.Discretize([]float64{9.9}); b != 4 {
		t.Errorf("high value bucket = %d", b)
	}
	if b := id.Discretize([]float64{50}); b != 5 {
		t.Errorf("out-of-range bucket = %d, want %d", b, 5)
	}
	if _, err := FitIntervalDisc(nil, 3); err == nil {
		t.Error("empty interval fit accepted")
	}

	// Categorical.
	cd, err := FitCategoricalDisc([]float64{1, 2, 2, 16, 65})
	if err != nil {
		t.Fatal(err)
	}
	if cd.Buckets() != 5 { // 4 distinct + OOR
		t.Errorf("categorical buckets = %d", cd.Buckets())
	}
	if cd.Discretize([]float64{16}) == cd.Discretize([]float64{65}) {
		t.Error("distinct values share a bucket")
	}
	if b := cd.Discretize([]float64{99}); b != 4 {
		t.Errorf("unseen categorical bucket = %d", b)
	}

	// KMeans.
	kd, err := FitKMeansDisc([][]float64{{0}, {0.1}, {10}, {10.1}}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kd.Buckets() != 3 {
		t.Errorf("kmeans buckets = %d", kd.Buckets())
	}
	if kd.Discretize([]float64{0.05}) == kd.Discretize([]float64{10.05}) {
		t.Error("separated values share a cluster")
	}
	if b := kd.Discretize([]float64{500}); b != 2 {
		t.Errorf("out-of-range kmeans bucket = %d", b)
	}
}

func TestEncoderGobRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(5)
	frags := syntheticFragments(rng, 300)
	enc, err := FitEncoder(frags, testGranularity(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		t.Fatal(err)
	}
	var back Encoder
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	// Same encodings for the same packages.
	var prev *dataset.Package
	for _, p := range frags[0][:50] {
		a := enc.Encode(prev, p)
		b := back.Encode(prev, p)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("gob round trip changed encoding at feature %d", i)
			}
		}
		prev = p
	}
}

func TestSearchPrefersFineFeasible(t *testing.T) {
	rng := mathx.NewRNG(6)
	train := syntheticFragments(rng, 800)
	validation := syntheticFragments(mathx.NewRNG(7), 300)
	cfg := DefaultSearchConfig()
	cfg.Theta = 0.4 // generous: everything feasible on synthetic data
	cfg.PressureGrid = []int{2, 4}
	cfg.SetpointGrid = []int{2, 3}
	cfg.PIDGrid = []int{2}
	res, err := Search(train, validation, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// With everything feasible, the highest weighted score (finest grid)
	// must win.
	if res.Best.PressureBins != 4 || res.Best.SetpointBins != 3 {
		t.Errorf("best = %+v, want finest", res.Best)
	}
	if res.BestDB == nil || res.BestEncoder == nil {
		t.Error("missing best artifacts")
	}
}

func TestSearchFallbackWhenInfeasible(t *testing.T) {
	rng := mathx.NewRNG(8)
	train := syntheticFragments(rng, 200)
	validation := syntheticFragments(mathx.NewRNG(9), 200)
	cfg := DefaultSearchConfig()
	cfg.Theta = 1e-9 // nothing can be feasible
	cfg.PressureGrid = []int{2, 3}
	cfg.SetpointGrid = []int{2}
	cfg.PIDGrid = []int{2}
	res, err := Search(train, validation, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEncoder == nil || res.BestDB == nil {
		t.Fatal("fallback did not produce a usable encoder")
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(nil, nil, SearchConfig{Theta: 0}); err == nil {
		t.Error("zero theta accepted")
	}
	if _, err := Search(nil, nil, SearchConfig{Theta: 0.1}); err == nil {
		t.Error("empty grid accepted")
	}
}
