package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"icsdetect/internal/mathx"
)

func gaussianBlobs(rng *mathx.RNG, centers [][]float64, perCluster int, std float64) [][]float64 {
	var pts [][]float64
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			p := make([]float64, len(c))
			for d := range c {
				p[d] = c[d] + rng.NormScaled(0, std)
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestFitSeparatedBlobs(t *testing.T) {
	rng := mathx.NewRNG(1)
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	pts := gaussianBlobs(rng, centers, 100, 0.5)
	km, err := Fit(pts, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if km.K() != 3 {
		t.Fatalf("K = %d", km.K())
	}
	// Every true center must be within 1 unit of some fitted centroid.
	for _, c := range centers {
		best := math.Inf(1)
		for _, fc := range km.Centroids {
			if d := math.Sqrt(distSq(c, fc)); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Errorf("no centroid near %v (closest %.2f)", c, best)
		}
	}
}

// TestAssignIsNearest is the core K-means invariant: Assign returns the
// centroid minimizing Euclidean distance.
func TestAssignIsNearest(t *testing.T) {
	rng := mathx.NewRNG(2)
	pts := gaussianBlobs(rng, [][]float64{{0}, {5}, {12}}, 60, 1)
	km, err := Fit(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 30)
		got := km.Assign([]float64{v})
		best, bestD := -1, math.Inf(1)
		for j, c := range km.Centroids {
			if d := math.Abs(c[0] - v); d < bestD {
				best, bestD = j, d
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAssignBoundedOutOfRange(t *testing.T) {
	rng := mathx.NewRNG(3)
	pts := gaussianBlobs(rng, [][]float64{{0}, {10}}, 50, 0.2)
	km, err := Fit(pts, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if km.AssignBounded1D(0.1) < 0 {
		t.Error("in-range value rejected")
	}
	if km.AssignBounded1D(100) != -1 {
		t.Error("far value accepted")
	}
	if km.AssignBounded1D(-50) != -1 {
		t.Error("far negative value accepted")
	}
}

func TestFitReducesKForFewDistinct(t *testing.T) {
	pts := [][]float64{{1}, {1}, {1}, {2}, {2}}
	km, err := Fit(pts, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if km.K() != 2 {
		t.Fatalf("K = %d, want 2 (distinct points)", km.K())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Fit([][]float64{{1}}, Config{K: 0}); err == nil {
		t.Error("K=0 should error")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, Config{K: 1}); err == nil {
		t.Error("ragged points should error")
	}
}

func TestFit1D(t *testing.T) {
	km, err := Fit1D([]float64{1, 1.1, 0.9, 10, 10.2, 9.8}, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if km.Assign1D(1.05) == km.Assign1D(10.1) {
		t.Error("clearly separated values assigned to the same cluster")
	}
}

// TestInertiaNotWorseThanSingleCluster: more clusters cannot increase the
// optimal inertia; K-means with k=2 must do at least as well as k=1 on
// bimodal data.
func TestInertiaNotWorseThanSingleCluster(t *testing.T) {
	rng := mathx.NewRNG(4)
	pts := gaussianBlobs(rng, [][]float64{{0}, {8}}, 100, 0.5)
	km1, err := Fit(pts, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	km2, err := Fit(pts, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if km2.Inertia >= km1.Inertia {
		t.Errorf("inertia k=2 (%v) >= k=1 (%v)", km2.Inertia, km1.Inertia)
	}
}

func TestSingletonClusterRadius(t *testing.T) {
	// A cluster holding one point gets a tiny positive radius so exact
	// re-observations stay in range.
	pts := [][]float64{{1}, {100}}
	km, err := Fit(pts, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if km.AssignBounded1D(1) == -1 {
		t.Error("training point itself out of range")
	}
	if km.AssignBounded1D(50) != -1 {
		t.Error("midpoint should be out of range for singleton clusters")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := mathx.NewRNG(5)
	pts := gaussianBlobs(rng, [][]float64{{0, 0}, {5, 5}}, 50, 1)
	a, err := Fit(pts, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(pts, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatal("same seed produced different centroids")
			}
		}
	}
}
