// Package cluster implements K-means clustering used by the signature layer
// to discretize continuous package features (paper §IV-B, Table III). It
// supports 1-dimensional and N-dimensional inputs, k-means++ seeding,
// empty-cluster reseeding, and an "out-of-range" radius so that values far
// from every centroid can be routed to an extra discrete bucket, as the
// paper requires for robustness to out-of-distribution feature values.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// ErrNoData is returned when clustering is attempted on an empty dataset.
var ErrNoData = errors.New("cluster: no data points")

// KMeans holds the result of a K-means fit.
type KMeans struct {
	// Centroids is the k x dim matrix of cluster centers.
	Centroids [][]float64
	// Radius[i] is the maximum distance from centroid i to any training
	// point assigned to it, times the configured slack. Values farther than
	// Radius from their nearest centroid are "out of range".
	Radius []float64
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config controls a K-means fit.
type Config struct {
	K        int     // number of clusters (required, >= 1)
	MaxIter  int     // maximum Lloyd iterations (default 50)
	Tol      float64 // relative inertia improvement to keep iterating (default 1e-6)
	Seed     uint64  // RNG seed for k-means++ initialization
	RadScale float64 // slack multiplier applied to cluster radii (default 1.25)
}

func (c *Config) defaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.RadScale <= 0 {
		c.RadScale = 1.5
	}
}

// Fit runs K-means on points (each of equal dimension) and returns the fitted
// model. If there are fewer distinct points than K, the effective number of
// clusters is reduced to the number of distinct points.
func Fit(points [][]float64, cfg Config) (*KMeans, error) {
	cfg.defaults()
	if len(points) == 0 {
		return nil, ErrNoData
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K must be >= 1, got %d", cfg.K)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	k := cfg.K
	if n := countDistinct(points); k > n {
		k = n
	}

	rng := mathx.NewRNG(cfg.Seed)
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	prevInertia := math.Inf(1)
	var inertia float64
	iters := 0

	for iter := 0; iter < cfg.MaxIter; iter++ {
		iters = iter + 1
		// Assignment step.
		inertia = 0
		for i, p := range points {
			j, d2 := nearest(centroids, p)
			assign[i] = j
			inertia += d2
		}
		// Update step.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for j := range sums {
			sums[j] = make([]float64, dim)
		}
		for i, p := range points {
			j := assign[i]
			counts[j]++
			mathx.Axpy(sums[j], 1, p)
		}
		for j := range centroids {
			if counts[j] == 0 {
				// Reseed an empty cluster at the point farthest from its
				// centroid, the standard remedy for Lloyd degeneracy.
				centroids[j] = cloneVec(points[farthestPoint(points, centroids, assign)])
				continue
			}
			inv := 1 / float64(counts[j])
			for d := 0; d < dim; d++ {
				centroids[j][d] = sums[j][d] * inv
			}
		}
		if prevInertia-inertia <= cfg.Tol*math.Max(prevInertia, 1) {
			break
		}
		prevInertia = inertia
	}

	// Final assignment and radius computation.
	radius := make([]float64, k)
	inertia = 0
	for _, p := range points {
		j, d2 := nearest(centroids, p)
		inertia += d2
		if d := math.Sqrt(d2); d > radius[j] {
			radius[j] = d
		}
	}
	for j := range radius {
		radius[j] *= cfg.RadScale
		if radius[j] == 0 {
			// Singleton clusters accept only (near-)exact matches; allow a
			// small absolute tolerance so float jitter does not spill into
			// the out-of-range bucket.
			radius[j] = 1e-9
		}
	}
	return &KMeans{
		Centroids:  centroids,
		Radius:     radius,
		Inertia:    inertia,
		Iterations: iters,
	}, nil
}

// Fit1D clusters scalar values; a convenience wrapper around Fit.
func Fit1D(values []float64, cfg Config) (*KMeans, error) {
	points := make([][]float64, len(values))
	for i, v := range values {
		points[i] = []float64{v}
	}
	return Fit(points, cfg)
}

// K returns the number of clusters in the fitted model.
func (km *KMeans) K() int { return len(km.Centroids) }

// Assign returns the index of the nearest centroid to p.
func (km *KMeans) Assign(p []float64) int {
	j, _ := nearest(km.Centroids, p)
	return j
}

// Assign1D returns the index of the nearest centroid to scalar v.
func (km *KMeans) Assign1D(v float64) int {
	return km.Assign([]float64{v})
}

// AssignBounded returns the nearest centroid index, or -1 if p lies farther
// than the cluster radius from every centroid (the "out-of-range" bucket used
// by the signature layer).
func (km *KMeans) AssignBounded(p []float64) int {
	j, d2 := nearest(km.Centroids, p)
	if math.Sqrt(d2) > km.Radius[j] {
		return -1
	}
	return j
}

// AssignBounded1D is AssignBounded for scalar values.
func (km *KMeans) AssignBounded1D(v float64) int {
	return km.AssignBounded([]float64{v})
}

func nearest(centroids [][]float64, p []float64) (idx int, d2 float64) {
	idx, d2 = 0, distSq(centroids[0], p)
	for j := 1; j < len(centroids); j++ {
		if d := distSq(centroids[j], p); d < d2 {
			idx, d2 = j, d
		}
	}
	return idx, d2
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// seedPlusPlus implements k-means++ initialization: the first centroid is
// uniform, each subsequent centroid is sampled with probability proportional
// to its squared distance from the nearest existing centroid.
func seedPlusPlus(points [][]float64, k int, rng *mathx.RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, cloneVec(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			_, d := nearest(centroids, p)
			d2[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with existing centroids.
			centroids = append(centroids, cloneVec(points[rng.Intn(len(points))]))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, cloneVec(points[pick]))
	}
	return centroids
}

func farthestPoint(points, centroids [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		d := distSq(centroids[assign[i]], p)
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func countDistinct(points [][]float64) int {
	seen := make(map[string]struct{}, len(points))
	var key []byte
	for _, p := range points {
		key = key[:0]
		for _, v := range p {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(bits>>s))
			}
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}
