package baselines

import (
	"math"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

// stageFixture builds the shared split/encoder fixture the streaming-stage
// tests train against.
type stageFixture struct {
	fw    *core.Framework
	split *dataset.Split
}

var sharedStageFixture *stageFixture

func loadStageFixture(t *testing.T) *stageFixture {
	t.Helper()
	if sharedStageFixture != nil {
		return sharedStageFixture
	}
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(8000, 11))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	g := signature.Granularity{IntervalClusters: 2, CRCClusters: 2, PressureBins: 5, SetpointBins: 3, PIDClusters: 2}
	enc, err := signature.FitEncoder(split.Train, g, 1)
	if err != nil {
		t.Fatalf("fit encoder: %v", err)
	}
	// The window levels only consult the framework's encoder at train and
	// build time, so a minimal framework carries the fixture.
	sharedStageFixture = &stageFixture{fw: &core.Framework{Encoder: enc}, split: split}
	return sharedStageFixture
}

// trainStage fits one promoted level and wraps it as a streaming stage.
func trainStage(t *testing.T, fx *stageFixture, wk windowKind) (*WindowModel, *WindowStage) {
	t.Helper()
	m, err := trainWindowModel(fx.fw, fx.split, wk, 3)
	if err != nil {
		t.Fatalf("train %s: %v", wk.kind, err)
	}
	wz := NewWindowizerWith(fx.fw.Encoder, m.Std)
	return m, NewWindowStage(wk.kind, wk.level, wz, m.Scorer, m.Threshold)
}

// runStream drives a package stream through a stage the way a session
// does, returning the per-package stage results.
func runStream(stage *WindowStage, state core.StageState, pkgs []*dataset.Package) []core.StageResult {
	out := make([]core.StageResult, len(pkgs))
	for i, p := range pkgs {
		pc := core.PackageContext{Cur: p}
		r := core.StageResult{Rank: -1}
		stage.Check(state, &pc, &r)
		out[i] = r
		var v core.Verdict
		stage.Advance(state, &pc, &v)
	}
	return out
}

// TestStreamingOfflineParity: every promoted level, replayed as a
// streaming stage over the raw test stream, must reproduce the window
// slicing, the scores and the decisions of the offline baselines.Eval
// path (Windowizer.FromStream + Scorer.Score) exactly — bit for bit on
// the scores.
func TestStreamingOfflineParity(t *testing.T) {
	fx := loadStageFixture(t)
	stream := fx.split.Test
	if len(stream) > 2400 {
		stream = stream[:2400]
	}
	for _, wk := range windowKinds {
		wk := wk
		t.Run(wk.kind, func(t *testing.T) {
			m, stage := trainStage(t, fx, wk)

			// Offline view of the same stream.
			wz := NewWindowizerWith(fx.fw.Encoder, m.Std)
			offline := wz.FromStream(stream)
			offScores := make([]float64, len(offline))
			for i, w := range offline {
				offScores[i] = m.Scorer.Score(w)
			}

			// Streaming view: the observer logs every finalized window.
			type finalized struct {
				score   float64
				flagged bool
				n       int
			}
			var got []finalized
			stage.Observer = func(w *Window, score float64, flagged bool) {
				got = append(got, finalized{score, flagged, len(w.Packages)})
			}
			results := runStream(stage, stage.NewState(), stream)

			// A stream never "ends" for the stage, so at most the trailing
			// open window is unfinalized.
			if len(got) != len(offline) && len(got) != len(offline)-1 {
				t.Fatalf("streaming finalized %d windows, offline built %d", len(got), len(offline))
			}
			for i, g := range got {
				if len(offline[i].Packages) != g.n {
					t.Fatalf("window %d: streaming %d packages, offline %d", i, g.n, len(offline[i].Packages))
				}
				if math.Float64bits(g.score) != math.Float64bits(offScores[i]) {
					t.Fatalf("window %d: streaming score %x, offline %x", i,
						math.Float64bits(g.score), math.Float64bits(offScores[i]))
				}
				if g.flagged != (offScores[i] > m.Threshold) {
					t.Fatalf("window %d: streaming decision %v, offline %v", i, g.flagged, offScores[i] > m.Threshold)
				}
			}

			// Per-package verdicts: exactly the closing package of every
			// full window scores, with the window's decision.
			ri := 0
			for i, w := range offline {
				last := ri + len(w.Packages) - 1
				for j := ri; j <= last && j < len(results); j++ {
					r := results[j]
					closing := j == last && len(w.Packages) == WindowSize
					if r.Scored != closing {
						t.Fatalf("package %d (window %d): scored=%v, want %v", j, i, r.Scored, closing)
					}
					if closing {
						if math.Float64bits(r.Score) != math.Float64bits(offScores[i]) {
							t.Fatalf("package %d: score %x, offline window %x", j,
								math.Float64bits(r.Score), math.Float64bits(offScores[i]))
						}
						if r.Flagged != (offScores[i] > m.Threshold) {
							t.Fatalf("package %d: flagged=%v, offline %v", j, r.Flagged, offScores[i] > m.Threshold)
						}
					}
				}
				ri += len(w.Packages)
			}
		})
	}
}

// TestBatchedScorerBitwise: the batched score kernels of the PCA and GMM
// levels must equal their scalar ScoreVector bit for bit on real window
// samples, at batch widths around the kernel tile.
func TestBatchedScorerBitwise(t *testing.T) {
	fx := loadStageFixture(t)
	wz, err := NewWindowizer(fx.fw.Encoder, fx.split.Train)
	if err != nil {
		t.Fatal(err)
	}
	windows := wz.FromStream(fx.split.Test)
	if len(windows) > 200 {
		windows = windows[:200]
	}
	samples := Samples(windows)

	for _, wk := range windowKinds {
		wk := wk
		sc, err := wk.fit(wz.FromFragments(fx.split.Train), 3)
		if err != nil {
			t.Fatalf("fit %s: %v", wk.kind, err)
		}
		bv, ok := sc.(BatchVectorScorer)
		if !ok {
			continue
		}
		t.Run(wk.kind, func(t *testing.T) {
			for _, width := range []int{1, 3, 4, 7, 64} {
				sb := bv.NewScoreBatch(width)
				scratch := make([]float64, bv.ScratchLen())
				dst := make([]float64, width)
				for off := 0; off < len(samples); off += width {
					end := off + width
					if end > len(samples) {
						end = len(samples)
					}
					xs := samples[off:end]
					sb.Score(dst[:len(xs)], xs)
					for i, x := range xs {
						want := bv.ScoreVector(x, scratch)
						if math.Float64bits(dst[i]) != math.Float64bits(want) {
							t.Fatalf("width %d sample %d: batch %x scalar %x", width, off+i,
								math.Float64bits(dst[i]), math.Float64bits(want))
						}
					}
				}
			}
		})
	}
	// The interface checks above must actually cover the two batched kinds.
	if _, ok := any(&PCASVD{}).(BatchVectorScorer); !ok {
		t.Error("PCASVD lost its batched scorer")
	}
	if _, ok := any(&GMM{}).(BatchVectorScorer); !ok {
		t.Error("GMM lost its batched scorer")
	}
}

// TestWindowStageCheckBatch: a score deposited by the stage's CheckBatch
// must be consumed by Check bit-for-bit, and the batch must skip packages
// that do not complete a window.
func TestWindowStageCheckBatch(t *testing.T) {
	fx := loadStageFixture(t)
	for _, wk := range windowKinds {
		wk := wk
		t.Run(wk.kind, func(t *testing.T) {
			_, stage := trainStage(t, fx, wk)
			cb := stage.NewCheckBatch(8)
			if stage.batch == nil {
				if cb != nil {
					t.Fatal("non-batchable stage returned a check batch")
				}
				return
			}
			if cb == nil {
				t.Fatal("batchable stage returned no check batch")
			}

			stream := fx.split.Test[:600]
			// Reference: plain sequential run.
			ref := runStream(stage, stage.NewState(), stream)
			// Batched: queue every package through the check batch first.
			state := stage.NewState()
			for i, p := range stream {
				queued := cb.Queue(state, p)
				if queued != state.(*winState).completes(p) {
					t.Fatalf("package %d: queued=%v but completes=%v", i, queued, !queued)
				}
				cb.Flush()
				pc := core.PackageContext{Cur: p}
				r := core.StageResult{Rank: -1}
				stage.Check(state, &pc, &r)
				if r != ref[i] {
					t.Fatalf("package %d: batched result %+v, sequential %+v", i, r, ref[i])
				}
				var v core.Verdict
				stage.Advance(state, &pc, &v)
			}
		})
	}
}

// TestWindowModelRoundTrip: encode/decode of every promoted level's model
// must preserve scores bit for bit and the threshold exactly.
func TestWindowModelRoundTrip(t *testing.T) {
	fx := loadStageFixture(t)
	wzTest, err := NewWindowizer(fx.fw.Encoder, fx.split.Train)
	if err != nil {
		t.Fatal(err)
	}
	windows := wzTest.FromStream(fx.split.Test)
	if len(windows) > 120 {
		windows = windows[:120]
	}
	for _, wk := range windowKinds {
		wk := wk
		t.Run(wk.kind, func(t *testing.T) {
			m, err := trainWindowModel(fx.fw, fx.split, wk, 3)
			if err != nil {
				t.Fatal(err)
			}
			b, err := encodeWindowModel(m)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic encoding (Fingerprint mixes these bytes).
			b2, err := encodeWindowModel(m)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(b2) {
				t.Fatal("window model encoding is not deterministic")
			}
			got, err := decodeWindowModel(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Threshold != m.Threshold {
				t.Fatalf("threshold %v after round trip, want %v", got.Threshold, m.Threshold)
			}
			for i, w := range windows {
				a, bsc := m.Scorer.Score(w), got.Scorer.Score(w)
				if math.Float64bits(a) != math.Float64bits(bsc) {
					t.Fatalf("window %d: score %x after round trip, want %x", i,
						math.Float64bits(bsc), math.Float64bits(a))
				}
			}
		})
	}
}
