package baselines

import (
	"fmt"
	"sort"

	"icsdetect/internal/dataset"
	"icsdetect/internal/metrics"
)

// TuneThreshold picks the score threshold maximizing F1 subject to accuracy
// above minAccuracy, the paper's tuning rule ("their hyper-parameters are
// tuned to get best F1-score with accuracy above 0.7", §VIII-C). If no
// threshold reaches minAccuracy, the best-F1 threshold is returned.
func TuneThreshold(scores []float64, anomalous []bool, minAccuracy float64) (float64, metrics.Summary, error) {
	if len(scores) == 0 || len(scores) != len(anomalous) {
		return 0, metrics.Summary{}, fmt.Errorf("baselines: tune over %d scores / %d labels",
			len(scores), len(anomalous))
	}
	type pair struct {
		score   float64
		anomaly bool
	}
	pairs := make([]pair, len(scores))
	for i := range scores {
		pairs[i] = pair{scores[i], anomalous[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].score > pairs[j].score })

	totalPos := 0
	for _, p := range pairs {
		if p.anomaly {
			totalPos++
		}
	}
	n := len(pairs)

	// Sweep: predict anomalous for the top-i scores. Thresholds are the
	// midpoints between consecutive distinct scores.
	var (
		bestF1, bestConstrainedF1   float64 = -1, -1
		bestThr, bestConstrainedThr float64
		bestSum, bestConstrainedSum metrics.Summary
	)
	tp := 0
	for i := 0; i <= n; i++ {
		if i > 0 && pairs[i-1].anomaly {
			tp++
		}
		// Only cut between distinct scores (and the two extremes).
		if i < n && i > 0 && pairs[i].score == pairs[i-1].score {
			continue
		}
		fp := i - tp
		fn := totalPos - tp
		tn := n - i - fn
		c := metrics.Confusion{TP: tp, FP: fp, FN: fn, TN: tn}
		sum := metrics.Summarize(&c)
		var thr float64
		switch {
		case i == 0:
			thr = pairs[0].score + 1
		case i == n:
			thr = pairs[n-1].score - 1
		default:
			thr = (pairs[i-1].score + pairs[i].score) / 2
		}
		if sum.F1 > bestF1 {
			bestF1, bestThr, bestSum = sum.F1, thr, sum
		}
		if sum.Accuracy >= minAccuracy && sum.F1 > bestConstrainedF1 {
			bestConstrainedF1, bestConstrainedThr, bestConstrainedSum = sum.F1, thr, sum
		}
	}
	if bestConstrainedF1 >= 0 {
		return bestConstrainedThr, bestConstrainedSum, nil
	}
	return bestThr, bestSum, nil
}

// Result is the evaluation of one baseline over a test stream.
type Result struct {
	Name      string
	Threshold float64
	Summary   metrics.Summary
	PerAttack *metrics.PerAttack
}

// Evaluate scores the windows, tunes the threshold per the paper's rule and
// reports window-level metrics plus per-attack package recall (a detected
// window credits all of its attack packages, since the baseline's verdict
// applies to the whole command-response cycle).
func Evaluate(s Scorer, windows []*Window, minAccuracy float64) (*Result, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("baselines: no windows to evaluate")
	}
	scores := make([]float64, len(windows))
	labels := make([]bool, len(windows))
	for i, w := range windows {
		scores[i] = s.Score(w)
		labels[i] = w.IsAttack()
	}
	thr, sum, err := TuneThreshold(scores, labels, minAccuracy)
	if err != nil {
		return nil, err
	}
	per := metrics.NewPerAttack()
	for i, w := range windows {
		detected := scores[i] >= thr
		for _, p := range w.Packages {
			if p.Label != dataset.Normal {
				per.Add(p.Label, detected)
			}
		}
	}
	return &Result{Name: s.Name(), Threshold: thr, Summary: sum, PerAttack: per}, nil
}
