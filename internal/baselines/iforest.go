package baselines

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// IsolationForest implements Liu, Ting & Zhou's Isolation Forest [55]:
// anomalies are isolated by fewer random axis-aligned splits, so short
// average path lengths score high.
type IsolationForest struct {
	trees    []*isoNode
	sub      int
	expected float64 // c(sub): average unsuccessful BST search length
}

var _ Scorer = (*IsolationForest)(nil)

type isoNode struct {
	// Leaf fields.
	size int
	// Internal fields.
	attr  int
	split float64
	left  *isoNode
	right *isoNode
}

// IForestConfig bundles the forest hyper-parameters (paper defaults of the
// original algorithm: 100 trees, subsample 256).
type IForestConfig struct {
	Trees     int
	Subsample int
	Seed      uint64
}

// NewIsolationForest fits the forest.
func NewIsolationForest(train [][]float64, cfg IForestConfig) (*IsolationForest, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: isolation forest needs training samples")
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.Subsample <= 0 {
		cfg.Subsample = 256
	}
	if cfg.Subsample > len(train) {
		cfg.Subsample = len(train)
	}
	rng := mathx.NewRNG(cfg.Seed)
	maxDepth := int(math.Ceil(math.Log2(float64(cfg.Subsample)))) + 1

	f := &IsolationForest{sub: cfg.Subsample, expected: avgPathLength(cfg.Subsample)}
	for t := 0; t < cfg.Trees; t++ {
		perm := rng.Perm(len(train))
		sample := make([][]float64, cfg.Subsample)
		for i := 0; i < cfg.Subsample; i++ {
			sample[i] = train[perm[i]]
		}
		f.trees = append(f.trees, buildIsoTree(sample, 0, maxDepth, rng))
	}
	return f, nil
}

func buildIsoTree(data [][]float64, depth, maxDepth int, rng *mathx.RNG) *isoNode {
	if len(data) <= 1 || depth >= maxDepth {
		return &isoNode{size: len(data)}
	}
	dim := len(data[0])
	// Pick an attribute with spread; give up after a few tries (all-equal
	// subsample).
	for try := 0; try < 8; try++ {
		attr := rng.Intn(dim)
		lo, hi := data[0][attr], data[0][attr]
		for _, x := range data[1:] {
			if x[attr] < lo {
				lo = x[attr]
			}
			if x[attr] > hi {
				hi = x[attr]
			}
		}
		if hi <= lo {
			continue
		}
		split := rng.Range(lo, hi)
		var left, right [][]float64
		for _, x := range data {
			if x[attr] < split {
				left = append(left, x)
			} else {
				right = append(right, x)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		return &isoNode{
			attr:  attr,
			split: split,
			left:  buildIsoTree(left, depth+1, maxDepth, rng),
			right: buildIsoTree(right, depth+1, maxDepth, rng),
		}
	}
	return &isoNode{size: len(data)}
}

// avgPathLength is c(n), the average path length of an unsuccessful BST
// search, used to normalize scores.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649015329 // harmonic number approx
	return 2*h - 2*float64(n-1)/float64(n)
}

func pathLength(node *isoNode, x []float64, depth int) float64 {
	for node.left != nil {
		if x[node.attr] < node.split {
			node = node.left
		} else {
			node = node.right
		}
		depth++
	}
	return float64(depth) + avgPathLength(node.size)
}

// Name implements Scorer.
func (f *IsolationForest) Name() string { return "IF" }

// Score returns the anomaly score 2^(−E[h(x)]/c(ψ)) ∈ (0,1]; values near 1
// are anomalies.
func (f *IsolationForest) Score(w *Window) float64 {
	return f.ScoreVector(w.Sample, nil)
}

// ScratchLen implements VectorScorer; tree walks need no scratch.
func (f *IsolationForest) ScratchLen() int { return 0 }

// ScoreVector implements VectorScorer.
func (f *IsolationForest) ScoreVector(x, _ []float64) float64 {
	var sum float64
	for _, t := range f.trees {
		sum += pathLength(t, x, 0)
	}
	mean := sum / float64(len(f.trees))
	return math.Pow(2, -mean/f.expected)
}

var _ VectorScorer = (*IsolationForest)(nil)
