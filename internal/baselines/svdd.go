package baselines

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// SVDD is Support Vector Data Description [54]: the minimum enclosing
// hypersphere of the training data in an RBF-kernel feature space. The dual
//
//	min_α  Σ_ij α_i α_j K(x_i,x_j) − Σ_i α_i K(x_i,x_i)
//	s.t.   0 ≤ α_i ≤ C, Σ α_i = 1
//
// is solved with the Frank–Wolfe algorithm (pairwise variant), which needs
// only kernel rows and converges linearly on this simplex-constrained QP.
// The anomaly score is the squared feature-space distance to the center.
type SVDD struct {
	Gamma float64 // RBF kernel width: K(x,y)=exp(-γ‖x−y‖²)
	C     float64 // box constraint (soft margin)

	support [][]float64 // training points with α_i > 0
	alpha   []float64
	// aa = Σ_ij α_i α_j K(x_i,x_j), the constant ‖a‖² term of the distance.
	aa float64
}

var _ Scorer = (*SVDD)(nil)

// SVDDConfig bundles the SVDD hyper-parameters.
type SVDDConfig struct {
	Gamma    float64 // default: 1/dim
	C        float64 // default: 0.05 (≈ 5% outlier budget)
	MaxIter  int     // Frank–Wolfe iterations (default 300)
	MaxTrain int     // kernel-matrix budget: subsample above this (default 1500)
	Seed     uint64
}

// NewSVDD fits the model on training samples.
func NewSVDD(train [][]float64, cfg SVDDConfig) (*SVDD, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: svdd needs training samples")
	}
	dim := len(train[0])
	if cfg.Gamma <= 0 {
		cfg.Gamma = 1 / float64(dim)
	}
	if cfg.C <= 0 {
		cfg.C = 0.05
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 300
	}
	if cfg.MaxTrain <= 0 {
		cfg.MaxTrain = 1500
	}
	// Subsample to bound the kernel matrix.
	pts := train
	if len(pts) > cfg.MaxTrain {
		rng := mathx.NewRNG(cfg.Seed)
		perm := rng.Perm(len(pts))
		sub := make([][]float64, cfg.MaxTrain)
		for i := 0; i < cfg.MaxTrain; i++ {
			sub[i] = pts[perm[i]]
		}
		pts = sub
	}
	n := len(pts)
	// C must admit Σα=1: C*n >= 1.
	if cfg.C*float64(n) < 1 {
		cfg.C = 2 / float64(n)
	}

	// Precompute the kernel matrix (n ≤ MaxTrain keeps this ≤ ~18 MB).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(pts[i], pts[j], cfg.Gamma)
			k[i][j] = v
			k[j][i] = v
		}
	}

	// Frank–Wolfe with away steps on the scaled simplex {0≤α≤C, Σα=1}.
	alpha := make([]float64, n)
	// Feasible start: spread uniformly over ceil(1/C) points.
	m := int(math.Ceil(1 / cfg.C))
	if m > n {
		m = n
	}
	for i := 0; i < m; i++ {
		alpha[i] = 1 / float64(m)
	}
	// gradient g_i = 2 Σ_j α_j K_ij − K_ii
	grad := make([]float64, n)
	recompute := func() {
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				if alpha[j] != 0 {
					s += alpha[j] * k[i][j]
				}
			}
			grad[i] = 2*s - k[i][i]
		}
	}
	recompute()
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Toward vertex: index with the most negative gradient among those
		// with α < C; away vertex: most positive gradient among α > 0.
		to, away := -1, -1
		for i := 0; i < n; i++ {
			if alpha[i] < cfg.C-1e-12 && (to < 0 || grad[i] < grad[to]) {
				to = i
			}
			if alpha[i] > 1e-12 && (away < 0 || grad[i] > grad[away]) {
				away = i
			}
		}
		if to < 0 || away < 0 || to == away || grad[away]-grad[to] < 1e-9 {
			break
		}
		// Pairwise step: move mass δ from away to to. Optimal δ for the
		// quadratic along direction (e_to − e_away):
		//   δ* = (g_away − g_to) / (2 (K_tt − 2K_ta + K_aa))
		denom := 2 * (k[to][to] - 2*k[to][away] + k[away][away])
		var delta float64
		if denom <= 1e-15 {
			delta = alpha[away]
		} else {
			delta = (grad[away] - grad[to]) / denom
		}
		maxDelta := math.Min(alpha[away], cfg.C-alpha[to])
		delta = mathx.Clamp(delta, 0, maxDelta)
		if delta == 0 {
			break
		}
		alpha[to] += delta
		alpha[away] -= delta
		for i := 0; i < n; i++ {
			grad[i] += 2 * delta * (k[i][to] - k[i][away])
		}
	}

	s := &SVDD{Gamma: cfg.Gamma, C: cfg.C}
	for i, a := range alpha {
		if a > 1e-10 {
			s.support = append(s.support, pts[i])
			s.alpha = append(s.alpha, a)
		}
	}
	for i := range s.support {
		for j := range s.support {
			s.aa += s.alpha[i] * s.alpha[j] * rbf(s.support[i], s.support[j], cfg.Gamma)
		}
	}
	return s, nil
}

func rbf(a, b []float64, gamma float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-gamma * d2)
}

// Name implements Scorer.
func (s *SVDD) Name() string { return "SVDD" }

// Score returns the squared feature-space distance to the hypersphere
// center: K(x,x) − 2Σ α_i K(x,x_i) + ‖a‖². For RBF, K(x,x)=1.
func (s *SVDD) Score(w *Window) float64 {
	return s.ScoreVector(w.Sample, nil)
}

// ScratchLen implements VectorScorer; the kernel sum needs no scratch.
func (s *SVDD) ScratchLen() int { return 0 }

// ScoreVector implements VectorScorer.
func (s *SVDD) ScoreVector(x, _ []float64) float64 {
	var cross float64
	for i, sv := range s.support {
		cross += s.alpha[i] * rbf(x, sv, s.Gamma)
	}
	return 1 - 2*cross + s.aa
}

var _ VectorScorer = (*SVDD)(nil)

// SupportVectors returns the number of support vectors (diagnostics).
func (s *SVDD) SupportVectors() int { return len(s.support) }
