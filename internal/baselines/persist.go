package baselines

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"icsdetect/internal/bloom"
	"icsdetect/internal/mathx"
)

// This file defines the deterministic on-disk snapshots of the promoted
// window levels: each stage model (scorer + standardizer + threshold)
// round-trips through gob with exported, map-free structures, so the
// encodings are byte-stable and safe for core.Framework.Fingerprint to
// mix. The snapshots feed the stage registry's Encode/Decode hooks
// (register.go) and through them core.Framework.Save/Load.

// windowModelSnap is the common envelope of every persisted window level.
type windowModelSnap struct {
	Std       *Standardizer
	Threshold float64
	// Exactly one of the scorer snapshots is non-nil, matching the kind.
	PCA *pcaSnap
	GMM *gmmSnap
	IF  *ifSnap
	BN  *bnSnap
	SV  *svddSnap
	BF  *bfSnap
}

type pcaSnap struct {
	Mean  []float64
	Comps *mathx.Matrix
}

type gmmSnap struct {
	Weights []float64
	Means   [][]float64
	Vars    [][]float64
}

// ifNodeSnap flattens one isolation-tree node; Left/Right index into the
// node array (-1 for leaves).
type ifNodeSnap struct {
	Size        int
	Attr        int
	Split       float64
	Left, Right int32
}

type ifSnap struct {
	Nodes    []ifNodeSnap
	Roots    []int32
	Sub      int
	Expected float64
}

type bnSnap struct {
	Parent []int
	Card   []int
	CPT    [][]float64
}

type svddSnap struct {
	Gamma, C, AA float64
	Support      [][]float64
	Alpha        []float64
}

type bfSnap struct {
	Filter []byte
}

// snapshotScorer captures a trained scorer into the envelope.
func snapshotScorer(snap *windowModelSnap, sc Scorer) error {
	switch m := sc.(type) {
	case *PCASVD:
		snap.PCA = &pcaSnap{Mean: m.mean, Comps: m.comps}
	case *GMM:
		snap.GMM = &gmmSnap{Weights: m.weights, Means: m.means, Vars: m.vars}
	case *IsolationForest:
		s := &ifSnap{Sub: m.sub, Expected: m.expected}
		for _, root := range m.trees {
			s.Roots = append(s.Roots, flattenIso(s, root))
		}
		snap.IF = s
	case *BayesNet:
		snap.BN = &bnSnap{Parent: m.parent, Card: m.card, CPT: m.cpt}
	case *SVDD:
		snap.SV = &svddSnap{Gamma: m.Gamma, C: m.C, AA: m.aa, Support: m.support, Alpha: m.alpha}
	case *BF:
		var buf bytes.Buffer
		if _, err := m.filter.WriteTo(&buf); err != nil {
			return fmt.Errorf("baselines: snapshot bf filter: %w", err)
		}
		snap.BF = &bfSnap{Filter: buf.Bytes()}
	default:
		return fmt.Errorf("baselines: no snapshot for scorer %T", sc)
	}
	return nil
}

// restoreScorer rebuilds the scorer the envelope carries.
func (snap *windowModelSnap) restoreScorer() (Scorer, error) {
	switch {
	case snap.PCA != nil:
		return &PCASVD{mean: snap.PCA.Mean, comps: snap.PCA.Comps}, nil
	case snap.GMM != nil:
		g := &GMM{
			weights: snap.GMM.Weights,
			means:   snap.GMM.Means,
			vars:    snap.GMM.Vars,
			logNorm: make([]float64, len(snap.GMM.Weights)),
		}
		g.refreshNorm()
		return g, nil
	case snap.IF != nil:
		f := &IsolationForest{sub: snap.IF.Sub, expected: snap.IF.Expected}
		for _, root := range snap.IF.Roots {
			tree, err := unflattenIso(snap.IF, root)
			if err != nil {
				return nil, err
			}
			f.trees = append(f.trees, tree)
		}
		return f, nil
	case snap.BN != nil:
		return &BayesNet{parent: snap.BN.Parent, card: snap.BN.Card, cpt: snap.BN.CPT}, nil
	case snap.SV != nil:
		return &SVDD{
			Gamma: snap.SV.Gamma, C: snap.SV.C, aa: snap.SV.AA,
			support: snap.SV.Support, alpha: snap.SV.Alpha,
		}, nil
	case snap.BF != nil:
		var filter bloom.Filter
		if _, err := filter.ReadFrom(bytes.NewReader(snap.BF.Filter)); err != nil {
			return nil, fmt.Errorf("baselines: restore bf filter: %w", err)
		}
		return &BF{filter: &filter}, nil
	default:
		return nil, fmt.Errorf("baselines: snapshot carries no scorer")
	}
}

// flattenIso appends node's subtree to s.Nodes in preorder and returns
// node's index.
func flattenIso(s *ifSnap, node *isoNode) int32 {
	idx := int32(len(s.Nodes))
	s.Nodes = append(s.Nodes, ifNodeSnap{Size: node.size, Attr: node.attr, Split: node.split, Left: -1, Right: -1})
	if node.left != nil {
		left := flattenIso(s, node.left)
		right := flattenIso(s, node.right)
		s.Nodes[idx].Left = left
		s.Nodes[idx].Right = right
	}
	return idx
}

// unflattenIso rebuilds the subtree rooted at idx.
func unflattenIso(s *ifSnap, idx int32) (*isoNode, error) {
	if idx < 0 || int(idx) >= len(s.Nodes) {
		return nil, fmt.Errorf("baselines: isolation tree node %d out of range", idx)
	}
	n := s.Nodes[idx]
	node := &isoNode{size: n.Size, attr: n.Attr, split: n.Split}
	if n.Left >= 0 {
		var err error
		if node.left, err = unflattenIso(s, n.Left); err != nil {
			return nil, err
		}
		if node.right, err = unflattenIso(s, n.Right); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// encodeWindowModel serializes a trained window level.
func encodeWindowModel(m *WindowModel) ([]byte, error) {
	snap := windowModelSnap{Std: m.Std, Threshold: m.Threshold}
	if err := snapshotScorer(&snap, m.Scorer); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("baselines: encode window level: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeWindowModel deserializes a window level snapshot.
func decodeWindowModel(b []byte) (*WindowModel, error) {
	var snap windowModelSnap
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("baselines: decode window level: %w", err)
	}
	if snap.Std == nil {
		return nil, fmt.Errorf("baselines: window level snapshot has no standardizer")
	}
	sc, err := snap.restoreScorer()
	if err != nil {
		return nil, err
	}
	return &WindowModel{Std: snap.Std, Threshold: snap.Threshold, Scorer: sc}, nil
}
