package baselines

import (
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
)

// VectorScorer is a Scorer that can score the standardized numeric sample
// of a window directly, without a fully populated Window — the
// allocation-free streaming path. scratch must have ScratchLen elements.
type VectorScorer interface {
	Scorer
	ScratchLen() int
	ScoreVector(x, scratch []float64) float64
}

// BatchVectorScorer is a VectorScorer that can score many samples in one
// batched kernel pass, bitwise-identically to ScoreVector per row.
type BatchVectorScorer interface {
	VectorScorer
	NewScoreBatch(maxBatch int) ScoreBatch
}

// ScoreBatch scores up to its configured batch of samples at once. A
// ScoreBatch owns its scratch and is not safe for concurrent use.
type ScoreBatch interface {
	Score(dst []float64, xs [][]float64)
}

// WindowStage promotes an offline window Scorer into a streaming
// core.StageDetector: per-stream state accumulates packages into
// command-response cycle windows with exactly the offline Windowizer
// slicing (a write command starts a new window, windows cap at
// WindowSize), and the package that completes a full window carries the
// window's verdict — score above the trained threshold ⇒ anomalous.
// Packages that do not complete a window (mid-cycle traffic, and the
// members of short misaligned windows, which only hindsight can close)
// leave the stage unscored, so it abstains from fusion on them.
//
// The stage itself is immutable and safe for concurrent use; VectorScorer
// models score through per-stream scratch, and BatchVectorScorer models
// additionally expose the engine's batched Check precompute
// (core.CheckBatchStage).
type WindowStage struct {
	kind      string
	level     core.Level
	wz        *Windowizer
	scorer    Scorer
	vec       VectorScorer      // non-nil when scorer scores samples directly
	batch     BatchVectorScorer // non-nil when the scorer batches
	threshold float64
	// Observer, when non-nil, receives every finalized window with its
	// score and decision — the hook behind the streaming-vs-offline parity
	// tests and score diagnostics. The nil-observer hot path never builds
	// Window values for finalization.
	Observer func(w *Window, score float64, flagged bool)
}

var (
	_ core.StageDetector   = (*WindowStage)(nil)
	_ core.CheckBatchStage = (*WindowStage)(nil)
)

// NewWindowStage wraps a trained scorer as a streaming detection level.
func NewWindowStage(kind string, level core.Level, wz *Windowizer, scorer Scorer, threshold float64) *WindowStage {
	s := &WindowStage{kind: kind, level: level, wz: wz, scorer: scorer, threshold: threshold}
	if v, ok := scorer.(VectorScorer); ok {
		s.vec = v
	}
	if b, ok := scorer.(BatchVectorScorer); ok {
		s.batch = b
	}
	return s
}

// Threshold returns the stage's decision threshold (scores above it flag).
func (s *WindowStage) Threshold() float64 { return s.threshold }

// Scorer returns the wrapped window scorer.
func (s *WindowStage) Scorer() Scorer { return s.scorer }

// Name implements core.StageDetector.
func (s *WindowStage) Name() string { return s.kind }

// Level implements core.StageDetector.
func (s *WindowStage) Level() core.Level { return s.level }

// winState is the per-stream state: the open window's packages plus
// preallocated scoring scratch and the batched-precompute deposit slot.
type winState struct {
	buf [WindowSize]*dataset.Package
	n   int
	// closing is the scratch window [buf[:n], cur] assembled for scoring.
	closing [WindowSize]*dataset.Package
	sample  []float64
	scratch []float64
	// prePkg/preScore carry a batched-kernel score deposited by the
	// engine's precompute pass for the package prePkg; Check consumes it
	// instead of recomputing, Advance invalidates it.
	prePkg   *dataset.Package
	preScore float64
}

// Reset implements core.StageState.
func (st *winState) Reset() {
	st.n = 0
	st.prePkg = nil
}

// NewState implements core.StageDetector.
func (s *WindowStage) NewState() core.StageState {
	st := &winState{}
	if s.vec != nil {
		st.sample = make([]float64, SampleDim)
		st.scratch = make([]float64, s.vec.ScratchLen())
	}
	return st
}

// completes reports whether cur closes a full window given the open
// buffer: a write command starts a new window (so it can never be the
// fourth package of the open one), otherwise the window closes when cur
// is its WindowSize-th package.
func (st *winState) completes(cur *dataset.Package) bool {
	if st.n > 0 && isCycleStart(cur) {
		return false
	}
	return st.n+1 == WindowSize
}

// closingWindow assembles the window cur would close into state scratch.
func (st *winState) closingWindow(cur *dataset.Package) []*dataset.Package {
	copy(st.closing[:st.n], st.buf[:st.n])
	st.closing[st.n] = cur
	return st.closing[:st.n+1]
}

// Check implements core.StageDetector: the package completing a full
// command-response window carries the window's score. A score deposited
// by the batched precompute pass is consumed as-is (it is
// bitwise-identical to the inline computation by kernel contract).
func (s *WindowStage) Check(state core.StageState, pc *core.PackageContext, r *core.StageResult) {
	st := state.(*winState)
	if !st.completes(pc.Cur) {
		return
	}
	var score float64
	if st.prePkg == pc.Cur {
		score = st.preScore
	} else {
		score = s.scoreClosing(st, pc.Cur)
	}
	r.Scored = true
	r.Score = score
	r.Flagged = score > s.threshold
}

// scoreClosing scores the window pc.Cur completes, on the scalar path.
func (s *WindowStage) scoreClosing(st *winState, cur *dataset.Package) float64 {
	pkgs := st.closingWindow(cur)
	if s.vec != nil {
		s.wz.SampleInto(st.sample, pkgs)
		return s.vec.ScoreVector(st.sample, st.scratch)
	}
	// Discrete scorers (BN, BF) need the full window; the Window is
	// transient — scoring must not retain it.
	return s.scorer.Score(s.wz.Build(pkgs))
}

// Advance implements core.StageDetector: move the window buffer exactly
// like the offline slice4 — flush on a write command, flush on a full
// window — and invalidate any deposited precompute score.
func (s *WindowStage) Advance(state core.StageState, pc *core.PackageContext, _ *core.Verdict) {
	st := state.(*winState)
	st.prePkg = nil
	if st.n > 0 && isCycleStart(pc.Cur) {
		s.finalize(st)
	}
	st.buf[st.n] = pc.Cur
	st.n++
	if st.n == WindowSize {
		s.finalize(st)
	}
}

// finalize closes the open window. Scores are recomputed only for the
// observer; decisions were already rendered in Check (full windows) or
// never rendered (short windows — their members are classified before the
// window is known to be short).
func (s *WindowStage) finalize(st *winState) {
	if s.Observer != nil {
		w := s.wz.Build(append([]*dataset.Package(nil), st.buf[:st.n]...))
		score := s.scorer.Score(w)
		s.Observer(w, score, score > s.threshold)
	}
	st.n = 0
}

// NewCheckBatch implements core.CheckBatchStage. It returns nil — no
// batching — for scorers without a batched kernel, which the stack batch
// treats as inline-only.
func (s *WindowStage) NewCheckBatch(maxBatch int) core.CheckBatch {
	if s.batch == nil {
		return nil
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &winCheckBatch{
		stage:  s,
		sb:     s.batch.NewScoreBatch(maxBatch),
		rows:   make([][]float64, maxBatch),
		scores: make([]float64, maxBatch),
		states: make([]*winState, maxBatch),
		pkgs:   make([]*dataset.Package, maxBatch),
	}
	backing := make([]float64, maxBatch*SampleDim)
	for i := range b.rows {
		b.rows[i] = backing[i*SampleDim : (i+1)*SampleDim]
	}
	return b
}

// winCheckBatch precomputes window scores for many streams in one batched
// kernel pass and deposits them into the stream states.
type winCheckBatch struct {
	stage  *WindowStage
	sb     ScoreBatch
	rows   [][]float64
	scores []float64
	states []*winState
	pkgs   []*dataset.Package
	n      int
}

// Queue implements core.CheckBatch.
func (b *winCheckBatch) Queue(state core.StageState, cur *dataset.Package) bool {
	st := state.(*winState)
	if !st.completes(cur) {
		return false
	}
	b.stage.wz.SampleInto(b.rows[b.n], st.closingWindow(cur))
	b.states[b.n] = st
	b.pkgs[b.n] = cur
	b.n++
	return true
}

// Flush implements core.CheckBatch.
func (b *winCheckBatch) Flush() {
	if b.n == 0 {
		return
	}
	b.sb.Score(b.scores[:b.n], b.rows[:b.n])
	for i := 0; i < b.n; i++ {
		b.states[i].preScore = b.scores[i]
		b.states[i].prePkg = b.pkgs[i]
	}
	b.n = 0
}

// Len implements core.CheckBatch.
func (b *winCheckBatch) Len() int { return b.n }

// Cap implements core.CheckBatch.
func (b *winCheckBatch) Cap() int { return len(b.rows) }
