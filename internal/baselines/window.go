// Package baselines implements the six comparison models of the paper's
// Table IV/V: a 4-package Bloom filter (BF), a Bayesian network with
// structure learned from data (BN) [53], Support Vector Data Description
// (SVDD) [54], Isolation Forest (IF) [55], a Gaussian Mixture Model (GMM)
// and PCA with SVD (PCA-SVD) [52].
//
// Following §VIII-C, the windowed models consume "four consecutive packages,
// representing a complete command response cycle, as a single data sample",
// and their hyper-parameters/thresholds are tuned for best F1-score subject
// to accuracy above 0.7.
package baselines

import (
	"fmt"
	"math"

	"icsdetect/internal/dataset"
	"icsdetect/internal/signature"
)

// WindowSize is the number of consecutive packages per sample (a full
// command-response cycle in the gas pipeline dataset).
const WindowSize = 4

// Window is one 4-package sample.
type Window struct {
	// Sample is the standardized numeric feature vector (WindowSize × 17).
	Sample []float64
	// Sigs holds the per-package signatures (for the BF baseline).
	Sigs []string
	// Discrete holds the per-package discretized vectors (for the BN
	// baseline), concatenated.
	Discrete []int
	// Label is the window's ground truth: the first non-normal package
	// label, or Normal.
	Label dataset.AttackType
	// Packages are the constituent packages (for per-package accounting).
	Packages []*dataset.Package
}

// IsAttack reports whether the window contains attack traffic.
func (w *Window) IsAttack() bool { return w.Label != dataset.Normal }

// numericInto writes the 17 per-package numeric features (the 16 Table I
// columns with the timestamp replaced by the inter-package interval) into
// dst[:numericDim].
func numericInto(dst []float64, prev, cur *dataset.Package) {
	dst[0] = cur.Address
	dst[1] = cur.CRCRate
	dst[2] = cur.Function
	dst[3] = cur.Length
	dst[4] = cur.Setpoint
	dst[5] = cur.Gain
	dst[6] = cur.ResetRate
	dst[7] = cur.Deadband
	dst[8] = cur.CycleTime
	dst[9] = cur.Rate
	dst[10] = cur.SystemMode
	dst[11] = cur.ControlScheme
	dst[12] = cur.Pump
	dst[13] = cur.Solenoid
	dst[14] = cur.Pressure
	dst[15] = cur.CmdResponse
	dst[16] = dataset.Interval(prev, cur)
}

// numericVector allocates the per-package numeric feature vector.
func numericVector(prev, cur *dataset.Package) []float64 {
	x := make([]float64, numericDim)
	numericInto(x, prev, cur)
	return x
}

// numericDim is the per-package numeric feature count.
const numericDim = 17

// Standardizer performs per-dimension z-score normalization fitted on
// training windows, required by the kernel and distance based baselines.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-dimension statistics.
func FitStandardizer(samples [][]float64) (*Standardizer, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("baselines: no samples to standardize")
	}
	dim := len(samples[0])
	s := &Standardizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, x := range samples {
		for i, v := range x {
			s.Mean[i] += v
		}
	}
	n := float64(len(samples))
	for i := range s.Mean {
		s.Mean[i] /= n
	}
	for _, x := range samples {
		for i, v := range x {
			d := v - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / n)
		if s.Std[i] < 1e-9 {
			s.Std[i] = 1 // constant feature: leave centered at 0
		}
	}
	return s, nil
}

// Apply standardizes x in place and returns it.
func (s *Standardizer) Apply(x []float64) []float64 {
	for i := range x {
		x[i] = (x[i] - s.Mean[i]) / s.Std[i]
	}
	return x
}

// Windowizer builds windows from package streams using a fitted signature
// encoder (shared with the main framework so all models see the same
// discretization).
type Windowizer struct {
	enc *signature.Encoder
	std *Standardizer
}

// SampleDim is the numeric feature dimensionality of one window sample.
const SampleDim = WindowSize * numericDim

// NewWindowizerWith reassembles a windowizer from its parts (a fitted
// encoder and a previously fitted standardizer) — the load path of the
// persisted streaming window levels.
func NewWindowizerWith(enc *signature.Encoder, std *Standardizer) *Windowizer {
	return &Windowizer{enc: enc, std: std}
}

// Std returns the fitted standardizer.
func (wz *Windowizer) Std() *Standardizer { return wz.std }

// NewWindowizer fits the standardizer on the training fragments.
func NewWindowizer(enc *signature.Encoder, train []dataset.Fragment) (*Windowizer, error) {
	var samples [][]float64
	for _, frag := range train {
		for _, w := range slice4(frag) {
			samples = append(samples, rawSample(padded(w)))
		}
	}
	std, err := FitStandardizer(samples)
	if err != nil {
		return nil, err
	}
	return &Windowizer{enc: enc, std: std}, nil
}

// isCycleStart reports whether a package begins a command-response cycle
// (a write command from the master).
func isCycleStart(p *dataset.Package) bool {
	return p.CmdResponse == 1 && p.Function == 0x10
}

// slice4 groups a package sequence into command-response cycle windows of
// at most WindowSize packages: a write command always begins a new window,
// so normal traffic yields aligned (write, ack, read, response) cycles while
// injected traffic produces short or misaligned windows. Feature vectors of
// short windows are padded by build.
func slice4(pkgs []*dataset.Package) [][]*dataset.Package {
	var out [][]*dataset.Package
	var cur []*dataset.Package
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
	}
	for _, p := range pkgs {
		if isCycleStart(p) && len(cur) > 0 {
			flush()
		}
		cur = append(cur, p)
		if len(cur) == WindowSize {
			flush()
		}
	}
	flush()
	return out
}

// padded returns pkgs extended to WindowSize by repeating the last package
// (feature-level padding only; Window.Packages stays unpadded).
func padded(pkgs []*dataset.Package) []*dataset.Package {
	if len(pkgs) >= WindowSize {
		return pkgs
	}
	out := append([]*dataset.Package(nil), pkgs...)
	for len(out) < WindowSize {
		out = append(out, out[len(out)-1])
	}
	return out
}

func rawSample(pkgs []*dataset.Package) []float64 {
	x := make([]float64, 0, WindowSize*numericDim)
	var prev *dataset.Package
	for _, p := range pkgs {
		x = append(x, numericVector(prev, p)...)
		prev = p
	}
	return x
}

// SampleInto writes the standardized numeric sample of a complete
// (WindowSize-package) window into dst[:SampleDim] without allocating,
// with values bitwise-identical to Build's Sample. It is the streaming
// window levels' hot-path sample builder.
func (wz *Windowizer) SampleInto(dst []float64, pkgs []*dataset.Package) {
	if len(pkgs) != WindowSize {
		panic(fmt.Sprintf("baselines: SampleInto over %d packages, want %d", len(pkgs), WindowSize))
	}
	var prev *dataset.Package
	for i, p := range pkgs {
		numericInto(dst[i*numericDim:(i+1)*numericDim], prev, p)
		prev = p
	}
	wz.std.Apply(dst[:SampleDim])
}

// Build constructs a fully populated window (padding short windows at the
// feature level, like the offline evaluation path).
func (wz *Windowizer) Build(pkgs []*dataset.Package) *Window { return wz.build(pkgs) }

// build constructs a fully populated window.
func (wz *Windowizer) build(pkgs []*dataset.Package) *Window {
	full := padded(pkgs)
	w := &Window{
		Sample:   wz.std.Apply(rawSample(full)),
		Packages: pkgs,
	}
	var prev *dataset.Package
	for _, p := range full {
		c := wz.enc.Encode(prev, p)
		w.Discrete = append(w.Discrete, c...)
		w.Sigs = append(w.Sigs, signature.Signature(c))
		prev = p
	}
	for _, p := range pkgs {
		if w.Label == dataset.Normal && p.Label != dataset.Normal {
			w.Label = p.Label
		}
	}
	return w
}

// FromFragments windows attack-free fragments (training data).
func (wz *Windowizer) FromFragments(frags []dataset.Fragment) []*Window {
	var out []*Window
	for _, frag := range frags {
		for _, pkgs := range slice4(frag) {
			out = append(out, wz.build(pkgs))
		}
	}
	return out
}

// FromStream windows a raw package stream (the test set, anomalies
// included).
func (wz *Windowizer) FromStream(pkgs []*dataset.Package) []*Window {
	var out []*Window
	for _, w := range slice4(pkgs) {
		out = append(out, wz.build(w))
	}
	return out
}

// Samples extracts the numeric vectors of windows.
func Samples(ws []*Window) [][]float64 {
	out := make([][]float64, len(ws))
	for i, w := range ws {
		out[i] = w.Sample
	}
	return out
}
