package baselines

import (
	"fmt"
	"math"
	"sort"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
)

// This file promotes the offline Table IV comparison models into
// first-class streaming detection levels: each kind registers with the
// core stage registry, so `-levels bloom,pca,lstm` (or any other
// combination) composes them with the paper's built-in levels under any
// fusion policy, trained from the same dataset path (TrainStages over the
// same attack-free split) and persisted inside the framework snapshot.

// StageTheta is the acceptable false-positive rate of a promoted window
// level on held-out normal traffic: the decision threshold is the
// (1−StageTheta) quantile of the validation window scores, mirroring the
// θ rule that selects the LSTM's k (§V-A-2).
const StageTheta = 0.02

// WindowModel is the trained model of one promoted window level: the
// scorer, the standardizer its samples were fitted with, and the decision
// threshold (scores above it flag the window).
type WindowModel struct {
	Std       *Standardizer
	Threshold float64
	Scorer    Scorer
}

// windowKind describes one promoted level.
type windowKind struct {
	kind  string
	level core.Level
	fit   func(train []*Window, seed uint64) (Scorer, error)
}

// windowKinds lists the promoted levels in Table IV order.
var windowKinds = []windowKind{
	{core.LevelBF4.String(), core.LevelBF4, func(train []*Window, _ uint64) (Scorer, error) {
		return NewBF(train, 0.005)
	}},
	{core.LevelBayesNet.String(), core.LevelBayesNet, func(train []*Window, _ uint64) (Scorer, error) {
		return NewBayesNet(train)
	}},
	{core.LevelSVDD.String(), core.LevelSVDD, func(train []*Window, seed uint64) (Scorer, error) {
		return NewSVDD(Samples(train), SVDDConfig{Seed: seed})
	}},
	{core.LevelIForest.String(), core.LevelIForest, func(train []*Window, seed uint64) (Scorer, error) {
		return NewIsolationForest(Samples(train), IForestConfig{Seed: seed})
	}},
	{core.LevelGMM.String(), core.LevelGMM, func(train []*Window, seed uint64) (Scorer, error) {
		return NewGMM(Samples(train), GMMConfig{Seed: seed})
	}},
	{core.LevelPCA.String(), core.LevelPCA, func(train []*Window, seed uint64) (Scorer, error) {
		return NewPCASVD(Samples(train), PCAConfig{Seed: seed})
	}},
}

// WindowStageKinds lists the registered promoted level kinds, sorted.
func WindowStageKinds() []string {
	kinds := make([]string, 0, len(windowKinds))
	for _, wk := range windowKinds {
		kinds = append(kinds, wk.kind)
	}
	sort.Strings(kinds)
	return kinds
}

func init() {
	for _, wk := range windowKinds {
		wk := wk
		core.RegisterStage(wk.kind, core.StageFactory{
			Build: func(fw *core.Framework, _ core.StageSpec) (core.StageDetector, error) {
				m, ok := fw.Extra[wk.kind].(*WindowModel)
				if !ok {
					return nil, fmt.Errorf("no trained %s stage model in the framework "+
						"(train it with TrainStages / icstrain -levels)", wk.kind)
				}
				wz := NewWindowizerWith(fw.Encoder, m.Std)
				return NewWindowStage(wk.kind, wk.level, wz, m.Scorer, m.Threshold), nil
			},
			Train: func(fw *core.Framework, split *dataset.Split, seed uint64) (core.StageModel, error) {
				return trainWindowModel(fw, split, wk, seed)
			},
			Encode: func(m core.StageModel) ([]byte, error) {
				wm, ok := m.(*WindowModel)
				if !ok {
					return nil, fmt.Errorf("baselines: %s stage model has type %T", wk.kind, m)
				}
				return encodeWindowModel(wm)
			},
			Decode: func(b []byte) (core.StageModel, error) {
				return decodeWindowModel(b)
			},
		})
	}
}

// trainWindowModel fits one promoted level from the framework's training
// split: windows are built with the framework's own discretizer (all
// levels see the same feature view), the scorer fits on the training
// windows, and the threshold is the (1−StageTheta) quantile of the
// validation window scores — the same held-out-θ philosophy that selects
// the LSTM's k.
func trainWindowModel(fw *core.Framework, split *dataset.Split, wk windowKind, seed uint64) (*WindowModel, error) {
	wz, err := NewWindowizer(fw.Encoder, split.Train)
	if err != nil {
		return nil, err
	}
	train := wz.FromFragments(split.Train)
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: no training windows for %s stage", wk.kind)
	}
	sc, err := wk.fit(train, seed)
	if err != nil {
		return nil, err
	}
	held := wz.FromFragments(split.Validation)
	if len(held) == 0 {
		held = train
	}
	scores := make([]float64, len(held))
	for i, w := range held {
		scores[i] = sc.Score(w)
	}
	return &WindowModel{
		Std:       wz.Std(),
		Threshold: quantileThreshold(scores, 1-StageTheta),
		Scorer:    sc,
	}, nil
}

// QuantileThreshold returns the q-quantile of scores; scores strictly
// above it flag. It is the threshold rule shared by every promoted
// window level, exported for stage families built outside this package
// (internal/recon) so their thresholds follow the same θ discipline.
func QuantileThreshold(scores []float64, q float64) float64 {
	return quantileThreshold(scores, q)
}

// quantileThreshold returns the q-quantile of scores (sorted ascending);
// scores strictly above it flag.
func quantileThreshold(scores []float64, q float64) float64 {
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
