package baselines_test

import (
	"testing"

	"icsdetect/internal/baselines"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

// fixture builds shared windows for the baseline tests.
type fixture struct {
	train []*baselines.Window
	test  []*baselines.Window
}

var sharedFixture *fixture

func loadFixture(t *testing.T) *fixture {
	t.Helper()
	if sharedFixture != nil {
		return sharedFixture
	}
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(8000, 7))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	g := signature.Granularity{IntervalClusters: 2, CRCClusters: 2, PressureBins: 5, SetpointBins: 3, PIDClusters: 2}
	enc, err := signature.FitEncoder(split.Train, g, 1)
	if err != nil {
		t.Fatalf("fit encoder: %v", err)
	}
	wz, err := baselines.NewWindowizer(enc, split.Train)
	if err != nil {
		t.Fatalf("windowizer: %v", err)
	}
	sharedFixture = &fixture{
		train: wz.FromFragments(split.Train),
		test:  wz.FromStream(split.Test),
	}
	return sharedFixture
}

func countAttackWindows(ws []*baselines.Window) int {
	n := 0
	for _, w := range ws {
		if w.IsAttack() {
			n++
		}
	}
	return n
}

func TestWindowizer(t *testing.T) {
	fx := loadFixture(t)
	if len(fx.train) == 0 || len(fx.test) == 0 {
		t.Fatalf("empty windows: train=%d test=%d", len(fx.train), len(fx.test))
	}
	for _, w := range fx.train {
		if w.IsAttack() {
			t.Fatalf("training window contains attack label %v", w.Label)
		}
		if len(w.Sample) != baselines.WindowSize*17 {
			t.Fatalf("sample dim %d, want %d", len(w.Sample), baselines.WindowSize*17)
		}
		if len(w.Sigs) != baselines.WindowSize {
			t.Fatalf("window has %d signatures, want %d", len(w.Sigs), baselines.WindowSize)
		}
	}
	if a := countAttackWindows(fx.test); a == 0 {
		t.Fatal("test windows contain no attacks")
	}
}

func evaluateScorer(t *testing.T, s baselines.Scorer, minF1 float64) *baselines.Result {
	t.Helper()
	fx := loadFixture(t)
	res, err := baselines.Evaluate(s, fx.test, 0.7)
	if err != nil {
		t.Fatalf("evaluate %s: %v", s.Name(), err)
	}
	t.Logf("%s: %v thr=%.4g", res.Name, res.Summary, res.Threshold)
	if res.Summary.F1 < minF1 {
		t.Errorf("%s F1 = %.3f, want >= %.2f", s.Name(), res.Summary.F1, minF1)
	}
	return res
}

func TestBFBaseline(t *testing.T) {
	fx := loadFixture(t)
	bf, err := baselines.NewBF(fx.train, 0.005)
	if err != nil {
		t.Fatalf("new bf: %v", err)
	}
	evaluateScorer(t, bf, 0.4)
}

func TestBayesNetBaseline(t *testing.T) {
	fx := loadFixture(t)
	bn, err := baselines.NewBayesNet(fx.train)
	if err != nil {
		t.Fatalf("new bn: %v", err)
	}
	evaluateScorer(t, bn, 0.4)
}

func TestSVDDBaseline(t *testing.T) {
	fx := loadFixture(t)
	svdd, err := baselines.NewSVDD(baselines.Samples(fx.train), baselines.SVDDConfig{Seed: 3})
	if err != nil {
		t.Fatalf("new svdd: %v", err)
	}
	t.Logf("svdd support vectors: %d", svdd.SupportVectors())
	evaluateScorer(t, svdd, 0.1)
}

func TestIsolationForestBaseline(t *testing.T) {
	fx := loadFixture(t)
	f, err := baselines.NewIsolationForest(baselines.Samples(fx.train), baselines.IForestConfig{Seed: 4})
	if err != nil {
		t.Fatalf("new iforest: %v", err)
	}
	evaluateScorer(t, f, 0.05)
}

func TestGMMBaseline(t *testing.T) {
	fx := loadFixture(t)
	// GMM is unsupervised: fitted on the unlabeled test traffic, per [52].
	g, err := baselines.NewGMM(baselines.Samples(fx.test), baselines.GMMConfig{Seed: 5})
	if err != nil {
		t.Fatalf("new gmm: %v", err)
	}
	evaluateScorer(t, g, 0.05)
}

func TestPCASVDBaseline(t *testing.T) {
	fx := loadFixture(t)
	p, err := baselines.NewPCASVD(baselines.Samples(fx.test), baselines.PCAConfig{Seed: 6})
	if err != nil {
		t.Fatalf("new pca: %v", err)
	}
	t.Logf("pca components: %d", p.Components())
	evaluateScorer(t, p, 0.05)
}
