package baselines

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// PCASVD is the PCA with Singular Value Decomposition baseline from [52]:
// fit the principal subspace of the (unlabeled) traffic and score each
// window by its squared reconstruction error — anomalies project poorly
// onto the normal subspace.
//
// The eigendecomposition of the covariance matrix is computed with
// orthogonal (power) iteration with deflation, which is exactly the
// truncated SVD of the centered data matrix.
type PCASVD struct {
	mean []float64
	// comps holds the top-q eigenvectors (unit norm) as matrix rows, the
	// operand layout of the mathx residual kernels.
	comps *mathx.Matrix
}

var (
	_ Scorer            = (*PCASVD)(nil)
	_ BatchVectorScorer = (*PCASVD)(nil)
)

// PCAConfig bundles the PCA hyper-parameters.
type PCAConfig struct {
	// Components is the retained subspace dimension q; when 0, the smallest
	// q explaining VarianceTarget of total variance is chosen.
	Components int
	// VarianceTarget defaults to 0.95.
	VarianceTarget float64
	// Iterations bounds each power iteration (default 100).
	Iterations int
	Seed       uint64
}

// NewPCASVD fits the subspace.
func NewPCASVD(data [][]float64, cfg PCAConfig) (*PCASVD, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("baselines: pca needs data")
	}
	if cfg.VarianceTarget <= 0 || cfg.VarianceTarget > 1 {
		cfg.VarianceTarget = 0.95
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 100
	}
	dim := len(data[0])
	n := float64(len(data))

	p := &PCASVD{mean: make([]float64, dim)}
	for _, x := range data {
		mathx.Axpy(p.mean, 1, x)
	}
	for d := range p.mean {
		p.mean[d] /= n
	}

	// Covariance matrix (dim × dim); dim = 68 for 4-package windows, so
	// this stays small.
	cov := mathx.NewMatrix(dim, dim)
	centered := make([]float64, dim)
	for _, x := range data {
		for d := range x {
			centered[d] = x[d] - p.mean[d]
		}
		cov.AddOuter(1/n, centered, centered)
	}
	var totalVar float64
	for d := 0; d < dim; d++ {
		totalVar += cov.At(d, d)
	}

	maxComp := cfg.Components
	if maxComp <= 0 || maxComp > dim {
		maxComp = dim
	}
	rng := mathx.NewRNG(cfg.Seed + 7)
	var explained float64
	var components [][]float64
	for q := 0; q < maxComp; q++ {
		vec, eig := powerIteration(cov, cfg.Iterations, rng)
		if eig <= 1e-10 {
			break
		}
		components = append(components, vec)
		explained += eig
		// Deflate: cov -= eig * v vᵀ.
		cov.AddOuter(-eig, vec, vec)
		if cfg.Components <= 0 && totalVar > 0 && explained/totalVar >= cfg.VarianceTarget {
			break
		}
	}
	if len(components) == 0 {
		return nil, fmt.Errorf("baselines: pca found no components (zero variance data)")
	}
	p.comps = mathx.NewMatrix(len(components), dim)
	for j, vec := range components {
		copy(p.comps.Row(j), vec)
	}
	return p, nil
}

// powerIteration returns the dominant eigenvector and eigenvalue of m.
func powerIteration(m *mathx.Matrix, iters int, rng *mathx.RNG) ([]float64, float64) {
	dim := m.Rows
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormScaled(0, 1)
	}
	normalize(v)
	next := make([]float64, dim)
	var eig float64
	for it := 0; it < iters; it++ {
		m.MulVec(next, v)
		eig = mathx.Norm2(next)
		if eig == 0 {
			return v, 0
		}
		for i := range next {
			next[i] /= eig
		}
		// Convergence check via alignment.
		if math.Abs(mathx.Dot(next, v)) > 1-1e-12 {
			copy(v, next)
			break
		}
		copy(v, next)
	}
	return append([]float64(nil), v...), eig
}

func normalize(v []float64) {
	n := mathx.Norm2(v)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Name implements Scorer.
func (p *PCASVD) Name() string { return "PCA-SVD" }

// Score returns the squared reconstruction error ‖x̃ − ΠΠᵀx̃‖² where x̃ is the
// centered window and Π the component matrix.
func (p *PCASVD) Score(w *Window) float64 {
	return p.ScoreVector(w.Sample, make([]float64, p.ScratchLen()))
}

// ScratchLen implements VectorScorer.
func (p *PCASVD) ScratchLen() int { return 2*len(p.mean) + p.comps.Rows }

// ScoreVector implements VectorScorer: the reconstruction error of one
// standardized sample, through the same mathx kernel association the
// batched path replicates bitwise.
func (p *PCASVD) ScoreVector(x, scratch []float64) float64 {
	dim := len(p.mean)
	centered := scratch[:dim]
	recon := scratch[dim : 2*dim]
	proj := scratch[2*dim : 2*dim+p.comps.Rows]
	for d := 0; d < dim; d++ {
		centered[d] = x[d] - p.mean[d]
	}
	return p.comps.ReconResidual(centered, proj, recon)
}

// NewScoreBatch implements BatchVectorScorer.
func (p *PCASVD) NewScoreBatch(maxBatch int) ScoreBatch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	dim := len(p.mean)
	b := &pcaScoreBatch{
		p:        p,
		centered: make([][]float64, maxBatch),
		proj:     make([]float64, 4*p.comps.Rows),
		recon:    make([]float64, 4*dim),
	}
	backing := make([]float64, maxBatch*dim)
	for i := range b.centered {
		b.centered[i] = backing[i*dim : (i+1)*dim]
	}
	return b
}

// pcaScoreBatch scores many samples through the tiled residual kernel.
type pcaScoreBatch struct {
	p           *PCASVD
	centered    [][]float64
	proj, recon []float64
}

// Score implements ScoreBatch; bitwise-identical to ScoreVector per row.
func (b *pcaScoreBatch) Score(dst []float64, xs [][]float64) {
	dim := len(b.p.mean)
	for i, x := range xs {
		c := b.centered[i]
		for d := 0; d < dim; d++ {
			c[d] = x[d] - b.p.mean[d]
		}
	}
	b.p.comps.ReconResidualBatch(dst, b.centered[:len(xs)], b.proj, b.recon)
}

// Components returns the retained subspace dimension.
func (p *PCASVD) Components() int { return p.comps.Rows }
