package baselines

import (
	"strings"

	"icsdetect/internal/bloom"
)

// Scorer assigns an anomaly score to a window; higher means more anomalous.
// A window is classified anomalous when the score exceeds a threshold tuned
// by TuneThreshold.
type Scorer interface {
	Name() string
	Score(w *Window) float64
}

// BF is the 4-package Bloom filter baseline: the concatenated signatures of
// a command-response cycle form one composite signature stored in a Bloom
// filter ("the Bloom filter used here is different than the one we used for
// package level anomaly detector", §VIII-C).
type BF struct {
	filter *bloom.Filter
}

var _ Scorer = (*BF)(nil)

// NewBF builds the filter over the training windows.
func NewBF(train []*Window, fp float64) (*BF, error) {
	f, err := bloom.NewWithEstimates(uint64(len(train)+1), fp)
	if err != nil {
		return nil, err
	}
	for _, w := range train {
		f.AddString(compositeSig(w))
	}
	return &BF{filter: f}, nil
}

func compositeSig(w *Window) string {
	return strings.Join(w.Sigs, "|")
}

// Name implements Scorer.
func (b *BF) Name() string { return "BF" }

// Score returns 1 for windows whose composite signature is unknown.
func (b *BF) Score(w *Window) float64 {
	if b.filter.ContainsString(compositeSig(w)) {
		return 0
	}
	return 1
}
