package baselines

import (
	"fmt"
	"math"
	"sort"
)

// BayesNet is the Bayesian network baseline "whose structure is
// automatically learned from training data" [53]: a Chow-Liu tree over the
// discretized features of the 4-package window, scored by negative
// log-likelihood. The Chow-Liu construction is the classic
// information-theoretic structure learner: it finds the maximum spanning
// tree of pairwise mutual information, which maximizes the likelihood among
// all tree-shaped networks.
type BayesNet struct {
	// parent[i] is the parent variable of node i in the tree (-1 for the
	// root).
	parent []int
	// card[i] is the cardinality of variable i.
	card []int
	// cpt[i] holds P(x_i | parent value) as log-probabilities:
	// cpt[i][pv*card[i]+v]. The root uses pv=0.
	cpt [][]float64
}

var _ Scorer = (*BayesNet)(nil)

// NewBayesNet learns structure and parameters from attack-free training
// windows.
func NewBayesNet(train []*Window) (*BayesNet, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("baselines: bayes net needs training windows")
	}
	nvar := len(train[0].Discrete)
	data := make([][]int, len(train))
	for i, w := range train {
		if len(w.Discrete) != nvar {
			return nil, fmt.Errorf("baselines: window %d has %d variables, want %d", i, len(w.Discrete), nvar)
		}
		data[i] = w.Discrete
	}

	card := make([]int, nvar)
	for _, row := range data {
		for i, v := range row {
			if v+1 > card[i] {
				card[i] = v + 1
			}
		}
	}
	// Allow one extra value per variable so unseen test values stay inside
	// the CPT domain (they receive only Laplace mass).
	for i := range card {
		card[i]++
	}

	bn := &BayesNet{card: card}
	bn.learnStructure(data)
	bn.fitCPTs(data)
	return bn, nil
}

// learnStructure computes pairwise mutual information and extracts the
// maximum spanning tree (Prim's algorithm), rooted at variable 0.
func (bn *BayesNet) learnStructure(data [][]int) {
	nvar := len(bn.card)
	n := float64(len(data))

	mi := func(a, b int) float64 {
		joint := make(map[[2]int]float64)
		ma := make(map[int]float64)
		mb := make(map[int]float64)
		for _, row := range data {
			joint[[2]int{row[a], row[b]}]++
			ma[row[a]]++
			mb[row[b]]++
		}
		var m float64
		for k, c := range joint {
			pxy := c / n
			px := ma[k[0]] / n
			py := mb[k[1]] / n
			m += pxy * math.Log(pxy/(px*py))
		}
		return m
	}

	// Prim's MST over the complete MI graph.
	inTree := make([]bool, nvar)
	bestEdge := make([]float64, nvar)
	bestFrom := make([]int, nvar)
	bn.parent = make([]int, nvar)
	for i := range bestEdge {
		bestEdge[i] = -1
		bestFrom[i] = -1
		bn.parent[i] = -1
	}
	inTree[0] = true
	for i := 1; i < nvar; i++ {
		bestEdge[i] = mi(0, i)
		bestFrom[i] = 0
	}
	for added := 1; added < nvar; added++ {
		// Pick the highest-MI frontier edge, ties broken by index for
		// determinism.
		pick := -1
		for i := 0; i < nvar; i++ {
			if !inTree[i] && (pick < 0 || bestEdge[i] > bestEdge[pick]) {
				pick = i
			}
		}
		inTree[pick] = true
		bn.parent[pick] = bestFrom[pick]
		for i := 0; i < nvar; i++ {
			if !inTree[i] {
				if w := mi(pick, i); w > bestEdge[i] {
					bestEdge[i] = w
					bestFrom[i] = pick
				}
			}
		}
	}
}

// fitCPTs estimates conditional probability tables with Laplace smoothing.
func (bn *BayesNet) fitCPTs(data [][]int) {
	nvar := len(bn.card)
	bn.cpt = make([][]float64, nvar)
	for i := 0; i < nvar; i++ {
		pc := 1
		if bn.parent[i] >= 0 {
			pc = bn.card[bn.parent[i]]
		}
		counts := make([]float64, pc*bn.card[i])
		for _, row := range data {
			pv := 0
			if bn.parent[i] >= 0 {
				pv = row[bn.parent[i]]
			}
			counts[pv*bn.card[i]+clampVal(row[i], bn.card[i])]++
		}
		logp := make([]float64, len(counts))
		for pv := 0; pv < pc; pv++ {
			var total float64
			for v := 0; v < bn.card[i]; v++ {
				total += counts[pv*bn.card[i]+v]
			}
			denom := total + float64(bn.card[i]) // Laplace
			for v := 0; v < bn.card[i]; v++ {
				logp[pv*bn.card[i]+v] = math.Log((counts[pv*bn.card[i]+v] + 1) / denom)
			}
		}
		bn.cpt[i] = logp
	}
}

func clampVal(v, card int) int {
	if v < 0 {
		return 0
	}
	if v >= card {
		return card - 1
	}
	return v
}

// Name implements Scorer.
func (bn *BayesNet) Name() string { return "BN" }

// Score returns the negative log-likelihood of the window under the tree.
func (bn *BayesNet) Score(w *Window) float64 {
	var ll float64
	for i := range bn.card {
		v := clampVal(w.Discrete[i], bn.card[i])
		pv := 0
		if bn.parent[i] >= 0 {
			pv = clampVal(w.Discrete[bn.parent[i]], bn.card[bn.parent[i]])
		}
		ll += bn.cpt[i][pv*bn.card[i]+v]
	}
	return -ll
}

// Structure returns a human-readable summary of the learned tree (for
// documentation and tests).
func (bn *BayesNet) Structure() []string {
	out := make([]string, 0, len(bn.parent))
	for i, p := range bn.parent {
		out = append(out, fmt.Sprintf("x%d <- x%d", i, p))
	}
	sort.Strings(out)
	return out
}
