package baselines

import (
	"fmt"
	"math"

	"icsdetect/internal/mathx"
)

// GMM is the Gaussian Mixture Model baseline from [52]: an unsupervised
// diagonal-covariance mixture fitted with EM on unlabeled traffic
// (anomalies included, per the paper's description of the unsupervised
// comparison models). The anomaly score is the negative log-likelihood.
type GMM struct {
	weights []float64
	means   [][]float64
	vars    [][]float64
	// logNorm[k] = −0.5 Σ_d log(2π σ²_kd), precomputed.
	logNorm []float64
}

var (
	_ Scorer            = (*GMM)(nil)
	_ BatchVectorScorer = (*GMM)(nil)
)

// GMMConfig bundles the mixture hyper-parameters.
type GMMConfig struct {
	Components int // default 8
	MaxIter    int // default 60
	Tol        float64
	Seed       uint64
}

// NewGMM fits the mixture with EM (k-means++-style seeding on means).
func NewGMM(data [][]float64, cfg GMMConfig) (*GMM, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("baselines: gmm needs data")
	}
	if cfg.Components <= 0 {
		cfg.Components = 8
	}
	if cfg.Components > len(data) {
		cfg.Components = len(data)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 60
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	k := cfg.Components
	dim := len(data[0])
	rng := mathx.NewRNG(cfg.Seed)

	g := &GMM{
		weights: make([]float64, k),
		means:   make([][]float64, k),
		vars:    make([][]float64, k),
		logNorm: make([]float64, k),
	}
	// Init: random distinct points as means, global variance.
	globalVar := make([]float64, dim)
	globalMean := make([]float64, dim)
	for _, x := range data {
		mathx.Axpy(globalMean, 1, x)
	}
	for d := range globalMean {
		globalMean[d] /= float64(len(data))
	}
	for _, x := range data {
		for d := range x {
			diff := x[d] - globalMean[d]
			globalVar[d] += diff * diff
		}
	}
	for d := range globalVar {
		globalVar[d] = globalVar[d]/float64(len(data)) + 1e-6
	}
	perm := rng.Perm(len(data))
	for j := 0; j < k; j++ {
		g.weights[j] = 1 / float64(k)
		g.means[j] = append([]float64(nil), data[perm[j%len(perm)]]...)
		g.vars[j] = append([]float64(nil), globalVar...)
	}
	g.refreshNorm()

	resp := make([]float64, k)
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Accumulators.
		nk := make([]float64, k)
		sum := make([][]float64, k)
		sqsum := make([][]float64, k)
		for j := 0; j < k; j++ {
			sum[j] = make([]float64, dim)
			sqsum[j] = make([]float64, dim)
		}
		var ll float64
		for _, x := range data {
			// E step for one point (log-space responsibilities).
			var maxLog float64 = math.Inf(-1)
			for j := 0; j < k; j++ {
				resp[j] = math.Log(g.weights[j]+1e-300) + g.logDensity(j, x)
				if resp[j] > maxLog {
					maxLog = resp[j]
				}
			}
			var z float64
			for j := 0; j < k; j++ {
				resp[j] = math.Exp(resp[j] - maxLog)
				z += resp[j]
			}
			ll += maxLog + math.Log(z)
			// M-step accumulation.
			for j := 0; j < k; j++ {
				r := resp[j] / z
				nk[j] += r
				for d := 0; d < dim; d++ {
					sum[j][d] += r * x[d]
					sqsum[j][d] += r * x[d] * x[d]
				}
			}
		}
		// M step.
		for j := 0; j < k; j++ {
			if nk[j] < 1e-8 {
				// Dead component: re-seed at a random point.
				g.means[j] = append([]float64(nil), data[rng.Intn(len(data))]...)
				g.vars[j] = append([]float64(nil), globalVar...)
				g.weights[j] = 1e-6
				continue
			}
			g.weights[j] = nk[j] / float64(len(data))
			for d := 0; d < dim; d++ {
				mu := sum[j][d] / nk[j]
				g.means[j][d] = mu
				g.vars[j][d] = math.Max(sqsum[j][d]/nk[j]-mu*mu, 1e-6)
			}
		}
		normalizeWeights(g.weights)
		g.refreshNorm()
		if math.Abs(ll-prevLL) < cfg.Tol*math.Abs(ll) {
			break
		}
		prevLL = ll
	}
	return g, nil
}

func normalizeWeights(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	for i := range w {
		w[i] /= s
	}
}

func (g *GMM) refreshNorm() {
	for j := range g.logNorm {
		var s float64
		for _, v := range g.vars[j] {
			s += math.Log(2 * math.Pi * v)
		}
		g.logNorm[j] = -0.5 * s
	}
}

// logDensity returns log N(x; μ_j, diag σ²_j).
func (g *GMM) logDensity(j int, x []float64) float64 {
	return g.logNorm[j] - 0.5*mathx.ScaledSqDist(x, g.means[j], g.vars[j])
}

// Name implements Scorer.
func (g *GMM) Name() string { return "GMM" }

// Score returns the negative log-likelihood of the window.
func (g *GMM) Score(w *Window) float64 {
	return g.ScoreVector(w.Sample, make([]float64, g.ScratchLen()))
}

// ScratchLen implements VectorScorer.
func (g *GMM) ScratchLen() int { return len(g.weights) }

// ScoreVector implements VectorScorer: the negative log-likelihood of one
// standardized sample, computed from the per-component Mahalanobis terms
// by scoreFromQ — the combine step the batched path shares.
func (g *GMM) ScoreVector(x, scratch []float64) float64 {
	qs := scratch[:len(g.weights)]
	for j := range g.weights {
		qs[j] = mathx.ScaledSqDist(x, g.means[j], g.vars[j])
	}
	return g.scoreFromQ(qs, 1)
}

// scoreFromQ folds per-component squared distances (qs[j*stride]) into the
// negative log-likelihood with the exact association of the original
// scalar Score (log-sum-exp over components in index order).
func (g *GMM) scoreFromQ(qs []float64, stride int) float64 {
	maxLog := math.Inf(-1)
	var z float64
	// Two sequential passes over j, like the original logs-slice loop. The
	// parenthesization matters: the original rounded logDensity's
	// (logNorm − q/2) before adding log(w), and changing that association
	// would drift scores by ULPs from every pre-refactor build.
	for j := range g.weights {
		l := math.Log(g.weights[j]+1e-300) + (g.logNorm[j] - 0.5*qs[j*stride])
		if l > maxLog {
			maxLog = l
		}
	}
	for j := range g.weights {
		l := math.Log(g.weights[j]+1e-300) + (g.logNorm[j] - 0.5*qs[j*stride])
		z += math.Exp(l - maxLog)
	}
	return -(maxLog + math.Log(z))
}

// NewScoreBatch implements BatchVectorScorer.
func (g *GMM) NewScoreBatch(maxBatch int) ScoreBatch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &gmmScoreBatch{g: g, q: make([]float64, len(g.weights)*maxBatch), maxBatch: maxBatch}
}

// gmmScoreBatch scores many samples with one tiled Mahalanobis pass per
// component (means/variances stream through the cache once per tile of
// four samples), then the shared scoreFromQ combine per sample.
type gmmScoreBatch struct {
	g        *GMM
	q        []float64 // component-major: q[j*maxBatch+i]
	maxBatch int
}

// Score implements ScoreBatch; bitwise-identical to ScoreVector per row.
func (b *gmmScoreBatch) Score(dst []float64, xs [][]float64) {
	n := len(xs)
	for j := range b.g.weights {
		mathx.ScaledSqDistBatch(b.q[j*b.maxBatch:j*b.maxBatch+n], xs, b.g.means[j], b.g.vars[j])
	}
	for i := 0; i < n; i++ {
		dst[i] = b.g.scoreFromQ(b.q[i:], b.maxBatch)
	}
}
