package baselines

import (
	"math"
	"testing"

	"icsdetect/internal/mathx"
)

// syntheticWindows builds windows from numeric vectors directly, bypassing
// the windowizer, for model-level unit tests.
func syntheticWindows(samples [][]float64) []*Window {
	out := make([]*Window, len(samples))
	for i, s := range samples {
		out[i] = &Window{Sample: s}
	}
	return out
}

func gaussianCloud(rng *mathx.RNG, center []float64, n int, std float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, len(center))
		for d := range center {
			p[d] = center[d] + rng.NormScaled(0, std)
		}
		out[i] = p
	}
	return out
}

func TestTuneThresholdSeparable(t *testing.T) {
	// Anomalies score 10, normals score 0: a perfect threshold exists.
	scores := []float64{0, 0, 0, 0, 10, 10}
	labels := []bool{false, false, false, false, true, true}
	thr, sum, err := TuneThreshold(scores, labels, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if sum.F1 != 1 {
		t.Errorf("F1 = %v on separable scores", sum.F1)
	}
	if thr <= 0 || thr >= 10 {
		t.Errorf("threshold %v outside the separating gap", thr)
	}
}

func TestTuneThresholdAccuracyConstraint(t *testing.T) {
	// Flagging everything maximizes recall but destroys accuracy; the
	// constrained tuner must prefer a quieter threshold.
	scores := make([]float64, 100)
	labels := make([]bool, 100)
	for i := range scores {
		scores[i] = 1 // all identical: thresholds are all-or-nothing
		labels[i] = i < 10
	}
	_, sum, err := TuneThreshold(scores, labels, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accuracy < 0.7 {
		t.Errorf("constrained tuner returned accuracy %v", sum.Accuracy)
	}
}

func TestTuneThresholdErrors(t *testing.T) {
	if _, _, err := TuneThreshold(nil, nil, 0.7); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := TuneThreshold([]float64{1}, []bool{true, false}, 0.7); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestStandardizer(t *testing.T) {
	samples := [][]float64{{0, 10}, {2, 10}, {4, 10}}
	s, err := FitStandardizer(samples)
	if err != nil {
		t.Fatal(err)
	}
	x := s.Apply([]float64{2, 10})
	if math.Abs(x[0]) > 1e-12 {
		t.Errorf("mean not removed: %v", x[0])
	}
	// Constant feature: centered but not scaled to infinity.
	if x[1] != 0 || math.IsNaN(x[1]) {
		t.Errorf("constant feature mishandled: %v", x[1])
	}
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestSVDDSeparatesOutliers(t *testing.T) {
	rng := mathx.NewRNG(1)
	train := gaussianCloud(rng, []float64{0, 0, 0}, 400, 1)
	svdd, err := NewSVDD(train, SVDDConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inlier := &Window{Sample: []float64{0.2, -0.1, 0.3}}
	outlier := &Window{Sample: []float64{8, 8, 8}}
	if svdd.Score(inlier) >= svdd.Score(outlier) {
		t.Errorf("inlier score %v >= outlier score %v",
			svdd.Score(inlier), svdd.Score(outlier))
	}
	if svdd.SupportVectors() == 0 {
		t.Error("no support vectors")
	}
}

func TestSVDDSubsampling(t *testing.T) {
	rng := mathx.NewRNG(2)
	train := gaussianCloud(rng, []float64{0}, 500, 1)
	svdd, err := NewSVDD(train, SVDDConfig{MaxTrain: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if svdd.SupportVectors() > 100 {
		t.Errorf("support vectors %d exceed the subsample", svdd.SupportVectors())
	}
}

func TestIsolationForestSeparatesOutliers(t *testing.T) {
	rng := mathx.NewRNG(3)
	train := gaussianCloud(rng, []float64{0, 0}, 600, 1)
	f, err := NewIsolationForest(train, IForestConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inlier := &Window{Sample: []float64{0.1, 0.1}}
	outlier := &Window{Sample: []float64{10, -10}}
	si, so := f.Score(inlier), f.Score(outlier)
	if si >= so {
		t.Errorf("inlier %v >= outlier %v", si, so)
	}
	if si <= 0 || si > 1 || so <= 0 || so > 1 {
		t.Errorf("scores outside (0,1]: %v, %v", si, so)
	}
}

func TestGMMLikelihood(t *testing.T) {
	rng := mathx.NewRNG(5)
	data := append(gaussianCloud(rng, []float64{0, 0}, 300, 0.5),
		gaussianCloud(rng, []float64{6, 6}, 300, 0.5)...)
	g, err := NewGMM(data, GMMConfig{Components: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	nearMode := &Window{Sample: []float64{0.1, 0}}
	between := &Window{Sample: []float64{3, 3}}
	if g.Score(nearMode) >= g.Score(between) {
		t.Errorf("mode NLL %v >= void NLL %v", g.Score(nearMode), g.Score(between))
	}
}

func TestPCAReconstructsLowRank(t *testing.T) {
	rng := mathx.NewRNG(7)
	// Data on a 1-D line embedded in 5-D plus tiny noise.
	dir := []float64{1, 2, -1, 0.5, 3}
	var data [][]float64
	for i := 0; i < 400; i++ {
		a := rng.NormScaled(0, 2)
		p := make([]float64, len(dir))
		for d := range dir {
			p[d] = a*dir[d] + rng.NormScaled(0, 0.01)
		}
		data = append(data, p)
	}
	p, err := NewPCASVD(data, PCAConfig{VarianceTarget: 0.95, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 1 {
		t.Errorf("components = %d, want 1 for line data", p.Components())
	}
	onLine := &Window{Sample: []float64{2, 4, -2, 1, 6}}
	offLine := &Window{Sample: []float64{2, 4, -2, 1, -6}}
	if p.Score(onLine) >= p.Score(offLine) {
		t.Errorf("on-line error %v >= off-line error %v", p.Score(onLine), p.Score(offLine))
	}
}

func TestBayesNetLearnsDependence(t *testing.T) {
	rng := mathx.NewRNG(9)
	// x1 = x0, x2 independent: tree must link x0-x1.
	var train []*Window
	for i := 0; i < 500; i++ {
		a := rng.Intn(3)
		train = append(train, &Window{Discrete: []int{a, a, rng.Intn(3)}})
	}
	bn, err := NewBayesNet(train)
	if err != nil {
		t.Fatal(err)
	}
	// A window violating x1 = x0 must score worse than a consistent one.
	good := &Window{Discrete: []int{1, 1, 0}}
	bad := &Window{Discrete: []int{1, 2, 0}}
	if bn.Score(good) >= bn.Score(bad) {
		t.Errorf("consistent NLL %v >= violating NLL %v", bn.Score(good), bn.Score(bad))
	}
	if len(bn.Structure()) != 3 {
		t.Errorf("structure size = %d", len(bn.Structure()))
	}
}

func TestBayesNetUnseenValues(t *testing.T) {
	var train []*Window
	for i := 0; i < 100; i++ {
		train = append(train, &Window{Discrete: []int{0, 1}})
	}
	bn, err := NewBayesNet(train)
	if err != nil {
		t.Fatal(err)
	}
	seen := &Window{Discrete: []int{0, 1}}
	unseen := &Window{Discrete: []int{1, 0}}
	if bn.Score(seen) >= bn.Score(unseen) {
		t.Error("unseen configuration not scored as more anomalous")
	}
}

func TestModelConstructorErrors(t *testing.T) {
	if _, err := NewBayesNet(nil); err == nil {
		t.Error("BN empty train accepted")
	}
	if _, err := NewSVDD(nil, SVDDConfig{}); err == nil {
		t.Error("SVDD empty train accepted")
	}
	if _, err := NewIsolationForest(nil, IForestConfig{}); err == nil {
		t.Error("IF empty train accepted")
	}
	if _, err := NewGMM(nil, GMMConfig{}); err == nil {
		t.Error("GMM empty data accepted")
	}
	if _, err := NewPCASVD(nil, PCAConfig{}); err == nil {
		t.Error("PCA empty data accepted")
	}
	if _, err := NewBF(nil, 0.01); err != nil {
		t.Error("BF with zero windows should still construct (empty filter)")
	}
}

func TestBFScoreBinary(t *testing.T) {
	train := syntheticWindows([][]float64{{1}, {2}})
	train[0].Sigs = []string{"a", "b"}
	train[1].Sigs = []string{"a", "c"}
	bf, err := NewBF(train, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	known := &Window{Sigs: []string{"a", "b"}}
	unknown := &Window{Sigs: []string{"x", "y"}}
	if bf.Score(known) != 0 {
		t.Error("known composite scored anomalous")
	}
	if bf.Score(unknown) != 1 {
		t.Error("unknown composite scored normal")
	}
}
