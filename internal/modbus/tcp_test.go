package modbus

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func startTestServer(t *testing.T) (*RegisterBank, *Client) {
	t.Helper()
	bank := NewRegisterBank(16, 8)
	srv := NewServer(bank, 4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	client, err := Dial(addr.String(), 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return bank, client
}

func TestClientServerReadWrite(t *testing.T) {
	_, client := startTestServer(t)
	if err := client.WriteSingleRegister(3, 777); err != nil {
		t.Fatal(err)
	}
	values, err := client.ReadHoldingRegisters(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if values[3] != 777 {
		t.Errorf("register 3 = %d", values[3])
	}
}

func TestClientServerWriteMultiple(t *testing.T) {
	_, client := startTestServer(t)
	want := []uint16{10, 20, 30, 40}
	if err := client.WriteMultipleRegisters(2, want); err != nil {
		t.Fatal(err)
	}
	values, err := client.ReadHoldingRegisters(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if values[i] != want[i] {
			t.Errorf("register %d = %d, want %d", 2+i, values[i], want[i])
		}
	}
}

func TestClientServerCoils(t *testing.T) {
	bank, client := startTestServer(t)
	if err := client.WriteCoil(1, true); err != nil {
		t.Fatal(err)
	}
	on, err := bank.ReadCoil(1)
	if err != nil {
		t.Fatal(err)
	}
	if !on {
		t.Error("coil write lost")
	}
}

func TestClientServerException(t *testing.T) {
	_, client := startTestServer(t)
	_, err := client.ReadHoldingRegisters(1000, 2)
	var exc *ExceptionError
	if !errors.As(err, &exc) {
		t.Fatalf("want ExceptionError, got %v", err)
	}
	if exc.Code != ExcIllegalAddress {
		t.Errorf("exception code = %v", exc.Code)
	}
}

func TestServerIllegalFunction(t *testing.T) {
	_, client := startTestServer(t)
	_, err := client.Do(&PDU{Function: 0x2B})
	var exc *ExceptionError
	if !errors.As(err, &exc) || exc.Code != ExcIllegalFunction {
		t.Fatalf("want illegal-function exception, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	bank := NewRegisterBank(64, 1)
	srv := NewServer(bank, 4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := Dial(addr.String(), 4, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				if err := cl.WriteSingleRegister(uint16(id), uint16(i)); err != nil {
					errs <- err
					return
				}
				if _, err := cl.ReadHoldingRegisters(uint16(id), 1); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRegisterBankReadOnly(t *testing.T) {
	bank := NewRegisterBank(4, 0)
	bank.MarkReadOnly(2)
	if err := bank.WriteHolding(2, 1); err == nil {
		t.Error("read-only register accepted a write")
	}
	if err := bank.StoreMeasurement(2, 9); err != nil {
		t.Fatal(err)
	}
	values, err := bank.ReadHolding(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if values[0] != 9 {
		t.Errorf("measurement = %d", values[0])
	}
}

func TestRegisterBankHooks(t *testing.T) {
	bank := NewRegisterBank(4, 2)
	var gotAddr, gotVal int
	bank.SetWriteHook(func(addr, value uint16) {
		gotAddr, gotVal = int(addr), int(value)
	})
	coilCalls := 0
	bank.SetCoilHook(func(addr uint16, on bool) { coilCalls++ })
	if err := bank.WriteHolding(1, 55); err != nil {
		t.Fatal(err)
	}
	if gotAddr != 1 || gotVal != 55 {
		t.Errorf("hook got (%d, %d)", gotAddr, gotVal)
	}
	if err := bank.WriteCoil(0, true); err != nil {
		t.Fatal(err)
	}
	if coilCalls != 1 {
		t.Errorf("coil hook calls = %d", coilCalls)
	}
}

func TestRegisterBankBounds(t *testing.T) {
	bank := NewRegisterBank(4, 1)
	if _, err := bank.ReadHolding(3, 2); err == nil {
		t.Error("out-of-range read accepted")
	}
	if _, err := bank.ReadHolding(0, 0); err == nil {
		t.Error("zero-quantity read accepted")
	}
	if err := bank.WriteHolding(4, 1); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := bank.WriteCoil(1, true); err == nil {
		t.Error("out-of-range coil accepted")
	}
}

func TestHandleDiagnosticsEcho(t *testing.T) {
	bank := NewRegisterBank(1, 0)
	req := WriteSingleRequest(FuncDiagnostics, 4, 0)
	resp := bank.Handle(req)
	if resp.IsException() {
		t.Fatalf("diagnostics rejected: %+v", resp)
	}
	if string(resp.Data) != string(req.Data) {
		t.Error("diagnostics did not echo")
	}
}

func TestHandleInvalidCoilValue(t *testing.T) {
	bank := NewRegisterBank(1, 1)
	req := WriteSingleRequest(FuncWriteSingleCoil, 0, 0x1234) // neither ON nor OFF
	if resp := bank.Handle(req); !resp.IsException() || resp.ExceptionCode() != ExcIllegalValue {
		t.Errorf("invalid coil value not rejected: %+v", resp)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(NewRegisterBank(1, 0), 1)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // must not panic or deadlock
}
