// Package modbus implements the Modbus application protocol used by the gas
// pipeline SCADA system (paper §VII): PDU encoding/decoding for the common
// public function codes plus the vendor-specific read-state code the
// testbed uses, RTU CRC-16 checksums, MBAP/TCP framing, a thread-safe
// register model, and TCP master/slave endpoints built on net.
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FunctionCode identifies a Modbus function.
type FunctionCode uint8

// Public function codes supported by this implementation. ReadState is the
// vendor-specific code (user-defined range 65-72) the gas pipeline testbed
// uses to read the full controller state block in one transaction.
const (
	FuncReadCoils            FunctionCode = 0x01
	FuncReadDiscreteInputs   FunctionCode = 0x02
	FuncReadHoldingRegisters FunctionCode = 0x03
	FuncReadInputRegisters   FunctionCode = 0x04
	FuncWriteSingleCoil      FunctionCode = 0x05
	FuncWriteSingleRegister  FunctionCode = 0x06
	FuncDiagnostics          FunctionCode = 0x08
	FuncWriteMultipleRegs    FunctionCode = 0x10
	FuncReadState            FunctionCode = 0x41 // vendor-specific state block read
)

// exceptionFlag marks a response PDU as an exception.
const exceptionFlag = 0x80

// ExceptionCode enumerates Modbus exception responses.
type ExceptionCode uint8

// Standard Modbus exception codes.
const (
	ExcIllegalFunction ExceptionCode = 0x01
	ExcIllegalAddress  ExceptionCode = 0x02
	ExcIllegalValue    ExceptionCode = 0x03
	ExcDeviceFailure   ExceptionCode = 0x04
)

// Errors shared across the codec.
var (
	ErrShortPDU    = errors.New("modbus: PDU too short")
	ErrBadLength   = errors.New("modbus: inconsistent length field")
	ErrBadCRC      = errors.New("modbus: CRC mismatch")
	ErrFrameTooBig = errors.New("modbus: frame exceeds 256 bytes")
)

// ExceptionError is returned by the client when the slave responds with an
// exception PDU.
type ExceptionError struct {
	Function FunctionCode
	Code     ExceptionCode
}

func (e *ExceptionError) Error() string {
	return fmt.Sprintf("modbus: exception 0x%02x for function 0x%02x", uint8(e.Code), uint8(e.Function))
}

// PDU is a decoded protocol data unit: function code plus payload.
type PDU struct {
	Function FunctionCode
	Data     []byte
}

// IsException reports whether the PDU is an exception response.
func (p *PDU) IsException() bool { return uint8(p.Function)&exceptionFlag != 0 }

// ExceptionCode returns the exception code of an exception PDU (0 otherwise).
func (p *PDU) ExceptionCode() ExceptionCode {
	if !p.IsException() || len(p.Data) == 0 {
		return 0
	}
	return ExceptionCode(p.Data[0])
}

// Length returns the encoded PDU length in bytes.
func (p *PDU) Length() int { return 1 + len(p.Data) }

// Encode appends the wire form of the PDU to dst.
func (p *PDU) Encode(dst []byte) []byte {
	dst = append(dst, byte(p.Function))
	return append(dst, p.Data...)
}

// DecodePDU parses a raw PDU.
func DecodePDU(raw []byte) (*PDU, error) {
	if len(raw) < 1 {
		return nil, ErrShortPDU
	}
	data := make([]byte, len(raw)-1)
	copy(data, raw[1:])
	return &PDU{Function: FunctionCode(raw[0]), Data: data}, nil
}

// NewException builds an exception response PDU for the given request
// function.
func NewException(fn FunctionCode, code ExceptionCode) *PDU {
	return &PDU{Function: FunctionCode(uint8(fn) | exceptionFlag), Data: []byte{byte(code)}}
}

// ReadRequest builds a read request (coils/discrete/holding/input) for
// quantity items starting at addr.
func ReadRequest(fn FunctionCode, addr, quantity uint16) *PDU {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:], addr)
	binary.BigEndian.PutUint16(data[2:], quantity)
	return &PDU{Function: fn, Data: data}
}

// ParseReadRequest extracts (addr, quantity) from a read request.
func ParseReadRequest(p *PDU) (addr, quantity uint16, err error) {
	if len(p.Data) != 4 {
		return 0, 0, fmt.Errorf("%w: read request has %d payload bytes", ErrBadLength, len(p.Data))
	}
	return binary.BigEndian.Uint16(p.Data[0:]), binary.BigEndian.Uint16(p.Data[2:]), nil
}

// ReadRegistersResponse builds the response to a register read: byte count
// followed by big-endian register values.
func ReadRegistersResponse(fn FunctionCode, values []uint16) *PDU {
	data := make([]byte, 1+2*len(values))
	data[0] = byte(2 * len(values))
	for i, v := range values {
		binary.BigEndian.PutUint16(data[1+2*i:], v)
	}
	return &PDU{Function: fn, Data: data}
}

// ParseReadRegistersResponse extracts register values from a read response.
func ParseReadRegistersResponse(p *PDU) ([]uint16, error) {
	if len(p.Data) < 1 {
		return nil, ErrShortPDU
	}
	count := int(p.Data[0])
	if count%2 != 0 || len(p.Data) != 1+count {
		return nil, fmt.Errorf("%w: byte count %d vs payload %d", ErrBadLength, count, len(p.Data)-1)
	}
	values := make([]uint16, count/2)
	for i := range values {
		values[i] = binary.BigEndian.Uint16(p.Data[1+2*i:])
	}
	return values, nil
}

// ReadBitsResponse builds the response to a coil/discrete-input read: byte
// count followed by the bit-packed states, LSB first.
func ReadBitsResponse(fn FunctionCode, bits []bool) *PDU {
	byteCount := (len(bits) + 7) / 8
	data := make([]byte, 1+byteCount)
	data[0] = byte(byteCount)
	for i, on := range bits {
		if on {
			data[1+i/8] |= 1 << (i % 8)
		}
	}
	return &PDU{Function: fn, Data: data}
}

// ParseReadBitsResponse extracts up to quantity bit states from a coil read
// response.
func ParseReadBitsResponse(p *PDU, quantity int) ([]bool, error) {
	if len(p.Data) < 1 {
		return nil, ErrShortPDU
	}
	byteCount := int(p.Data[0])
	if len(p.Data) != 1+byteCount || quantity > byteCount*8 {
		return nil, fmt.Errorf("%w: bits response count %d for quantity %d",
			ErrBadLength, byteCount, quantity)
	}
	bits := make([]bool, quantity)
	for i := range bits {
		bits[i] = p.Data[1+i/8]&(1<<(i%8)) != 0
	}
	return bits, nil
}

// WriteSingleRequest builds a write-single-coil or write-single-register
// request. For coils, value must be 0x0000 or 0xFF00.
func WriteSingleRequest(fn FunctionCode, addr, value uint16) *PDU {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:], addr)
	binary.BigEndian.PutUint16(data[2:], value)
	return &PDU{Function: fn, Data: data}
}

// ParseWriteSingleRequest extracts (addr, value) from a write-single request
// or its echo response.
func ParseWriteSingleRequest(p *PDU) (addr, value uint16, err error) {
	if len(p.Data) != 4 {
		return 0, 0, fmt.Errorf("%w: write-single has %d payload bytes", ErrBadLength, len(p.Data))
	}
	return binary.BigEndian.Uint16(p.Data[0:]), binary.BigEndian.Uint16(p.Data[2:]), nil
}

// WriteMultipleRequest builds a write-multiple-registers request.
func WriteMultipleRequest(addr uint16, values []uint16) *PDU {
	data := make([]byte, 5+2*len(values))
	binary.BigEndian.PutUint16(data[0:], addr)
	binary.BigEndian.PutUint16(data[2:], uint16(len(values)))
	data[4] = byte(2 * len(values))
	for i, v := range values {
		binary.BigEndian.PutUint16(data[5+2*i:], v)
	}
	return &PDU{Function: FuncWriteMultipleRegs, Data: data}
}

// ParseWriteMultipleRequest extracts (addr, values).
func ParseWriteMultipleRequest(p *PDU) (addr uint16, values []uint16, err error) {
	if len(p.Data) < 5 {
		return 0, nil, ErrShortPDU
	}
	addr = binary.BigEndian.Uint16(p.Data[0:])
	quantity := int(binary.BigEndian.Uint16(p.Data[2:]))
	byteCount := int(p.Data[4])
	if byteCount != 2*quantity || len(p.Data) != 5+byteCount {
		return 0, nil, fmt.Errorf("%w: write-multiple count %d bytes %d payload %d",
			ErrBadLength, quantity, byteCount, len(p.Data)-5)
	}
	values = make([]uint16, quantity)
	for i := range values {
		values[i] = binary.BigEndian.Uint16(p.Data[5+2*i:])
	}
	return addr, values, nil
}

// WriteMultipleResponse builds the echo response for write-multiple.
func WriteMultipleResponse(addr, quantity uint16) *PDU {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:], addr)
	binary.BigEndian.PutUint16(data[2:], quantity)
	return &PDU{Function: FuncWriteMultipleRegs, Data: data}
}
