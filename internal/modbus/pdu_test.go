package modbus

import (
	"bytes"
	"testing"
	"testing/quick"

	"icsdetect/internal/mathx"
)

func TestReadRequestRoundTrip(t *testing.T) {
	req := ReadRequest(FuncReadHoldingRegisters, 0x1234, 7)
	addr, quantity, err := ParseReadRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if addr != 0x1234 || quantity != 7 {
		t.Errorf("got (%d, %d)", addr, quantity)
	}
}

func TestReadRegistersResponseRoundTrip(t *testing.T) {
	values := []uint16{1, 0xFFFF, 42, 0}
	resp := ReadRegistersResponse(FuncReadState, values)
	got, err := ParseReadRegistersResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(values) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range values {
		if got[i] != values[i] {
			t.Errorf("value %d = %d, want %d", i, got[i], values[i])
		}
	}
}

func TestWriteSingleRoundTrip(t *testing.T) {
	req := WriteSingleRequest(FuncWriteSingleRegister, 9, 0xBEEF)
	addr, value, err := ParseWriteSingleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if addr != 9 || value != 0xBEEF {
		t.Errorf("got (%d, %#x)", addr, value)
	}
}

func TestWriteMultipleRoundTrip(t *testing.T) {
	f := func(addr uint16, raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 100 {
			return true
		}
		req := WriteMultipleRequest(addr, raw)
		gotAddr, gotValues, err := ParseWriteMultipleRequest(req)
		if err != nil || gotAddr != addr || len(gotValues) != len(raw) {
			return false
		}
		for i := range raw {
			if gotValues[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPDUEncodeDecode(t *testing.T) {
	p := &PDU{Function: FuncReadCoils, Data: []byte{1, 2, 3}}
	raw := p.Encode(nil)
	back, err := DecodePDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Function != p.Function || !bytes.Equal(back.Data, p.Data) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if _, err := DecodePDU(nil); err == nil {
		t.Error("empty PDU accepted")
	}
}

func TestExceptionPDU(t *testing.T) {
	exc := NewException(FuncReadHoldingRegisters, ExcIllegalAddress)
	if !exc.IsException() {
		t.Fatal("not flagged as exception")
	}
	if exc.ExceptionCode() != ExcIllegalAddress {
		t.Errorf("code = %v", exc.ExceptionCode())
	}
	normal := &PDU{Function: FuncReadCoils}
	if normal.IsException() {
		t.Error("normal PDU flagged as exception")
	}
}

func TestParseErrors(t *testing.T) {
	bad := &PDU{Function: FuncReadHoldingRegisters, Data: []byte{1}}
	if _, _, err := ParseReadRequest(bad); err == nil {
		t.Error("short read request accepted")
	}
	if _, err := ParseReadRegistersResponse(&PDU{Function: FuncReadState, Data: []byte{3, 0, 0, 0}}); err == nil {
		t.Error("odd byte count accepted")
	}
	if _, _, err := ParseWriteMultipleRequest(&PDU{Function: FuncWriteMultipleRegs, Data: []byte{0, 0, 0, 2, 2, 0, 0}}); err == nil {
		t.Error("inconsistent write-multiple accepted")
	}
}

// TestCRC16KnownVector checks the standard Modbus reference value: the CRC
// of {0x01,0x04,0x02,0xFF,0xFF} is 0xB880.
func TestCRC16KnownVector(t *testing.T) {
	if got := CRC16([]byte{0x01, 0x04, 0x02, 0xFF, 0xFF}); got != 0x80B8 && got != 0xB880 {
		// Byte order convention differs by documentation source; the
		// little-endian on-wire form used by EncodeRTU fixes ours.
		t.Logf("CRC = %#x", got)
	}
	// Deterministic self-check.
	if CRC16([]byte{1, 2, 3}) == CRC16([]byte{3, 2, 1}) {
		t.Error("CRC insensitive to byte order")
	}
}

// TestCRC16DetectsBitFlips: any single-bit corruption must change the CRC,
// the property the crc_rate feature relies on.
func TestCRC16DetectsBitFlips(t *testing.T) {
	rng := mathx.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		orig := CRC16(data)
		bit := rng.Intn(n * 8)
		data[bit/8] ^= 1 << (bit % 8)
		if CRC16(data) == orig {
			t.Fatalf("single-bit flip undetected (len=%d bit=%d)", n, bit)
		}
	}
}

func TestRTURoundTrip(t *testing.T) {
	frame := &RTUFrame{Address: 4, PDU: ReadRequest(FuncReadState, 0, 11)}
	raw, err := EncodeRTU(frame)
	if err != nil {
		t.Fatal(err)
	}
	back, crcOK, err := DecodeRTU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !crcOK {
		t.Error("valid CRC reported invalid")
	}
	if back.Address != 4 || back.PDU.Function != FuncReadState {
		t.Errorf("frame mismatch: %+v", back)
	}
}

func TestRTUCorruptCRC(t *testing.T) {
	frame := &RTUFrame{Address: 4, PDU: ReadRequest(FuncReadState, 0, 11), CorruptCRC: true}
	raw, err := EncodeRTU(frame)
	if err != nil {
		t.Fatal(err)
	}
	_, crcOK, err := DecodeRTU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if crcOK {
		t.Error("corrupted CRC reported valid")
	}
}

func TestRTUSizeLimit(t *testing.T) {
	big := &PDU{Function: FuncWriteMultipleRegs, Data: make([]byte, 300)}
	if _, err := EncodeRTU(&RTUFrame{Address: 1, PDU: big}); err == nil {
		t.Error("oversized RTU frame accepted")
	}
	if _, _, err := DecodeRTU([]byte{1, 2}); err == nil {
		t.Error("short RTU frame accepted")
	}
}

func TestTCPFrameRoundTrip(t *testing.T) {
	f := func(tid uint16, unit uint8, fn uint8, payload []byte) bool {
		if len(payload) > 250 {
			return true
		}
		frame := &TCPFrame{
			Header: MBAPHeader{TransactionID: tid, UnitID: unit},
			PDU:    &PDU{Function: FunctionCode(fn), Data: payload},
		}
		var buf bytes.Buffer
		if err := WriteTCPFrame(&buf, frame); err != nil {
			return false
		}
		back, err := ReadTCPFrame(&buf)
		if err != nil {
			return false
		}
		return back.Header.TransactionID == tid && back.Header.UnitID == unit &&
			back.PDU.Function == FunctionCode(fn) && bytes.Equal(back.PDU.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
