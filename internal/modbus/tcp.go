package modbus

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server is a Modbus/TCP slave: it accepts connections and services request
// frames against a RegisterBank.
type Server struct {
	bank *RegisterBank
	unit uint8

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer creates a slave with the given unit ID backed by bank.
func NewServer(bank *RegisterBank, unit uint8) *Server {
	return &Server{bank: bank, unit: unit, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close is called.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("modbus: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("modbus: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadTCPFrame(conn)
		if err != nil {
			return
		}
		resp := &TCPFrame{
			Header: MBAPHeader{
				TransactionID: req.Header.TransactionID,
				UnitID:        s.unit,
			},
			PDU: s.bank.Handle(req.PDU),
		}
		if err := WriteTCPFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener, closes all connections and waits for serving
// goroutines to exit. It is safe to call multiple times.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client is a Modbus/TCP master bound to a single slave endpoint. It is safe
// for concurrent use; transactions are serialized over one connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	nextTID uint16
	unit    uint8
	timeout time.Duration
}

// Dial connects a master to the slave at addr with the given unit ID and
// per-transaction timeout.
func Dial(addr string, unit uint8, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("modbus: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, unit: unit, timeout: timeout}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one request/response transaction and returns the response
// PDU. Exception responses are returned as *ExceptionError.
func (c *Client) Do(req *PDU) (*PDU, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextTID++
	frame := &TCPFrame{
		Header: MBAPHeader{TransactionID: c.nextTID, UnitID: c.unit},
		PDU:    req,
	}
	if c.timeout > 0 {
		deadline := time.Now().Add(c.timeout)
		if err := c.conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("modbus: set deadline: %w", err)
		}
	}
	if err := WriteTCPFrame(c.conn, frame); err != nil {
		return nil, fmt.Errorf("modbus: write request: %w", err)
	}
	resp, err := ReadTCPFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("modbus: read response: %w", err)
	}
	if resp.Header.TransactionID != c.nextTID {
		return nil, fmt.Errorf("modbus: transaction ID mismatch: sent %d got %d",
			c.nextTID, resp.Header.TransactionID)
	}
	if resp.PDU.IsException() {
		return resp.PDU, &ExceptionError{Function: req.Function, Code: resp.PDU.ExceptionCode()}
	}
	return resp.PDU, nil
}

// ReadHoldingRegisters reads quantity registers starting at addr.
func (c *Client) ReadHoldingRegisters(addr, quantity uint16) ([]uint16, error) {
	resp, err := c.Do(ReadRequest(FuncReadHoldingRegisters, addr, quantity))
	if err != nil {
		return nil, err
	}
	return ParseReadRegistersResponse(resp)
}

// WriteSingleRegister writes value to addr.
func (c *Client) WriteSingleRegister(addr, value uint16) error {
	_, err := c.Do(WriteSingleRequest(FuncWriteSingleRegister, addr, value))
	return err
}

// WriteMultipleRegisters writes values starting at addr.
func (c *Client) WriteMultipleRegisters(addr uint16, values []uint16) error {
	_, err := c.Do(WriteMultipleRequest(addr, values))
	return err
}

// ReadCoils reads quantity coil states starting at addr.
func (c *Client) ReadCoils(addr, quantity uint16) ([]bool, error) {
	resp, err := c.Do(ReadRequest(FuncReadCoils, addr, quantity))
	if err != nil {
		return nil, err
	}
	return ParseReadBitsResponse(resp, int(quantity))
}

// WriteCoil sets a coil on or off.
func (c *Client) WriteCoil(addr uint16, on bool) error {
	value := uint16(0x0000)
	if on {
		value = 0xFF00
	}
	_, err := c.Do(WriteSingleRequest(FuncWriteSingleCoil, addr, value))
	return err
}
