package modbus

import (
	"fmt"
	"sync"
)

// RegisterBank is a thread-safe block of holding registers and coils backing
// a Modbus slave. Register addressing is zero-based.
type RegisterBank struct {
	mu       sync.RWMutex
	holding  []uint16
	coils    []bool
	onWrite  func(addr uint16, value uint16)
	onCoil   func(addr uint16, on bool)
	readOnly map[uint16]bool
}

// NewRegisterBank allocates a bank with the given number of holding
// registers and coils.
func NewRegisterBank(holdingCount, coilCount int) *RegisterBank {
	return &RegisterBank{
		holding:  make([]uint16, holdingCount),
		coils:    make([]bool, coilCount),
		readOnly: make(map[uint16]bool),
	}
}

// SetWriteHook registers a callback invoked (without the lock held) after a
// successful holding-register write. The plant uses this to react to
// parameter changes.
func (b *RegisterBank) SetWriteHook(fn func(addr uint16, value uint16)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onWrite = fn
}

// SetCoilHook registers a callback invoked after a successful coil write.
func (b *RegisterBank) SetCoilHook(fn func(addr uint16, on bool)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onCoil = fn
}

// MarkReadOnly makes a holding register reject writes with an illegal-address
// exception (used for measurement registers).
func (b *RegisterBank) MarkReadOnly(addr uint16) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.readOnly[addr] = true
}

// ReadHolding returns quantity registers starting at addr.
func (b *RegisterBank) ReadHolding(addr, quantity uint16) ([]uint16, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	end := int(addr) + int(quantity)
	if quantity == 0 || end > len(b.holding) {
		return nil, fmt.Errorf("modbus: read [%d,%d) outside bank of %d registers",
			addr, end, len(b.holding))
	}
	out := make([]uint16, quantity)
	copy(out, b.holding[addr:end])
	return out, nil
}

// WriteHolding stores value at addr.
func (b *RegisterBank) WriteHolding(addr, value uint16) error {
	b.mu.Lock()
	if int(addr) >= len(b.holding) {
		b.mu.Unlock()
		return fmt.Errorf("modbus: write address %d outside bank of %d registers",
			addr, len(b.holding))
	}
	if b.readOnly[addr] {
		b.mu.Unlock()
		return fmt.Errorf("modbus: register %d is read-only", addr)
	}
	b.holding[addr] = value
	hook := b.onWrite
	b.mu.Unlock()
	if hook != nil {
		hook(addr, value)
	}
	return nil
}

// StoreMeasurement writes a register bypassing the read-only check; the
// plant uses it to publish sensor values.
func (b *RegisterBank) StoreMeasurement(addr, value uint16) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int(addr) >= len(b.holding) {
		return fmt.Errorf("modbus: measurement address %d outside bank of %d registers",
			addr, len(b.holding))
	}
	b.holding[addr] = value
	return nil
}

// ReadCoil returns the coil at addr.
func (b *RegisterBank) ReadCoil(addr uint16) (bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if int(addr) >= len(b.coils) {
		return false, fmt.Errorf("modbus: coil %d outside bank of %d coils", addr, len(b.coils))
	}
	return b.coils[addr], nil
}

// WriteCoil sets the coil at addr.
func (b *RegisterBank) WriteCoil(addr uint16, on bool) error {
	b.mu.Lock()
	if int(addr) >= len(b.coils) {
		b.mu.Unlock()
		return fmt.Errorf("modbus: coil %d outside bank of %d coils", addr, len(b.coils))
	}
	b.coils[addr] = on
	hook := b.onCoil
	b.mu.Unlock()
	if hook != nil {
		hook(addr, on)
	}
	return nil
}

// readCoils returns quantity coil states starting at addr.
func (b *RegisterBank) readCoils(addr, quantity uint16) ([]bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	end := int(addr) + int(quantity)
	if quantity == 0 || end > len(b.coils) {
		return nil, fmt.Errorf("modbus: coil read [%d,%d) outside bank of %d coils",
			addr, end, len(b.coils))
	}
	out := make([]bool, quantity)
	copy(out, b.coils[addr:end])
	return out, nil
}

// Snapshot returns a copy of all holding registers.
func (b *RegisterBank) Snapshot() []uint16 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]uint16, len(b.holding))
	copy(out, b.holding)
	return out
}

// Handle services a request PDU against the bank, returning the response
// PDU. Unknown functions yield an illegal-function exception; bad addresses
// yield illegal-address exceptions (the MFCI/Recon attacks exercise these
// paths).
func (b *RegisterBank) Handle(req *PDU) *PDU {
	switch req.Function {
	case FuncReadHoldingRegisters, FuncReadInputRegisters, FuncReadState:
		addr, quantity, err := ParseReadRequest(req)
		if err != nil {
			return NewException(req.Function, ExcIllegalValue)
		}
		values, err := b.ReadHolding(addr, quantity)
		if err != nil {
			return NewException(req.Function, ExcIllegalAddress)
		}
		return ReadRegistersResponse(req.Function, values)

	case FuncWriteSingleRegister:
		addr, value, err := ParseWriteSingleRequest(req)
		if err != nil {
			return NewException(req.Function, ExcIllegalValue)
		}
		if err := b.WriteHolding(addr, value); err != nil {
			return NewException(req.Function, ExcIllegalAddress)
		}
		return &PDU{Function: req.Function, Data: append([]byte(nil), req.Data...)}

	case FuncWriteMultipleRegs:
		addr, values, err := ParseWriteMultipleRequest(req)
		if err != nil {
			return NewException(req.Function, ExcIllegalValue)
		}
		for i, v := range values {
			if err := b.WriteHolding(addr+uint16(i), v); err != nil {
				return NewException(req.Function, ExcIllegalAddress)
			}
		}
		return WriteMultipleResponse(addr, uint16(len(values)))

	case FuncWriteSingleCoil:
		addr, value, err := ParseWriteSingleRequest(req)
		if err != nil || (value != 0x0000 && value != 0xFF00) {
			return NewException(req.Function, ExcIllegalValue)
		}
		if err := b.WriteCoil(addr, value == 0xFF00); err != nil {
			return NewException(req.Function, ExcIllegalAddress)
		}
		return &PDU{Function: req.Function, Data: append([]byte(nil), req.Data...)}

	case FuncReadCoils, FuncReadDiscreteInputs:
		addr, quantity, err := ParseReadRequest(req)
		if err != nil {
			return NewException(req.Function, ExcIllegalValue)
		}
		bits, err := b.readCoils(addr, quantity)
		if err != nil {
			return NewException(req.Function, ExcIllegalAddress)
		}
		return ReadBitsResponse(req.Function, bits)

	case FuncDiagnostics:
		// Loopback diagnostic: echo the request payload.
		return &PDU{Function: req.Function, Data: append([]byte(nil), req.Data...)}

	default:
		return NewException(req.Function, ExcIllegalFunction)
	}
}
