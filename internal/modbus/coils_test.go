package modbus

import (
	"testing"
	"testing/quick"
	"time"
)

func TestReadBitsResponseRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		resp := ReadBitsResponse(FuncReadCoils, raw)
		back, err := ParseReadBitsResponse(resp, len(raw))
		if err != nil || len(back) != len(raw) {
			return false
		}
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseReadBitsResponseErrors(t *testing.T) {
	if _, err := ParseReadBitsResponse(&PDU{Function: FuncReadCoils}, 1); err == nil {
		t.Error("empty payload accepted")
	}
	resp := ReadBitsResponse(FuncReadCoils, []bool{true})
	if _, err := ParseReadBitsResponse(resp, 100); err == nil {
		t.Error("quantity beyond byte count accepted")
	}
}

func TestClientReadCoils(t *testing.T) {
	bank := NewRegisterBank(4, 10)
	srv := NewServer(bank, 4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String(), 4, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := bank.WriteCoil(2, true); err != nil {
		t.Fatal(err)
	}
	if err := bank.WriteCoil(7, true); err != nil {
		t.Fatal(err)
	}
	bits, err := client.ReadCoils(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{false, false, true, false, false, false, false, true, false, false} {
		if bits[i] != want {
			t.Errorf("coil %d = %v, want %v", i, bits[i], want)
		}
	}
	// Out-of-range coil read yields an exception.
	if _, err := client.ReadCoils(8, 5); err == nil {
		t.Error("out-of-range coil read accepted")
	}
}

func TestHandleDiscreteInputs(t *testing.T) {
	bank := NewRegisterBank(1, 4)
	resp := bank.Handle(ReadRequest(FuncReadDiscreteInputs, 0, 4))
	if resp.IsException() {
		t.Fatalf("discrete input read rejected: %+v", resp)
	}
	bits, err := ParseReadBitsResponse(resp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 4 {
		t.Errorf("bits = %v", bits)
	}
}
