package modbus

import (
	"encoding/binary"
	"fmt"
	"io"
)

// crcTable holds the byte-indexed remainders of the Modbus CRC-16
// polynomial: one table lookup per input byte instead of eight
// shift-and-conditional-xor rounds. Every frame on the wire path — sim,
// tap and trace decode — pays this checksum, so the serving daemon's
// ingest throughput is directly coupled to it.
var crcTable [256]uint16

func init() {
	for i := range crcTable {
		crc := uint16(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0xA001
			} else {
				crc >>= 1
			}
		}
		crcTable[i] = crc
	}
}

// CRC16 computes the Modbus RTU CRC-16 (polynomial 0xA001, init 0xFFFF) over
// data. The gas-pipeline dataset's "crc rate" feature is derived from this
// checksum: the master tracks the fraction of frames whose received CRC
// disagrees with the recomputed one.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = (crc >> 8) ^ crcTable[byte(crc)^b]
	}
	return crc
}

// RTUFrame is a Modbus RTU application data unit: station address, PDU and
// trailing CRC.
type RTUFrame struct {
	Address uint8
	PDU     *PDU
	// CRC holds the checksum as found on the wire when decoding; EncodeRTU
	// always writes the correct checksum unless CorruptCRC is set.
	CRC uint16
	// CorruptCRC forces EncodeRTU to emit an invalid checksum, used by the
	// attack injector to model transmission tampering.
	CorruptCRC bool
}

// maxRTUSize is the Modbus-mandated RTU frame size limit.
const maxRTUSize = 256

// EncodeRTU serializes the frame (address + PDU + CRC16 little-endian).
func EncodeRTU(f *RTUFrame) ([]byte, error) {
	if f.PDU.Length()+3 > maxRTUSize {
		return nil, ErrFrameTooBig
	}
	buf := make([]byte, 0, f.PDU.Length()+3)
	buf = append(buf, f.Address)
	buf = f.PDU.Encode(buf)
	crc := CRC16(buf)
	if f.CorruptCRC {
		crc ^= 0xFFFF
	}
	buf = binary.LittleEndian.AppendUint16(buf, crc)
	return buf, nil
}

// DecodeRTU parses an RTU frame. It returns the frame along with a boolean
// reporting whether the CRC was valid; a CRC mismatch is not an error at
// this layer because the SCADA monitor must still record the corrupt frame
// (it feeds the crc_rate feature).
func DecodeRTU(raw []byte) (*RTUFrame, bool, error) {
	if len(raw) < 4 {
		return nil, false, ErrShortPDU
	}
	if len(raw) > maxRTUSize {
		return nil, false, ErrFrameTooBig
	}
	body := raw[:len(raw)-2]
	wire := binary.LittleEndian.Uint16(raw[len(raw)-2:])
	pdu, err := DecodePDU(body[1:])
	if err != nil {
		return nil, false, err
	}
	f := &RTUFrame{Address: body[0], PDU: pdu, CRC: wire}
	return f, CRC16(body) == wire, nil
}

// MBAPHeader is the Modbus/TCP application protocol header.
type MBAPHeader struct {
	TransactionID uint16
	ProtocolID    uint16 // always 0 for Modbus
	UnitID        uint8
}

// mbapLen is the fixed MBAP header size on the wire.
const mbapLen = 7

// TCPFrame is a Modbus TCP ADU: MBAP header plus PDU.
type TCPFrame struct {
	Header MBAPHeader
	PDU    *PDU
}

// EncodeTCP serializes the TCP frame.
func EncodeTCP(f *TCPFrame) ([]byte, error) {
	plen := f.PDU.Length()
	if plen+1 > 0xFFFF {
		return nil, ErrFrameTooBig
	}
	buf := make([]byte, 0, mbapLen+plen)
	buf = binary.BigEndian.AppendUint16(buf, f.Header.TransactionID)
	buf = binary.BigEndian.AppendUint16(buf, f.Header.ProtocolID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(plen+1)) // length = unit + PDU
	buf = append(buf, f.Header.UnitID)
	buf = f.PDU.Encode(buf)
	return buf, nil
}

// DecodeTCP parses one complete TCP frame from a byte slice. Unlike
// ReadTCPFrame it is strict about the MBAP length field: raw must contain
// exactly the header plus the advertised body, so that EncodeTCP∘DecodeTCP
// reproduces the input bytes (the round-trip property the trace replayer
// and the frame fuzzer rely on).
func DecodeTCP(raw []byte) (*TCPFrame, error) {
	if len(raw) < mbapLen+1 {
		return nil, ErrShortPDU
	}
	length := binary.BigEndian.Uint16(raw[4:6])
	if length < 2 || len(raw) != mbapLen+int(length)-1 {
		return nil, fmt.Errorf("%w: MBAP length %d for %d raw bytes", ErrBadLength, length, len(raw))
	}
	pdu, err := DecodePDU(raw[mbapLen:])
	if err != nil {
		return nil, err
	}
	return &TCPFrame{
		Header: MBAPHeader{
			TransactionID: binary.BigEndian.Uint16(raw[0:2]),
			ProtocolID:    binary.BigEndian.Uint16(raw[2:4]),
			UnitID:        raw[6],
		},
		PDU: pdu,
	}, nil
}

// ReadTCPFrame reads one complete TCP frame from r, blocking until the full
// length-prefixed payload arrives.
func ReadTCPFrame(r io.Reader) (*TCPFrame, error) {
	hdr := make([]byte, mbapLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint16(hdr[4:6])
	if length < 2 {
		return nil, fmt.Errorf("%w: MBAP length %d", ErrBadLength, length)
	}
	body := make([]byte, length-1) // unit ID already consumed in hdr[6]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	pdu, err := DecodePDU(body)
	if err != nil {
		return nil, err
	}
	return &TCPFrame{
		Header: MBAPHeader{
			TransactionID: binary.BigEndian.Uint16(hdr[0:2]),
			ProtocolID:    binary.BigEndian.Uint16(hdr[2:4]),
			UnitID:        hdr[6],
		},
		PDU: pdu,
	}, nil
}

// WriteTCPFrame serializes f and writes it to w.
func WriteTCPFrame(w io.Writer, f *TCPFrame) error {
	buf, err := EncodeTCP(f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
