package modbus

import "math"

// CRCRateWindow is the rolling frame window over which a SCADA monitor
// computes the CRC failure rate. Short enough that a corruption burst decays
// within a couple of poll cycles, matching the testbed's crc_rate column
// (mostly zero, sticky bursts after corruption). Exported so consumers that
// size behaviour off the window (the gas-pipeline DoS decay tail) cannot
// drift from the monitor.
const CRCRateWindow = 16

// CRCRateMonitor tracks the fraction of recently observed frames whose CRC
// failed, over a rolling window of CRCRateWindow frames. It is the single
// source of the dataset's crc_rate feature: the gas-pipeline simulator and
// the trace replayer both feed it one frame at a time, so a recorded trace
// reproduces the exact same rates on replay as the live capture produced.
//
// The zero value is ready to use. The monitor is not safe for concurrent
// use; each observer owns its own.
type CRCRateMonitor struct {
	ring  [CRCRateWindow]bool
	idx   int
	count int
	seen  int
}

// Observe records one frame (corrupt or clean) and returns the rate the
// monitor would log with it: failures/window over the frames seen so far,
// rounded to four decimals the way the testbed logs it.
func (m *CRCRateMonitor) Observe(corrupt bool) float64 {
	if m.seen < CRCRateWindow {
		m.seen++
	} else if m.ring[m.idx] {
		m.count--
	}
	m.ring[m.idx] = corrupt
	if corrupt {
		m.count++
	}
	m.idx = (m.idx + 1) % CRCRateWindow
	rate := float64(m.count) / float64(m.seen)
	return math.Round(rate*10000) / 10000
}

// Reset returns the monitor to its initial (no frames seen) state.
func (m *CRCRateMonitor) Reset() {
	*m = CRCRateMonitor{}
}
