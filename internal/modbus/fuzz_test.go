package modbus

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// addSeedFrames seeds a fuzzer with the committed golden-corpus frames
// (written by `icsreplay -record`, see testdata/frames) plus a few
// hand-built well-formed frames, so the fuzzer starts from wire shapes the
// detector actually sees.
func addSeedFrames(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "frames", "*.bin"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	// Synthetic seeds: one per PDU family, in both framings.
	pdus := []*PDU{
		ReadRequest(FuncReadState, 0, 11),
		ReadRegistersResponse(FuncReadState, []uint16{800, 45, 15, 5, 250, 2, 2, 0, 0, 0, 812}),
		WriteMultipleRequest(0, []uint16{800, 45, 15, 5, 250, 2, 2, 0, 0, 0}),
		WriteMultipleResponse(0, 10),
		WriteSingleRequest(FuncDiagnostics, 4, 0),
		NewException(FuncReadHoldingRegisters, ExcIllegalAddress),
	}
	for i, pdu := range pdus {
		rtu, err := EncodeRTU(&RTUFrame{Address: 4, PDU: pdu, CorruptCRC: i%2 == 1})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rtu)
		tcp, err := EncodeTCP(&TCPFrame{
			Header: MBAPHeader{TransactionID: uint16(i), UnitID: 4},
			PDU:    pdu,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tcp)
	}
}

// FuzzPDUDecode: DecodePDU must never panic, and any PDU it accepts must
// re-encode to exactly the input bytes (the decode→encode round trip the
// trace format depends on). The parse helpers must reject-or-succeed, never
// panic, on whatever DecodePDU produces.
func FuzzPDUDecode(f *testing.F) {
	addSeedFrames(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		pdu, err := DecodePDU(raw)
		if err != nil {
			return
		}
		enc := pdu.Encode(nil)
		if !bytes.Equal(enc, raw) {
			t.Fatalf("PDU round trip changed bytes:\n in=%x\nout=%x", raw, enc)
		}
		_ = pdu.IsException()
		_ = pdu.ExceptionCode()
		_, _, _ = ParseReadRequest(pdu)
		_, _ = ParseReadRegistersResponse(pdu)
		_, _ = ParseReadBitsResponse(pdu, 8)
		_, _, _ = ParseWriteSingleRequest(pdu)
		_, _, _ = ParseWriteMultipleRequest(pdu)
	})
}

// FuzzFrameDecode: RTU and TCP frame decoding must never panic on arbitrary
// bytes, and decoding must be stable under re-encoding: the frame body
// round-trips bytewise (the CRC tail of an RTU frame is only guaranteed to
// preserve *validity*, since EncodeRTU always writes a canonical checksum),
// and decoding the re-encoded frame yields the same frame again.
func FuzzFrameDecode(f *testing.F) {
	addSeedFrames(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if frame, ok, err := DecodeRTU(raw); err == nil {
			frame.CorruptCRC = !ok
			enc, err := EncodeRTU(frame)
			if err != nil {
				t.Fatalf("re-encode decoded RTU frame: %v", err)
			}
			if !bytes.Equal(enc[:len(enc)-2], raw[:len(raw)-2]) {
				t.Fatalf("RTU body changed:\n in=%x\nout=%x", raw, enc)
			}
			again, ok2, err := DecodeRTU(enc)
			if err != nil {
				t.Fatalf("re-decode RTU frame: %v", err)
			}
			if ok2 != ok {
				t.Fatalf("CRC validity flipped: %v -> %v", ok, ok2)
			}
			if again.Address != frame.Address || again.PDU.Function != frame.PDU.Function ||
				!bytes.Equal(again.PDU.Data, frame.PDU.Data) {
				t.Fatalf("RTU frame changed across round trip: %+v vs %+v", frame, again)
			}
		}
		if frame, err := DecodeTCP(raw); err == nil {
			enc, err := EncodeTCP(frame)
			if err != nil {
				t.Fatalf("re-encode decoded TCP frame: %v", err)
			}
			if !bytes.Equal(enc, raw) {
				t.Fatalf("TCP round trip changed bytes:\n in=%x\nout=%x", raw, enc)
			}
		}
	})
}
