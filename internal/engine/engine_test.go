package engine_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

var (
	fwOnce  sync.Once
	fwValue *core.Framework
	fwSplit *dataset.Split
	fwErr   error
)

// testFramework trains one small framework shared by every engine test.
func testFramework(t *testing.T) (*core.Framework, *dataset.Split) {
	t.Helper()
	if testing.Short() {
		t.Skip("engine tests use a trained fixture")
	}
	fwOnce.Do(func() {
		ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(4000, 7))
		if err != nil {
			fwErr = err
			return
		}
		split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
		if err != nil {
			fwErr = err
			return
		}
		cfg := core.DefaultConfig()
		cfg.Granularity = signature.Granularity{
			IntervalClusters: 2, CRCClusters: 2,
			PressureBins: 5, SetpointBins: 3, PIDClusters: 2,
		}
		cfg.Hidden = []int{16, 16}
		cfg.Fit.Epochs = 2
		cfg.Fit.BatchSize = 8
		fwValue, _, fwErr = core.Train(split, cfg)
		fwSplit = split
	})
	if fwErr != nil {
		t.Fatalf("train test framework: %v", fwErr)
	}
	return fwValue, fwSplit
}

// streamKey spreads test traffic over n synthetic device streams.
func streamKey(i, n int) string { return fmt.Sprintf("plc-%03d", i%n) }

// TestEngineMatchesSequentialSessions is the engine's core guarantee: for
// every stream, the concurrent sharded engine produces exactly the verdicts
// a sequential core.Session would, package for package.
func TestEngineMatchesSequentialSessions(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 600 {
		pkgs = pkgs[:600]
	}

	for _, tc := range []struct {
		shards, streams int
		mode            core.Mode
	}{
		{1, 1, core.ModeCombined},
		{2, 1, core.ModeCombined},
		{3, 13, core.ModeCombined},
		{8, 64, core.ModeCombined},
		{2, 5, core.ModeSeriesOnly},
		{2, 5, core.ModePackageOnly},
	} {
		name := fmt.Sprintf("shards=%d/streams=%d/mode=%d", tc.shards, tc.streams, tc.mode)
		t.Run(name, func(t *testing.T) {
			// Expected verdicts: one sequential session per stream.
			want := make(map[string][]core.Verdict)
			sessions := make(map[string]*core.Session)
			for i, p := range pkgs {
				key := streamKey(i, tc.streams)
				sess := sessions[key]
				if sess == nil {
					sess = fw.NewSessionMode(tc.mode)
					sessions[key] = sess
				}
				want[key] = append(want[key], sess.Classify(p))
			}

			// Engine verdicts, collected per stream.
			var mu sync.Mutex
			got := make(map[string][]core.Verdict)
			e, err := engine.New(fw, engine.Config{
				Shards: tc.shards, MaxBatch: 16, QueueDepth: 32, Mode: tc.mode,
			}, func(r engine.Result) {
				mu.Lock()
				defer mu.Unlock()
				if r.Seq != uint64(len(got[r.Stream])) {
					t.Errorf("stream %s: result seq %d out of order", r.Stream, r.Seq)
				}
				got[r.Stream] = append(got[r.Stream], r.Verdict)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pkgs {
				if err := e.Submit(streamKey(i, tc.streams), p); err != nil {
					t.Fatal(err)
				}
			}
			e.Stop()

			if len(got) != len(want) {
				t.Fatalf("engine saw %d streams, want %d", len(got), len(want))
			}
			for key, wv := range want {
				gv := got[key]
				if len(gv) != len(wv) {
					t.Fatalf("stream %s: %d verdicts, want %d", key, len(gv), len(wv))
				}
				for i := range wv {
					if !gv[i].Equal(wv[i]) {
						t.Fatalf("stream %s package %d: engine verdict %+v, sequential %+v",
							key, i, gv[i], wv[i])
					}
				}
			}
		})
	}
}

// TestEngineStats checks the per-shard counters and their aggregation.
func TestEngineStats(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 400 {
		pkgs = pkgs[:400]
	}
	const streams = 10

	e, err := engine.New(fw, engine.Config{Shards: 4, MaxBatch: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pkgs {
		if err := e.Submit(streamKey(i, streams), p); err != nil {
			t.Fatal(err)
		}
	}
	e.Stop()

	st := e.Stats()
	if st.Packages != uint64(len(pkgs)) {
		t.Errorf("Packages = %d, want %d", st.Packages, len(pkgs))
	}
	if st.Clean+st.PackageLevel+st.SeriesLevel != st.Packages {
		t.Errorf("levels %d+%d+%d do not sum to %d packages",
			st.Clean, st.PackageLevel, st.SeriesLevel, st.Packages)
	}
	if st.Streams != streams {
		t.Errorf("Streams = %d, want %d", st.Streams, streams)
	}
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after Stop, want 0", st.QueueDepth)
	}
	if st.Batches == 0 || st.Batched != st.Packages {
		t.Errorf("Batches=%d Batched=%d, want every package batched once", st.Batches, st.Batched)
	}
	if mb := st.MeanBatch(); mb < 1 {
		t.Errorf("MeanBatch = %v, want >= 1", mb)
	}
	if st.PerSecond() <= 0 {
		t.Errorf("PerSecond = %v, want > 0", st.PerSecond())
	}

	var sum uint64
	for _, ss := range e.ShardStats() {
		sum += ss.Packages
		if ss.Clean+ss.PackageLevel+ss.SeriesLevel != ss.Packages {
			t.Errorf("shard %d: levels do not sum to packages", ss.Shard)
		}
		if ss.QueueCap == 0 {
			t.Errorf("shard %d: zero queue capacity", ss.Shard)
		}
	}
	if sum != st.Packages {
		t.Errorf("shard packages sum %d != aggregate %d", sum, st.Packages)
	}
}

// TestEngineBackpressure fills a shard whose worker is blocked in the
// handler and checks that TrySubmit sheds load instead of queueing
// unboundedly.
func TestEngineBackpressure(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test

	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	e, err := engine.New(fw, engine.Config{Shards: 1, MaxBatch: 4, QueueDepth: 4},
		func(engine.Result) {
			once.Do(func() { close(first) })
			<-release
		})
	if err != nil {
		t.Fatal(err)
	}

	// First package occupies the worker inside the handler...
	if err := e.Submit("dev", pkgs[0]); err != nil {
		t.Fatal(err)
	}
	<-first
	// ...so the queue can be filled to capacity behind it.
	for i := 1; i <= 4; i++ {
		ok, err := e.TrySubmit("dev", pkgs[i])
		if err != nil || !ok {
			t.Fatalf("TrySubmit %d: ok=%v err=%v, want queued", i, ok, err)
		}
	}
	if ok, _ := e.TrySubmit("dev", pkgs[5]); ok {
		t.Error("TrySubmit succeeded on a full shard queue")
	}
	if st := e.Stats(); st.QueueDepth != 4 {
		t.Errorf("QueueDepth = %d with a full queue, want 4", st.QueueDepth)
	}

	close(release)
	e.Stop()
	if st := e.Stats(); st.Packages != 5 {
		t.Errorf("Packages = %d after drain, want 5", st.Packages)
	}
}

// TestEngineConcurrentSubmitters drives the engine from many goroutines
// with concurrent snapshots; primarily a data-race canary for `go test
// -race`.
func TestEngineConcurrentSubmitters(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 800 {
		pkgs = pkgs[:800]
	}
	const producers = 8

	var alerts sync.Map
	e, err := engine.New(fw, engine.Config{Shards: 4, MaxBatch: 16}, func(r engine.Result) {
		if r.Verdict.Anomaly {
			alerts.Store(r.Stream, true)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Stats()
				_ = e.ShardStats()
			}
		}
	}()

	var wg sync.WaitGroup
	chunk := len(pkgs) / producers
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			// Each producer owns its own streams: per-stream order only
			// needs to hold within one submitter.
			for i, p := range pkgs[pr*chunk : (pr+1)*chunk] {
				key := fmt.Sprintf("prod%d-dev%d", pr, i%3)
				if err := e.Submit(key, p); err != nil {
					t.Error(err)
					return
				}
			}
		}(pr)
	}
	wg.Wait()
	e.Stop()
	close(stop)
	snapWG.Wait()

	if st := e.Stats(); st.Packages != uint64(chunk*producers) {
		t.Errorf("Packages = %d, want %d", st.Packages, chunk*producers)
	}
}

// TestEngineBarrier: Barrier must complete all prior submissions (verdicts
// delivered, in order) without stopping the engine, and be repeatable —
// the replay entry point for phase-bounded workloads.
func TestEngineBarrier(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 300 {
		pkgs = pkgs[:300]
	}

	var mu sync.Mutex
	var got []core.Verdict
	e, err := engine.New(fw, engine.Config{Shards: 3, MaxBatch: 8}, func(r engine.Result) {
		mu.Lock()
		got = append(got, r.Verdict)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	want := make([]core.Verdict, 0, len(pkgs))
	sess := fw.NewSession()
	for _, p := range pkgs {
		want = append(want, sess.Classify(p))
	}

	// Three phases through one warm engine, a barrier after each.
	third := len(pkgs) / 3
	for phase := 0; phase < 3; phase++ {
		lo, hi := phase*third, (phase+1)*third
		if phase == 2 {
			hi = len(pkgs)
		}
		for _, p := range pkgs[lo:hi] {
			if err := e.Submit("dev", p); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Barrier(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n != hi {
			t.Fatalf("phase %d: %d verdicts after barrier, want %d", phase, n, hi)
		}
		if st := e.Stats(); st.QueueDepth != 0 {
			t.Fatalf("phase %d: queue depth %d after barrier", phase, st.QueueDepth)
		}
	}
	e.Stop()

	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("package %d: verdict %+v across barriers, sequential %+v", i, got[i], want[i])
		}
	}
	if err := e.Barrier(); err == nil {
		t.Error("Barrier after Stop did not error")
	}
}

// TestEngineSubmitAfterStop verifies the lifecycle guard.
func TestEngineSubmitAfterStop(t *testing.T) {
	fw, split := testFramework(t)
	e, err := engine.New(fw, engine.Config{Shards: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()
	e.Stop() // idempotent
	if err := e.Submit("dev", split.Test[0]); err == nil {
		t.Error("Submit after Stop did not error")
	}
	if ok, err := e.TrySubmit("dev", split.Test[0]); ok || err == nil {
		t.Error("TrySubmit after Stop did not error")
	}
}

// TestEngineRejectsBadMode verifies config validation.
func TestEngineRejectsBadMode(t *testing.T) {
	fw, _ := testFramework(t)
	if _, err := engine.New(fw, engine.Config{Mode: core.Mode(99)}, nil); err == nil {
		t.Error("engine accepted an unknown mode")
	}
}

// TestEngineStreamBinding: a stream is bound to its framework by its first
// submission; submitting it later under a different framework (or the
// default) must error instead of silently scoring it with the wrong model.
func TestEngineStreamBinding(t *testing.T) {
	fw, split := testFramework(t)
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	e, err := engine.New(fw, engine.Config{Shards: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	pkg := split.Test[0]

	if err := e.SubmitFor(fw2, "tank-1", pkg); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitFor(fw2, "tank-1", pkg); err != nil {
		t.Errorf("resubmission under the bound framework errored: %v", err)
	}
	if err := e.Submit("tank-1", pkg); err == nil {
		t.Error("default-framework submit on a stream bound elsewhere was accepted")
	}
	if ok, err := e.TrySubmit("tank-1", pkg); ok || err == nil {
		t.Error("TrySubmit on a stream bound elsewhere was accepted")
	}

	if err := e.Submit("plc-1", pkg); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitFor(fw, "plc-1", pkg); err != nil {
		t.Errorf("explicit default framework rejected on a default-bound stream: %v", err)
	}
	if err := e.SubmitFor(fw2, "plc-1", pkg); err == nil {
		t.Error("rebinding a default-bound stream to another framework was accepted")
	}
}
