package engine

import (
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
)

// levelOverflow is the counter bucket for verdict levels outside the
// core.Level space (an embedder-registered stage reporting a custom
// level). Keeping them off LevelNone keeps Clean — and therefore
// Anomalies() — honest.
const levelOverflow = int(core.NumLevels)

// levelIndex maps a verdict level into the per-level counter array,
// clamping out-of-range values onto the overflow bucket rather than
// panicking a shard worker.
func levelIndex(l core.Level) int {
	if l < 0 || l >= core.NumLevels {
		return levelOverflow
	}
	return int(l)
}

// shardCounters are the per-shard atomics, updated on the worker goroutine
// and read by Stats snapshots without any coordination.
type shardCounters struct {
	packages atomic.Uint64
	streams  atomic.Uint64
	// released counts streams dropped by Engine.Release; handlerPanics
	// counts panics the worker recovered from a Handler or stage.
	released      atomic.Uint64
	handlerPanics atomic.Uint64
	// batches/batched count batched Advance passes and the deferred steps
	// they executed; checkBatches/checkBatched count batched Check-score
	// passes (the window levels' precompute) and the scores they produced.
	batches      atomic.Uint64
	batched      atomic.Uint64
	checkBatches atomic.Uint64
	checkBatched atomic.Uint64
	// byLevel counts verdicts per detection level, indexed by core.Level,
	// with one extra overflow slot for out-of-range custom levels.
	byLevel [core.NumLevels + 1]atomic.Uint64
}

// ShardStats is a point-in-time snapshot of one shard's counters.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Packages is the number of packages classified.
	Packages uint64
	// Streams is the number of distinct streams seen; Released counts the
	// ones since dropped by Engine.Release, so Streams-Released is the
	// shard's live state footprint.
	Streams  uint64
	Released uint64
	// HandlerPanics counts panics the shard worker recovered from a
	// Handler or stage; the worker keeps serving, and Stop returns the
	// first recovered panic value.
	HandlerPanics uint64
	// ByLevel splits Packages by verdict level, indexed by core.Level.
	ByLevel [core.NumLevels]uint64
	// OtherLevels counts verdicts whose level falls outside the core.Level
	// space (custom registered stages).
	OtherLevels uint64
	// Clean, PackageLevel and SeriesLevel are the classic two-level slices
	// of ByLevel, kept for monitoring continuity.
	Clean, PackageLevel, SeriesLevel uint64
	// Batches counts batched Advance passes; Batched counts the deferred
	// steps they advanced. Batched/Batches is the mean micro-batch width.
	Batches, Batched uint64
	// CheckBatches counts batched Check-score passes; CheckBatched counts
	// the scores they precomputed.
	CheckBatches, CheckBatched uint64
	// QueueDepth and QueueCap describe the shard's bounded input channel at
	// snapshot time.
	QueueDepth, QueueCap int
}

// Anomalies is the number of packages flagged by any level.
func (s ShardStats) Anomalies() uint64 { return s.Packages - s.Clean }

// Stats is an engine-wide snapshot.
type Stats struct {
	// Packages, Streams, Released, HandlerPanics, Batches, Batched,
	// CheckBatches and CheckBatched aggregate the shard counters.
	Packages, Streams          uint64
	Released, HandlerPanics    uint64
	Batches, Batched           uint64
	CheckBatches, CheckBatched uint64
	// ByLevel splits Packages by verdict level, indexed by core.Level.
	ByLevel [core.NumLevels]uint64
	// OtherLevels counts verdicts whose level falls outside the core.Level
	// space (custom registered stages).
	OtherLevels uint64
	// Clean, PackageLevel and SeriesLevel are the classic two-level slices
	// of ByLevel, kept for monitoring continuity.
	Clean, PackageLevel, SeriesLevel uint64
	// QueueDepth sums the queued-but-unprocessed packages across shards.
	QueueDepth int
	// Elapsed is the time since the engine started.
	Elapsed time.Duration
}

// Anomalies is the number of packages flagged by any level.
func (s Stats) Anomalies() uint64 { return s.Packages - s.Clean }

// ActiveStreams is the number of streams currently holding engine state
// (seen and not yet released).
func (s Stats) ActiveStreams() uint64 { return s.Streams - s.Released }

// PerSecond is the mean classification rate over the snapshot's Elapsed
// window. On an Engine.Stats snapshot that window is the whole engine
// lifetime — a daemon idle overnight reports a rate diluted toward zero
// forever — so long-running services should rate from interval deltas
// instead: Since(prev).PerSecond() is the mean rate between two snapshots.
func (s Stats) PerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Packages) / s.Elapsed.Seconds()
}

// Since returns the interval delta between two snapshots of the same
// engine: every cumulative counter minus its value in prev, with Elapsed
// set to the wall time between the snapshots — so PerSecond, MeanBatch and
// friends on the result are interval rates, not lifetime means. QueueDepth
// is a gauge, not a counter, and keeps s's point-in-time value. prev must
// be the earlier snapshot (the zero Stats works as "since start").
func (s Stats) Since(prev Stats) Stats {
	d := s
	d.Packages -= prev.Packages
	d.Streams -= prev.Streams
	d.Released -= prev.Released
	d.HandlerPanics -= prev.HandlerPanics
	d.Batches -= prev.Batches
	d.Batched -= prev.Batched
	d.CheckBatches -= prev.CheckBatches
	d.CheckBatched -= prev.CheckBatched
	for i := range d.ByLevel {
		d.ByLevel[i] -= prev.ByLevel[i]
	}
	d.OtherLevels -= prev.OtherLevels
	d.Clean -= prev.Clean
	d.PackageLevel -= prev.PackageLevel
	d.SeriesLevel -= prev.SeriesLevel
	d.Elapsed -= prev.Elapsed
	return d
}

// MeanBatch is the mean micro-batch width of the batched Advance passes so
// far.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Batched) / float64(s.Batches)
}

// snapshot reads the shard's counters.
func (s *shard) snapshot() ShardStats {
	st := ShardStats{
		Shard:         s.id,
		Packages:      s.stats.packages.Load(),
		Streams:       s.stats.streams.Load(),
		Released:      s.stats.released.Load(),
		HandlerPanics: s.stats.handlerPanics.Load(),
		Batches:       s.stats.batches.Load(),
		Batched:       s.stats.batched.Load(),
		CheckBatches:  s.stats.checkBatches.Load(),
		CheckBatched:  s.stats.checkBatched.Load(),
		QueueDepth:    len(s.in),
		QueueCap:      cap(s.in),
	}
	for i := range st.ByLevel {
		st.ByLevel[i] = s.stats.byLevel[i].Load()
	}
	st.OtherLevels = s.stats.byLevel[levelOverflow].Load()
	st.Clean = st.ByLevel[core.LevelNone]
	st.PackageLevel = st.ByLevel[core.LevelPackage]
	st.SeriesLevel = st.ByLevel[core.LevelTimeSeries]
	return st
}

// ShardStats snapshots every shard without stopping the world: counters are
// atomics, so a snapshot taken while the workers run is a consistent-enough
// view for monitoring (each counter is exact; cross-counter skew is bounded
// by whatever the workers did during the snapshot).
func (e *Engine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.snapshot()
	}
	return out
}

// Stats aggregates the shard counters into one engine-wide snapshot.
func (e *Engine) Stats() Stats {
	var st Stats
	for _, s := range e.shards {
		ss := s.snapshot()
		st.Packages += ss.Packages
		st.Streams += ss.Streams
		st.Released += ss.Released
		st.HandlerPanics += ss.HandlerPanics
		st.Batches += ss.Batches
		st.Batched += ss.Batched
		st.CheckBatches += ss.CheckBatches
		st.CheckBatched += ss.CheckBatched
		for i := range ss.ByLevel {
			st.ByLevel[i] += ss.ByLevel[i]
		}
		st.OtherLevels += ss.OtherLevels
		st.QueueDepth += ss.QueueDepth
	}
	st.Clean = st.ByLevel[core.LevelNone]
	st.PackageLevel = st.ByLevel[core.LevelPackage]
	st.SeriesLevel = st.ByLevel[core.LevelTimeSeries]
	st.Elapsed = time.Since(e.started)
	return st
}
