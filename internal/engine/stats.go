package engine

import (
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
)

// shardCounters are the per-shard atomics, updated on the worker goroutine
// and read by Stats snapshots without any coordination.
type shardCounters struct {
	packages atomic.Uint64
	streams  atomic.Uint64
	batches  atomic.Uint64
	batched  atomic.Uint64
	// byLevel counts verdicts per detection level, indexed by core.Level
	// (LevelNone, LevelPackage, LevelTimeSeries).
	byLevel [3]atomic.Uint64
}

// ShardStats is a point-in-time snapshot of one shard's counters.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Packages is the number of packages classified.
	Packages uint64
	// Streams is the number of distinct streams seen.
	Streams uint64
	// Clean, PackageLevel and SeriesLevel split Packages by verdict level.
	Clean, PackageLevel, SeriesLevel uint64
	// Batches counts batched LSTM passes; Batched counts the recurrent
	// steps they advanced. Batched/Batches is the mean micro-batch width.
	Batches, Batched uint64
	// QueueDepth and QueueCap describe the shard's bounded input channel at
	// snapshot time.
	QueueDepth, QueueCap int
}

// Anomalies is the number of packages flagged by either level.
func (s ShardStats) Anomalies() uint64 { return s.PackageLevel + s.SeriesLevel }

// Stats is an engine-wide snapshot.
type Stats struct {
	// Packages, Streams, Clean, PackageLevel, SeriesLevel, Batches and
	// Batched aggregate the shard counters.
	Packages, Streams                uint64
	Clean, PackageLevel, SeriesLevel uint64
	Batches, Batched                 uint64
	// QueueDepth sums the queued-but-unprocessed packages across shards.
	QueueDepth int
	// Elapsed is the time since the engine started.
	Elapsed time.Duration
}

// Anomalies is the number of packages flagged by either level.
func (s Stats) Anomalies() uint64 { return s.PackageLevel + s.SeriesLevel }

// PerSecond is the mean classification rate since the engine started.
func (s Stats) PerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Packages) / s.Elapsed.Seconds()
}

// MeanBatch is the mean micro-batch width of the LSTM passes so far.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Batched) / float64(s.Batches)
}

// snapshot reads the shard's counters.
func (s *shard) snapshot() ShardStats {
	return ShardStats{
		Shard:        s.id,
		Packages:     s.stats.packages.Load(),
		Streams:      s.stats.streams.Load(),
		Clean:        s.stats.byLevel[core.LevelNone].Load(),
		PackageLevel: s.stats.byLevel[core.LevelPackage].Load(),
		SeriesLevel:  s.stats.byLevel[core.LevelTimeSeries].Load(),
		Batches:      s.stats.batches.Load(),
		Batched:      s.stats.batched.Load(),
		QueueDepth:   len(s.in),
		QueueCap:     cap(s.in),
	}
}

// ShardStats snapshots every shard without stopping the world: counters are
// atomics, so a snapshot taken while the workers run is a consistent-enough
// view for monitoring (each counter is exact; cross-counter skew is bounded
// by whatever the workers did during the snapshot).
func (e *Engine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.snapshot()
	}
	return out
}

// Stats aggregates the shard counters into one engine-wide snapshot.
func (e *Engine) Stats() Stats {
	var st Stats
	for _, s := range e.shards {
		ss := s.snapshot()
		st.Packages += ss.Packages
		st.Streams += ss.Streams
		st.Clean += ss.Clean
		st.PackageLevel += ss.PackageLevel
		st.SeriesLevel += ss.SeriesLevel
		st.Batches += ss.Batches
		st.Batched += ss.Batched
		st.QueueDepth += ss.QueueDepth
	}
	st.Elapsed = time.Since(e.started)
	return st
}
