package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	_ "icsdetect/internal/baselines"
	"icsdetect/internal/core"
	"icsdetect/internal/engine"
)

// cloneFramework round-trips a framework through Save/Load, producing a
// distinct *core.Framework with identical weights (and stage models).
func cloneFramework(t *testing.T, fw *core.Framework) *core.Framework {
	t.Helper()
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fw2
}

// TestEngineReleaseResetsStreamState: Release must drop a stream's session
// state and its framework/precision bindings, so resubmitting the same
// stream ID starts a brand-new recurrent session — the fix for the
// state-retained-forever footgun that connection churn in a daemon turns
// into an unbounded leak.
func TestEngineReleaseResetsStreamState(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 120 {
		pkgs = pkgs[:120]
	}

	var mu sync.Mutex
	var got []core.Verdict
	e, err := engine.New(fw, engine.Config{Shards: 2, MaxBatch: 8}, func(r engine.Result) {
		mu.Lock()
		got = append(got, r.Verdict)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Two passes of the same packages through the same stream ID, with a
	// Release between them: the second pass must reproduce the first
	// verdict-for-verdict, which only happens if the recurrent state was
	// truly dropped (a retained session would continue where pass one
	// stopped and diverge immediately — the LSTM level abstains on a fresh
	// stream's first package).
	for pass := 0; pass < 2; pass++ {
		for _, p := range pkgs {
			if err := e.Submit("conn-1", p); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Barrier(); err != nil {
			t.Fatal(err)
		}
		if pass == 0 {
			if err := e.Release("conn-1"); err != nil {
				t.Fatal(err)
			}
		}
	}
	mu.Lock()
	if len(got) != 2*len(pkgs) {
		mu.Unlock()
		t.Fatalf("got %d verdicts, want %d", len(got), 2*len(pkgs))
	}
	for i := range pkgs {
		if !got[i].Equal(got[len(pkgs)+i]) {
			mu.Unlock()
			t.Fatalf("package %d: verdict after release %+v, fresh run %+v — released stream kept state",
				i, got[len(pkgs)+i], got[i])
		}
	}
	mu.Unlock()

	st := e.Stats()
	if st.Released != 1 {
		t.Errorf("Released = %d, want 1", st.Released)
	}
	if st.Streams != 2 {
		t.Errorf("Streams = %d, want 2 (one per pass)", st.Streams)
	}
	if st.ActiveStreams() != 1 {
		t.Errorf("ActiveStreams = %d, want 1", st.ActiveStreams())
	}

	// Release also frees the precision binding: re-tiering a released ID is
	// legal, where a live one is locked to its tier.
	if err := e.BindPrecision("conn-2", core.PrecisionF32); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("conn-2", pkgs[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.BindPrecision("conn-2", core.PrecisionF64); err == nil {
		t.Error("re-tiering a live stream was accepted")
	}
	if err := e.Release("conn-2"); err != nil {
		t.Fatal(err)
	}
	if err := e.BindPrecision("conn-2", core.PrecisionF64); err != nil {
		t.Errorf("re-tiering a released stream rejected: %v", err)
	}

	// Releasing an unknown stream is a no-op, not an error.
	if err := e.Release("never-seen"); err != nil {
		t.Errorf("Release of unknown stream: %v", err)
	}
	e.Stop()
	if err := e.Release("conn-1"); err == nil {
		t.Error("Release after Stop did not error")
	}
}

// TestEngineReleaseRebindsFramework: a released stream ID must be
// re-bindable to a different framework — the daemon reuses connection-scoped
// IDs across tenants.
func TestEngineReleaseRebindsFramework(t *testing.T) {
	fw, split := testFramework(t)
	fw2 := cloneFramework(t, fw)

	e, err := engine.New(fw, engine.Config{Shards: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	pkg := split.Test[0]

	if err := e.SubmitFor(fw2, "conn", pkg); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("conn", pkg); err == nil {
		t.Fatal("default-framework submit on a bound stream was accepted")
	}
	if err := e.Release("conn"); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("conn", pkg); err != nil {
		t.Errorf("released stream could not rebind to the default framework: %v", err)
	}
}

// TestEngineHandlerPanicRecovery: a panicking Handler must not kill its
// shard goroutine — pre-fix it did, wedging every stream pinned to the
// shard while Submit kept blocking on the full queue. The worker recovers,
// counts the panic, keeps serving the other streams exactly, and Stop
// surfaces the first panic value.
func TestEngineHandlerPanicRecovery(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 60 {
		pkgs = pkgs[:60]
	}

	var boomOnce atomic.Bool
	var mu sync.Mutex
	perStream := make(map[string]int)
	e, err := engine.New(fw, engine.Config{Shards: 1, MaxBatch: 4}, func(r engine.Result) {
		if r.Stream == "dev-a" && r.Seq == 1 && boomOnce.CompareAndSwap(false, true) {
			panic("boom")
		}
		mu.Lock()
		perStream[r.Stream]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both streams share the single shard; the panic on dev-a's second
	// package must leave dev-b's sequence untouched.
	streams := []string{"dev-a", "dev-b"}
	for i, p := range pkgs {
		if err := e.Submit(streams[i%2], p); err != nil {
			t.Fatal(err)
		}
	}
	// Barrier through the panicked shard proves the worker survived.
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	gotA, gotB := perStream["dev-a"], perStream["dev-b"]
	mu.Unlock()
	if want := len(pkgs) / 2; gotB != want {
		t.Errorf("dev-b delivered %d verdicts, want %d", gotB, want)
	}
	// dev-a lost exactly the one delivery that panicked mid-handler.
	if want := len(pkgs)/2 - 1; gotA != want {
		t.Errorf("dev-a delivered %d verdicts, want %d", gotA, want)
	}
	if st := e.Stats(); st.HandlerPanics != 1 {
		t.Errorf("HandlerPanics = %d, want 1", st.HandlerPanics)
	}

	err = e.Stop()
	if err == nil {
		t.Fatal("Stop returned nil after a handler panic")
	}
	var pe *engine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Stop returned %T (%v), want *engine.PanicError", err, err)
	}
	if pe.Value != "boom" {
		t.Errorf("recovered panic value = %v, want boom", pe.Value)
	}
	if pe.Stack == "" {
		t.Error("recovered panic has no stack")
	}
	// Idempotent Stop keeps reporting it.
	if err := e.Stop(); !errors.As(err, &pe) {
		t.Errorf("second Stop returned %v, want the recorded panic", err)
	}
}

// TestEngineReleaseSurvivesPanic: Release must not deadlock when the
// handler panics on the packages queued ahead of the release marker — the
// recovery path still acknowledges the marker.
func TestEngineReleaseSurvivesPanic(t *testing.T) {
	fw, split := testFramework(t)

	e, err := engine.New(fw, engine.Config{Shards: 1}, func(r engine.Result) {
		panic("always")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit("dev", split.Test[0]); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Release("dev") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Release deadlocked behind a panicking handler")
	}
	if err := e.Stop(); err == nil {
		t.Error("Stop returned nil after handler panics")
	}
}

// TestEngineTrySubmitForValidation: TrySubmit used to skip the
// (framework, precision) stack validation SubmitFor performs, so a
// framework missing a level's stage model was quietly accepted and later
// panicked the shard when the stack resolved. TrySubmitFor must run the
// same validated-cache check and binding semantics.
func TestEngineTrySubmitForValidation(t *testing.T) {
	fw, split := testFramework(t)
	pkg := split.Test[0]

	// A three-level stack whose pca stage needs a trained model; the engine
	// default has it, the pristine fixture clone does not.
	spec, err := core.ParseStackSpec("bloom,pca,lstm", "")
	if err != nil {
		t.Fatal(err)
	}
	fwPCA := cloneFramework(t, fw)
	if err := fwPCA.TrainStages(spec, split, 7); err != nil {
		t.Fatal(err)
	}

	e, err := engine.New(fwPCA, engine.Config{Shards: 2, Stack: spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// The fixture lacks Extra["pca"]: TrySubmitFor must reject it the way
	// SubmitFor does, instead of enqueueing a package whose stack cannot
	// resolve.
	if ok, err := e.TrySubmitFor(fw, "bad", pkg); ok || err == nil {
		t.Fatalf("TrySubmitFor accepted a framework without the pca stage model (ok=%v err=%v)", ok, err)
	}
	// A rejected probe must not have bound the stream: the ID is still free
	// for the default framework.
	if ok, err := e.TrySubmit("bad", pkg); !ok || err != nil {
		t.Fatalf("rejected probe bound the stream (ok=%v err=%v)", ok, err)
	}

	// Positive path plus binding semantics, with a second valid framework.
	fwPCA2 := cloneFramework(t, fwPCA)
	if ok, err := e.TrySubmitFor(fwPCA2, "tenant", pkg); !ok || err != nil {
		t.Fatalf("TrySubmitFor with a valid framework: ok=%v err=%v", ok, err)
	}
	if ok, err := e.TrySubmitFor(fwPCA2, "tenant", pkg); !ok || err != nil {
		t.Fatalf("resubmission under the bound framework: ok=%v err=%v", ok, err)
	}
	if ok, err := e.TrySubmit("tenant", pkg); ok || err == nil {
		t.Error("TrySubmit on a stream bound elsewhere was accepted")
	}
	if err := e.Submit("tenant", pkg); err == nil {
		t.Error("Submit on a stream bound elsewhere was accepted")
	}
}

// TestEngineStatsSince: Stats.PerSecond divides by time-since-start, so an
// idle daemon's lifetime rate decays toward zero forever; Since(prev) must
// yield interval deltas whose PerSecond reflects only the window between
// two snapshots.
func TestEngineStatsSince(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 100 {
		pkgs = pkgs[:100]
	}

	e, err := engine.New(fw, engine.Config{Shards: 2, MaxBatch: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	prev := e.Stats()
	for _, p := range pkgs {
		if err := e.Submit("dev", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}
	busy := e.Stats()

	d := busy.Since(prev)
	if d.Packages != uint64(len(pkgs)) {
		t.Errorf("interval Packages = %d, want %d", d.Packages, len(pkgs))
	}
	if d.Streams != 1 {
		t.Errorf("interval Streams = %d, want 1", d.Streams)
	}
	if d.Elapsed <= 0 || d.Elapsed > busy.Elapsed {
		t.Errorf("interval Elapsed = %v (lifetime %v)", d.Elapsed, busy.Elapsed)
	}
	if d.PerSecond() <= 0 {
		t.Errorf("interval PerSecond = %v over a busy window, want > 0", d.PerSecond())
	}
	if d.Clean+d.PackageLevel+d.SeriesLevel != d.Packages {
		t.Errorf("interval levels %d+%d+%d do not sum to %d",
			d.Clean, d.PackageLevel, d.SeriesLevel, d.Packages)
	}

	// An idle interval must rate at zero even though the lifetime counters
	// do not — this is the regression PerSecond-on-lifetime cannot express.
	time.Sleep(20 * time.Millisecond)
	idle := e.Stats().Since(busy)
	if idle.Packages != 0 {
		t.Errorf("idle interval Packages = %d, want 0", idle.Packages)
	}
	if idle.Elapsed <= 0 {
		t.Errorf("idle interval Elapsed = %v, want > 0", idle.Elapsed)
	}
	if got := idle.PerSecond(); got != 0 {
		t.Errorf("idle interval PerSecond = %v, want 0", got)
	}
	if e.Stats().PerSecond() <= 0 {
		t.Error("lifetime PerSecond lost the processed packages")
	}
}

// TestEngineSubmitStopRace hammers Submit/TrySubmit from several goroutines
// while Stop races them: every submission must either land before the
// shutdown or return the stopped error — never panic on a closed shard
// channel.
func TestEngineSubmitStopRace(t *testing.T) {
	fw, split := testFramework(t)
	pkg := split.Test[0]

	for iter := 0; iter < 25; iter++ {
		e, err := engine.New(fw, engine.Config{Shards: 2, MaxBatch: 4, QueueDepth: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 64; i++ {
					stream := fmt.Sprintf("g%d-s%d", g, i%3)
					var err error
					if i%2 == 0 {
						err = e.Submit(stream, pkg)
					} else {
						_, err = e.TrySubmit(stream, pkg)
					}
					if err != nil {
						return // stopped: the only legal failure
					}
				}
			}(g)
		}
		if err := e.Stop(); err != nil {
			t.Fatalf("Stop: %v", err)
		}
		wg.Wait()
	}
}
