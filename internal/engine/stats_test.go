package engine_test

import (
	"sync"
	"testing"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
)

// TestStatsSince pins the interval-delta semantics operators build rate
// dashboards on: every cumulative counter subtracts, QueueDepth is a
// gauge that keeps the later snapshot's value, and the derived views
// (ActiveStreams, MeanBatch, PerSecond, Anomalies) computed on a delta
// are interval quantities, not lifetime means.
func TestStatsSince(t *testing.T) {
	byLevel := func(clean, pkg, series uint64) (b [core.NumLevels]uint64) {
		b[core.LevelNone] = clean
		b[core.LevelPackage] = pkg
		b[core.LevelTimeSeries] = series
		return
	}
	cur := engine.Stats{
		Packages: 1000, Streams: 40, Released: 25, HandlerPanics: 3,
		Batches: 100, Batched: 900, CheckBatches: 60, CheckBatched: 480,
		ByLevel: byLevel(700, 200, 100), OtherLevels: 7,
		Clean: 700, PackageLevel: 200, SeriesLevel: 100,
		QueueDepth: 9, Elapsed: 10 * time.Second,
	}

	for _, tc := range []struct {
		name string
		prev engine.Stats
		want engine.Stats
	}{
		{
			// The zero snapshot is the documented "since start" anchor:
			// the delta must be the snapshot itself.
			name: "zero-prev-identity",
			prev: engine.Stats{},
			want: cur,
		},
		{
			name: "counters-subtract",
			prev: engine.Stats{
				Packages: 400, Streams: 30, Released: 10, HandlerPanics: 1,
				Batches: 40, Batched: 350, CheckBatches: 20, CheckBatched: 160,
				ByLevel: byLevel(300, 70, 30), OtherLevels: 2,
				Clean: 300, PackageLevel: 70, SeriesLevel: 30,
				QueueDepth: 17, Elapsed: 4 * time.Second,
			},
			want: engine.Stats{
				Packages: 600, Streams: 10, Released: 15, HandlerPanics: 2,
				Batches: 60, Batched: 550, CheckBatches: 40, CheckBatched: 320,
				ByLevel: byLevel(400, 130, 70), OtherLevels: 5,
				Clean: 400, PackageLevel: 130, SeriesLevel: 70,
				// Gauge: keeps cur's 9, prev's 17 is ignored.
				QueueDepth: 9, Elapsed: 6 * time.Second,
			},
		},
		{
			// An idle interval: same counters on both sides, only the
			// clock moved. Every delta is zero and the interval rate is 0.
			name: "idle-interval",
			prev: func() engine.Stats {
				p := cur
				p.Elapsed = 8 * time.Second
				p.QueueDepth = 3
				return p
			}(),
			want: func() engine.Stats {
				w := engine.Stats{QueueDepth: 9, Elapsed: 2 * time.Second}
				return w
			}(),
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := cur.Since(tc.prev)
			if got != tc.want {
				t.Fatalf("Since mismatch:\n got %+v\nwant %+v", got, tc.want)
			}
			// Derived interval views.
			if a, w := got.ActiveStreams(), got.Streams-got.Released; a != w {
				t.Errorf("delta ActiveStreams = %d, want %d", a, w)
			}
			if a, w := got.Anomalies(), got.Packages-got.Clean; a != w {
				t.Errorf("delta Anomalies = %d, want %d", a, w)
			}
			wantRate := 0.0
			if got.Elapsed > 0 {
				wantRate = float64(got.Packages) / got.Elapsed.Seconds()
			}
			if r := got.PerSecond(); r != wantRate {
				t.Errorf("delta PerSecond = %v, want %v", r, wantRate)
			}
			wantMB := 0.0
			if got.Batches > 0 {
				wantMB = float64(got.Batched) / float64(got.Batches)
			}
			if mb := got.MeanBatch(); mb != wantMB {
				t.Errorf("delta MeanBatch = %v, want %v", mb, wantMB)
			}
		})
	}
}

// TestStatsConcurrentRelease hammers Engine.Release from many goroutines
// — including duplicate releases of the same stream — while a monitor
// samples Stats, and checks that Released climbs monotonically, never
// exceeds Streams (ActiveStreams cannot go negative), counts each stream
// at most once, and that the interval delta across the release burst
// shows exactly the released streams and nothing else.
func TestStatsConcurrentRelease(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 300 {
		pkgs = pkgs[:300]
	}
	const streams = 24

	e, err := engine.New(fw, engine.Config{Shards: 4, MaxBatch: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i, p := range pkgs {
		if err := e.Submit(streamKey(i, streams), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}
	base := e.Stats()
	if base.ActiveStreams() != streams {
		t.Fatalf("ActiveStreams = %d before release burst, want %d", base.ActiveStreams(), streams)
	}

	// Monitor: Released must be non-decreasing and bounded by Streams in
	// every snapshot taken while the burst runs.
	stopMon := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		var last uint64
		for {
			st := e.Stats()
			if st.Released < last {
				t.Errorf("Released went backwards: %d after %d", st.Released, last)
				return
			}
			if st.Released > st.Streams {
				t.Errorf("Released %d > Streams %d (negative ActiveStreams)", st.Released, st.Streams)
				return
			}
			last = st.Released
			select {
			case <-stopMon:
				return
			default:
			}
		}
	}()

	// Two goroutines per stream: duplicate concurrent releases must not
	// double-count (only a stream actually holding state releases).
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		for i := 0; i < streams; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := e.Release(streamKey(i, streams)); err != nil {
					t.Errorf("release %d: %v", i, err)
				}
			}(i)
		}
	}
	wg.Wait()
	close(stopMon)
	<-monDone

	cur := e.Stats()
	delta := cur.Since(base)
	if delta.Released != streams {
		t.Errorf("delta Released = %d across the burst, want %d", delta.Released, streams)
	}
	if delta.Streams != 0 || delta.Packages != 0 {
		t.Errorf("release burst changed Streams by %d and Packages by %d, want 0/0",
			delta.Streams, delta.Packages)
	}
	if cur.ActiveStreams() != 0 {
		t.Errorf("ActiveStreams = %d after releasing every stream, want 0", cur.ActiveStreams())
	}

	// A released ID resubmits as a fresh stream: Streams grows, proving
	// Release dropped the shard state rather than just hiding it.
	if err := e.Submit(streamKey(0, streams), pkgs[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}
	if d := e.Stats().Since(cur); d.Streams != 1 || d.Released != 0 {
		t.Errorf("resubmit after release: delta Streams=%d Released=%d, want 1/0", d.Streams, d.Released)
	}
}
