package engine_test

import (
	"sync"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/engine"
)

// TestEngineMixedPrecisionStreams: one engine serving f64 and f32 streams
// on shared shards. Each stream's verdicts must be exactly those of a
// sequential core.Session over the stack at the stream's tier — so
// per-precision micro-batches never mix kernels, just as per-framework
// batches never mix weights.
func TestEngineMixedPrecisionStreams(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 600 {
		pkgs = pkgs[:600]
	}
	const streams = 10
	f32Stream := func(key string) bool { return key[len(key)-1]%2 == 0 }

	// Expected verdicts: sequential sessions at each stream's tier.
	specAt := func(p core.Precision) core.StackSpec {
		spec := core.DefaultStackSpec()
		spec.Precision = p
		return spec
	}
	want := make(map[string][]core.Verdict)
	sessions := make(map[string]*core.Session)
	for i, p := range pkgs {
		key := streamKey(i, streams)
		sess := sessions[key]
		if sess == nil {
			prec := core.PrecisionF64
			if f32Stream(key) {
				prec = core.PrecisionF32
			}
			var err error
			if sess, err = fw.NewStackSession(specAt(prec)); err != nil {
				t.Fatal(err)
			}
			sessions[key] = sess
		}
		want[key] = append(want[key], sess.Classify(p))
	}

	var mu sync.Mutex
	got := make(map[string][]core.Verdict)
	e, err := engine.New(fw, engine.Config{Shards: 3, MaxBatch: 16, QueueDepth: 32},
		func(r engine.Result) {
			mu.Lock()
			defer mu.Unlock()
			got[r.Stream] = append(got[r.Stream], r.Verdict)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		key := streamKey(i, streams)
		if f32Stream(key) {
			if err := e.BindPrecision(key, core.PrecisionF32); err != nil {
				t.Fatal(err)
			}
			// Re-binding to the same tier is idempotent.
			if err := e.BindPrecision(key, core.PrecisionF32); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, p := range pkgs {
		if err := e.Submit(streamKey(i, streams), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Tier bindings are fixed at first package.
	if err := e.BindPrecision(streamKey(0, streams), core.PrecisionF32); err == nil {
		t.Fatal("BindPrecision on a live stream succeeded")
	}
	e.Stop()

	if len(got) != len(want) {
		t.Fatalf("engine saw %d streams, want %d", len(got), len(want))
	}
	for key, wv := range want {
		gv := got[key]
		if len(gv) != len(wv) {
			t.Fatalf("stream %s: %d verdicts, want %d", key, len(gv), len(wv))
		}
		for i := range wv {
			if !gv[i].Equal(wv[i]) {
				t.Fatalf("stream %s package %d (f32=%v): engine verdict %+v, sequential %+v",
					key, i, f32Stream(key), gv[i], wv[i])
			}
		}
	}
}

// TestEngineConfigPrecision: Config.Stack.Precision sets the default tier
// for every stream, and an f32-incapable stack fails at New — the same
// fail-fast the -precision flag gets.
func TestEngineConfigPrecision(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 200 {
		pkgs = pkgs[:200]
	}
	spec := core.DefaultStackSpec()
	spec.Precision = core.PrecisionF32

	want := make([]core.Verdict, 0, len(pkgs))
	sess, err := fw.NewStackSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		want = append(want, sess.Classify(p))
	}

	var mu sync.Mutex
	var got []core.Verdict
	e, err := engine.New(fw, engine.Config{Shards: 2, MaxBatch: 8, Stack: spec},
		func(r engine.Result) {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, r.Verdict)
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if err := e.Submit("plc-one", p); err != nil {
			t.Fatal(err)
		}
	}
	e.Stop()
	if len(got) != len(want) {
		t.Fatalf("%d verdicts, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("package %d: engine %+v, sequential %+v", i, got[i], want[i])
		}
	}

	// Unknown precision in the config is rejected at New.
	bad := core.DefaultStackSpec()
	bad.Precision = core.Precision("f16")
	if _, err := engine.New(fw, engine.Config{Stack: bad}, nil); err == nil {
		t.Fatal("engine.New accepted an unknown precision")
	}
	// And BindPrecision rejects a tier the stack cannot run.
	e2, err := engine.New(fw, engine.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	if err := e2.BindPrecision("s", core.Precision("f16")); err == nil {
		t.Fatal("BindPrecision accepted an unknown precision")
	}
}
