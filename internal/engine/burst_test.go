package engine_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/engine"
)

// reloadFramework round-trips a framework through Save/Load: identical
// weights and fingerprint, distinct pointer — a second framework value for
// multi-model burst submissions.
func reloadFramework(t *testing.T, fw *core.Framework) *core.Framework {
	t.Helper()
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fw2
}

// TestEngineBatchMatchesSequentialSessions is the burst path's core
// guarantee: mixed SubmitBatch bursts and single Submits, interleaved with
// Barriers, produce for every stream exactly the verdicts a sequential
// core.Session would — same values, same per-stream FIFO order — across
// shard counts and burst widths (including bursts wider than MaxBatch).
func TestEngineBatchMatchesSequentialSessions(t *testing.T) {
	fw, split := testFramework(t)
	pkgs := split.Test
	if len(pkgs) > 600 {
		pkgs = pkgs[:600]
	}

	for _, tc := range []struct {
		shards, streams, burst int
	}{
		{1, 1, 7},
		{2, 5, 3},
		{4, 16, 7},
		{3, 8, 64}, // bursts wider than MaxBatch span micro-batches
	} {
		name := fmt.Sprintf("shards=%d/streams=%d/burst=%d", tc.shards, tc.streams, tc.burst)
		t.Run(name, func(t *testing.T) {
			// Expected verdicts: one sequential session per stream.
			want := make(map[string][]core.Verdict)
			sessions := make(map[string]*core.Session)
			for i, p := range pkgs {
				key := streamKey(i, tc.streams)
				sess := sessions[key]
				if sess == nil {
					sess = fw.NewSession()
					sessions[key] = sess
				}
				want[key] = append(want[key], sess.Classify(p))
			}

			var mu sync.Mutex
			got := make(map[string][]core.Verdict)
			total := 0
			e, err := engine.New(fw, engine.Config{
				Shards: tc.shards, MaxBatch: 16, QueueDepth: 32,
			}, func(r engine.Result) {
				mu.Lock()
				defer mu.Unlock()
				if r.Seq != uint64(len(got[r.Stream])) {
					t.Errorf("stream %s: result seq %d out of order", r.Stream, r.Seq)
				}
				got[r.Stream] = append(got[r.Stream], r.Verdict)
				total++
			})
			if err != nil {
				t.Fatal(err)
			}

			// Submit in arrival order, accumulating per-stream bursts. Every
			// third flush goes through the single-package path instead, so
			// bursts and singles interleave on the same streams; a Barrier
			// lands after each third of the load with all pending bursts
			// flushed first, checking mid-run completeness.
			pending := make(map[string][]*dataset.Package)
			flushes := 0
			flush := func(key string) {
				batch := pending[key]
				if len(batch) == 0 {
					return
				}
				delete(pending, key)
				flushes++
				if flushes%3 == 0 {
					for _, p := range batch {
						if err := e.Submit(key, p); err != nil {
							t.Fatal(err)
						}
					}
					return
				}
				if err := e.SubmitBatch(key, batch); err != nil {
					t.Fatal(err)
				}
			}
			for i, p := range pkgs {
				key := streamKey(i, tc.streams)
				pending[key] = append(pending[key], p)
				if len(pending[key]) >= tc.burst {
					flush(key)
				}
				if (i+1)%(len(pkgs)/3) == 0 {
					for k := range pending {
						flush(k)
					}
					if err := e.Barrier(); err != nil {
						t.Fatal(err)
					}
					mu.Lock()
					n := total
					mu.Unlock()
					if n != i+1 {
						t.Fatalf("after barrier at package %d: %d verdicts delivered", i+1, n)
					}
				}
			}
			for k := range pending {
				flush(k)
			}
			e.Stop()

			if len(got) != len(want) {
				t.Fatalf("engine saw %d streams, want %d", len(got), len(want))
			}
			for key, wv := range want {
				gv := got[key]
				if len(gv) != len(wv) {
					t.Fatalf("stream %s: %d verdicts, want %d", key, len(gv), len(wv))
				}
				for i := range wv {
					if !gv[i].Equal(wv[i]) {
						t.Fatalf("stream %s package %d: engine verdict %+v, sequential %+v",
							key, i, gv[i], wv[i])
					}
				}
			}
		})
	}
}

// TestEngineBatchBindingAndRelease: SubmitBatchFor binds the stream on its
// first burst like SubmitFor does; a burst under a different framework is
// rejected whole (nothing partially classified); Release frees the binding
// so the stream can rebind; the empty burst is a no-op that neither binds
// nor errors.
func TestEngineBatchBindingAndRelease(t *testing.T) {
	fw, split := testFramework(t)
	fw2 := reloadFramework(t, fw)
	pkgs := split.Test[:8]

	var mu sync.Mutex
	count := make(map[string]int)
	e, err := engine.New(fw, engine.Config{Shards: 2, MaxBatch: 4}, func(r engine.Result) {
		mu.Lock()
		count[r.Stream]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Empty burst: no-op, no binding — the stream is still free to bind
	// elsewhere.
	if err := e.SubmitBatchFor(fw2, "tank-1", nil); err != nil {
		t.Fatalf("empty burst errored: %v", err)
	}
	if err := e.SubmitBatch("tank-1", pkgs[:2]); err != nil {
		t.Fatalf("default bind after empty fw2 burst: %v", err)
	}
	// Bound to the default now: a burst under fw2 must be rejected whole.
	if err := e.SubmitBatchFor(fw2, "tank-1", pkgs[2:5]); err == nil {
		t.Error("burst under a different framework accepted on a bound stream")
	}
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := count["tank-1"]
	mu.Unlock()
	if n != 2 {
		t.Fatalf("tank-1 classified %d packages, want 2 (rejected burst must not run)", n)
	}

	// Release frees the binding: the same stream rebinds under fw2.
	if err := e.Release("tank-1"); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatchFor(fw2, "tank-1", pkgs[2:5]); err != nil {
		t.Fatalf("rebind after release: %v", err)
	}
	e.Stop()
	mu.Lock()
	defer mu.Unlock()
	if count["tank-1"] != 5 {
		t.Errorf("tank-1 classified %d packages total, want 5", count["tank-1"])
	}

	// Lifecycle guard: batch submits after Stop error; the try variant
	// reports neither queued nor shed.
	if err := e.SubmitBatch("tank-1", pkgs[:1]); err == nil {
		t.Error("SubmitBatch after Stop did not error")
	}
	if ok, err := e.TrySubmitBatch("tank-1", pkgs[:1]); ok || err == nil {
		t.Error("TrySubmitBatch after Stop did not error")
	}
}

// TestEngineTryBatchAllOrNothing: a burst occupies one queue slot and is
// admitted or shed whole — and a shed burst on a fresh stream must not
// bind it (the binding happens only when the burst is actually queued).
func TestEngineTryBatchAllOrNothing(t *testing.T) {
	fw, split := testFramework(t)
	fw2 := reloadFramework(t, fw)
	pkgs := split.Test

	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	var classified sync.Map
	e, err := engine.New(fw, engine.Config{Shards: 1, MaxBatch: 4, QueueDepth: 4},
		func(r engine.Result) {
			n, _ := classified.LoadOrStore(r.Stream, 0)
			classified.Store(r.Stream, n.(int)+1)
			once.Do(func() { close(first) })
			<-release
		})
	if err != nil {
		t.Fatal(err)
	}

	// First package occupies the worker inside the handler...
	if err := e.Submit("dev", pkgs[0]); err != nil {
		t.Fatal(err)
	}
	<-first
	// ...then four bursts of three fill the queue: one slot per burst, not
	// one per package.
	for i := 0; i < 4; i++ {
		batch := pkgs[1+3*i : 4+3*i]
		ok, err := e.TrySubmitBatch("dev", batch)
		if err != nil || !ok {
			t.Fatalf("TrySubmitBatch %d: ok=%v err=%v, want queued", i, ok, err)
		}
	}
	if st := e.Stats(); st.QueueDepth != 4 {
		t.Errorf("QueueDepth = %d with four queued bursts, want 4", st.QueueDepth)
	}
	// The queue is full: the next burst sheds whole, and shedding on a
	// stream not yet bound must not bind it.
	if ok, err := e.TrySubmitBatch("dev", pkgs[13:15]); ok || err != nil {
		t.Errorf("TrySubmitBatch on a full queue: ok=%v err=%v, want shed", ok, err)
	}
	if ok, err := e.TrySubmitBatchFor(fw2, "fresh", pkgs[13:15]); ok || err != nil {
		t.Errorf("TrySubmitBatchFor on a full queue: ok=%v err=%v, want shed", ok, err)
	}
	// The empty burst reports admitted without occupying a slot.
	if ok, err := e.TrySubmitBatch("dev", nil); !ok || err != nil {
		t.Errorf("empty TrySubmitBatch: ok=%v err=%v, want trivial success", ok, err)
	}

	close(release)
	e.Stop()
	if st := e.Stats(); st.Packages != 13 {
		t.Errorf("Packages = %d after drain, want 13 (1 single + 4 bursts of 3)", st.Packages)
	}
	// "fresh" shed before ever binding: it must still be bindable under the
	// default framework — which the shed fw2 burst would have blocked had
	// it bound. The engine is stopped, so probe the binding table through a
	// fresh engine instead: simply assert the stream never classified.
	if _, saw := classified.Load("fresh"); saw {
		t.Error("shed burst on stream \"fresh\" was classified")
	}
}

// TestEngineTryBatchShedDoesNotBind: the all-or-nothing shed must leave a
// fresh stream unbound, so a later submit under a different framework
// succeeds.
func TestEngineTryBatchShedDoesNotBind(t *testing.T) {
	fw, split := testFramework(t)
	fw2 := reloadFramework(t, fw)
	pkgs := split.Test

	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	e, err := engine.New(fw, engine.Config{Shards: 1, MaxBatch: 4, QueueDepth: 1},
		func(r engine.Result) {
			once.Do(func() { close(first) })
			<-release
		})
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Submit("dev", pkgs[0]); err != nil {
		t.Fatal(err)
	}
	<-first
	if ok, err := e.TrySubmit("dev", pkgs[1]); err != nil || !ok {
		t.Fatalf("fill queue: ok=%v err=%v", ok, err)
	}
	// Shed a fw2 burst on the fresh stream, then release the worker and
	// bind the same stream to the default framework: only possible if the
	// shed left it unbound.
	if ok, err := e.TrySubmitBatchFor(fw2, "fresh", pkgs[2:5]); ok || err != nil {
		t.Fatalf("TrySubmitBatchFor on a full queue: ok=%v err=%v, want shed", ok, err)
	}
	close(release)
	if err := e.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch("fresh", pkgs[2:5]); err != nil {
		t.Errorf("default bind after a shed fw2 burst: %v (shed must not bind)", err)
	}
	e.Stop()
}
