// Package engine is the concurrent multi-stream detection engine: it runs
// a detection stack of internal/core over many package streams at once
// (one stream per monitored device, link or unit), sharded across worker
// goroutines with per-stage-kind micro-batched inference.
//
// Architecture:
//
//	Submit(stream, pkg) ──hash(stream)──▶ shard 0 ─▶ worker goroutine
//	                                      shard 1 ─▶ worker goroutine
//	                                      …            │
//	                                                   ▼
//	                      tick: drain queued packets
//	                        precompute batchable Check scores (window
//	                          levels: PCA/GMM batched kernels)
//	                        per-stream Session Check phase, sequential
//	                        micro-batched Advance passes (LSTM steps via
//	                          nn.StepBatchLogits); scalar stages inline
//
// Each stream is pinned to one shard by a hash of its ID, so per-stream
// package order — and therefore per-stream verdicts — are exactly those of
// a sequential core.Session over the same stack. Within a shard, the
// batchable work of distinct streams advances through one batched pass per
// drained tick instead of one scalar pass per package; the engine asks
// each stage what it can batch (core.AdvanceBatchStage,
// core.CheckBatchStage) instead of hard-coding the LSTM. Shard input
// channels are bounded: a saturated engine pushes back on Submit instead
// of growing without bound.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
)

// Config tunes the engine. The zero value picks sensible defaults.
type Config struct {
	// Shards is the number of worker goroutines (and stream partitions).
	// Default: GOMAXPROCS.
	Shards int
	// MaxBatch caps the micro-batch width of one batched stage pass.
	// Default: 64.
	MaxBatch int
	// QueueDepth bounds each shard's input channel; a full shard blocks
	// Submit (backpressure). Default: 4 * MaxBatch.
	QueueDepth int
	// Stack describes the detection stack every stream applies. Empty
	// means the stack equivalent of Mode (default: the paper's two-level
	// bloom,lstm stack under first-hit fusion). Stack.Precision sets the
	// default numeric tier; individual streams opt into a different tier
	// with BindPrecision before their first package.
	Stack core.StackSpec
	// Mode is the legacy level selector; it is consulted only when Stack
	// is empty.
	//
	// Deprecated: describe the levels with Stack instead.
	Mode core.Mode
	// TickEnd, when non-nil, is called on the shard worker goroutine after
	// each drained tick has been fully classified and flushed (and once
	// more when the worker exits), with the shard index. It is the
	// coalescing point for embedders that batch downstream work per tick —
	// the serving daemon publishes one multi-event verdict frame per shard
	// tick through it. Like a Handler it runs concurrently across shards
	// and a slow callback stalls its shard.
	TickEnd func(shard int)
}

// withDefaults fills unset fields. An invalid legacy Mode is an error, as
// it was before the stack refactor.
func (c Config) withDefaults() (Config, error) {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if len(c.Stack.Stages) == 0 {
		mode := c.Mode
		if mode == 0 {
			mode = core.ModeCombined
		}
		spec, err := core.SpecForMode(mode)
		if err != nil {
			return c, err
		}
		c.Stack = spec
	}
	return c, nil
}

// Result is one classified package.
type Result struct {
	// Stream is the stream ID the package was submitted under.
	Stream string
	// Seq is the package's 0-based position within its stream.
	Seq uint64
	// Shard is the index of the shard worker that classified the package
	// (fixed per stream). Handlers that batch downstream work per shard —
	// one accumulator per shard needs no locking, because a shard calls its
	// Handler from one goroutine — key it by this.
	Shard int
	// Package is the classified package.
	Package *dataset.Package
	// Verdict is identical to what a sequential core.Session for this
	// stream would have produced.
	Verdict core.Verdict
}

// Handler receives every classified package. It is called on shard
// goroutines — possibly concurrently for packages of different shards — and
// must be safe for that; a slow handler stalls its shard and, through the
// bounded queues, eventually the submitters.
type Handler func(Result)

// packet is one queued unit of work: a package of a stream (with the
// framework that classifies it; nil means the engine default), a burst of
// packages of one stream (pkgs non-nil, enqueued by the batch submit
// paths as a single channel operation), a barrier marker (barrier
// non-nil) that the worker acknowledges once everything queued before it
// has been classified and flushed, or a release marker (release non-nil)
// that drops the stream's shard state the same way.
type packet struct {
	stream string
	pkg    *dataset.Package
	// pkgs is a burst: the stream's packages in submission order. The
	// engine owns the slice once the packet is enqueued.
	pkgs []*dataset.Package
	// pos is the worker-side wave cursor: how many packages of the packet
	// have been classified this tick (1 marks a plain pkg done).
	pos     int
	fw      *core.Framework
	barrier *sync.WaitGroup
	release *sync.WaitGroup
}

// Engine is a running multi-stream detection engine. Create one with New,
// feed it with Submit, stop it with Stop. The framework must not be mutated
// (SetK, Update, …) while the engine runs.
//
// Stream state (a Session with its per-level states) is retained until the
// stream is explicitly released — recurrent detection has no natural point
// to forget a stream on its own. Deployments that key streams by
// connection-scoped identities (the serving daemon maps one network
// connection to one stream) must call Release when the identity dies, or
// churn of distinct stream IDs grows memory without bound.
type Engine struct {
	fw      *core.Framework
	cfg     Config
	handler Handler
	shards  []*shard
	wg      sync.WaitGroup
	started time.Time
	stopped atomic.Bool
	// mu serializes submissions against Stop: submitters hold it shared
	// for the duration of their channel send, and Stop takes it exclusive
	// before closing the shard channels, so a racing Submit returns the
	// stopped error instead of panicking on a closed channel.
	mu sync.RWMutex
	// bindings maps stream → *core.Framework, fixed by the stream's first
	// submission. Rebinding a live stream to a different model would
	// silently score it with the wrong weights, so SubmitFor enforces the
	// binding here, on the submit path, where it can return an error. A
	// plain string-keyed map under bindMu instead of a sync.Map: sync.Map
	// boxes the key on every Load/LoadOrStore, one heap allocation per
	// submitted package, while a built-in map lookup allocates nothing.
	bindMu   sync.RWMutex
	bindings map[string]*core.Framework
	// precisions maps stream → numeric tier for streams bound away from the
	// engine default by BindPrecision, under bindMu with bindings. Absent
	// means the configured Stack.Precision.
	precisions map[string]core.Precision
	// validated caches (framework, precision) pairs already proven to
	// support the engine's stack, so SubmitFor pays the stack resolution
	// once per pair instead of once per package.
	validated sync.Map
	// firstPanic keeps the first handler/stage panic a shard worker
	// recovered; Stop surfaces it once the workers have drained.
	firstPanic atomic.Pointer[PanicError]
}

// PanicError is a panic a shard worker recovered from a Handler or stage
// (see ShardStats.HandlerPanics). The worker keeps running — a panicking
// handler must not wedge every stream pinned to its shard — and Stop
// returns the first recovered panic so it cannot pass silently.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack string
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: recovered handler panic: %v", p.Value)
}

// recordPanic keeps the first recovered panic for Stop.
func (e *Engine) recordPanic(v any) {
	e.firstPanic.CompareAndSwap(nil, &PanicError{Value: v, Stack: string(debug.Stack())})
}

// validationKey keys the validated cache: batching never mixes weights or
// numeric tiers, so support is proven per (framework, precision) pair.
type validationKey struct {
	fw   *core.Framework
	prec core.Precision
}

// New builds and starts an engine over a trained framework. handler may be
// nil when only the counters are of interest. The configured stack must
// resolve against the framework (levels beyond the built-in two need their
// stage models trained; see core.Framework.TrainStages).
func New(fw *core.Framework, cfg Config, handler Handler) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if _, err := fw.NewStack(cfg.Stack); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		fw:         fw,
		cfg:        cfg,
		handler:    handler,
		shards:     make([]*shard, cfg.Shards),
		started:    time.Now(),
		bindings:   make(map[string]*core.Framework),
		precisions: make(map[string]core.Precision),
	}
	for i := range e.shards {
		e.shards[i] = newShard(i, e)
	}
	e.wg.Add(len(e.shards))
	for _, s := range e.shards {
		go s.run(&e.wg)
	}
	return e, nil
}

// shardFor pins a stream to a shard by FNV-1a hash, so stream placement is
// deterministic across runs and processes.
func (e *Engine) shardFor(stream string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= prime64
	}
	return e.shards[h%uint64(len(e.shards))]
}

// Submit enqueues one package of a stream, blocking while the stream's
// shard queue is full (backpressure). Packages of one stream must be
// submitted from one goroutine at a time to preserve stream order; distinct
// streams may submit concurrently. Submitting during or after Stop returns
// an error.
func (e *Engine) Submit(stream string, pkg *dataset.Package) error {
	return e.SubmitFor(nil, stream, pkg)
}

// SubmitFor is Submit with an explicit framework: the stream is classified
// by fw instead of the engine default, letting one engine serve streams of
// different scenarios — each with its own trained model — on shared shards.
// The first package of a stream binds it to its framework for the lifetime
// of the engine; a later submission of the same stream under a different
// framework (nil counts as the default) is rejected with an error before
// anything is enqueued — recurrent state is model-specific, so a rebound
// stream would silently be scored with the wrong weights. fw must support
// the engine's stack: a framework missing a level's stage model is
// rejected here too. Within a shard, streams of distinct frameworks
// micro-batch separately — batching never mixes weights — while per-stream
// verdicts remain exactly those of a sequential core.Session over fw. A
// nil fw means the engine's default framework.
func (e *Engine) SubmitFor(fw *core.Framework, stream string, pkg *dataset.Package) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return fmt.Errorf("engine: submit after Stop")
	}
	if err := e.validateFor(fw, stream); err != nil {
		return err
	}
	if err := e.bindStream(stream, fw); err != nil {
		return err
	}
	e.shardFor(stream).in <- packet{stream: stream, pkg: pkg, fw: fw}
	return nil
}

// SubmitBatch enqueues a burst of packages of one stream, in order, as a
// single operation; see SubmitBatchFor.
func (e *Engine) SubmitBatch(stream string, pkgs []*dataset.Package) error {
	return e.SubmitBatchFor(nil, stream, pkgs)
}

// SubmitBatchFor is SubmitFor amortized over a burst: the stopped check,
// the stack validation, the stream→framework binding and the shard
// channel send are each paid once for the whole burst instead of once per
// package — the serving daemon's ingest loops use it to submit every
// record already buffered on the wire in one call. The packages are
// classified in slice order and interleave with other submissions exactly
// as if each had been submitted individually at the moment of the call:
// per-stream FIFO, barrier and release ordering, and per-stream verdicts
// are identical to the equivalent SubmitFor sequence. The engine takes
// ownership of pkgs — the caller must not reuse or mutate the slice after
// a successful submit. An empty burst is a no-op that binds nothing.
// Blocking, binding and error semantics are those of SubmitFor.
func (e *Engine) SubmitBatchFor(fw *core.Framework, stream string, pkgs []*dataset.Package) error {
	if len(pkgs) == 0 {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return fmt.Errorf("engine: submit after Stop")
	}
	if err := e.validateFor(fw, stream); err != nil {
		return err
	}
	if err := e.bindStream(stream, fw); err != nil {
		return err
	}
	e.shardFor(stream).in <- packet{stream: stream, pkgs: pkgs, fw: fw}
	return nil
}

// validateFor proves once per (framework, precision) pair that a
// non-default framework supports the engine's stack at the stream's tier.
// The engine default was validated by New; nil means the default.
func (e *Engine) validateFor(fw *core.Framework, stream string) error {
	if fw == nil || fw == e.fw {
		return nil
	}
	key := validationKey{fw: fw, prec: e.precisionOf(stream)}
	if _, ok := e.validated.Load(key); !ok {
		if _, err := fw.NewStack(e.stackFor(key.prec)); err != nil {
			return fmt.Errorf("engine: submit for framework: %w", err)
		}
		e.validated.Store(key, struct{}{})
	}
	return nil
}

// StackSpec returns the engine's resolved stack spec (defaults applied):
// what every stream's sessions run, at the configured default precision.
func (e *Engine) StackSpec() core.StackSpec { return e.cfg.Stack }

// Shards returns the number of shard workers (defaults applied) — the
// index space of Result.Shard and Config.TickEnd.
func (e *Engine) Shards() int { return len(e.shards) }

// stackFor returns the engine's stack spec at the given numeric tier.
func (e *Engine) stackFor(p core.Precision) core.StackSpec {
	spec := e.cfg.Stack
	spec.Precision = p
	return spec
}

// precisionOf returns the numeric tier of a stream: its BindPrecision
// binding, or the configured default.
func (e *Engine) precisionOf(stream string) core.Precision {
	e.bindMu.RLock()
	p, ok := e.precisions[stream]
	e.bindMu.RUnlock()
	if !ok {
		p = e.cfg.Stack.Precision
	}
	if p == "" {
		p = core.PrecisionF64
	}
	return p
}

// BindPrecision pins a stream to a numeric tier before its first package:
// the stream's sessions and micro-batches run the engine's stack at p
// instead of the configured default, and — like the per-framework batches
// — streams of distinct tiers never share a batched pass. Binding must
// happen before the stream carries traffic (recurrent state is
// tier-specific, so re-tiering a live stream would corrupt it); an
// unsupported tier for the engine's stack is rejected here, fail-fast,
// with the same validation the -precision flag gets at startup.
func (e *Engine) BindPrecision(stream string, p core.Precision) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return fmt.Errorf("engine: bind precision after Stop")
	}
	if _, err := e.fw.NewStack(e.stackFor(p)); err != nil {
		return fmt.Errorf("engine: bind precision: %w", err)
	}
	e.bindMu.Lock()
	defer e.bindMu.Unlock()
	if _, active := e.bindings[stream]; active {
		return fmt.Errorf("engine: stream %q already carries traffic; precision is fixed at first package", stream)
	}
	if prev, ok := e.precisions[stream]; ok && prev != p {
		return fmt.Errorf("engine: stream %q is already bound to precision %s", stream, prev)
	}
	e.precisions[stream] = p
	return nil
}

// bindStream records (or checks) the stream→framework binding. nil
// normalizes to the engine default, so Submit and SubmitFor(nil, …) agree.
func (e *Engine) bindStream(stream string, fw *core.Framework) error {
	if fw == nil {
		fw = e.fw
	}
	e.bindMu.RLock()
	prev, loaded := e.bindings[stream]
	e.bindMu.RUnlock()
	if !loaded {
		e.bindMu.Lock()
		if prev, loaded = e.bindings[stream]; !loaded {
			e.bindings[stream] = fw
			prev = fw
		}
		e.bindMu.Unlock()
	}
	if prev != fw {
		return fmt.Errorf("engine: stream %q is already bound to a different framework", stream)
	}
	return nil
}

// TrySubmit is Submit without blocking: it reports false when the stream's
// shard queue is full, letting in-path deployments shed load explicitly
// instead of stalling the protocol path.
func (e *Engine) TrySubmit(stream string, pkg *dataset.Package) (bool, error) {
	return e.TrySubmitFor(nil, stream, pkg)
}

// TrySubmitFor is SubmitFor without blocking: the same validated-cache
// stack check and stream→framework binding semantics, but a full shard
// queue reports false instead of stalling the caller — the in-path shape of
// the serving daemon's live ingest, where shedding a package beats stalling
// the protocol path. Like SubmitFor, a nil fw means the engine default; a
// shed (queue-full) probe never binds a stream that carried no traffic.
func (e *Engine) TrySubmitFor(fw *core.Framework, stream string, pkg *dataset.Package) (bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return false, fmt.Errorf("engine: submit after Stop")
	}
	if err := e.validateFor(fw, stream); err != nil {
		return false, err
	}
	target := fw
	if target == nil {
		target = e.fw
	}
	// Check the binding up front, but record it only once a package is
	// actually enqueued.
	e.bindMu.RLock()
	prev, bound := e.bindings[stream]
	e.bindMu.RUnlock()
	if bound && prev != target {
		return false, fmt.Errorf("engine: stream %q is already bound to a different framework", stream)
	}
	select {
	case e.shardFor(stream).in <- packet{stream: stream, pkg: pkg, fw: fw}:
		if !bound {
			e.bindMu.Lock()
			if _, ok := e.bindings[stream]; !ok {
				e.bindings[stream] = target
			}
			e.bindMu.Unlock()
		}
		return true, nil
	default:
		return false, nil
	}
}

// TrySubmitBatch is SubmitBatch without blocking; see TrySubmitBatchFor.
func (e *Engine) TrySubmitBatch(stream string, pkgs []*dataset.Package) (bool, error) {
	return e.TrySubmitBatchFor(nil, stream, pkgs)
}

// TrySubmitBatchFor is SubmitBatchFor with TrySubmitFor's shedding
// admission: a burst occupies one slot of the stream's shard queue, and
// when the queue is full the whole burst is shed (reported false) —
// all-or-nothing, so a shed never splits a burst and per-stream verdict
// sequences stay prefixes of the full sequence per admission decision.
// Like TrySubmitFor, a shed probe never binds a stream that carried no
// traffic; on a successful enqueue the engine owns pkgs. An empty burst
// reports true without enqueueing or binding anything.
func (e *Engine) TrySubmitBatchFor(fw *core.Framework, stream string, pkgs []*dataset.Package) (bool, error) {
	if len(pkgs) == 0 {
		return true, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return false, fmt.Errorf("engine: submit after Stop")
	}
	if err := e.validateFor(fw, stream); err != nil {
		return false, err
	}
	target := fw
	if target == nil {
		target = e.fw
	}
	e.bindMu.RLock()
	prev, bound := e.bindings[stream]
	e.bindMu.RUnlock()
	if bound && prev != target {
		return false, fmt.Errorf("engine: stream %q is already bound to a different framework", stream)
	}
	select {
	case e.shardFor(stream).in <- packet{stream: stream, pkgs: pkgs, fw: fw}:
		if !bound {
			e.bindMu.Lock()
			if _, ok := e.bindings[stream]; !ok {
				e.bindings[stream] = target
			}
			e.bindMu.Unlock()
		}
		return true, nil
	default:
		return false, nil
	}
}

// Release drops every trace of a stream — the shard's session state plus
// the framework and precision bindings — so the stream ID can be reused
// with fresh recurrent state (or a different model). It enqueues a release
// marker behind everything already submitted for the stream and waits for
// the shard to process it, so on return no in-flight package references the
// state and a resubmission of the same ID starts a brand-new session.
// Packages of the stream must not be submitted concurrently with Release
// (the same single-writer rule Submit has). Release is how
// connection-scoped deployments keep ID churn from growing memory without
// bound: bind on accept, Release on close. Releasing an unknown stream is
// a no-op. Like Submit it blocks while the shard queue is full, and errors
// during or after Stop.
func (e *Engine) Release(stream string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return fmt.Errorf("engine: release after Stop")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	e.shardFor(stream).in <- packet{stream: stream, release: &wg}
	wg.Wait()
	// The shard state is gone; drop the submit-path bindings. New
	// submissions of this ID (the single-writer rule orders them after
	// Release returns) bind afresh.
	e.bindMu.Lock()
	delete(e.bindings, stream)
	delete(e.precisions, stream)
	e.bindMu.Unlock()
	return nil
}

// Barrier blocks until every package submitted before it has been fully
// processed — verdict delivered to the handler and stream state advanced
// through its batched steps — without stopping the engine. It is the
// replay entry point for workloads that feed the engine in bounded phases
// (one recorded trace after another through a single warm engine) and need
// a completion point between phases; unlike Stop it can be called
// repeatedly. Packages submitted concurrently with Barrier may land on
// either side of it. Barrier blocks while shard queues are full, like
// Submit, and returns an error during or after Stop.
func (e *Engine) Barrier() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.stopped.Load() {
		return fmt.Errorf("engine: barrier after Stop")
	}
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for _, s := range e.shards {
		s.in <- packet{barrier: &wg}
	}
	wg.Wait()
	return nil
}

// Stop drains every queued package, waits for the workers to finish, and
// releases them. Submissions racing Stop either land before the shutdown
// (their packages are drained) or return the stopped error; a submitter
// blocked on a full queue completes normally, because the workers keep
// draining until the channels close. Stop is idempotent, and every call
// waits for the drain. It returns the first panic a shard worker recovered
// during the engine's lifetime (as a *PanicError), or nil if no handler or
// stage ever panicked.
func (e *Engine) Stop() error {
	e.mu.Lock()
	already := e.stopped.Swap(true)
	e.mu.Unlock()
	if !already {
		for _, s := range e.shards {
			close(s.in)
		}
	}
	e.wg.Wait()
	if p := e.firstPanic.Load(); p != nil {
		return p
	}
	return nil
}

// shard is one worker: a partition of streams, its bounded input queue, its
// per-framework micro-batches, and its counters.
type shard struct {
	id      int
	e       *Engine
	in      chan packet
	streams map[string]*stream
	// batches holds one micro-batch per framework served by this shard.
	// Most engines serve a single framework, so the slice almost always
	// has one entry; a linear scan beats a map at that size and keeps the
	// flush order deterministic.
	batches []*fwBatch
	// tickBuf collects one drained tick of packets so batchable Check
	// scores can be precomputed before the packets are classified.
	tickBuf []packet
	// tick stamps streams seen in the current tick (precompute only covers
	// a stream's first packet of the tick — later packets depend on state
	// the earlier ones will move).
	tick uint64
	// wave stamps streams within one wave of burst processing: a tick that
	// contains bursts interleaves one package per stream per wave, so the
	// micro-batch width of a multi-stream tick survives burst submission
	// (processing a burst to completion would force a flush per package —
	// the second package of a stream depends on the first one's queued
	// Advance step).
	wave  uint64
	stats shardCounters
}

// fwBatch is the micro-batch state of one (framework, precision) pair
// within a shard: batched passes of streams bound to different frameworks
// must never share a pass (the weights differ), and neither may streams of
// different numeric tiers (the kernels differ), so each pair batches
// alone.
type fwBatch struct {
	fw      *core.Framework
	prec    core.Precision
	stack   *core.Stack
	batch   *core.StackBatch
	inBatch []*stream
	// chkFlushes/chkScored mirror the batch's cumulative check counters
	// already published to the shard stats.
	chkFlushes, chkScored uint64
}

// stream is the engine's per-stream state.
type stream struct {
	sess *core.Session
	// fb is the micro-batch of the framework this stream is bound to.
	fb  *fwBatch
	seq uint64
	// pending reports that a batched Advance step of this stream sits in
	// the current micro-batch: a second package of the same stream forces
	// a flush first, because its prediction depends on that step.
	pending bool
	// tickStamp marks the tick that already precomputed for this stream.
	tickStamp uint64
	// waveStamp marks the wave that already classified a package of this
	// stream (burst interleaving; see shard.wave).
	waveStamp uint64
}

func newShard(id int, e *Engine) *shard {
	return &shard{
		id:      id,
		e:       e,
		in:      make(chan packet, e.cfg.QueueDepth),
		streams: make(map[string]*stream),
		tickBuf: make([]packet, 0, e.cfg.QueueDepth+1),
	}
}

// batchFor returns the shard's micro-batch for a (framework, precision)
// pair, creating it on first use.
func (s *shard) batchFor(fw *core.Framework, prec core.Precision) *fwBatch {
	for _, fb := range s.batches {
		if fb.fw == fw && fb.prec == prec {
			return fb
		}
	}
	stack, err := fw.NewStack(s.e.stackFor(prec))
	if err != nil {
		// SubmitFor/BindPrecision validated the pair before enqueueing
		// anything for it.
		panic(fmt.Sprintf("engine: stack for bound framework: %v", err))
	}
	fb := &fwBatch{
		fw:      fw,
		prec:    prec,
		stack:   stack,
		batch:   stack.NewBatch(s.e.cfg.MaxBatch),
		inBatch: make([]*stream, 0, s.e.cfg.MaxBatch),
	}
	s.batches = append(s.batches, fb)
	return fb
}

// run is the shard worker loop: block for one packet, drain whatever else
// is queued into the tick buffer (bounded by the queue depth), precompute
// the tick's batchable Check scores, classify every packet, and flush the
// batched Advance passes before blocking again. A tick without bursts
// takes the plain per-packet pass; one with a burst goes through
// processBurst so cross-stream micro-batching survives. Either way the
// tick ends with a flush and, when configured, the TickEnd callback.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for pkt := range s.in {
		tick := append(s.tickBuf[:0], pkt)
		burst := pkt.pkgs != nil
	drain:
		for len(tick) < cap(tick) {
			select {
			case more, ok := <-s.in:
				if !ok {
					break drain
				}
				tick = append(tick, more)
				burst = burst || more.pkgs != nil
			default:
				break drain
			}
		}
		s.safe(func() { s.precompute(tick) })
		if burst {
			s.processBurst(tick)
		} else {
			for _, p := range tick {
				s.process(p)
			}
		}
		s.safe(s.flush)
		if fn := s.e.cfg.TickEnd; fn != nil {
			s.safe(func() { fn(s.id) })
		}
	}
	s.safe(s.flush)
	if fn := s.e.cfg.TickEnd; fn != nil {
		s.safe(func() { fn(s.id) })
	}
}

// processBurst classifies one tick that contains at least one burst
// packet. The tick splits into runs of package-carrying packets separated
// by barrier/release markers: each run is fully classified before its
// following marker is processed, so marker ordering ("everything queued
// before") holds exactly as in the per-packet pass.
func (s *shard) processBurst(tick []packet) {
	for i := 0; i < len(tick); {
		if tick[i].barrier != nil || tick[i].release != nil {
			s.process(tick[i])
			i++
			continue
		}
		j := i + 1
		for j < len(tick) && tick[j].barrier == nil && tick[j].release == nil {
			j++
		}
		s.processRun(tick[i:j])
		i = j
	}
}

// processRun classifies a marker-free run of packets in waves: each wave
// walks the run in queue order and classifies at most one package per
// stream, so the streams of the run keep advancing together through the
// micro-batch (one flush per wave, not one per package) while per-stream
// order is exact — a stream's earliest non-exhausted packet always wins
// the wave, so packages classify in submission order.
func (s *shard) processRun(run []packet) {
	remaining := 0
	for i := range run {
		if run[i].pkgs != nil {
			remaining += len(run[i].pkgs)
		} else {
			remaining++
		}
	}
	for remaining > 0 {
		s.wave++
		for i := range run {
			p := &run[i]
			var pkg *dataset.Package
			if p.pkgs != nil {
				if p.pos >= len(p.pkgs) {
					continue
				}
				pkg = p.pkgs[p.pos]
			} else {
				if p.pos > 0 {
					continue
				}
				pkg = p.pkg
			}
			if st := s.streams[p.stream]; st != nil && st.waveStamp == s.wave {
				continue
			}
			st := s.processOne(p.stream, pkg, p.fw)
			p.pos++
			remaining--
			if st != nil {
				st.waveStamp = s.wave
			}
		}
	}
}

// processOne is handleOne behind the shard's panic guard (the burst-path
// counterpart of process): it returns the stream's state so the wave loop
// can stamp it even when the handler panicked mid-package.
func (s *shard) processOne(id string, pkg *dataset.Package, fw *core.Framework) (st *stream) {
	defer func() {
		if r := recover(); r != nil {
			s.recovered(r)
			st = s.streams[id]
		}
	}()
	return s.handleOne(id, pkg, fw)
}

// process runs handle behind a panic guard: a panicking Handler (or stage)
// must not kill the shard goroutine — every stream pinned to this shard
// would wedge while Submit keeps blocking on the full queue. The panic is
// counted in HandlerPanics, the first one is kept for Stop, and barrier and
// release markers are still acknowledged so Barrier and Release cannot
// deadlock on a panicked tick. The panicking package's own stream may be
// left with a partially advanced session; every other stream keeps exact
// sequential semantics.
func (s *shard) process(pkt packet) {
	defer func() {
		if r := recover(); r != nil {
			s.recovered(r)
			switch {
			case pkt.barrier != nil:
				pkt.barrier.Done()
			case pkt.release != nil:
				// The marker must still release: the panic came from the
				// pre-release flush, not from the map drop.
				s.dropStream(pkt.stream)
				pkt.release.Done()
			}
		}
	}()
	s.handle(pkt)
}

// safe runs fn behind the same panic guard as process, for the shared
// per-tick phases (precompute, flush) that are not tied to one packet.
func (s *shard) safe(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			s.recovered(r)
		}
	}()
	fn()
}

func (s *shard) recovered(r any) {
	s.stats.handlerPanics.Add(1)
	s.e.recordPanic(r)
}

// dropStream forgets a stream's shard state (release marker processing).
func (s *shard) dropStream(stream string) {
	if _, ok := s.streams[stream]; ok {
		delete(s.streams, stream)
		s.stats.released.Add(1)
	}
}

// precompute batches the Check-phase work of the tick: for the first
// packet of every stream in the tick, each check-batchable stage (the
// PCA/GMM window levels) scores the upcoming package through its batched
// kernel and deposits the result in the stream state, where the
// sequential Check phase picks it up. Later packets of the same stream
// score inline — their stage state depends on the earlier packets'
// Advance — and take the bitwise-identical scalar path.
func (s *shard) precompute(tick []packet) {
	// Nothing to do unless some framework's stack batches Check scores —
	// the default two-level stack skips the whole pass (streams only
	// exist under frameworks with a batch, so an absent batch means no
	// batchable stream either).
	needed := false
	for _, fb := range s.batches {
		if fb.batch.HasCheck() {
			needed = true
			break
		}
	}
	if !needed {
		return
	}
	s.tick++
	queued := false
	for _, pkt := range tick {
		pkg := pkt.pkg
		if pkg == nil {
			if len(pkt.pkgs) == 0 {
				// Barrier and release markers carry no package to score.
				continue
			}
			// Only a burst's first package is precomputable — the later
			// ones depend on state its Advance will move.
			pkg = pkt.pkgs[0]
		}
		st := s.streams[pkt.stream]
		if st == nil || st.tickStamp == s.tick {
			// A stream's very first package can have no batchable window
			// (window levels need a cycle of history), so skipping unknown
			// streams loses nothing.
			continue
		}
		st.tickStamp = s.tick
		st.fb.batch.QueueCheck(st.sess, pkg)
		queued = true
	}
	if !queued {
		return
	}
	for _, fb := range s.batches {
		fb.batch.FlushCheck()
		// Publish the batch's cumulative counters (they also cover
		// batches flushed mid-queue when a stage's batch filled).
		flushes, scored := fb.batch.CheckBatchStats()
		s.stats.checkBatches.Add(flushes - fb.chkFlushes)
		s.stats.checkBatched.Add(scored - fb.chkScored)
		fb.chkFlushes, fb.chkScored = flushes, scored
	}
}

// handle classifies one package against its stream's session and defers the
// batchable Advance steps into the micro-batch.
func (s *shard) handle(pkt packet) {
	if pkt.barrier != nil {
		// Everything queued before the barrier has been handled (shard FIFO);
		// flush so their batched steps are complete before acknowledging.
		s.flush()
		pkt.barrier.Done()
		return
	}
	if pkt.release != nil {
		// Shard FIFO ordered the marker behind every in-flight package of
		// the stream; flushing completes their batched steps before the
		// state drops, so a released session is never advanced afterwards.
		s.flush()
		s.dropStream(pkt.stream)
		pkt.release.Done()
		return
	}
	s.handleOne(pkt.stream, pkt.pkg, pkt.fw)
}

// handleOne classifies one package of one stream: the shared per-package
// core of the per-packet and burst-wave paths.
func (s *shard) handleOne(id string, pkg *dataset.Package, fw *core.Framework) *stream {
	if fw == nil {
		fw = s.e.fw
	}
	st := s.streams[id]
	if st == nil {
		fb := s.batchFor(fw, s.e.precisionOf(id))
		st = &stream{sess: fb.stack.NewSession(), fb: fb}
		s.streams[id] = st
		s.stats.streams.Add(1)
	}
	if st.pending || st.fb.batch.AdvanceFull() {
		s.flush()
	}
	v, pc := st.sess.ClassifyOnly(pkg)
	if st.fb.batch.QueueAdvance(st.sess, pc, v) {
		st.pending = true
		st.fb.inBatch = append(st.fb.inBatch, st)
	}

	s.stats.packages.Add(1)
	s.stats.byLevel[levelIndex(v.Level)].Add(1)
	if s.e.handler != nil {
		s.e.handler(Result{Stream: id, Seq: st.seq, Shard: s.id, Package: pkg, Verdict: v})
	}
	st.seq++
	return st
}

// flush advances every queued stream through one batched pass per stage
// per framework, in the deterministic first-seen framework order.
func (s *shard) flush() {
	for _, fb := range s.batches {
		n := fb.batch.AdvanceLen()
		if n == 0 {
			continue
		}
		s.stats.batched.Add(uint64(n))
		s.stats.batches.Add(1)
		fb.batch.FlushAdvance()
		for _, st := range fb.inBatch {
			st.pending = false
		}
		fb.inBatch = fb.inBatch[:0]
	}
}
