// Package recon registers the reconstruction-error detection stages: an
// LSTM autoencoder, a seq2seq predictor (after arXiv:1911.04831) and a
// 1D-CNN predictor (after arXiv:1806.08110). Unlike every signature
// stage, these score the standardized continuous register sample of each
// command-response cycle (the same WindowStage cycle slicing the
// promoted baselines use) by reconstruction/prediction error, thresholded
// at the (1−StageTheta) validation-error quantile — widening the stack to
// attacks that preserve the signature vocabulary but distort the physics.
//
// Importing this package (blank import) activates the "ae", "seq2seq"
// and "cnn" stage kinds in the core registry, so `-levels bloom,lstm,ae`
// composes them with every other level under any fusion policy.
package recon

import (
	"fmt"

	"icsdetect/internal/baselines"
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/nn"
)

// Default architecture hyperparameters, sized so training stays a small
// fraction of the signature levels' cost at dataset scale while leaving
// enough capacity for the 4×17 window samples.
const (
	defaultHidden  = 32 // LSTM hidden width (autoencoder, seq2seq)
	defaultKernel  = 2  // CNN filter length in timesteps
	defaultFilters = 32 // CNN filter count
)

// featureDim is the per-timestep feature width of a window sample.
const featureDim = baselines.SampleDim / baselines.WindowSize

// Model is the trained model of one reconstruction stage: the network,
// the standardizer its samples were fitted with, and the decision
// threshold (scores strictly above it flag the window).
type Model struct {
	Std       *baselines.Standardizer
	Threshold float64
	Net       nn.ReconNet
}

// reconKind describes one registered reconstruction stage.
type reconKind struct {
	kind  string
	level core.Level
	fresh func(seed uint64) nn.ReconNet
}

var reconKinds = []reconKind{
	{core.LevelAE.String(), core.LevelAE, func(seed uint64) nn.ReconNet {
		return nn.NewAutoEncoder(baselines.WindowSize, featureDim, defaultHidden, seed)
	}},
	{core.LevelSeq2Seq.String(), core.LevelSeq2Seq, func(seed uint64) nn.ReconNet {
		return nn.NewSeq2Seq(baselines.WindowSize, featureDim, baselines.WindowSize/2, defaultHidden, seed)
	}},
	{core.LevelCNN.String(), core.LevelCNN, func(seed uint64) nn.ReconNet {
		return nn.NewConvNet(baselines.WindowSize, featureDim, defaultKernel, defaultFilters, seed)
	}},
}

// Kinds lists the registered reconstruction stage kinds in registration
// order.
func Kinds() []string {
	kinds := make([]string, 0, len(reconKinds))
	for _, rk := range reconKinds {
		kinds = append(kinds, rk.kind)
	}
	return kinds
}

// scorer adapts a trained ReconNet to the baselines scorer interfaces so
// WindowStage serves it on both the sequential per-stream path
// (ScoreVector through per-stream scratch) and the engine's batched
// Check precompute (NewScoreBatch).
type scorer struct {
	kind string
	net  nn.ReconNet
}

var _ baselines.BatchVectorScorer = (*scorer)(nil)

func (s *scorer) Name() string { return s.kind }

func (s *scorer) Score(w *baselines.Window) float64 {
	return s.net.Score(w.Sample, make([]float64, s.net.ScratchLen()))
}

func (s *scorer) ScratchLen() int { return s.net.ScratchLen() }

func (s *scorer) ScoreVector(x, scratch []float64) float64 { return s.net.Score(x, scratch) }

func (s *scorer) NewScoreBatch(maxBatch int) baselines.ScoreBatch { return s.net.NewBatch(maxBatch) }

func init() {
	for _, rk := range reconKinds {
		rk := rk
		core.RegisterStage(rk.kind, core.StageFactory{
			Build: func(fw *core.Framework, _ core.StageSpec) (core.StageDetector, error) {
				m, ok := fw.Extra[rk.kind].(*Model)
				if !ok {
					return nil, fmt.Errorf("no trained %s stage model in the framework "+
						"(train it with TrainStages / icstrain -levels)", rk.kind)
				}
				wz := baselines.NewWindowizerWith(fw.Encoder, m.Std)
				return baselines.NewWindowStage(rk.kind, rk.level, wz, &scorer{kind: rk.kind, net: m.Net}, m.Threshold), nil
			},
			Train: func(fw *core.Framework, split *dataset.Split, seed uint64) (core.StageModel, error) {
				return trainModel(fw, split, rk, seed)
			},
			Encode: func(m core.StageModel) ([]byte, error) {
				rm, ok := m.(*Model)
				if !ok {
					return nil, fmt.Errorf("recon: %s stage model has type %T", rk.kind, m)
				}
				return encodeModel(rm)
			},
			Decode: func(b []byte) (core.StageModel, error) {
				return decodeModel(b)
			},
		})
	}
}

// trainModel fits one reconstruction stage from the framework's training
// split: windows are built with the framework's own discretizer-backed
// windowizer (the same feature view as every promoted level), the
// network trains on the normal-traffic window samples, and the threshold
// is the (1−StageTheta) quantile of the validation window scores — the
// shared held-out-θ rule.
func trainModel(fw *core.Framework, split *dataset.Split, rk reconKind, seed uint64) (*Model, error) {
	wz, err := baselines.NewWindowizer(fw.Encoder, split.Train)
	if err != nil {
		return nil, err
	}
	train := wz.FromFragments(split.Train)
	if len(train) == 0 {
		return nil, fmt.Errorf("recon: no training windows for %s stage", rk.kind)
	}
	net := rk.fresh(seed)
	if _, err := nn.TrainRecon(net, baselines.Samples(train), nn.ReconTrainConfig{Seed: seed}); err != nil {
		return nil, fmt.Errorf("recon: training %s stage: %w", rk.kind, err)
	}
	held := wz.FromFragments(split.Validation)
	if len(held) == 0 {
		held = train
	}
	sc := &scorer{kind: rk.kind, net: net}
	scratch := make([]float64, net.ScratchLen())
	scores := make([]float64, len(held))
	for i, w := range held {
		scores[i] = sc.ScoreVector(w.Sample, scratch)
	}
	return &Model{
		Std:       wz.Std(),
		Threshold: baselines.QuantileThreshold(scores, 1-baselines.StageTheta),
		Net:       net,
	}, nil
}
