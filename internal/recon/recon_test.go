package recon

import (
	"math"
	"testing"

	"icsdetect/internal/baselines"
	"icsdetect/internal/core"
	"icsdetect/internal/dataset"
	"icsdetect/internal/gaspipeline"
	"icsdetect/internal/signature"
)

// reconFixture is the shared trained fixture: one framework-view encoder
// and all three reconstruction stage models over the same split.
type reconFixture struct {
	fw     *core.Framework
	split  *dataset.Split
	models map[string]*Model
}

var sharedFixture *reconFixture

func loadReconFixture(t *testing.T) *reconFixture {
	t.Helper()
	if testing.Short() {
		t.Skip("recon stage training fixture skipped in short mode")
	}
	if sharedFixture != nil {
		return sharedFixture
	}
	ds, err := gaspipeline.Generate(gaspipeline.DefaultGenConfig(6000, 11))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	split, err := dataset.MakeSplit(ds, dataset.SplitConfig{})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	g := signature.Granularity{IntervalClusters: 2, CRCClusters: 2, PressureBins: 5, SetpointBins: 3, PIDClusters: 2}
	enc, err := signature.FitEncoder(split.Train, g, 1)
	if err != nil {
		t.Fatalf("fit encoder: %v", err)
	}
	fw := &core.Framework{Encoder: enc}
	models := make(map[string]*Model, len(reconKinds))
	for _, rk := range reconKinds {
		m, err := trainModel(fw, split, rk, 3)
		if err != nil {
			t.Fatalf("train %s: %v", rk.kind, err)
		}
		models[rk.kind] = m
	}
	sharedFixture = &reconFixture{fw: fw, split: split, models: models}
	return sharedFixture
}

// buildStage wraps a trained model as its streaming stage.
func buildStage(fx *reconFixture, rk reconKind) (*Model, *baselines.WindowStage) {
	m := fx.models[rk.kind]
	wz := baselines.NewWindowizerWith(fx.fw.Encoder, m.Std)
	return m, baselines.NewWindowStage(rk.kind, rk.level, wz, &scorer{kind: rk.kind, net: m.Net}, m.Threshold)
}

// runStream drives a package stream through a stage the way a session
// does, returning the per-package stage results.
func runStream(stage *baselines.WindowStage, state core.StageState, pkgs []*dataset.Package) []core.StageResult {
	out := make([]core.StageResult, len(pkgs))
	for i, p := range pkgs {
		pc := core.PackageContext{Cur: p}
		r := core.StageResult{Rank: -1}
		stage.Check(state, &pc, &r)
		out[i] = r
		var v core.Verdict
		stage.Advance(state, &pc, &v)
	}
	return out
}

// TestReconStreamingOfflineParity: each reconstruction stage, replayed as
// a streaming stage over the raw test stream, must reproduce the window
// slicing, the scores and the decisions of the offline path
// (Windowizer.FromStream + ReconNet.Score) bit for bit.
func TestReconStreamingOfflineParity(t *testing.T) {
	fx := loadReconFixture(t)
	stream := fx.split.Test
	if len(stream) > 2400 {
		stream = stream[:2400]
	}
	for _, rk := range reconKinds {
		rk := rk
		t.Run(rk.kind, func(t *testing.T) {
			m, stage := buildStage(fx, rk)

			wz := baselines.NewWindowizerWith(fx.fw.Encoder, m.Std)
			offline := wz.FromStream(stream)
			scratch := make([]float64, m.Net.ScratchLen())
			offScores := make([]float64, len(offline))
			for i, w := range offline {
				offScores[i] = m.Net.Score(w.Sample, scratch)
			}

			type finalized struct {
				score   float64
				flagged bool
				n       int
			}
			var got []finalized
			stage.Observer = func(w *baselines.Window, score float64, flagged bool) {
				got = append(got, finalized{score, flagged, len(w.Packages)})
			}
			results := runStream(stage, stage.NewState(), stream)

			if len(got) != len(offline) && len(got) != len(offline)-1 {
				t.Fatalf("streaming finalized %d windows, offline built %d", len(got), len(offline))
			}
			var full int
			for i, g := range got {
				if len(offline[i].Packages) != g.n {
					t.Fatalf("window %d: streaming %d packages, offline %d", i, g.n, len(offline[i].Packages))
				}
				if math.Float64bits(g.score) != math.Float64bits(offScores[i]) {
					t.Fatalf("window %d: streaming score %x, offline %x", i,
						math.Float64bits(g.score), math.Float64bits(offScores[i]))
				}
				if g.flagged != (offScores[i] > m.Threshold) {
					t.Fatalf("window %d: streaming decision %v, offline %v", i, g.flagged, offScores[i] > m.Threshold)
				}
				if g.n == baselines.WindowSize {
					full++
				}
			}
			if full == 0 {
				t.Fatal("no full windows in the parity stream")
			}

			// Per-package: exactly the closing package of a full window
			// scores.
			var scored int
			for _, r := range results {
				if r.Scored {
					scored++
				}
			}
			if scored != full {
				t.Fatalf("%d packages scored, %d full windows finalized", scored, full)
			}
		})
	}
}

// TestReconStageCheckBatch: scores deposited by the engine's batched
// Check precompute must be consumed bit-for-bit identically to the plain
// sequential stage path.
func TestReconStageCheckBatch(t *testing.T) {
	fx := loadReconFixture(t)
	stream := fx.split.Test
	if len(stream) > 800 {
		stream = stream[:800]
	}
	for _, rk := range reconKinds {
		rk := rk
		t.Run(rk.kind, func(t *testing.T) {
			_, stage := buildStage(fx, rk)
			cb := stage.NewCheckBatch(8)
			if cb == nil {
				t.Fatal("reconstruction stage returned no check batch (lost BatchVectorScorer?)")
			}
			ref := runStream(stage, stage.NewState(), stream)
			state := stage.NewState()
			for i, p := range stream {
				cb.Queue(state, p)
				cb.Flush()
				pc := core.PackageContext{Cur: p}
				r := core.StageResult{Rank: -1}
				stage.Check(state, &pc, &r)
				if r != ref[i] {
					t.Fatalf("package %d: batched result %+v, sequential %+v", i, r, ref[i])
				}
				var v core.Verdict
				stage.Advance(state, &pc, &v)
			}
		})
	}
}

// TestReconModelRoundTrip: encode/decode of every reconstruction stage
// model must be deterministic (Fingerprint mixes the bytes) and preserve
// scores bit for bit.
func TestReconModelRoundTrip(t *testing.T) {
	fx := loadReconFixture(t)
	wz, err := baselines.NewWindowizer(fx.fw.Encoder, fx.split.Train)
	if err != nil {
		t.Fatal(err)
	}
	windows := wz.FromStream(fx.split.Test)
	if len(windows) > 120 {
		windows = windows[:120]
	}
	for _, rk := range reconKinds {
		rk := rk
		t.Run(rk.kind, func(t *testing.T) {
			m := fx.models[rk.kind]
			b, err := encodeModel(m)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := encodeModel(m)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(b2) {
				t.Fatal("recon model encoding is not deterministic")
			}
			got, err := decodeModel(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Threshold != m.Threshold {
				t.Fatalf("threshold %v after round trip, want %v", got.Threshold, m.Threshold)
			}
			scratch := make([]float64, m.Net.ScratchLen())
			scratch2 := make([]float64, got.Net.ScratchLen())
			for i, w := range windows {
				a := m.Net.Score(w.Sample, scratch)
				c := got.Net.Score(w.Sample, scratch2)
				if math.Float64bits(a) != math.Float64bits(c) {
					t.Fatalf("window %d: score %x after round trip, want %x", i,
						math.Float64bits(c), math.Float64bits(a))
				}
			}
		})
	}
}

// TestReconKindsRegistered: the three kinds must be resolvable through
// the core registry (the blank-import contract every cmd relies on).
func TestReconKindsRegistered(t *testing.T) {
	for _, kind := range Kinds() {
		spec, err := core.ParseStackSpec("bloom,"+kind, "first-hit")
		if err != nil {
			t.Fatalf("stack spec with %s: %v", kind, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("validate stack with %s: %v", kind, err)
		}
	}
}
