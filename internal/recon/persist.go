package recon

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"icsdetect/internal/baselines"
	"icsdetect/internal/nn"
)

// modelSnap is the persisted envelope of one reconstruction stage model.
// Exactly one of the network pointers is non-nil, matching the kind —
// the same one-of discipline as the baselines' windowModelSnap. The
// networks serialize their exported weight tensors only (gob skips the
// unexported inference caches), so the encoding is deterministic and
// safe for core.Framework.Fingerprint to mix.
type modelSnap struct {
	Std       *baselines.Standardizer
	Threshold float64
	AE        *nn.AutoEncoder
	S2S       *nn.Seq2Seq
	CNN       *nn.ConvNet
}

// encodeModel serializes a trained reconstruction stage model.
func encodeModel(m *Model) ([]byte, error) {
	snap := modelSnap{Std: m.Std, Threshold: m.Threshold}
	switch net := m.Net.(type) {
	case *nn.AutoEncoder:
		snap.AE = net
	case *nn.Seq2Seq:
		snap.S2S = net
	case *nn.ConvNet:
		snap.CNN = net
	default:
		return nil, fmt.Errorf("recon: cannot persist network type %T", m.Net)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("recon: encoding stage model: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeModel deserializes a reconstruction stage model and validates
// its structure.
func decodeModel(b []byte) (*Model, error) {
	var snap modelSnap
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("recon: decoding stage model: %w", err)
	}
	if snap.Std == nil {
		return nil, fmt.Errorf("recon: stage model snapshot missing standardizer")
	}
	var net nn.ReconNet
	n := 0
	if snap.AE != nil {
		net, n = snap.AE, n+1
	}
	if snap.S2S != nil {
		net, n = snap.S2S, n+1
	}
	if snap.CNN != nil {
		net, n = snap.CNN, n+1
	}
	if n != 1 {
		return nil, fmt.Errorf("recon: stage model snapshot holds %d networks, want 1", n)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if t, d := net.InputDims(); t*d != baselines.SampleDim {
		return nil, fmt.Errorf("recon: stage model shaped %d×%d, want sample dim %d", t, d, baselines.SampleDim)
	}
	return &Model{Std: snap.Std, Threshold: snap.Threshold, Net: net}, nil
}
