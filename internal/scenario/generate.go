package scenario

import (
	"fmt"

	"icsdetect/internal/dataset"
	"icsdetect/internal/mathx"
)

// ScheduleWeight weights one attack category in a generation schedule.
type ScheduleWeight struct {
	Attack dataset.AttackType
	Weight int
}

// WeightedSchedule interleaves attack categories by largest-remainder
// apportionment, keeping the types spread through the schedule instead of
// clumped. The result has sum-of-weights entries.
func WeightedSchedule(weights []ScheduleWeight) []dataset.AttackType {
	total := 0
	for _, w := range weights {
		total += w.Weight
	}
	out := make([]dataset.AttackType, 0, total)
	acc := make([]int, len(weights))
	for len(out) < total {
		best := -1
		for i, w := range weights {
			acc[i] += w.Weight
			if best < 0 || acc[i] > acc[best] {
				best = i
			}
		}
		acc[best] -= total
		out = append(out, weights[best].Attack)
	}
	return out
}

// EpisodeLengths bounds the per-category episode length draw (inclusive) of
// the generation loop.
type EpisodeLengths map[dataset.AttackType][2]int

// DefaultEpisodeLengths returns the episode-length bounds both built-in
// testbeds generate with (cycles, or probes for Recon).
func DefaultEpisodeLengths() EpisodeLengths {
	return EpisodeLengths{
		dataset.NMRI:  {2, 6},
		dataset.CMRI:  {3, 10},
		dataset.MSCI:  {2, 4},
		dataset.MPCI:  {2, 5},
		dataset.MFCI:  {2, 5},
		dataset.DOS:   {3, 8},
		dataset.Recon: {6, 17},
	}
}

// RunGeneration drives sim through the shared labeled-capture loop: warm
// the plant up unrecorded, then interleave normal operation with attack
// episodes — type order from schedule, lengths drawn from lengths via
// sched — until the capture reaches cfg.TotalPackages past the warm-up,
// steering the attack-labeled fraction toward cfg.AttackRatio. Every
// testbed generates through this one loop (the AutoIt script of paper §VII
// "randomly chooses to send legal commands or launch cyber attacks"); only
// the sim, the schedule and the scheduling RNG differ per scenario.
func RunGeneration(sim Sim, sched *mathx.RNG, cfg GenConfig, warmup int,
	schedule []dataset.AttackType, lengths EpisodeLengths) (*dataset.Dataset, error) {
	if cfg.TotalPackages <= 0 {
		return nil, fmt.Errorf("scenario: TotalPackages must be positive, got %d", cfg.TotalPackages)
	}
	if cfg.AttackRatio < 0 || cfg.AttackRatio >= 1 {
		return nil, fmt.Errorf("scenario: AttackRatio must be in [0,1), got %g", cfg.AttackRatio)
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("scenario: empty attack schedule")
	}

	// Warm up unrecorded: the capture starts at offset, after the control
	// loop has settled.
	for i := 0; i < warmup; i++ {
		sim.RunNormalCycle(dataset.Normal)
	}
	offset := len(sim.Packages())

	captured := func() []*dataset.Package { return sim.Packages()[offset:] }
	attackIdx := 0
	attackCount := 0
	for len(captured()) < cfg.TotalPackages {
		total := len(captured())
		wantAttack := cfg.AttackRatio > 0 &&
			float64(attackCount) < cfg.AttackRatio*float64(total+40) &&
			sched.Bernoulli(0.8)
		if !wantAttack {
			n := 3 + sched.Intn(8)
			for i := 0; i < n; i++ {
				sim.RunNormalCycle(dataset.Normal)
			}
			continue
		}
		before := len(captured())
		at := schedule[attackIdx%len(schedule)]
		attackIdx++
		bounds, ok := lengths[at]
		if !ok {
			return nil, fmt.Errorf("scenario: no episode length bounds for attack type %v", at)
		}
		n := bounds[0] + sched.Intn(bounds[1]-bounds[0]+1)
		if err := sim.RunAttackEpisode(at, n); err != nil {
			return nil, err
		}
		for _, p := range captured()[before:] {
			if p.IsAttack() {
				attackCount++
			}
		}
		// Normal cool-down between episodes.
		n = 1 + sched.Intn(4)
		for i := 0; i < n; i++ {
			sim.RunNormalCycle(dataset.Normal)
		}
	}
	return &dataset.Dataset{Packages: captured()}, nil
}
